//! Codec-model throughput: intra and predicted coding, global motion
//! estimation, decode.

use criterion::{criterion_group, criterion_main, Criterion};
use evr_projection::{ImageBuffer, Rgb};
use evr_video::codec::{CodecConfig, Decoder, Encoder};

fn frame(phase: f64) -> ImageBuffer {
    ImageBuffer::from_fn(320, 160, |x, y| {
        let v =
            ((x as f64 * 0.2 + phase).sin() * 80.0 + (y as f64 * 0.15).cos() * 60.0 + 128.0) as u8;
        Rgb::new(v, v / 2 + 64, 255 - v)
    })
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec_320x160");
    group.sample_size(20);
    let f0 = frame(0.0);
    let f1 = frame(0.8);

    group.bench_function("encode_intra", |b| {
        b.iter(|| Encoder::new(CodecConfig::default()).encode_frame(std::hint::black_box(&f0)))
    });
    group.bench_function("encode_predicted", |b| {
        b.iter(|| {
            let mut enc = Encoder::new(CodecConfig::default());
            enc.encode_frame(&f0);
            enc.encode_frame(std::hint::black_box(&f1))
        })
    });
    let mut enc = Encoder::new(CodecConfig::default());
    let encoded = enc.encode_frame(&f0);
    group.bench_function("decode_intra", |b| {
        b.iter(|| Decoder::new().decode_frame(std::hint::black_box(&encoded)))
    });
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
