//! Trace analytics: behaviour-model generation and Fig. 5 coverage.

use criterion::{criterion_group, criterion_main, Criterion};
use evr_projection::FovSpec;
use evr_trace::analysis::{coverage_curve, tracking_episodes};
use evr_trace::behavior::{generate_user_trace, params_for};
use evr_video::library::{scene_for, VideoId};

fn bench_coverage(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_analytics");
    group.sample_size(20);
    let scene = scene_for(VideoId::Rhino);
    let params = params_for(VideoId::Rhino);

    group.bench_function("generate_trace_30s", |b| {
        b.iter(|| generate_user_trace(&scene, &params, std::hint::black_box(3), 30.0, 30.0))
    });

    let traces: Vec<_> =
        (0..4).map(|u| generate_user_trace(&scene, &params, u, 20.0, 10.0)).collect();
    group.bench_function("coverage_curve_4users", |b| {
        b.iter(|| coverage_curve(std::hint::black_box(&traces), &scene, FovSpec::hdk2()))
    });
    group.bench_function("tracking_episodes_20s", |b| {
        b.iter(|| {
            tracking_episodes(std::hint::black_box(&traces[0]), &scene, evr_math::Radians(0.4))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_coverage);
criterion_main!(benches);
