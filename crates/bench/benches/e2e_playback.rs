//! End-to-end client playback simulation throughput: one user session
//! over a pre-ingested video (ingestion excluded — it is the server's
//! offline cost).

use criterion::{criterion_group, criterion_main, Criterion};
use evr_client::session::{ContentPath, PlaybackSession, Renderer, SessionConfig};
use evr_sas::{ingest_video, SasConfig, SasServer};
use evr_trace::behavior::{generate_user_trace, params_for};
use evr_video::library::{scene_for, VideoId};

fn bench_playback(c: &mut Criterion) {
    let scene = scene_for(VideoId::Rhino);
    let sas = SasConfig::tiny_for_tests();
    let server = SasServer::new(ingest_video(&scene, &sas, 4.0));
    let trace = generate_user_trace(&scene, &params_for(VideoId::Rhino), 5, 4.0, 30.0);

    let mut group = c.benchmark_group("e2e_playback_4s");
    group.sample_size(30);
    for (name, path, renderer) in [
        ("baseline_gpu", ContentPath::OnlineBaseline, Renderer::Gpu),
        ("sas_pte", ContentPath::OnlineSas, Renderer::Pte),
    ] {
        let session = PlaybackSession::new(SessionConfig::new(path, renderer, sas));
        group.bench_function(name, |b| {
            b.iter(|| session.run(std::hint::black_box(&server), &trace))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_playback);
criterion_main!(benches);
