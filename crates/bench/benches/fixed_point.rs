//! Fixed-point kernel throughput in the paper's [28, 10] format: the
//! CORDIC trigonometry dominates the PTU's per-pixel schedule.

use criterion::{criterion_group, criterion_main, Criterion};
use evr_math::fixed::FxCtx;

fn bench_fixed(c: &mut Criterion) {
    let ctx = FxCtx::q28_10();
    let a = ctx.from_f64(1.234567);
    let bv = ctx.from_f64(-0.765432);
    let mut group = c.benchmark_group("fixed_point_q28_10");
    group.bench_function("mul", |b| b.iter(|| ctx.mul(std::hint::black_box(a), bv)));
    group.bench_function("div", |b| b.iter(|| ctx.div(std::hint::black_box(a), bv)));
    group.bench_function("sqrt", |b| b.iter(|| ctx.sqrt(std::hint::black_box(a))));
    group.bench_function("sin_cos", |b| b.iter(|| ctx.sin_cos(std::hint::black_box(a))));
    group.bench_function("atan2", |b| b.iter(|| ctx.atan2(std::hint::black_box(a), bv)));
    group.bench_function("asin", |b| {
        let half = ctx.from_f64(0.5);
        b.iter(|| ctx.asin(std::hint::black_box(half)))
    });
    group.finish();
}

criterion_group!(benches, bench_fixed);
criterion_main!(benches);
