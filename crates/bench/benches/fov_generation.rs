//! SAS FOV-video generation: coordinate-map computation, map reuse and
//! antialiased rendering — the server-side pre-rendering hot path.

use criterion::{criterion_group, criterion_main, Criterion};
use evr_math::EulerAngles;
use evr_projection::pixel::downsample2x;
use evr_projection::{FilterMode, FovSpec, Projection, Transformer, Viewport};
use evr_video::library::{scene_for, VideoId};

fn bench_fovgen(c: &mut Criterion) {
    let mut group = c.benchmark_group("fov_generation");
    group.sample_size(20);
    let scene = scene_for(VideoId::Rhino);
    let src = scene.render_image(1.0, Projection::Erp, 320, 160);
    let t = Transformer::new(
        Projection::Erp,
        FilterMode::Bilinear,
        FovSpec::hdk2().expanded(evr_math::Degrees(10.0)),
        Viewport::new(224, 224),
    );
    let pose = EulerAngles::from_degrees(-5.0, -10.0, 0.0);

    group.bench_function("coordinate_map_224", |b| {
        b.iter(|| t.coordinate_map(std::hint::black_box(pose)))
    });
    let map = t.coordinate_map(pose);
    group.bench_function("render_with_map_224", |b| {
        b.iter(|| t.render_with_map(std::hint::black_box(&src), &map))
    });
    let hi = t.render_with_map(&src, &map);
    group
        .bench_function("downsample2x_224", |b| b.iter(|| downsample2x(std::hint::black_box(&hi))));
    group.bench_function("scene_render_src_320x160", |b| {
        b.iter(|| scene.render_image(std::hint::black_box(2.5), Projection::Erp, 320, 160))
    });
    group.finish();
}

criterion_group!(benches, bench_fovgen);
criterion_main!(benches);
