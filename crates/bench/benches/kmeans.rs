//! Spherical k-means throughput at SAS-ingestion scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evr_math::{Radians, SphericalCoord, Vec3};
use evr_semantics::kmeans::{kmeans_sphere, select_k};

fn points(n: usize) -> Vec<Vec3> {
    (0..n)
        .map(|i| {
            let lon = (i as f64 * 2.399963) % std::f64::consts::TAU - std::f64::consts::PI;
            let lat = ((i as f64 * 0.7).sin()) * 0.8;
            SphericalCoord::new(Radians(lon), Radians(lat)).to_unit_vector()
        })
        .collect()
}

fn bench_kmeans(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans_sphere");
    for n in [8usize, 32, 128] {
        let pts = points(n);
        group.bench_with_input(BenchmarkId::new("k4", n), &pts, |b, pts| {
            b.iter(|| kmeans_sphere(std::hint::black_box(pts), 4, 7))
        });
    }
    let pts = points(16);
    group.bench_function("select_k_16pts", |b| {
        b.iter(|| select_k(std::hint::black_box(&pts), 0.35, 6, 7))
    });
    group.finish();
}

criterion_group!(benches, bench_kmeans);
criterion_main!(benches);
