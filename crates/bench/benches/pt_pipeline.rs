//! Software (reference) projective-transformation throughput across
//! projection methods and filters — the work a GPU shader performs per
//! frame (paper §2/§6.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evr_math::EulerAngles;
use evr_projection::transform::render_panorama;
use evr_projection::{FilterMode, FovSpec, Projection, Rgb, Transformer, Viewport};

fn bench_pt(c: &mut Criterion) {
    let mut group = c.benchmark_group("pt_pipeline");
    group.sample_size(20);
    let pose = EulerAngles::from_degrees(30.0, -10.0, 0.0);
    for projection in Projection::ALL {
        let src = render_panorama(projection, 512, 256, |d| {
            Rgb::new((d.x * 120.0 + 128.0) as u8, (d.y * 120.0 + 128.0) as u8, 90)
        });
        for filter in [FilterMode::Nearest, FilterMode::Bilinear] {
            let t = Transformer::new(projection, filter, FovSpec::hdk2(), Viewport::new(128, 128));
            group.bench_function(
                BenchmarkId::new(projection.to_string(), filter.to_string()),
                |b| b.iter(|| t.render_fov(std::hint::black_box(&src), pose)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pt);
criterion_main!(benches);
