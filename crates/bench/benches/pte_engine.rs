//! PTE cycle-model throughput: frame analysis (coordinate stream +
//! line-buffer replay) and bit-exact fixed-point rendering.

use criterion::{criterion_group, criterion_main, Criterion};
use evr_math::EulerAngles;
use evr_projection::transform::render_panorama;
use evr_projection::{Projection, Rgb, Viewport};
use evr_pte::{Pte, PteConfig};

fn bench_pte(c: &mut Criterion) {
    let mut group = c.benchmark_group("pte_engine");
    group.sample_size(10);
    let pose = EulerAngles::from_degrees(45.0, 5.0, 0.0);

    let pte = Pte::new(PteConfig::prototype());
    group.bench_function("analyze_4k_stride4", |b| {
        b.iter(|| pte.analyze_frame_strided(3840, 2160, std::hint::black_box(pose), 4))
    });

    let small = Pte::new(PteConfig::prototype().with_viewport(Viewport::new(96, 96)));
    let src = render_panorama(Projection::Erp, 256, 128, |d| {
        Rgb::new((d.z * 120.0 + 128.0) as u8, 66, 99)
    });
    group.bench_function("render_96x96_bit_exact", |b| {
        b.iter(|| small.render_frame(std::hint::black_box(&src), pose))
    });
    group.finish();
}

criterion_group!(benches, bench_pte);
criterion_main!(benches);
