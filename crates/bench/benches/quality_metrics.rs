//! PSNR / SSIM throughput — the per-frame cost of the §8.6 quality
//! assessment use-case.

use criterion::{criterion_group, criterion_main, Criterion};
use evr_projection::{ImageBuffer, Rgb};
use evr_video::quality::{psnr, ssim};

fn bench_quality(c: &mut Criterion) {
    let a = ImageBuffer::from_fn(256, 256, |x, y| {
        Rgb::new((x ^ y) as u8, (x * 3) as u8, (y * 5) as u8)
    });
    let b2 = ImageBuffer::from_fn(256, 256, |x, y| {
        Rgb::new((x ^ y) as u8 ^ 3, (x * 3) as u8, (y * 5) as u8)
    });
    let mut group = c.benchmark_group("quality_256x256");
    group.bench_function("psnr", |b| b.iter(|| psnr(std::hint::black_box(&a), &b2)));
    group.bench_function("ssim", |b| b.iter(|| ssim(std::hint::black_box(&a), &b2)));
    group.finish();
}

criterion_group!(benches, bench_quality);
criterion_main!(benches);
