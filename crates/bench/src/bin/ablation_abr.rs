//! Ablation: adaptive-bitrate streaming on a constrained cellular-class
//! link — original ladder vs EVR's FOV streams.
//!
//! The paper evaluates on uncongested WiFi; this asks what its bandwidth
//! savings buy when the link is the bottleneck: the DASH client must
//! downshift quality or stall, while EVR's FOV streams fit comfortably.

use evr_bench::{header, scale_from_args};
use evr_client::abr::{simulate_abr, AbrPolicy, BandwidthTrace};
use evr_core::EvrSystem;
use evr_math::EulerAngles;
use evr_sas::ingest_ladder;
use evr_video::library::{scene_for, VideoId};

fn main() {
    let scale = scale_from_args(std::env::args().skip(1));
    let video = VideoId::Rhino;
    header("Ablation", "ABR on a fluctuating 4G-class link (video: Rhino)");

    // Real rung sizes for the original stream (coarsest first).
    let ladder = ingest_ladder(&scene_for(video), &scale.sas, &[24, 16, 10], scale.duration_s);
    eprintln!(
        "rung bitrates: {:.1} / {:.1} / {:.1} Mbps",
        ladder.rung_bitrate_bps(0) / 1e6,
        ladder.rung_bitrate_bps(1) / 1e6,
        ladder.rung_bitrate_bps(2) / 1e6
    );

    // EVR's per-segment FOV traffic (one quality, cluster chosen by a
    // centre-looking viewer).
    let system = EvrSystem::build(video, scale.sas, scale.duration_s);
    let catalog = system.server().catalog();
    let fov_ladder: Vec<Vec<u64>> = (0..catalog.segment_count())
        .map(|seg| {
            let cluster = system
                .server()
                .best_cluster(seg, EulerAngles::default())
                .or_else(|| catalog.clusters_in_segment(seg).first().copied());
            match cluster {
                Some(c) => vec![catalog.fov_target_bytes(catalog.fov_stream(seg, c).unwrap())],
                None => vec![catalog.original_target_bytes(seg)],
            }
        })
        .collect();

    println!(
        "{:>12} | {:>9} {:>7} {:>10} {:>9} | {:>9} {:>7}",
        "link", "stalls", "stall s", "mean rung", "MB", "EVR stall", "EVR MB"
    );
    for (name, link) in [
        ("40 Mbps", BandwidthTrace::constant(40e6)),
        ("25 Mbps", BandwidthTrace::constant(25e6)),
        ("25<->8 Mbps", BandwidthTrace::square_wave(25e6, 8e6, 20.0, scale.duration_s)),
        ("12 Mbps", BandwidthTrace::constant(12e6)),
    ] {
        let seg_s = ladder.segment_duration();
        let dash = simulate_abr(ladder.matrix(), seg_s, &link, AbrPolicy::default());
        let evr = simulate_abr(&fov_ladder, seg_s, &link, AbrPolicy::default());
        println!(
            "{:>12} | {:>9} {:>7.2} {:>10.2} {:>8.1} | {:>8.2}s {:>6.1}",
            name,
            dash.stalls,
            dash.stall_time_s,
            dash.mean_rung,
            dash.bytes as f64 / 1e6,
            evr.stall_time_s,
            evr.bytes as f64 / 1e6,
        );
    }
    println!("(EVR's single FOV quality costs less than the ladder's *lowest* rung, so");
    println!(" on constrained links it stalls less while never sacrificing source");
    println!(" quality; only deep dips below the FOV bitrate still bite)");
}
