//! Ablation: nearest-neighbour vs bilinear filtering in the PTE (§6.2
//! supports both).
//!
//! Bilinear costs more SRAM traffic and blend ops per pixel; nearest is
//! cheaper but reconstructs worse. This quantifies both sides.

use evr_bench::header;
use evr_math::EulerAngles;
use evr_projection::{FilterMode, FovSpec, Projection, Transformer, Viewport};
use evr_pte::{Pte, PteConfig};
use evr_video::library::{scene_for, VideoId};
use evr_video::quality::psnr;

fn main() {
    header("Ablation", "PTE filtering function: nearest vs bilinear");
    let scene = scene_for(VideoId::Paris);
    let src = scene.render_image(3.0, Projection::Erp, 640, 320);
    let pose = EulerAngles::from_degrees(20.0, -5.0, 0.0);
    // Quality reference: 2x-supersampled bilinear render.
    let vp = Viewport::new(160, 160);
    let reference = {
        let t = Transformer::new(
            Projection::Erp,
            FilterMode::Bilinear,
            FovSpec::hdk2(),
            Viewport::new(320, 320),
        );
        evr_projection::pixel::downsample2x(&t.render_fov(&src, pose).image)
    };
    println!("{:>10} {:>9} {:>10} {:>10}", "filter", "PSNR", "energy/fr", "power");
    for filter in [FilterMode::Nearest, FilterMode::Bilinear] {
        let t = Transformer::new(Projection::Erp, filter, FovSpec::hdk2(), vp);
        let img = t.render_fov(&src, pose).image;
        let quality = psnr(&reference, &img);
        let pte = Pte::new(PteConfig::prototype().with_filter(filter));
        let stats = pte.analyze_frame_strided(3840, 2160, pose, 4);
        println!(
            "{:>10} {:>7.1}dB {:>9.2}mJ {:>9.0}mW",
            filter.to_string(),
            quality,
            1000.0 * stats.energy_j(),
            1000.0 * stats.power_watts()
        );
    }
    println!("(bilinear buys several dB of reconstruction quality for a modest energy bump)");
}
