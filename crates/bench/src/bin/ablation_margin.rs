//! Ablation: the FOV streaming margin (how much wider than the device
//! FOV each pre-rendered stream is).
//!
//! A wider margin absorbs more head motion (fewer misses) but the FOV
//! frames cover — and therefore carry — more content.

use evr_bench::{header, pct, scale_from_args};
use evr_core::{run_variant, EvrSystem, ExperimentConfig, UseCase, Variant};
use evr_math::Degrees;
use evr_video::library::VideoId;

fn main() {
    let mut scale = scale_from_args(std::env::args().skip(1));
    if scale.users > 16 {
        scale.users = 16;
    }
    header("Ablation", "FOV streaming margin (video: RS, variant: S+H)");
    println!("{:>8} {:>10} {:>11} {:>10}", "margin", "miss rate", "bw saving", "saving");
    for margin in [0.0f64, 5.0, 10.0, 15.0, 20.0] {
        let mut sas = scale.sas;
        sas.fov_margin = Degrees(margin);
        let system = EvrSystem::build(VideoId::Rs, sas, scale.duration_s);
        let cfg = ExperimentConfig { users: scale.users, threads: scale.threads };
        let base = run_variant(&system, UseCase::OnlineStreaming, Variant::Baseline, &cfg);
        let sh = run_variant(&system, UseCase::OnlineStreaming, Variant::SPlusH, &cfg);
        println!(
            "{:>7}° {:>10} {:>11} {:>10}",
            margin,
            pct(sh.fov_miss_fraction),
            pct(1.0 - sh.bytes_received / base.bytes_received),
            pct(sh.ledger.device_saving_vs(&base.ledger)),
        );
    }
}
