//! Ablation: temporal segment length (§5.3 fixes it at 30 frames).
//!
//! Shorter segments re-stream less on a miss but pay more intra frames;
//! longer segments compress better but amplify each miss into a longer
//! fallback. This sweep shows why ~1 second (30 frames) is a sweet spot.

use evr_bench::{header, pct, scale_from_args};
use evr_core::{run_variant, EvrSystem, ExperimentConfig, UseCase, Variant};
use evr_video::codec::CodecConfig;
use evr_video::library::VideoId;

fn main() {
    let mut scale = scale_from_args(std::env::args().skip(1));
    if scale.users > 16 {
        scale.users = 16; // ablations don't need the full study
    }
    header("Ablation", "SAS segment length (video: Rhino, variant: S+H)");
    println!(
        "{:>8} {:>10} {:>11} {:>11} {:>10}",
        "frames", "miss rate", "bw saving", "storage", "saving"
    );
    for seg_frames in [15u32, 30, 60, 90] {
        let mut sas = scale.sas;
        sas.segment_frames = seg_frames;
        sas.codec = CodecConfig::new(seg_frames, sas.codec.quantizer);
        let system = EvrSystem::build(VideoId::Rhino, sas, scale.duration_s);
        let cfg = ExperimentConfig { users: scale.users, threads: scale.threads };
        let base = run_variant(&system, UseCase::OnlineStreaming, Variant::Baseline, &cfg);
        let sh = run_variant(&system, UseCase::OnlineStreaming, Variant::SPlusH, &cfg);
        println!(
            "{:>8} {:>10} {:>11} {:>10.2}x {:>10}",
            seg_frames,
            pct(sh.fov_miss_fraction),
            pct(1.0 - sh.bytes_received / base.bytes_received),
            system.server().catalog().storage_overhead(),
            pct(sh.ledger.device_saving_vs(&base.ledger)),
        );
    }
}
