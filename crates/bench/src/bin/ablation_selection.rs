//! Ablation: FOV-video selection policy — current pose vs lightweight
//! linear head-motion prediction (the paper's stated future work, §8.2).

use evr_bench::{header, pct, scale_from_args};
use evr_client::session::{ContentPath, PlaybackSession, Renderer, SelectionPolicy, SessionConfig};
use evr_core::EvrSystem;
use evr_video::library::VideoId;

fn main() {
    let mut scale = scale_from_args(std::env::args().skip(1));
    if scale.users > 16 {
        scale.users = 16;
    }
    header("Ablation", "stream selection: current pose vs linear prediction");
    println!(
        "{:10} | {:>12} {:>12} | {:>12} {:>12}",
        "video", "miss (cur)", "miss (pred)", "bytes (cur)", "bytes (pred)"
    );
    for video in VideoId::EVALUATION {
        let system = EvrSystem::build(video, scale.sas, scale.duration_s);
        let run = |selection: SelectionPolicy| {
            let mut cfg = SessionConfig::new(ContentPath::OnlineSas, Renderer::Pte, scale.sas);
            cfg.selection = selection;
            let session = PlaybackSession::new(cfg);
            let mut miss = 0.0;
            let mut bytes = 0.0;
            for user in 0..scale.users {
                let r = system.run_with(&session, user);
                miss += r.fov_miss_fraction();
                bytes += r.bytes_received as f64;
            }
            (miss / scale.users as f64, bytes / scale.users as f64)
        };
        let (m_cur, b_cur) = run(SelectionPolicy::CurrentPose);
        let (m_pred, b_pred) = run(SelectionPolicy::LinearPrediction { lookahead_s: 0.5 });
        println!(
            "{:10} | {:>12} {:>12} | {:>10.1}MB {:>10.1}MB",
            video.to_string(),
            pct(m_cur),
            pct(m_pred),
            b_cur / 1e6,
            b_pred / 1e6
        );
    }
    println!("(finding: naive velocity extrapolation amplifies gaze jitter and tends to");
    println!(" select slightly *worse* streams — consistent with the paper's choice of a");
    println!(" DNN predictor in §8.5 and its note that robust HMP is future work)");
}
