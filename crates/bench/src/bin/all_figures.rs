//! Regenerates every table and figure of the paper in one run, sharing
//! one ingestion cache. See EXPERIMENTS.md for the recorded results.

use evr_bench::{context_from_env, header, pct};
use evr_core::figures as f;

fn main() {
    let t0 = std::time::Instant::now();
    let ctx = context_from_env();

    header("Figure 3", "device power characterisation");
    for r in f::fig03(&ctx) {
        println!(
            "{:10} total {:4.2} W  PT share {}",
            r.video.to_string(),
            r.total_watts,
            pct(r.pt_share)
        );
    }

    header("Figure 5", "object coverage (first / all objects)");
    for c in f::fig05(&ctx) {
        println!(
            "{:10} x=1: {:5.1}%   x=all: {:5.1}%",
            c.video.to_string(),
            c.coverage_pct[0],
            c.coverage_pct.last().unwrap()
        );
    }

    header("Figure 6", "tracking-duration CDF (>=5 s share)");
    for c in f::fig06(&ctx) {
        println!("{:10} {:5.1}%", c.video.to_string(), c.cumulative_pct[5]);
    }

    header("Figure 11", "fixed-point sweep ([28,10] error)");
    let chosen = f::fig11()
        .into_iter()
        .find(|p| p.total_bits == 28 && p.int_bits == 10)
        .expect("design point");
    println!("[28,10] error {:.2e} (threshold 1e-3)", chosen.error);

    header("Figure 12", "S / H / S+H savings");
    for r in f::fig12(&ctx) {
        println!(
            "{:10} compute {} {} {} | device {} {} {}",
            r.video.to_string(),
            pct(r.compute_saving[0]),
            pct(r.compute_saving[1]),
            pct(r.compute_saving[2]),
            pct(r.device_saving[0]),
            pct(r.device_saving[1]),
            pct(r.device_saving[2])
        );
    }

    header("Figure 13", "fps drop / bandwidth / miss rate");
    for r in f::fig13(&ctx) {
        println!(
            "{:10} fps {:4.2}%  bw {:5.1}%  miss {:4.1}%",
            r.video.to_string(),
            r.fps_drop_pct,
            r.bandwidth_saving_pct,
            r.miss_rate_pct
        );
    }

    header("Figure 14", "storage/energy trade-off");
    for p in f::fig14(&ctx) {
        println!(
            "{:10} util {:3.0}%  overhead {:4.2}x  saving {}",
            p.video.to_string(),
            100.0 * p.utilization,
            p.storage_overhead,
            pct(p.energy_saving)
        );
    }

    header("Figure 15", "live / offline H savings");
    for r in f::fig15(&ctx) {
        println!(
            "{:18} {:10} compute {} device {}",
            r.use_case.to_string(),
            r.video.to_string(),
            pct(r.compute_saving),
            pct(r.device_saving)
        );
    }

    header("Figure 16", "S+H vs head-motion prediction");
    for r in f::fig16(&ctx) {
        println!(
            "{:10} S+H {}  HMP {}  ideal {}",
            r.video.to_string(),
            pct(r.s_plus_h),
            pct(r.perfect_hmp),
            pct(r.ideal_hmp)
        );
    }

    header("Figure 17", "PTE quality assessment");
    for r in f::fig17() {
        println!(
            "{}x{} {:4}  reduction {:5.1}%",
            r.resolution.0,
            r.resolution.1,
            r.projection.to_string(),
            r.reduction_pct
        );
    }

    header("Tiled variants", "T / T+H vs baseline (clean | mild faults)");
    for r in f::tiled_variants_table(&ctx) {
        println!(
            "{:10} {:4} bw {} device {} | bw {} device {} degraded {}",
            r.video.to_string(),
            r.variant.to_string(),
            pct(r.bandwidth_saving),
            pct(r.device_saving),
            pct(r.faulted_bandwidth_saving),
            pct(r.faulted_device_saving),
            pct(r.faulted_degraded_fraction)
        );
    }

    header("§7.2", "PTE prototype");
    for r in f::proto_pte() {
        println!("{} PTU: {:5.1} FPS at {:4.0} mW", r.ptus, r.fps, 1000.0 * r.power_w);
    }

    println!("\ntotal wall time: {:?}", t0.elapsed());
}
