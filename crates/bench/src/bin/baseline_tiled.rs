//! Comparison against the related-work baseline: tile-based view-guided
//! streaming (paper §2/§9). Tiling saves bandwidth; EVR saves energy.

use evr_bench::{header, pct, scale_from_args};
use evr_core::tiled::compare_tiled;
use evr_core::EvrSystem;
use evr_sas::TileGrid;
use evr_video::library::VideoId;

fn main() {
    let mut scale = scale_from_args(std::env::args().skip(1));
    if scale.users > 16 {
        scale.users = 16;
    }
    header("Baseline comparison", "tiled view-guided streaming vs EVR S+H");
    println!(
        "{:10} | {:>9} {:>9} | {:>9} {:>9} | {:>7} {:>7} {:>7}",
        "video", "tiled bw", "EVR bw", "tiled ΔE", "EVR ΔE", "base W", "tiled W", "EVR W"
    );
    for video in VideoId::EVALUATION {
        let system = EvrSystem::build(video, scale.sas, scale.duration_s);
        let c = compare_tiled(&system, TileGrid::default(), scale.users);
        println!(
            "{:10} | {:>9} {:>9} | {:>9} {:>9} | {:>6.2}W {:>6.2}W {:>6.2}W",
            video.to_string(),
            pct(c.tiled_bandwidth_saving),
            pct(c.evr_bandwidth_saving),
            pct(c.tiled_device_saving),
            pct(c.evr_device_saving),
            c.baseline_w,
            c.tiled_w,
            c.evr_w,
        );
    }
    println!("(the paper's §2 point: view-guided tiling cuts bandwidth but keeps the PT");
    println!(" operations — and therefore the energy — on the device)");
}
