//! The CI perf-regression gate.
//!
//! Compares fresh `fleet_bench` / `ingest_bench` / `serve_bench` /
//! `tiled_bench` / `store_bench` JSON reports against
//! the committed baselines in `benches/baselines/` and exits non-zero
//! if any noise-tolerant threshold is violated (see
//! [`evr_bench::gate`]): >15% throughput drop, >0.1 absolute parallel
//! efficiency drop, a parity break in the current run, or (store) a
//! >2% drop in the delta store's residency / wire-byte reductions.
//!
//! ```text
//! # gate a run against the committed baselines
//! cargo run --release -p evr-bench --bin bench_gate -- \
//!     fleet=target/BENCH_fleet.json ingest=target/BENCH_ingest.json \
//!     baselines=benches/baselines
//!
//! # accept the current numbers as the new baseline
//! cargo run --release -p evr-bench --bin bench_gate -- \
//!     fleet=target/BENCH_fleet.json ingest=target/BENCH_ingest.json \
//!     baselines=benches/baselines --update-baseline
//! ```
//!
//! Exit codes: `0` pass (or baseline updated), `1` threshold
//! violations, `2` usage / IO / parse errors (including a missing
//! baseline — run once with `--update-baseline` to seed it).

use std::path::{Path, PathBuf};
use std::process::exit;

use evr_bench::gate::{
    check_fleet, check_ingest, check_serve, check_store, check_tiled, GateThresholds,
};
use evr_bench::json::Json;

struct GateArgs {
    fleet: Option<String>,
    ingest: Option<String>,
    serve: Option<String>,
    tiled: Option<String>,
    store: Option<String>,
    baselines: PathBuf,
    update: bool,
}

fn parse_args(args: impl Iterator<Item = String>) -> GateArgs {
    let mut out = GateArgs {
        fleet: None,
        ingest: None,
        serve: None,
        tiled: None,
        store: None,
        baselines: PathBuf::from("benches/baselines"),
        update: false,
    };
    for arg in args {
        if let Some(v) = arg.strip_prefix("fleet=") {
            out.fleet = Some(v.to_string());
        } else if let Some(v) = arg.strip_prefix("ingest=") {
            out.ingest = Some(v.to_string());
        } else if let Some(v) = arg.strip_prefix("serve=") {
            out.serve = Some(v.to_string());
        } else if let Some(v) = arg.strip_prefix("tiled=") {
            out.tiled = Some(v.to_string());
        } else if let Some(v) = arg.strip_prefix("store=") {
            out.store = Some(v.to_string());
        } else if let Some(v) = arg.strip_prefix("baselines=") {
            out.baselines = PathBuf::from(v);
        } else if arg == "--update-baseline" {
            out.update = true;
        } else {
            eprintln!(
                "unknown argument {arg:?}; expected `fleet=PATH`, `ingest=PATH`, \
                 `serve=PATH`, `tiled=PATH`, `store=PATH`, `baselines=DIR` or \
                 `--update-baseline`"
            );
            exit(2);
        }
    }
    if out.fleet.is_none()
        && out.ingest.is_none()
        && out.serve.is_none()
        && out.tiled.is_none()
        && out.store.is_none()
    {
        eprintln!(
            "nothing to gate: pass `fleet=PATH`, `ingest=PATH`, `serve=PATH`, `tiled=PATH` \
             and/or `store=PATH`"
        );
        exit(2);
    }
    out
}

fn load(path: &Path, role: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {role} report {}: {e}", path.display());
        if role == "baseline" {
            eprintln!("seed it with `bench_gate ... --update-baseline`");
        }
        exit(2);
    });
    Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {role} report {}: {e}", path.display());
        exit(2);
    })
}

/// Gates (or, with `--update-baseline`, adopts) one bench's report.
/// Returns the violation messages.
fn gate_one(
    args: &GateArgs,
    current_path: &str,
    baseline_name: &str,
    check: impl Fn(&Json, &Json, &GateThresholds) -> Vec<String>,
) -> Vec<String> {
    let baseline_path = args.baselines.join(baseline_name);
    if args.update {
        std::fs::create_dir_all(&args.baselines).unwrap_or_else(|e| {
            eprintln!("cannot create {}: {e}", args.baselines.display());
            exit(2);
        });
        std::fs::copy(current_path, &baseline_path).unwrap_or_else(|e| {
            eprintln!("cannot copy {current_path} to {}: {e}", baseline_path.display());
            exit(2);
        });
        println!("baseline updated: {}", baseline_path.display());
        return Vec::new();
    }
    let current = load(Path::new(current_path), "current");
    let baseline = load(&baseline_path, "baseline");
    let violations = check(&current, &baseline, &GateThresholds::default());
    if violations.is_empty() {
        println!("gate ok: {current_path} vs {}", baseline_path.display());
    }
    violations
}

fn main() {
    let args = parse_args(std::env::args().skip(1));
    let mut violations = Vec::new();
    if let Some(fleet) = &args.fleet {
        violations.extend(gate_one(&args, fleet, "fleet.json", check_fleet));
    }
    if let Some(ingest) = &args.ingest {
        violations.extend(gate_one(&args, ingest, "ingest.json", check_ingest));
    }
    if let Some(serve) = &args.serve {
        violations.extend(gate_one(&args, serve, "serve.json", check_serve));
    }
    if let Some(tiled) = &args.tiled {
        violations.extend(gate_one(&args, tiled, "tiled.json", check_tiled));
    }
    if let Some(store) = &args.store {
        violations.extend(gate_one(&args, store, "store.json", check_store));
    }
    if !violations.is_empty() {
        eprintln!("perf gate FAILED ({} violation(s)):", violations.len());
        for v in &violations {
            eprintln!("  - {v}");
        }
        eprintln!("if the regression is intended, refresh with `bench_gate ... --update-baseline`");
        exit(1);
    }
}
