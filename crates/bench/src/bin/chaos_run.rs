//! Chaos run: replays the online-streaming S+H and T+H pipelines under
//! a ladder of fault severities (clean → mild → moderate → severe →
//! server) and reports how gracefully playback degrades — stalls,
//! degraded/frozen frames, retries and the energy spent riding out
//! faults. The `…+T+H` rows exercise the tiled multi-rate path, whose
//! per-tile retries degrade single tiles instead of freezing frames.
//!
//! Every run is a pure function of the seed: the link process, the loss
//! channel and the fault plan all draw from seeded deterministic
//! streams, so `json=PATH` output diffs bit-identically across runs and
//! machines. CI pins a golden file (`tests/golden/chaos_smoke.json`)
//! against exactly this invocation:
//!
//! ```text
//! cargo run --release -p evr-bench --bin chaos_run -- quick tiny seed=7 json=/tmp/chaos.json
//! cargo run --release -p evr-bench --bin chaos_run -- users=8 duration=12 seed=42
//! ```

use evr_bench::header;
use evr_core::experiment::{run_variant_resilient, ExperimentConfig};
use evr_core::report::chaos_markdown;
use evr_core::{AggregateReport, EvrSystem, UseCase, Variant};
use evr_faults::{
    BandwidthProfile, FaultEvent, FaultPlan, FaultSetup, GilbertElliott, LinkProcess,
    ServerFaultEvent, ServerFaultPlan,
};
use evr_sas::SasConfig;
use evr_video::library::VideoId;

struct ChaosArgs {
    users: u64,
    duration_s: f64,
    seed: u64,
    sas: SasConfig,
    threads: usize,
    json: Option<String>,
}

impl Default for ChaosArgs {
    fn default() -> Self {
        ChaosArgs {
            users: 59,
            duration_s: 60.0,
            seed: 7,
            sas: SasConfig::default(),
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            json: None,
        }
    }
}

fn parse_args(args: impl Iterator<Item = String>) -> ChaosArgs {
    let mut out = ChaosArgs::default();
    for arg in args {
        if arg == "quick" {
            out.users = 6;
            out.duration_s = 6.0;
        } else if arg == "tiny" {
            out.sas = SasConfig::tiny_for_tests();
        } else if let Some(v) = arg.strip_prefix("users=") {
            out.users = v.parse().expect("users=N takes an integer");
        } else if let Some(v) = arg.strip_prefix("duration=") {
            out.duration_s = v.parse().expect("duration=S takes seconds");
        } else if let Some(v) = arg.strip_prefix("seed=") {
            out.seed = v.parse().expect("seed=N takes an integer");
        } else if let Some(v) = arg.strip_prefix("json=") {
            out.json = Some(v.to_string());
        } else {
            panic!(
                "unknown argument {arg:?}; expected `quick`, `tiny`, `users=N`, \
                 `duration=S`, `seed=N` or `json=PATH`"
            );
        }
    }
    out
}

/// The severity ladder. Each rung strictly adds impairments on top of
/// the previous one so the reported degradation is monotone by design.
fn ladder(seed: u64, duration_s: f64) -> Vec<(String, FaultSetup)> {
    let full = 300e6; // the paper's §8.2 clean operating point
    let mild_link = LinkProcess {
        profile: BandwidthProfile::constant(full),
        loss: GilbertElliott::bursty(0.05, 2.0, 0.2),
        rtt_s: 0.004,
    };
    let moderate_link = LinkProcess {
        profile: BandwidthProfile::step_drop(full, full / 8.0, 0.4 * duration_s),
        loss: GilbertElliott::bursty(0.15, 2.5, 0.4),
        rtt_s: 0.008,
    };
    let severe_link = LinkProcess {
        profile: BandwidthProfile::step_drop(full, full / 8.0, 0.4 * duration_s)
            .with_outage(0.55 * duration_s, 0.2 * duration_s),
        loss: GilbertElliott::bursty(0.3, 4.0, 0.6),
        rtt_s: 0.02,
    };
    let mild_plan = FaultPlan::none()
        .with(FaultEvent::LateSegment { segment: 1, delay_s: 0.05 })
        .with(FaultEvent::RequestDrop { segment: 3 });
    let moderate_plan = mild_plan.clone().with(FaultEvent::SegmentCorruption { segment: 2 });
    let severe_plan = moderate_plan
        .clone()
        .with(FaultEvent::ServerOutage { start_s: 0.1 * duration_s, duration_s: 0.1 * duration_s })
        .with(FaultEvent::RequestDrop { segment: 0 });
    // Server-side chaos on top of the severe rung: one shard dark, one
    // shard slow past the shed budget, and an eviction storm inflating
    // store misses — exercising the serving front's shed/breaker rungs.
    let server_plan = ServerFaultPlan::healthy()
        .with(ServerFaultEvent::ShardOutage {
            shard: 0,
            start_s: 0.15 * duration_s,
            duration_s: 0.3 * duration_s,
        })
        .with(ServerFaultEvent::ShardOutage {
            shard: 1,
            start_s: 0.15 * duration_s,
            duration_s: 0.3 * duration_s,
        })
        .with(ServerFaultEvent::SlowShard {
            shard: 0,
            latency_scale: 64.0,
            start_s: 0.5 * duration_s,
            duration_s: 0.3 * duration_s,
        })
        .with(ServerFaultEvent::StoreEvictionStorm {
            start_s: 0.55 * duration_s,
            duration_s: 0.2 * duration_s,
        });
    vec![
        ("clean".to_string(), FaultSetup::seeded(seed)),
        ("mild".to_string(), FaultSetup::seeded(seed).with_link(mild_link).with_plan(mild_plan)),
        (
            "moderate".to_string(),
            FaultSetup::seeded(seed).with_link(moderate_link).with_plan(moderate_plan),
        ),
        (
            "severe".to_string(),
            FaultSetup::seeded(seed).with_link(severe_link.clone()).with_plan(severe_plan.clone()),
        ),
        (
            "server".to_string(),
            FaultSetup::seeded(seed)
                .with_link(severe_link)
                .with_plan(severe_plan)
                .with_server(server_plan),
        ),
    ]
}

/// Serialises the sweep to a stable JSON document: fixed key order,
/// every float printed `{:.6}`, one rung per line. Byte-identical
/// across runs with the same arguments, which is what the CI golden
/// diff relies on.
fn sweep_json(
    rows: &[(String, AggregateReport)],
    seed: u64,
    users: u64,
    duration_s: f64,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"seed\": {seed},\n  \"users\": {users},\n  \"duration_s\": {duration_s:.6},\n"
    ));
    out.push_str("  \"rungs\": [\n");
    for (i, (label, agg)) in rows.iter().enumerate() {
        let resilience: f64 = evr_energy::Component::ALL
            .iter()
            .map(|c| agg.ledger.get(*c, evr_energy::Activity::Resilience))
            .sum();
        out.push_str(&format!(
            "    {{\"severity\": \"{label}\", \"device_j\": {:.6}, \"resilience_j\": {:.6}, \
             \"stall_s\": {:.6}, \"rebuffer_s\": {:.6}, \"degraded_fraction\": {:.6}, \
             \"frozen_fraction\": {:.6}, \"retries\": {:.6}, \"timeouts\": {:.6}, \
             \"fps_drop\": {:.6}, \"bytes_received\": {:.6}, \"shed\": {:.6}, \
             \"front_unavailable\": {:.6}}}{}\n",
            agg.ledger.total(),
            resilience,
            agg.fault_stall_s,
            agg.rebuffer_time_s,
            agg.degraded_fraction,
            agg.frozen_fraction,
            agg.retries,
            agg.timeouts,
            agg.fps_drop,
            agg.bytes_received,
            agg.shed_segments,
            agg.front_unavailable_segments,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args = parse_args(std::env::args().skip(1));
    header("chaos", "S+H online streaming under the fault-severity ladder");
    println!("video Rhino, {} users x {:.0} s, seed {}", args.users, args.duration_s, args.seed);

    let system = EvrSystem::build(VideoId::Rhino, args.sas, args.duration_s);
    let cfg = ExperimentConfig { users: args.users, threads: args.threads };
    let mut rows: Vec<(String, AggregateReport)> = Vec::new();
    for (label, setup) in ladder(args.seed, args.duration_s) {
        for (variant, tag) in [(Variant::SPlusH, ""), (Variant::TPlusH, "+T+H")] {
            let agg =
                run_variant_resilient(&system, UseCase::OnlineStreaming, variant, &cfg, &setup);
            let row = format!("{label}{tag}");
            println!(
                "  {row:<12} stall {:.3} s, degraded {:.1}%, frozen {:.1}%, retries {:.1}",
                agg.fault_stall_s,
                100.0 * agg.degraded_fraction,
                100.0 * agg.frozen_fraction,
                agg.retries
            );
            rows.push((row, agg));
        }
    }

    println!();
    print!("{}", chaos_markdown(&rows));

    if let Some(path) = &args.json {
        let json = sweep_json(&rows, args.seed, args.users, args.duration_s);
        std::fs::write(path, &json).expect("write chaos JSON");
        println!("json: {path}");
    }
}
