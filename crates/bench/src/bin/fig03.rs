//! Figure 3: power and energy characterisation of the VR device.
//!
//! (a) per-component power during baseline 360° playback;
//! (b) projective transformation's share of compute+memory energy.

use evr_bench::{context_from_env, header, pct};
use evr_core::figures::fig03;
use evr_energy::Component;

fn main() {
    let ctx = context_from_env();
    header("Figure 3a", "device power by component (baseline playback)");
    println!(
        "{:10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "video", "display", "network", "storage", "memory", "compute", "total"
    );
    let rows = fig03(&ctx);
    for r in &rows {
        print!("{:10}", r.video.to_string());
        for w in r.component_watts {
            print!(" {w:7.2}W");
        }
        println!(" {:7.2}W", r.total_watts);
    }
    println!();
    header("Figure 3b", "PT contribution to compute+memory energy");
    for r in &rows {
        println!("{:10} {}", r.video.to_string(), pct(r.pt_share));
    }
    let avg = rows.iter().map(|r| r.pt_share).sum::<f64>() / rows.len() as f64;
    println!("{:10} {}   (paper: ~40%, up to 53% for Rhino)", "average", pct(avg));
    let display_share = rows
        .iter()
        .map(|r| {
            r.component_watts[Component::ALL.iter().position(|c| *c == Component::Display).unwrap()]
                / r.total_watts
        })
        .sum::<f64>()
        / rows.len() as f64;
    println!("\ndisplay share {} (paper: ~7%)", pct(display_share));
}
