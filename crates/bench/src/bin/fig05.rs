//! Figure 5: percentage of frames in which at least one of the top-x
//! identified objects appears in users' viewing areas.

use evr_bench::{context_from_env, header};
use evr_core::figures::fig05;

fn main() {
    let ctx = context_from_env();
    header("Figure 5", "object coverage of user viewing areas");
    for curve in fig05(&ctx) {
        print!("{:10}", curve.video.to_string());
        for (x, pct) in curve.coverage_pct.iter().enumerate() {
            print!(" x={:<2}:{:5.1}%", x + 1, pct);
        }
        println!();
    }
    println!("(paper: one object covers 60–80% of frames; all objects reach 80–100%)");
}
