//! Figure 6: cumulative distribution of object-tracking durations.

use evr_bench::{context_from_env, header};
use evr_core::figures::fig06;

fn main() {
    let ctx = context_from_env();
    header("Figure 6", "cumulative time distribution of tracking durations");
    let curves = fig06(&ctx);
    print!("{:10}", "video");
    for x in &curves[0].xs {
        print!(" {:>7}", format!(">={x}s"));
    }
    println!();
    for c in &curves {
        print!("{:10}", c.video.to_string());
        for v in &c.cumulative_pct {
            print!(" {v:6.1}%");
        }
        println!();
    }
    let at5 = curves.iter().map(|c| c.cumulative_pct[5]).sum::<f64>() / curves.len() as f64;
    println!("average time in episodes >= 5 s: {at5:.1}%  (paper: ~47%)");
}
