//! Figure 11: pixel error of the fixed-point PT datapath across
//! representations; the paper selects [28, 10].

use evr_bench::header;
use evr_core::figures::fig11;

fn main() {
    header("Figure 11", "fixed-point pixel error vs bit allocation");
    println!("{:>6} {:>5} {:>7} {:>12}  note", "total", "int", "int%", "error");
    for p in fig11() {
        let note = if p.total_bits == 28 && p.int_bits == 10 {
            "  <= paper's chosen design [28, 10]"
        } else if p.error > 1e-3 {
            "  above acceptability threshold (1e-3)"
        } else {
            ""
        };
        println!(
            "{:>6} {:>5} {:>6.1}% {:>12.3e}{}",
            p.total_bits, p.int_bits, p.int_pct, p.error, note
        );
    }
}
