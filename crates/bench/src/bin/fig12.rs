//! Figure 12: compute and device energy savings of S / H / S+H under
//! online streaming.

use evr_bench::{context_from_env, header, pct};
use evr_core::figures::fig12;

fn main() {
    let ctx = context_from_env();
    header("Figure 12", "energy savings vs baseline (online streaming)");
    println!(
        "{:10} | {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7}",
        "video", "S", "H", "S+H", "S", "H", "S+H"
    );
    println!("{:10} | {:^23} | {:^23}", "", "compute (SoC) saving", "device saving");
    let rows = fig12(&ctx);
    let mut sums = [0.0f64; 6];
    for r in &rows {
        println!(
            "{:10} | {} {} {} | {} {} {}",
            r.video.to_string(),
            pct(r.compute_saving[0]),
            pct(r.compute_saving[1]),
            pct(r.compute_saving[2]),
            pct(r.device_saving[0]),
            pct(r.device_saving[1]),
            pct(r.device_saving[2]),
        );
        for i in 0..3 {
            sums[i] += r.compute_saving[i];
            sums[3 + i] += r.device_saving[i];
        }
    }
    let n = rows.len() as f64;
    println!(
        "{:10} | {} {} {} | {} {} {}",
        "average",
        pct(sums[0] / n),
        pct(sums[1] / n),
        pct(sums[2] / n),
        pct(sums[3] / n),
        pct(sums[4] / n),
        pct(sums[5] / n),
    );
    println!("(paper: compute S 22% / H 38% / S+H 41% avg, S+H up to 58%; device S+H 29% avg, up to 42%)");
}
