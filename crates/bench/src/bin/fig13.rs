//! Figure 13: FPS drop and bandwidth savings of S+H, plus the FOV-miss
//! rates reported in §8.2.

use evr_bench::{context_from_env, header};
use evr_core::figures::fig13;

fn main() {
    let ctx = context_from_env();
    header("Figure 13", "user-experience impact and bandwidth savings (S+H)");
    println!("{:10} {:>10} {:>12} {:>10}", "video", "fps drop", "bw saving", "miss rate");
    let rows = fig13(&ctx);
    for r in &rows {
        println!(
            "{:10} {:>9.2}% {:>11.1}% {:>9.1}%",
            r.video.to_string(),
            r.fps_drop_pct,
            r.bandwidth_saving_pct,
            r.miss_rate_pct
        );
    }
    let n = rows.len() as f64;
    println!(
        "{:10} {:>9.2}% {:>11.1}% {:>9.1}%",
        "average",
        rows.iter().map(|r| r.fps_drop_pct).sum::<f64>() / n,
        rows.iter().map(|r| r.bandwidth_saving_pct).sum::<f64>() / n,
        rows.iter().map(|r| r.miss_rate_pct).sum::<f64>() / n,
    );
    println!("(paper: ~1% fps drop; bandwidth savings up to 34%, avg 28%; miss rate 5.3–12.0%, avg 7.7%)");
}
