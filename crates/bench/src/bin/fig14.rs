//! Figure 14: storage overhead vs energy saving across object
//! utilisations (25/50/75/100%).

use evr_bench::{context_from_env, header, pct};
use evr_core::figures::fig14;

fn main() {
    let ctx = context_from_env();
    header("Figure 14", "storage overhead vs S+H device energy saving");
    println!("{:10} {:>6} {:>10} {:>10}", "video", "util", "overhead", "saving");
    for p in fig14(&ctx) {
        println!(
            "{:10} {:>5.0}% {:>9.2}x {:>10}",
            p.video.to_string(),
            100.0 * p.utilization,
            p.storage_overhead,
            pct(p.energy_saving)
        );
    }
    println!("(paper: overhead 4.2x avg at 100% util — Paris lowest 2.0x, Timelapse highest 7.6x;");
    println!(" at 25% util overhead drops to ~1.1x while still saving ~24%)");
}
