//! Figure 15: H-only savings in the live-streaming and offline-playback
//! use-cases.

use evr_bench::{context_from_env, header, pct};
use evr_core::figures::fig15;

fn main() {
    let ctx = context_from_env();
    header("Figure 15", "H savings for live streaming and offline playback");
    println!("{:18} {:10} {:>9} {:>9}", "use-case", "video", "compute", "device");
    for r in fig15(&ctx) {
        println!(
            "{:18} {:10} {:>9} {:>9}",
            r.use_case.to_string(),
            r.video.to_string(),
            pct(r.compute_saving),
            pct(r.device_saving)
        );
    }
    println!("(paper: live 38% compute / 21% device; offline slightly higher device, ~23%)");
}
