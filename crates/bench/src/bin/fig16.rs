//! Figure 16: SAS vs on-device head-motion prediction.

use evr_bench::{context_from_env, header, pct};
use evr_core::figures::fig16;

fn main() {
    let ctx = context_from_env();
    header("Figure 16", "S+H vs perfect on-device HMP (device energy savings)");
    println!("{:10} {:>8} {:>13} {:>22}", "video", "S+H", "Perfect HMP", "Perfect HMP w/o ovh");
    let rows = fig16(&ctx);
    for r in &rows {
        println!(
            "{:10} {:>8} {:>13} {:>22}",
            r.video.to_string(),
            pct(r.s_plus_h),
            pct(r.perfect_hmp),
            pct(r.ideal_hmp)
        );
    }
    let n = rows.len() as f64;
    println!(
        "{:10} {:>8} {:>13} {:>22}",
        "average",
        pct(rows.iter().map(|r| r.s_plus_h).sum::<f64>() / n),
        pct(rows.iter().map(|r| r.perfect_hmp).sum::<f64>() / n),
        pct(rows.iter().map(|r| r.ideal_hmp).sum::<f64>() / n),
    );
    println!("(paper: S+H 29% beats perfect HMP 26%; zero-overhead HMP reaches 39%)");
}
