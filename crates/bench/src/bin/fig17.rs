//! Figure 17: PTE vs GPU energy for real-time 360° video quality
//! assessment (§8.6).

use evr_bench::header;
use evr_core::figures::fig17;

fn main() {
    header("Figure 17", "energy reduction of PTE-based quality assessment");
    println!("{:>12} {:>6} {:>11}", "resolution", "proj", "reduction");
    for r in fig17() {
        println!(
            "{:>12} {:>6} {:>10.1}%",
            format!("{}x{}", r.resolution.0, r.resolution.1),
            r.projection.to_string(),
            r.reduction_pct
        );
    }
    println!("(paper: up to 40% reduction, shrinking as resolution grows)");
}
