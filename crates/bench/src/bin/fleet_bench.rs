//! Fleet runner benchmark: the paper's 59-user Fig. 12 sweep (every
//! Fig. 12 variant over the online-streaming use-case), run once as a
//! plain serial loop and once through [`FleetRunner`], with a run-time
//! parity check that the fleet's reports — per-user and merged — are
//! identical to the serial ones. Emits `BENCH_fleet.json` so the
//! scaling trajectory has data points (ROADMAP: "serves heavy traffic
//! from millions of users").
//!
//! After the variant sweep it runs a worker-count scaling sweep on S+H
//! (doubling from 1 to `workers=`), fits an Amdahl
//! [`ScalingSummary`](evr_bench::scaling::ScalingSummary) with
//! per-stage serial fractions from the worker timeline, embeds it as
//! the `"scaling"` section of the JSON (the fields `bench_gate`
//! compares against `benches/baselines/fleet.json`), and writes the
//! widest timed run as a Chrome Trace Event file
//! (`*.trace_events.json`, openable in chrome://tracing or Perfetto).
//!
//! Exits non-zero if any parity check fails, which is what the CI smoke
//! step relies on:
//!
//! ```text
//! cargo run --release -p evr-bench --bin fleet_bench -- --smoke json=BENCH_fleet.json
//! cargo run --release -p evr-bench --bin fleet_bench -- users=59 workers=8 duration=2.0
//! ```
//!
//! Timings vary across machines, so the JSON is not golden-diffed —
//! only the `parity_ok` flags are load-bearing in CI.

use std::time::Instant;

use evr_bench::header;
use evr_bench::scaling::{stage_scaling, ScalingPoint, ScalingSummary};
use evr_client::session::PlaybackReport;
use evr_core::{EvrSystem, FleetRunner, UseCase, Variant};
use evr_obs::{Observer, Timeline, TimelineEvent, DEFAULT_TIMELINE_CAPACITY};
use evr_sas::SasConfig;
use evr_video::library::VideoId;

struct FleetArgs {
    users: u64,
    workers: usize,
    duration_s: f64,
    json: Option<String>,
    trace: Option<String>,
}

impl Default for FleetArgs {
    fn default() -> Self {
        FleetArgs {
            users: evr_trace::dataset::USER_COUNT as u64,
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            duration_s: evr_video::library::SCENE_DURATION,
            json: None,
            trace: None,
        }
    }
}

fn parse_args(args: impl Iterator<Item = String>) -> FleetArgs {
    let mut out = FleetArgs::default();
    for arg in args {
        if arg == "--smoke" || arg == "smoke" || arg == "quick" {
            // The defaults — the full 59-user, full-length Fig. 12
            // sweep — already finish in well under a second of sweep
            // time, so smoke runs them unreduced. Shrinking the content
            // would shrink the per-user work below the point where the
            // wall-clock comparison means anything.
        } else if let Some(v) = arg.strip_prefix("users=") {
            out.users = v.parse().expect("users=N takes an integer");
        } else if let Some(v) = arg.strip_prefix("workers=") {
            out.workers = v.parse().expect("workers=N takes an integer");
        } else if let Some(v) = arg.strip_prefix("duration=") {
            out.duration_s = v.parse().expect("duration=S takes seconds");
        } else if let Some(v) = arg.strip_prefix("json=") {
            out.json = Some(v.to_string());
        } else if let Some(v) = arg.strip_prefix("trace=") {
            out.trace = Some(v.to_string());
        } else {
            panic!(
                "unknown argument {arg:?}; expected `--smoke`, `users=N`, `workers=N`, \
                 `duration=S`, `json=PATH` or `trace=PATH`"
            );
        }
    }
    out
}

struct VariantResult {
    variant: Variant,
    serial_s: f64,
    fleet_s: f64,
    parity_ok: bool,
}

fn merge_all(reports: &[PlaybackReport]) -> PlaybackReport {
    let mut merged = PlaybackReport::empty();
    for r in reports {
        merged.merge(r);
    }
    merged
}

/// One Fig. 12 variant: time the serial loop, time the fleet, check
/// both the per-user report vector and the merged fleet report match.
fn run_variant_case(sys: &EvrSystem, args: &FleetArgs, variant: Variant) -> VariantResult {
    let session = sys.session_for(UseCase::OnlineStreaming, variant);
    let start = Instant::now();
    let serial: Vec<PlaybackReport> = (0..args.users).map(|u| sys.run_with(&session, u)).collect();
    let serial_s = start.elapsed().as_secs_f64();

    let runner = FleetRunner::new(args.workers);
    let start = Instant::now();
    let fleet = runner.run(args.users, |u| sys.run_with(&session, u));
    let fleet_s = start.elapsed().as_secs_f64();

    let parity_ok = serial == fleet && merge_all(&serial) == merge_all(&fleet);
    VariantResult { variant, serial_s, fleet_s, parity_ok }
}

/// Doubling worker counts from 1 up to and including `max`.
fn worker_counts(max: usize) -> Vec<usize> {
    let mut counts = vec![1usize];
    let mut w = 2;
    while w < max {
        counts.push(w);
        w *= 2;
    }
    if max > 1 {
        counts.push(max);
    }
    counts
}

struct FleetScaling {
    summary: ScalingSummary,
    serial_users_per_s: f64,
    fleet_users_per_s: f64,
    timeline: Timeline,
}

/// One fleet run of the S+H variant with a timeline attached, returning
/// the captured worker intervals.
fn timed_run(
    sys: &mut EvrSystem,
    args: &FleetArgs,
    workers: usize,
) -> (Vec<TimelineEvent>, Timeline) {
    let timeline = Timeline::bounded(DEFAULT_TIMELINE_CAPACITY);
    let obs = Observer::enabled().with_timeline(timeline.clone());
    sys.instrument(&obs);
    let session = sys.session_for(UseCase::OnlineStreaming, Variant::SPlusH);
    let runner = FleetRunner::new(workers).with_observer(&obs);
    let _ = runner.run(args.users, |u| sys.run_with(&session, u));
    sys.instrument(&Observer::noop());
    (timeline.events(), timeline)
}

/// The scaling sweep: untimed S+H fleet runs at doubling worker counts
/// (so the wall-clock points carry no instrumentation overhead), then
/// one timed serial run and one timed widest run for the per-stage
/// Amdahl attribution and the Chrome trace artifact.
fn run_scaling_sweep(sys: &mut EvrSystem, args: &FleetArgs) -> Option<FleetScaling> {
    let counts = worker_counts(args.workers);
    let session = sys.session_for(UseCase::OnlineStreaming, Variant::SPlusH);
    let mut points = Vec::new();
    for &w in &counts {
        let runner = FleetRunner::new(w);
        let start = Instant::now();
        let _ = runner.run(args.users, |u| sys.run_with(&session, u));
        points.push(ScalingPoint { workers: w, wall_s: start.elapsed().as_secs_f64() });
    }
    let summary = ScalingSummary::fit(&points)?;
    let (serial_events, _) = timed_run(sys, args, 1);
    let (parallel_events, timeline) = timed_run(sys, args, summary.workers);
    let stages = stage_scaling(&serial_events, &parallel_events, summary.workers);
    let serial_wall = points.iter().find(|p| p.workers == 1).map_or(f64::NAN, |p| p.wall_s);
    let widest_wall =
        points.iter().find(|p| p.workers == summary.workers).map_or(f64::NAN, |p| p.wall_s);
    Some(FleetScaling {
        summary: summary.with_stages(stages),
        serial_users_per_s: args.users as f64 / serial_wall,
        fleet_users_per_s: args.users as f64 / widest_wall,
        timeline,
    })
}

/// Splices the throughput fields into the summary's JSON object so the
/// gate can address them as `scaling.fleet_users_per_s`.
fn scaling_json(s: &FleetScaling) -> String {
    let summary = s.summary.to_json();
    let inner = summary.strip_prefix('{').and_then(|t| t.strip_suffix('}')).unwrap_or(&summary);
    format!(
        "{{\"variant\": \"S+H\", \"serial_users_per_s\": {:.6}, \"fleet_users_per_s\": {:.6}, {}}}",
        s.serial_users_per_s, s.fleet_users_per_s, inner
    )
}

/// Stable JSON: fixed key order, floats `{:.6}`, one variant per line.
fn bench_json(
    args: &FleetArgs,
    results: &[VariantResult],
    scaling: Option<&FleetScaling>,
) -> String {
    let serial_total: f64 = results.iter().map(|r| r.serial_s).sum();
    let fleet_total: f64 = results.iter().map(|r| r.fleet_s).sum();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"users\": {}, \"workers\": {}, \"duration_s\": {:.6},\n",
        args.users, args.workers, args.duration_s
    ));
    out.push_str(&format!(
        "  \"parity_ok\": {},\n  \"variants\": [\n",
        results.iter().all(|r| r.parity_ok)
    ));
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"variant\": \"{}\", \"parity_ok\": {}, \"serial_s\": {:.6}, \
             \"fleet_s\": {:.6}, \"speedup\": {:.6}, \"serial_users_per_s\": {:.6}, \
             \"fleet_users_per_s\": {:.6}}}{}\n",
            r.variant,
            r.parity_ok,
            r.serial_s,
            r.fleet_s,
            r.serial_s / r.fleet_s,
            args.users as f64 / r.serial_s,
            args.users as f64 / r.fleet_s,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"total\": {{\"serial_s\": {:.6}, \"fleet_s\": {:.6}, \"speedup\": {:.6}}}",
        serial_total,
        fleet_total,
        serial_total / fleet_total
    ));
    if let Some(s) = scaling {
        out.push_str(&format!(",\n  \"scaling\": {}\n", scaling_json(s)));
    } else {
        out.push('\n');
    }
    out.push_str("}\n");
    out
}

fn main() {
    let args = parse_args(std::env::args().skip(1));
    header("fleet_bench", "59-user Fig. 12 sweep: serial loop vs deterministic fleet runner");
    println!(
        "{} users, {} workers, {:.1}s of content per user",
        args.users, args.workers, args.duration_s
    );

    let mut sys = EvrSystem::build(VideoId::Rs, SasConfig::tiny_for_tests(), args.duration_s);
    let mut results = Vec::new();
    for variant in [Variant::Baseline, Variant::S, Variant::H, Variant::SPlusH] {
        let r = run_variant_case(&sys, &args, variant);
        println!(
            "  {:<8} parity {}  serial {:.2}s ({:.1} users/s), fleet {:.2}s ({:.1} users/s), {:.2}x",
            r.variant.to_string(),
            if r.parity_ok { "ok" } else { "FAIL" },
            r.serial_s,
            args.users as f64 / r.serial_s,
            r.fleet_s,
            args.users as f64 / r.fleet_s,
            r.serial_s / r.fleet_s,
        );
        results.push(r);
    }
    let serial_total: f64 = results.iter().map(|r| r.serial_s).sum();
    let fleet_total: f64 = results.iter().map(|r| r.fleet_s).sum();
    println!(
        "  total: serial {:.2}s, fleet {:.2}s, {:.2}x with {} workers",
        serial_total,
        fleet_total,
        serial_total / fleet_total,
        args.workers
    );

    let scaling = run_scaling_sweep(&mut sys, &args);
    match &scaling {
        Some(s) => {
            println!("  {}", s.summary.render_line());
            println!(
                "  throughput (S+H): serial {:.1} users/s, fleet {:.1} users/s",
                s.serial_users_per_s, s.fleet_users_per_s
            );
            for st in &s.summary.stages {
                println!(
                    "    stage {:<16} serial busy {:.3}s, widest lane {:.3}s, serial fraction {:.3}",
                    st.stage, st.serial_busy_s, st.parallel_busy_s, st.serial_fraction
                );
            }
        }
        None => println!("  scaling: skipped (needs workers >= 2)"),
    }

    if let Some(path) = &args.json {
        let json = bench_json(&args, &results, scaling.as_ref());
        std::fs::write(path, &json).expect("write fleet bench JSON");
        println!("json: {path}");
    }

    // The timeline of the widest timed run becomes the Chrome trace
    // artifact (chrome://tracing / Perfetto).
    let trace_path = args.trace.clone().or_else(|| {
        args.json.as_ref().map(|p| {
            p.strip_suffix(".json").map_or_else(
                || format!("{p}.trace_events.json"),
                |stem| format!("{stem}.trace_events.json"),
            )
        })
    });
    if let (Some(path), Some(s)) = (&trace_path, &scaling) {
        s.timeline.write_chrome_trace(path).expect("write fleet trace");
        println!("trace: {path}");
    }

    if !results.iter().all(|r| r.parity_ok) {
        eprintln!("parity FAILED: fleet reports diverged from the serial sweep");
        std::process::exit(1);
    }
}
