//! Fleet runner benchmark: the paper's 59-user Fig. 12 sweep (every
//! Fig. 12 variant over the online-streaming use-case), run once as a
//! plain serial loop and once through [`FleetRunner`], with a run-time
//! parity check that the fleet's reports — per-user and merged — are
//! identical to the serial ones. Emits `BENCH_fleet.json` so the
//! scaling trajectory has data points (ROADMAP: "serves heavy traffic
//! from millions of users").
//!
//! Exits non-zero if any parity check fails, which is what the CI smoke
//! step relies on:
//!
//! ```text
//! cargo run --release -p evr-bench --bin fleet_bench -- --smoke json=BENCH_fleet.json
//! cargo run --release -p evr-bench --bin fleet_bench -- users=59 workers=8 duration=2.0
//! ```
//!
//! Timings vary across machines, so the JSON is not golden-diffed —
//! only the `parity_ok` flags are load-bearing in CI.

use std::time::Instant;

use evr_bench::header;
use evr_client::session::PlaybackReport;
use evr_core::{EvrSystem, FleetRunner, UseCase, Variant};
use evr_sas::SasConfig;
use evr_video::library::VideoId;

struct FleetArgs {
    users: u64,
    workers: usize,
    duration_s: f64,
    json: Option<String>,
}

impl Default for FleetArgs {
    fn default() -> Self {
        FleetArgs {
            users: evr_trace::dataset::USER_COUNT as u64,
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            duration_s: evr_video::library::SCENE_DURATION,
            json: None,
        }
    }
}

fn parse_args(args: impl Iterator<Item = String>) -> FleetArgs {
    let mut out = FleetArgs::default();
    for arg in args {
        if arg == "--smoke" || arg == "smoke" || arg == "quick" {
            // The defaults — the full 59-user, full-length Fig. 12
            // sweep — already finish in well under a second of sweep
            // time, so smoke runs them unreduced. Shrinking the content
            // would shrink the per-user work below the point where the
            // wall-clock comparison means anything.
        } else if let Some(v) = arg.strip_prefix("users=") {
            out.users = v.parse().expect("users=N takes an integer");
        } else if let Some(v) = arg.strip_prefix("workers=") {
            out.workers = v.parse().expect("workers=N takes an integer");
        } else if let Some(v) = arg.strip_prefix("duration=") {
            out.duration_s = v.parse().expect("duration=S takes seconds");
        } else if let Some(v) = arg.strip_prefix("json=") {
            out.json = Some(v.to_string());
        } else {
            panic!(
                "unknown argument {arg:?}; expected `--smoke`, `users=N`, `workers=N`, \
                 `duration=S` or `json=PATH`"
            );
        }
    }
    out
}

struct VariantResult {
    variant: Variant,
    serial_s: f64,
    fleet_s: f64,
    parity_ok: bool,
}

fn merge_all(reports: &[PlaybackReport]) -> PlaybackReport {
    let mut merged = PlaybackReport::empty();
    for r in reports {
        merged.merge(r);
    }
    merged
}

/// One Fig. 12 variant: time the serial loop, time the fleet, check
/// both the per-user report vector and the merged fleet report match.
fn run_variant_case(sys: &EvrSystem, args: &FleetArgs, variant: Variant) -> VariantResult {
    let session = sys.session_for(UseCase::OnlineStreaming, variant);
    let start = Instant::now();
    let serial: Vec<PlaybackReport> = (0..args.users).map(|u| sys.run_with(&session, u)).collect();
    let serial_s = start.elapsed().as_secs_f64();

    let runner = FleetRunner::new(args.workers);
    let start = Instant::now();
    let fleet = runner.run(args.users, |u| sys.run_with(&session, u));
    let fleet_s = start.elapsed().as_secs_f64();

    let parity_ok = serial == fleet && merge_all(&serial) == merge_all(&fleet);
    VariantResult { variant, serial_s, fleet_s, parity_ok }
}

/// Stable JSON: fixed key order, floats `{:.6}`, one variant per line.
fn bench_json(args: &FleetArgs, results: &[VariantResult]) -> String {
    let serial_total: f64 = results.iter().map(|r| r.serial_s).sum();
    let fleet_total: f64 = results.iter().map(|r| r.fleet_s).sum();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"users\": {}, \"workers\": {}, \"duration_s\": {:.6},\n",
        args.users, args.workers, args.duration_s
    ));
    out.push_str(&format!(
        "  \"parity_ok\": {},\n  \"variants\": [\n",
        results.iter().all(|r| r.parity_ok)
    ));
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"variant\": \"{}\", \"parity_ok\": {}, \"serial_s\": {:.6}, \
             \"fleet_s\": {:.6}, \"speedup\": {:.6}, \"serial_users_per_s\": {:.6}, \
             \"fleet_users_per_s\": {:.6}}}{}\n",
            r.variant,
            r.parity_ok,
            r.serial_s,
            r.fleet_s,
            r.serial_s / r.fleet_s,
            args.users as f64 / r.serial_s,
            args.users as f64 / r.fleet_s,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"total\": {{\"serial_s\": {:.6}, \"fleet_s\": {:.6}, \"speedup\": {:.6}}}\n",
        serial_total,
        fleet_total,
        serial_total / fleet_total
    ));
    out.push_str("}\n");
    out
}

fn main() {
    let args = parse_args(std::env::args().skip(1));
    header("fleet_bench", "59-user Fig. 12 sweep: serial loop vs deterministic fleet runner");
    println!(
        "{} users, {} workers, {:.1}s of content per user",
        args.users, args.workers, args.duration_s
    );

    let sys = EvrSystem::build(VideoId::Rs, SasConfig::tiny_for_tests(), args.duration_s);
    let mut results = Vec::new();
    for variant in [Variant::Baseline, Variant::S, Variant::H, Variant::SPlusH] {
        let r = run_variant_case(&sys, &args, variant);
        println!(
            "  {:<8} parity {}  serial {:.2}s ({:.1} users/s), fleet {:.2}s ({:.1} users/s), {:.2}x",
            r.variant.to_string(),
            if r.parity_ok { "ok" } else { "FAIL" },
            r.serial_s,
            args.users as f64 / r.serial_s,
            r.fleet_s,
            args.users as f64 / r.fleet_s,
            r.serial_s / r.fleet_s,
        );
        results.push(r);
    }
    let serial_total: f64 = results.iter().map(|r| r.serial_s).sum();
    let fleet_total: f64 = results.iter().map(|r| r.fleet_s).sum();
    println!(
        "  total: serial {:.2}s, fleet {:.2}s, {:.2}x with {} workers",
        serial_total,
        fleet_total,
        serial_total / fleet_total,
        args.workers
    );

    if let Some(path) = &args.json {
        let json = bench_json(&args, &results);
        std::fs::write(path, &json).expect("write fleet bench JSON");
        println!("json: {path}");
    }

    if !results.iter().all(|r| r.parity_ok) {
        eprintln!("parity FAILED: fleet reports diverged from the serial sweep");
        std::process::exit(1);
    }
}
