//! Fleet runner benchmark at production shape: thousands of synthetic
//! users (the paper's 59-head-trace dataset cycled across the fleet)
//! over every Fig. 12 variant of the online-streaming use-case, run
//! once as a plain serial loop and once through [`FleetRunner`], with a
//! run-time parity check that the fleet's reports — per-user and
//! merged — are identical to the serial ones. Emits `BENCH_fleet.json`
//! so the scaling trajectory has data points (ROADMAP: "serves heavy
//! traffic from millions of users").
//!
//! After the variant sweep it runs the scaling study on S+H:
//!
//! 1. a serial pass that times **every user individually**, giving both
//!    the measured 1-worker wall and the per-user cost vector;
//! 2. the chunked-schedule model
//!    ([`simulate_chunked_makespan`](evr_bench::scaling)) replayed over
//!    those costs at doubling worker counts — the **gated** speedup /
//!    efficiency numbers, reproducible on any host (a wall-clock sweep
//!    in a single-core CI container measures the OS timeslicer, not the
//!    scheduler);
//! 3. a real wall-clock sweep attached as `measured` points for
//!    reference, plus the old static interleave's modeled makespan so
//!    the report shows what chunked pulling buys;
//! 4. one timed serial and one timed widest run for per-stage Amdahl
//!    attribution from the worker timeline, written as a Chrome Trace
//!    Event file (`*.trace_events.json`, chrome://tracing / Perfetto).
//!
//! The `"scaling"` JSON section carries the fields `bench_gate`
//! compares against `benches/baselines/fleet.json`:
//! `scaling.fleet_users_per_s` (users / modeled widest makespan — moves
//! with both per-user cost and schedule balance) and
//! `scaling.efficiency`.
//!
//! Exits non-zero if any parity check fails, which is what the CI smoke
//! step relies on:
//!
//! ```text
//! cargo run --release -p evr-bench --bin fleet_bench -- --smoke json=BENCH_fleet.json
//! cargo run --release -p evr-bench --bin fleet_bench -- users=2000 workers=8 duration=2.0
//! ```
//!
//! Timings vary across machines, so the JSON is not golden-diffed —
//! only the `parity_ok` flags are load-bearing in CI.

use std::time::Instant;

use evr_bench::header;
use evr_bench::scaling::{
    simulate_chunked_makespan, simulate_interleave_makespan, stage_scaling, ScalingPoint,
    ScalingSummary,
};
use evr_client::session::PlaybackReport;
use evr_core::{EvrSystem, FleetRunner, UseCase, Variant};
use evr_obs::{Observer, Timeline, TimelineEvent, DEFAULT_TIMELINE_CAPACITY};
use evr_sas::SasConfig;
use evr_video::library::VideoId;

/// Production-shape default: the 59 head traces cycled over a few
/// thousand synthetic users, enough work per lane that scheduling —
/// not per-run constant overhead — dominates the makespan.
const PRODUCTION_USERS: u64 = 2000;

/// Smoke-mode fleet size: big enough that the schedule model still has
/// hundreds of chunks to balance, small enough for the CI bench step.
const SMOKE_USERS: u64 = 512;

struct FleetArgs {
    users: u64,
    workers: usize,
    duration_s: f64,
    json: Option<String>,
    trace: Option<String>,
}

impl Default for FleetArgs {
    fn default() -> Self {
        FleetArgs {
            users: PRODUCTION_USERS,
            workers: 8,
            duration_s: evr_video::library::SCENE_DURATION,
            json: None,
            trace: None,
        }
    }
}

fn parse_args(args: impl Iterator<Item = String>) -> FleetArgs {
    let mut out = FleetArgs::default();
    for arg in args {
        if arg == "--smoke" || arg == "smoke" || arg == "quick" {
            out.users = SMOKE_USERS;
        } else if let Some(v) = arg.strip_prefix("users=") {
            out.users = v.parse().expect("users=N takes an integer");
        } else if let Some(v) = arg.strip_prefix("workers=") {
            out.workers = v.parse().expect("workers=N takes an integer");
        } else if let Some(v) = arg.strip_prefix("duration=") {
            out.duration_s = v.parse().expect("duration=S takes seconds");
        } else if let Some(v) = arg.strip_prefix("json=") {
            out.json = Some(v.to_string());
        } else if let Some(v) = arg.strip_prefix("trace=") {
            out.trace = Some(v.to_string());
        } else {
            panic!(
                "unknown argument {arg:?}; expected `--smoke`, `users=N`, `workers=N`, \
                 `duration=S`, `json=PATH` or `trace=PATH`"
            );
        }
    }
    out
}

struct VariantResult {
    variant: Variant,
    serial_s: f64,
    fleet_s: f64,
    parity_ok: bool,
}

fn merge_all(reports: &[PlaybackReport]) -> PlaybackReport {
    let mut merged = PlaybackReport::empty();
    for r in reports {
        merged.merge(r);
    }
    merged
}

/// One Fig. 12 variant: time the serial loop, time the fleet, check
/// both the per-user report vector and the merged fleet report match.
fn run_variant_case(sys: &EvrSystem, args: &FleetArgs, variant: Variant) -> VariantResult {
    let session = sys.session_for(UseCase::OnlineStreaming, variant);
    let start = Instant::now();
    let serial: Vec<PlaybackReport> = (0..args.users).map(|u| sys.run_with(&session, u)).collect();
    let serial_s = start.elapsed().as_secs_f64();

    let runner = FleetRunner::new(args.workers);
    let start = Instant::now();
    let fleet = runner.run(args.users, |u| sys.run_with(&session, u));
    let fleet_s = start.elapsed().as_secs_f64();

    let parity_ok = serial == fleet && merge_all(&serial) == merge_all(&fleet);
    VariantResult { variant, serial_s, fleet_s, parity_ok }
}

/// Doubling worker counts from 1 up to and including `max`.
fn worker_counts(max: usize) -> Vec<usize> {
    let mut counts = vec![1usize];
    let mut w = 2;
    while w < max {
        counts.push(w);
        w *= 2;
    }
    if max > 1 {
        counts.push(max);
    }
    counts
}

struct FleetScaling {
    summary: ScalingSummary,
    serial_users_per_s: f64,
    fleet_users_per_s: f64,
    modeled_chunked_wall_s: f64,
    modeled_interleave_wall_s: f64,
    timeline: Timeline,
}

/// One fleet run of the S+H variant with a timeline attached, returning
/// the captured worker intervals.
fn timed_run(
    sys: &mut EvrSystem,
    args: &FleetArgs,
    workers: usize,
) -> (Vec<TimelineEvent>, Timeline) {
    let timeline = Timeline::bounded(DEFAULT_TIMELINE_CAPACITY);
    let obs = Observer::enabled().with_timeline(timeline.clone());
    sys.instrument(&obs);
    let session = sys.session_for(UseCase::OnlineStreaming, Variant::SPlusH);
    let runner = FleetRunner::new(workers).with_observer(&obs);
    let _ = runner.run(args.users, |u| sys.run_with(&session, u));
    sys.instrument(&Observer::noop());
    (timeline.events(), timeline)
}

/// The scaling study on S+H: a per-user-timed serial pass feeds the
/// chunked-schedule model (the gated numbers), an untimed real sweep at
/// doubling worker counts becomes the `measured` reference points, and
/// one timed serial + one timed widest run give the per-stage Amdahl
/// attribution and the Chrome trace artifact.
fn run_scaling_sweep(sys: &mut EvrSystem, args: &FleetArgs) -> Option<FleetScaling> {
    let counts = worker_counts(args.workers);
    let session = sys.session_for(UseCase::OnlineStreaming, Variant::SPlusH);

    // Serial pass timing every user individually: the measured
    // 1-worker wall point and the cost vector the model replays.
    let mut costs = Vec::with_capacity(args.users as usize);
    let start = Instant::now();
    for u in 0..args.users {
        let t = Instant::now();
        let _ = sys.run_with(&session, u);
        costs.push(t.elapsed().as_secs_f64());
    }
    let serial_wall = start.elapsed().as_secs_f64();

    let mut measured = vec![ScalingPoint { workers: 1, wall_s: serial_wall }];
    for &w in counts.iter().filter(|&&w| w > 1) {
        let runner = FleetRunner::new(w);
        let start = Instant::now();
        let _ = runner.run(args.users, |u| sys.run_with(&session, u));
        measured.push(ScalingPoint { workers: w, wall_s: start.elapsed().as_secs_f64() });
    }

    let summary = ScalingSummary::fit_modeled(&costs, &counts)?;
    let (serial_events, _) = timed_run(sys, args, 1);
    let (parallel_events, timeline) = timed_run(sys, args, summary.workers);
    let stages = stage_scaling(&serial_events, &parallel_events, summary.workers);
    let modeled_chunked_wall_s = simulate_chunked_makespan(&costs, summary.workers, 0);
    let modeled_interleave_wall_s = simulate_interleave_makespan(&costs, summary.workers);
    Some(FleetScaling {
        serial_users_per_s: args.users as f64 / serial_wall,
        fleet_users_per_s: args.users as f64 / modeled_chunked_wall_s,
        modeled_chunked_wall_s,
        modeled_interleave_wall_s,
        summary: summary.with_stages(stages).with_measured(measured),
        timeline,
    })
}

/// Splices the throughput fields into the summary's JSON object so the
/// gate can address them as `scaling.fleet_users_per_s`.
fn scaling_json(s: &FleetScaling) -> String {
    let summary = s.summary.to_json();
    let inner = summary.strip_prefix('{').and_then(|t| t.strip_suffix('}')).unwrap_or(&summary);
    format!(
        "{{\"variant\": \"S+H\", \"serial_users_per_s\": {:.6}, \"fleet_users_per_s\": {:.6}, \
         \"modeled_chunked_wall_s\": {:.6}, \"modeled_interleave_wall_s\": {:.6}, {}}}",
        s.serial_users_per_s,
        s.fleet_users_per_s,
        s.modeled_chunked_wall_s,
        s.modeled_interleave_wall_s,
        inner
    )
}

/// Stable JSON: fixed key order, floats `{:.6}`, one variant per line.
fn bench_json(
    args: &FleetArgs,
    results: &[VariantResult],
    scaling: Option<&FleetScaling>,
) -> String {
    let serial_total: f64 = results.iter().map(|r| r.serial_s).sum();
    let fleet_total: f64 = results.iter().map(|r| r.fleet_s).sum();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"users\": {}, \"workers\": {}, \"duration_s\": {:.6},\n",
        args.users, args.workers, args.duration_s
    ));
    out.push_str(&format!(
        "  \"parity_ok\": {},\n  \"variants\": [\n",
        results.iter().all(|r| r.parity_ok)
    ));
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"variant\": \"{}\", \"parity_ok\": {}, \"serial_s\": {:.6}, \
             \"fleet_s\": {:.6}, \"speedup\": {:.6}, \"serial_users_per_s\": {:.6}, \
             \"fleet_users_per_s\": {:.6}}}{}\n",
            r.variant,
            r.parity_ok,
            r.serial_s,
            r.fleet_s,
            r.serial_s / r.fleet_s,
            args.users as f64 / r.serial_s,
            args.users as f64 / r.fleet_s,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"total\": {{\"serial_s\": {:.6}, \"fleet_s\": {:.6}, \"speedup\": {:.6}}}",
        serial_total,
        fleet_total,
        serial_total / fleet_total
    ));
    if let Some(s) = scaling {
        out.push_str(&format!(",\n  \"scaling\": {}\n", scaling_json(s)));
    } else {
        out.push('\n');
    }
    out.push_str("}\n");
    out
}

fn main() {
    let args = parse_args(std::env::args().skip(1));
    header("fleet_bench", "production-shape Fig. 12 sweep: serial loop vs chunked fleet runner");
    println!(
        "{} users, {} workers, {:.1}s of content per user",
        args.users, args.workers, args.duration_s
    );

    let mut sys = EvrSystem::build(VideoId::Rs, SasConfig::tiny_for_tests(), args.duration_s);
    let mut results = Vec::new();
    for variant in [Variant::Baseline, Variant::S, Variant::H, Variant::SPlusH] {
        let r = run_variant_case(&sys, &args, variant);
        println!(
            "  {:<8} parity {}  serial {:.2}s ({:.1} users/s), fleet {:.2}s ({:.1} users/s), {:.2}x",
            r.variant.to_string(),
            if r.parity_ok { "ok" } else { "FAIL" },
            r.serial_s,
            args.users as f64 / r.serial_s,
            r.fleet_s,
            args.users as f64 / r.fleet_s,
            r.serial_s / r.fleet_s,
        );
        results.push(r);
    }
    let serial_total: f64 = results.iter().map(|r| r.serial_s).sum();
    let fleet_total: f64 = results.iter().map(|r| r.fleet_s).sum();
    println!(
        "  total: serial {:.2}s, fleet {:.2}s, {:.2}x with {} workers",
        serial_total,
        fleet_total,
        serial_total / fleet_total,
        args.workers
    );

    let scaling = run_scaling_sweep(&mut sys, &args);
    match &scaling {
        Some(s) => {
            println!("  modeled {}", s.summary.render_line());
            println!(
                "  modeled makespan at {} workers: chunked {:.2}s vs static interleave {:.2}s",
                s.summary.workers, s.modeled_chunked_wall_s, s.modeled_interleave_wall_s
            );
            println!(
                "  throughput (S+H): serial {:.1} users/s measured, fleet {:.1} users/s modeled",
                s.serial_users_per_s, s.fleet_users_per_s
            );
            for p in &s.summary.measured {
                println!("    measured wall at {} workers: {:.2}s", p.workers, p.wall_s);
            }
            for st in &s.summary.stages {
                println!(
                    "    stage {:<16} serial busy {:.3}s, widest lane {:.3}s, serial fraction {:.3}",
                    st.stage, st.serial_busy_s, st.parallel_busy_s, st.serial_fraction
                );
            }
        }
        None => println!("  scaling: skipped (needs workers >= 2)"),
    }

    if let Some(path) = &args.json {
        let json = bench_json(&args, &results, scaling.as_ref());
        std::fs::write(path, &json).expect("write fleet bench JSON");
        println!("json: {path}");
    }

    // The timeline of the widest timed run becomes the Chrome trace
    // artifact (chrome://tracing / Perfetto).
    let trace_path = args.trace.clone().or_else(|| {
        args.json.as_ref().map(|p| {
            p.strip_suffix(".json").map_or_else(
                || format!("{p}.trace_events.json"),
                |stem| format!("{stem}.trace_events.json"),
            )
        })
    });
    if let (Some(path), Some(s)) = (&trace_path, &scaling) {
        s.timeline.write_chrome_trace(path).expect("write fleet trace");
        println!("trace: {path}");
    }

    if !results.iter().all(|r| r.parity_ok) {
        eprintln!("parity FAILED: fleet reports diverged from the serial sweep");
        std::process::exit(1);
    }
}
