//! Cloud-side ingest benchmark at production shape: the SAS ingestion
//! pipeline (detect → cluster → track → pre-render per segment) over a
//! full-length multi-segment video, run once serially and once per
//! parallel worker count, with a run-time parity check that every
//! parallel catalog is byte-identical to the serial one; then the
//! store-backed path — a cold ingest populating the shared FOV
//! pre-render store and a warm re-ingest served out of it, plus a
//! store-vs-delta-store playback parity check (a refinement session
//! over a delta-resident FOV rung ladder must reproduce the
//! full-encoding ladder's report bit for bit; DESIGN.md §16) — and a
//! full-bitrate-ladder pass through [`ingest_ladder_with`], both with
//! the same parity discipline. Emits `BENCH_ingest.json` so the
//! cloud-scaling trajectory has data points (ROADMAP: the cloud side
//! ingests every upload once and serves many).
//!
//! The scaling study mirrors `fleet_bench`: per-segment costs are read
//! off the serial timed run's `ingest_segment` timeline intervals and
//! replayed through the chunked-schedule model
//! ([`simulate_chunked_makespan`](evr_bench::scaling)) — the **gated**
//! speedup / efficiency numbers, reproducible on any host (a real
//! worker sweep in a single-core CI container measures the OS
//! timeslicer, not the scheduler). The real sweep is attached as
//! `measured` points, the old static interleave's modeled makespan is
//! reported for comparison, and the widest timed run is written as a
//! Chrome Trace Event file (`*.trace_events.json`, chrome://tracing or
//! Perfetto).
//!
//! Exits non-zero if any parity check fails, which is what the CI smoke
//! step relies on:
//!
//! ```text
//! cargo run --release -p evr-bench --bin ingest_bench -- --smoke json=BENCH_ingest.json
//! cargo run --release -p evr-bench --bin ingest_bench -- duration=60 workers=8
//! ```
//!
//! Timings vary across machines, so the JSON is not golden-diffed —
//! only the `parity_ok` flags are load-bearing in CI.

use std::time::Instant;

use evr_bench::header;
use evr_bench::scaling::{
    simulate_chunked_makespan, simulate_interleave_makespan, stage_scaling, ScalingPoint,
    ScalingSummary,
};
use evr_client::pipeline::CleanTransport;
use evr_client::refine::run_refinement_session;
use evr_energy::DeviceParams;
use evr_obs::{names, Observer, Timeline, TimelineEvent, DEFAULT_TIMELINE_CAPACITY};
use evr_sas::{
    fov_rung_quantizers, ingest_ladder_with, ingest_video_with, populate_fov_ladder,
    FovPrerenderStore, IngestOptions, SasCatalog, SasConfig, SasServer,
};
use evr_video::library::{scene_for, VideoId};
use evr_video::scene::Scene;

/// The production bitrate ladder: five rungs, coarsest first — the
/// shape a content provider publishes for ABR (paper §2).
const LADDER_RUNGS: &[u8] = &[32, 24, 18, 13, 10];

/// Smoke-mode content length, seconds: enough segments that every
/// worker pulls several chunks, short enough for the CI bench step.
const SMOKE_DURATION_S: f64 = 20.0;

struct IngestArgs {
    duration_s: f64,
    max_workers: usize,
    json: Option<String>,
    trace: Option<String>,
}

impl Default for IngestArgs {
    fn default() -> Self {
        IngestArgs {
            duration_s: evr_video::library::SCENE_DURATION,
            max_workers: 8,
            json: None,
            trace: None,
        }
    }
}

fn parse_args(args: impl Iterator<Item = String>) -> IngestArgs {
    let mut out = IngestArgs::default();
    for arg in args {
        if arg == "--smoke" || arg == "smoke" || arg == "quick" {
            out.duration_s = SMOKE_DURATION_S;
        } else if let Some(v) = arg.strip_prefix("duration=") {
            out.duration_s = v.parse().expect("duration=S takes seconds");
        } else if let Some(v) = arg.strip_prefix("workers=") {
            out.max_workers = v.parse().expect("workers=N takes an integer");
        } else if let Some(v) = arg.strip_prefix("json=") {
            out.json = Some(v.to_string());
        } else if let Some(v) = arg.strip_prefix("trace=") {
            out.trace = Some(v.to_string());
        } else {
            panic!(
                "unknown argument {arg:?}; expected `--smoke`, `duration=S`, `workers=N`, \
                 `json=PATH` or `trace=PATH`"
            );
        }
    }
    out
}

struct WorkerResult {
    workers: usize,
    wall_s: f64,
    parity_ok: bool,
}

struct StoreResult {
    cold_s: f64,
    warm_s: f64,
    hits: u64,
    misses: u64,
    evictions: u64,
    resident_bytes: u64,
    entries: usize,
    /// Residency of the full FOV rung ladder with lower rungs held as
    /// deltas against the top rung (DESIGN.md §16).
    delta_resident_bytes: u64,
    delta_entries: usize,
    parity_ok: bool,
}

struct LadderResult {
    rungs: usize,
    serial_s: f64,
    parallel_s: f64,
    parity_ok: bool,
}

fn ingest(scene: &Scene, cfg: &SasConfig, duration_s: f64, options: &IngestOptions) -> SasCatalog {
    ingest_video_with(scene, cfg, duration_s, options).expect("bench ingest must succeed")
}

/// The worker-count sweep: 1 (the serial reference), then doubling up to
/// the requested maximum, deduplicated.
fn worker_counts(max: usize) -> Vec<usize> {
    let mut counts = vec![1];
    let mut w = 2;
    while w < max {
        counts.push(w);
        w *= 2;
    }
    if max > 1 {
        counts.push(max);
    }
    counts
}

struct IngestScaling {
    summary: ScalingSummary,
    serial_segments_per_s: f64,
    segments_per_s: f64,
    modeled_chunked_wall_s: f64,
    modeled_interleave_wall_s: f64,
    timeline: Timeline,
}

/// One ingest run with a timeline attached, returning the captured
/// `ingest_segment` intervals.
fn timed_ingest(
    scene: &Scene,
    cfg: &SasConfig,
    args: &IngestArgs,
    workers: usize,
) -> (Vec<TimelineEvent>, Timeline) {
    let timeline = Timeline::bounded(DEFAULT_TIMELINE_CAPACITY);
    let options = IngestOptions {
        workers,
        observer: Observer::enabled().with_timeline(timeline.clone()),
        ..IngestOptions::default()
    };
    let _ = ingest(scene, cfg, args.duration_s, &options);
    (timeline.events(), timeline)
}

/// Per-segment costs in ascending segment order, read off the
/// `ingest_segment` intervals of a (serial) timed run.
fn segment_costs(events: &[TimelineEvent]) -> Vec<f64> {
    let mut costs: Vec<(i64, f64)> = events
        .iter()
        .filter(|e| e.stage == names::TIMELINE_INGEST_SEGMENT)
        .map(|e| (e.ctx.segment, e.duration_ns() as f64 / 1e9))
        .collect();
    costs.sort_by_key(|(seg, _)| *seg);
    costs.into_iter().map(|(_, c)| c).collect()
}

/// The scaling study: a timed serial ingest yields per-segment costs
/// for the chunked-schedule model (the gated numbers); the real sweep
/// becomes the `measured` reference points; a timed widest ingest
/// gives the per-stage attribution and the Chrome trace artifact.
fn run_scaling(
    scene: &Scene,
    cfg: &SasConfig,
    args: &IngestArgs,
    sweep: &[WorkerResult],
    segments: u32,
) -> Option<IngestScaling> {
    let counts = worker_counts(args.max_workers);
    let measured: Vec<ScalingPoint> =
        sweep.iter().map(|r| ScalingPoint { workers: r.workers, wall_s: r.wall_s }).collect();
    let (serial_events, _) = timed_ingest(scene, cfg, args, 1);
    let costs = segment_costs(&serial_events);
    let summary = ScalingSummary::fit_modeled(&costs, &counts)?;
    let (parallel_events, timeline) = timed_ingest(scene, cfg, args, summary.workers);
    let stages = stage_scaling(&serial_events, &parallel_events, summary.workers);
    let serial_wall = measured.iter().find(|p| p.workers == 1).map_or(f64::NAN, |p| p.wall_s);
    let modeled_chunked_wall_s = simulate_chunked_makespan(&costs, summary.workers, 0);
    let modeled_interleave_wall_s = simulate_interleave_makespan(&costs, summary.workers);
    Some(IngestScaling {
        serial_segments_per_s: segments as f64 / serial_wall,
        segments_per_s: segments as f64 / modeled_chunked_wall_s,
        modeled_chunked_wall_s,
        modeled_interleave_wall_s,
        summary: summary.with_stages(stages).with_measured(measured),
        timeline,
    })
}

/// Splices the throughput fields into the summary's JSON object so the
/// gate can address them as `scaling.segments_per_s`.
fn scaling_json(s: &IngestScaling) -> String {
    let summary = s.summary.to_json();
    let inner = summary.strip_prefix('{').and_then(|t| t.strip_suffix('}')).unwrap_or(&summary);
    format!(
        "{{\"serial_segments_per_s\": {:.6}, \"segments_per_s\": {:.6}, \
         \"modeled_chunked_wall_s\": {:.6}, \"modeled_interleave_wall_s\": {:.6}, {}}}",
        s.serial_segments_per_s,
        s.segments_per_s,
        s.modeled_chunked_wall_s,
        s.modeled_interleave_wall_s,
        inner
    )
}

/// Stable JSON: fixed key order, floats `{:.6}`, one sweep point per line.
fn bench_json(
    args: &IngestArgs,
    serial_s: f64,
    sweep: &[WorkerResult],
    store: &StoreResult,
    ladder: &LadderResult,
    scaling: Option<&IngestScaling>,
) -> String {
    let parity_ok = sweep.iter().all(|r| r.parity_ok) && store.parity_ok && ladder.parity_ok;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"duration_s\": {:.6}, \"max_workers\": {}, \"parity_ok\": {},\n",
        args.duration_s, args.max_workers, parity_ok
    ));
    out.push_str("  \"workers\": [\n");
    for (i, r) in sweep.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workers\": {}, \"parity_ok\": {}, \"wall_s\": {:.6}, \"speedup\": {:.6}}}{}\n",
            r.workers,
            r.parity_ok,
            r.wall_s,
            serial_s / r.wall_s,
            if i + 1 < sweep.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"store\": {{\"parity_ok\": {}, \"cold_s\": {:.6}, \"warm_s\": {:.6}, \
         \"warm_speedup\": {:.6}, \"hits\": {}, \"misses\": {}, \"evictions\": {}, \
         \"resident_bytes\": {}, \"entries\": {}, \"delta_resident_bytes\": {}, \
         \"delta_entries\": {}}},\n",
        store.parity_ok,
        store.cold_s,
        store.warm_s,
        store.cold_s / store.warm_s,
        store.hits,
        store.misses,
        store.evictions,
        store.resident_bytes,
        store.entries,
        store.delta_resident_bytes,
        store.delta_entries
    ));
    out.push_str(&format!(
        "  \"ladder\": {{\"parity_ok\": {}, \"rungs\": {}, \"serial_s\": {:.6}, \
         \"parallel_s\": {:.6}, \"speedup\": {:.6}}}",
        ladder.parity_ok,
        ladder.rungs,
        ladder.serial_s,
        ladder.parallel_s,
        ladder.serial_s / ladder.parallel_s
    ));
    if let Some(s) = scaling {
        out.push_str(&format!(",\n  \"scaling\": {}\n", scaling_json(s)));
    } else {
        out.push('\n');
    }
    out.push_str("}\n");
    out
}

fn main() {
    let args = parse_args(std::env::args().skip(1));
    header("ingest_bench", "SAS segment ingest: serial loop vs chunked parallel fan-out");
    println!("{:.1}s of content, up to {} workers", args.duration_s, args.max_workers);

    let scene = scene_for(VideoId::Rs);
    let cfg = SasConfig::tiny_for_tests();

    // Worker sweep, store-less: every count must reproduce the serial
    // catalog byte for byte.
    let mut serial_s = 0.0;
    let mut reference: Option<SasCatalog> = None;
    let mut sweep = Vec::new();
    for workers in worker_counts(args.max_workers) {
        let options = IngestOptions { workers, ..IngestOptions::default() };
        let start = Instant::now();
        let catalog = ingest(&scene, &cfg, args.duration_s, &options);
        let wall_s = start.elapsed().as_secs_f64();
        let parity_ok = match &reference {
            None => {
                serial_s = wall_s;
                reference = Some(catalog);
                true
            }
            Some(reference) => *reference == catalog,
        };
        println!(
            "  {workers:>2} workers: {wall_s:.2}s ({:.2}x), parity {}",
            serial_s / wall_s,
            if parity_ok { "ok" } else { "FAIL" }
        );
        sweep.push(WorkerResult { workers, wall_s, parity_ok });
    }
    let reference = reference.expect("sweep ran");

    // Store-backed: a cold ingest renders and publishes every pre-render
    // once; a warm re-ingest of the same content is pure store hits.
    let fov_store = FovPrerenderStore::new();
    let options = IngestOptions {
        workers: args.max_workers,
        store: Some(fov_store.clone()),
        ..IngestOptions::default()
    };
    let start = Instant::now();
    let cold = ingest(&scene, &cfg, args.duration_s, &options);
    let cold_s = start.elapsed().as_secs_f64();
    let cold_stats = fov_store.stats();
    let start = Instant::now();
    let warm = ingest(&scene, &cfg, args.duration_s, &options);
    let warm_s = start.elapsed().as_secs_f64();
    let warm_stats = fov_store.stats();

    // Delta-resident rung ladder over the same catalog: lower FOV rungs
    // held as residuals against the top rung must serve a playback
    // session bit-identically to a ladder of independent full encodings
    // (DESIGN.md §16) — the report compares everything, down to the
    // energy ledger and the played-out content digest.
    let rungs = fov_rung_quantizers(&cfg);
    let full_ladder = FovPrerenderStore::new();
    populate_fov_ladder(&cold, &full_ladder, &rungs, args.max_workers, false);
    let delta_ladder = FovPrerenderStore::new();
    populate_fov_ladder(&cold, &delta_ladder, &rungs, args.max_workers, true);
    let delta_resident_bytes = delta_ladder.resident_bytes();
    let delta_entries = delta_ladder.delta_entries();
    let picks: Vec<(u32, usize)> = (0..cold.segment_count())
        .filter_map(|s| cold.clusters_in_segment(s).first().map(|&c| (s, c)))
        .collect();
    let device = DeviceParams::default();
    let play = |ladder: FovPrerenderStore| {
        let server = SasServer::with_store(cold.clone(), ladder);
        run_refinement_session(&CleanTransport, &server, &picks, rungs[0], &device)
            .expect("refinement session over the bench catalog")
    };
    let ladder_parity = play(full_ladder) == play(delta_ladder);

    let parity_ok = reference == cold
        && reference == warm
        && warm_stats.misses == cold_stats.misses // warm ingest never re-renders
        && warm_stats.hits > cold_stats.hits
        && ladder_parity;
    let store = StoreResult {
        cold_s,
        warm_s,
        hits: warm_stats.hits,
        misses: warm_stats.misses,
        evictions: warm_stats.evictions,
        resident_bytes: fov_store.resident_bytes(),
        entries: fov_store.len(),
        delta_resident_bytes,
        delta_entries,
        parity_ok,
    };
    println!(
        "  store: cold {:.2}s, warm {:.2}s ({:.2}x), {} hits / {} misses, \
         {} entries resident ({} bytes), delta ladder {} bytes \
         ({} delta entries, playback parity {}), parity {}",
        store.cold_s,
        store.warm_s,
        store.cold_s / store.warm_s,
        store.hits,
        store.misses,
        store.entries,
        store.resident_bytes,
        store.delta_resident_bytes,
        store.delta_entries,
        if ladder_parity { "ok" } else { "FAIL" },
        if store.parity_ok { "ok" } else { "FAIL" }
    );

    // Full bitrate ladder: the content provider's ABR encode of the same
    // upload, serial vs parallel, byte-identical like every fan-out.
    let start = Instant::now();
    let ladder_serial = ingest_ladder_with(&scene, &cfg, LADDER_RUNGS, args.duration_s, 1);
    let ladder_serial_s = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let ladder_parallel =
        ingest_ladder_with(&scene, &cfg, LADDER_RUNGS, args.duration_s, args.max_workers);
    let ladder_parallel_s = start.elapsed().as_secs_f64();
    let ladder = LadderResult {
        rungs: LADDER_RUNGS.len(),
        serial_s: ladder_serial_s,
        parallel_s: ladder_parallel_s,
        parity_ok: ladder_serial == ladder_parallel,
    };
    println!(
        "  ladder: {} rungs, serial {:.2}s, parallel {:.2}s ({:.2}x), parity {}",
        ladder.rungs,
        ladder.serial_s,
        ladder.parallel_s,
        ladder.serial_s / ladder.parallel_s,
        if ladder.parity_ok { "ok" } else { "FAIL" }
    );

    let scaling = run_scaling(&scene, &cfg, &args, &sweep, reference.segment_count());
    match &scaling {
        Some(s) => {
            println!("  modeled {}", s.summary.render_line());
            println!(
                "  modeled makespan at {} workers: chunked {:.2}s vs static interleave {:.2}s",
                s.summary.workers, s.modeled_chunked_wall_s, s.modeled_interleave_wall_s
            );
            println!(
                "  throughput: serial {:.1} segments/s measured, parallel {:.1} segments/s modeled",
                s.serial_segments_per_s, s.segments_per_s
            );
            for st in &s.summary.stages {
                println!(
                    "    stage {:<16} serial busy {:.3}s, widest lane {:.3}s, serial fraction {:.3}",
                    st.stage, st.serial_busy_s, st.parallel_busy_s, st.serial_fraction
                );
            }
        }
        None => println!("  scaling: skipped (needs workers >= 2)"),
    }

    if let Some(path) = &args.json {
        let json = bench_json(&args, serial_s, &sweep, &store, &ladder, scaling.as_ref());
        std::fs::write(path, &json).expect("write ingest bench JSON");
        println!("json: {path}");
    }

    // Widest timed ingest as a Chrome Trace Event artifact.
    let trace_path = args.trace.clone().or_else(|| {
        args.json.as_ref().map(|p| {
            p.strip_suffix(".json").map_or_else(
                || format!("{p}.trace_events.json"),
                |stem| format!("{stem}.trace_events.json"),
            )
        })
    });
    if let (Some(path), Some(s)) = (&trace_path, &scaling) {
        s.timeline.write_chrome_trace(path).expect("write ingest trace");
        println!("trace: {path}");
    }

    if !(sweep.iter().all(|r| r.parity_ok) && store.parity_ok && ladder.parity_ok) {
        eprintln!(
            "parity FAILED: parallel, store-backed, or ladder ingest diverged from the serial loop"
        );
        std::process::exit(1);
    }
}
