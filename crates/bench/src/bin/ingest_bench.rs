//! Cloud-side ingest benchmark: the SAS ingestion pipeline (detect →
//! cluster → track → pre-render per segment) run once serially and once
//! per parallel worker count, with a run-time parity check that every
//! parallel catalog is byte-identical to the serial one; then the
//! store-backed path — a cold ingest populating the shared FOV
//! pre-render store and a warm re-ingest served out of it — with the
//! same parity check plus the store's hit/miss accounting. Emits
//! `BENCH_ingest.json` so the cloud-scaling trajectory has data points
//! (ROADMAP: the cloud side ingests every upload once and serves many).
//!
//! Exits non-zero if any parity check fails, which is what the CI smoke
//! step relies on:
//!
//! ```text
//! cargo run --release -p evr-bench --bin ingest_bench -- --smoke json=BENCH_ingest.json
//! cargo run --release -p evr-bench --bin ingest_bench -- duration=60 workers=8
//! ```
//!
//! Timings vary across machines, so the JSON is not golden-diffed —
//! only the `parity_ok` flags are load-bearing in CI.
//!
//! The worker sweep doubles as the scaling model's input: its points
//! are fitted into an Amdahl
//! [`ScalingSummary`](evr_bench::scaling::ScalingSummary) with a
//! per-segment stage attribution from the worker timeline, embedded as
//! the JSON's `"scaling"` section (what `bench_gate` compares against
//! `benches/baselines/ingest.json`); the widest timed run is written as
//! a Chrome Trace Event file (`*.trace_events.json`, openable in
//! chrome://tracing or Perfetto).

use std::time::Instant;

use evr_bench::header;
use evr_bench::scaling::{stage_scaling, ScalingPoint, ScalingSummary};
use evr_obs::{Observer, Timeline, TimelineEvent, DEFAULT_TIMELINE_CAPACITY};
use evr_sas::{ingest_video_with, FovPrerenderStore, IngestOptions, SasCatalog, SasConfig};
use evr_video::library::{scene_for, VideoId};
use evr_video::scene::Scene;

struct IngestArgs {
    duration_s: f64,
    max_workers: usize,
    json: Option<String>,
    trace: Option<String>,
}

impl Default for IngestArgs {
    fn default() -> Self {
        IngestArgs {
            duration_s: evr_video::library::SCENE_DURATION,
            max_workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            json: None,
            trace: None,
        }
    }
}

fn parse_args(args: impl Iterator<Item = String>) -> IngestArgs {
    let mut out = IngestArgs::default();
    for arg in args {
        if arg == "--smoke" || arg == "smoke" || arg == "quick" {
            // Ingest cost scales with content length; a few seconds of
            // content exercises every stage (multiple segments per
            // worker) while keeping CI wall-clock in check.
            out.duration_s = 5.0;
        } else if let Some(v) = arg.strip_prefix("duration=") {
            out.duration_s = v.parse().expect("duration=S takes seconds");
        } else if let Some(v) = arg.strip_prefix("workers=") {
            out.max_workers = v.parse().expect("workers=N takes an integer");
        } else if let Some(v) = arg.strip_prefix("json=") {
            out.json = Some(v.to_string());
        } else if let Some(v) = arg.strip_prefix("trace=") {
            out.trace = Some(v.to_string());
        } else {
            panic!(
                "unknown argument {arg:?}; expected `--smoke`, `duration=S`, `workers=N`, \
                 `json=PATH` or `trace=PATH`"
            );
        }
    }
    out
}

struct WorkerResult {
    workers: usize,
    wall_s: f64,
    parity_ok: bool,
}

struct StoreResult {
    cold_s: f64,
    warm_s: f64,
    hits: u64,
    misses: u64,
    evictions: u64,
    resident_bytes: u64,
    entries: usize,
    parity_ok: bool,
}

fn ingest(scene: &Scene, cfg: &SasConfig, duration_s: f64, options: &IngestOptions) -> SasCatalog {
    ingest_video_with(scene, cfg, duration_s, options).expect("bench ingest must succeed")
}

/// The worker-count sweep: 1 (the serial reference), then doubling up to
/// the requested maximum, deduplicated.
fn worker_counts(max: usize) -> Vec<usize> {
    let mut counts = vec![1];
    let mut w = 2;
    while w < max {
        counts.push(w);
        w *= 2;
    }
    if max > 1 {
        counts.push(max);
    }
    counts
}

struct IngestScaling {
    summary: ScalingSummary,
    serial_segments_per_s: f64,
    segments_per_s: f64,
    timeline: Timeline,
}

/// One ingest run with a timeline attached, returning the captured
/// `ingest_segment` intervals.
fn timed_ingest(
    scene: &Scene,
    cfg: &SasConfig,
    args: &IngestArgs,
    workers: usize,
) -> (Vec<TimelineEvent>, Timeline) {
    let timeline = Timeline::bounded(DEFAULT_TIMELINE_CAPACITY);
    let options = IngestOptions {
        workers,
        observer: Observer::enabled().with_timeline(timeline.clone()),
        ..IngestOptions::default()
    };
    let _ = ingest(scene, cfg, args.duration_s, &options);
    (timeline.events(), timeline)
}

/// Fits the Amdahl model over the untimed sweep points, then replays a
/// timed serial and a timed widest ingest for the per-stage attribution
/// and the Chrome trace artifact.
fn run_scaling(
    scene: &Scene,
    cfg: &SasConfig,
    args: &IngestArgs,
    sweep: &[WorkerResult],
    segments: u32,
) -> Option<IngestScaling> {
    let points: Vec<ScalingPoint> =
        sweep.iter().map(|r| ScalingPoint { workers: r.workers, wall_s: r.wall_s }).collect();
    let summary = ScalingSummary::fit(&points)?;
    let (serial_events, _) = timed_ingest(scene, cfg, args, 1);
    let (parallel_events, timeline) = timed_ingest(scene, cfg, args, summary.workers);
    let stages = stage_scaling(&serial_events, &parallel_events, summary.workers);
    let serial_wall = points.iter().find(|p| p.workers == 1).map_or(f64::NAN, |p| p.wall_s);
    let widest_wall =
        points.iter().find(|p| p.workers == summary.workers).map_or(f64::NAN, |p| p.wall_s);
    Some(IngestScaling {
        summary: summary.with_stages(stages),
        serial_segments_per_s: segments as f64 / serial_wall,
        segments_per_s: segments as f64 / widest_wall,
        timeline,
    })
}

/// Splices the throughput fields into the summary's JSON object so the
/// gate can address them as `scaling.segments_per_s`.
fn scaling_json(s: &IngestScaling) -> String {
    let summary = s.summary.to_json();
    let inner = summary.strip_prefix('{').and_then(|t| t.strip_suffix('}')).unwrap_or(&summary);
    format!(
        "{{\"serial_segments_per_s\": {:.6}, \"segments_per_s\": {:.6}, {}}}",
        s.serial_segments_per_s, s.segments_per_s, inner
    )
}

/// Stable JSON: fixed key order, floats `{:.6}`, one sweep point per line.
fn bench_json(
    args: &IngestArgs,
    serial_s: f64,
    sweep: &[WorkerResult],
    store: &StoreResult,
    scaling: Option<&IngestScaling>,
) -> String {
    let parity_ok = sweep.iter().all(|r| r.parity_ok) && store.parity_ok;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"duration_s\": {:.6}, \"max_workers\": {}, \"parity_ok\": {},\n",
        args.duration_s, args.max_workers, parity_ok
    ));
    out.push_str("  \"workers\": [\n");
    for (i, r) in sweep.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workers\": {}, \"parity_ok\": {}, \"wall_s\": {:.6}, \"speedup\": {:.6}}}{}\n",
            r.workers,
            r.parity_ok,
            r.wall_s,
            serial_s / r.wall_s,
            if i + 1 < sweep.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"store\": {{\"parity_ok\": {}, \"cold_s\": {:.6}, \"warm_s\": {:.6}, \
         \"warm_speedup\": {:.6}, \"hits\": {}, \"misses\": {}, \"evictions\": {}, \
         \"resident_bytes\": {}, \"entries\": {}}}",
        store.parity_ok,
        store.cold_s,
        store.warm_s,
        store.cold_s / store.warm_s,
        store.hits,
        store.misses,
        store.evictions,
        store.resident_bytes,
        store.entries
    ));
    if let Some(s) = scaling {
        out.push_str(&format!(",\n  \"scaling\": {}\n", scaling_json(s)));
    } else {
        out.push('\n');
    }
    out.push_str("}\n");
    out
}

fn main() {
    let args = parse_args(std::env::args().skip(1));
    header("ingest_bench", "SAS segment ingest: serial loop vs deterministic parallel fan-out");
    println!("{:.1}s of content, up to {} workers", args.duration_s, args.max_workers);

    let scene = scene_for(VideoId::Rs);
    let cfg = SasConfig::tiny_for_tests();

    // Worker sweep, store-less: every count must reproduce the serial
    // catalog byte for byte.
    let mut serial_s = 0.0;
    let mut reference: Option<SasCatalog> = None;
    let mut sweep = Vec::new();
    for workers in worker_counts(args.max_workers) {
        let options = IngestOptions { workers, ..IngestOptions::default() };
        let start = Instant::now();
        let catalog = ingest(&scene, &cfg, args.duration_s, &options);
        let wall_s = start.elapsed().as_secs_f64();
        let parity_ok = match &reference {
            None => {
                serial_s = wall_s;
                reference = Some(catalog);
                true
            }
            Some(reference) => *reference == catalog,
        };
        println!(
            "  {workers:>2} workers: {wall_s:.2}s ({:.2}x), parity {}",
            serial_s / wall_s,
            if parity_ok { "ok" } else { "FAIL" }
        );
        sweep.push(WorkerResult { workers, wall_s, parity_ok });
    }
    let reference = reference.expect("sweep ran");

    // Store-backed: a cold ingest renders and publishes every pre-render
    // once; a warm re-ingest of the same content is pure store hits.
    let fov_store = FovPrerenderStore::new();
    let options = IngestOptions {
        workers: args.max_workers,
        store: Some(fov_store.clone()),
        ..IngestOptions::default()
    };
    let start = Instant::now();
    let cold = ingest(&scene, &cfg, args.duration_s, &options);
    let cold_s = start.elapsed().as_secs_f64();
    let cold_stats = fov_store.stats();
    let start = Instant::now();
    let warm = ingest(&scene, &cfg, args.duration_s, &options);
    let warm_s = start.elapsed().as_secs_f64();
    let warm_stats = fov_store.stats();
    let parity_ok = reference == cold
        && reference == warm
        && warm_stats.misses == cold_stats.misses // warm ingest never re-renders
        && warm_stats.hits > cold_stats.hits;
    let store = StoreResult {
        cold_s,
        warm_s,
        hits: warm_stats.hits,
        misses: warm_stats.misses,
        evictions: warm_stats.evictions,
        resident_bytes: fov_store.resident_bytes(),
        entries: fov_store.len(),
        parity_ok,
    };
    println!(
        "  store: cold {:.2}s, warm {:.2}s ({:.2}x), {} hits / {} misses, \
         {} entries resident ({} bytes), parity {}",
        store.cold_s,
        store.warm_s,
        store.cold_s / store.warm_s,
        store.hits,
        store.misses,
        store.entries,
        store.resident_bytes,
        if store.parity_ok { "ok" } else { "FAIL" }
    );

    let scaling = run_scaling(&scene, &cfg, &args, &sweep, reference.segment_count());
    match &scaling {
        Some(s) => {
            println!("  {}", s.summary.render_line());
            println!(
                "  throughput: serial {:.1} segments/s, parallel {:.1} segments/s",
                s.serial_segments_per_s, s.segments_per_s
            );
            for st in &s.summary.stages {
                println!(
                    "    stage {:<16} serial busy {:.3}s, widest lane {:.3}s, serial fraction {:.3}",
                    st.stage, st.serial_busy_s, st.parallel_busy_s, st.serial_fraction
                );
            }
        }
        None => println!("  scaling: skipped (needs workers >= 2)"),
    }

    if let Some(path) = &args.json {
        let json = bench_json(&args, serial_s, &sweep, &store, scaling.as_ref());
        std::fs::write(path, &json).expect("write ingest bench JSON");
        println!("json: {path}");
    }

    // Widest timed ingest as a Chrome Trace Event artifact.
    let trace_path = args.trace.clone().or_else(|| {
        args.json.as_ref().map(|p| {
            p.strip_suffix(".json").map_or_else(
                || format!("{p}.trace_events.json"),
                |stem| format!("{stem}.trace_events.json"),
            )
        })
    });
    if let (Some(path), Some(s)) = (&trace_path, &scaling) {
        s.timeline.write_chrome_trace(path).expect("write ingest trace");
        println!("trace: {path}");
    }

    if !(sweep.iter().all(|r| r.parity_ok) && store.parity_ok) {
        eprintln!("parity FAILED: parallel or store-backed ingest diverged from the serial loop");
        std::process::exit(1);
    }
}
