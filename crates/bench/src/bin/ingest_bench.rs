//! Cloud-side ingest benchmark: the SAS ingestion pipeline (detect →
//! cluster → track → pre-render per segment) run once serially and once
//! per parallel worker count, with a run-time parity check that every
//! parallel catalog is byte-identical to the serial one; then the
//! store-backed path — a cold ingest populating the shared FOV
//! pre-render store and a warm re-ingest served out of it — with the
//! same parity check plus the store's hit/miss accounting. Emits
//! `BENCH_ingest.json` so the cloud-scaling trajectory has data points
//! (ROADMAP: the cloud side ingests every upload once and serves many).
//!
//! Exits non-zero if any parity check fails, which is what the CI smoke
//! step relies on:
//!
//! ```text
//! cargo run --release -p evr-bench --bin ingest_bench -- --smoke json=BENCH_ingest.json
//! cargo run --release -p evr-bench --bin ingest_bench -- duration=60 workers=8
//! ```
//!
//! Timings vary across machines, so the JSON is not golden-diffed —
//! only the `parity_ok` flags are load-bearing in CI.

use std::time::Instant;

use evr_bench::header;
use evr_sas::{ingest_video_with, FovPrerenderStore, IngestOptions, SasCatalog, SasConfig};
use evr_video::library::{scene_for, VideoId};
use evr_video::scene::Scene;

struct IngestArgs {
    duration_s: f64,
    max_workers: usize,
    json: Option<String>,
}

impl Default for IngestArgs {
    fn default() -> Self {
        IngestArgs {
            duration_s: evr_video::library::SCENE_DURATION,
            max_workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            json: None,
        }
    }
}

fn parse_args(args: impl Iterator<Item = String>) -> IngestArgs {
    let mut out = IngestArgs::default();
    for arg in args {
        if arg == "--smoke" || arg == "smoke" || arg == "quick" {
            // Ingest cost scales with content length; a few seconds of
            // content exercises every stage (multiple segments per
            // worker) while keeping CI wall-clock in check.
            out.duration_s = 5.0;
        } else if let Some(v) = arg.strip_prefix("duration=") {
            out.duration_s = v.parse().expect("duration=S takes seconds");
        } else if let Some(v) = arg.strip_prefix("workers=") {
            out.max_workers = v.parse().expect("workers=N takes an integer");
        } else if let Some(v) = arg.strip_prefix("json=") {
            out.json = Some(v.to_string());
        } else {
            panic!(
                "unknown argument {arg:?}; expected `--smoke`, `duration=S`, `workers=N` \
                 or `json=PATH`"
            );
        }
    }
    out
}

struct WorkerResult {
    workers: usize,
    wall_s: f64,
    parity_ok: bool,
}

struct StoreResult {
    cold_s: f64,
    warm_s: f64,
    hits: u64,
    misses: u64,
    evictions: u64,
    resident_bytes: u64,
    entries: usize,
    parity_ok: bool,
}

fn ingest(scene: &Scene, cfg: &SasConfig, duration_s: f64, options: &IngestOptions) -> SasCatalog {
    ingest_video_with(scene, cfg, duration_s, options).expect("bench ingest must succeed")
}

/// The worker-count sweep: 1 (the serial reference), then doubling up to
/// the requested maximum, deduplicated.
fn worker_counts(max: usize) -> Vec<usize> {
    let mut counts = vec![1];
    let mut w = 2;
    while w < max {
        counts.push(w);
        w *= 2;
    }
    if max > 1 {
        counts.push(max);
    }
    counts
}

/// Stable JSON: fixed key order, floats `{:.6}`, one sweep point per line.
fn bench_json(
    args: &IngestArgs,
    serial_s: f64,
    sweep: &[WorkerResult],
    store: &StoreResult,
) -> String {
    let parity_ok = sweep.iter().all(|r| r.parity_ok) && store.parity_ok;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"duration_s\": {:.6}, \"max_workers\": {}, \"parity_ok\": {},\n",
        args.duration_s, args.max_workers, parity_ok
    ));
    out.push_str("  \"workers\": [\n");
    for (i, r) in sweep.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workers\": {}, \"parity_ok\": {}, \"wall_s\": {:.6}, \"speedup\": {:.6}}}{}\n",
            r.workers,
            r.parity_ok,
            r.wall_s,
            serial_s / r.wall_s,
            if i + 1 < sweep.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"store\": {{\"parity_ok\": {}, \"cold_s\": {:.6}, \"warm_s\": {:.6}, \
         \"warm_speedup\": {:.6}, \"hits\": {}, \"misses\": {}, \"evictions\": {}, \
         \"resident_bytes\": {}, \"entries\": {}}}\n",
        store.parity_ok,
        store.cold_s,
        store.warm_s,
        store.cold_s / store.warm_s,
        store.hits,
        store.misses,
        store.evictions,
        store.resident_bytes,
        store.entries
    ));
    out.push_str("}\n");
    out
}

fn main() {
    let args = parse_args(std::env::args().skip(1));
    header("ingest_bench", "SAS segment ingest: serial loop vs deterministic parallel fan-out");
    println!("{:.1}s of content, up to {} workers", args.duration_s, args.max_workers);

    let scene = scene_for(VideoId::Rs);
    let cfg = SasConfig::tiny_for_tests();

    // Worker sweep, store-less: every count must reproduce the serial
    // catalog byte for byte.
    let mut serial_s = 0.0;
    let mut reference: Option<SasCatalog> = None;
    let mut sweep = Vec::new();
    for workers in worker_counts(args.max_workers) {
        let options = IngestOptions { workers, ..IngestOptions::default() };
        let start = Instant::now();
        let catalog = ingest(&scene, &cfg, args.duration_s, &options);
        let wall_s = start.elapsed().as_secs_f64();
        let parity_ok = match &reference {
            None => {
                serial_s = wall_s;
                reference = Some(catalog);
                true
            }
            Some(reference) => *reference == catalog,
        };
        println!(
            "  {workers:>2} workers: {wall_s:.2}s ({:.2}x), parity {}",
            serial_s / wall_s,
            if parity_ok { "ok" } else { "FAIL" }
        );
        sweep.push(WorkerResult { workers, wall_s, parity_ok });
    }
    let reference = reference.expect("sweep ran");

    // Store-backed: a cold ingest renders and publishes every pre-render
    // once; a warm re-ingest of the same content is pure store hits.
    let fov_store = FovPrerenderStore::new();
    let options = IngestOptions {
        workers: args.max_workers,
        store: Some(fov_store.clone()),
        ..IngestOptions::default()
    };
    let start = Instant::now();
    let cold = ingest(&scene, &cfg, args.duration_s, &options);
    let cold_s = start.elapsed().as_secs_f64();
    let cold_stats = fov_store.stats();
    let start = Instant::now();
    let warm = ingest(&scene, &cfg, args.duration_s, &options);
    let warm_s = start.elapsed().as_secs_f64();
    let warm_stats = fov_store.stats();
    let parity_ok = reference == cold
        && reference == warm
        && warm_stats.misses == cold_stats.misses // warm ingest never re-renders
        && warm_stats.hits > cold_stats.hits;
    let store = StoreResult {
        cold_s,
        warm_s,
        hits: warm_stats.hits,
        misses: warm_stats.misses,
        evictions: warm_stats.evictions,
        resident_bytes: fov_store.resident_bytes(),
        entries: fov_store.len(),
        parity_ok,
    };
    println!(
        "  store: cold {:.2}s, warm {:.2}s ({:.2}x), {} hits / {} misses, \
         {} entries resident ({} bytes), parity {}",
        store.cold_s,
        store.warm_s,
        store.cold_s / store.warm_s,
        store.hits,
        store.misses,
        store.entries,
        store.resident_bytes,
        if store.parity_ok { "ok" } else { "FAIL" }
    );

    if let Some(path) = &args.json {
        let json = bench_json(&args, serial_s, &sweep, &store);
        std::fs::write(path, &json).expect("write ingest bench JSON");
        println!("json: {path}");
    }

    if !(sweep.iter().all(|r| r.parity_ok) && store.parity_ok) {
        eprintln!("parity FAILED: parallel or store-backed ingest diverged from the serial loop");
        std::process::exit(1);
    }
}
