//! §7.2 prototype characterisation: PTU-count sweep of the PTE.

use evr_bench::header;
use evr_core::figures::proto_pte;

fn main() {
    header("§7.2 prototype", "PTE characterisation at 2560x1440 output, 4K source");
    println!("{:>5} {:>8} {:>9} {:>12}", "PTUs", "FPS", "power", "DRAM rd/frm");
    for r in proto_pte() {
        println!(
            "{:>5} {:>8.1} {:>8.0}mW {:>9}KB",
            r.ptus,
            r.fps,
            1000.0 * r.power_w,
            r.dram_read_bytes / 1024
        );
    }
    println!("(paper: 2 PTUs at 100 MHz deliver 50 FPS at 194 mW — one order of");
    println!(" magnitude below a typical mobile GPU's ~2 W active power)");
}
