//! PT fast-path benchmark: measures the scanline-parallel renderers and
//! the sampling-map LUT against the sequential baseline, checks that
//! every fast path is bit-identical to it, and emits `BENCH_pt.json` so
//! the performance trajectory has data points (ROADMAP: "as fast as the
//! hardware allows").
//!
//! Exits non-zero if any parity check fails, which is what the CI smoke
//! step relies on:
//!
//! ```text
//! cargo run --release -p evr-bench --bin pt_bench -- --smoke json=BENCH_pt.json
//! cargo run --release -p evr-bench --bin pt_bench -- frames=120 threads=8 seed=11
//! ```
//!
//! Timings vary across machines, so unlike `chaos_run` the JSON is not
//! golden-diffed — only the `parity_ok` flags are load-bearing in CI.

use std::time::Instant;

use evr_bench::header;
use evr_math::EulerAngles;
use evr_projection::lut::SamplingMapCache;
use evr_projection::transform::render_panorama;
use evr_projection::{
    FilterMode, FixedTransformer, FovSpec, Projection, Rgb, Transformer, Viewport,
};
use evr_pte::{Pte, PteConfig};

struct PtArgs {
    seed: u64,
    frames: u32,
    threads: usize,
    src: (u32, u32),
    viewport: (u32, u32),
    json: Option<String>,
}

impl Default for PtArgs {
    fn default() -> Self {
        PtArgs {
            seed: 7,
            frames: 60,
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            src: (2048, 1024),
            viewport: (960, 540),
            json: None,
        }
    }
}

fn parse_args(args: impl Iterator<Item = String>) -> PtArgs {
    let mut out = PtArgs::default();
    for arg in args {
        if arg == "--smoke" || arg == "smoke" || arg == "quick" {
            out.frames = 12;
            out.src = (512, 256);
            out.viewport = (192, 108);
        } else if let Some(v) = arg.strip_prefix("seed=") {
            out.seed = v.parse().expect("seed=N takes an integer");
        } else if let Some(v) = arg.strip_prefix("frames=") {
            out.frames = v.parse().expect("frames=N takes an integer");
        } else if let Some(v) = arg.strip_prefix("threads=") {
            out.threads = v.parse().expect("threads=N takes an integer");
        } else if let Some(v) = arg.strip_prefix("json=") {
            out.json = Some(v.to_string());
        } else {
            panic!(
                "unknown argument {arg:?}; expected `--smoke`, `seed=N`, `frames=N`, \
                 `threads=N` or `json=PATH`"
            );
        }
    }
    out
}

/// Seeded xorshift64* — enough randomness for head poses without pulling
/// a SIMD-heavy RNG into a timing benchmark.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1))
    }

    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    }

    fn pose(&mut self) -> EulerAngles {
        EulerAngles::from_degrees(
            (self.next_f64() - 0.5) * 360.0,
            (self.next_f64() - 0.5) * 160.0,
            0.0,
        )
    }
}

struct CaseResult {
    projection: Projection,
    filter: FilterMode,
    parity_ok: bool,
    seq_ms: f64,
    par_ms: f64,
    map_ms: f64,
}

/// One projection × filter case: parity of every fast path against the
/// single-thread renderer, then per-frame timings for each path.
fn run_case(args: &PtArgs, projection: Projection, filter: FilterMode) -> CaseResult {
    let (sw, sh) = args.src;
    let src = render_panorama(projection, sw, sh, |d| {
        Rgb::new(
            (d.x * 120.0 + 128.0) as u8,
            (d.y * 120.0 + 128.0) as u8,
            (d.z * 90.0 + 96.0) as u8,
        )
    });
    let viewport = Viewport::new(args.viewport.0, args.viewport.1);
    let t = Transformer::new(projection, filter, FovSpec::hdk2(), viewport);
    let fixed = FixedTransformer::new(
        evr_math::FxFormat::q28_10(),
        projection,
        filter,
        FovSpec::hdk2(),
        viewport,
    );
    let cache = SamplingMapCache::new();

    // Parity sweep: a handful of poses including the ERP seam region.
    let mut rng = Rng::new(args.seed);
    let mut poses = vec![
        EulerAngles::from_degrees(179.5, 0.0, 0.0),
        EulerAngles::from_degrees(-179.5, -30.0, 0.0),
    ];
    for _ in 0..4 {
        poses.push(rng.pose());
    }
    let mut parity_ok = true;
    for &pose in &poses {
        let baseline = t.render_fov_threads(&src, pose, 1);
        let parallel = t.render_fov_threads(&src, pose, args.threads.max(2));
        let (map, _) = cache.reference_map(&t, pose, 1);
        let mapped = t.render_with_map(&src, map.as_reference().expect("reference map"));
        let fx_baseline = fixed.render_fov_threads(&src, pose, 1);
        let fx_parallel = fixed.render_fov_threads(&src, pose, args.threads.max(2));
        let (fx_map, _) = cache.fixed_map(&fixed, pose);
        let fx_mapped = fixed.render_with_map(&src, fx_map.as_fixed().expect("fixed map").1);
        parity_ok &= parallel.image == baseline.image
            && mapped == baseline.image
            && fx_parallel == fx_baseline
            && fx_mapped == fx_baseline;
    }

    // Timings: fresh poses each frame for seq/par (no LUT), one warm map
    // replayed for the map path (the steady-state frame of a static gaze).
    let mut rng = Rng::new(args.seed ^ 0xBEEF);
    let frame_poses: Vec<EulerAngles> = (0..args.frames).map(|_| rng.pose()).collect();
    let start = Instant::now();
    for &pose in &frame_poses {
        std::hint::black_box(t.render_fov_threads(&src, pose, 1));
    }
    let seq_ms = start.elapsed().as_secs_f64() * 1e3 / args.frames as f64;
    let start = Instant::now();
    for &pose in &frame_poses {
        std::hint::black_box(t.render_fov_threads(&src, pose, args.threads));
    }
    let par_ms = start.elapsed().as_secs_f64() * 1e3 / args.frames as f64;
    let (map, _) = cache.reference_map(&t, frame_poses[0], 1);
    let coords = map.as_reference().expect("reference map");
    let start = Instant::now();
    for _ in 0..args.frames {
        std::hint::black_box(t.render_with_map(&src, coords));
    }
    let map_ms = start.elapsed().as_secs_f64() * 1e3 / args.frames as f64;

    CaseResult { projection, filter, parity_ok, seq_ms, par_ms, map_ms }
}

struct EngineResult {
    cold_ms: f64,
    warm_ms: f64,
    lut_hits: u64,
    lut_misses: u64,
}

/// `Pte::render_frame` end to end — the path that used to run the
/// mapping twice. Cold = first frame at a pose (LUT miss), warm = the
/// remaining frames at LUT-quantized poses (hits).
fn run_engine(args: &PtArgs) -> EngineResult {
    let (sw, sh) = args.src;
    let cfg = PteConfig::prototype().with_viewport(Viewport::new(args.viewport.0, args.viewport.1));
    let src = render_panorama(cfg.projection, sw, sh, |d| {
        Rgb::new((d.x * 120.0 + 128.0) as u8, 90, (d.z * 90.0 + 96.0) as u8)
    });
    // Quantize poses to 0.5°: nearby frames of a head trajectory land on
    // the same LUT entry, which is where the single-pass win comes from.
    let pte = Pte::new(cfg).with_lut_cache(SamplingMapCache::with_config(1 << 23, 0.5));

    let mut rng = Rng::new(args.seed ^ 0xF0F0);
    let base = rng.pose();
    let start = Instant::now();
    std::hint::black_box(pte.render_frame(&src, base));
    let cold_ms = start.elapsed().as_secs_f64() * 1e3;

    let warm_frames = args.frames.max(2) - 1;
    let start = Instant::now();
    for _ in 0..warm_frames {
        // ±0.1° jitter around the gaze: snaps to the same quantized pose.
        let jitter = EulerAngles::from_degrees(
            base.yaw.to_degrees().0 + (rng.next_f64() - 0.5) * 0.2,
            base.pitch.to_degrees().0 + (rng.next_f64() - 0.5) * 0.2,
            0.0,
        );
        std::hint::black_box(pte.render_frame(&src, jitter));
    }
    let warm_ms = start.elapsed().as_secs_f64() * 1e3 / warm_frames as f64;
    let stats = pte.lut_cache().stats();
    EngineResult { cold_ms, warm_ms, lut_hits: stats.hits, lut_misses: stats.misses }
}

/// Stable JSON: fixed key order, floats `{:.6}`, one case per line.
fn bench_json(args: &PtArgs, cases: &[CaseResult], engine: &EngineResult) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"seed\": {}, \"threads\": {}, \"frames\": {},\n  \"src\": [{}, {}], \
         \"viewport\": [{}, {}],\n",
        args.seed,
        args.threads,
        args.frames,
        args.src.0,
        args.src.1,
        args.viewport.0,
        args.viewport.1
    ));
    out.push_str(&format!(
        "  \"parity_ok\": {},\n  \"cases\": [\n",
        cases.iter().all(|c| c.parity_ok)
    ));
    for (i, c) in cases.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"projection\": \"{}\", \"filter\": \"{}\", \"parity_ok\": {}, \
             \"seq_ms\": {:.6}, \"par_ms\": {:.6}, \"map_ms\": {:.6}, \
             \"par_speedup\": {:.6}, \"map_speedup\": {:.6}}}{}\n",
            c.projection,
            c.filter,
            c.parity_ok,
            c.seq_ms,
            c.par_ms,
            c.map_ms,
            c.seq_ms / c.par_ms,
            c.seq_ms / c.map_ms,
            if i + 1 < cases.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"engine\": {{\"cold_ms\": {:.6}, \"warm_ms\": {:.6}, \"warm_speedup\": {:.6}, \
         \"lut_hits\": {}, \"lut_misses\": {}}}\n",
        engine.cold_ms,
        engine.warm_ms,
        engine.cold_ms / engine.warm_ms,
        engine.lut_hits,
        engine.lut_misses
    ));
    out.push_str("}\n");
    out
}

fn main() {
    let args = parse_args(std::env::args().skip(1));
    header("pt_bench", "PT fast path: parallel render + sampling-map LUT vs sequential");
    println!(
        "src {}x{}, viewport {}x{}, {} frames, {} threads, seed {}",
        args.src.0,
        args.src.1,
        args.viewport.0,
        args.viewport.1,
        args.frames,
        args.threads,
        args.seed
    );

    let mut cases = Vec::new();
    for projection in Projection::ALL {
        for filter in [FilterMode::Nearest, FilterMode::Bilinear] {
            let c = run_case(&args, projection, filter);
            println!(
                "  {:<4} {:<9} parity {}  seq {:.2} ms, par {:.2} ms ({:.2}x), map {:.2} ms ({:.2}x)",
                c.projection.to_string(),
                c.filter.to_string(),
                if c.parity_ok { "ok" } else { "FAIL" },
                c.seq_ms,
                c.par_ms,
                c.seq_ms / c.par_ms,
                c.map_ms,
                c.seq_ms / c.map_ms,
            );
            cases.push(c);
        }
    }
    let engine = run_engine(&args);
    println!(
        "  engine render_frame: cold {:.2} ms, warm {:.2} ms ({:.2}x), LUT {} hits / {} misses",
        engine.cold_ms,
        engine.warm_ms,
        engine.cold_ms / engine.warm_ms,
        engine.lut_hits,
        engine.lut_misses
    );

    if let Some(path) = &args.json {
        let json = bench_json(&args, &cases, &engine);
        std::fs::write(path, &json).expect("write pt bench JSON");
        println!("json: {path}");
    }

    if !cases.iter().all(|c| c.parity_ok) {
        eprintln!("parity FAILED: a fast path diverged from the sequential renderer");
        std::process::exit(1);
    }
}
