//! Serving-front benchmark: deterministic request storms against
//! [`SasFront`] across a shard-count sweep, reporting sustained
//! requests/s, shed rate and simulated tail latency per shard count —
//! the overload story for ROADMAP item 2 ("serves heavy traffic from
//! millions of users").
//!
//! The storm is a pure function of the seed and the arguments: arrival
//! times come from a fixed offered load (`factor=` times the aggregate
//! capacity of the reference 4-shard profile), request order from a
//! seeded linear-congruential shuffle. A fresh front per run plus the
//! serial-admission/parallel-execution split in `serve_batch` makes the
//! batch report byte-identical across worker counts; the bench checks
//! exactly that (1 vs 2 vs 8 workers) and exits non-zero on divergence,
//! which is what the CI smoke step relies on:
//!
//! ```text
//! cargo run --release -p evr-bench --bin serve_bench -- --smoke json=BENCH_serve.json
//! cargo run --release -p evr-bench --bin serve_bench -- requests=16384 factor=6
//! ```
//!
//! Wall-clock timings vary across machines, so the JSON is not
//! golden-diffed; `bench_gate` compares `parity_ok` and the
//! noise-tolerant `scaling.requests_per_s` field against
//! `benches/baselines/serve.json`.

use std::time::Instant;

use evr_bench::header;
use evr_faults::FrontProfile;
use evr_obs::{Observer, Timeline, DEFAULT_TIMELINE_CAPACITY};
use evr_sas::{
    ingest_video, BatchReport, FovPrerenderStore, FrontRequest, SasConfig, SasFront, SasServer,
};
use evr_video::library::{scene_for, VideoId};

struct ServeArgs {
    requests: usize,
    factor: f64,
    seed: u64,
    workers: usize,
    json: Option<String>,
    trace: Option<String>,
}

impl Default for ServeArgs {
    fn default() -> Self {
        ServeArgs {
            requests: 65536,
            factor: 4.0,
            seed: 7,
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            json: None,
            trace: None,
        }
    }
}

fn parse_args(args: impl Iterator<Item = String>) -> ServeArgs {
    let mut out = ServeArgs::default();
    for arg in args {
        if arg == "--smoke" || arg == "smoke" || arg == "quick" {
            // The default 64k-request storm already finishes in tens of
            // milliseconds per shard count; smoke runs it unreduced so
            // the gated wall-clock number sits well above timer noise.
        } else if let Some(v) = arg.strip_prefix("requests=") {
            out.requests = v.parse().expect("requests=N takes an integer");
        } else if let Some(v) = arg.strip_prefix("factor=") {
            out.factor = v.parse().expect("factor=X takes a float");
        } else if let Some(v) = arg.strip_prefix("seed=") {
            out.seed = v.parse().expect("seed=N takes an integer");
        } else if let Some(v) = arg.strip_prefix("workers=") {
            out.workers = v.parse().expect("workers=N takes an integer");
        } else if let Some(v) = arg.strip_prefix("json=") {
            out.json = Some(v.to_string());
        } else if let Some(v) = arg.strip_prefix("trace=") {
            out.trace = Some(v.to_string());
        } else {
            panic!(
                "unknown argument {arg:?}; expected `--smoke`, `requests=N`, `factor=X`, \
                 `seed=N`, `workers=N`, `json=PATH` or `trace=PATH`"
            );
        }
    }
    out
}

/// Shard counts swept, smallest to widest. The reference profile (the
/// one the offered load is computed against) is the 4-shard default.
const SHARD_SWEEP: [u32; 4] = [1, 2, 4, 8];
const REFERENCE_SHARDS: u32 = 4;

/// A seeded storm at a fixed offered load: `factor` times the aggregate
/// capacity of the reference profile, spread over every live
/// `(segment, cluster)` key with a deterministic LCG shuffle so shards
/// see interleaved (not batched) traffic.
fn storm(server: &SasServer, args: &ServeArgs) -> Vec<FrontRequest> {
    let catalog = server.catalog();
    let keys: Vec<(u32, usize)> = (0..catalog.segment_count())
        .flat_map(|s| {
            catalog.clusters_in_segment(s).iter().map(move |&c| (s, c)).collect::<Vec<_>>()
        })
        .collect();
    assert!(!keys.is_empty(), "catalog has no FOV streams");
    let reference = FrontProfile { shards: REFERENCE_SHARDS, ..FrontProfile::default() };
    let offered_rps = reference.shard_capacity_rps() * f64::from(REFERENCE_SHARDS) * args.factor;
    let dt = 1.0 / offered_rps;
    let mut lcg = args.seed | 1;
    (0..args.requests)
        .map(|i| {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let (segment, cluster) = keys[(lcg >> 33) as usize % keys.len()];
            FrontRequest { user: i as u64, segment, cluster, arrival_s: i as f64 * dt }
        })
        .collect()
}

/// A fresh front over a clone of the ingested catalog with an empty
/// pre-render store — admission state is stateful by design, so every
/// measured run starts cold.
fn fresh_front(catalog: &evr_sas::SasCatalog, shards: u32, seed: u64) -> SasFront {
    let server = SasServer::with_store(catalog.clone(), FovPrerenderStore::new());
    SasFront::new(server, FrontProfile { shards, ..FrontProfile::default() }, seed)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

struct ShardResult {
    shards: u32,
    wall_s: f64,
    requests_per_s: f64,
    shed_rate: f64,
    p50_s: f64,
    p99_s: f64,
    peak_queue_depth: u32,
    served: u64,
    coalesced: u64,
}

/// Timed repetitions per shard count; best-of-N damps scheduler noise
/// in the gated wall-clock number. The batch report itself is
/// deterministic, so only the timing varies between reps.
const TIMING_REPS: usize = 5;

fn run_shard_case(
    catalog: &evr_sas::SasCatalog,
    args: &ServeArgs,
    requests: &[FrontRequest],
    shards: u32,
) -> ShardResult {
    let mut wall_s = f64::INFINITY;
    let mut report = None;
    for _ in 0..TIMING_REPS {
        let front = fresh_front(catalog, shards, args.seed);
        let start = Instant::now();
        let rep = front.serve_batch(requests, args.workers);
        wall_s = wall_s.min(start.elapsed().as_secs_f64());
        report = Some(rep);
    }
    let report = report.expect("TIMING_REPS > 0");
    let lat = report.answered_latencies_s();
    ShardResult {
        shards,
        wall_s,
        requests_per_s: requests.len() as f64 / wall_s,
        shed_rate: report.shed_rate(),
        p50_s: percentile(&lat, 0.50),
        p99_s: percentile(&lat, 0.99),
        peak_queue_depth: report.peak_queue_depth,
        served: report.served,
        coalesced: report.coalesced,
    }
}

/// The worker-parity check at the reference shard count: the batch
/// report must be byte-identical for 1, 2 and 8 workers (fresh front
/// per run — determinism is across worker counts, not across runs of a
/// stateful front).
fn parity_check(
    catalog: &evr_sas::SasCatalog,
    args: &ServeArgs,
    requests: &[FrontRequest],
) -> bool {
    let reports: Vec<BatchReport> = [1usize, 2, 8]
        .iter()
        .map(|&w| fresh_front(catalog, REFERENCE_SHARDS, args.seed).serve_batch(requests, w))
        .collect();
    reports[0] == reports[1] && reports[0] == reports[2]
}

/// Stable JSON: fixed key order, floats `{:.6}`, one shard count per
/// line, plus the `scaling` section `bench_gate` addresses.
fn bench_json(args: &ServeArgs, parity_ok: bool, results: &[ShardResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"requests\": {}, \"factor\": {:.6}, \"seed\": {}, \"workers\": {},\n",
        args.requests, args.factor, args.seed, args.workers
    ));
    out.push_str(&format!("  \"parity_ok\": {parity_ok},\n  \"shards\": [\n"));
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"shards\": {}, \"wall_s\": {:.6}, \"requests_per_s\": {:.6}, \
             \"shed_rate\": {:.6}, \"p50_latency_s\": {:.6}, \"p99_latency_s\": {:.6}, \
             \"peak_queue_depth\": {}, \"served\": {}, \"coalesced\": {}}}{}\n",
            r.shards,
            r.wall_s,
            r.requests_per_s,
            r.shed_rate,
            r.p50_s,
            r.p99_s,
            r.peak_queue_depth,
            r.served,
            r.coalesced,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    // The gated throughput is the best rung of the sweep — effectively
    // best-of-20 timings, far more stable on shared runners than any
    // single rung's wall clock. Shed rate and p99 come from the widest
    // rung (deterministic model outputs, informational).
    let peak = results.iter().map(|r| r.requests_per_s).fold(f64::NAN, f64::max);
    let widest = results.last().expect("sweep is non-empty");
    out.push_str(&format!(
        "  \"scaling\": {{\"requests_per_s\": {:.6}, \"shed_rate\": {:.6}, \
         \"p99_latency_s\": {:.6}}}\n",
        peak, widest.shed_rate, widest.p99_s
    ));
    out.push_str("}\n");
    out
}

fn main() {
    let args = parse_args(std::env::args().skip(1));
    header("serve_bench", "request storms against the sharded SAS serving front");
    println!(
        "{} requests at {:.1}x reference capacity, seed {}, {} workers",
        args.requests, args.factor, args.seed, args.workers
    );

    let catalog = ingest_video(&scene_for(VideoId::Rhino), &SasConfig::tiny_for_tests(), 1.0);
    let server = SasServer::new(catalog.clone());
    let requests = storm(&server, &args);

    let parity_ok = parity_check(&catalog, &args, &requests);
    println!("  parity (1/2/8 workers): {}", if parity_ok { "ok" } else { "FAIL" });

    let results: Vec<ShardResult> = SHARD_SWEEP
        .iter()
        .map(|&shards| {
            let r = run_shard_case(&catalog, &args, &requests, shards);
            println!(
                "  {:>2} shards: {:>10.0} req/s, shed {:>5.1}%, p50 {:.4}s, p99 {:.4}s, \
                 peak depth {}, coalesced {}",
                r.shards,
                r.requests_per_s,
                100.0 * r.shed_rate,
                r.p50_s,
                r.p99_s,
                r.peak_queue_depth,
                r.coalesced,
            );
            r
        })
        .collect();

    if let Some(path) = &args.json {
        let json = bench_json(&args, parity_ok, &results);
        std::fs::write(path, &json).expect("write serve bench JSON");
        println!("json: {path}");
    }

    // One observed run at the reference shard count becomes the Chrome
    // trace artifact (chrome://tracing / Perfetto).
    let trace_path = args.trace.clone().or_else(|| {
        args.json.as_ref().map(|p| {
            p.strip_suffix(".json").map_or_else(
                || format!("{p}.trace_events.json"),
                |stem| format!("{stem}.trace_events.json"),
            )
        })
    });
    if let Some(path) = &trace_path {
        let timeline = Timeline::bounded(DEFAULT_TIMELINE_CAPACITY);
        let obs = Observer::enabled().with_timeline(timeline.clone());
        let mut front = fresh_front(&catalog, REFERENCE_SHARDS, args.seed);
        front.set_observer(&obs);
        let _ = front.serve_batch(&requests, args.workers);
        front.mirror_gauges(&obs);
        timeline.write_chrome_trace(path).expect("write serve trace");
        println!("trace: {path}");
    }

    if !parity_ok {
        eprintln!("parity FAILED: batch reports diverged across worker counts");
        std::process::exit(1);
    }
}
