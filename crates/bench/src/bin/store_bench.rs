//! Delta-resident FOV pre-render store benchmark: residency and wire
//! savings of DESIGN.md §16, with the same run-time parity discipline
//! as `ingest_bench`.
//!
//! Ingests the bench catalog once, then populates the full FOV rung
//! ladder ([`fov_rung_quantizers`]) into two stores — every rung an
//! independent full encoding vs lower rungs delta-resident against the
//! top rung ([`populate_fov_ladder`]) — and checks that every entry of
//! the delta store reconstructs bit-identically to the full store's,
//! for any worker count. On the wire side it replays a per-user
//! coarse-then-upgrade refinement session ([`run_refinement_session`])
//! once over the full wire and once over the delta wire
//! ([`DeltaWire`]), pinning that the played-out content digests match
//! while the delta arm moves fewer upgrade bytes and visibly charges
//! the on-device reconstruction to the energy ledger.
//!
//! Emits `BENCH_store.json`; `bench_gate` pins `resident_reduction`
//! and `wire_reduction` against `benches/baselines/store.json`. Both
//! reductions are deterministic (byte accounting, not timings), so the
//! gate holds them tightly. Exits non-zero if any parity check fails:
//!
//! ```text
//! cargo run --release -p evr-bench --bin store_bench -- --smoke json=BENCH_store.json
//! cargo run --release -p evr-bench --bin store_bench -- duration=60 workers=8
//! ```

use std::time::Instant;

use evr_bench::header;
use evr_client::pipeline::{CleanTransport, DeltaWire};
use evr_client::refine::run_refinement_session;
use evr_energy::{Activity, DeviceParams};
use evr_sas::{
    fov_rung_quantizers, ingest_video_with, populate_fov_ladder, FovPrerenderStore, IngestOptions,
    PrerenderKey, SasCatalog, SasConfig, SasServer,
};
use evr_video::library::{scene_for, VideoId};

/// Smoke-mode content length, seconds — matches `ingest_bench`.
const SMOKE_DURATION_S: f64 = 20.0;

/// The acceptance floor: the delta ladder must shed at least this
/// fraction of the full ladder's residency on the bench catalog.
const RESIDENT_REDUCTION_FLOOR: f64 = 0.30;

struct StoreArgs {
    duration_s: f64,
    workers: usize,
    json: Option<String>,
}

impl Default for StoreArgs {
    fn default() -> Self {
        StoreArgs { duration_s: evr_video::library::SCENE_DURATION, workers: 8, json: None }
    }
}

fn parse_args(args: impl Iterator<Item = String>) -> StoreArgs {
    let mut out = StoreArgs::default();
    for arg in args {
        if arg == "--smoke" || arg == "smoke" || arg == "quick" {
            out.duration_s = SMOKE_DURATION_S;
        } else if let Some(v) = arg.strip_prefix("duration=") {
            out.duration_s = v.parse().expect("duration=S takes seconds");
        } else if let Some(v) = arg.strip_prefix("workers=") {
            out.workers = v.parse().expect("workers=N takes an integer");
        } else if let Some(v) = arg.strip_prefix("json=") {
            out.json = Some(v.to_string());
        } else {
            panic!("unknown argument {arg:?}; expected `--smoke`, `duration=S`, `workers=N` or `json=PATH`");
        }
    }
    out
}

struct ResidencyResult {
    rungs: usize,
    entries: usize,
    delta_entries: usize,
    full_resident_bytes: u64,
    delta_resident_bytes: u64,
    resident_reduction: f64,
    populate_full_s: f64,
    populate_delta_s: f64,
    parity_ok: bool,
}

struct WireResult {
    segments: u32,
    full_wire_bytes: u64,
    delta_wire_bytes: u64,
    wire_reduction: f64,
    /// The coarse-rung leg, identical on both wires.
    coarse_wire_bytes: u64,
    full_upgrade_wire_bytes: u64,
    delta_upgrade_wire_bytes: u64,
    /// Reduction of the upgrade leg alone — the part the delta wire
    /// actually compresses.
    upgrade_reduction: f64,
    delta_upgrades: u32,
    residual_coeffs: u64,
    delta_reconstruct_j: f64,
    parity_ok: bool,
}

/// Every `(segment, cluster, rung)` the ladder populates.
fn ladder_keys(catalog: &SasCatalog, rungs: &[u8]) -> Vec<PrerenderKey> {
    let content = catalog.content_id();
    (0..catalog.segment_count())
        .flat_map(|s| {
            catalog.clusters_in_segment(s).into_iter().flat_map(move |c| {
                rungs
                    .iter()
                    .map(move |&q| PrerenderKey { content, segment: s, cluster: c, rung: q })
                    .collect::<Vec<_>>()
            })
        })
        .collect()
}

/// Full vs delta ladder residency, bit-exact reconstruction parity, and
/// worker independence of the delta population.
fn run_residency(catalog: &SasCatalog, rungs: &[u8], workers: usize) -> ResidencyResult {
    let full = FovPrerenderStore::new();
    let start = Instant::now();
    populate_fov_ladder(catalog, &full, rungs, workers, false);
    let populate_full_s = start.elapsed().as_secs_f64();

    let delta = FovPrerenderStore::new();
    let start = Instant::now();
    populate_fov_ladder(catalog, &delta, rungs, workers, true);
    let populate_delta_s = start.elapsed().as_secs_f64();

    let serial = FovPrerenderStore::new();
    populate_fov_ladder(catalog, &serial, rungs, 1, true);

    let keys = ladder_keys(catalog, rungs);
    let mut parity_ok = !keys.is_empty()
        && serial.resident_bytes() == delta.resident_bytes()
        && serial.delta_entries() == delta.delta_entries();
    for key in &keys {
        let (a, b, c) = (full.get(key), delta.get(key), serial.get(key));
        parity_ok &= match (a, b, c) {
            (Some(a), Some(b), Some(c)) => a.data == b.data && a.meta == b.meta && b.data == c.data,
            _ => false,
        };
    }

    let full_resident_bytes = full.resident_bytes();
    let delta_resident_bytes = delta.resident_bytes();
    ResidencyResult {
        rungs: rungs.len(),
        entries: delta.len(),
        delta_entries: delta.delta_entries(),
        full_resident_bytes,
        delta_resident_bytes,
        resident_reduction: 1.0 - delta_resident_bytes as f64 / full_resident_bytes as f64,
        populate_full_s,
        populate_delta_s,
        parity_ok,
    }
}

/// Per-user wire accounting: one refinement session over the full wire,
/// one over the delta wire, against the same delta-resident server.
fn run_wire(server: &SasServer, coarse_quantizer: u8) -> WireResult {
    let catalog = server.catalog();
    let picks: Vec<(u32, usize)> = (0..catalog.segment_count())
        .filter_map(|s| catalog.clusters_in_segment(s).first().map(|&c| (s, c)))
        .collect();
    let device = DeviceParams::default();
    let full = run_refinement_session(&CleanTransport, server, &picks, coarse_quantizer, &device)
        .expect("full-wire refinement session");
    let delta = run_refinement_session(
        &DeltaWire(CleanTransport),
        server,
        &picks,
        coarse_quantizer,
        &device,
    )
    .expect("delta-wire refinement session");

    let delta_reconstruct_j = delta.ledger.activity_total(Activity::DeltaReconstruct);
    let parity_ok = full.content_digest == delta.content_digest
        && full.segments == delta.segments
        && full.coarse_wire_bytes == delta.coarse_wire_bytes
        && delta_reconstruct_j > 0.0
        && full.ledger.activity_total(Activity::DeltaReconstruct) == 0.0;
    WireResult {
        segments: delta.segments,
        full_wire_bytes: full.wire_bytes,
        delta_wire_bytes: delta.wire_bytes,
        wire_reduction: 1.0 - delta.wire_bytes as f64 / full.wire_bytes as f64,
        coarse_wire_bytes: delta.coarse_wire_bytes,
        full_upgrade_wire_bytes: full.upgrade_wire_bytes,
        delta_upgrade_wire_bytes: delta.upgrade_wire_bytes,
        upgrade_reduction: 1.0 - delta.upgrade_wire_bytes as f64 / full.upgrade_wire_bytes as f64,
        delta_upgrades: delta.delta_upgrades,
        residual_coeffs: delta.residual_coeffs,
        delta_reconstruct_j,
        parity_ok,
    }
}

/// Stable JSON: fixed key order, floats `{:.6}` (energy `{:.9}` — the
/// per-session reconstruction charge is millijoule-scale).
fn bench_json(args: &StoreArgs, store: &ResidencyResult, wire: &WireResult) -> String {
    let meets_floor = store.resident_reduction >= RESIDENT_REDUCTION_FLOOR;
    format!(
        "{{\n  \"duration_s\": {:.6}, \"workers\": {}, \"parity_ok\": {},\n  \
         \"store\": {{\"parity_ok\": {}, \"rungs\": {}, \"entries\": {}, \"delta_entries\": {}, \
         \"full_resident_bytes\": {}, \"delta_resident_bytes\": {}, \
         \"resident_reduction\": {:.6}, \"meets_reduction_floor\": {}, \
         \"populate_full_s\": {:.6}, \"populate_delta_s\": {:.6}}},\n  \
         \"wire\": {{\"parity_ok\": {}, \"segments\": {}, \"full_wire_bytes\": {}, \
         \"delta_wire_bytes\": {}, \"wire_reduction\": {:.6}, \"coarse_wire_bytes\": {}, \
         \"full_upgrade_wire_bytes\": {}, \"delta_upgrade_wire_bytes\": {}, \
         \"upgrade_reduction\": {:.6}, \"delta_upgrades\": {}, \
         \"residual_coeffs\": {}, \"delta_reconstruct_j\": {:.9}}}\n}}\n",
        args.duration_s,
        args.workers,
        store.parity_ok && wire.parity_ok,
        store.parity_ok,
        store.rungs,
        store.entries,
        store.delta_entries,
        store.full_resident_bytes,
        store.delta_resident_bytes,
        store.resident_reduction,
        meets_floor,
        store.populate_full_s,
        store.populate_delta_s,
        wire.parity_ok,
        wire.segments,
        wire.full_wire_bytes,
        wire.delta_wire_bytes,
        wire.wire_reduction,
        wire.coarse_wire_bytes,
        wire.full_upgrade_wire_bytes,
        wire.delta_upgrade_wire_bytes,
        wire.upgrade_reduction,
        wire.delta_upgrades,
        wire.residual_coeffs,
        wire.delta_reconstruct_j,
    )
}

fn main() {
    let args = parse_args(std::env::args().skip(1));
    header("store_bench", "delta-resident FOV ladder: store residency and upgrade wire bytes");
    println!("{:.1}s of content, {} workers", args.duration_s, args.workers);

    let scene = scene_for(VideoId::Rhino);
    let cfg = SasConfig::tiny_for_tests();
    let options = IngestOptions { workers: args.workers, ..IngestOptions::default() };
    let catalog = ingest_video_with(&scene, &cfg, args.duration_s, &options)
        .expect("bench ingest must succeed");
    let rungs = fov_rung_quantizers(catalog.config());

    let store = run_residency(&catalog, &rungs, args.workers);
    println!(
        "  store: {} rungs x {} streams = {} entries ({} delta-resident), \
         full {} B vs delta {} B (-{:.1}%), parity {}",
        store.rungs,
        store.entries / store.rungs,
        store.entries,
        store.delta_entries,
        store.full_resident_bytes,
        store.delta_resident_bytes,
        store.resident_reduction * 100.0,
        if store.parity_ok { "ok" } else { "FAIL" }
    );

    // The wire side serves out of the delta-resident ladder.
    let ladder_store = FovPrerenderStore::new();
    populate_fov_ladder(&catalog, &ladder_store, &rungs, args.workers, true);
    let server = SasServer::with_store(catalog, ladder_store);
    let wire = run_wire(&server, rungs[0]);
    println!(
        "  wire: {} segments/user, full {} B vs delta {} B (-{:.1}%; upgrade leg \
         {} B vs {} B, -{:.1}%), {} delta upgrades, {} residual coeffs, \
         {:.3e} J reconstruct, parity {}",
        wire.segments,
        wire.full_wire_bytes,
        wire.delta_wire_bytes,
        wire.wire_reduction * 100.0,
        wire.full_upgrade_wire_bytes,
        wire.delta_upgrade_wire_bytes,
        wire.upgrade_reduction * 100.0,
        wire.delta_upgrades,
        wire.residual_coeffs,
        wire.delta_reconstruct_j,
        if wire.parity_ok { "ok" } else { "FAIL" }
    );
    if store.resident_reduction < RESIDENT_REDUCTION_FLOOR {
        println!(
            "  WARNING: resident reduction {:.3} below the {:.2} floor",
            store.resident_reduction, RESIDENT_REDUCTION_FLOOR
        );
    }

    if let Some(path) = &args.json {
        std::fs::write(path, bench_json(&args, &store, &wire)).expect("write store bench JSON");
        println!("json: {path}");
    }

    if !(store.parity_ok && wire.parity_ok) {
        eprintln!("parity FAILED: delta-resident store or delta wire diverged from full encodings");
        std::process::exit(1);
    }
}
