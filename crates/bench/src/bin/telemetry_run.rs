//! Instrumented experiment run: replays Baseline and S+H online
//! streaming with a live [`evr_obs::Observer`] (timeline attached)
//! threaded through the whole pipeline, prints the metric summary for
//! each variant and writes the per-run report artifacts
//! (`*.report.json`, `*.summary.txt`, `*.trace.jsonl`, plus the
//! Chrome-loadable `*.trace_events.json` worker timeline and the
//! slowest-intervals exemplar table inside the summary).
//!
//! ```text
//! cargo run --release -p evr-bench --bin telemetry_run -- quick
//! EVR_TELEMETRY_OUT=/tmp/telemetry cargo run -p evr-bench --bin telemetry_run -- users=4
//! ```

use evr_bench::{header, scale_from_args};
use evr_core::experiment::{run_variant, write_run_report, ExperimentConfig};
use evr_core::{EvrSystem, UseCase, Variant};
use evr_video::library::VideoId;

fn main() {
    let scale = scale_from_args(std::env::args().skip(1));
    let out_dir =
        std::env::var("EVR_TELEMETRY_OUT").unwrap_or_else(|_| "target/telemetry".to_string());
    header("telemetry", "instrumented Baseline vs S+H online-streaming run");

    let video = VideoId::Rhino;
    let cfg = ExperimentConfig { users: scale.users, threads: scale.threads };
    for variant in [Variant::Baseline, Variant::SPlusH] {
        // A fresh observer per variant keeps each artifact self-contained.
        let timeline = evr_obs::Timeline::bounded(evr_obs::DEFAULT_TIMELINE_CAPACITY);
        let obs = evr_obs::Observer::enabled().with_timeline(timeline);
        let mut system = EvrSystem::build(video, scale.sas, scale.duration_s);
        system.instrument(&obs);
        let agg = run_variant(&system, UseCase::OnlineStreaming, variant, &cfg);

        println!();
        println!(
            "--- {variant} | {video:?}, {} users x {:.0} s | mean device energy {:.2} J ---",
            agg.users,
            scale.duration_s,
            agg.ledger.total()
        );
        print!("{}", obs.summary());

        let label = format!("{video:?}-{variant}");
        let (report, summary) =
            write_run_report(&obs, &label, &out_dir).expect("write report artifacts");
        let trace = report.with_extension("").with_extension("trace.jsonl");
        obs.write_jsonl(&trace).expect("write trace");
        println!("artifacts: {}", report.display());
        println!("           {}", summary.display());
        println!("           {}", trace.display());
    }
}
