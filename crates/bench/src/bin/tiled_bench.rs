//! Tiled-delivery benchmark for the `T`/`T+H` variants: the per-tile
//! multi-rate ingest across a worker sweep (parity-checked against the
//! serial catalog), the spherical rate allocator's per-segment cost,
//! and end-to-end fleet parity of both tiled variants across 1/2/8
//! playback workers.
//!
//! Everything except the wall clocks is deterministic: the catalog is a
//! pure function of `(scene, config)`, the allocator of its inputs, and
//! the fleet runs of `(system, variant, users)` — so the parity flags
//! reproduce bit-for-bit anywhere. The gated throughput numbers
//! (tile-rung encodes/s, allocations/s) are best-of-N wall clocks like
//! `serve_bench`'s:
//!
//! ```text
//! cargo run --release -p evr-bench --bin tiled_bench -- --smoke json=BENCH_tiled.json
//! cargo run --release -p evr-bench --bin tiled_bench -- duration=20 workers=8
//! ```
//!
//! `bench_gate` compares `parity_ok`, `scaling.tile_rungs_per_s` and
//! `scaling.allocations_per_s` against `benches/baselines/tiled.json`.

use std::time::Instant;

use evr_bench::header;
use evr_client::allocate_tile_rungs;
use evr_core::{run_variant, EvrSystem, ExperimentConfig, UseCase, Variant};
use evr_math::EulerAngles;
use evr_sas::{ingest_tiled_rates_with, SasConfig, PERIPHERY_MARGIN};
use evr_video::library::{scene_for, VideoId};

/// Smoke-mode content length, seconds: enough segments that every
/// ingest worker pulls several chunks.
const SMOKE_DURATION_S: f64 = 10.0;

/// Timed repetitions; best-of-N damps scheduler noise in the gated
/// numbers, exactly like `serve_bench`.
const TIMING_REPS: usize = 3;

struct TiledArgs {
    duration_s: f64,
    max_workers: usize,
    json: Option<String>,
}

impl Default for TiledArgs {
    fn default() -> Self {
        TiledArgs { duration_s: evr_video::library::SCENE_DURATION, max_workers: 8, json: None }
    }
}

fn parse_args(args: impl Iterator<Item = String>) -> TiledArgs {
    let mut out = TiledArgs::default();
    for arg in args {
        if arg == "--smoke" || arg == "smoke" || arg == "quick" {
            out.duration_s = SMOKE_DURATION_S;
        } else if let Some(v) = arg.strip_prefix("duration=") {
            out.duration_s = v.parse().expect("duration=S takes seconds");
        } else if let Some(v) = arg.strip_prefix("workers=") {
            out.max_workers = v.parse().expect("workers=N takes an integer");
        } else if let Some(v) = arg.strip_prefix("json=") {
            out.json = Some(v.to_string());
        } else {
            panic!(
                "unknown argument {arg:?}; expected `--smoke`, `duration=S`, `workers=N` \
                 or `json=PATH`"
            );
        }
    }
    out
}

struct IngestResult {
    workers: usize,
    wall_s: f64,
    parity_ok: bool,
}

fn worker_counts(max: usize) -> Vec<usize> {
    let mut counts = vec![1];
    let mut w = 2;
    while w < max {
        counts.push(w);
        w *= 2;
    }
    if max > 1 {
        counts.push(max);
    }
    counts
}

/// Allocator cost over every `(segment, pose)` of the catalog; returns
/// (best wall seconds, allocations timed per rep).
fn time_allocator(tiles: &evr_sas::TiledRateCatalog, cfg: &SasConfig) -> (f64, u64) {
    let grid = tiles.grid();
    let weights = grid.tile_weights();
    let poses = [
        EulerAngles::from_degrees(0.0, 0.0, 0.0),
        EulerAngles::from_degrees(120.0, -30.0, 0.0),
        EulerAngles::from_degrees(-90.0, 60.0, 0.0),
    ];
    // Budget between coarse-sum and top-sum so the greedy loop does real
    // work (an unconstrained budget short-circuits at every tile's cap).
    let matrices: Vec<_> = (0..tiles.segment_count()).map(|s| tiles.tile_rung_bytes(s)).collect();
    // Enough rounds over the full (segment, pose) grid that the timed
    // region is tens of milliseconds — a single pass is ~0.1 ms, far too
    // short to gate against a 15% noise tolerance.
    const ALLOC_ROUNDS: u64 = 500;
    let mut best = f64::INFINITY;
    let mut count = 0u64;
    for _ in 0..TIMING_REPS {
        count = 0;
        let start = Instant::now();
        for _ in 0..ALLOC_ROUNDS {
            for matrix in &matrices {
                let base: u64 = matrix.iter().map(|t| t[0]).sum();
                let top: u64 = matrix.iter().map(|t| *t.last().unwrap()).sum();
                for pose in poses {
                    let classes = grid.classify_tiles(pose, cfg.device_fov, PERIPHERY_MARGIN);
                    let alloc =
                        allocate_tile_rungs(matrix, &weights, &classes, base + (top - base) / 2);
                    assert!(alloc.total_bytes > 0, "allocator returned an empty plan");
                    count += 1;
                }
            }
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, count)
}

/// Fleet parity: both tiled variants must aggregate byte-identically
/// across 1, 2 and 8 playback workers.
fn fleet_parity(system: &EvrSystem) -> bool {
    Variant::TILED.iter().all(|&variant| {
        let runs: Vec<_> = [1usize, 2, 8]
            .iter()
            .map(|&threads| {
                let cfg = ExperimentConfig { users: 3, threads };
                run_variant(system, UseCase::OnlineStreaming, variant, &cfg)
            })
            .collect();
        runs[0] == runs[1] && runs[0] == runs[2]
    })
}

/// Stable JSON: fixed key order, floats `{:.6}`, one sweep point per
/// line, plus the `scaling` section `bench_gate` addresses.
fn bench_json(
    args: &TiledArgs,
    sweep: &[IngestResult],
    fleet_ok: bool,
    tile_rungs: u64,
    tile_rungs_per_s: f64,
    alloc_wall_s: f64,
    allocations: u64,
) -> String {
    let parity_ok = fleet_ok && sweep.iter().all(|r| r.parity_ok);
    let serial_s = sweep.first().map_or(f64::NAN, |r| r.wall_s);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"duration_s\": {:.6}, \"max_workers\": {}, \"parity_ok\": {parity_ok},\n",
        args.duration_s, args.max_workers
    ));
    out.push_str("  \"ingest\": [\n");
    for (i, r) in sweep.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workers\": {}, \"parity_ok\": {}, \"wall_s\": {:.6}, \"speedup\": {:.6}}}{}\n",
            r.workers,
            r.parity_ok,
            r.wall_s,
            serial_s / r.wall_s,
            if i + 1 < sweep.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"fleet\": {{\"parity_ok\": {fleet_ok}, \"threads\": [1, 2, 8]}},\n"));
    out.push_str(&format!(
        "  \"scaling\": {{\"tile_rungs\": {tile_rungs}, \"tile_rungs_per_s\": {tile_rungs_per_s:.6}, \
         \"allocations\": {allocations}, \"allocations_per_s\": {:.6}, \
         \"allocation_us\": {:.6}}}\n",
        allocations as f64 / alloc_wall_s,
        1e6 * alloc_wall_s / allocations as f64
    ));
    out.push_str("}\n");
    out
}

fn main() {
    let args = parse_args(std::env::args().skip(1));
    header("tiled_bench", "per-tile multi-rate ingest, rate allocator and tiled fleet parity");
    println!("{:.1}s of content, up to {} ingest workers", args.duration_s, args.max_workers);

    let scene = scene_for(VideoId::Rhino);
    let cfg = SasConfig::tiny_for_tests();

    // Ingest worker sweep: every count must reproduce the serial catalog
    // byte for byte. The gated throughput is tile-rung encodes per
    // second from the best wall clock of the sweep (best-of-N per
    // count), like serve_bench's gated requests/s.
    let mut sweep: Vec<IngestResult> = Vec::new();
    let mut reference = None;
    for workers in worker_counts(args.max_workers) {
        let mut wall_s = f64::INFINITY;
        let mut catalog = None;
        for _ in 0..TIMING_REPS {
            let start = Instant::now();
            let cat = ingest_tiled_rates_with(&scene, &cfg, args.duration_s, workers);
            wall_s = wall_s.min(start.elapsed().as_secs_f64());
            catalog = Some(cat);
        }
        let catalog = catalog.expect("TIMING_REPS > 0");
        let parity_ok = match &reference {
            None => {
                reference = Some(catalog);
                true
            }
            Some(reference) => *reference == catalog,
        };
        println!(
            "  {workers:>2} workers: {wall_s:.2}s ({:.2}x), parity {}",
            sweep.first().map_or(1.0, |r: &IngestResult| r.wall_s / wall_s),
            if parity_ok { "ok" } else { "FAIL" }
        );
        sweep.push(IngestResult { workers, wall_s, parity_ok });
    }
    let tiles = reference.expect("sweep ran");
    let tile_rungs =
        u64::from(tiles.segment_count()) * tiles.grid().len() as u64 * tiles.rung_count() as u64;
    let best_ingest_s = sweep.iter().map(|r| r.wall_s).fold(f64::INFINITY, f64::min);
    let tile_rungs_per_s = tile_rungs as f64 / best_ingest_s;
    println!("  {tile_rungs} tile-rung encodes, best {tile_rungs_per_s:.0}/s");

    let (alloc_wall_s, allocations) = time_allocator(&tiles, &cfg);
    println!(
        "  allocator: {allocations} allocations in {alloc_wall_s:.4}s \
         ({:.1} µs per segment plan)",
        1e6 * alloc_wall_s / allocations as f64
    );

    let system = EvrSystem::build(VideoId::Rhino, cfg, args.duration_s.min(2.0));
    let fleet_ok = fleet_parity(&system);
    println!(
        "  fleet parity (T, T+H across 1/2/8 workers): {}",
        if fleet_ok { "ok" } else { "FAIL" }
    );

    if let Some(path) = &args.json {
        let json = bench_json(
            &args,
            &sweep,
            fleet_ok,
            tile_rungs,
            tile_rungs_per_s,
            alloc_wall_s,
            allocations,
        );
        std::fs::write(path, &json).expect("write tiled bench JSON");
        println!("json: {path}");
    }

    if !(fleet_ok && sweep.iter().all(|r| r.parity_ok)) {
        eprintln!("parity FAILED: tiled ingest or fleet runs diverged");
        std::process::exit(1);
    }
}
