//! The CI perf-regression gate: compares a fresh bench report against a
//! committed baseline and lists every violated threshold.
//!
//! Thresholds are noise-tolerant by design — shared CI runners jitter
//! by a few percent run-to-run, so the gate only fails on drops big
//! enough to be a real regression:
//!
//! * **throughput** (`fleet_users_per_s` / `segments_per_s`): fail when
//!   the current run is more than 15% below baseline;
//! * **parallel efficiency**: fail on an absolute drop of more than
//!   0.1 (e.g. 0.80 → 0.69);
//! * **parity**: `parity_ok` must be true in the current run — a parity
//!   break is a correctness bug, never noise.
//!
//! Improvements never fail the gate; refresh the baseline with
//! `bench_gate --update-baseline` (see README §Observability).

use crate::json::Json;

/// Tolerances for one gate run. [`GateThresholds::default`] gives the
/// CI values (15% throughput, 0.1 efficiency).
#[derive(Debug, Clone, Copy)]
pub struct GateThresholds {
    /// Maximum tolerated relative throughput drop (0.15 = 15%).
    pub throughput_drop: f64,
    /// Maximum tolerated absolute efficiency drop.
    pub efficiency_drop: f64,
}

impl Default for GateThresholds {
    fn default() -> Self {
        GateThresholds { throughput_drop: 0.15, efficiency_drop: 0.1 }
    }
}

enum Check {
    /// `current >= baseline * (1 - drop)` at a dotted path.
    MinRatio { path: &'static str, drop: f64 },
    /// `current >= baseline - drop` at a dotted path.
    MaxAbsDrop { path: &'static str, drop: f64 },
    /// The current report must have `true` at a dotted path.
    MustBeTrue { path: &'static str },
}

fn run_checks(label: &str, current: &Json, baseline: &Json, checks: &[Check]) -> Vec<String> {
    let mut violations = Vec::new();
    let num = |doc: &Json, path: &str| doc.path(path).and_then(Json::as_f64);
    for check in checks {
        match check {
            Check::MinRatio { path, drop } => {
                let (Some(cur), Some(base)) = (num(current, path), num(baseline, path)) else {
                    violations.push(format!("{label}: missing numeric field '{path}'"));
                    continue;
                };
                // A non-positive (or non-finite) baseline is a corrupt
                // baseline, never a pass: `base * (1 - drop)` would go
                // <= 0 so any current value clears the floor, and the
                // `cur / base` in the message would print NaN/inf.
                if !(base.is_finite() && base > 0.0) {
                    violations.push(format!(
                        "{label}: baseline {path} is {base} (not a positive finite number) — \
                         refresh it with --update-baseline"
                    ));
                    continue;
                }
                let floor = base * (1.0 - drop);
                if cur < floor {
                    violations.push(format!(
                        "{label}: {path} regressed {:.1}% ({cur:.4} < {floor:.4}; baseline {base:.4}, tolerance {:.0}%)",
                        (1.0 - cur / base) * 100.0,
                        drop * 100.0
                    ));
                }
            }
            Check::MaxAbsDrop { path, drop } => {
                let (Some(cur), Some(base)) = (num(current, path), num(baseline, path)) else {
                    violations.push(format!("{label}: missing numeric field '{path}'"));
                    continue;
                };
                // Same corruption guard: a NaN baseline makes every
                // `cur < floor` comparison false, silently passing.
                if !base.is_finite() {
                    violations.push(format!(
                        "{label}: baseline {path} is {base} (not finite) — \
                         refresh it with --update-baseline"
                    ));
                    continue;
                }
                let floor = base - drop;
                if cur < floor {
                    violations.push(format!(
                        "{label}: {path} dropped {:.3} ({cur:.4} < {floor:.4}; baseline {base:.4}, tolerance {drop:.2})",
                        base - cur
                    ));
                }
            }
            Check::MustBeTrue { path } => {
                if current.path(path).and_then(Json::as_bool) != Some(true) {
                    violations.push(format!("{label}: {path} is not true in the current run"));
                }
            }
        }
    }
    violations
}

/// Gates a `fleet_bench` report. Returns one message per violation;
/// empty means the gate passes.
pub fn check_fleet(current: &Json, baseline: &Json, t: &GateThresholds) -> Vec<String> {
    run_checks(
        "fleet",
        current,
        baseline,
        &[
            Check::MustBeTrue { path: "parity_ok" },
            Check::MinRatio { path: "scaling.fleet_users_per_s", drop: t.throughput_drop },
            Check::MaxAbsDrop { path: "scaling.efficiency", drop: t.efficiency_drop },
        ],
    )
}

/// Gates an `ingest_bench` report. Returns one message per violation;
/// empty means the gate passes.
pub fn check_ingest(current: &Json, baseline: &Json, t: &GateThresholds) -> Vec<String> {
    run_checks(
        "ingest",
        current,
        baseline,
        &[
            Check::MustBeTrue { path: "parity_ok" },
            Check::MinRatio { path: "scaling.segments_per_s", drop: t.throughput_drop },
            Check::MaxAbsDrop { path: "scaling.efficiency", drop: t.efficiency_drop },
        ],
    )
}

/// Gates a `serve_bench` report. Returns one message per violation;
/// empty means the gate passes. Only the worker-parity flag and the
/// widest-sweep throughput are load-bearing — shed rate and simulated
/// latency are deterministic model outputs, pinned by tests rather
/// than the perf gate.
pub fn check_serve(current: &Json, baseline: &Json, t: &GateThresholds) -> Vec<String> {
    run_checks(
        "serve",
        current,
        baseline,
        &[
            Check::MustBeTrue { path: "parity_ok" },
            Check::MinRatio { path: "scaling.requests_per_s", drop: t.throughput_drop },
        ],
    )
}

/// Gates a `tiled_bench` report. Returns one message per violation;
/// empty means the gate passes. `parity_ok` covers both the ingest
/// worker sweep and the tiled fleet runs; the gated throughputs are the
/// tile-rung encode rate and the rate-allocator rate.
pub fn check_tiled(current: &Json, baseline: &Json, t: &GateThresholds) -> Vec<String> {
    run_checks(
        "tiled",
        current,
        baseline,
        &[
            Check::MustBeTrue { path: "parity_ok" },
            Check::MinRatio { path: "scaling.tile_rungs_per_s", drop: t.throughput_drop },
            Check::MinRatio { path: "scaling.allocations_per_s", drop: t.throughput_drop },
        ],
    )
}

/// The tolerated relative drop in the store gate's reduction fractions.
/// Residency and wire bytes are deterministic byte accounting — not
/// timings — so the gate holds them far tighter than the throughputs.
const STORE_REDUCTION_DROP: f64 = 0.02;

/// Gates a `store_bench` report. Returns one message per violation;
/// empty means the gate passes. `parity_ok` covers bit-exact
/// reconstruction of every delta-resident entry, worker independence of
/// the ladder population, and the full-vs-delta wire content digests;
/// the gated fractions are the delta ladder's residency saving and the
/// per-user wire-byte saving (both deterministic, so the tolerance is
/// tight), plus the ISSUE's ≥30% residency-reduction floor.
pub fn check_store(current: &Json, baseline: &Json, _t: &GateThresholds) -> Vec<String> {
    run_checks(
        "store",
        current,
        baseline,
        &[
            Check::MustBeTrue { path: "parity_ok" },
            Check::MustBeTrue { path: "store.meets_reduction_floor" },
            Check::MinRatio { path: "store.resident_reduction", drop: STORE_REDUCTION_DROP },
            Check::MinRatio { path: "wire.wire_reduction", drop: STORE_REDUCTION_DROP },
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet_report(users_per_s: f64, efficiency: f64, parity_ok: bool) -> Json {
        Json::parse(&format!(
            "{{\"parity_ok\":{parity_ok},\"scaling\":{{\"fleet_users_per_s\":{users_per_s:.6},\"efficiency\":{efficiency:.6}}}}}"
        ))
        .unwrap()
    }

    fn ingest_report(segments_per_s: f64, efficiency: f64, parity_ok: bool) -> Json {
        Json::parse(&format!(
            "{{\"parity_ok\":{parity_ok},\"scaling\":{{\"segments_per_s\":{segments_per_s:.6},\"efficiency\":{efficiency:.6}}}}}"
        ))
        .unwrap()
    }

    fn serve_report(requests_per_s: f64, parity_ok: bool) -> Json {
        Json::parse(&format!(
            "{{\"parity_ok\":{parity_ok},\"scaling\":{{\"requests_per_s\":{requests_per_s:.6},\"shed_rate\":0.5}}}}"
        ))
        .unwrap()
    }

    fn tiled_report(tile_rungs_per_s: f64, allocations_per_s: f64, parity_ok: bool) -> Json {
        Json::parse(&format!(
            "{{\"parity_ok\":{parity_ok},\"scaling\":{{\"tile_rungs_per_s\":{tile_rungs_per_s:.6},\"allocations_per_s\":{allocations_per_s:.6}}}}}"
        ))
        .unwrap()
    }

    fn store_report(resident_reduction: f64, wire_reduction: f64, parity_ok: bool) -> Json {
        let meets = resident_reduction >= 0.30;
        Json::parse(&format!(
            "{{\"parity_ok\":{parity_ok},\"store\":{{\"parity_ok\":{parity_ok},\
             \"resident_reduction\":{resident_reduction:.6},\"meets_reduction_floor\":{meets}}},\
             \"wire\":{{\"parity_ok\":{parity_ok},\"wire_reduction\":{wire_reduction:.6}}}}}"
        ))
        .unwrap()
    }

    #[test]
    fn store_gate_pins_parity_floor_and_both_reductions() {
        let baseline = store_report(0.36, 0.09, true);
        assert!(check_store(&baseline, &baseline, &GateThresholds::default()).is_empty());

        let broken = store_report(0.36, 0.09, false);
        let violations = check_store(&broken, &baseline, &GateThresholds::default());
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("parity_ok"), "{violations:?}");

        // Below the 30% residency floor: both the floor flag and the
        // tight reduction ratio trip.
        let bloated = store_report(0.25, 0.09, true);
        let violations = check_store(&bloated, &baseline, &GateThresholds::default());
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations.iter().any(|v| v.contains("meets_reduction_floor")), "{violations:?}");
        assert!(violations.iter().any(|v| v.contains("resident_reduction")), "{violations:?}");

        // A wire-byte regression past the 2% tolerance trips on its own.
        let chatty = store_report(0.36, 0.08, true);
        let violations = check_store(&chatty, &baseline, &GateThresholds::default());
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("wire_reduction"), "{violations:?}");

        // Deterministic numbers barely inside the tolerance still pass.
        let nudged = store_report(0.355, 0.0885, true);
        assert!(check_store(&nudged, &baseline, &GateThresholds::default()).is_empty());
    }

    #[test]
    fn identical_runs_pass() {
        let base = fleet_report(120.0, 0.8, true);
        assert!(check_fleet(&base, &base, &GateThresholds::default()).is_empty());
        let base = ingest_report(40.0, 0.75, true);
        assert!(check_ingest(&base, &base, &GateThresholds::default()).is_empty());
        let base = serve_report(50_000.0, true);
        assert!(check_serve(&base, &base, &GateThresholds::default()).is_empty());
    }

    #[test]
    fn serve_gate_fails_on_parity_break_or_throughput_collapse() {
        let baseline = serve_report(50_000.0, true);
        let broken = serve_report(60_000.0, false);
        let violations = check_serve(&broken, &baseline, &GateThresholds::default());
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("parity_ok"), "{violations:?}");

        let slow = serve_report(40_000.0, true); // -20%: past the 15% tolerance
        let violations = check_serve(&slow, &baseline, &GateThresholds::default());
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("requests_per_s"), "{violations:?}");
    }

    #[test]
    fn tiled_gate_covers_parity_and_both_throughputs() {
        let baseline = tiled_report(4000.0, 200_000.0, true);
        assert!(check_tiled(&baseline, &baseline, &GateThresholds::default()).is_empty());

        let broken = tiled_report(5000.0, 250_000.0, false);
        let violations = check_tiled(&broken, &baseline, &GateThresholds::default());
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("parity_ok"), "{violations:?}");

        let slow_ingest = tiled_report(3000.0, 200_000.0, true); // -25%
        let violations = check_tiled(&slow_ingest, &baseline, &GateThresholds::default());
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("tile_rungs_per_s"), "{violations:?}");

        let slow_alloc = tiled_report(4000.0, 150_000.0, true); // -25%
        let violations = check_tiled(&slow_alloc, &baseline, &GateThresholds::default());
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("allocations_per_s"), "{violations:?}");

        let noisy = tiled_report(3500.0, 175_000.0, true); // -12.5%: inside tolerance
        assert!(check_tiled(&noisy, &baseline, &GateThresholds::default()).is_empty());
    }

    #[test]
    fn doctored_twenty_percent_throughput_drop_fails() {
        // The acceptance scenario: a doctored report 20% below baseline
        // must trip the 15% gate.
        let baseline = fleet_report(100.0, 0.8, true);
        let doctored = fleet_report(80.0, 0.8, true);
        let violations = check_fleet(&doctored, &baseline, &GateThresholds::default());
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("fleet_users_per_s"), "{violations:?}");

        let baseline = ingest_report(50.0, 0.7, true);
        let doctored = ingest_report(40.0, 0.7, true);
        let violations = check_ingest(&doctored, &baseline, &GateThresholds::default());
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("segments_per_s"), "{violations:?}");
    }

    #[test]
    fn noise_inside_tolerance_passes() {
        let baseline = fleet_report(100.0, 0.80, true);
        let noisy = fleet_report(86.0, 0.72, true); // -14% and -0.08: inside both
        assert!(check_fleet(&noisy, &baseline, &GateThresholds::default()).is_empty());
    }

    #[test]
    fn efficiency_collapse_fails_even_with_throughput_intact() {
        let baseline = fleet_report(100.0, 0.85, true);
        let collapsed = fleet_report(99.0, 0.70, true);
        let violations = check_fleet(&collapsed, &baseline, &GateThresholds::default());
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("efficiency"), "{violations:?}");
    }

    #[test]
    fn parity_break_fails_regardless_of_speed() {
        let baseline = ingest_report(50.0, 0.7, true);
        let broken = ingest_report(60.0, 0.9, false);
        let violations = check_ingest(&broken, &baseline, &GateThresholds::default());
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("parity_ok"), "{violations:?}");
    }

    #[test]
    fn missing_fields_are_violations_not_passes() {
        let baseline = fleet_report(100.0, 0.8, true);
        let empty = Json::parse("{}").unwrap();
        let violations = check_fleet(&empty, &baseline, &GateThresholds::default());
        assert_eq!(violations.len(), 3, "{violations:?}");
    }

    #[test]
    fn corrupt_baselines_are_violations_not_passes() {
        // A zeroed/negative baseline used to make the MinRatio floor
        // <= 0, so any current run silently cleared it (with NaN/inf in
        // the would-be message). It must gate as a violation.
        let current = fleet_report(100.0, 0.8, true);
        for bad in [0.0, -5.0] {
            let baseline = fleet_report(bad, 0.8, true);
            let violations = check_fleet(&current, &baseline, &GateThresholds::default());
            assert_eq!(violations.len(), 1, "baseline {bad}: {violations:?}");
            assert!(violations[0].contains("fleet_users_per_s"), "{violations:?}");
            assert!(violations[0].contains("baseline"), "{violations:?}");
        }
        // NaN corrupts both check kinds (every comparison is false).
        let baseline = Json::parse(
            "{\"parity_ok\":true,\"scaling\":{\"fleet_users_per_s\":NaN,\"efficiency\":NaN}}",
        );
        if let Ok(baseline) = baseline {
            let violations = check_fleet(&current, &baseline, &GateThresholds::default());
            assert_eq!(violations.len(), 2, "{violations:?}");
        }
        let baseline = ingest_report(-1.0, 0.7, true);
        let current = ingest_report(50.0, 0.7, true);
        let violations = check_ingest(&current, &baseline, &GateThresholds::default());
        assert_eq!(violations.len(), 1, "{violations:?}");
    }

    #[test]
    fn improvements_never_fail() {
        let baseline = fleet_report(100.0, 0.6, true);
        let faster = fleet_report(250.0, 0.95, true);
        assert!(check_fleet(&faster, &baseline, &GateThresholds::default()).is_empty());
    }
}
