//! A minimal JSON reader for the bench-gate comparisons.
//!
//! The workspace is offline and serde-free by policy (DESIGN.md §1), so
//! the regression gate parses the bench reports it wrote itself with
//! this ~150-line recursive-descent reader. It accepts the full JSON
//! grammar the benches emit (objects, arrays, strings with the common
//! escapes, numbers, booleans, null) and is *not* a general-purpose
//! validator — unknown escapes and malformed input produce `Err`, never
//! a panic.

/// A parsed JSON value. Object keys keep document order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (rejects trailing garbage).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Member lookup on an object; `None` on anything else.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Dotted-path lookup: `v.path("scaling.efficiency")` is
    /// `v.get("scaling")?.get("efficiency")`.
    pub fn path(&self, path: &str) -> Option<&Json> {
        path.split('.').try_fold(self, |v, key| v.get(key))
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", byte as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected '{word}' at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(format!("unknown escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Copy the full UTF-8 scalar, not just one byte.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8")?;
                    let ch = s.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') = self.peek() {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "bad number")?;
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number '{text}'"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_bench_report_shape() {
        let doc = r#"{"users": 59, "parity_ok": true, "variants": [
            {"variant": "S+H", "fleet_s": 0.123456, "note": null}
        ], "scaling": {"efficiency": 0.85}}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.path("users").unwrap().as_f64(), Some(59.0));
        assert_eq!(v.path("parity_ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.path("scaling.efficiency").unwrap().as_f64(), Some(0.85));
        let variants = v.get("variants").unwrap().as_array().unwrap();
        assert_eq!(variants[0].get("variant").unwrap().as_str(), Some("S+H"));
        assert_eq!(variants[0].get("note"), Some(&Json::Null));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse(r#"{"s": "a\"b\\c\ndAé"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\\c\ndAé"));
    }

    #[test]
    fn parses_numbers_in_all_notations() {
        let v = Json::parse("[0, -1.5, 2e3, 1.25E-2]").unwrap();
        let nums: Vec<f64> = v.as_array().unwrap().iter().filter_map(Json::as_f64).collect();
        assert_eq!(nums, vec![0.0, -1.5, 2000.0, 0.0125]);
    }

    #[test]
    fn rejects_malformed_documents_without_panicking() {
        for bad in ["", "{", "{\"a\" 1}", "[1,]", "tru", "\"unterminated", "{} extra", "1..2"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn lookups_on_wrong_shapes_return_none() {
        let v = Json::parse("{\"a\": [1]}").unwrap();
        assert!(v.path("a.b").is_none());
        assert!(v.get("missing").is_none());
        assert!(v.get("a").unwrap().as_f64().is_none());
    }
}
