//! Shared plumbing for the figure-regeneration binaries.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` (`fig03` … `fig17`, `proto_pte`, plus the `ablation_*`
//! studies); `all_figures` runs them in one process with a shared
//! ingestion cache. Binaries accept an optional scale argument:
//!
//! ```text
//! cargo run --release -p evr-bench --bin fig12            # paper scale
//! cargo run --release -p evr-bench --bin fig12 -- quick   # smoke scale
//! ```
//!
//! Criterion micro-benchmarks for the performance-shaped claims live in
//! `benches/`. The CI perf-regression gate is built from [`scaling`]
//! (Amdahl scaling model), [`json`] (dependency-free report reader) and
//! [`gate`] (threshold checks), driven by the `bench_gate` binary.

use evr_core::figures::{FigureContext, FigureScale};

pub mod gate;
pub mod json;
pub mod scaling;

/// Parses the common CLI convention: no argument = paper scale, `quick`
/// = smoke scale, `users=N duration=S` = custom.
///
/// # Panics
///
/// Panics (with a usage message) on unrecognised arguments.
pub fn scale_from_args(args: impl Iterator<Item = String>) -> FigureScale {
    let mut scale = FigureScale::paper();
    for arg in args {
        if arg == "quick" {
            scale = FigureScale::quick();
        } else if let Some(v) = arg.strip_prefix("users=") {
            scale.users = v.parse().expect("users=N takes an integer");
        } else if let Some(v) = arg.strip_prefix("duration=") {
            scale.duration_s = v.parse().expect("duration=S takes seconds");
        } else {
            panic!("unknown argument {arg:?}; expected `quick`, `users=N` or `duration=S`");
        }
    }
    scale
}

/// Builds the context for a binary from `std::env::args`.
pub fn context_from_env() -> FigureContext {
    FigureContext::new(scale_from_args(std::env::args().skip(1)))
}

/// Prints a figure header in a consistent style.
pub fn header(id: &str, caption: &str) {
    println!("=== {id}: {caption} ===");
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:5.1}%", 100.0 * v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_scale() {
        let s = scale_from_args(std::iter::empty());
        assert_eq!(s.users, 59);
        assert_eq!(s.duration_s, 60.0);
    }

    #[test]
    fn quick_and_overrides() {
        let s = scale_from_args(
            ["quick".to_string(), "users=3".into(), "duration=4.5".into()].into_iter(),
        );
        assert_eq!(s.users, 3);
        assert_eq!(s.duration_s, 4.5);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn bad_argument_panics() {
        let _ = scale_from_args(["wat".to_string()].into_iter());
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.415), " 41.5%");
    }
}
