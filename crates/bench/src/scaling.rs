//! Scaling-efficiency model for the bench binaries.
//!
//! Both `fleet_bench` and `ingest_bench` sweep worker counts over
//! deterministic workloads. This module turns `(workers, wall)` points
//! into a [`ScalingSummary`] — speedup, parallel efficiency, and a
//! serial fraction fitted with Amdahl's law — plus an optional
//! per-stage breakdown computed from worker timeline events
//! ([`stage_scaling`]).
//!
//! **Modeled vs measured points.** CI runs in single-core containers,
//! where a wall-clock worker sweep measures the OS timeslicer, not the
//! scheduler — every real-thread sweep reads ~1.0x there by physics.
//! The gated scaling numbers therefore come from the *schedule model*
//! ([`simulate_chunked_makespan`]): per-item costs are measured once in
//! the serial run, then the chunked self-scheduler is replayed in
//! virtual time assuming one core per worker, which is exactly the
//! quantity the scheduler controls (assignment balance) and is
//! reproducible on any host. The real wall-clock sweep is still
//! attached as `measured` points — on a multi-core host the two
//! converge; in a single-core container `measured` shows thread
//! overhead while the model shows schedule quality.
//!
//! The Amdahl fit inverts `s(w) = 1 / (f + (1 - f)/w)` for the serial
//! fraction `f` at each measured point with `w > 1`:
//!
//! ```text
//! f = (w/s - 1) / (w - 1)
//! ```
//!
//! and averages the per-point estimates, clamped to `[0, 1]`. With one
//! or two sweep points this is exact inversion, not a regression; with
//! more points it damps noise without assuming which point is clean.

use evr_obs::TimelineEvent;

/// One measured sweep point: the wall-clock of the whole workload at a
/// given worker count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingPoint {
    pub workers: usize,
    pub wall_s: f64,
}

/// Per-stage serial-fraction estimate derived from timeline events
/// (see [`stage_scaling`]).
#[derive(Debug, Clone, PartialEq)]
pub struct StageScaling {
    /// Stage name as recorded on the timeline (`plan`, `fetch`, …).
    pub stage: String,
    /// Total busy seconds across all workers in the serial run.
    pub serial_busy_s: f64,
    /// Busiest single worker's seconds in the parallel run — the
    /// stage's critical path under the measured schedule.
    pub parallel_busy_s: f64,
    /// Amdahl serial fraction for this stage in isolation.
    pub serial_fraction: f64,
}

/// The fitted scaling model for one workload sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingSummary {
    /// Worker count of the fastest-swept configuration (the max).
    pub workers: usize,
    /// `wall(1 worker) / wall(max workers)`.
    pub speedup: f64,
    /// `speedup / workers` — 1.0 is perfect linear scaling.
    pub efficiency: f64,
    /// Amdahl serial fraction fitted over all `w > 1` points.
    pub serial_fraction: f64,
    /// The raw sweep points the summary was fitted from.
    pub points: Vec<ScalingPoint>,
    /// Real wall-clock sweep points measured on this host, attached for
    /// reference when the fitted points are schedule-model output
    /// (empty otherwise).
    pub measured: Vec<ScalingPoint>,
    /// Optional per-stage breakdown (empty when no timeline ran).
    pub stages: Vec<StageScaling>,
}

/// Replays chunked self-scheduling over measured per-item `costs` in
/// virtual time, one core per worker, and returns the makespan.
///
/// Chunk `k` covers items `[k·chunk, (k+1)·chunk)`; the next chunk is
/// always pulled by the worker with the smallest accumulated busy time
/// (ties to the lowest lane) — the greedy pull order a free worker
/// realises on real hardware. `chunk = 0` picks
/// [`evr_sched::auto_chunk`], the size the runtime scheduler uses.
/// Deterministic given `costs`; returns 0.0 for an empty workload.
pub fn simulate_chunked_makespan(costs: &[f64], workers: usize, chunk: u64) -> f64 {
    if costs.is_empty() {
        return 0.0;
    }
    let workers = workers.clamp(1, costs.len());
    let chunk = if chunk == 0 { evr_sched::auto_chunk(costs.len() as u64, workers) } else { chunk }
        .max(1) as usize;
    let mut lanes = vec![0.0f64; workers];
    for chunk_costs in costs.chunks(chunk) {
        let puller = lanes
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(w, _)| w)
            .unwrap_or(0);
        lanes[puller] += chunk_costs.iter().sum::<f64>();
    }
    lanes.into_iter().fold(0.0, f64::max)
}

/// The makespan of the old static interleave (lane `w` of `n` runs
/// items `w, w+n, w+2n, …`) over the same per-item `costs` — the
/// comparison baseline that shows what chunked pulling buys on uneven
/// workloads.
pub fn simulate_interleave_makespan(costs: &[f64], workers: usize) -> f64 {
    if costs.is_empty() {
        return 0.0;
    }
    let workers = workers.clamp(1, costs.len());
    let mut lanes = vec![0.0f64; workers];
    for (i, c) in costs.iter().enumerate() {
        lanes[i % workers] += c;
    }
    lanes.into_iter().fold(0.0, f64::max)
}

/// Inverts Amdahl's law for the serial fraction given one measured
/// speedup at `workers > 1`. Clamped to `[0, 1]`; degenerate inputs
/// (non-positive speedup, `workers <= 1`) return 1.0 — "no evidence of
/// any parallelism".
pub fn amdahl_serial_fraction(workers: f64, speedup: f64) -> f64 {
    if workers <= 1.0 || speedup <= 0.0 {
        return 1.0;
    }
    ((workers / speedup - 1.0) / (workers - 1.0)).clamp(0.0, 1.0)
}

impl ScalingSummary {
    /// Fits the model from a sweep. Returns `None` unless the sweep has
    /// a 1-worker point and at least one multi-worker point, both with
    /// positive wall-clock — anything else has no scaling to model.
    pub fn fit(points: &[ScalingPoint]) -> Option<ScalingSummary> {
        let serial = points.iter().find(|p| p.workers == 1 && p.wall_s > 0.0)?;
        let multi: Vec<&ScalingPoint> =
            points.iter().filter(|p| p.workers > 1 && p.wall_s > 0.0).collect();
        let widest = *multi.iter().max_by_key(|p| p.workers)?;
        let speedup = serial.wall_s / widest.wall_s;
        let fractions: Vec<f64> = multi
            .iter()
            .map(|p| amdahl_serial_fraction(p.workers as f64, serial.wall_s / p.wall_s))
            .collect();
        let serial_fraction = fractions.iter().sum::<f64>() / fractions.len() as f64;
        Some(ScalingSummary {
            workers: widest.workers,
            speedup,
            efficiency: speedup / widest.workers as f64,
            serial_fraction,
            points: points.to_vec(),
            measured: Vec::new(),
            stages: Vec::new(),
        })
    }

    /// Fits the model from the chunked-schedule simulation over measured
    /// per-item `costs` at the given worker counts (see
    /// [`simulate_chunked_makespan`]). Returns `None` when the costs or
    /// counts give nothing to model (no items, no multi-worker count).
    pub fn fit_modeled(costs: &[f64], worker_counts: &[usize]) -> Option<ScalingSummary> {
        let points: Vec<ScalingPoint> = worker_counts
            .iter()
            .map(|&w| ScalingPoint { workers: w, wall_s: simulate_chunked_makespan(costs, w, 0) })
            .collect();
        ScalingSummary::fit(&points)
    }

    /// Attaches a per-stage breakdown (builder style).
    #[must_use]
    pub fn with_stages(mut self, stages: Vec<StageScaling>) -> ScalingSummary {
        self.stages = stages;
        self
    }

    /// Attaches the real wall-clock sweep measured on this host
    /// (builder style; shown as `measured` in the JSON).
    #[must_use]
    pub fn with_measured(mut self, measured: Vec<ScalingPoint>) -> ScalingSummary {
        self.measured = measured;
        self
    }

    /// Renders the summary as a stable JSON object (fixed key order,
    /// `{:.6}` floats) for embedding in a bench report.
    pub fn to_json(&self) -> String {
        let render_points = |points: &[ScalingPoint]| -> Vec<String> {
            points
                .iter()
                .map(|p| format!("{{\"workers\":{},\"wall_s\":{:.6}}}", p.workers, p.wall_s))
                .collect()
        };
        let points = render_points(&self.points);
        let measured = render_points(&self.measured);
        let stages: Vec<String> = self
            .stages
            .iter()
            .map(|s| {
                format!(
                    "{{\"stage\":\"{}\",\"serial_busy_s\":{:.6},\"parallel_busy_s\":{:.6},\"serial_fraction\":{:.6}}}",
                    s.stage, s.serial_busy_s, s.parallel_busy_s, s.serial_fraction
                )
            })
            .collect();
        format!(
            "{{\"workers\":{},\"speedup\":{:.6},\"efficiency\":{:.6},\"serial_fraction\":{:.6},\"points\":[{}],\"measured\":[{}],\"stages\":[{}]}}",
            self.workers,
            self.speedup,
            self.efficiency,
            self.serial_fraction,
            points.join(","),
            measured.join(","),
            stages.join(",")
        )
    }

    /// One human-readable line for the bench's stdout report.
    pub fn render_line(&self) -> String {
        format!(
            "scaling: {:.2}x speedup at {} workers ({:.0}% efficient, serial fraction {:.3})",
            self.speedup,
            self.workers,
            self.efficiency * 100.0,
            self.serial_fraction
        )
    }
}

/// Derives per-stage serial fractions from two timeline captures of the
/// same workload: one serial (`1` worker) and one at `workers` lanes.
///
/// For each stage the serial busy time is the sum of its interval
/// durations in the serial capture; the parallel "critical path" is the
/// busiest single lane's total in the parallel capture. Their ratio is
/// the stage's effective speedup, inverted through Amdahl for a
/// per-stage serial fraction. Stages absent from either capture (or
/// with negligible serial time) are skipped; results sort by serial
/// busy time, heaviest first.
pub fn stage_scaling(
    serial: &[TimelineEvent],
    parallel: &[TimelineEvent],
    workers: usize,
) -> Vec<StageScaling> {
    const MIN_BUSY_S: f64 = 1e-6;
    let mut stages: Vec<StageScaling> = Vec::new();
    let mut names: Vec<&'static str> = serial.iter().map(|e| e.stage).collect();
    names.sort_unstable();
    names.dedup();
    for stage in names {
        let serial_busy_s = serial
            .iter()
            .filter(|e| e.stage == stage)
            .map(|e| e.duration_ns() as f64 / 1e9)
            .sum::<f64>();
        if serial_busy_s < MIN_BUSY_S {
            continue;
        }
        let mut lanes: Vec<(u32, f64)> = Vec::new();
        for e in parallel.iter().filter(|e| e.stage == stage) {
            let dur = e.duration_ns() as f64 / 1e9;
            match lanes.iter_mut().find(|(w, _)| *w == e.worker) {
                Some((_, busy)) => *busy += dur,
                None => lanes.push((e.worker, dur)),
            }
        }
        let parallel_busy_s = lanes.iter().map(|(_, b)| *b).fold(0.0, f64::max);
        if parallel_busy_s < MIN_BUSY_S {
            continue;
        }
        let speedup = serial_busy_s / parallel_busy_s;
        stages.push(StageScaling {
            stage: stage.to_string(),
            serial_busy_s,
            parallel_busy_s,
            serial_fraction: amdahl_serial_fraction(workers as f64, speedup),
        });
    }
    stages.sort_by(|a, b| {
        b.serial_busy_s.partial_cmp(&a.serial_busy_s).unwrap_or(std::cmp::Ordering::Equal)
    });
    stages
}

#[cfg(test)]
mod tests {
    use super::*;
    use evr_obs::TraceCtx;

    fn pt(workers: usize, wall_s: f64) -> ScalingPoint {
        ScalingPoint { workers, wall_s }
    }

    #[test]
    fn perfect_scaling_has_zero_serial_fraction() {
        let s = ScalingSummary::fit(&[pt(1, 8.0), pt(2, 4.0), pt(4, 2.0), pt(8, 1.0)]).unwrap();
        assert_eq!(s.workers, 8);
        assert!((s.speedup - 8.0).abs() < 1e-9);
        assert!((s.efficiency - 1.0).abs() < 1e-9);
        assert!(s.serial_fraction < 1e-9);
    }

    #[test]
    fn no_scaling_has_unit_serial_fraction() {
        let s = ScalingSummary::fit(&[pt(1, 4.0), pt(4, 4.0)]).unwrap();
        assert!((s.speedup - 1.0).abs() < 1e-9);
        assert!((s.serial_fraction - 1.0).abs() < 1e-9);
    }

    #[test]
    fn amdahl_inversion_recovers_the_planted_fraction() {
        // Plant f = 0.25, synthesise walls from Amdahl, recover f.
        let f = 0.25;
        let wall = |w: f64| f + (1.0 - f) / w;
        let s =
            ScalingSummary::fit(&[pt(1, wall(1.0)), pt(4, wall(4.0)), pt(8, wall(8.0))]).unwrap();
        assert!((s.serial_fraction - f).abs() < 1e-9, "got {}", s.serial_fraction);
    }

    #[test]
    fn fit_needs_serial_and_multi_worker_points() {
        assert!(ScalingSummary::fit(&[]).is_none());
        assert!(ScalingSummary::fit(&[pt(1, 2.0)]).is_none());
        assert!(ScalingSummary::fit(&[pt(4, 2.0)]).is_none());
        assert!(ScalingSummary::fit(&[pt(1, 0.0), pt(4, 2.0)]).is_none());
        assert!(ScalingSummary::fit(&[pt(1, 2.0), pt(4, 1.0)]).is_some());
    }

    #[test]
    fn degenerate_amdahl_inputs_clamp_to_fully_serial() {
        assert_eq!(amdahl_serial_fraction(1.0, 2.0), 1.0);
        assert_eq!(amdahl_serial_fraction(4.0, 0.0), 1.0);
        // Super-linear measurements clamp to 0 rather than going negative.
        assert_eq!(amdahl_serial_fraction(4.0, 8.0), 0.0);
    }

    fn ev(worker: u32, stage: &'static str, start_ms: u64, end_ms: u64) -> TimelineEvent {
        TimelineEvent {
            worker,
            stage,
            start_ns: start_ms * 1_000_000,
            end_ns: end_ms * 1_000_000,
            ctx: TraceCtx::anonymous(),
        }
    }

    #[test]
    fn stage_scaling_separates_balanced_from_skewed_stages() {
        // "render": 4x100ms serial, perfectly balanced over 4 workers.
        // "plan": 4x100ms serial, all on worker 0 in the parallel run.
        let serial: Vec<TimelineEvent> = (0..4)
            .flat_map(|i| {
                [
                    ev(0, "render", i * 200, i * 200 + 100),
                    ev(0, "plan", i * 200 + 100, i * 200 + 200),
                ]
            })
            .collect();
        let mut parallel: Vec<TimelineEvent> = (0..4).map(|w| ev(w, "render", 0, 100)).collect();
        parallel.extend((0..4).map(|i| ev(0, "plan", 100 + i * 100, 200 + i * 100)));
        let stages = stage_scaling(&serial, &parallel, 4);
        assert_eq!(stages.len(), 2);
        let render = stages.iter().find(|s| s.stage == "render").unwrap();
        let plan = stages.iter().find(|s| s.stage == "plan").unwrap();
        assert!(render.serial_fraction < 1e-9, "balanced stage: {}", render.serial_fraction);
        assert!(
            (plan.serial_fraction - 1.0).abs() < 1e-9,
            "skewed stage: {}",
            plan.serial_fraction
        );
    }

    #[test]
    fn stage_scaling_skips_stages_missing_from_either_capture() {
        let serial = vec![ev(0, "render", 0, 100), ev(0, "plan", 100, 200)];
        let parallel = vec![ev(0, "render", 0, 100)];
        let stages = stage_scaling(&serial, &parallel, 4);
        assert_eq!(stages.len(), 1);
        assert_eq!(stages[0].stage, "render");
    }

    #[test]
    fn uniform_costs_model_near_linear_scaling() {
        let costs = vec![1.0; 2000];
        let s = ScalingSummary::fit_modeled(&costs, &[1, 2, 4, 8]).unwrap();
        assert_eq!(s.workers, 8);
        assert!(s.speedup >= 7.0, "modeled speedup {}", s.speedup);
        assert!(s.efficiency >= 0.875, "modeled efficiency {}", s.efficiency);
    }

    #[test]
    fn chunked_model_beats_interleave_on_index_proportional_cost() {
        // The interleave's blind spot is cost concentrated in one
        // residue class: every 8th item is 50x as expensive, so the old
        // `w, w+n, …` policy at 8 workers puts the entire hot class on
        // lane 0 while chunked pulling spreads it.
        let costs: Vec<f64> = (0..800).map(|i| if i % 8 == 0 { 50.0 } else { 1.0 }).collect();
        let serial: f64 = costs.iter().sum();
        let interleave = simulate_interleave_makespan(&costs, 8);
        let chunked = simulate_chunked_makespan(&costs, 8, 0);
        assert!(
            serial / interleave < 2.0,
            "interleave should collapse: {:.2}x",
            serial / interleave
        );
        assert!(
            serial / chunked > 6.0,
            "chunked should stay near-linear: {:.2}x",
            serial / chunked
        );
    }

    #[test]
    fn schedule_simulation_is_deterministic_and_conservative() {
        let costs: Vec<f64> = (0..321).map(|i| ((i * 37) % 101) as f64 / 100.0 + 0.01).collect();
        let a = simulate_chunked_makespan(&costs, 8, 0);
        let b = simulate_chunked_makespan(&costs, 8, 0);
        assert_eq!(a, b, "virtual-time replay must be deterministic");
        let serial: f64 = costs.iter().sum();
        // Makespan is bounded below by perfect balance and above by serial.
        assert!(a >= serial / 8.0 - 1e-9);
        assert!(a <= serial + 1e-9);
        // One worker degenerates to the serial sum; empty costs to zero.
        assert!((simulate_chunked_makespan(&costs, 1, 0) - serial).abs() < 1e-9);
        assert_eq!(simulate_chunked_makespan(&[], 8, 0), 0.0);
        assert_eq!(simulate_interleave_makespan(&[], 8), 0.0);
    }

    #[test]
    fn summary_json_is_stable_and_complete() {
        let s = ScalingSummary::fit(&[pt(1, 2.0), pt(2, 1.0)]).unwrap().with_stages(vec![
            StageScaling {
                stage: "render".into(),
                serial_busy_s: 1.5,
                parallel_busy_s: 0.75,
                serial_fraction: 0.0,
            },
        ]);
        let json = s.to_json();
        assert!(json.starts_with("{\"workers\":2,\"speedup\":2.000000"), "{json}");
        assert!(json.contains("\"points\":[{\"workers\":1,\"wall_s\":2.000000}"), "{json}");
        assert!(json.contains("\"stages\":[{\"stage\":\"render\""), "{json}");
    }
}
