//! Adaptive-bitrate streaming over a constrained, time-varying link.
//!
//! The paper evaluates under an uncongested 300 Mbps WiFi link (§8.2);
//! this module asks the follow-on question its bandwidth results imply:
//! on a *constrained* link (cellular-class), how much does EVR's smaller
//! FOV traffic help playback robustness? It implements the standard
//! buffer-based client loop — throughput-EWMA rung selection with a
//! safety factor, stall accounting — over real per-rung segment sizes
//! from [`evr_sas::ladder`].

use serde::{Deserialize, Serialize};

/// A piecewise-constant bandwidth-over-time trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandwidthTrace {
    /// `(start time s, bits/s)` breakpoints, time-ascending; the first
    /// entry's rate also applies before its time.
    points: Vec<(f64, f64)>,
}

impl BandwidthTrace {
    /// A constant-rate link.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is not positive.
    pub fn constant(bps: f64) -> Self {
        assert!(bps > 0.0, "bandwidth must be positive");
        BandwidthTrace { points: vec![(0.0, bps)] }
    }

    /// Builds a trace from breakpoints.
    ///
    /// # Panics
    ///
    /// Panics if empty, unsorted, or any rate is non-positive.
    pub fn from_points(points: Vec<(f64, f64)>) -> Self {
        assert!(!points.is_empty(), "trace needs at least one point");
        assert!(points.windows(2).all(|w| w[0].0 < w[1].0), "breakpoints must ascend");
        assert!(points.iter().all(|(_, bps)| *bps > 0.0), "rates must be positive");
        BandwidthTrace { points }
    }

    /// Bridges a fault-model [`evr_faults::BandwidthProfile`] into an
    /// ABR trace. Profiles may carry zero-bandwidth outage windows,
    /// which a trace cannot express; those are clamped up to
    /// `floor_bps` (the ABR loop models outages as arbitrarily slow,
    /// not absent, links).
    ///
    /// # Panics
    ///
    /// Panics if `floor_bps` is not positive.
    pub fn from_profile(profile: &evr_faults::BandwidthProfile, floor_bps: f64) -> Self {
        assert!(floor_bps > 0.0, "floor bandwidth must be positive");
        BandwidthTrace::from_points(
            profile.points().iter().map(|&(t, bps)| (t, bps.max(floor_bps))).collect(),
        )
    }

    /// A link that alternates between `high_bps` and `low_bps` every
    /// `period_s/2` seconds — the classic congestion sawtooth.
    pub fn square_wave(high_bps: f64, low_bps: f64, period_s: f64, total_s: f64) -> Self {
        assert!(period_s > 0.0 && total_s > 0.0, "periods must be positive");
        let mut points = Vec::new();
        let mut t = 0.0;
        let mut high = true;
        while t < total_s {
            points.push((t, if high { high_bps } else { low_bps }));
            high = !high;
            t += period_s / 2.0;
        }
        BandwidthTrace::from_points(points)
    }

    /// The rate at time `t`, bits/s.
    pub fn bps_at(&self, t: f64) -> f64 {
        match self.points.iter().rev().find(|(pt, _)| *pt <= t) {
            Some((_, bps)) => *bps,
            None => self.points[0].1,
        }
    }

    /// Time to download `bytes` starting at `t` (integrating across
    /// breakpoints).
    pub fn download_time(&self, mut t: f64, bytes: u64) -> f64 {
        let mut remaining_bits = bytes as f64 * 8.0;
        let start = t;
        loop {
            let rate = self.bps_at(t);
            let next_bp =
                self.points.iter().map(|(pt, _)| *pt).find(|pt| *pt > t).unwrap_or(f64::INFINITY);
            let window = next_bp - t;
            let can = rate * window;
            if remaining_bits <= can {
                return t + remaining_bits / rate - start;
            }
            remaining_bits -= can;
            t = next_bp;
        }
    }
}

/// The rung-selection policy: throughput EWMA with a safety margin.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AbrPolicy {
    /// Fraction of estimated throughput the chosen rung may consume.
    pub safety: f64,
    /// EWMA smoothing factor for throughput estimates, `[0, 1)` (0 = use
    /// the last sample only).
    pub smoothing: f64,
}

impl Default for AbrPolicy {
    fn default() -> Self {
        AbrPolicy { safety: 0.8, smoothing: 0.6 }
    }
}

/// Result of one ABR playback simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct AbrOutcome {
    /// Total stall (rebuffering) time, seconds.
    pub stall_time_s: f64,
    /// Stall events.
    pub stalls: u64,
    /// Mean selected rung (0 = coarsest).
    pub mean_rung: f64,
    /// Rung switches.
    pub switches: u64,
    /// Total bytes downloaded.
    pub bytes: u64,
}

/// Simulates buffer-based streaming of `segment_ladder` (per segment, the
/// byte size of each rung, coarsest first) over `link`.
///
/// The client starts playing after the first segment arrives, keeps at
/// most a few segments buffered, estimates throughput from each
/// download, and picks the highest rung whose projected download rate
/// fits within `policy.safety` of the estimate.
///
/// # Panics
///
/// Panics if the ladder is empty or ragged.
pub fn simulate_abr(
    segment_ladder: &[Vec<u64>],
    segment_duration_s: f64,
    link: &BandwidthTrace,
    policy: AbrPolicy,
) -> AbrOutcome {
    simulate_abr_observed(
        segment_ladder,
        segment_duration_s,
        link,
        policy,
        &evr_obs::Observer::noop(),
    )
}

/// Like [`simulate_abr`], but counting ladder switches and stalls into
/// `observer` (`evr_abr_*` names) and marking each switch in the trace.
///
/// # Panics
///
/// Panics if the ladder is empty or ragged.
pub fn simulate_abr_observed(
    segment_ladder: &[Vec<u64>],
    segment_duration_s: f64,
    link: &BandwidthTrace,
    policy: AbrPolicy,
    observer: &evr_obs::Observer,
) -> AbrOutcome {
    let switches_c = observer.counter(evr_obs::names::ABR_SWITCHES);
    let stalls_c = observer.counter(evr_obs::names::ABR_STALLS);
    assert!(!segment_ladder.is_empty(), "ladder must contain segments");
    let rungs = segment_ladder[0].len();
    assert!(rungs > 0, "segments need at least one rung");
    assert!(segment_ladder.iter().all(|s| s.len() == rungs), "ragged ladder");

    let mut wall = 0.0f64; // wall-clock time
    let mut buffer = 0.0f64; // seconds of video buffered
    let mut started = false; // playback begins after the first segment
                             // No throughput sample exists before the first download completes: a
                             // real client cannot peek at the link's t=0 rate, so it opens at the
                             // coarsest rung and lets the first measured download seed the EWMA.
    let mut throughput: Option<f64> = None;
    let mut rung = 0usize;
    let mut outcome =
        AbrOutcome { stall_time_s: 0.0, stalls: 0, mean_rung: 0.0, switches: 0, bytes: 0 };

    for (seg_idx, seg) in segment_ladder.iter().enumerate() {
        // Pick the highest rung that fits the throughput estimate.
        let pick = match throughput {
            None => 0,
            Some(estimate) => {
                let budget_bps = estimate * policy.safety;
                (0..rungs)
                    .rev()
                    .find(|&r| seg[r] as f64 * 8.0 / segment_duration_s <= budget_bps)
                    .unwrap_or(0)
            }
        };
        if pick != rung {
            outcome.switches += 1;
            switches_c.inc();
            observer.mark("abr_switch", -1, seg_idx as i64, pick as f64);
            rung = pick;
        }
        outcome.mean_rung += rung as f64;
        let bytes = seg[rung];
        outcome.bytes += bytes;

        let dl = link.download_time(wall, bytes);
        wall += dl;
        if started {
            // Playback consumed `dl` seconds of buffer meanwhile.
            buffer -= dl;
            if buffer < 0.0 {
                outcome.stall_time_s += -buffer;
                outcome.stalls += 1;
                stalls_c.inc();
                buffer = 0.0;
            }
        } else {
            // Startup: playback begins once the first segment is in; the
            // join delay is not a stall.
            started = true;
        }
        buffer += segment_duration_s;
        // Keep at most 3 segments ahead: idle (don't download) otherwise.
        let cap = 3.0 * segment_duration_s;
        if buffer > cap {
            wall += buffer - cap;
            buffer = cap;
        }
        // Throughput sample from this download; the first sample seeds
        // the estimator outright.
        let sample = bytes as f64 * 8.0 / dl.max(1e-9);
        throughput = Some(match throughput {
            None => sample,
            Some(estimate) => policy.smoothing * estimate + (1.0 - policy.smoothing) * sample,
        });
    }
    outcome.mean_rung /= segment_ladder.len() as f64;
    outcome
}

/// One segment's per-tile rung selection from [`allocate_tile_rungs`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileAllocation {
    /// Chosen rung index per tile (0 = coarsest), row-major grid order.
    pub rungs: Vec<usize>,
    /// Total wire bytes of the selection.
    pub total_bytes: u64,
}

/// How much an upgrade on a peripheral tile is worth relative to the
/// same solid angle of visible content: the viewer only sees it if the
/// head moves that way mid-segment.
const PERIPHERAL_VALUE: f64 = 0.35;

/// Allocates a per-segment byte budget across tiles — the S-PSNR-style
/// spherically-weighted rate allocator of the `T`/`T+H` variants.
///
/// Every tile starts at the coarsest rung (the base layer; panoramic
/// playback needs *something* everywhere). Upgrades are then granted
/// greedily by quality value per marginal byte: a tile's value is its
/// spherical solid-angle weight ([`evr_sas::TileGrid::tile_weights`])
/// times a viewport factor (visible `1.0`, peripheral
/// [`PERIPHERAL_VALUE`], out-of-view never upgrades), and each step
/// picks the affordable upgrade with the best `value / marginal-bytes`
/// ratio (ties to the lowest tile index). Visible tiles may climb to the
/// top rung, peripheral tiles to the middle of the ladder.
///
/// The returned total never exceeds `budget_bytes` as long as the base
/// layer itself fits; if even the base layer exceeds the budget, the
/// base layer is returned unchanged (the caller sees the overrun in
/// `total_bytes` and stalls accordingly, exactly like a too-slow link).
///
/// # Panics
///
/// Panics if the inputs are empty, ragged, or of mismatched lengths.
pub fn allocate_tile_rungs(
    tile_rung_bytes: &[Vec<u64>],
    weights: &[f64],
    classes: &[evr_sas::TileClass],
    budget_bytes: u64,
) -> TileAllocation {
    use evr_sas::TileClass;
    assert!(!tile_rung_bytes.is_empty(), "allocation needs at least one tile");
    let rung_count = tile_rung_bytes[0].len();
    assert!(rung_count > 0, "tiles need at least one rung");
    assert!(tile_rung_bytes.iter().all(|t| t.len() == rung_count), "ragged rung matrix");
    assert_eq!(tile_rung_bytes.len(), weights.len(), "weights must match tiles");
    assert_eq!(tile_rung_bytes.len(), classes.len(), "classes must match tiles");

    let caps: Vec<usize> = classes
        .iter()
        .map(|c| match c {
            TileClass::Visible => rung_count - 1,
            TileClass::Peripheral => (rung_count - 1) / 2,
            TileClass::OutOfView => 0,
        })
        .collect();
    let values: Vec<f64> = classes
        .iter()
        .zip(weights)
        .map(|(c, w)| match c {
            TileClass::Visible => *w,
            TileClass::Peripheral => *w * PERIPHERAL_VALUE,
            TileClass::OutOfView => 0.0,
        })
        .collect();

    let mut rungs = vec![0usize; tile_rung_bytes.len()];
    let mut total: u64 = tile_rung_bytes.iter().map(|t| t[0]).sum();
    loop {
        let mut best: Option<(usize, u64, f64)> = None; // (tile, new_total, score)
        for (t, &r) in rungs.iter().enumerate() {
            if r >= caps[t] {
                continue;
            }
            // Marginal bytes may be negative: the toy codec (like real
            // DASH packagers) occasionally inverts neighbouring rungs.
            let new_total = (total as i128 - tile_rung_bytes[t][r] as i128
                + tile_rung_bytes[t][r + 1] as i128)
                .max(0) as u64;
            if new_total > budget_bytes {
                continue;
            }
            let marginal = tile_rung_bytes[t][r + 1].saturating_sub(tile_rung_bytes[t][r]).max(1);
            let score = values[t] / marginal as f64;
            if best.is_none_or(|(_, _, s)| score > s) {
                best = Some((t, new_total, score));
            }
        }
        let Some((t, new_total, _)) = best else { break };
        rungs[t] += 1;
        total = new_total;
    }
    TileAllocation { rungs, total_bytes: total }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evr_sas::TileClass;

    /// 10 segments of 1 s whose rungs cost 1 / 2 / 4 Mbit each.
    fn ladder() -> Vec<Vec<u64>> {
        (0..10).map(|_| vec![125_000, 250_000, 500_000]).collect()
    }

    #[test]
    fn fat_link_picks_the_top_rung_without_stalls() {
        let out =
            simulate_abr(&ladder(), 1.0, &BandwidthTrace::constant(50e6), AbrPolicy::default());
        assert_eq!(out.stalls, 0);
        // The first segment opens at the coarsest rung (no sample yet);
        // every later one rides the top, so the mean over 10 is exactly 1.8.
        assert!(out.mean_rung >= 1.8, "mean rung {}", out.mean_rung);
    }

    #[test]
    fn fast_start_link_opens_conservatively() {
        // A link that opens fat and collapses half a segment in: an
        // estimator warm-started from `link.bps_at(0.0)` (an oracle peek a
        // real client cannot make) would grab the top rung immediately and
        // stall into the collapse. The client must open at the coarsest
        // rung until it has a measured sample.
        let link = BandwidthTrace::square_wave(50e6, 1.0e6, 1.0, 10.0);
        let single = vec![vec![125_000, 250_000, 500_000]];
        let out = simulate_abr(&single, 1.0, &link, AbrPolicy::default());
        assert_eq!(out.mean_rung, 0.0, "first pick must be the coarsest rung");
        assert_eq!(out.bytes, 125_000);
        assert_eq!(out.stalls, 0);
        // With more segments the estimator warms up from real samples and
        // still climbs off the floor once the link allows it.
        let long: Vec<Vec<u64>> = (0..20).map(|_| vec![125_000, 250_000, 500_000]).collect();
        let warmed = simulate_abr(&long, 1.0, &link, AbrPolicy::default());
        assert!(warmed.mean_rung > 0.0, "estimator never warmed up");
    }

    #[test]
    fn thin_link_downshifts_instead_of_stalling() {
        // 1.5 Mbps link: only the bottom rung (1 Mbit/s) fits.
        let out =
            simulate_abr(&ladder(), 1.0, &BandwidthTrace::constant(1.5e6), AbrPolicy::default());
        assert!(out.mean_rung < 0.5, "mean rung {}", out.mean_rung);
        assert!(out.stall_time_s < 0.5, "stall {}", out.stall_time_s);
    }

    #[test]
    fn fluctuating_link_causes_switches() {
        // 10-second phases between a fat and a sub-rung-0 link, with a
        // reactive estimator: the client must shift down and back up.
        let link = BandwidthTrace::square_wave(20e6, 1.0e6, 20.0, 100.0);
        let long: Vec<Vec<u64>> = (0..60).map(|_| vec![125_000, 250_000, 500_000]).collect();
        let policy = AbrPolicy { safety: 0.8, smoothing: 0.3 };
        let out = simulate_abr(&long, 1.0, &link, policy);
        assert!(out.switches >= 3, "switches {}", out.switches);
        // It oscillates between rungs rather than pinning to one.
        assert!(out.mean_rung > 0.2 && out.mean_rung < 1.9, "mean rung {}", out.mean_rung);
    }

    #[test]
    fn smaller_segments_stall_less_on_the_same_link() {
        // Halving every size (EVR's FOV streams vs originals) must not
        // make things worse on a borderline link.
        let link = BandwidthTrace::square_wave(3e6, 0.8e6, 6.0, 30.0);
        let full = simulate_abr(&ladder(), 1.0, &link, AbrPolicy::default());
        let halved: Vec<Vec<u64>> =
            ladder().iter().map(|s| s.iter().map(|b| b / 2).collect()).collect();
        let small = simulate_abr(&halved, 1.0, &link, AbrPolicy::default());
        assert!(small.stall_time_s <= full.stall_time_s + 1e-9);
        assert!(small.mean_rung >= full.mean_rung);
    }

    #[test]
    fn download_time_integrates_across_breakpoints() {
        // 1 Mbps for 1 s, then 9 Mbps: 2 Mbit takes 1 s + (1 Mbit / 9 Mbps).
        let link = BandwidthTrace::from_points(vec![(0.0, 1e6), (1.0, 9e6)]);
        let t = link.download_time(0.0, 250_000);
        assert!((t - (1.0 + 1.0 / 9.0)).abs() < 1e-9, "{t}");
    }

    #[test]
    fn observed_simulation_counts_switches_and_stalls() {
        let obs = evr_obs::Observer::enabled();
        let link = BandwidthTrace::square_wave(20e6, 1.0e6, 20.0, 100.0);
        let long: Vec<Vec<u64>> = (0..60).map(|_| vec![125_000, 250_000, 500_000]).collect();
        let policy = AbrPolicy { safety: 0.8, smoothing: 0.3 };
        let out = simulate_abr_observed(&long, 1.0, &link, policy, &obs);
        assert_eq!(obs.counter(evr_obs::names::ABR_SWITCHES).get(), out.switches);
        assert_eq!(obs.counter(evr_obs::names::ABR_STALLS).get(), out.stalls);
        let switch_marks = obs.events().iter().filter(|e| e.name == "abr_switch").count() as u64;
        assert_eq!(switch_marks, out.switches);
        // The observed run is behaviourally identical to the silent one.
        assert_eq!(out, simulate_abr(&long, 1.0, &link, policy));
    }

    #[test]
    fn profile_bridge_clamps_outages_to_the_floor() {
        let profile =
            evr_faults::BandwidthProfile::step_drop(20e6, 5e6, 10.0).with_outage(4.0, 2.0);
        let trace = BandwidthTrace::from_profile(&profile, 1e3);
        assert_eq!(trace.bps_at(0.0), 20e6);
        assert_eq!(trace.bps_at(5.0), 1e3); // outage window → floor
        assert_eq!(trace.bps_at(12.0), 5e6);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_ladder_panics() {
        let bad = vec![vec![1, 2], vec![1]];
        let _ = simulate_abr(&bad, 1.0, &BandwidthTrace::constant(1e6), AbrPolicy::default());
    }

    /// A deterministic xorshift for property-style sweeps (no external
    /// RNG crates in this workspace).
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    fn random_matrix(seed: u64, tiles: usize, rungs: usize) -> Vec<Vec<u64>> {
        let mut s = seed.max(1);
        (0..tiles)
            .map(|_| (0..rungs).map(|r| 500 + xorshift(&mut s) % 2_000 * (r as u64 + 1)).collect())
            .collect()
    }

    #[test]
    fn allocation_never_exceeds_budget_when_base_fits() {
        let grid = evr_sas::TileGrid::default();
        let weights = grid.tile_weights();
        for seed in 1..50u64 {
            let matrix = random_matrix(seed, grid.len(), 3);
            let base: u64 = matrix.iter().map(|t| t[0]).sum();
            let top: u64 = matrix.iter().map(|t| t[2]).sum();
            let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
            let budget = base + xorshift(&mut s) % (top - base + 1);
            let classes: Vec<TileClass> = (0..grid.len())
                .map(|t| match (t + seed as usize) % 3 {
                    0 => TileClass::Visible,
                    1 => TileClass::Peripheral,
                    _ => TileClass::OutOfView,
                })
                .collect();
            let alloc = allocate_tile_rungs(&matrix, &weights, &classes, budget);
            assert!(
                alloc.total_bytes <= budget,
                "seed {seed}: total {} > budget {budget}",
                alloc.total_bytes
            );
            let recomputed: u64 = matrix.iter().zip(&alloc.rungs).map(|(t, &r)| t[r]).sum();
            assert_eq!(alloc.total_bytes, recomputed, "seed {seed}: total out of sync");
        }
    }

    #[test]
    fn class_caps_bound_every_tile() {
        let grid = evr_sas::TileGrid::default();
        let weights = grid.tile_weights();
        let matrix = random_matrix(7, grid.len(), 3);
        let classes: Vec<TileClass> = (0..grid.len())
            .map(|t| match t % 3 {
                0 => TileClass::Visible,
                1 => TileClass::Peripheral,
                _ => TileClass::OutOfView,
            })
            .collect();
        let alloc = allocate_tile_rungs(&matrix, &weights, &classes, u64::MAX);
        for (t, (&r, c)) in alloc.rungs.iter().zip(&classes).enumerate() {
            let cap = match c {
                TileClass::Visible => 2,
                TileClass::Peripheral => 1,
                TileClass::OutOfView => 0,
            };
            assert_eq!(r, cap, "tile {t} ({c:?}) under unlimited budget");
        }
    }

    #[test]
    fn overrun_base_layer_is_returned_unchanged() {
        let matrix = vec![vec![100, 200], vec![100, 200]];
        let weights = vec![1.0, 1.0];
        let classes = vec![TileClass::Visible, TileClass::Visible];
        let alloc = allocate_tile_rungs(&matrix, &weights, &classes, 50);
        assert_eq!(alloc.rungs, vec![0, 0]);
        assert_eq!(alloc.total_bytes, 200);
    }

    #[test]
    fn equal_cost_upgrades_favour_the_larger_solid_angle() {
        // Two visible tiles, identical rung costs, one polar (small
        // weight) and one equatorial (large weight): with budget for one
        // upgrade, the equatorial tile gets it.
        let grid = evr_sas::TileGrid::default();
        let weights = grid.tile_weights();
        let polar = 0usize; // row 0
        let equatorial = (grid.cols + 1) as usize; // row 1
        assert!(weights[equatorial] > weights[polar]);
        let mut matrix = vec![vec![0u64, 0]; grid.len()];
        matrix[polar] = vec![100, 200];
        matrix[equatorial] = vec![100, 200];
        let mut classes = vec![TileClass::OutOfView; grid.len()];
        classes[polar] = TileClass::Visible;
        classes[equatorial] = TileClass::Visible;
        let alloc = allocate_tile_rungs(&matrix, &weights, &classes, 300);
        assert_eq!(alloc.rungs[equatorial], 1);
        assert_eq!(alloc.rungs[polar], 0);
    }
}
