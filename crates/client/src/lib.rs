//! The EVR client device: playback-pipeline simulation with full energy
//! accounting.
//!
//! Mirrors the client half of the paper's Fig. 4: content arrives either
//! as pre-rendered FOV videos (SAS hits display directly) or as original
//! panoramic segments that must run through on-device projective
//! transformation — on the GPU (today's path) or on the PTE accelerator
//! (HAR). Every microjoule is tagged into the five-component
//! [`evr_energy::EnergyLedger`], which is what the paper's Figures 3, 12,
//! 13, 15 and 16 read out.
//!
//! * [`network`] — the WiFi link model (300 Mbps effective, per §8.2)
//!   with streaming-aware rebuffer times.
//! * [`session`] — the per-user playback simulation across the online
//!   (SAS / baseline), live-streaming and offline-playback use-cases.
//!
//! # Example
//!
//! ```
//! use evr_client::session::{ContentPath, PlaybackSession, Renderer, SessionConfig};
//! use evr_sas::{ingest_video, SasConfig, SasServer};
//! use evr_trace::behavior::{generate_user_trace, params_for};
//! use evr_video::library::{scene_for, VideoId};
//!
//! let scene = scene_for(VideoId::Rs);
//! let server = SasServer::new(ingest_video(&scene, &SasConfig::tiny_for_tests(), 1.0));
//! let trace = generate_user_trace(&scene, &params_for(VideoId::Rs), 0, 1.0, 30.0);
//! let cfg = SessionConfig::new(ContentPath::OnlineSas, Renderer::Pte, SasConfig::tiny_for_tests());
//! let report = PlaybackSession::new(cfg).run(&server, &trace);
//! assert!(report.frames_total > 0);
//! assert!(report.ledger.total() > 0.0);
//! ```

pub mod abr;
pub mod network;
pub mod pipeline;
pub mod refine;
pub mod session;

pub use abr::{allocate_tile_rungs, TileAllocation};
pub use network::NetworkModel;
pub use pipeline::{
    CleanTransport, DeltaWire, FaultedTransport, FovPassthrough, GpuBackend, PteBackend,
    RenderBackend, SegmentLink, StageIo, Transport,
};
pub use refine::{fetch_fov_refined, run_refinement_session, RefineReport, RefinedFetch};
pub use session::{
    ContentPath, FaultSummary, PlaybackReport, PlaybackSession, Renderer, SelectionPolicy,
    SessionConfig,
};
