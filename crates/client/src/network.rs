//! The streaming link model.
//!
//! Paper §8.2 evaluates "under the WiFi environment (with an effective
//! bandwidth of 300 Mbps)" and reports that "every re-buffering of a
//! missed segment pauses rendering for at most 8 milliseconds": on a
//! miss the client only waits for the segment's leading intra frame;
//! the remainder streams faster than it plays.

use serde::{Deserialize, Serialize};

/// Point-to-point link model with loss-driven retransmission overhead.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Effective application-layer bandwidth, bits per second.
    pub bandwidth_bps: f64,
    /// Request round-trip time, seconds.
    pub rtt_s: f64,
    /// Packet loss probability in `[0, 1)` (failure injection; 0 = the
    /// clean WiFi link of the paper's testbed).
    pub loss_prob: f64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel { bandwidth_bps: 300e6, rtt_s: 0.002, loss_prob: 0.0 }
    }
}

impl NetworkModel {
    /// Builds a validated model.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bps` is non-positive or non-finite, `rtt_s`
    /// is negative or non-finite, or `loss` leaves `[0, 1)`.
    pub fn checked(bandwidth_bps: f64, rtt_s: f64, loss: f64) -> Self {
        assert!(
            bandwidth_bps.is_finite() && bandwidth_bps > 0.0,
            "bandwidth must be finite and positive"
        );
        assert!(rtt_s.is_finite() && rtt_s >= 0.0, "RTT must be finite and non-negative");
        NetworkModel { bandwidth_bps, rtt_s, loss_prob: 0.0 }.with_loss(loss)
    }

    /// Returns the model with packet loss injected.
    ///
    /// # Panics
    ///
    /// Panics unless `loss` is in `[0, 1)`.
    pub fn with_loss(mut self, loss: f64) -> Self {
        assert!((0.0..1.0).contains(&loss), "loss probability must be in [0, 1)");
        self.loss_prob = loss;
        self
    }

    /// Expected goodput multiplier under loss: each byte is sent
    /// `1 / (1 − p)` times on average (simple ARQ).
    fn loss_inflation(&self) -> f64 {
        1.0 / (1.0 - self.loss_prob)
    }

    /// Expected time to transfer `bytes`, seconds (excluding the request
    /// RTT), including retransmissions.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        bytes as f64 * 8.0 * self.loss_inflation() / self.bandwidth_bps
    }

    /// Expected bytes on the air to deliver `bytes` of payload — what the
    /// radio actually spends energy on under loss.
    pub fn wire_bytes(&self, bytes: u64) -> u64 {
        (bytes as f64 * self.loss_inflation()).round() as u64
    }

    /// Rendering pause caused by a mid-segment fallback fetch: one RTT
    /// (plus loss-expected retries of the request itself) plus the
    /// transfer of the leading intra frame; the remaining frames stream
    /// ahead of the 30 FPS playback clock.
    pub fn rebuffer_time(&self, intra_frame_bytes: u64) -> f64 {
        self.rtt_s * self.loss_inflation() + self.transfer_time(intra_frame_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_matches_bandwidth() {
        let n = NetworkModel::default();
        // 37.5 MB/s → 1 MB in ~26.7 ms.
        assert!((n.transfer_time(1_000_000) - 0.0267).abs() < 0.001);
    }

    #[test]
    fn rebuffer_of_typical_intra_frame_is_single_digit_ms() {
        // Paper §8.2: at most 8 ms per missed segment. A 4K intra frame
        // at ~25 Mbps is roughly 200 kB.
        let n = NetworkModel::default();
        let t = n.rebuffer_time(200_000);
        assert!(t < 0.008, "rebuffer {t} s");
    }

    #[test]
    fn rebuffer_includes_rtt() {
        let n = NetworkModel { bandwidth_bps: 1e12, rtt_s: 0.005, loss_prob: 0.0 };
        assert!((n.rebuffer_time(100) - 0.005).abs() < 1e-6);
    }
}

#[cfg(test)]
mod loss_tests {
    use super::*;

    #[test]
    fn loss_inflates_transfer_time_and_wire_bytes() {
        let clean = NetworkModel::default();
        let lossy = NetworkModel::default().with_loss(0.2);
        assert!(lossy.transfer_time(1_000_000) > clean.transfer_time(1_000_000));
        assert_eq!(lossy.wire_bytes(1_000_000), 1_250_000);
        assert_eq!(clean.wire_bytes(1_000_000), 1_000_000);
    }

    #[test]
    fn rebuffer_grows_smoothly_with_loss() {
        let mut prev = 0.0;
        for loss in [0.0, 0.05, 0.1, 0.2, 0.4] {
            let t = NetworkModel::default().with_loss(loss).rebuffer_time(200_000);
            assert!(t > prev, "loss {loss}: {t}");
            prev = t;
        }
        // Even at 40% loss a fallback pause stays around one frame slot.
        assert!(prev < 0.04, "{prev}");
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn full_loss_is_rejected() {
        let _ = NetworkModel::default().with_loss(1.0);
    }

    #[test]
    fn checked_accepts_the_default_link() {
        let d = NetworkModel::default();
        assert_eq!(NetworkModel::checked(d.bandwidth_bps, d.rtt_s, d.loss_prob), d);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn checked_rejects_zero_bandwidth() {
        let _ = NetworkModel::checked(0.0, 0.002, 0.0);
    }

    #[test]
    #[should_panic(expected = "RTT")]
    fn checked_rejects_negative_rtt() {
        let _ = NetworkModel::checked(300e6, -0.001, 0.0);
    }
}
