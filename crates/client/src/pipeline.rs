//! The staged per-segment playback pipeline.
//!
//! Every playback flavour — clean streaming, tiled view-guided
//! streaming, fault-resilient streaming — used to be its own
//! hand-maintained loop in `session.rs`. They are all the same four
//! stages per segment:
//!
//! ```text
//! plan → fetch → decode/render → account
//! ```
//!
//! * **plan** samples the segment's link state and picks the FOV stream
//!   (SAS paths only);
//! * **fetch** walks the degradation ladder (FOV video → full-quality
//!   original → lower-bitrate rung → freeze) through a [`Transport`],
//!   which decides how requests reach the server and what can go wrong
//!   on the way back ([`CleanTransport`] never fails; a
//!   [`FaultedTransport`] runs every rung under the `evr-faults` retry
//!   policy);
//! * **decode/render** plays the delivered frames, dispatching
//!   on-device projective transformation to a [`RenderBackend`]
//!   ([`GpuBackend`], [`PteBackend`], or the degenerate
//!   [`FovPassthrough`] on FOV-check hits, which needs no PT at all);
//! * **account** charges the per-segment session costs (GPU context
//!   power) into the [`EnergyLedger`].
//!
//! [`PlaybackSession::run`], [`PlaybackSession::run_tiled`] and
//! [`PlaybackSession::run_resilient`] are thin configurations of this
//! one pipeline; `tests/pipeline_parity.rs` pins their reports
//! bit-identical to the pre-unification loops.
//!
//! [`PlaybackSession::run`]: crate::session::PlaybackSession::run
//! [`PlaybackSession::run_tiled`]: crate::session::PlaybackSession::run_tiled
//! [`PlaybackSession::run_resilient`]: crate::session::PlaybackSession::run_resilient

use std::sync::Arc;
use std::time::Instant;

use evr_energy::{Activity, Component, DeviceParams, EnergyLedger};
use evr_faults::{FaultInjector, FaultSetup, FrontGate, LinkState, RequestFate};
use evr_obs::{names, Observer, TraceCtx};
use evr_projection::FovFrameMeta;
use evr_pte::{FrameStats, GpuModel, Pte};
use evr_sas::checker::{CheckOutcome, FovChecker};
use evr_sas::ingest::FPS;
use evr_sas::{PrerenderedFov, Request, Response, SasServer};
use evr_trace::HeadTrace;
use evr_video::codec::EncodedSegment;

use crate::network::NetworkModel;
use crate::session::{
    frame_wire_bytes, FaultSummary, PlaybackReport, PlaybackSession, SelectionPolicy, SessionConfig,
};

/// Pre-resolved playback metric handles; all detached (free) when the
/// session's observer is a no-op. Public so [`RenderBackend`]
/// implementations can receive it; the individual handles stay
/// crate-private.
#[derive(Debug, Clone, Default)]
pub struct SessionMetrics {
    pub(crate) enabled: bool,
    pub(crate) frames: evr_obs::Counter,
    pub(crate) fov_hits: evr_obs::Counter,
    pub(crate) fov_misses: evr_obs::Counter,
    pub(crate) fallback_frames: evr_obs::Counter,
    pub(crate) rebuffer_events: evr_obs::Counter,
    pub(crate) rebuffer_seconds: evr_obs::Gauge,
    pub(crate) segments: evr_obs::Counter,
    pub(crate) fetch_bytes: evr_obs::Counter,
    pub(crate) frame_seconds: evr_obs::Histogram,
    pub(crate) pt_gpu_frames: evr_obs::Counter,
    pub(crate) pt_pte_frames: evr_obs::Counter,
    pub(crate) pte_frames: evr_obs::Counter,
    pub(crate) pte_active_cycles: evr_obs::Counter,
    pub(crate) pte_stall_cycles: evr_obs::Counter,
    pub(crate) pte_pmem_hits: evr_obs::Counter,
    pub(crate) pte_pmem_misses: evr_obs::Counter,
    pub(crate) fault_retries: evr_obs::Counter,
    pub(crate) fault_timeouts: evr_obs::Counter,
    pub(crate) degraded_frames: evr_obs::Counter,
    pub(crate) frozen_frames: evr_obs::Counter,
    pub(crate) backoff_seconds: evr_obs::Gauge,
    pub(crate) fault_stall_seconds: evr_obs::Histogram,
    pub(crate) stage_plan: evr_obs::Histogram,
    pub(crate) stage_fetch: evr_obs::Histogram,
    pub(crate) stage_render: evr_obs::Histogram,
    pub(crate) stage_account: evr_obs::Histogram,
}

/// Fault-stall histogram bounds, seconds: backoff waits (tens of ms) up
/// to multi-second outage-ladder stalls.
pub(crate) const STALL_BOUNDS_S: [f64; 10] =
    [0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0];

impl SessionMetrics {
    pub(crate) fn resolve(observer: &Observer) -> Self {
        let stage = |name: &str| {
            observer.histogram(&names::pipeline_stage_seconds(name), &evr_obs::LATENCY_BOUNDS_S)
        };
        SessionMetrics {
            enabled: observer.is_enabled(),
            frames: observer.counter(names::FRAMES),
            fov_hits: observer.counter(names::FOV_HITS),
            fov_misses: observer.counter(names::FOV_MISSES),
            fallback_frames: observer.counter(names::FALLBACK_FRAMES),
            rebuffer_events: observer.counter(names::REBUFFER_EVENTS),
            rebuffer_seconds: observer.gauge(names::REBUFFER_SECONDS),
            segments: observer.counter(names::SEGMENTS),
            fetch_bytes: observer.counter(names::FETCH_BYTES),
            frame_seconds: observer.histogram(names::FRAME_SECONDS, &evr_obs::LATENCY_BOUNDS_S),
            pt_gpu_frames: observer.counter(names::PT_GPU_FRAMES),
            pt_pte_frames: observer.counter(names::PT_PTE_FRAMES),
            pte_frames: observer.counter(names::PTE_FRAMES),
            pte_active_cycles: observer.counter(names::PTE_ACTIVE_CYCLES),
            pte_stall_cycles: observer.counter(names::PTE_STALL_CYCLES),
            pte_pmem_hits: observer.counter(names::PTE_PMEM_HITS),
            pte_pmem_misses: observer.counter(names::PTE_PMEM_MISSES),
            fault_retries: observer.counter(names::FAULT_RETRIES),
            fault_timeouts: observer.counter(names::FAULT_TIMEOUTS),
            degraded_frames: observer.counter(names::DEGRADED_FRAMES),
            frozen_frames: observer.counter(names::FROZEN_FRAMES),
            backoff_seconds: observer.gauge(names::BACKOFF_SECONDS),
            fault_stall_seconds: observer.histogram(names::FAULT_STALL_SECONDS, &STALL_BOUNDS_S),
            stage_plan: stage("plan"),
            stage_fetch: stage("fetch"),
            stage_render: stage("render"),
            stage_account: stage("account"),
        }
    }
}

/// The per-segment link view the fetch stage operates under.
#[derive(Debug, Clone, Copy)]
pub struct SegmentLink {
    /// Effective network model: the sampled fault-process state when a
    /// time-varying link is attached, the session's static model
    /// otherwise.
    pub net: NetworkModel,
    /// Whether the link is up at the segment boundary.
    pub up: bool,
}

/// The mutable run state a [`Transport`] may touch while fetching:
/// stalls burn energy and are counted as they happen.
pub struct StageIo<'a> {
    /// Energy ledger of the run.
    pub ledger: &'a mut EnergyLedger,
    /// Fault bookkeeping of the run.
    pub faults: &'a mut FaultSummary,
    /// Device energy parameters.
    pub device: &'a DeviceParams,
    /// The session's observer.
    pub observer: &'a Observer,
    pub(crate) metrics: &'a SessionMetrics,
}

impl StageIo<'_> {
    /// Accounts `dt` seconds of fault-induced stall: playback pauses
    /// while the radio idles and base power keeps burning.
    pub fn account_stall(&mut self, dt: f64) {
        self.faults.stall_time_s += dt;
        self.ledger.add(
            Component::Network,
            Activity::Resilience,
            self.device.network_energy(0, dt),
        );
        self.ledger.add(Component::Compute, Activity::Resilience, self.device.base_energy(dt));
        if self.metrics.enabled {
            self.metrics.fault_stall_seconds.observe(dt);
        }
    }
}

/// The fetch stage: how segment requests reach the server and what can
/// go wrong on the way back.
pub trait Transport {
    /// Whether radio wire bytes are accumulated per segment against the
    /// sampled link (its loss inflation varies over the run) instead of
    /// once at end-of-run against the session's static model. The two
    /// differ by per-segment rounding, so the distinction is load-bearing
    /// for report parity.
    const PER_SEGMENT_WIRE: bool;

    /// Samples the link for the segment starting at media time `media_t`
    /// with `stall_s` of accumulated stalls pushing the wall clock
    /// forward (outage windows and link profiles are indexed by it).
    fn segment_link(&mut self, base: &NetworkModel, media_t: f64, stall_s: f64) -> SegmentLink;

    /// One rung of the degradation ladder: delivers `wire_payload` bytes
    /// for segment `seg`, accounting retries, timeouts and stalls
    /// through `io` as they happen. Returns whether the rung delivered.
    fn fetch(
        &mut self,
        io: &mut StageIo<'_>,
        link: &SegmentLink,
        media_t: f64,
        seg: u32,
        wire_payload: u64,
    ) -> bool;

    /// Whether segment `seg`'s FOV payload arrives corrupt (detected by
    /// the leading intra decode after the transfer was paid for).
    fn corrupts(&mut self, seg: u32) -> bool;

    /// Byte scale of the degraded lower-bitrate rung.
    fn low_rung_scale(&self) -> f64;

    /// Consults the serving front's admission control before the FOV
    /// rung of segment `seg` (media time `media_t`, `stall_s` of
    /// accumulated stalls pushing the wall clock). The default — and
    /// the clean transport — always serves with zero queueing, so the
    /// gate folds away entirely on the clean path.
    fn front_gate(&mut self, _media_t: f64, _stall_s: f64, _seg: u32, _content: u64) -> FrontGate {
        FrontGate::Serve { queue_delay_s: 0.0 }
    }

    /// Whether this transport moves delta representations on the wire
    /// (DESIGN.md §16): FOV upgrades arrive as sparse residuals against
    /// the rung the client already holds whenever the server's delta is
    /// smaller, and the client pays the reconstruction energy. Off by
    /// default — every stock transport ships full encodings, and
    /// playback reports are pinned bit-identical either way.
    fn delta_wire(&self) -> bool {
        false
    }
}

/// Opts any transport into the delta wire format
/// ([`Transport::delta_wire`]) without changing its link, fault or
/// admission behaviour.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeltaWire<T>(pub T);

impl<T: Transport> Transport for DeltaWire<T> {
    const PER_SEGMENT_WIRE: bool = T::PER_SEGMENT_WIRE;

    fn segment_link(&mut self, base: &NetworkModel, media_t: f64, stall_s: f64) -> SegmentLink {
        self.0.segment_link(base, media_t, stall_s)
    }

    fn fetch(
        &mut self,
        io: &mut StageIo<'_>,
        link: &SegmentLink,
        media_t: f64,
        seg: u32,
        wire_payload: u64,
    ) -> bool {
        self.0.fetch(io, link, media_t, seg, wire_payload)
    }

    fn corrupts(&mut self, seg: u32) -> bool {
        self.0.corrupts(seg)
    }

    fn low_rung_scale(&self) -> f64 {
        self.0.low_rung_scale()
    }

    fn front_gate(&mut self, media_t: f64, stall_s: f64, seg: u32, content: u64) -> FrontGate {
        self.0.front_gate(media_t, stall_s, seg, content)
    }

    fn delta_wire(&self) -> bool {
        true
    }
}

/// A fault-free network (or local storage): every request is served
/// immediately over the session's static link model.
#[derive(Debug, Clone, Copy, Default)]
pub struct CleanTransport;

impl Transport for CleanTransport {
    const PER_SEGMENT_WIRE: bool = false;

    #[inline]
    fn segment_link(&mut self, base: &NetworkModel, _media_t: f64, _stall_s: f64) -> SegmentLink {
        SegmentLink { net: *base, up: true }
    }

    #[inline]
    fn fetch(
        &mut self,
        _io: &mut StageIo<'_>,
        _link: &SegmentLink,
        _media_t: f64,
        _seg: u32,
        _wire_payload: u64,
    ) -> bool {
        true
    }

    #[inline]
    fn corrupts(&mut self, _seg: u32) -> bool {
        false
    }

    fn low_rung_scale(&self) -> f64 {
        1.0
    }
}

/// A link under deterministic fault injection: every rung is fetched
/// under the setup's retry policy — requests time out on server
/// outages, dropped requests, dead links and transfers slower than the
/// deadline, and are re-attempted after an exponentially growing,
/// deterministically jittered backoff wait.
#[derive(Debug)]
pub struct FaultedTransport {
    injector: FaultInjector,
}

impl FaultedTransport {
    /// Builds the transport from a fault setup (seeds the injector).
    pub fn new(setup: &FaultSetup) -> Self {
        FaultedTransport { injector: FaultInjector::new(setup) }
    }
}

impl Transport for FaultedTransport {
    const PER_SEGMENT_WIRE: bool = true;

    fn segment_link(&mut self, base: &NetworkModel, media_t: f64, stall_s: f64) -> SegmentLink {
        let link = self.injector.link_for(media_t + stall_s);
        SegmentLink { net: effective_network(base, link), up: link.is_none_or(|l| l.is_up()) }
    }

    fn fetch(
        &mut self,
        io: &mut StageIo<'_>,
        link: &SegmentLink,
        media_t: f64,
        seg: u32,
        wire_payload: u64,
    ) -> bool {
        let m = io.metrics;
        let obs = io.observer;
        let observed = obs.is_enabled();
        let policy = *self.injector.retry();
        for attempt in 0..=policy.max_retries {
            if attempt > 0 {
                let b = self.injector.backoff_s(attempt - 1);
                io.faults.retries += 1;
                io.faults.backoff_time_s += b;
                io.account_stall(b);
                if observed {
                    m.fault_retries.inc();
                    m.backoff_seconds.add(b);
                }
            }
            // Stalls push the wall clock forward, so an outage window
            // can end while the client is still backing off.
            let now = media_t + io.faults.stall_time_s;
            let delivered = match self.injector.request_fate(now, seg) {
                RequestFate::Outage | RequestFate::Dropped => false,
                RequestFate::Delivered => {
                    link.up
                        && link.net.rtt_s + link.net.transfer_time(wire_payload) <= policy.timeout_s
                }
            };
            if delivered {
                // A scheduled late delivery stalls playback but does not
                // trip the timeout (the bytes are flowing).
                let late = self.injector.late_delay(seg);
                if late > 0.0 {
                    io.account_stall(late);
                }
                return true;
            }
            io.faults.timeouts += 1;
            io.account_stall(policy.timeout_s);
            if observed {
                m.fault_timeouts.inc();
                obs.mark(names::MARK_FAULT_TIMEOUT, -1, seg as i64, policy.timeout_s);
            }
        }
        false
    }

    fn corrupts(&mut self, seg: u32) -> bool {
        self.injector.corrupts(seg)
    }

    fn low_rung_scale(&self) -> f64 {
        self.injector.low_rung_scale()
    }

    fn front_gate(&mut self, media_t: f64, stall_s: f64, seg: u32, content: u64) -> FrontGate {
        // Stalls push the wall clock, so an outage window can end while
        // the client is stalled — same convention as `fetch`.
        self.injector.front_gate(media_t + stall_s, content, seg)
    }
}

/// The decode/render stage's on-device projective-transform hardware.
pub trait RenderBackend {
    /// Accounts one frame of on-device PT into `ledger`; returns whether
    /// the GPU ran (GPU context power is charged per segment by the
    /// account stage).
    fn render(&self, ledger: &mut EnergyLedger, slot: f64) -> bool;

    /// Mirrors one rendered frame's PT stats into the metric handles.
    /// The pipeline calls this on observed runs only, keeping the quiet
    /// path identical to an uninstrumented session.
    fn note_metrics(&self, m: &SessionMetrics);
}

/// Texture-mapping PT on the mobile GPU (today's path).
#[derive(Debug, Clone, Copy)]
pub struct GpuBackend {
    gpu: GpuModel,
    device: DeviceParams,
}

impl GpuBackend {
    /// Builds the backend from a session configuration.
    pub fn new(cfg: &SessionConfig) -> Self {
        GpuBackend { gpu: cfg.gpu, device: cfg.device }
    }
}

impl RenderBackend for GpuBackend {
    #[inline]
    fn render(&self, ledger: &mut EnergyLedger, _slot: f64) -> bool {
        let cost = self.gpu.pt_frame(self.device.panel_pixels);
        ledger.add(Component::Compute, Activity::ProjectiveTransform, cost.energy_j);
        ledger.add(
            Component::Memory,
            Activity::ProjectiveTransform,
            self.device.dram_energy(cost.dram_bytes),
        );
        true
    }

    fn note_metrics(&self, m: &SessionMetrics) {
        m.pt_gpu_frames.inc();
    }
}

/// The PTE accelerator (HAR), with the session's pre-analysed
/// representative frame cost.
#[derive(Debug, Clone, Copy)]
pub struct PteBackend {
    frame: FrameStats,
    leakage_w: f64,
    device: DeviceParams,
}

impl PteBackend {
    /// Builds the backend from a session configuration and its
    /// pre-analysed PTE frame cost.
    pub fn new(cfg: &SessionConfig, frame: FrameStats) -> Self {
        PteBackend {
            frame,
            leakage_w: Pte::new(cfg.pte).energy_params().leakage_w,
            device: cfg.device,
        }
    }
}

impl RenderBackend for PteBackend {
    #[inline]
    fn render(&self, ledger: &mut EnergyLedger, slot: f64) -> bool {
        let s = &self.frame;
        // Datapath + SRAM + leakage for the whole frame slot (the PTE
        // stays powered across slots it renders in).
        let idle = (slot - s.frame_time_s()).max(0.0) * self.leakage_w;
        ledger.add(
            Component::Compute,
            Activity::ProjectiveTransform,
            s.compute_energy_j + s.sram_energy_j + s.leakage_energy_j + idle,
        );
        ledger.add(
            Component::Memory,
            Activity::ProjectiveTransform,
            self.device.dram_energy(s.dram_read_bytes + s.dram_write_bytes),
        );
        false
    }

    fn note_metrics(&self, m: &SessionMetrics) {
        // Mirror the (pre-analysed, representative) PTU stats of this
        // rendered frame into the engine counters.
        let s = &self.frame;
        m.pt_pte_frames.inc();
        m.pte_frames.inc();
        m.pte_active_cycles.add(s.active_cycles);
        m.pte_stall_cycles.add(s.stall_cycles);
        m.pte_pmem_hits.add(s.pmem_hits);
        m.pte_pmem_misses.add(s.pmem_misses);
    }
}

/// Direct display of a served FOV frame: the render stage degenerates
/// to the decode alone — no on-device PT, no GPU context.
#[derive(Debug, Clone, Copy, Default)]
pub struct FovPassthrough;

impl RenderBackend for FovPassthrough {
    #[inline]
    fn render(&self, _ledger: &mut EnergyLedger, _slot: f64) -> bool {
        false
    }

    fn note_metrics(&self, _m: &SessionMetrics) {}
}

/// A delivered FOV payload: borrowed straight from the catalog logs, or
/// an owned, refcounted pre-render out of the server's shared
/// [`evr_sas::FovPrerenderStore`]. The bytes are identical either way
/// (the store is populated from the same render), so the decode/render
/// stage is oblivious to the provenance.
enum FovPayload<'a> {
    /// Served by [`SasServer::try_handle`]: borrows the catalog.
    Borrowed {
        /// The encoded FOV stream.
        fov_seg: &'a EncodedSegment,
        /// Per-frame orientation metadata.
        meta: &'a [FovFrameMeta],
    },
    /// Served by [`SasServer::fetch_fov`] out of the pre-render store.
    Stored(Arc<PrerenderedFov>),
}

impl FovPayload<'_> {
    /// The encoded stream and its orientation metadata, wherever they
    /// live.
    fn parts(&self) -> (&EncodedSegment, &[FovFrameMeta]) {
        match self {
            FovPayload::Borrowed { fov_seg, meta } => (fov_seg, meta),
            FovPayload::Stored(fov) => (&fov.data, fov.meta.as_slice()),
        }
    }
}

/// Where a segment's content came from after the degradation ladder ran.
enum SegmentSource<'a> {
    /// The requested FOV video (the clean happy path).
    Fov {
        /// The delivered payload (catalog borrow or store pre-render).
        payload: FovPayload<'a>,
    },
    /// The original panorama at `byte_scale` of its full wire size;
    /// `degraded` marks the lower-bitrate rung.
    Original { byte_scale: f64, degraded: bool },
    /// Nothing arrived: the last frame stays on screen.
    Freeze,
}

/// Per-run byte/frame geometry, precomputed once.
#[derive(Debug, Clone, Copy)]
struct Geometry {
    fov_scale: f64,
    src_scale: f64,
    src_px: u64,
    fov_px: u64,
    slot: f64,
}

impl Geometry {
    fn of(cfg: &SessionConfig) -> Self {
        Geometry {
            fov_scale: cfg.sas.fov_byte_scale(),
            src_scale: cfg.sas.src_byte_scale(),
            src_px: cfg.sas.target_src.0 as u64 * cfg.sas.target_src.1 as u64,
            fov_px: cfg.sas.target_fov.0 as u64 * cfg.sas.target_fov.1 as u64,
            slot: 1.0 / FPS,
        }
    }
}

/// Mutable state accumulated across a run.
struct RunState {
    ledger: EnergyLedger,
    checker: FovChecker,
    fallback_frames: u64,
    frames_total: u64,
    rebuffer_events: u64,
    rebuffer_time_s: f64,
    bytes_received: u64,
    storage_read_bytes: u64,
    wire_bytes_total: u64,
    faults: FaultSummary,
}

impl RunState {
    fn new(fov: evr_projection::FovSpec) -> Self {
        RunState {
            ledger: EnergyLedger::new(),
            checker: FovChecker::new(fov),
            fallback_frames: 0,
            frames_total: 0,
            rebuffer_events: 0,
            rebuffer_time_s: 0.0,
            bytes_received: 0,
            storage_read_bytes: 0,
            wire_bytes_total: 0,
            faults: FaultSummary::default(),
        }
    }
}

#[inline]
fn observe_stage(h: &evr_obs::Histogram, t0: Option<Instant>) {
    if let Some(t0) = t0 {
        h.observe(t0.elapsed().as_secs_f64());
    }
}

/// One staged playback run: the `plan → fetch → decode/render →
/// account` loop, generic over the [`Transport`] (clean vs faulted
/// link) and the [`RenderBackend`] (GPU vs PTE fallback rendering).
/// Monomorphised per combination, so the clean unobserved path keeps
/// the tight codegen of the original hand-written loop.
pub(crate) struct SegmentPipeline<'s, T, R> {
    session: &'s PlaybackSession,
    server: &'s SasServer,
    trace: &'s HeadTrace,
    transport: T,
    backend: R,
    /// Who this run is for; recorded (narrowed per segment) on every
    /// timeline interval when the observer carries an enabled timeline.
    ctx: TraceCtx,
}

impl<'s, T: Transport, R: RenderBackend> SegmentPipeline<'s, T, R> {
    pub(crate) fn new(
        session: &'s PlaybackSession,
        server: &'s SasServer,
        trace: &'s HeadTrace,
        transport: T,
        backend: R,
        ctx: TraceCtx,
    ) -> Self {
        SegmentPipeline { session, server, trace, transport, backend, ctx }
    }

    /// Drives the four stages over every segment, then settles the
    /// session-wide energy components.
    pub(crate) fn run(mut self) -> PlaybackReport {
        let session = self.session;
        let server = self.server;
        let cfg = &session.cfg;
        let obs = &session.observer;
        let m = &session.metrics;
        let observed = obs.is_enabled();
        // The timeline is opt-in on top of an enabled observer; `timed`
        // is hoisted so an untimed run skips every clock read below.
        let tl = session.observer.timeline();
        let timed = tl.is_enabled();
        let catalog = server.catalog();
        let geom = Geometry::of(cfg);
        let mut st = RunState::new(cfg.sas.device_fov);

        for seg in 0..catalog.segment_count() {
            let _seg_span = observed.then(|| obs.span(names::SPAN_SEGMENT, -1, seg as i64));
            let mut ctx = self.ctx.with_segment(seg as i64);
            m.segments.inc();
            let original = catalog.original_segment(seg);
            let n = original.frames.len() as u64;
            let seg_start_t = original.start_index as f64 / FPS;
            let seg_duration = n as f64 / FPS;
            let orig_bytes = catalog.original_target_bytes(seg);

            // plan: sample the segment's link, pick the FOV stream.
            let t0 = observed.then(Instant::now);
            let ts = timed.then(|| tl.now_ns());
            let link =
                self.transport.segment_link(&cfg.network, seg_start_t, st.faults.stall_time_s);
            let chosen = if cfg.path.uses_sas() {
                server.best_cluster(seg, selection_pose(cfg, self.trace, seg_start_t))
            } else {
                None
            };
            observe_stage(&m.stage_plan, t0);
            if let Some(ts) = ts {
                tl.record("plan", ctx, ts, tl.now_ns());
            }

            // fetch: walk the degradation ladder until a rung delivers.
            // `acquire` stamps the server request id into `ctx`, so the
            // fetch interval below carries it for the exemplar table.
            let t0 = observed.then(Instant::now);
            let ts = timed.then(|| tl.now_ns());
            let source =
                self.acquire(&mut st, &link, seg, seg_start_t, chosen, orig_bytes, &geom, &mut ctx);
            observe_stage(&m.stage_fetch, t0);
            if let Some(ts) = ts {
                tl.record("fetch", ctx, ts, tl.now_ns());
            }

            // decode/render: play the delivered frames.
            let t0 = observed.then(Instant::now);
            let ts = timed.then(|| tl.now_ns());
            let gpu_used = match source {
                SegmentSource::Fov { payload } => {
                    let (fov_seg, meta) = payload.parts();
                    self.play_fov(
                        &mut st,
                        &link,
                        seg,
                        seg_start_t,
                        original,
                        orig_bytes,
                        fov_seg,
                        meta,
                        &geom,
                    )
                }
                SegmentSource::Original { byte_scale, degraded } => {
                    self.play_original(&mut st, seg, original, byte_scale, degraded, &geom)
                }
                SegmentSource::Freeze => {
                    self.freeze(&mut st, seg, n);
                    false
                }
            };
            observe_stage(&m.stage_render, t0);
            if let Some(ts) = ts {
                tl.record("render", ctx, ts, tl.now_ns());
            }

            // account: keeping the GPU context alive costs session power
            // for the whole segment in which the GPU ran at all (§3:
            // invoking the GPU "necessarily invokes the entire software
            // stack").
            let t0 = observed.then(Instant::now);
            let ts = timed.then(|| tl.now_ns());
            if gpu_used {
                st.ledger.add(
                    Component::Compute,
                    Activity::ProjectiveTransform,
                    cfg.gpu.session_energy(seg_duration),
                );
            }
            observe_stage(&m.stage_account, t0);
            if let Some(ts) = ts {
                tl.record("account", ctx, ts, tl.now_ns());
            }
        }

        self.finish(st)
    }

    /// The fetch stage: walks the degradation ladder — FOV video →
    /// full-quality original → lower-bitrate rung → freeze — until a
    /// rung delivers. On a [`CleanTransport`] the first applicable rung
    /// always succeeds and the lower rungs fold away.
    #[allow(clippy::too_many_arguments)]
    fn acquire(
        &mut self,
        st: &mut RunState,
        link: &SegmentLink,
        seg: u32,
        seg_start_t: f64,
        chosen: Option<usize>,
        orig_bytes: u64,
        geom: &Geometry,
        ctx: &mut TraceCtx,
    ) -> SegmentSource<'s> {
        let session = self.session;
        let server = self.server;
        let cfg = &session.cfg;
        let obs = &session.observer;
        let m = &session.metrics;
        let observed = obs.is_enabled();

        let mut source: Option<SegmentSource<'s>> = None;
        // The serving front's admission gate sits before the FOV rung:
        // a shed response skips straight to the low rung (the shed
        // payload *is* the low-rung original), an unavailable shard
        // descends the ladder normally. Clean transports always serve
        // with zero queueing, so this folds away on the clean path.
        let mut front_shed = false;
        let fov_admitted = match chosen {
            None => false,
            Some(_) => {
                let content = server.catalog().content_id();
                match self.transport.front_gate(seg_start_t, st.faults.stall_time_s, seg, content) {
                    FrontGate::Serve { queue_delay_s } => {
                        if queue_delay_s > 0.0 {
                            let mut io = StageIo {
                                ledger: &mut st.ledger,
                                faults: &mut st.faults,
                                device: &cfg.device,
                                observer: obs,
                                metrics: m,
                            };
                            io.account_stall(queue_delay_s);
                        }
                        true
                    }
                    FrontGate::Shed { latency_s } => {
                        let mut io = StageIo {
                            ledger: &mut st.ledger,
                            faults: &mut st.faults,
                            device: &cfg.device,
                            observer: obs,
                            metrics: m,
                        };
                        io.account_stall(latency_s);
                        st.faults.shed_segments += 1;
                        if observed {
                            obs.mark(names::MARK_FRONT_SHED, -1, seg as i64, latency_s);
                        }
                        front_shed = true;
                        false
                    }
                    FrontGate::Unavailable { latency_s } => {
                        if latency_s > 0.0 {
                            let mut io = StageIo {
                                ledger: &mut st.ledger,
                                faults: &mut st.faults,
                                device: &cfg.device,
                                observer: obs,
                                metrics: m,
                            };
                            io.account_stall(latency_s);
                        }
                        st.faults.front_unavailable_segments += 1;
                        if observed {
                            obs.mark(names::MARK_FRONT_UNAVAILABLE, -1, seg as i64, latency_s);
                        }
                        false
                    }
                }
            }
        };
        if let (true, Some(cluster)) = (fov_admitted, chosen) {
            // Store-backed servers hand out refcounted pre-renders (the
            // fleet-scale path: many sessions share one resident copy);
            // store-less servers lend the catalog's bytes directly. The
            // payload bytes are identical, so the rest of the ladder and
            // the report are too.
            let fetched: Option<(FovPayload<'s>, u64)> = if server.has_store() {
                // Request-scoped tracing: on timed runs the request id
                // ties this client's fetch interval to the server-side
                // `sas_fetch_fov` interval it caused.
                let tl = obs.timeline();
                if tl.is_enabled() {
                    ctx.request = tl.next_request_id();
                }
                server
                    .fetch_fov_traced(seg, cluster, *ctx)
                    .ok()
                    .map(|(p, w)| (FovPayload::Stored(p), w))
            } else {
                match server.try_handle(Request::FovVideo { segment: seg, cluster }) {
                    Ok(Response::FovVideo { segment: fov_seg, meta, wire_bytes }) => {
                        Some((FovPayload::Borrowed { fov_seg, meta }, wire_bytes))
                    }
                    _ => None,
                }
            };
            if let Some((payload, wire_bytes)) = fetched {
                let mut io = StageIo {
                    ledger: &mut st.ledger,
                    faults: &mut st.faults,
                    device: &cfg.device,
                    observer: obs,
                    metrics: m,
                };
                if self.transport.fetch(&mut io, link, seg_start_t, seg, wire_bytes) {
                    st.bytes_received += wire_bytes;
                    if T::PER_SEGMENT_WIRE {
                        st.wire_bytes_total += link.net.wire_bytes(wire_bytes);
                    }
                    m.fetch_bytes.add(wire_bytes);
                    if self.transport.corrupts(seg) {
                        // The transfer was paid for; the leading intra
                        // decode detects the corruption, then the ladder
                        // descends.
                        st.faults.corrupt_segments += 1;
                        let d = &cfg.device;
                        let (fov_seg, _) = payload.parts();
                        let intra = frame_wire_bytes(&fov_seg.frames[0], geom.fov_scale);
                        st.ledger.add(
                            Component::Compute,
                            Activity::Resilience,
                            d.decode_energy(geom.fov_px, intra),
                        );
                        st.ledger.add(
                            Component::Memory,
                            Activity::Resilience,
                            d.dram_energy(d.decode_dram_bytes(geom.fov_px)),
                        );
                    } else {
                        source = Some(SegmentSource::Fov { payload });
                    }
                }
            }
        }
        // A front shed skips the full-quality rung: the front already
        // answered with the low-rung original, so asking it for the
        // full original would defeat the load shedding.
        if source.is_none() && !front_shed {
            if cfg.path.uses_network() {
                let mut io = StageIo {
                    ledger: &mut st.ledger,
                    faults: &mut st.faults,
                    device: &cfg.device,
                    observer: obs,
                    metrics: m,
                };
                if self.transport.fetch(&mut io, link, seg_start_t, seg, orig_bytes) {
                    st.bytes_received += orig_bytes;
                    if T::PER_SEGMENT_WIRE {
                        st.wire_bytes_total += link.net.wire_bytes(orig_bytes);
                    }
                    m.fetch_bytes.add(orig_bytes);
                    source = Some(SegmentSource::Original { byte_scale: 1.0, degraded: false });
                }
            } else {
                st.storage_read_bytes += orig_bytes;
                source = Some(SegmentSource::Original { byte_scale: 1.0, degraded: false });
            }
        }
        if source.is_none() {
            let low_scale = self.transport.low_rung_scale();
            let low_bytes = (orig_bytes as f64 * low_scale).round() as u64;
            if observed {
                obs.mark(names::MARK_DEGRADE, -1, seg as i64, 2.0);
            }
            let mut io = StageIo {
                ledger: &mut st.ledger,
                faults: &mut st.faults,
                device: &cfg.device,
                observer: obs,
                metrics: m,
            };
            if self.transport.fetch(&mut io, link, seg_start_t, seg, low_bytes) {
                st.bytes_received += low_bytes;
                if T::PER_SEGMENT_WIRE {
                    st.wire_bytes_total += link.net.wire_bytes(low_bytes);
                }
                m.fetch_bytes.add(low_bytes);
                source = Some(SegmentSource::Original { byte_scale: low_scale, degraded: true });
            }
        }
        source.unwrap_or(SegmentSource::Freeze)
    }

    /// Plays a delivered FOV segment: per frame, FOV-check hit → direct
    /// display ([`FovPassthrough`]); first miss → mid-segment fallback
    /// fetch of the original, catch-up decode of its reference chain,
    /// and on-device PT for the segment's remainder.
    #[allow(clippy::too_many_arguments)]
    fn play_fov(
        &self,
        st: &mut RunState,
        link: &SegmentLink,
        seg: u32,
        seg_start_t: f64,
        original: &EncodedSegment,
        orig_bytes: u64,
        fov_seg: &EncodedSegment,
        meta: &[FovFrameMeta],
        geom: &Geometry,
    ) -> bool {
        let session = self.session;
        let cfg = &session.cfg;
        let obs = &session.observer;
        let m = &session.metrics;
        let observed = obs.is_enabled();
        let n = original.frames.len();
        let mut gpu_used = false;
        let mut fell_back = false;
        #[allow(clippy::needless_range_loop)] // indexes three parallel sequences
        for f in 0..n {
            let frame_idx = st.frames_total as i64;
            let _frame_span = observed.then(|| obs.span(names::SPAN_FRAME, frame_idx, seg as i64));
            let frame_t0 = observed.then(Instant::now);
            let t = seg_start_t + f as f64 * geom.slot;
            let pose = self.trace.pose_at(t);
            if !fell_back {
                let outcome = {
                    let _fov_span =
                        observed.then(|| obs.span(names::SPAN_FOV_CHECK, frame_idx, seg as i64));
                    if cfg.oracle_hits {
                        st.checker.check(meta[f].orientation, &meta[f])
                    } else {
                        st.checker.check(pose, &meta[f])
                    }
                };
                match outcome {
                    CheckOutcome::Hit => {
                        if observed {
                            m.fov_hits.inc();
                            obs.mark(names::MARK_FOV_HIT, frame_idx, seg as i64, 1.0);
                        }
                        // Direct display: decode the FOV frame only.
                        account_decode(
                            &cfg.device,
                            &mut st.ledger,
                            geom.fov_px,
                            frame_wire_bytes(&fov_seg.frames[f], geom.fov_scale),
                        );
                        gpu_used |= FovPassthrough.render(&mut st.ledger, geom.slot);
                        st.frames_total += 1;
                        if observed {
                            m.frames.inc();
                            if let Some(t0) = frame_t0 {
                                m.frame_seconds.observe(t0.elapsed().as_secs_f64());
                            }
                        }
                        continue;
                    }
                    CheckOutcome::Miss => {
                        if observed {
                            m.fov_misses.inc();
                            obs.mark(names::MARK_FOV_MISS, frame_idx, seg as i64, 1.0);
                        }
                        // Mid-segment fallback: fetch the original over
                        // the segment's link and fall back for the
                        // segment's remainder.
                        fell_back = true;
                        st.rebuffer_events += 1;
                        let intra = frame_wire_bytes(&original.frames[0], geom.src_scale);
                        let pause = link.net.rebuffer_time(intra);
                        st.rebuffer_time_s += pause;
                        if observed {
                            m.rebuffer_events.inc();
                            m.rebuffer_seconds.add(pause);
                            obs.mark(names::MARK_REBUFFER, frame_idx, seg as i64, pause);
                        }
                        if cfg.path.uses_network() {
                            st.bytes_received += orig_bytes;
                            if T::PER_SEGMENT_WIRE {
                                st.wire_bytes_total += link.net.wire_bytes(orig_bytes);
                            }
                            if observed {
                                m.fetch_bytes.add(orig_bytes);
                            }
                        } else {
                            st.storage_read_bytes += orig_bytes;
                        }
                        // Catch-up decode: the original's GOP starts at
                        // the segment boundary, so reaching frame `f`
                        // means decoding its whole reference chain first.
                        for g in 0..f {
                            account_decode(
                                &cfg.device,
                                &mut st.ledger,
                                geom.src_px,
                                frame_wire_bytes(&original.frames[g], geom.src_scale),
                            );
                        }
                    }
                }
            }
            // Fallback path: decode original + on-device PT.
            account_decode(
                &cfg.device,
                &mut st.ledger,
                geom.src_px,
                frame_wire_bytes(&original.frames[f], geom.src_scale),
            );
            {
                let _pt_span = observed.then(|| obs.span(names::SPAN_PT, frame_idx, seg as i64));
                gpu_used |= self.backend.render(&mut st.ledger, geom.slot);
            }
            st.fallback_frames += 1;
            st.frames_total += 1;
            if observed {
                self.backend.note_metrics(m);
                m.fallback_frames.inc();
                m.frames.inc();
                if let Some(t0) = frame_t0 {
                    m.frame_seconds.observe(t0.elapsed().as_secs_f64());
                }
            }
        }
        gpu_used
    }

    /// Plays a segment from the original panorama: decode at
    /// `byte_scale` of the full wire size plus on-device PT for every
    /// frame. Unobserved full-quality segments take the out-of-line
    /// quiet loop, preserving the tight codegen of an uninstrumented
    /// session.
    fn play_original(
        &self,
        st: &mut RunState,
        seg: u32,
        original: &EncodedSegment,
        byte_scale: f64,
        degraded: bool,
        geom: &Geometry,
    ) -> bool {
        let session = self.session;
        let obs = &session.observer;
        let m = &session.metrics;
        let observed = obs.is_enabled();
        let n = original.frames.len() as u64;
        if degraded {
            st.faults.degraded_frames += n;
            if observed {
                m.degraded_frames.add(n);
            }
            st.faults.degraded_segments += 1;
        }
        if !observed && byte_scale == 1.0 {
            // `(x as f64 * 1.0) as u64` is exact below 2^53, so the
            // unscaled quiet loop is value-identical to the scaled one.
            let gpu_used = self.play_original_quiet(&mut st.ledger, original, geom);
            st.fallback_frames += n;
            st.frames_total += n;
            return gpu_used;
        }
        let mut gpu_used = false;
        #[allow(clippy::needless_range_loop)] // parallel frame index
        for f in 0..n as usize {
            let frame_idx = st.frames_total as i64;
            let _frame_span = observed.then(|| obs.span(names::SPAN_FRAME, frame_idx, seg as i64));
            let frame_t0 = observed.then(Instant::now);
            let bytes =
                (frame_wire_bytes(&original.frames[f], geom.src_scale) as f64 * byte_scale) as u64;
            account_decode(&session.cfg.device, &mut st.ledger, geom.src_px, bytes);
            {
                let _pt_span = observed.then(|| obs.span(names::SPAN_PT, frame_idx, seg as i64));
                gpu_used |= self.backend.render(&mut st.ledger, geom.slot);
            }
            st.fallback_frames += 1;
            st.frames_total += 1;
            if observed {
                self.backend.note_metrics(m);
                m.fallback_frames.inc();
                m.frames.inc();
                if let Some(t0) = frame_t0 {
                    m.frame_seconds.observe(t0.elapsed().as_secs_f64());
                }
            }
        }
        gpu_used
    }

    /// The uninstrumented decode + PT loop over one original segment;
    /// returns whether the GPU ran. Kept out of line so the quiet path
    /// keeps the tight codegen of an unobserved session regardless of
    /// how much instrumentation surrounds it in the pipeline.
    #[inline(never)]
    fn play_original_quiet(
        &self,
        ledger: &mut EnergyLedger,
        original: &EncodedSegment,
        geom: &Geometry,
    ) -> bool {
        let device = &self.session.cfg.device;
        let mut gpu_used = false;
        for frame in &original.frames {
            account_decode(device, ledger, geom.src_px, frame_wire_bytes(frame, geom.src_scale));
            gpu_used |= self.backend.render(ledger, geom.slot);
        }
        gpu_used
    }

    /// Every rung failed: the display repeats the last image for the
    /// whole segment — no decode, no PT.
    fn freeze(&self, st: &mut RunState, seg: u32, n: u64) {
        let session = self.session;
        let obs = &session.observer;
        let m = &session.metrics;
        st.faults.frozen_frames += n;
        st.faults.degraded_segments += 1;
        st.frames_total += n;
        if obs.is_enabled() {
            m.frozen_frames.add(n);
            m.frames.add(n);
            obs.mark(names::MARK_DEGRADE, -1, seg as i64, 3.0);
        }
    }

    /// Settles the session-wide energy components and assembles the
    /// report.
    fn finish(self, mut st: RunState) -> PlaybackReport {
        let session = self.session;
        let cfg = &session.cfg;
        let wire_bytes = if !cfg.path.uses_network() {
            None
        } else if T::PER_SEGMENT_WIRE {
            // Wire bytes were accumulated per segment against that
            // segment's sampled link (loss inflation varies over the
            // run).
            Some(st.wire_bytes_total)
        } else {
            // Under injected loss the radio moves (and pays for) the
            // retransmitted bytes too.
            Some(cfg.network.wire_bytes(st.bytes_received))
        };
        let storage_bytes = if cfg.path.uses_network() {
            // Streamed segments are cached to storage (§3: "involved
            // mainly for temporary caching").
            st.bytes_received
        } else {
            st.storage_read_bytes
        };
        let duration_s = st.frames_total as f64 / FPS;
        let sas_scale = if cfg.path.uses_sas() { 1.0 } else { 0.0 };
        account_session_tail(
            cfg,
            &session.observer,
            &mut st.ledger,
            duration_s,
            wire_bytes,
            storage_bytes,
            sas_scale,
        );
        PlaybackReport {
            ledger: st.ledger,
            frames_total: st.frames_total,
            fov_hits: st.checker.hits(),
            fov_misses: st.checker.misses(),
            fallback_frames: st.fallback_frames,
            rebuffer_events: st.rebuffer_events,
            rebuffer_time_s: st.rebuffer_time_s,
            bytes_received: st.bytes_received,
            duration_s,
            faults: st.faults,
        }
    }
}

/// Tiled view-guided streaming through the same staged pipeline: the
/// fetch stage prices the pose-dependent tile selection, and every
/// frame renders through the configured backend (tiling never avoids
/// on-device PT).
pub(crate) fn run_tiled<R: RenderBackend>(
    session: &PlaybackSession,
    server: &SasServer,
    tiled: &evr_sas::TiledCatalog,
    trace: &HeadTrace,
    backend: R,
) -> PlaybackReport {
    let cfg = &session.cfg;
    let obs = &session.observer;
    let m = &session.metrics;
    let observed = obs.is_enabled();
    let tl = obs.timeline();
    let timed = tl.is_enabled();
    let catalog = server.catalog();
    assert_eq!(
        tiled.segment_count(),
        catalog.segment_count(),
        "tiled catalog must cover the same segments"
    );
    let src_px = cfg.sas.target_src.0 as u64 * cfg.sas.target_src.1 as u64;
    let slot = 1.0 / FPS;

    let mut ledger = EnergyLedger::new();
    let mut frames_total = 0u64;
    let mut bytes_received = 0u64;
    for seg in 0..catalog.segment_count() {
        let _seg_span = observed.then(|| obs.span(names::SPAN_SEGMENT, -1, seg as i64));
        let ctx = TraceCtx::anonymous().with_segment(seg as i64);
        m.segments.inc();
        let original = catalog.original_segment(seg);
        let n = original.frames.len() as u64;
        let seg_start_t = original.start_index as f64 / FPS;

        // plan + fetch: price the in-view/out-of-view tile split at the
        // segment boundary pose.
        let t0 = observed.then(Instant::now);
        let ts = timed.then(|| tl.now_ns());
        let pose = trace.pose_at(seg_start_t);
        let seg_bytes = tiled.segment_bytes(seg, pose, cfg.sas.device_fov);
        bytes_received += seg_bytes;
        m.fetch_bytes.add(seg_bytes);
        observe_stage(&m.stage_fetch, t0);
        if let Some(ts) = ts {
            tl.record("fetch", ctx, ts, tl.now_ns());
        }

        // decode/render: full-resolution decode of fewer bits, then
        // full PT on every frame.
        let t0 = observed.then(Instant::now);
        let ts = timed.then(|| tl.now_ns());
        let mut gpu_used = false;
        for _ in 0..n {
            account_decode(&cfg.device, &mut ledger, src_px, seg_bytes / n);
            gpu_used |= backend.render(&mut ledger, slot);
            if m.enabled {
                backend.note_metrics(m);
            }
            frames_total += 1;
            m.frames.inc();
            m.fallback_frames.inc();
        }
        observe_stage(&m.stage_render, t0);
        if let Some(ts) = ts {
            tl.record("render", ctx, ts, tl.now_ns());
        }

        let t0 = observed.then(Instant::now);
        let ts = timed.then(|| tl.now_ns());
        if gpu_used {
            ledger.add(
                Component::Compute,
                Activity::ProjectiveTransform,
                cfg.gpu.session_energy(n as f64 / FPS),
            );
        }
        observe_stage(&m.stage_account, t0);
        if let Some(ts) = ts {
            tl.record("account", ctx, ts, tl.now_ns());
        }
    }

    let duration_s = frames_total as f64 / FPS;
    // Tile selection / multi-stream management: about half of SAS's
    // client-control cost (no per-frame FOV checking).
    account_session_tail(
        cfg,
        obs,
        &mut ledger,
        duration_s,
        Some(bytes_received),
        bytes_received,
        0.5,
    );

    PlaybackReport {
        ledger,
        frames_total,
        fov_hits: 0,
        fov_misses: 0,
        fallback_frames: frames_total,
        rebuffer_events: 0,
        rebuffer_time_s: 0.0,
        bytes_received,
        duration_s,
        faults: FaultSummary::default(),
    }
}

/// Fetches one tile payload of `wire` bytes through the transport,
/// folding the bytes into the run's wire/storage accounting on
/// delivery. The network-free path reads from storage and never fails.
#[allow(clippy::too_many_arguments)]
fn fetch_tile<T: Transport>(
    transport: &mut T,
    st: &mut RunState,
    cfg: &SessionConfig,
    obs: &Observer,
    m: &SessionMetrics,
    link: &SegmentLink,
    media_t: f64,
    seg: u32,
    wire: u64,
) -> bool {
    if !cfg.path.uses_network() {
        st.storage_read_bytes += wire;
        return true;
    }
    let mut io = StageIo {
        ledger: &mut st.ledger,
        faults: &mut st.faults,
        device: &cfg.device,
        observer: obs,
        metrics: m,
    };
    if transport.fetch(&mut io, link, media_t, seg, wire) {
        st.bytes_received += wire;
        if T::PER_SEGMENT_WIRE {
            st.wire_bytes_total += link.net.wire_bytes(wire);
        }
        m.fetch_bytes.add(wire);
        true
    } else {
        false
    }
}

/// Per-tile multi-rate streaming — the playback loop behind the
/// first-class `T`/`T+H` variants.
///
/// Per segment: classify every tile against the (possibly predicted)
/// pose, allocate the link's byte budget across encoding rungs with the
/// spherically-weighted allocator
/// ([`crate::abr::allocate_tile_rungs`]), consult the serving front's
/// admission gate once for the whole tile batch, then fetch each tile
/// through the [`Transport`]'s retry machinery. A tile whose chosen
/// rung fails retries once at the coarsest rung (that tile degrades); a
/// tile whose coarsest rung also fails freezes (its last texture
/// repeats) — partial tile loss never freezes the whole frame. With a
/// 1×1 grid and an ample link this path is byte-identical to plain
/// baseline playback (`tests/tiled_variants.rs` pins it).
pub(crate) fn run_tiled_multirate<T: Transport, R: RenderBackend>(
    session: &PlaybackSession,
    server: &SasServer,
    tiles: &evr_sas::TiledRateCatalog,
    trace: &HeadTrace,
    mut transport: T,
    backend: R,
) -> PlaybackReport {
    let cfg = &session.cfg;
    let obs = &session.observer;
    let m = &session.metrics;
    let observed = obs.is_enabled();
    let tl = obs.timeline();
    let timed = tl.is_enabled();
    let catalog = server.catalog();
    assert_eq!(
        tiles.segment_count(),
        catalog.segment_count(),
        "tiled rate catalog must cover the same segments"
    );
    let grid = tiles.grid();
    let weights = grid.tile_weights();
    let tile_count = grid.len();
    let safety = crate::abr::AbrPolicy::default().safety;
    let geom = Geometry::of(cfg);
    let mut st = RunState::new(cfg.sas.device_fov);

    for seg in 0..catalog.segment_count() {
        let _seg_span = observed.then(|| obs.span(names::SPAN_SEGMENT, -1, seg as i64));
        let ctx = TraceCtx::anonymous().with_segment(seg as i64);
        m.segments.inc();
        let original = catalog.original_segment(seg);
        let n = original.frames.len() as u64;
        let seg_start_t = original.start_index as f64 / FPS;
        let seg_duration = n as f64 / FPS;

        // plan: sample the link, classify tiles against the selection
        // pose, allocate the segment's byte budget across rungs.
        let t0 = observed.then(Instant::now);
        let ts = timed.then(|| tl.now_ns());
        let link = transport.segment_link(&cfg.network, seg_start_t, st.faults.stall_time_s);
        let pose = selection_pose(cfg, trace, seg_start_t);
        let classes = grid.classify_tiles(pose, cfg.sas.device_fov, evr_sas::PERIPHERY_MARGIN);
        let budget = (link.net.bandwidth_bps * seg_duration / 8.0 * safety) as u64;
        let rung_bytes = tiles.tile_rung_bytes(seg);
        let mut alloc = crate::abr::allocate_tile_rungs(&rung_bytes, &weights, &classes, budget);
        observe_stage(&m.stage_plan, t0);
        if let Some(ts) = ts {
            tl.record("plan", ctx, ts, tl.now_ns());
        }

        // fetch: the serving front's admission gate covers the whole
        // tile batch (a shed batch is answered at the coarsest rung of
        // every tile — the tile analogue of the shed low-rung
        // original), then each tile walks its own two-rung ladder.
        let t0 = observed.then(Instant::now);
        let ts = timed.then(|| tl.now_ns());
        let mut shed = false;
        match transport.front_gate(seg_start_t, st.faults.stall_time_s, seg, catalog.content_id()) {
            FrontGate::Serve { queue_delay_s } => {
                if queue_delay_s > 0.0 {
                    let mut io = StageIo {
                        ledger: &mut st.ledger,
                        faults: &mut st.faults,
                        device: &cfg.device,
                        observer: obs,
                        metrics: m,
                    };
                    io.account_stall(queue_delay_s);
                }
            }
            FrontGate::Shed { latency_s } => {
                let mut io = StageIo {
                    ledger: &mut st.ledger,
                    faults: &mut st.faults,
                    device: &cfg.device,
                    observer: obs,
                    metrics: m,
                };
                io.account_stall(latency_s);
                st.faults.shed_segments += 1;
                if observed {
                    obs.mark(names::MARK_FRONT_SHED, -1, seg as i64, latency_s);
                }
                shed = true;
                for r in alloc.rungs.iter_mut() {
                    *r = 0;
                }
            }
            FrontGate::Unavailable { latency_s } => {
                if latency_s > 0.0 {
                    let mut io = StageIo {
                        ledger: &mut st.ledger,
                        faults: &mut st.faults,
                        device: &cfg.device,
                        observer: obs,
                        metrics: m,
                    };
                    io.account_stall(latency_s);
                }
                st.faults.front_unavailable_segments += 1;
                if observed {
                    obs.mark(names::MARK_FRONT_UNAVAILABLE, -1, seg as i64, latency_s);
                }
            }
        }

        // Any degradation below the allocation — shed batch, coarsest-
        // rung retry, corrupt re-fetch — marks the segment degraded.
        let mut any_degraded = shed;
        let mut corruption_checked = false;
        let mut delivered: Vec<Option<usize>> = Vec::with_capacity(tile_count);
        for t in 0..tile_count {
            let want = alloc.rungs[t];
            let wire = tiles.rung(seg, t, want).wire_bytes;
            let mut got =
                fetch_tile(&mut transport, &mut st, cfg, obs, m, &link, seg_start_t, seg, wire)
                    .then_some(want);
            if got.is_none() && want > 0 {
                // Coarsest-rung retry: the tile degrades, not the frame.
                if observed {
                    obs.mark(names::MARK_DEGRADE, -1, seg as i64, 2.0);
                }
                let low = tiles.rung(seg, t, 0).wire_bytes;
                if fetch_tile(&mut transport, &mut st, cfg, obs, m, &link, seg_start_t, seg, low) {
                    got = Some(0);
                    any_degraded = true;
                }
            }
            // The first delivered tile's leading intra decode detects a
            // corrupt batch: the transfer was paid for, the decode
            // energy is charged, and the tile re-fetches its coarsest
            // rung.
            if let Some(r) = got {
                if !corruption_checked {
                    corruption_checked = true;
                    if transport.corrupts(seg) {
                        st.faults.corrupt_segments += 1;
                        let d = &cfg.device;
                        let intra = tiles.rung(seg, t, r).frame_bytes[0];
                        st.ledger.add(
                            Component::Compute,
                            Activity::Resilience,
                            d.decode_energy(geom.src_px, intra),
                        );
                        st.ledger.add(
                            Component::Memory,
                            Activity::Resilience,
                            d.dram_energy(d.decode_dram_bytes(geom.src_px)),
                        );
                        let low = tiles.rung(seg, t, 0).wire_bytes;
                        got = if fetch_tile(
                            &mut transport,
                            &mut st,
                            cfg,
                            obs,
                            m,
                            &link,
                            seg_start_t,
                            seg,
                            low,
                        ) {
                            any_degraded = true;
                            Some(0)
                        } else {
                            None
                        };
                    }
                }
            }
            delivered.push(got);
        }
        observe_stage(&m.stage_fetch, t0);
        if let Some(ts) = ts {
            tl.record("fetch", ctx, ts, tl.now_ns());
        }

        // decode/render: full-resolution decode of the delivered tiles'
        // bytes, then full PT on every frame (tiling never avoids
        // on-device PT). Frozen tiles contribute no bytes; a segment
        // with *no* delivered tile freezes outright.
        let t0 = observed.then(Instant::now);
        let ts = timed.then(|| tl.now_ns());
        let mut gpu_used = false;
        if delivered.iter().all(|d| d.is_none()) {
            st.faults.frozen_frames += n;
            st.faults.degraded_segments += 1;
            st.frames_total += n;
            if observed {
                m.frozen_frames.add(n);
                m.frames.add(n);
                obs.mark(names::MARK_DEGRADE, -1, seg as i64, 3.0);
            }
        } else {
            let frozen_tiles = delivered.iter().filter(|d| d.is_none()).count();
            for f in 0..n as usize {
                let bytes: u64 = delivered
                    .iter()
                    .enumerate()
                    .filter_map(|(t, d)| d.map(|r| tiles.rung(seg, t, r).frame_bytes[f]))
                    .sum();
                account_decode(&cfg.device, &mut st.ledger, geom.src_px, bytes);
                gpu_used |= backend.render(&mut st.ledger, geom.slot);
                if m.enabled {
                    backend.note_metrics(m);
                }
                st.fallback_frames += 1;
                st.frames_total += 1;
                m.frames.inc();
                m.fallback_frames.inc();
            }
            if any_degraded || frozen_tiles > 0 {
                st.faults.degraded_frames += n;
                st.faults.degraded_segments += 1;
                if observed {
                    m.degraded_frames.add(n);
                }
            }
        }
        observe_stage(&m.stage_render, t0);
        if let Some(ts) = ts {
            tl.record("render", ctx, ts, tl.now_ns());
        }

        // account: GPU context power for any segment the GPU ran in.
        let t0 = observed.then(Instant::now);
        let ts = timed.then(|| tl.now_ns());
        if gpu_used {
            st.ledger.add(
                Component::Compute,
                Activity::ProjectiveTransform,
                cfg.gpu.session_energy(seg_duration),
            );
        }
        observe_stage(&m.stage_account, t0);
        if let Some(ts) = ts {
            tl.record("account", ctx, ts, tl.now_ns());
        }
    }

    let duration_s = st.frames_total as f64 / FPS;
    let wire_bytes = if !cfg.path.uses_network() {
        None
    } else if T::PER_SEGMENT_WIRE {
        Some(st.wire_bytes_total)
    } else {
        Some(cfg.network.wire_bytes(st.bytes_received))
    };
    let storage_bytes =
        if cfg.path.uses_network() { st.bytes_received } else { st.storage_read_bytes };
    // Multi-stream tile management costs a share of SAS's client-control
    // energy that grows with the tile count; a single-tile grid
    // degenerates to plain baseline playback and pays nothing (which
    // pins the 1×1 parity test).
    let sas_scale = 0.5 * (1.0 - 1.0 / tile_count as f64);
    account_session_tail(
        cfg,
        obs,
        &mut st.ledger,
        duration_s,
        wire_bytes,
        storage_bytes,
        sas_scale,
    );

    PlaybackReport {
        ledger: st.ledger,
        frames_total: st.frames_total,
        fov_hits: 0,
        fov_misses: 0,
        fallback_frames: st.fallback_frames,
        rebuffer_events: st.rebuffer_events,
        rebuffer_time_s: st.rebuffer_time_s,
        bytes_received: st.bytes_received,
        duration_s,
        faults: st.faults,
    }
}

/// The session-wide energy components every playback flavour settles at
/// end of run: display scan, radio (when `wire_bytes` flowed), storage,
/// base compute (plus `sas_client_scale` of the SAS client-control
/// cost) and static DRAM — in the exact add order every pre-unification
/// loop used, so f64 accumulation is preserved bit-for-bit.
fn account_session_tail(
    cfg: &SessionConfig,
    obs: &Observer,
    ledger: &mut EnergyLedger,
    duration_s: f64,
    wire_bytes: Option<u64>,
    storage_bytes: u64,
    sas_client_scale: f64,
) {
    ledger.set_duration(duration_s);
    let d = &cfg.device;
    ledger.add(Component::Display, Activity::DisplayScan, d.display_energy(duration_s));
    ledger.add(
        Component::Memory,
        Activity::DisplayScan,
        d.dram_energy(d.display_dram_bytes(duration_s)),
    );
    if let Some(wire) = wire_bytes {
        ledger.add(Component::Network, Activity::NetworkRx, d.network_energy(wire, duration_s));
    }
    ledger.add(
        Component::Storage,
        Activity::StorageIo,
        d.storage_energy(storage_bytes, duration_s),
    );
    ledger.add(Component::Compute, Activity::Base, d.base_energy(duration_s));
    if sas_client_scale > 0.0 {
        ledger.add(
            Component::Compute,
            Activity::Base,
            sas_client_scale * d.sas_client_energy(duration_s),
        );
    }
    ledger.add(Component::Memory, Activity::Base, d.dram_static_energy(duration_s));
    ledger.mirror_gauges(obs);
}

/// The pose used for stream selection at time `t`, per the configured
/// policy. Linear prediction extrapolates from the *past* only (the
/// client cannot peek ahead in its own IMU stream).
fn selection_pose(cfg: &SessionConfig, trace: &HeadTrace, t: f64) -> evr_math::EulerAngles {
    match cfg.selection {
        SelectionPolicy::CurrentPose => trace.pose_at(t),
        SelectionPolicy::LinearPrediction { lookahead_s } => {
            let dt = 0.1;
            let now = trace.pose_at(t);
            let before = trace.pose_at((t - dt).max(0.0));
            let yaw_vel = (now.yaw - before.yaw).wrapped().0 / dt;
            let pitch_vel = (now.pitch.0 - before.pitch.0) / dt;
            evr_math::EulerAngles::new(
                evr_math::Radians(now.yaw.0 + yaw_vel * lookahead_s),
                evr_math::Radians(now.pitch.0 + pitch_vel * lookahead_s),
                now.roll,
            )
            .normalized()
        }
    }
}

#[inline]
pub(crate) fn account_decode(d: &DeviceParams, ledger: &mut EnergyLedger, pixels: u64, bytes: u64) {
    ledger.add(Component::Compute, Activity::Decode, d.decode_energy(pixels, bytes));
    ledger.add(Component::Memory, Activity::Decode, d.dram_energy(d.decode_dram_bytes(pixels)));
}

/// The per-segment link model: the sampled fault-process state when a
/// time-varying link is attached, the session's static model otherwise.
/// A dead link keeps the base model's shape (fetches are failed by the
/// caller's up-check instead) so rebuffer math stays finite.
fn effective_network(base: &NetworkModel, link: Option<LinkState>) -> NetworkModel {
    match link {
        Some(l) if l.is_up() => {
            NetworkModel { bandwidth_bps: l.bandwidth_bps, rtt_s: l.rtt_s, loss_prob: l.loss_prob }
        }
        _ => *base,
    }
}
