//! Coarse-then-upgrade FOV fetching over the delta wire format.
//!
//! The device-side half of DESIGN.md §16: a client opens each segment on
//! a coarse FOV rung ([`SasServer::fetch_fov_rung`]) and upgrades to the
//! top rung before scan-out ([`SasServer::fetch_fov_upgrade`]). A
//! transport that opts into the delta wire ([`Transport::delta_wire`],
//! e.g. [`DeltaWire`]) receives the upgrade as sparse quantised-residual
//! deltas against the rung it already holds whenever the server's delta
//! is smaller at target scale; the client then reconstructs the top rung
//! bit-exactly and the reconstruction work — byte-proportional codec
//! effort plus a DRAM pass over the residual stream — is charged to the
//! energy ledger under [`Activity::DeltaReconstruct`]. With the delta
//! wire off the session shape is identical but every upgrade moves the
//! full top encoding, which is what makes the two arms comparable
//! byte-for-byte and bit-for-bit ([`RefineReport::content_digest`]).
//!
//! [`DeltaWire`]: crate::pipeline::DeltaWire

use evr_energy::{Activity, Component, DeviceParams, EnergyLedger};
use evr_sas::{SasError, SasServer};
use evr_video::delta::{segment_digest, SegmentRepr};

use crate::pipeline::{account_decode, Transport};

/// Byte accounting and integrity digest of one coarse-then-upgrade
/// fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefinedFetch {
    /// Wire bytes of the coarse rung (target scale).
    pub coarse_wire_bytes: u64,
    /// Wire bytes of the upgrade (target scale).
    pub upgrade_wire_bytes: u64,
    /// Whether the upgrade moved as a delta.
    pub via_delta: bool,
    /// Residual coefficients reconstructed (0 for a full upgrade).
    pub residual_coeffs: u64,
    /// Digest of the final top-rung segment
    /// ([`segment_digest`]) — identical with and without the delta wire.
    pub digest: u64,
}

/// Fetches `(segment, cluster)` coarse-first and upgrades to the top
/// rung, charging wire, decode and (for delta upgrades) reconstruction
/// energy to `ledger`.
///
/// # Errors
///
/// Propagates the server's typed lookup errors.
pub fn fetch_fov_refined<T: Transport>(
    transport: &T,
    server: &SasServer,
    segment: u32,
    cluster: usize,
    coarse_quantizer: u8,
    device: &DeviceParams,
    ledger: &mut EnergyLedger,
) -> Result<RefinedFetch, SasError> {
    let config = server.catalog().config();
    let scale = config.fov_byte_scale();
    let frame_px = config.target_fov.0 as u64 * config.target_fov.1 as u64;

    let (coarse, coarse_wire_bytes) = server.fetch_fov_rung(segment, cluster, coarse_quantizer)?;
    let segment_px = frame_px * coarse.data.frames.len() as u64;
    account_rx(device, ledger, coarse_wire_bytes);
    account_decode(device, ledger, segment_px, coarse_wire_bytes);

    let upgrade =
        server.fetch_fov_upgrade(segment, cluster, coarse_quantizer, transport.delta_wire())?;
    account_rx(device, ledger, upgrade.wire_bytes);
    let (top, via_delta) = match upgrade.repr {
        SegmentRepr::Full(full) => (full, false),
        SegmentRepr::Delta(delta) => {
            // Merging residuals into the held rung costs the codec's
            // byte-proportional effort over the residual stream (no new
            // pixels are produced) plus one DRAM pass over it.
            ledger.add(
                Component::Compute,
                Activity::DeltaReconstruct,
                device.decode_energy(0, upgrade.wire_bytes),
            );
            ledger.add(
                Component::Memory,
                Activity::DeltaReconstruct,
                device.dram_energy(upgrade.wire_bytes),
            );
            (delta.reconstruct(&coarse.data), true)
        }
    };
    account_decode(device, ledger, segment_px, top.scaled_bytes(scale));
    Ok(RefinedFetch {
        coarse_wire_bytes,
        upgrade_wire_bytes: upgrade.wire_bytes,
        via_delta,
        residual_coeffs: upgrade.residual_coeffs,
        digest: segment_digest(&top),
    })
}

/// Per-user accounting of a whole refinement session: every
/// `(segment, cluster)` pick fetched coarse-first and upgraded.
#[derive(Debug, Clone, PartialEq)]
pub struct RefineReport {
    /// Segments fetched.
    pub segments: u32,
    /// Total wire bytes moved (target scale), coarse + upgrades.
    pub wire_bytes: u64,
    /// Wire bytes of the coarse rungs alone.
    pub coarse_wire_bytes: u64,
    /// Wire bytes of the upgrades alone.
    pub upgrade_wire_bytes: u64,
    /// Upgrades that moved as deltas.
    pub delta_upgrades: u32,
    /// Residual coefficients reconstructed on the device.
    pub residual_coeffs: u64,
    /// The session's energy ledger (wire, decode and reconstruction).
    pub ledger: EnergyLedger,
    /// FNV-1a fold of the per-segment top-rung digests: the played-out
    /// content's bit-exactness witness across wire formats.
    pub content_digest: u64,
}

/// Runs a refinement session over `picks`, in order.
///
/// # Errors
///
/// Propagates the first lookup error.
pub fn run_refinement_session<T: Transport>(
    transport: &T,
    server: &SasServer,
    picks: &[(u32, usize)],
    coarse_quantizer: u8,
    device: &DeviceParams,
) -> Result<RefineReport, SasError> {
    let mut ledger = EnergyLedger::new();
    let mut report = RefineReport {
        segments: 0,
        wire_bytes: 0,
        coarse_wire_bytes: 0,
        upgrade_wire_bytes: 0,
        delta_upgrades: 0,
        residual_coeffs: 0,
        ledger: EnergyLedger::new(),
        content_digest: 0xcbf2_9ce4_8422_2325,
    };
    for &(segment, cluster) in picks {
        let fetched = fetch_fov_refined(
            transport,
            server,
            segment,
            cluster,
            coarse_quantizer,
            device,
            &mut ledger,
        )?;
        report.segments += 1;
        report.coarse_wire_bytes += fetched.coarse_wire_bytes;
        report.upgrade_wire_bytes += fetched.upgrade_wire_bytes;
        report.wire_bytes += fetched.coarse_wire_bytes + fetched.upgrade_wire_bytes;
        report.delta_upgrades += u32::from(fetched.via_delta);
        report.residual_coeffs += fetched.residual_coeffs;
        for byte in fetched.digest.to_le_bytes() {
            report.content_digest =
                (report.content_digest ^ u64::from(byte)).wrapping_mul(0x100_0000_01b3);
        }
    }
    report.ledger = ledger;
    Ok(report)
}

fn account_rx(device: &DeviceParams, ledger: &mut EnergyLedger, bytes: u64) {
    // Per-byte radio receive energy; session-level idle listening is the
    // playback session's business, not the per-fetch helper's.
    ledger.add(Component::Network, Activity::NetworkRx, device.network_energy(bytes, 0.0));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{CleanTransport, DeltaWire};
    use evr_sas::{fov_rung_quantizers, ingest_video, FovPrerenderStore, SasConfig};
    use evr_video::library::{scene_for, VideoId};

    fn server() -> SasServer {
        let catalog = ingest_video(&scene_for(VideoId::Rhino), &SasConfig::tiny_for_tests(), 1.0);
        SasServer::with_store(catalog, FovPrerenderStore::new())
    }

    fn picks(server: &SasServer) -> Vec<(u32, usize)> {
        (0..server.catalog().segment_count())
            .filter_map(|s| server.catalog().clusters_in_segment(s).first().map(|&c| (s, c)))
            .collect()
    }

    #[test]
    fn delta_wire_saves_upgrade_bytes_and_plays_out_bit_identically() {
        let server = server();
        let picks = picks(&server);
        assert!(!picks.is_empty());
        let coarse_q = fov_rung_quantizers(server.catalog().config())[0];
        let device = DeviceParams::default();

        let full =
            run_refinement_session(&CleanTransport, &server, &picks, coarse_q, &device).unwrap();
        let delta =
            run_refinement_session(&DeltaWire(CleanTransport), &server, &picks, coarse_q, &device)
                .unwrap();

        // Same shape, bit-identical played-out content.
        assert_eq!(full.segments, delta.segments);
        assert_eq!(full.coarse_wire_bytes, delta.coarse_wire_bytes);
        assert_eq!(full.content_digest, delta.content_digest);

        // The delta wire moves fewer upgrade bytes and reconstructs on
        // the device, visibly charged in the ledger.
        assert!(delta.delta_upgrades > 0, "no upgrade moved as a delta");
        assert!(
            delta.upgrade_wire_bytes < full.upgrade_wire_bytes,
            "delta {} vs full {}",
            delta.upgrade_wire_bytes,
            full.upgrade_wire_bytes
        );
        assert!(delta.residual_coeffs > 0);
        assert!(delta.ledger.activity_total(Activity::DeltaReconstruct) > 0.0);
        assert_eq!(full.ledger.activity_total(Activity::DeltaReconstruct), 0.0);
        assert_eq!(full.delta_upgrades, 0);
        assert_eq!(full.residual_coeffs, 0);

        // Reconstruction is charged but the wire saving shows up in the
        // radio's per-byte energy.
        let rx = |r: &RefineReport| r.ledger.activity_total(Activity::NetworkRx);
        assert!(rx(&delta) < rx(&full));
    }

    #[test]
    fn refined_fetch_propagates_typed_errors() {
        let server = server();
        let device = DeviceParams::default();
        let mut ledger = EnergyLedger::new();
        let err = fetch_fov_refined(&CleanTransport, &server, 999, 0, 30, &device, &mut ledger);
        assert_eq!(err, Err(SasError::UnknownSegment { segment: 999 }));
    }
}
