//! The per-user playback simulation.
//!
//! One [`PlaybackSession::run`] replays a head trace against an ingested
//! video, frame by frame, reproducing the client control flow of the
//! paper's Fig. 4: fetch → decode → FOV check → (PT on GPU or PTE, or
//! direct display) → display, while tagging every joule into an
//! [`EnergyLedger`].

use serde::{Deserialize, Serialize};
use std::time::Instant;

use evr_energy::{Activity, Component, DeviceParams, EnergyLedger};
use evr_obs::{names, Observer};
use evr_pte::{FrameStats, GpuModel, Pte, PteConfig};
use evr_sas::checker::{CheckOutcome, FovChecker};
use evr_sas::ingest::FPS;
use evr_sas::{Request, Response, SasConfig, SasServer};
use evr_trace::HeadTrace;
use evr_video::codec::{EncodedFrame, EncodedSegment};

use crate::network::NetworkModel;

/// How the client picks which FOV video to request at a segment boundary.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SelectionPolicy {
    /// Request the cluster nearest the *current* head pose (the paper's
    /// deployed behaviour, §5.3).
    #[default]
    CurrentPose,
    /// Extrapolate the head pose half a segment ahead from its recent
    /// angular velocity and select for the predicted pose — the
    /// lightweight client-side prediction the paper names as future work
    /// (§8.2: "combining head movement prediction with SAS would further
    /// improve the bandwidth efficiency").
    LinearPrediction {
        /// How far ahead to extrapolate, seconds.
        lookahead_s: f64,
    },
}

/// Which hardware performs on-device projective transformation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Renderer {
    /// Texture mapping on the mobile GPU (today's path).
    Gpu,
    /// The PTE accelerator (HAR).
    Pte,
}

/// Where content comes from (paper §8.1's three use-cases, plus the
/// no-SAS streaming baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContentPath {
    /// Online streaming through SAS: FOV videos with original fallback.
    OnlineSas,
    /// Online streaming of the original video only (the paper's baseline).
    OnlineBaseline,
    /// Live streaming: original video, no server pre-processing possible.
    Live,
    /// Offline playback from local storage: no network at all.
    Offline,
}

impl ContentPath {
    fn uses_network(self) -> bool {
        !matches!(self, ContentPath::Offline)
    }

    fn uses_sas(self) -> bool {
        matches!(self, ContentPath::OnlineSas)
    }
}

/// Configuration of one playback session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Content source.
    pub path: ContentPath,
    /// PT hardware for non-hit frames.
    pub renderer: Renderer,
    /// SAS configuration (supplies the analysis/target scale model).
    pub sas: SasConfig,
    /// Device energy parameters.
    pub device: DeviceParams,
    /// GPU model (used when `renderer` is [`Renderer::Gpu`]).
    pub gpu: GpuModel,
    /// PTE configuration (used when `renderer` is [`Renderer::Pte`]).
    pub pte: PteConfig,
    /// Link model (ignored for [`ContentPath::Offline`]).
    pub network: NetworkModel,
    /// Oracle head-motion prediction: the server always pre-rendered the
    /// right view, so every FOV check hits. Models the perfect-HMP
    /// systems of the paper's §8.5 comparison (the HMP inference energy
    /// itself is accounted by the experiment driver).
    pub oracle_hits: bool,
    /// FOV-video selection policy at segment boundaries.
    pub selection: SelectionPolicy,
}

impl SessionConfig {
    /// Creates a configuration with default device/GPU/PTE/link models.
    pub fn new(path: ContentPath, renderer: Renderer, sas: SasConfig) -> Self {
        SessionConfig {
            path,
            renderer,
            sas,
            device: DeviceParams::default(),
            gpu: GpuModel::default(),
            pte: PteConfig::prototype(),
            network: NetworkModel::default(),
            oracle_hits: false,
            selection: SelectionPolicy::CurrentPose,
        }
    }
}

/// Results of one playback session.
#[derive(Debug, Clone, PartialEq)]
pub struct PlaybackReport {
    /// Energy by component and activity.
    pub ledger: EnergyLedger,
    /// Frames presented.
    pub frames_total: u64,
    /// FOV-check hits (SAS path only).
    pub fov_hits: u64,
    /// FOV-check misses (SAS path only).
    pub fov_misses: u64,
    /// Frames rendered through the on-device PT fallback.
    pub fallback_frames: u64,
    /// Mid-segment fallback fetches.
    pub rebuffer_events: u64,
    /// Total rendering pause from rebuffering, seconds.
    pub rebuffer_time_s: f64,
    /// Bytes received over the network (target scale).
    pub bytes_received: u64,
    /// Media duration, seconds.
    pub duration_s: f64,
}

impl PlaybackReport {
    /// FOV-miss rate over checked frames (0 when SAS was not used).
    pub fn miss_rate(&self) -> f64 {
        let checked = self.fov_hits + self.fov_misses;
        if checked == 0 {
            0.0
        } else {
            self.fov_misses as f64 / checked as f64
        }
    }

    /// Fraction of frames that could not be served from an FOV video —
    /// the quantity the paper reports as the "FOV-miss rate" (§8.2,
    /// 5.3%–12.0%): once a segment misses, its remaining frames play from
    /// the original stream and count as missed too.
    pub fn fov_miss_fraction(&self) -> f64 {
        if self.frames_total == 0 {
            0.0
        } else {
            self.fallback_frames as f64 / self.frames_total as f64
        }
    }

    /// FPS degradation: the fraction of presentation time lost to
    /// rebuffer pauses (the paper's Fig. 13 left axis, ≈1%).
    pub fn fps_drop_fraction(&self) -> f64 {
        self.rebuffer_time_s / self.duration_s
    }
}

/// Pre-resolved playback metric handles; all detached (free) when the
/// session's observer is a no-op.
#[derive(Debug, Clone, Default)]
struct SessionMetrics {
    enabled: bool,
    frames: evr_obs::Counter,
    fov_hits: evr_obs::Counter,
    fov_misses: evr_obs::Counter,
    fallback_frames: evr_obs::Counter,
    rebuffer_events: evr_obs::Counter,
    rebuffer_seconds: evr_obs::Gauge,
    segments: evr_obs::Counter,
    fetch_bytes: evr_obs::Counter,
    frame_seconds: evr_obs::Histogram,
    pt_gpu_frames: evr_obs::Counter,
    pt_pte_frames: evr_obs::Counter,
    pte_frames: evr_obs::Counter,
    pte_active_cycles: evr_obs::Counter,
    pte_stall_cycles: evr_obs::Counter,
    pte_pmem_hits: evr_obs::Counter,
    pte_pmem_misses: evr_obs::Counter,
}

impl SessionMetrics {
    fn resolve(observer: &Observer) -> Self {
        SessionMetrics {
            enabled: observer.is_enabled(),
            frames: observer.counter(names::FRAMES),
            fov_hits: observer.counter(names::FOV_HITS),
            fov_misses: observer.counter(names::FOV_MISSES),
            fallback_frames: observer.counter(names::FALLBACK_FRAMES),
            rebuffer_events: observer.counter(names::REBUFFER_EVENTS),
            rebuffer_seconds: observer.gauge(names::REBUFFER_SECONDS),
            segments: observer.counter(names::SEGMENTS),
            fetch_bytes: observer.counter(names::FETCH_BYTES),
            frame_seconds: observer.histogram(names::FRAME_SECONDS, &evr_obs::LATENCY_BOUNDS_S),
            pt_gpu_frames: observer.counter(names::PT_GPU_FRAMES),
            pt_pte_frames: observer.counter(names::PT_PTE_FRAMES),
            pte_frames: observer.counter(names::PTE_FRAMES),
            pte_active_cycles: observer.counter(names::PTE_ACTIVE_CYCLES),
            pte_stall_cycles: observer.counter(names::PTE_STALL_CYCLES),
            pte_pmem_hits: observer.counter(names::PTE_PMEM_HITS),
            pte_pmem_misses: observer.counter(names::PTE_PMEM_MISSES),
        }
    }
}

/// The playback simulator.
#[derive(Debug, Clone)]
pub struct PlaybackSession {
    cfg: SessionConfig,
    /// Pre-analysed PTE frame cost (orientation dependence of the memory
    /// pattern is second-order; one representative analysis is reused).
    pte_frame: FrameStats,
    observer: Observer,
    metrics: SessionMetrics,
}

impl PlaybackSession {
    /// Creates a session, pre-analysing the PTE cost for the configured
    /// source/viewport geometry.
    pub fn new(cfg: SessionConfig) -> Self {
        Self::with_observer(cfg, Observer::noop())
    }

    /// Like [`PlaybackSession::new`], but every run emits per-frame
    /// spans, FOV-check outcomes and playback counters into `observer`.
    pub fn with_observer(cfg: SessionConfig, observer: Observer) -> Self {
        let (sw, sh) = cfg.sas.target_src;
        let pte = Pte::new(cfg.pte);
        let pte_frame = pte.analyze_frame_strided(sw, sh, evr_math::EulerAngles::default(), 4);
        let metrics = SessionMetrics::resolve(&observer);
        PlaybackSession { cfg, pte_frame, observer, metrics }
    }

    /// Replaces the session's observer (a no-op observer detaches all
    /// instrumentation).
    pub fn set_observer(&mut self, observer: Observer) {
        self.metrics = SessionMetrics::resolve(&observer);
        self.observer = observer;
    }

    /// The session's observer (a no-op handle unless one was attached).
    pub fn observer(&self) -> &Observer {
        &self.observer
    }

    /// The configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.cfg
    }

    /// Replays `trace` against tile-based view-guided streaming (the
    /// related-work baseline of paper §2/§9): per segment, in-view tiles
    /// stream at high quality and the rest at low quality, cutting
    /// bandwidth — but every frame still needs full on-device projective
    /// transformation with the configured renderer.
    ///
    /// The `server`'s catalog supplies frame structure and timing; wire
    /// and decode byte counts come from `tiled`.
    pub fn run_tiled(
        &self,
        server: &SasServer,
        tiled: &evr_sas::TiledCatalog,
        trace: &HeadTrace,
    ) -> PlaybackReport {
        let cfg = &self.cfg;
        let catalog = server.catalog();
        assert_eq!(
            tiled.segment_count(),
            catalog.segment_count(),
            "tiled catalog must cover the same segments"
        );
        let src_px = cfg.sas.target_src.0 as u64 * cfg.sas.target_src.1 as u64;
        let slot = 1.0 / FPS;

        let m = &self.metrics;
        let mut ledger = EnergyLedger::new();
        let mut frames_total = 0u64;
        let mut bytes_received = 0u64;
        for seg in 0..catalog.segment_count() {
            let _seg_span = self
                .observer
                .is_enabled()
                .then(|| self.observer.span(names::SPAN_SEGMENT, -1, seg as i64));
            m.segments.inc();
            let original = catalog.original_segment(seg);
            let n = original.frames.len() as u64;
            let seg_start_t = original.start_index as f64 / FPS;
            let pose = trace.pose_at(seg_start_t);
            let seg_bytes = tiled.segment_bytes(seg, pose, cfg.sas.device_fov);
            bytes_received += seg_bytes;
            m.fetch_bytes.add(seg_bytes);
            let mut gpu_used = false;
            for _ in 0..n {
                // Full-resolution decode of fewer bits, then full PT.
                self.account_decode(&mut ledger, src_px, seg_bytes / n);
                gpu_used |= self.account_pt(&mut ledger, slot);
                if m.enabled {
                    self.note_pt_metrics();
                }
                frames_total += 1;
                m.frames.inc();
                m.fallback_frames.inc();
            }
            if gpu_used {
                ledger.add(
                    Component::Compute,
                    Activity::ProjectiveTransform,
                    cfg.gpu.session_energy(n as f64 / FPS),
                );
            }
        }

        let duration_s = frames_total as f64 / FPS;
        ledger.set_duration(duration_s);
        let d = &cfg.device;
        ledger.add(Component::Display, Activity::DisplayScan, d.display_energy(duration_s));
        ledger.add(
            Component::Memory,
            Activity::DisplayScan,
            d.dram_energy(d.display_dram_bytes(duration_s)),
        );
        ledger.add(
            Component::Network,
            Activity::NetworkRx,
            d.network_energy(bytes_received, duration_s),
        );
        ledger.add(
            Component::Storage,
            Activity::StorageIo,
            d.storage_energy(bytes_received, duration_s),
        );
        ledger.add(Component::Compute, Activity::Base, d.base_energy(duration_s));
        // Tile selection / multi-stream management: about half of SAS's
        // client-control cost (no per-frame FOV checking).
        ledger.add(Component::Compute, Activity::Base, 0.5 * d.sas_client_energy(duration_s));
        ledger.add(Component::Memory, Activity::Base, d.dram_static_energy(duration_s));
        ledger.mirror_gauges(&self.observer);

        PlaybackReport {
            ledger,
            frames_total,
            fov_hits: 0,
            fov_misses: 0,
            fallback_frames: frames_total,
            rebuffer_events: 0,
            rebuffer_time_s: 0.0,
            bytes_received,
            duration_s,
        }
    }

    /// Replays `trace` against `server`'s video.
    pub fn run(&self, server: &SasServer, trace: &HeadTrace) -> PlaybackReport {
        let cfg = &self.cfg;
        let obs = &self.observer;
        let m = &self.metrics;
        let observed = obs.is_enabled();
        let catalog = server.catalog();
        let fov_scale = cfg.sas.fov_byte_scale();
        let src_scale = cfg.sas.src_byte_scale();
        let src_px = cfg.sas.target_src.0 as u64 * cfg.sas.target_src.1 as u64;
        let fov_px = cfg.sas.target_fov.0 as u64 * cfg.sas.target_fov.1 as u64;
        let slot = 1.0 / FPS;

        let mut ledger = EnergyLedger::new();
        let mut checker = FovChecker::new(cfg.sas.device_fov);
        let mut fallback_frames = 0u64;
        let mut frames_total = 0u64;
        let mut rebuffer_events = 0u64;
        let mut rebuffer_time_s = 0.0f64;
        let mut bytes_received = 0u64;
        let mut storage_read_bytes = 0u64;

        for seg in 0..catalog.segment_count() {
            let _seg_span = observed.then(|| obs.span(names::SPAN_SEGMENT, -1, seg as i64));
            m.segments.inc();
            let original = catalog.original_segment(seg);
            let n = original.frames.len() as u64;
            let seg_start_t = original.start_index as f64 / FPS;
            let seg_duration = n as f64 / FPS;
            let orig_bytes = catalog.original_target_bytes(seg);
            let mut gpu_used = false;

            let chosen = if cfg.path.uses_sas() {
                server.best_cluster(seg, self.selection_pose(trace, seg_start_t))
            } else {
                None
            };

            match chosen {
                Some(cluster) => {
                    let (fov_seg, meta) =
                        match server.handle(Request::FovVideo { segment: seg, cluster }) {
                            Response::FovVideo { segment, meta, wire_bytes } => {
                                bytes_received += wire_bytes;
                                m.fetch_bytes.add(wire_bytes);
                                (segment, meta)
                            }
                            _ => unreachable!("best_cluster returned a listed cluster"),
                        };
                    let mut fell_back = false;
                    #[allow(clippy::needless_range_loop)] // indexes three parallel sequences
                    for f in 0..n as usize {
                        let frame_idx = frames_total as i64;
                        let _frame_span =
                            observed.then(|| obs.span(names::SPAN_FRAME, frame_idx, seg as i64));
                        let frame_t0 = observed.then(Instant::now);
                        let t = seg_start_t + f as f64 * slot;
                        let pose = trace.pose_at(t);
                        if !fell_back {
                            let outcome = {
                                let _fov_span = observed.then(|| {
                                    obs.span(names::SPAN_FOV_CHECK, frame_idx, seg as i64)
                                });
                                if cfg.oracle_hits {
                                    checker.check(meta[f].orientation, &meta[f])
                                } else {
                                    checker.check(pose, &meta[f])
                                }
                            };
                            match outcome {
                                CheckOutcome::Hit => {
                                    if observed {
                                        m.fov_hits.inc();
                                        obs.mark(names::MARK_FOV_HIT, frame_idx, seg as i64, 1.0);
                                    }
                                    // Direct display: decode the FOV frame only.
                                    self.account_decode(
                                        &mut ledger,
                                        fov_px,
                                        frame_wire_bytes(&fov_seg.frames[f], fov_scale),
                                    );
                                    frames_total += 1;
                                    if observed {
                                        m.frames.inc();
                                        if let Some(t0) = frame_t0 {
                                            m.frame_seconds.observe(t0.elapsed().as_secs_f64());
                                        }
                                    }
                                    continue;
                                }
                                CheckOutcome::Miss => {
                                    if observed {
                                        m.fov_misses.inc();
                                        obs.mark(names::MARK_FOV_MISS, frame_idx, seg as i64, 1.0);
                                    }
                                    // Fetch the original segment and fall
                                    // back for the segment's remainder.
                                    fell_back = true;
                                    rebuffer_events += 1;
                                    let intra = frame_wire_bytes(&original.frames[0], src_scale);
                                    let pause = cfg.network.rebuffer_time(intra);
                                    rebuffer_time_s += pause;
                                    if observed {
                                        m.rebuffer_events.inc();
                                        m.rebuffer_seconds.add(pause);
                                        obs.mark(
                                            names::MARK_REBUFFER,
                                            frame_idx,
                                            seg as i64,
                                            pause,
                                        );
                                    }
                                    if cfg.path.uses_network() {
                                        bytes_received += orig_bytes;
                                        if observed {
                                            m.fetch_bytes.add(orig_bytes);
                                        }
                                    } else {
                                        storage_read_bytes += orig_bytes;
                                    }
                                    // Catch-up decode: the original's GOP
                                    // starts at the segment boundary, so
                                    // reaching frame `f` means decoding
                                    // its whole reference chain first.
                                    for g in 0..f {
                                        self.account_decode(
                                            &mut ledger,
                                            src_px,
                                            frame_wire_bytes(&original.frames[g], src_scale),
                                        );
                                    }
                                }
                            }
                        }
                        // Fallback path: decode original + on-device PT.
                        self.account_decode(
                            &mut ledger,
                            src_px,
                            frame_wire_bytes(&original.frames[f], src_scale),
                        );
                        {
                            let _pt_span =
                                observed.then(|| obs.span(names::SPAN_PT, frame_idx, seg as i64));
                            gpu_used |= self.account_pt(&mut ledger, slot);
                        }
                        fallback_frames += 1;
                        frames_total += 1;
                        if observed {
                            self.note_pt_metrics();
                            m.fallback_frames.inc();
                            m.frames.inc();
                            if let Some(t0) = frame_t0 {
                                m.frame_seconds.observe(t0.elapsed().as_secs_f64());
                            }
                        }
                    }
                }
                None => {
                    // No SAS (or nothing materialised): original path.
                    if cfg.path.uses_network() {
                        bytes_received += orig_bytes;
                        if observed {
                            m.fetch_bytes.add(orig_bytes);
                        }
                    } else {
                        storage_read_bytes += orig_bytes;
                    }
                    if observed {
                        for f in 0..n as usize {
                            let frame_idx = frames_total as i64;
                            let _frame_span = obs.span(names::SPAN_FRAME, frame_idx, seg as i64);
                            let frame_t0 = Instant::now();
                            self.account_decode(
                                &mut ledger,
                                src_px,
                                frame_wire_bytes(&original.frames[f], src_scale),
                            );
                            {
                                let _pt_span = obs.span(names::SPAN_PT, frame_idx, seg as i64);
                                gpu_used |= self.account_pt(&mut ledger, slot);
                            }
                            self.note_pt_metrics();
                            fallback_frames += 1;
                            frames_total += 1;
                            m.fallback_frames.inc();
                            m.frames.inc();
                            m.frame_seconds.observe(frame_t0.elapsed().as_secs_f64());
                        }
                    } else {
                        gpu_used |=
                            self.play_original_quiet(&mut ledger, original, src_px, src_scale);
                        fallback_frames += n;
                        frames_total += n;
                    }
                }
            }
            // Keeping the GPU context alive costs session power for the
            // whole segment in which the GPU ran at all (§3: invoking the
            // GPU "necessarily invokes the entire software stack").
            if gpu_used {
                ledger.add(
                    Component::Compute,
                    Activity::ProjectiveTransform,
                    cfg.gpu.session_energy(seg_duration),
                );
            }
        }

        let duration_s = frames_total as f64 / FPS;
        ledger.set_duration(duration_s);

        // Session-wide components.
        let d = &cfg.device;
        ledger.add(Component::Display, Activity::DisplayScan, d.display_energy(duration_s));
        ledger.add(
            Component::Memory,
            Activity::DisplayScan,
            d.dram_energy(d.display_dram_bytes(duration_s)),
        );
        if cfg.path.uses_network() {
            // Under injected loss the radio moves (and pays for) the
            // retransmitted bytes too.
            ledger.add(
                Component::Network,
                Activity::NetworkRx,
                d.network_energy(cfg.network.wire_bytes(bytes_received), duration_s),
            );
            // Streamed segments are cached to storage (§3: "involved
            // mainly for temporary caching").
            ledger.add(
                Component::Storage,
                Activity::StorageIo,
                d.storage_energy(bytes_received, duration_s),
            );
        } else {
            ledger.add(
                Component::Storage,
                Activity::StorageIo,
                d.storage_energy(storage_read_bytes, duration_s),
            );
        }
        ledger.add(Component::Compute, Activity::Base, d.base_energy(duration_s));
        if cfg.path.uses_sas() {
            ledger.add(Component::Compute, Activity::Base, d.sas_client_energy(duration_s));
        }
        ledger.add(Component::Memory, Activity::Base, d.dram_static_energy(duration_s));
        ledger.mirror_gauges(obs);

        PlaybackReport {
            ledger,
            frames_total,
            fov_hits: checker.hits(),
            fov_misses: checker.misses(),
            fallback_frames,
            rebuffer_events,
            rebuffer_time_s,
            bytes_received,
            duration_s,
        }
    }

    /// The pose used for stream selection at time `t`, per the configured
    /// policy. Linear prediction extrapolates from the *past* only (the
    /// client cannot peek ahead in its own IMU stream).
    fn selection_pose(&self, trace: &HeadTrace, t: f64) -> evr_math::EulerAngles {
        match self.cfg.selection {
            SelectionPolicy::CurrentPose => trace.pose_at(t),
            SelectionPolicy::LinearPrediction { lookahead_s } => {
                let dt = 0.1;
                let now = trace.pose_at(t);
                let before = trace.pose_at((t - dt).max(0.0));
                let yaw_vel = (now.yaw - before.yaw).wrapped().0 / dt;
                let pitch_vel = (now.pitch.0 - before.pitch.0) / dt;
                evr_math::EulerAngles::new(
                    evr_math::Radians(now.yaw.0 + yaw_vel * lookahead_s),
                    evr_math::Radians(now.pitch.0 + pitch_vel * lookahead_s),
                    now.roll,
                )
                .normalized()
            }
        }
    }

    #[inline]
    fn account_decode(&self, ledger: &mut EnergyLedger, pixels: u64, bytes: u64) {
        let d = &self.cfg.device;
        ledger.add(Component::Compute, Activity::Decode, d.decode_energy(pixels, bytes));
        ledger.add(Component::Memory, Activity::Decode, d.dram_energy(d.decode_dram_bytes(pixels)));
    }

    /// The uninstrumented decode + PT loop over one original segment;
    /// returns whether the GPU ran. Kept out of line so the quiet path
    /// keeps the tight codegen of an unobserved session regardless of how
    /// much instrumentation surrounds it in [`PlaybackSession::run`].
    #[inline(never)]
    fn play_original_quiet(
        &self,
        ledger: &mut EnergyLedger,
        original: &EncodedSegment,
        src_px: u64,
        src_scale: f64,
    ) -> bool {
        let slot = 1.0 / FPS;
        let mut gpu_used = false;
        for frame in &original.frames {
            self.account_decode(ledger, src_px, frame_wire_bytes(frame, src_scale));
            gpu_used |= self.account_pt(ledger, slot);
        }
        gpu_used
    }

    /// Mirrors one rendered frame's PT stats into the metric handles.
    /// Callers invoke this on observed runs only, keeping the quiet path
    /// identical to an uninstrumented session.
    fn note_pt_metrics(&self) {
        let m = &self.metrics;
        match self.cfg.renderer {
            Renderer::Gpu => m.pt_gpu_frames.inc(),
            Renderer::Pte => {
                // Mirror the (pre-analysed, representative) PTU stats of
                // this rendered frame into the engine counters.
                let s = &self.pte_frame;
                m.pt_pte_frames.inc();
                m.pte_frames.inc();
                m.pte_active_cycles.add(s.active_cycles);
                m.pte_stall_cycles.add(s.stall_cycles);
                m.pte_pmem_hits.add(s.pmem_hits);
                m.pte_pmem_misses.add(s.pmem_misses);
            }
        }
    }

    /// Accounts one frame of on-device PT; returns whether the GPU ran.
    #[inline(always)]
    fn account_pt(&self, ledger: &mut EnergyLedger, slot: f64) -> bool {
        let d = &self.cfg.device;
        match self.cfg.renderer {
            Renderer::Gpu => {
                let cost = self.cfg.gpu.pt_frame(d.panel_pixels);
                ledger.add(Component::Compute, Activity::ProjectiveTransform, cost.energy_j);
                ledger.add(
                    Component::Memory,
                    Activity::ProjectiveTransform,
                    d.dram_energy(cost.dram_bytes),
                );
                true
            }
            Renderer::Pte => {
                let s = &self.pte_frame;
                // Datapath + SRAM + leakage for the whole frame slot (the
                // PTE stays powered across slots it renders in).
                let idle = (slot - s.frame_time_s()).max(0.0)
                    * Pte::new(self.cfg.pte).energy_params().leakage_w;
                ledger.add(
                    Component::Compute,
                    Activity::ProjectiveTransform,
                    s.compute_energy_j + s.sram_energy_j + s.leakage_energy_j + idle,
                );
                ledger.add(
                    Component::Memory,
                    Activity::ProjectiveTransform,
                    d.dram_energy(s.dram_read_bytes + s.dram_write_bytes),
                );
                false
            }
        }
    }
}

fn frame_wire_bytes(frame: &EncodedFrame, scale: f64) -> u64 {
    (frame.payload_bytes() as f64 * scale) as u64 + (frame.bytes - frame.payload_bytes())
}

/// Total target-scale wire bytes of a segment (helper shared with tests
/// and experiment drivers).
pub fn segment_wire_bytes(segment: &EncodedSegment, scale: f64) -> u64 {
    segment.frames.iter().map(|f| frame_wire_bytes(f, scale)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use evr_sas::{ingest_video, SasConfig};
    use evr_trace::behavior::{generate_user_trace, params_for};
    use evr_video::library::{scene_for, VideoId};

    fn setup(video: VideoId, secs: f64) -> (SasServer, HeadTrace) {
        let scene = scene_for(video);
        let server = SasServer::new(ingest_video(&scene, &SasConfig::tiny_for_tests(), secs));
        let trace = generate_user_trace(&scene, &params_for(video), 3, secs, 30.0);
        (server, trace)
    }

    fn run(
        path: ContentPath,
        renderer: Renderer,
        server: &SasServer,
        trace: &HeadTrace,
    ) -> PlaybackReport {
        let cfg = SessionConfig::new(path, renderer, SasConfig::tiny_for_tests());
        PlaybackSession::new(cfg).run(server, trace)
    }

    #[test]
    fn baseline_renders_every_frame_on_gpu() {
        let (server, trace) = setup(VideoId::Rhino, 1.0);
        let r = run(ContentPath::OnlineBaseline, Renderer::Gpu, &server, &trace);
        assert_eq!(r.frames_total, 30);
        assert_eq!(r.fallback_frames, 30);
        assert_eq!(r.fov_hits + r.fov_misses, 0);
        assert!(r.ledger.get(Component::Compute, Activity::ProjectiveTransform) > 0.0);
    }

    #[test]
    fn sas_hits_avoid_pt_entirely() {
        let (server, trace) = setup(VideoId::Rhino, 1.0);
        let r = run(ContentPath::OnlineSas, Renderer::Gpu, &server, &trace);
        assert!(r.fov_hits > 0, "expected some hits");
        // PT energy strictly below baseline.
        let base = run(ContentPath::OnlineBaseline, Renderer::Gpu, &server, &trace);
        assert!(
            r.ledger.activity_total(Activity::ProjectiveTransform)
                < base.ledger.activity_total(Activity::ProjectiveTransform)
        );
    }

    #[test]
    fn pte_renderer_uses_less_pt_energy_than_gpu() {
        let (server, trace) = setup(VideoId::Rs, 1.0);
        let gpu = run(ContentPath::OnlineBaseline, Renderer::Gpu, &server, &trace);
        let pte = run(ContentPath::OnlineBaseline, Renderer::Pte, &server, &trace);
        let pt = |r: &PlaybackReport| r.ledger.activity_total(Activity::ProjectiveTransform);
        assert!(pt(&pte) < pt(&gpu) / 3.0, "pte {} gpu {}", pt(&pte), pt(&gpu));
        // And less total device energy.
        assert!(pte.ledger.total() < gpu.ledger.total());
    }

    #[test]
    fn offline_has_no_network_energy() {
        let (server, trace) = setup(VideoId::Timelapse, 1.0);
        let r = run(ContentPath::Offline, Renderer::Pte, &server, &trace);
        assert_eq!(r.ledger.component_total(Component::Network), 0.0);
        assert!(r.ledger.component_total(Component::Storage) > 0.0);
        assert_eq!(r.bytes_received, 0);
    }

    #[test]
    fn sas_reduces_received_bytes_for_tracking_user() {
        // A user who stares at the herd never misses; SAS then streams
        // only the (smaller) FOV videos — the Fig. 13 bandwidth effect.
        let scene = scene_for(VideoId::Rhino);
        let server = SasServer::new(ingest_video(&scene, &SasConfig::tiny_for_tests(), 2.0));
        let herd = scene.objects()[0].position(0.0);
        let s = evr_math::SphericalCoord::from_vector(herd).unwrap();
        let pose = evr_math::EulerAngles::new(s.lon, s.lat, evr_math::Radians(0.0));
        let samples: Vec<_> =
            (0..61).map(|i| evr_trace::PoseSample { t: i as f64 / 30.0, pose }).collect();
        let trace = HeadTrace::from_samples(samples);

        let sas = run(ContentPath::OnlineSas, Renderer::Pte, &server, &trace);
        let base = run(ContentPath::OnlineBaseline, Renderer::Pte, &server, &trace);
        // Cluster centroids drift segment to segment (detector noise,
        // k-means variation); a staring user still hits almost always.
        assert!(
            sas.fov_miss_fraction() < 0.4,
            "staring user misses {:.0}% of frames",
            100.0 * sas.fov_miss_fraction()
        );
        assert!(
            sas.bytes_received < base.bytes_received,
            "sas {} baseline {}",
            sas.bytes_received,
            base.bytes_received
        );
    }

    #[test]
    fn misses_cause_rebuffering_and_fallback() {
        // Force misses by streaming with zero margin and a twitchy user.
        let scene = scene_for(VideoId::Rs);
        let mut sas_cfg = SasConfig::tiny_for_tests();
        sas_cfg.fov_margin = evr_math::Degrees(0.5);
        let server = SasServer::new(ingest_video(&scene, &sas_cfg, 2.0));
        let trace = generate_user_trace(&scene, &params_for(VideoId::Rs), 9, 2.0, 30.0);
        let cfg = SessionConfig::new(ContentPath::OnlineSas, Renderer::Gpu, sas_cfg);
        let r = PlaybackSession::new(cfg).run(&server, &trace);
        assert!(r.fov_misses > 0);
        assert_eq!(r.rebuffer_events > 0, r.fov_misses > 0);
        assert!(r.rebuffer_time_s > 0.0);
        assert!(r.fps_drop_fraction() < 0.2);
        assert!(r.fallback_frames > 0);
    }

    #[test]
    fn observed_run_mirrors_report_counters() {
        let (server, trace) = setup(VideoId::Rhino, 1.0);
        let obs = evr_obs::Observer::enabled();
        let cfg =
            SessionConfig::new(ContentPath::OnlineSas, Renderer::Pte, SasConfig::tiny_for_tests());
        let session = PlaybackSession::with_observer(cfg, obs.clone());
        let r = session.run(&server, &trace);

        use evr_obs::names;
        assert_eq!(obs.counter(names::FRAMES).get(), r.frames_total);
        assert_eq!(obs.counter(names::FOV_HITS).get(), r.fov_hits);
        assert_eq!(obs.counter(names::FOV_MISSES).get(), r.fov_misses);
        assert_eq!(obs.counter(names::FALLBACK_FRAMES).get(), r.fallback_frames);
        assert_eq!(obs.counter(names::REBUFFER_EVENTS).get(), r.rebuffer_events);
        assert_eq!(obs.counter(names::FETCH_BYTES).get(), r.bytes_received);
        assert!((obs.gauge(names::REBUFFER_SECONDS).get() - r.rebuffer_time_s).abs() < 1e-12);
        // Frame latency histogram saw every frame.
        let hist = obs.histogram(names::FRAME_SECONDS, &evr_obs::LATENCY_BOUNDS_S);
        assert_eq!(hist.snapshot().count, r.frames_total);
        // PTE renderer: every fallback frame went through the engine mirror.
        assert_eq!(obs.counter(names::PT_PTE_FRAMES).get(), r.fallback_frames);
        assert_eq!(obs.counter(names::PT_GPU_FRAMES).get(), 0);
        if r.fallback_frames > 0 {
            assert!(obs.counter(names::PTE_ACTIVE_CYCLES).get() > 0);
        }
        // Energy gauges mirror the ledger per component.
        for c in Component::ALL {
            let gauge = obs.gauge(&names::energy_gauge(&c.to_string()));
            assert!(
                (gauge.get() - r.ledger.component_total(c)).abs() < 1e-9,
                "{c}: gauge {} vs ledger {}",
                gauge.get(),
                r.ledger.component_total(c)
            );
        }
        // Spans cover every frame, hit/miss marks every check.
        let events = obs.events();
        let frame_begins = events
            .iter()
            .filter(|e| e.name == names::SPAN_FRAME && e.kind == evr_obs::EventKind::SpanBegin)
            .count() as u64;
        assert_eq!(frame_begins, r.frames_total);
        let hits = events.iter().filter(|e| e.name == names::MARK_FOV_HIT).count() as u64;
        let misses = events.iter().filter(|e| e.name == names::MARK_FOV_MISS).count() as u64;
        assert_eq!((hits, misses), (r.fov_hits, r.fov_misses));
    }

    #[test]
    fn unobserved_run_matches_observed_run() {
        let (server, trace) = setup(VideoId::Rs, 1.0);
        let cfg =
            SessionConfig::new(ContentPath::OnlineSas, Renderer::Gpu, SasConfig::tiny_for_tests());
        let silent = PlaybackSession::new(cfg).run(&server, &trace);
        let observed =
            PlaybackSession::with_observer(cfg, evr_obs::Observer::enabled()).run(&server, &trace);
        assert_eq!(silent, observed);
    }

    #[test]
    fn report_duration_matches_frames() {
        let (server, trace) = setup(VideoId::Paris, 1.0);
        let r = run(ContentPath::Live, Renderer::Pte, &server, &trace);
        assert!((r.duration_s - r.frames_total as f64 / 30.0).abs() < 1e-9);
        assert!(r.ledger.total_power() > 1.0, "device draws watts");
    }
}

#[cfg(test)]
mod selection_tests {
    use super::*;
    use evr_sas::{ingest_video, SasConfig};
    use evr_trace::PoseSample;
    use evr_video::library::{scene_for, VideoId};

    /// A user sweeping steadily rightward at 30°/s: linear prediction
    /// should select the stream ahead of the sweep.
    fn sweeping_trace(secs: f64) -> HeadTrace {
        let samples = (0..=(secs * 30.0) as u64)
            .map(|i| {
                let t = i as f64 / 30.0;
                PoseSample {
                    t,
                    pose: evr_math::EulerAngles::from_degrees(t * 30.0 - 30.0, -8.0, 0.0),
                }
            })
            .collect();
        HeadTrace::from_samples(samples)
    }

    #[test]
    fn linear_prediction_does_not_hurt_a_sweeping_user() {
        let scene = scene_for(VideoId::Paris);
        let sas = SasConfig::tiny_for_tests();
        let server = SasServer::new(ingest_video(&scene, &sas, 2.0));
        let trace = sweeping_trace(2.0);

        let run = |selection: SelectionPolicy| {
            let mut cfg = SessionConfig::new(ContentPath::OnlineSas, Renderer::Pte, sas);
            cfg.selection = selection;
            PlaybackSession::new(cfg).run(&server, &trace)
        };
        let cur = run(SelectionPolicy::CurrentPose);
        let pred = run(SelectionPolicy::LinearPrediction { lookahead_s: 0.5 });
        assert!(
            pred.fov_miss_fraction() <= cur.fov_miss_fraction() + 1e-9,
            "pred {} vs cur {}",
            pred.fov_miss_fraction(),
            cur.fov_miss_fraction()
        );
    }

    #[test]
    fn prediction_with_zero_lookahead_equals_current_pose() {
        let scene = scene_for(VideoId::Rhino);
        let sas = SasConfig::tiny_for_tests();
        let server = SasServer::new(ingest_video(&scene, &sas, 1.0));
        let trace = sweeping_trace(1.0);
        let run = |selection: SelectionPolicy| {
            let mut cfg = SessionConfig::new(ContentPath::OnlineSas, Renderer::Pte, sas);
            cfg.selection = selection;
            PlaybackSession::new(cfg).run(&server, &trace)
        };
        assert_eq!(
            run(SelectionPolicy::CurrentPose),
            run(SelectionPolicy::LinearPrediction { lookahead_s: 0.0 })
        );
    }
}
