//! The per-user playback simulation.
//!
//! One [`PlaybackSession::run`] replays a head trace against an ingested
//! video, frame by frame, reproducing the client control flow of the
//! paper's Fig. 4: fetch → decode → FOV check → (PT on GPU or PTE, or
//! direct display) → display, while tagging every joule into an
//! [`EnergyLedger`].

use serde::{Deserialize, Serialize};
use std::time::Instant;

use evr_energy::{Activity, Component, DeviceParams, EnergyLedger};
use evr_faults::{FaultInjector, FaultSetup, LinkState, RequestFate};
use evr_obs::{names, Observer};
use evr_projection::FovFrameMeta;
use evr_pte::{FrameStats, GpuModel, Pte, PteConfig};
use evr_sas::checker::{CheckOutcome, FovChecker};
use evr_sas::ingest::FPS;
use evr_sas::{Request, Response, SasConfig, SasServer};
use evr_trace::HeadTrace;
use evr_video::codec::{EncodedFrame, EncodedSegment};

use crate::network::NetworkModel;

/// How the client picks which FOV video to request at a segment boundary.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SelectionPolicy {
    /// Request the cluster nearest the *current* head pose (the paper's
    /// deployed behaviour, §5.3).
    #[default]
    CurrentPose,
    /// Extrapolate the head pose half a segment ahead from its recent
    /// angular velocity and select for the predicted pose — the
    /// lightweight client-side prediction the paper names as future work
    /// (§8.2: "combining head movement prediction with SAS would further
    /// improve the bandwidth efficiency").
    LinearPrediction {
        /// How far ahead to extrapolate, seconds.
        lookahead_s: f64,
    },
}

/// Which hardware performs on-device projective transformation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Renderer {
    /// Texture mapping on the mobile GPU (today's path).
    Gpu,
    /// The PTE accelerator (HAR).
    Pte,
}

/// Where content comes from (paper §8.1's three use-cases, plus the
/// no-SAS streaming baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContentPath {
    /// Online streaming through SAS: FOV videos with original fallback.
    OnlineSas,
    /// Online streaming of the original video only (the paper's baseline).
    OnlineBaseline,
    /// Live streaming: original video, no server pre-processing possible.
    Live,
    /// Offline playback from local storage: no network at all.
    Offline,
}

impl ContentPath {
    fn uses_network(self) -> bool {
        !matches!(self, ContentPath::Offline)
    }

    fn uses_sas(self) -> bool {
        matches!(self, ContentPath::OnlineSas)
    }
}

/// Configuration of one playback session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Content source.
    pub path: ContentPath,
    /// PT hardware for non-hit frames.
    pub renderer: Renderer,
    /// SAS configuration (supplies the analysis/target scale model).
    pub sas: SasConfig,
    /// Device energy parameters.
    pub device: DeviceParams,
    /// GPU model (used when `renderer` is [`Renderer::Gpu`]).
    pub gpu: GpuModel,
    /// PTE configuration (used when `renderer` is [`Renderer::Pte`]).
    pub pte: PteConfig,
    /// Link model (ignored for [`ContentPath::Offline`]).
    pub network: NetworkModel,
    /// Oracle head-motion prediction: the server always pre-rendered the
    /// right view, so every FOV check hits. Models the perfect-HMP
    /// systems of the paper's §8.5 comparison (the HMP inference energy
    /// itself is accounted by the experiment driver).
    pub oracle_hits: bool,
    /// FOV-video selection policy at segment boundaries.
    pub selection: SelectionPolicy,
}

impl SessionConfig {
    /// Creates a configuration with default device/GPU/PTE/link models.
    pub fn new(path: ContentPath, renderer: Renderer, sas: SasConfig) -> Self {
        SessionConfig {
            path,
            renderer,
            sas,
            device: DeviceParams::default(),
            gpu: GpuModel::default(),
            pte: PteConfig::prototype(),
            network: NetworkModel::default(),
            oracle_hits: false,
            selection: SelectionPolicy::CurrentPose,
        }
    }
}

/// What the resilience state machine did during one run. All zeros on a
/// clean run (and identically zero for [`FaultSetup::none`], which the
/// workspace's parity tests assert).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSummary {
    /// Request re-attempts after a failure.
    pub retries: u64,
    /// Request timeouts (outages, drops, dead links, slow transfers).
    pub timeouts: u64,
    /// Segments that could not be served at full quality (lower-rung or
    /// frozen).
    pub degraded_segments: u64,
    /// Frames played from the degraded lower-bitrate rung.
    pub degraded_frames: u64,
    /// Frames frozen (last image repeated) because every ladder rung
    /// failed.
    pub frozen_frames: u64,
    /// Segments whose FOV video arrived corrupt.
    pub corrupt_segments: u64,
    /// Total time spent in backoff waits, seconds.
    pub backoff_time_s: f64,
    /// Total playback stall from faults (timeouts + backoff + late
    /// deliveries), seconds; excludes the clean path's FOV-miss
    /// rebuffering, which stays in `rebuffer_time_s`.
    pub stall_time_s: f64,
}

/// Results of one playback session.
#[derive(Debug, Clone, PartialEq)]
pub struct PlaybackReport {
    /// Energy by component and activity.
    pub ledger: EnergyLedger,
    /// Frames presented.
    pub frames_total: u64,
    /// FOV-check hits (SAS path only).
    pub fov_hits: u64,
    /// FOV-check misses (SAS path only).
    pub fov_misses: u64,
    /// Frames rendered through the on-device PT fallback.
    pub fallback_frames: u64,
    /// Mid-segment fallback fetches.
    pub rebuffer_events: u64,
    /// Total rendering pause from rebuffering, seconds.
    pub rebuffer_time_s: f64,
    /// Bytes received over the network (target scale).
    pub bytes_received: u64,
    /// Media duration, seconds.
    pub duration_s: f64,
    /// Fault-handling summary (all zeros on a clean run).
    pub faults: FaultSummary,
}

impl PlaybackReport {
    /// FOV-miss rate over checked frames (0 when SAS was not used).
    pub fn miss_rate(&self) -> f64 {
        let checked = self.fov_hits + self.fov_misses;
        if checked == 0 {
            0.0
        } else {
            self.fov_misses as f64 / checked as f64
        }
    }

    /// Fraction of frames that could not be served from an FOV video —
    /// the quantity the paper reports as the "FOV-miss rate" (§8.2,
    /// 5.3%–12.0%): once a segment misses, its remaining frames play from
    /// the original stream and count as missed too.
    pub fn fov_miss_fraction(&self) -> f64 {
        if self.frames_total == 0 {
            0.0
        } else {
            self.fallback_frames as f64 / self.frames_total as f64
        }
    }

    /// FPS degradation: the fraction of presentation time lost to
    /// rebuffer pauses (the paper's Fig. 13 left axis, ≈1%). Zero (not
    /// NaN) for an empty session.
    pub fn fps_drop_fraction(&self) -> f64 {
        if self.duration_s == 0.0 {
            0.0
        } else {
            self.rebuffer_time_s / self.duration_s
        }
    }

    /// Fraction of frames served below full quality (lower rung or
    /// frozen) by the degradation ladder.
    pub fn degraded_fraction(&self) -> f64 {
        if self.frames_total == 0 {
            0.0
        } else {
            (self.faults.degraded_frames + self.faults.frozen_frames) as f64
                / self.frames_total as f64
        }
    }

    /// Fraction of frames frozen outright.
    pub fn frozen_fraction(&self) -> f64 {
        if self.frames_total == 0 {
            0.0
        } else {
            self.faults.frozen_frames as f64 / self.frames_total as f64
        }
    }

    /// Fraction of presentation time lost to *all* pauses: FOV-miss
    /// rebuffering plus fault stalls (timeouts, backoff, late segments).
    pub fn stall_fraction(&self) -> f64 {
        if self.duration_s == 0.0 {
            0.0
        } else {
            (self.rebuffer_time_s + self.faults.stall_time_s) / self.duration_s
        }
    }
}

/// Pre-resolved playback metric handles; all detached (free) when the
/// session's observer is a no-op.
#[derive(Debug, Clone, Default)]
struct SessionMetrics {
    enabled: bool,
    frames: evr_obs::Counter,
    fov_hits: evr_obs::Counter,
    fov_misses: evr_obs::Counter,
    fallback_frames: evr_obs::Counter,
    rebuffer_events: evr_obs::Counter,
    rebuffer_seconds: evr_obs::Gauge,
    segments: evr_obs::Counter,
    fetch_bytes: evr_obs::Counter,
    frame_seconds: evr_obs::Histogram,
    pt_gpu_frames: evr_obs::Counter,
    pt_pte_frames: evr_obs::Counter,
    pte_frames: evr_obs::Counter,
    pte_active_cycles: evr_obs::Counter,
    pte_stall_cycles: evr_obs::Counter,
    pte_pmem_hits: evr_obs::Counter,
    pte_pmem_misses: evr_obs::Counter,
    fault_retries: evr_obs::Counter,
    fault_timeouts: evr_obs::Counter,
    degraded_frames: evr_obs::Counter,
    frozen_frames: evr_obs::Counter,
    backoff_seconds: evr_obs::Gauge,
    fault_stall_seconds: evr_obs::Histogram,
}

/// Fault-stall histogram bounds, seconds: backoff waits (tens of ms) up
/// to multi-second outage-ladder stalls.
const STALL_BOUNDS_S: [f64; 10] = [0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0];

impl SessionMetrics {
    fn resolve(observer: &Observer) -> Self {
        SessionMetrics {
            enabled: observer.is_enabled(),
            frames: observer.counter(names::FRAMES),
            fov_hits: observer.counter(names::FOV_HITS),
            fov_misses: observer.counter(names::FOV_MISSES),
            fallback_frames: observer.counter(names::FALLBACK_FRAMES),
            rebuffer_events: observer.counter(names::REBUFFER_EVENTS),
            rebuffer_seconds: observer.gauge(names::REBUFFER_SECONDS),
            segments: observer.counter(names::SEGMENTS),
            fetch_bytes: observer.counter(names::FETCH_BYTES),
            frame_seconds: observer.histogram(names::FRAME_SECONDS, &evr_obs::LATENCY_BOUNDS_S),
            pt_gpu_frames: observer.counter(names::PT_GPU_FRAMES),
            pt_pte_frames: observer.counter(names::PT_PTE_FRAMES),
            pte_frames: observer.counter(names::PTE_FRAMES),
            pte_active_cycles: observer.counter(names::PTE_ACTIVE_CYCLES),
            pte_stall_cycles: observer.counter(names::PTE_STALL_CYCLES),
            pte_pmem_hits: observer.counter(names::PTE_PMEM_HITS),
            pte_pmem_misses: observer.counter(names::PTE_PMEM_MISSES),
            fault_retries: observer.counter(names::FAULT_RETRIES),
            fault_timeouts: observer.counter(names::FAULT_TIMEOUTS),
            degraded_frames: observer.counter(names::DEGRADED_FRAMES),
            frozen_frames: observer.counter(names::FROZEN_FRAMES),
            backoff_seconds: observer.gauge(names::BACKOFF_SECONDS),
            fault_stall_seconds: observer.histogram(names::FAULT_STALL_SECONDS, &STALL_BOUNDS_S),
        }
    }
}

/// The playback simulator.
#[derive(Debug, Clone)]
pub struct PlaybackSession {
    cfg: SessionConfig,
    /// Pre-analysed PTE frame cost (orientation dependence of the memory
    /// pattern is second-order; one representative analysis is reused).
    pte_frame: FrameStats,
    observer: Observer,
    metrics: SessionMetrics,
}

impl PlaybackSession {
    /// Creates a session, pre-analysing the PTE cost for the configured
    /// source/viewport geometry.
    pub fn new(cfg: SessionConfig) -> Self {
        Self::with_observer(cfg, Observer::noop())
    }

    /// Like [`PlaybackSession::new`], but every run emits per-frame
    /// spans, FOV-check outcomes and playback counters into `observer`.
    pub fn with_observer(cfg: SessionConfig, observer: Observer) -> Self {
        let (sw, sh) = cfg.sas.target_src;
        let pte = Pte::new(cfg.pte);
        let pte_frame = pte.analyze_frame_strided(sw, sh, evr_math::EulerAngles::default(), 4);
        let metrics = SessionMetrics::resolve(&observer);
        PlaybackSession { cfg, pte_frame, observer, metrics }
    }

    /// Replaces the session's observer (a no-op observer detaches all
    /// instrumentation).
    pub fn set_observer(&mut self, observer: Observer) {
        self.metrics = SessionMetrics::resolve(&observer);
        self.observer = observer;
    }

    /// The session's observer (a no-op handle unless one was attached).
    pub fn observer(&self) -> &Observer {
        &self.observer
    }

    /// The configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.cfg
    }

    /// Replays `trace` against tile-based view-guided streaming (the
    /// related-work baseline of paper §2/§9): per segment, in-view tiles
    /// stream at high quality and the rest at low quality, cutting
    /// bandwidth — but every frame still needs full on-device projective
    /// transformation with the configured renderer.
    ///
    /// The `server`'s catalog supplies frame structure and timing; wire
    /// and decode byte counts come from `tiled`.
    pub fn run_tiled(
        &self,
        server: &SasServer,
        tiled: &evr_sas::TiledCatalog,
        trace: &HeadTrace,
    ) -> PlaybackReport {
        let cfg = &self.cfg;
        let catalog = server.catalog();
        assert_eq!(
            tiled.segment_count(),
            catalog.segment_count(),
            "tiled catalog must cover the same segments"
        );
        let src_px = cfg.sas.target_src.0 as u64 * cfg.sas.target_src.1 as u64;
        let slot = 1.0 / FPS;

        let m = &self.metrics;
        let mut ledger = EnergyLedger::new();
        let mut frames_total = 0u64;
        let mut bytes_received = 0u64;
        for seg in 0..catalog.segment_count() {
            let _seg_span = self
                .observer
                .is_enabled()
                .then(|| self.observer.span(names::SPAN_SEGMENT, -1, seg as i64));
            m.segments.inc();
            let original = catalog.original_segment(seg);
            let n = original.frames.len() as u64;
            let seg_start_t = original.start_index as f64 / FPS;
            let pose = trace.pose_at(seg_start_t);
            let seg_bytes = tiled.segment_bytes(seg, pose, cfg.sas.device_fov);
            bytes_received += seg_bytes;
            m.fetch_bytes.add(seg_bytes);
            let mut gpu_used = false;
            for _ in 0..n {
                // Full-resolution decode of fewer bits, then full PT.
                self.account_decode(&mut ledger, src_px, seg_bytes / n);
                gpu_used |= self.account_pt(&mut ledger, slot);
                if m.enabled {
                    self.note_pt_metrics();
                }
                frames_total += 1;
                m.frames.inc();
                m.fallback_frames.inc();
            }
            if gpu_used {
                ledger.add(
                    Component::Compute,
                    Activity::ProjectiveTransform,
                    cfg.gpu.session_energy(n as f64 / FPS),
                );
            }
        }

        let duration_s = frames_total as f64 / FPS;
        ledger.set_duration(duration_s);
        let d = &cfg.device;
        ledger.add(Component::Display, Activity::DisplayScan, d.display_energy(duration_s));
        ledger.add(
            Component::Memory,
            Activity::DisplayScan,
            d.dram_energy(d.display_dram_bytes(duration_s)),
        );
        ledger.add(
            Component::Network,
            Activity::NetworkRx,
            d.network_energy(bytes_received, duration_s),
        );
        ledger.add(
            Component::Storage,
            Activity::StorageIo,
            d.storage_energy(bytes_received, duration_s),
        );
        ledger.add(Component::Compute, Activity::Base, d.base_energy(duration_s));
        // Tile selection / multi-stream management: about half of SAS's
        // client-control cost (no per-frame FOV checking).
        ledger.add(Component::Compute, Activity::Base, 0.5 * d.sas_client_energy(duration_s));
        ledger.add(Component::Memory, Activity::Base, d.dram_static_energy(duration_s));
        ledger.mirror_gauges(&self.observer);

        PlaybackReport {
            ledger,
            frames_total,
            fov_hits: 0,
            fov_misses: 0,
            fallback_frames: frames_total,
            rebuffer_events: 0,
            rebuffer_time_s: 0.0,
            bytes_received,
            duration_s,
            faults: FaultSummary::default(),
        }
    }

    /// Replays `trace` against `server`'s video.
    pub fn run(&self, server: &SasServer, trace: &HeadTrace) -> PlaybackReport {
        let cfg = &self.cfg;
        let obs = &self.observer;
        let m = &self.metrics;
        let observed = obs.is_enabled();
        let catalog = server.catalog();
        let fov_scale = cfg.sas.fov_byte_scale();
        let src_scale = cfg.sas.src_byte_scale();
        let src_px = cfg.sas.target_src.0 as u64 * cfg.sas.target_src.1 as u64;
        let fov_px = cfg.sas.target_fov.0 as u64 * cfg.sas.target_fov.1 as u64;
        let slot = 1.0 / FPS;

        let mut ledger = EnergyLedger::new();
        let mut checker = FovChecker::new(cfg.sas.device_fov);
        let mut fallback_frames = 0u64;
        let mut frames_total = 0u64;
        let mut rebuffer_events = 0u64;
        let mut rebuffer_time_s = 0.0f64;
        let mut bytes_received = 0u64;
        let mut storage_read_bytes = 0u64;

        for seg in 0..catalog.segment_count() {
            let _seg_span = observed.then(|| obs.span(names::SPAN_SEGMENT, -1, seg as i64));
            m.segments.inc();
            let original = catalog.original_segment(seg);
            let n = original.frames.len() as u64;
            let seg_start_t = original.start_index as f64 / FPS;
            let seg_duration = n as f64 / FPS;
            let orig_bytes = catalog.original_target_bytes(seg);
            let mut gpu_used = false;

            let chosen = if cfg.path.uses_sas() {
                server.best_cluster(seg, self.selection_pose(trace, seg_start_t))
            } else {
                None
            };

            match chosen {
                Some(cluster) => {
                    let (fov_seg, meta) =
                        match server.handle(Request::FovVideo { segment: seg, cluster }) {
                            Response::FovVideo { segment, meta, wire_bytes } => {
                                bytes_received += wire_bytes;
                                m.fetch_bytes.add(wire_bytes);
                                (segment, meta)
                            }
                            _ => unreachable!("best_cluster returned a listed cluster"),
                        };
                    let mut fell_back = false;
                    #[allow(clippy::needless_range_loop)] // indexes three parallel sequences
                    for f in 0..n as usize {
                        let frame_idx = frames_total as i64;
                        let _frame_span =
                            observed.then(|| obs.span(names::SPAN_FRAME, frame_idx, seg as i64));
                        let frame_t0 = observed.then(Instant::now);
                        let t = seg_start_t + f as f64 * slot;
                        let pose = trace.pose_at(t);
                        if !fell_back {
                            let outcome = {
                                let _fov_span = observed.then(|| {
                                    obs.span(names::SPAN_FOV_CHECK, frame_idx, seg as i64)
                                });
                                if cfg.oracle_hits {
                                    checker.check(meta[f].orientation, &meta[f])
                                } else {
                                    checker.check(pose, &meta[f])
                                }
                            };
                            match outcome {
                                CheckOutcome::Hit => {
                                    if observed {
                                        m.fov_hits.inc();
                                        obs.mark(names::MARK_FOV_HIT, frame_idx, seg as i64, 1.0);
                                    }
                                    // Direct display: decode the FOV frame only.
                                    self.account_decode(
                                        &mut ledger,
                                        fov_px,
                                        frame_wire_bytes(&fov_seg.frames[f], fov_scale),
                                    );
                                    frames_total += 1;
                                    if observed {
                                        m.frames.inc();
                                        if let Some(t0) = frame_t0 {
                                            m.frame_seconds.observe(t0.elapsed().as_secs_f64());
                                        }
                                    }
                                    continue;
                                }
                                CheckOutcome::Miss => {
                                    if observed {
                                        m.fov_misses.inc();
                                        obs.mark(names::MARK_FOV_MISS, frame_idx, seg as i64, 1.0);
                                    }
                                    // Fetch the original segment and fall
                                    // back for the segment's remainder.
                                    fell_back = true;
                                    rebuffer_events += 1;
                                    let intra = frame_wire_bytes(&original.frames[0], src_scale);
                                    let pause = cfg.network.rebuffer_time(intra);
                                    rebuffer_time_s += pause;
                                    if observed {
                                        m.rebuffer_events.inc();
                                        m.rebuffer_seconds.add(pause);
                                        obs.mark(
                                            names::MARK_REBUFFER,
                                            frame_idx,
                                            seg as i64,
                                            pause,
                                        );
                                    }
                                    if cfg.path.uses_network() {
                                        bytes_received += orig_bytes;
                                        if observed {
                                            m.fetch_bytes.add(orig_bytes);
                                        }
                                    } else {
                                        storage_read_bytes += orig_bytes;
                                    }
                                    // Catch-up decode: the original's GOP
                                    // starts at the segment boundary, so
                                    // reaching frame `f` means decoding
                                    // its whole reference chain first.
                                    for g in 0..f {
                                        self.account_decode(
                                            &mut ledger,
                                            src_px,
                                            frame_wire_bytes(&original.frames[g], src_scale),
                                        );
                                    }
                                }
                            }
                        }
                        // Fallback path: decode original + on-device PT.
                        self.account_decode(
                            &mut ledger,
                            src_px,
                            frame_wire_bytes(&original.frames[f], src_scale),
                        );
                        {
                            let _pt_span =
                                observed.then(|| obs.span(names::SPAN_PT, frame_idx, seg as i64));
                            gpu_used |= self.account_pt(&mut ledger, slot);
                        }
                        fallback_frames += 1;
                        frames_total += 1;
                        if observed {
                            self.note_pt_metrics();
                            m.fallback_frames.inc();
                            m.frames.inc();
                            if let Some(t0) = frame_t0 {
                                m.frame_seconds.observe(t0.elapsed().as_secs_f64());
                            }
                        }
                    }
                }
                None => {
                    // No SAS (or nothing materialised): original path.
                    if cfg.path.uses_network() {
                        bytes_received += orig_bytes;
                        if observed {
                            m.fetch_bytes.add(orig_bytes);
                        }
                    } else {
                        storage_read_bytes += orig_bytes;
                    }
                    if observed {
                        for f in 0..n as usize {
                            let frame_idx = frames_total as i64;
                            let _frame_span = obs.span(names::SPAN_FRAME, frame_idx, seg as i64);
                            let frame_t0 = Instant::now();
                            self.account_decode(
                                &mut ledger,
                                src_px,
                                frame_wire_bytes(&original.frames[f], src_scale),
                            );
                            {
                                let _pt_span = obs.span(names::SPAN_PT, frame_idx, seg as i64);
                                gpu_used |= self.account_pt(&mut ledger, slot);
                            }
                            self.note_pt_metrics();
                            fallback_frames += 1;
                            frames_total += 1;
                            m.fallback_frames.inc();
                            m.frames.inc();
                            m.frame_seconds.observe(frame_t0.elapsed().as_secs_f64());
                        }
                    } else {
                        gpu_used |=
                            self.play_original_quiet(&mut ledger, original, src_px, src_scale);
                        fallback_frames += n;
                        frames_total += n;
                    }
                }
            }
            // Keeping the GPU context alive costs session power for the
            // whole segment in which the GPU ran at all (§3: invoking the
            // GPU "necessarily invokes the entire software stack").
            if gpu_used {
                ledger.add(
                    Component::Compute,
                    Activity::ProjectiveTransform,
                    cfg.gpu.session_energy(seg_duration),
                );
            }
        }

        let duration_s = frames_total as f64 / FPS;
        ledger.set_duration(duration_s);

        // Session-wide components.
        let d = &cfg.device;
        ledger.add(Component::Display, Activity::DisplayScan, d.display_energy(duration_s));
        ledger.add(
            Component::Memory,
            Activity::DisplayScan,
            d.dram_energy(d.display_dram_bytes(duration_s)),
        );
        if cfg.path.uses_network() {
            // Under injected loss the radio moves (and pays for) the
            // retransmitted bytes too.
            ledger.add(
                Component::Network,
                Activity::NetworkRx,
                d.network_energy(cfg.network.wire_bytes(bytes_received), duration_s),
            );
            // Streamed segments are cached to storage (§3: "involved
            // mainly for temporary caching").
            ledger.add(
                Component::Storage,
                Activity::StorageIo,
                d.storage_energy(bytes_received, duration_s),
            );
        } else {
            ledger.add(
                Component::Storage,
                Activity::StorageIo,
                d.storage_energy(storage_read_bytes, duration_s),
            );
        }
        ledger.add(Component::Compute, Activity::Base, d.base_energy(duration_s));
        if cfg.path.uses_sas() {
            ledger.add(Component::Compute, Activity::Base, d.sas_client_energy(duration_s));
        }
        ledger.add(Component::Memory, Activity::Base, d.dram_static_energy(duration_s));
        ledger.mirror_gauges(obs);

        PlaybackReport {
            ledger,
            frames_total,
            fov_hits: checker.hits(),
            fov_misses: checker.misses(),
            fallback_frames,
            rebuffer_events,
            rebuffer_time_s,
            bytes_received,
            duration_s,
            faults: FaultSummary::default(),
        }
    }

    /// Replays `trace` against `server`'s video under injected faults.
    ///
    /// Per segment the client walks a graceful-degradation ladder: FOV
    /// video → full-quality original → lower-bitrate rung → frame
    /// freeze. Each rung is fetched under the setup's [`RetryPolicy`]:
    /// a request times out on server outages, dropped requests, dead
    /// links and transfers slower than the deadline, and is re-attempted
    /// after an exponentially growing, deterministically jittered
    /// backoff wait. Every retry, timeout, backoff and degradation is
    /// tagged into the ledger under [`Activity::Resilience`] and counted
    /// into the `evr_fault_*` / degradation metrics.
    ///
    /// A clean `setup` — and any setup on the network-free offline
    /// path — delegates to [`PlaybackSession::run`], so the output is
    /// bit-identical to an un-faulted session.
    ///
    /// [`RetryPolicy`]: evr_faults::RetryPolicy
    pub fn run_resilient(
        &self,
        server: &SasServer,
        trace: &HeadTrace,
        setup: &FaultSetup,
    ) -> PlaybackReport {
        if setup.is_clean() || !self.cfg.path.uses_network() {
            return self.run(server, trace);
        }
        let mut injector = FaultInjector::new(setup);

        let cfg = &self.cfg;
        let obs = &self.observer;
        let m = &self.metrics;
        let observed = obs.is_enabled();
        let catalog = server.catalog();
        let fov_scale = cfg.sas.fov_byte_scale();
        let src_scale = cfg.sas.src_byte_scale();
        let src_px = cfg.sas.target_src.0 as u64 * cfg.sas.target_src.1 as u64;
        let fov_px = cfg.sas.target_fov.0 as u64 * cfg.sas.target_fov.1 as u64;
        let slot = 1.0 / FPS;

        let mut ledger = EnergyLedger::new();
        let mut checker = FovChecker::new(cfg.sas.device_fov);
        let mut fallback_frames = 0u64;
        let mut frames_total = 0u64;
        let mut rebuffer_events = 0u64;
        let mut rebuffer_time_s = 0.0f64;
        let mut bytes_received = 0u64;
        let mut wire_bytes_total = 0u64;
        let mut faults = FaultSummary::default();

        for seg in 0..catalog.segment_count() {
            let _seg_span = observed.then(|| obs.span(names::SPAN_SEGMENT, -1, seg as i64));
            m.segments.inc();
            let original = catalog.original_segment(seg);
            let n = original.frames.len() as u64;
            let seg_start_t = original.start_index as f64 / FPS;
            let seg_duration = n as f64 / FPS;
            let orig_bytes = catalog.original_target_bytes(seg);
            let mut gpu_used = false;

            // The wall clock runs ahead of media time by the accumulated
            // stalls; outage windows and link profiles are indexed by it.
            let link = injector.link_for(seg_start_t + faults.stall_time_s);
            let link_up = link.is_none_or(|l| l.is_up());
            let net = effective_network(&cfg.network, link);

            // Walk the degradation ladder until a rung delivers.
            let mut source: Option<SegmentSource<'_>> = None;
            if cfg.path.uses_sas() {
                if let Some(cluster) =
                    server.best_cluster(seg, self.selection_pose(trace, seg_start_t))
                {
                    if let Ok(Response::FovVideo { segment: fov_seg, meta, wire_bytes }) =
                        server.try_handle(Request::FovVideo { segment: seg, cluster })
                    {
                        if self.fetch_resilient(
                            &mut injector,
                            &net,
                            link_up,
                            seg_start_t,
                            seg,
                            wire_bytes,
                            &mut ledger,
                            &mut faults,
                        ) {
                            bytes_received += wire_bytes;
                            wire_bytes_total += net.wire_bytes(wire_bytes);
                            m.fetch_bytes.add(wire_bytes);
                            if injector.corrupts(seg) {
                                // The transfer was paid for; the leading
                                // intra decode detects the corruption,
                                // then the ladder descends.
                                faults.corrupt_segments += 1;
                                let d = &cfg.device;
                                let intra = frame_wire_bytes(&fov_seg.frames[0], fov_scale);
                                ledger.add(
                                    Component::Compute,
                                    Activity::Resilience,
                                    d.decode_energy(fov_px, intra),
                                );
                                ledger.add(
                                    Component::Memory,
                                    Activity::Resilience,
                                    d.dram_energy(d.decode_dram_bytes(fov_px)),
                                );
                            } else {
                                source = Some(SegmentSource::Fov { fov_seg, meta });
                            }
                        }
                    }
                }
            }
            if source.is_none()
                && self.fetch_resilient(
                    &mut injector,
                    &net,
                    link_up,
                    seg_start_t,
                    seg,
                    orig_bytes,
                    &mut ledger,
                    &mut faults,
                )
            {
                bytes_received += orig_bytes;
                wire_bytes_total += net.wire_bytes(orig_bytes);
                m.fetch_bytes.add(orig_bytes);
                source = Some(SegmentSource::Original { byte_scale: 1.0, degraded: false });
            }
            if source.is_none() {
                let low_scale = injector.low_rung_scale();
                let low_bytes = (orig_bytes as f64 * low_scale).round() as u64;
                if observed {
                    obs.mark(names::MARK_DEGRADE, -1, seg as i64, 2.0);
                }
                if self.fetch_resilient(
                    &mut injector,
                    &net,
                    link_up,
                    seg_start_t,
                    seg,
                    low_bytes,
                    &mut ledger,
                    &mut faults,
                ) {
                    bytes_received += low_bytes;
                    wire_bytes_total += net.wire_bytes(low_bytes);
                    m.fetch_bytes.add(low_bytes);
                    source =
                        Some(SegmentSource::Original { byte_scale: low_scale, degraded: true });
                }
            }
            let source = source.unwrap_or(SegmentSource::Freeze);

            match source {
                SegmentSource::Fov { fov_seg, meta } => {
                    let mut fell_back = false;
                    #[allow(clippy::needless_range_loop)] // indexes three parallel sequences
                    for f in 0..n as usize {
                        let frame_idx = frames_total as i64;
                        let _frame_span =
                            observed.then(|| obs.span(names::SPAN_FRAME, frame_idx, seg as i64));
                        let frame_t0 = observed.then(Instant::now);
                        let t = seg_start_t + f as f64 * slot;
                        let pose = trace.pose_at(t);
                        if !fell_back {
                            let outcome = {
                                let _fov_span = observed.then(|| {
                                    obs.span(names::SPAN_FOV_CHECK, frame_idx, seg as i64)
                                });
                                if cfg.oracle_hits {
                                    checker.check(meta[f].orientation, &meta[f])
                                } else {
                                    checker.check(pose, &meta[f])
                                }
                            };
                            match outcome {
                                CheckOutcome::Hit => {
                                    if observed {
                                        m.fov_hits.inc();
                                        obs.mark(names::MARK_FOV_HIT, frame_idx, seg as i64, 1.0);
                                    }
                                    self.account_decode(
                                        &mut ledger,
                                        fov_px,
                                        frame_wire_bytes(&fov_seg.frames[f], fov_scale),
                                    );
                                    frames_total += 1;
                                    if observed {
                                        m.frames.inc();
                                        if let Some(t0) = frame_t0 {
                                            m.frame_seconds.observe(t0.elapsed().as_secs_f64());
                                        }
                                    }
                                    continue;
                                }
                                CheckOutcome::Miss => {
                                    if observed {
                                        m.fov_misses.inc();
                                        obs.mark(names::MARK_FOV_MISS, frame_idx, seg as i64, 1.0);
                                    }
                                    // Mid-segment fallback: fetch the
                                    // original over the segment's link.
                                    fell_back = true;
                                    rebuffer_events += 1;
                                    let intra = frame_wire_bytes(&original.frames[0], src_scale);
                                    let pause = net.rebuffer_time(intra);
                                    rebuffer_time_s += pause;
                                    if observed {
                                        m.rebuffer_events.inc();
                                        m.rebuffer_seconds.add(pause);
                                        obs.mark(
                                            names::MARK_REBUFFER,
                                            frame_idx,
                                            seg as i64,
                                            pause,
                                        );
                                    }
                                    bytes_received += orig_bytes;
                                    wire_bytes_total += net.wire_bytes(orig_bytes);
                                    if observed {
                                        m.fetch_bytes.add(orig_bytes);
                                    }
                                    for g in 0..f {
                                        self.account_decode(
                                            &mut ledger,
                                            src_px,
                                            frame_wire_bytes(&original.frames[g], src_scale),
                                        );
                                    }
                                }
                            }
                        }
                        self.account_decode(
                            &mut ledger,
                            src_px,
                            frame_wire_bytes(&original.frames[f], src_scale),
                        );
                        {
                            let _pt_span =
                                observed.then(|| obs.span(names::SPAN_PT, frame_idx, seg as i64));
                            gpu_used |= self.account_pt(&mut ledger, slot);
                        }
                        fallback_frames += 1;
                        frames_total += 1;
                        if observed {
                            self.note_pt_metrics();
                            m.fallback_frames.inc();
                            m.frames.inc();
                            if let Some(t0) = frame_t0 {
                                m.frame_seconds.observe(t0.elapsed().as_secs_f64());
                            }
                        }
                    }
                }
                SegmentSource::Original { byte_scale, degraded } => {
                    if degraded {
                        faults.degraded_frames += n;
                        if observed {
                            m.degraded_frames.add(n);
                        }
                        faults.degraded_segments += 1;
                    }
                    #[allow(clippy::needless_range_loop)] // parallel frame index
                    for f in 0..n as usize {
                        let frame_idx = frames_total as i64;
                        let _frame_span =
                            observed.then(|| obs.span(names::SPAN_FRAME, frame_idx, seg as i64));
                        let frame_t0 = observed.then(Instant::now);
                        let bytes = (frame_wire_bytes(&original.frames[f], src_scale) as f64
                            * byte_scale) as u64;
                        self.account_decode(&mut ledger, src_px, bytes);
                        {
                            let _pt_span =
                                observed.then(|| obs.span(names::SPAN_PT, frame_idx, seg as i64));
                            gpu_used |= self.account_pt(&mut ledger, slot);
                        }
                        fallback_frames += 1;
                        frames_total += 1;
                        if observed {
                            self.note_pt_metrics();
                            m.fallback_frames.inc();
                            m.frames.inc();
                            if let Some(t0) = frame_t0 {
                                m.frame_seconds.observe(t0.elapsed().as_secs_f64());
                            }
                        }
                    }
                }
                SegmentSource::Freeze => {
                    // Every rung failed: the display repeats the last
                    // image for the whole segment — no decode, no PT.
                    faults.frozen_frames += n;
                    faults.degraded_segments += 1;
                    frames_total += n;
                    if observed {
                        m.frozen_frames.add(n);
                        m.frames.add(n);
                        obs.mark(names::MARK_DEGRADE, -1, seg as i64, 3.0);
                    }
                }
            }
            if gpu_used {
                ledger.add(
                    Component::Compute,
                    Activity::ProjectiveTransform,
                    cfg.gpu.session_energy(seg_duration),
                );
            }
        }

        let duration_s = frames_total as f64 / FPS;
        ledger.set_duration(duration_s);

        let d = &cfg.device;
        ledger.add(Component::Display, Activity::DisplayScan, d.display_energy(duration_s));
        ledger.add(
            Component::Memory,
            Activity::DisplayScan,
            d.dram_energy(d.display_dram_bytes(duration_s)),
        );
        // Wire bytes were accumulated per segment against that segment's
        // sampled link (loss inflation varies over the run).
        ledger.add(
            Component::Network,
            Activity::NetworkRx,
            d.network_energy(wire_bytes_total, duration_s),
        );
        ledger.add(
            Component::Storage,
            Activity::StorageIo,
            d.storage_energy(bytes_received, duration_s),
        );
        ledger.add(Component::Compute, Activity::Base, d.base_energy(duration_s));
        if cfg.path.uses_sas() {
            ledger.add(Component::Compute, Activity::Base, d.sas_client_energy(duration_s));
        }
        ledger.add(Component::Memory, Activity::Base, d.dram_static_energy(duration_s));
        ledger.mirror_gauges(obs);

        PlaybackReport {
            ledger,
            frames_total,
            fov_hits: checker.hits(),
            fov_misses: checker.misses(),
            fallback_frames,
            rebuffer_events,
            rebuffer_time_s,
            bytes_received,
            duration_s,
            faults,
        }
    }

    /// One rung of the degradation ladder: fetch `wire_payload` bytes
    /// under the injector's retry policy. Returns whether the rung
    /// delivered; stalls and their radio-idle + base energy are
    /// accounted as they happen.
    #[allow(clippy::too_many_arguments)]
    fn fetch_resilient(
        &self,
        injector: &mut FaultInjector,
        net: &NetworkModel,
        link_up: bool,
        media_t: f64,
        seg: u32,
        wire_payload: u64,
        ledger: &mut EnergyLedger,
        faults: &mut FaultSummary,
    ) -> bool {
        let m = &self.metrics;
        let obs = &self.observer;
        let observed = obs.is_enabled();
        let policy = *injector.retry();
        for attempt in 0..=policy.max_retries {
            if attempt > 0 {
                let b = injector.backoff_s(attempt - 1);
                faults.retries += 1;
                faults.backoff_time_s += b;
                self.account_stall(ledger, faults, b);
                if observed {
                    m.fault_retries.inc();
                    m.backoff_seconds.add(b);
                }
            }
            // Stalls push the wall clock forward, so an outage window
            // can end while the client is still backing off.
            let now = media_t + faults.stall_time_s;
            let delivered = match injector.request_fate(now, seg) {
                RequestFate::Outage | RequestFate::Dropped => false,
                RequestFate::Delivered => {
                    link_up && net.rtt_s + net.transfer_time(wire_payload) <= policy.timeout_s
                }
            };
            if delivered {
                // A scheduled late delivery stalls playback but does not
                // trip the timeout (the bytes are flowing).
                let late = injector.late_delay(seg);
                if late > 0.0 {
                    self.account_stall(ledger, faults, late);
                }
                return true;
            }
            faults.timeouts += 1;
            self.account_stall(ledger, faults, policy.timeout_s);
            if observed {
                m.fault_timeouts.inc();
                obs.mark(names::MARK_FAULT_TIMEOUT, -1, seg as i64, policy.timeout_s);
            }
        }
        false
    }

    /// Accounts `dt` seconds of fault-induced stall: playback pauses
    /// while the radio idles and base power keeps burning.
    fn account_stall(&self, ledger: &mut EnergyLedger, faults: &mut FaultSummary, dt: f64) {
        let d = &self.cfg.device;
        faults.stall_time_s += dt;
        ledger.add(Component::Network, Activity::Resilience, d.network_energy(0, dt));
        ledger.add(Component::Compute, Activity::Resilience, d.base_energy(dt));
        if self.metrics.enabled {
            self.metrics.fault_stall_seconds.observe(dt);
        }
    }

    /// The pose used for stream selection at time `t`, per the configured
    /// policy. Linear prediction extrapolates from the *past* only (the
    /// client cannot peek ahead in its own IMU stream).
    fn selection_pose(&self, trace: &HeadTrace, t: f64) -> evr_math::EulerAngles {
        match self.cfg.selection {
            SelectionPolicy::CurrentPose => trace.pose_at(t),
            SelectionPolicy::LinearPrediction { lookahead_s } => {
                let dt = 0.1;
                let now = trace.pose_at(t);
                let before = trace.pose_at((t - dt).max(0.0));
                let yaw_vel = (now.yaw - before.yaw).wrapped().0 / dt;
                let pitch_vel = (now.pitch.0 - before.pitch.0) / dt;
                evr_math::EulerAngles::new(
                    evr_math::Radians(now.yaw.0 + yaw_vel * lookahead_s),
                    evr_math::Radians(now.pitch.0 + pitch_vel * lookahead_s),
                    now.roll,
                )
                .normalized()
            }
        }
    }

    #[inline]
    fn account_decode(&self, ledger: &mut EnergyLedger, pixels: u64, bytes: u64) {
        let d = &self.cfg.device;
        ledger.add(Component::Compute, Activity::Decode, d.decode_energy(pixels, bytes));
        ledger.add(Component::Memory, Activity::Decode, d.dram_energy(d.decode_dram_bytes(pixels)));
    }

    /// The uninstrumented decode + PT loop over one original segment;
    /// returns whether the GPU ran. Kept out of line so the quiet path
    /// keeps the tight codegen of an unobserved session regardless of how
    /// much instrumentation surrounds it in [`PlaybackSession::run`].
    #[inline(never)]
    fn play_original_quiet(
        &self,
        ledger: &mut EnergyLedger,
        original: &EncodedSegment,
        src_px: u64,
        src_scale: f64,
    ) -> bool {
        let slot = 1.0 / FPS;
        let mut gpu_used = false;
        for frame in &original.frames {
            self.account_decode(ledger, src_px, frame_wire_bytes(frame, src_scale));
            gpu_used |= self.account_pt(ledger, slot);
        }
        gpu_used
    }

    /// Mirrors one rendered frame's PT stats into the metric handles.
    /// Callers invoke this on observed runs only, keeping the quiet path
    /// identical to an uninstrumented session.
    fn note_pt_metrics(&self) {
        let m = &self.metrics;
        match self.cfg.renderer {
            Renderer::Gpu => m.pt_gpu_frames.inc(),
            Renderer::Pte => {
                // Mirror the (pre-analysed, representative) PTU stats of
                // this rendered frame into the engine counters.
                let s = &self.pte_frame;
                m.pt_pte_frames.inc();
                m.pte_frames.inc();
                m.pte_active_cycles.add(s.active_cycles);
                m.pte_stall_cycles.add(s.stall_cycles);
                m.pte_pmem_hits.add(s.pmem_hits);
                m.pte_pmem_misses.add(s.pmem_misses);
            }
        }
    }

    /// Accounts one frame of on-device PT; returns whether the GPU ran.
    #[inline(always)]
    fn account_pt(&self, ledger: &mut EnergyLedger, slot: f64) -> bool {
        let d = &self.cfg.device;
        match self.cfg.renderer {
            Renderer::Gpu => {
                let cost = self.cfg.gpu.pt_frame(d.panel_pixels);
                ledger.add(Component::Compute, Activity::ProjectiveTransform, cost.energy_j);
                ledger.add(
                    Component::Memory,
                    Activity::ProjectiveTransform,
                    d.dram_energy(cost.dram_bytes),
                );
                true
            }
            Renderer::Pte => {
                let s = &self.pte_frame;
                // Datapath + SRAM + leakage for the whole frame slot (the
                // PTE stays powered across slots it renders in).
                let idle = (slot - s.frame_time_s()).max(0.0)
                    * Pte::new(self.cfg.pte).energy_params().leakage_w;
                ledger.add(
                    Component::Compute,
                    Activity::ProjectiveTransform,
                    s.compute_energy_j + s.sram_energy_j + s.leakage_energy_j + idle,
                );
                ledger.add(
                    Component::Memory,
                    Activity::ProjectiveTransform,
                    d.dram_energy(s.dram_read_bytes + s.dram_write_bytes),
                );
                false
            }
        }
    }
}

/// Where a segment's content came from after the degradation ladder ran.
enum SegmentSource<'a> {
    /// The requested FOV video (the clean happy path).
    Fov {
        /// The encoded FOV stream.
        fov_seg: &'a EncodedSegment,
        /// Per-frame orientation metadata.
        meta: &'a [FovFrameMeta],
    },
    /// The original panorama at `byte_scale` of its full wire size;
    /// `degraded` marks the lower-bitrate rung.
    Original { byte_scale: f64, degraded: bool },
    /// Nothing arrived: the last frame stays on screen.
    Freeze,
}

/// The per-segment link model: the sampled fault-process state when a
/// time-varying link is attached, the session's static model otherwise.
/// A dead link keeps the base model's shape (fetches are failed by the
/// caller's up-check instead) so rebuffer math stays finite.
fn effective_network(base: &NetworkModel, link: Option<LinkState>) -> NetworkModel {
    match link {
        Some(l) if l.is_up() => {
            NetworkModel { bandwidth_bps: l.bandwidth_bps, rtt_s: l.rtt_s, loss_prob: l.loss_prob }
        }
        _ => *base,
    }
}

fn frame_wire_bytes(frame: &EncodedFrame, scale: f64) -> u64 {
    (frame.payload_bytes() as f64 * scale) as u64 + (frame.bytes - frame.payload_bytes())
}

/// Total target-scale wire bytes of a segment (helper shared with tests
/// and experiment drivers).
pub fn segment_wire_bytes(segment: &EncodedSegment, scale: f64) -> u64 {
    segment.frames.iter().map(|f| frame_wire_bytes(f, scale)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use evr_sas::{ingest_video, SasConfig};
    use evr_trace::behavior::{generate_user_trace, params_for};
    use evr_video::library::{scene_for, VideoId};

    fn setup(video: VideoId, secs: f64) -> (SasServer, HeadTrace) {
        let scene = scene_for(video);
        let server = SasServer::new(ingest_video(&scene, &SasConfig::tiny_for_tests(), secs));
        let trace = generate_user_trace(&scene, &params_for(video), 3, secs, 30.0);
        (server, trace)
    }

    fn run(
        path: ContentPath,
        renderer: Renderer,
        server: &SasServer,
        trace: &HeadTrace,
    ) -> PlaybackReport {
        let cfg = SessionConfig::new(path, renderer, SasConfig::tiny_for_tests());
        PlaybackSession::new(cfg).run(server, trace)
    }

    #[test]
    fn baseline_renders_every_frame_on_gpu() {
        let (server, trace) = setup(VideoId::Rhino, 1.0);
        let r = run(ContentPath::OnlineBaseline, Renderer::Gpu, &server, &trace);
        assert_eq!(r.frames_total, 30);
        assert_eq!(r.fallback_frames, 30);
        assert_eq!(r.fov_hits + r.fov_misses, 0);
        assert!(r.ledger.get(Component::Compute, Activity::ProjectiveTransform) > 0.0);
    }

    #[test]
    fn sas_hits_avoid_pt_entirely() {
        let (server, trace) = setup(VideoId::Rhino, 1.0);
        let r = run(ContentPath::OnlineSas, Renderer::Gpu, &server, &trace);
        assert!(r.fov_hits > 0, "expected some hits");
        // PT energy strictly below baseline.
        let base = run(ContentPath::OnlineBaseline, Renderer::Gpu, &server, &trace);
        assert!(
            r.ledger.activity_total(Activity::ProjectiveTransform)
                < base.ledger.activity_total(Activity::ProjectiveTransform)
        );
    }

    #[test]
    fn pte_renderer_uses_less_pt_energy_than_gpu() {
        let (server, trace) = setup(VideoId::Rs, 1.0);
        let gpu = run(ContentPath::OnlineBaseline, Renderer::Gpu, &server, &trace);
        let pte = run(ContentPath::OnlineBaseline, Renderer::Pte, &server, &trace);
        let pt = |r: &PlaybackReport| r.ledger.activity_total(Activity::ProjectiveTransform);
        assert!(pt(&pte) < pt(&gpu) / 3.0, "pte {} gpu {}", pt(&pte), pt(&gpu));
        // And less total device energy.
        assert!(pte.ledger.total() < gpu.ledger.total());
    }

    #[test]
    fn offline_has_no_network_energy() {
        let (server, trace) = setup(VideoId::Timelapse, 1.0);
        let r = run(ContentPath::Offline, Renderer::Pte, &server, &trace);
        assert_eq!(r.ledger.component_total(Component::Network), 0.0);
        assert!(r.ledger.component_total(Component::Storage) > 0.0);
        assert_eq!(r.bytes_received, 0);
    }

    #[test]
    fn sas_reduces_received_bytes_for_tracking_user() {
        // A user who stares at the herd never misses; SAS then streams
        // only the (smaller) FOV videos — the Fig. 13 bandwidth effect.
        let scene = scene_for(VideoId::Rhino);
        let server = SasServer::new(ingest_video(&scene, &SasConfig::tiny_for_tests(), 2.0));
        let herd = scene.objects()[0].position(0.0);
        let s = evr_math::SphericalCoord::from_vector(herd).unwrap();
        let pose = evr_math::EulerAngles::new(s.lon, s.lat, evr_math::Radians(0.0));
        let samples: Vec<_> =
            (0..61).map(|i| evr_trace::PoseSample { t: i as f64 / 30.0, pose }).collect();
        let trace = HeadTrace::from_samples(samples);

        let sas = run(ContentPath::OnlineSas, Renderer::Pte, &server, &trace);
        let base = run(ContentPath::OnlineBaseline, Renderer::Pte, &server, &trace);
        // Cluster centroids drift segment to segment (detector noise,
        // k-means variation); a staring user still hits almost always.
        assert!(
            sas.fov_miss_fraction() < 0.4,
            "staring user misses {:.0}% of frames",
            100.0 * sas.fov_miss_fraction()
        );
        assert!(
            sas.bytes_received < base.bytes_received,
            "sas {} baseline {}",
            sas.bytes_received,
            base.bytes_received
        );
    }

    #[test]
    fn misses_cause_rebuffering_and_fallback() {
        // Force misses by streaming with zero margin and a twitchy user.
        let scene = scene_for(VideoId::Rs);
        let mut sas_cfg = SasConfig::tiny_for_tests();
        sas_cfg.fov_margin = evr_math::Degrees(0.5);
        let server = SasServer::new(ingest_video(&scene, &sas_cfg, 2.0));
        let trace = generate_user_trace(&scene, &params_for(VideoId::Rs), 9, 2.0, 30.0);
        let cfg = SessionConfig::new(ContentPath::OnlineSas, Renderer::Gpu, sas_cfg);
        let r = PlaybackSession::new(cfg).run(&server, &trace);
        assert!(r.fov_misses > 0);
        assert_eq!(r.rebuffer_events > 0, r.fov_misses > 0);
        assert!(r.rebuffer_time_s > 0.0);
        assert!(r.fps_drop_fraction() < 0.2);
        assert!(r.fallback_frames > 0);
    }

    #[test]
    fn observed_run_mirrors_report_counters() {
        let (server, trace) = setup(VideoId::Rhino, 1.0);
        let obs = evr_obs::Observer::enabled();
        let cfg =
            SessionConfig::new(ContentPath::OnlineSas, Renderer::Pte, SasConfig::tiny_for_tests());
        let session = PlaybackSession::with_observer(cfg, obs.clone());
        let r = session.run(&server, &trace);

        use evr_obs::names;
        assert_eq!(obs.counter(names::FRAMES).get(), r.frames_total);
        assert_eq!(obs.counter(names::FOV_HITS).get(), r.fov_hits);
        assert_eq!(obs.counter(names::FOV_MISSES).get(), r.fov_misses);
        assert_eq!(obs.counter(names::FALLBACK_FRAMES).get(), r.fallback_frames);
        assert_eq!(obs.counter(names::REBUFFER_EVENTS).get(), r.rebuffer_events);
        assert_eq!(obs.counter(names::FETCH_BYTES).get(), r.bytes_received);
        assert!((obs.gauge(names::REBUFFER_SECONDS).get() - r.rebuffer_time_s).abs() < 1e-12);
        // Frame latency histogram saw every frame.
        let hist = obs.histogram(names::FRAME_SECONDS, &evr_obs::LATENCY_BOUNDS_S);
        assert_eq!(hist.snapshot().count, r.frames_total);
        // PTE renderer: every fallback frame went through the engine mirror.
        assert_eq!(obs.counter(names::PT_PTE_FRAMES).get(), r.fallback_frames);
        assert_eq!(obs.counter(names::PT_GPU_FRAMES).get(), 0);
        if r.fallback_frames > 0 {
            assert!(obs.counter(names::PTE_ACTIVE_CYCLES).get() > 0);
        }
        // Energy gauges mirror the ledger per component.
        for c in Component::ALL {
            let gauge = obs.gauge(&names::energy_gauge(&c.to_string()));
            assert!(
                (gauge.get() - r.ledger.component_total(c)).abs() < 1e-9,
                "{c}: gauge {} vs ledger {}",
                gauge.get(),
                r.ledger.component_total(c)
            );
        }
        // Spans cover every frame, hit/miss marks every check.
        let events = obs.events();
        let frame_begins = events
            .iter()
            .filter(|e| e.name == names::SPAN_FRAME && e.kind == evr_obs::EventKind::SpanBegin)
            .count() as u64;
        assert_eq!(frame_begins, r.frames_total);
        let hits = events.iter().filter(|e| e.name == names::MARK_FOV_HIT).count() as u64;
        let misses = events.iter().filter(|e| e.name == names::MARK_FOV_MISS).count() as u64;
        assert_eq!((hits, misses), (r.fov_hits, r.fov_misses));
    }

    #[test]
    fn unobserved_run_matches_observed_run() {
        let (server, trace) = setup(VideoId::Rs, 1.0);
        let cfg =
            SessionConfig::new(ContentPath::OnlineSas, Renderer::Gpu, SasConfig::tiny_for_tests());
        let silent = PlaybackSession::new(cfg).run(&server, &trace);
        let observed =
            PlaybackSession::with_observer(cfg, evr_obs::Observer::enabled()).run(&server, &trace);
        assert_eq!(silent, observed);
    }

    #[test]
    fn report_duration_matches_frames() {
        let (server, trace) = setup(VideoId::Paris, 1.0);
        let r = run(ContentPath::Live, Renderer::Pte, &server, &trace);
        assert!((r.duration_s - r.frames_total as f64 / 30.0).abs() < 1e-9);
        assert!(r.ledger.total_power() > 1.0, "device draws watts");
    }

    #[test]
    fn empty_report_fractions_are_zero_not_nan() {
        let r = PlaybackReport {
            ledger: EnergyLedger::new(),
            frames_total: 0,
            fov_hits: 0,
            fov_misses: 0,
            fallback_frames: 0,
            rebuffer_events: 0,
            rebuffer_time_s: 0.0,
            bytes_received: 0,
            duration_s: 0.0,
            faults: FaultSummary::default(),
        };
        assert_eq!(r.fps_drop_fraction(), 0.0);
        assert_eq!(r.stall_fraction(), 0.0);
        assert_eq!(r.degraded_fraction(), 0.0);
        assert_eq!(r.frozen_fraction(), 0.0);
    }
}

#[cfg(test)]
mod resilience_tests {
    use super::*;
    use evr_faults::{FaultEvent, FaultPlan, GilbertElliott, LinkProcess, RetryPolicy};
    use evr_sas::{ingest_video, SasConfig};
    use evr_trace::behavior::{generate_user_trace, params_for};
    use evr_video::library::{scene_for, VideoId};

    fn setup(video: VideoId, secs: f64) -> (SasServer, HeadTrace) {
        let scene = scene_for(video);
        let server = SasServer::new(ingest_video(&scene, &SasConfig::tiny_for_tests(), secs));
        let trace = generate_user_trace(&scene, &params_for(video), 3, secs, 30.0);
        (server, trace)
    }

    fn session(path: ContentPath) -> PlaybackSession {
        PlaybackSession::new(SessionConfig::new(path, Renderer::Pte, SasConfig::tiny_for_tests()))
    }

    #[test]
    fn clean_setup_is_bit_identical_to_the_plain_run() {
        let (server, trace) = setup(VideoId::Rhino, 1.0);
        for path in [ContentPath::OnlineSas, ContentPath::OnlineBaseline, ContentPath::Offline] {
            let s = session(path);
            let clean = s.run(&server, &trace);
            let resilient = s.run_resilient(&server, &trace, &evr_faults::FaultSetup::none());
            assert_eq!(clean, resilient, "{path:?}");
            assert_eq!(resilient.faults, FaultSummary::default());
        }
    }

    #[test]
    fn permanent_outage_freezes_every_segment() {
        let (server, trace) = setup(VideoId::Rs, 1.0);
        let setup = evr_faults::FaultSetup::none().with_plan(
            FaultPlan::none().with(FaultEvent::ServerOutage { start_s: 0.0, duration_s: 1e6 }),
        );
        let s = session(ContentPath::OnlineSas);
        let r = s.run_resilient(&server, &trace, &setup);
        assert_eq!(r.faults.frozen_frames, r.frames_total);
        assert_eq!(r.bytes_received, 0);
        assert!(r.faults.timeouts > 0 && r.faults.retries > 0);
        assert!(r.faults.stall_time_s > 0.0 && r.faults.backoff_time_s > 0.0);
        assert!(r.ledger.activity_total(Activity::Resilience) > 0.0);
        assert_eq!(r.frozen_fraction(), 1.0);
    }

    #[test]
    fn request_drop_is_recovered_by_one_retry() {
        let (server, trace) = setup(VideoId::Rhino, 1.0);
        let setup = evr_faults::FaultSetup::none()
            .with_plan(FaultPlan::none().with(FaultEvent::RequestDrop { segment: 0 }));
        let r = session(ContentPath::OnlineSas).run_resilient(&server, &trace, &setup);
        assert_eq!(r.faults.timeouts, 1);
        assert_eq!(r.faults.retries, 1);
        assert_eq!(r.faults.frozen_frames, 0);
        assert_eq!(r.faults.degraded_frames, 0);
        // The drop costs one timeout plus one backoff wait of stall.
        assert!(r.faults.stall_time_s >= 0.25, "stall {}", r.faults.stall_time_s);
    }

    #[test]
    fn corrupt_fov_segment_degrades_to_the_original() {
        let (server, trace) = setup(VideoId::Rhino, 1.0);
        let setup = evr_faults::FaultSetup::none()
            .with_plan(FaultPlan::none().with(FaultEvent::SegmentCorruption { segment: 0 }));
        let clean = session(ContentPath::OnlineSas).run(&server, &trace);
        let r = session(ContentPath::OnlineSas).run_resilient(&server, &trace, &setup);
        assert_eq!(r.faults.corrupt_segments, 1);
        // The corrupt transfer is paid for on top of the replacement.
        assert!(r.bytes_received > clean.bytes_received);
        assert!(r.ledger.activity_total(Activity::Resilience) > 0.0);
    }

    #[test]
    fn late_segment_stalls_without_degrading() {
        let (server, trace) = setup(VideoId::Rhino, 1.0);
        let setup = evr_faults::FaultSetup::none().with_plan(
            FaultPlan::none().with(FaultEvent::LateSegment { segment: 1, delay_s: 0.4 }),
        );
        let r = session(ContentPath::OnlineSas).run_resilient(&server, &trace, &setup);
        assert_eq!(r.faults.timeouts, 0);
        assert_eq!(r.faults.frozen_frames + r.faults.degraded_frames, 0);
        assert!((r.faults.stall_time_s - 0.4).abs() < 1e-9, "stall {}", r.faults.stall_time_s);
    }

    #[test]
    fn dead_link_without_a_plan_also_freezes() {
        let (server, trace) = setup(VideoId::Rs, 1.0);
        let setup = evr_faults::FaultSetup::none().with_link(LinkProcess {
            profile: evr_faults::BandwidthProfile::constant(0.0),
            loss: GilbertElliott::clean(),
            rtt_s: 0.002,
        });
        let r = session(ContentPath::OnlineSas).run_resilient(&server, &trace, &setup);
        assert_eq!(r.faults.frozen_frames, r.frames_total);
        assert_eq!(r.bytes_received, 0);
    }

    #[test]
    fn same_seed_replays_identically_and_seeds_differ() {
        let (server, trace) = setup(VideoId::Rs, 1.0);
        let bursty = |seed| {
            let mut setup = evr_faults::FaultSetup::seeded(seed).with_link(LinkProcess {
                profile: evr_faults::BandwidthProfile::constant(300e6),
                loss: GilbertElliott::bursty(0.4, 2.0, 0.6),
                rtt_s: 0.002,
            });
            setup.retry = RetryPolicy { timeout_s: 10.0, ..RetryPolicy::default() };
            session(ContentPath::OnlineSas).run_resilient(&server, &trace, &setup)
        };
        let a = bursty(7);
        assert_eq!(a, bursty(7));
        // Different seeds visit different loss states → different bytes
        // on the wire (almost surely, for this bursty channel).
        let b = bursty(8);
        let wire = |r: &PlaybackReport| r.ledger.get(Component::Network, Activity::NetworkRx);
        assert_ne!(wire(&a), wire(&b));
    }

    #[test]
    fn observed_resilient_run_mirrors_fault_counters() {
        let (server, trace) = setup(VideoId::Rs, 1.0);
        let obs = evr_obs::Observer::enabled();
        let cfg =
            SessionConfig::new(ContentPath::OnlineSas, Renderer::Pte, SasConfig::tiny_for_tests());
        let s = PlaybackSession::with_observer(cfg, obs.clone());
        let setup = evr_faults::FaultSetup::none().with_plan(
            FaultPlan::none()
                .with(FaultEvent::ServerOutage { start_s: 0.0, duration_s: 0.6 })
                .with(FaultEvent::RequestDrop { segment: 3 }),
        );
        let r = s.run_resilient(&server, &trace, &setup);
        assert_eq!(obs.counter(names::FAULT_RETRIES).get(), r.faults.retries);
        assert_eq!(obs.counter(names::FAULT_TIMEOUTS).get(), r.faults.timeouts);
        assert_eq!(obs.counter(names::DEGRADED_FRAMES).get(), r.faults.degraded_frames);
        assert_eq!(obs.counter(names::FROZEN_FRAMES).get(), r.faults.frozen_frames);
        assert!((obs.gauge(names::BACKOFF_SECONDS).get() - r.faults.backoff_time_s).abs() < 1e-12);
        assert!(r.faults.timeouts > 0, "the outage must bite");
        let stalls = obs.histogram(names::FAULT_STALL_SECONDS, &super::STALL_BOUNDS_S).snapshot();
        assert!(stalls.count > 0);
        // The observed run is behaviourally identical to a silent one.
        let silent = PlaybackSession::new(cfg).run_resilient(&server, &trace, &setup);
        assert_eq!(silent, r);
    }
}

#[cfg(test)]
mod selection_tests {
    use super::*;
    use evr_sas::{ingest_video, SasConfig};
    use evr_trace::PoseSample;
    use evr_video::library::{scene_for, VideoId};

    /// A user sweeping steadily rightward at 30°/s: linear prediction
    /// should select the stream ahead of the sweep.
    fn sweeping_trace(secs: f64) -> HeadTrace {
        let samples = (0..=(secs * 30.0) as u64)
            .map(|i| {
                let t = i as f64 / 30.0;
                PoseSample {
                    t,
                    pose: evr_math::EulerAngles::from_degrees(t * 30.0 - 30.0, -8.0, 0.0),
                }
            })
            .collect();
        HeadTrace::from_samples(samples)
    }

    #[test]
    fn linear_prediction_does_not_hurt_a_sweeping_user() {
        let scene = scene_for(VideoId::Paris);
        let sas = SasConfig::tiny_for_tests();
        let server = SasServer::new(ingest_video(&scene, &sas, 2.0));
        let trace = sweeping_trace(2.0);

        let run = |selection: SelectionPolicy| {
            let mut cfg = SessionConfig::new(ContentPath::OnlineSas, Renderer::Pte, sas);
            cfg.selection = selection;
            PlaybackSession::new(cfg).run(&server, &trace)
        };
        let cur = run(SelectionPolicy::CurrentPose);
        let pred = run(SelectionPolicy::LinearPrediction { lookahead_s: 0.5 });
        assert!(
            pred.fov_miss_fraction() <= cur.fov_miss_fraction() + 1e-9,
            "pred {} vs cur {}",
            pred.fov_miss_fraction(),
            cur.fov_miss_fraction()
        );
    }

    #[test]
    fn prediction_with_zero_lookahead_equals_current_pose() {
        let scene = scene_for(VideoId::Rhino);
        let sas = SasConfig::tiny_for_tests();
        let server = SasServer::new(ingest_video(&scene, &sas, 1.0));
        let trace = sweeping_trace(1.0);
        let run = |selection: SelectionPolicy| {
            let mut cfg = SessionConfig::new(ContentPath::OnlineSas, Renderer::Pte, sas);
            cfg.selection = selection;
            PlaybackSession::new(cfg).run(&server, &trace)
        };
        assert_eq!(
            run(SelectionPolicy::CurrentPose),
            run(SelectionPolicy::LinearPrediction { lookahead_s: 0.0 })
        );
    }
}
