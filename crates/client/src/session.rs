//! The per-user playback simulation.
//!
//! One [`PlaybackSession::run`] replays a head trace against an ingested
//! video, frame by frame, reproducing the client control flow of the
//! paper's Fig. 4: fetch → decode → FOV check → (PT on GPU or PTE, or
//! direct display) → display, while tagging every joule into an
//! [`EnergyLedger`].
//!
//! The control flow itself lives in [`crate::pipeline`]: `run`,
//! [`PlaybackSession::run_tiled`] and [`PlaybackSession::run_resilient`]
//! are thin configurations of the same staged segment pipeline,
//! differing only in the [`Transport`](crate::pipeline::Transport) and
//! [`RenderBackend`](crate::pipeline::RenderBackend) they plug in.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use evr_energy::{DeviceParams, EnergyLedger};
use evr_faults::FaultSetup;
use evr_obs::{Observer, TraceCtx};
use evr_pte::{FrameStats, GpuModel, Pte, PteConfig};
use evr_sas::SasConfig;
use evr_sas::SasServer;
use evr_sas::TiledRateCatalog;
use evr_trace::HeadTrace;
use evr_video::codec::{EncodedFrame, EncodedSegment};

use crate::network::NetworkModel;
use crate::pipeline::{
    CleanTransport, FaultedTransport, GpuBackend, PteBackend, SegmentPipeline, SessionMetrics,
    Transport,
};

/// How the client picks which FOV video to request at a segment boundary.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SelectionPolicy {
    /// Request the cluster nearest the *current* head pose (the paper's
    /// deployed behaviour, §5.3).
    #[default]
    CurrentPose,
    /// Extrapolate the head pose half a segment ahead from its recent
    /// angular velocity and select for the predicted pose — the
    /// lightweight client-side prediction the paper names as future work
    /// (§8.2: "combining head movement prediction with SAS would further
    /// improve the bandwidth efficiency").
    LinearPrediction {
        /// How far ahead to extrapolate, seconds.
        lookahead_s: f64,
    },
}

/// Which hardware performs on-device projective transformation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Renderer {
    /// Texture mapping on the mobile GPU (today's path).
    Gpu,
    /// The PTE accelerator (HAR).
    Pte,
}

/// Where content comes from (paper §8.1's three use-cases, plus the
/// no-SAS streaming baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContentPath {
    /// Online streaming through SAS: FOV videos with original fallback.
    OnlineSas,
    /// Online streaming of the original video only (the paper's baseline).
    OnlineBaseline,
    /// Live streaming: original video, no server pre-processing possible.
    Live,
    /// Offline playback from local storage: no network at all.
    Offline,
}

impl ContentPath {
    /// Whether content flows over the radio (everything but offline).
    pub fn uses_network(self) -> bool {
        !matches!(self, ContentPath::Offline)
    }

    /// Whether the client requests FOV videos from a SAS server.
    pub fn uses_sas(self) -> bool {
        matches!(self, ContentPath::OnlineSas)
    }
}

/// Configuration of one playback session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Content source.
    pub path: ContentPath,
    /// PT hardware for non-hit frames.
    pub renderer: Renderer,
    /// SAS configuration (supplies the analysis/target scale model).
    pub sas: SasConfig,
    /// Device energy parameters.
    pub device: DeviceParams,
    /// GPU model (used when `renderer` is [`Renderer::Gpu`]).
    pub gpu: GpuModel,
    /// PTE configuration (used when `renderer` is [`Renderer::Pte`]).
    pub pte: PteConfig,
    /// Link model (ignored for [`ContentPath::Offline`]).
    pub network: NetworkModel,
    /// Oracle head-motion prediction: the server always pre-rendered the
    /// right view, so every FOV check hits. Models the perfect-HMP
    /// systems of the paper's §8.5 comparison (the HMP inference energy
    /// itself is accounted by the experiment driver).
    pub oracle_hits: bool,
    /// FOV-video selection policy at segment boundaries.
    pub selection: SelectionPolicy,
}

impl SessionConfig {
    /// Creates a configuration with default device/GPU/PTE/link models.
    pub fn new(path: ContentPath, renderer: Renderer, sas: SasConfig) -> Self {
        SessionConfig {
            path,
            renderer,
            sas,
            device: DeviceParams::default(),
            gpu: GpuModel::default(),
            pte: PteConfig::prototype(),
            network: NetworkModel::default(),
            oracle_hits: false,
            selection: SelectionPolicy::CurrentPose,
        }
    }
}

/// What the resilience state machine did during one run. All zeros on a
/// clean run (and identically zero for [`FaultSetup::none`], which the
/// workspace's parity tests assert).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSummary {
    /// Request re-attempts after a failure.
    pub retries: u64,
    /// Request timeouts (outages, drops, dead links, slow transfers).
    pub timeouts: u64,
    /// Segments that could not be served at full quality (lower-rung or
    /// frozen).
    pub degraded_segments: u64,
    /// Frames played from the degraded lower-bitrate rung.
    pub degraded_frames: u64,
    /// Frames frozen (last image repeated) because every ladder rung
    /// failed.
    pub frozen_frames: u64,
    /// Segments whose FOV video arrived corrupt.
    pub corrupt_segments: u64,
    /// Segments the serving front shed to the low-rung original under
    /// load (one more ladder rung, not a failure).
    pub shed_segments: u64,
    /// Segments whose FOV request got no front response at all (shard
    /// outage or open circuit breaker); the ladder descends normally.
    pub front_unavailable_segments: u64,
    /// Total time spent in backoff waits, seconds.
    pub backoff_time_s: f64,
    /// Total playback stall from faults (timeouts + backoff + late
    /// deliveries), seconds; excludes the clean path's FOV-miss
    /// rebuffering, which stays in `rebuffer_time_s`.
    pub stall_time_s: f64,
}

impl FaultSummary {
    /// Folds `other`'s counters and stall clocks into this summary.
    pub fn merge(&mut self, other: &FaultSummary) {
        self.retries += other.retries;
        self.timeouts += other.timeouts;
        self.degraded_segments += other.degraded_segments;
        self.degraded_frames += other.degraded_frames;
        self.frozen_frames += other.frozen_frames;
        self.corrupt_segments += other.corrupt_segments;
        self.shed_segments += other.shed_segments;
        self.front_unavailable_segments += other.front_unavailable_segments;
        self.backoff_time_s += other.backoff_time_s;
        self.stall_time_s += other.stall_time_s;
    }
}

/// Results of one playback session.
#[derive(Debug, Clone, PartialEq)]
pub struct PlaybackReport {
    /// Energy by component and activity.
    pub ledger: EnergyLedger,
    /// Frames presented.
    pub frames_total: u64,
    /// FOV-check hits (SAS path only).
    pub fov_hits: u64,
    /// FOV-check misses (SAS path only).
    pub fov_misses: u64,
    /// Frames rendered through the on-device PT fallback.
    pub fallback_frames: u64,
    /// Mid-segment fallback fetches.
    pub rebuffer_events: u64,
    /// Total rendering pause from rebuffering, seconds.
    pub rebuffer_time_s: f64,
    /// Bytes received over the network (target scale).
    pub bytes_received: u64,
    /// Media duration, seconds.
    pub duration_s: f64,
    /// Fault-handling summary (all zeros on a clean run).
    pub faults: FaultSummary,
}

/// `num / den`, or zero (not NaN) when the denominator is zero — the
/// shared guard behind every report fraction.
fn fraction(num: f64, den: f64) -> f64 {
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

impl PlaybackReport {
    /// An all-zero report: the identity element of
    /// [`PlaybackReport::merge`].
    pub fn empty() -> Self {
        PlaybackReport {
            ledger: EnergyLedger::new(),
            frames_total: 0,
            fov_hits: 0,
            fov_misses: 0,
            fallback_frames: 0,
            rebuffer_events: 0,
            rebuffer_time_s: 0.0,
            bytes_received: 0,
            duration_s: 0.0,
            faults: FaultSummary::default(),
        }
    }

    /// Folds `other` into this report: ledgers, counters and clocks sum,
    /// and the merged duration covers both sessions so the fraction
    /// accessors stay time-weighted. The fleet runner folds per-user
    /// reports in ascending user order, which keeps the f64 sums
    /// byte-identical for any worker count.
    pub fn merge(&mut self, other: &PlaybackReport) {
        self.ledger.merge(&other.ledger);
        self.frames_total += other.frames_total;
        self.fov_hits += other.fov_hits;
        self.fov_misses += other.fov_misses;
        self.fallback_frames += other.fallback_frames;
        self.rebuffer_events += other.rebuffer_events;
        self.rebuffer_time_s += other.rebuffer_time_s;
        self.bytes_received += other.bytes_received;
        self.duration_s += other.duration_s;
        if self.duration_s > 0.0 {
            self.ledger.set_duration(self.duration_s);
        }
        self.faults.merge(&other.faults);
    }

    /// FOV-miss rate over checked frames (0 when SAS was not used).
    pub fn miss_rate(&self) -> f64 {
        fraction(self.fov_misses as f64, (self.fov_hits + self.fov_misses) as f64)
    }

    /// Fraction of frames that could not be served from an FOV video —
    /// the quantity the paper reports as the "FOV-miss rate" (§8.2,
    /// 5.3%–12.0%): once a segment misses, its remaining frames play from
    /// the original stream and count as missed too.
    pub fn fov_miss_fraction(&self) -> f64 {
        fraction(self.fallback_frames as f64, self.frames_total as f64)
    }

    /// FPS degradation: the fraction of presentation time lost to
    /// rebuffer pauses (the paper's Fig. 13 left axis, ≈1%). Zero (not
    /// NaN) for an empty session.
    pub fn fps_drop_fraction(&self) -> f64 {
        fraction(self.rebuffer_time_s, self.duration_s)
    }

    /// Fraction of frames served below full quality (lower rung or
    /// frozen) by the degradation ladder.
    pub fn degraded_fraction(&self) -> f64 {
        fraction(
            (self.faults.degraded_frames + self.faults.frozen_frames) as f64,
            self.frames_total as f64,
        )
    }

    /// Fraction of frames frozen outright.
    pub fn frozen_fraction(&self) -> f64 {
        fraction(self.faults.frozen_frames as f64, self.frames_total as f64)
    }

    /// Fraction of presentation time lost to *all* pauses: FOV-miss
    /// rebuffering plus fault stalls (timeouts, backoff, late segments).
    pub fn stall_fraction(&self) -> f64 {
        fraction(self.rebuffer_time_s + self.faults.stall_time_s, self.duration_s)
    }
}

/// The playback simulator.
#[derive(Debug, Clone)]
pub struct PlaybackSession {
    pub(crate) cfg: SessionConfig,
    /// Pre-analysed PTE frame cost (orientation dependence of the memory
    /// pattern is second-order; one representative analysis is reused).
    pub(crate) pte_frame: FrameStats,
    pub(crate) observer: Observer,
    pub(crate) metrics: SessionMetrics,
    /// Per-tile multi-rate catalog: when attached, clean and resilient
    /// runs play through the tiled multi-rate pipeline (the `T`/`T+H`
    /// variants) instead of the whole-frame ladder.
    pub(crate) tiles: Option<Arc<TiledRateCatalog>>,
}

impl PlaybackSession {
    /// Creates a session, pre-analysing the PTE cost for the configured
    /// source/viewport geometry.
    pub fn new(cfg: SessionConfig) -> Self {
        Self::with_observer(cfg, Observer::noop())
    }

    /// Like [`PlaybackSession::new`], but every run emits per-frame
    /// spans, FOV-check outcomes and playback counters into `observer`.
    pub fn with_observer(cfg: SessionConfig, observer: Observer) -> Self {
        let (sw, sh) = cfg.sas.target_src;
        let pte = Pte::new(cfg.pte);
        let pte_frame = pte.analyze_frame_strided(sw, sh, evr_math::EulerAngles::default(), 4);
        let metrics = SessionMetrics::resolve(&observer);
        PlaybackSession { cfg, pte_frame, observer, metrics, tiles: None }
    }

    /// Attaches a per-tile multi-rate catalog: every subsequent
    /// [`PlaybackSession::run`]/[`PlaybackSession::run_resilient`]
    /// replays through the tiled multi-rate pipeline, fetching the
    /// spherically-weighted per-tile rung selection instead of the
    /// whole-frame degradation ladder.
    pub fn with_tiles(mut self, tiles: Arc<TiledRateCatalog>) -> Self {
        self.tiles = Some(tiles);
        self
    }

    /// The attached multi-rate tile catalog, if any.
    pub fn tiles(&self) -> Option<&Arc<TiledRateCatalog>> {
        self.tiles.as_ref()
    }

    /// Replaces the session's observer (a no-op observer detaches all
    /// instrumentation).
    pub fn set_observer(&mut self, observer: Observer) {
        self.metrics = SessionMetrics::resolve(&observer);
        self.observer = observer;
    }

    /// The session's observer (a no-op handle unless one was attached).
    pub fn observer(&self) -> &Observer {
        &self.observer
    }

    /// The configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.cfg
    }

    /// Replays `trace` against `server`'s video: the staged pipeline
    /// over a [`CleanTransport`].
    pub fn run(&self, server: &SasServer, trace: &HeadTrace) -> PlaybackReport {
        self.run_traced(server, trace, TraceCtx::anonymous())
    }

    /// Like [`PlaybackSession::run`], with a caller-supplied
    /// [`TraceCtx`] stamped on every timeline interval the run records.
    /// `FleetRunner` passes the user id through here so profiles
    /// attribute work to users; the report is identical to `run`'s.
    pub fn run_traced(
        &self,
        server: &SasServer,
        trace: &HeadTrace,
        ctx: TraceCtx,
    ) -> PlaybackReport {
        if let Some(tiles) = self.tiles.clone() {
            return self.run_tiled_pipeline(server, &tiles, trace, CleanTransport);
        }
        self.run_pipeline(server, trace, CleanTransport, ctx)
    }

    /// Replays `trace` against tile-based view-guided streaming (the
    /// related-work baseline of paper §2/§9): per segment, in-view tiles
    /// stream at high quality and the rest at low quality, cutting
    /// bandwidth — but every frame still needs full on-device projective
    /// transformation with the configured renderer.
    ///
    /// The `server`'s catalog supplies frame structure and timing; wire
    /// and decode byte counts come from `tiled`.
    pub fn run_tiled(
        &self,
        server: &SasServer,
        tiled: &evr_sas::TiledCatalog,
        trace: &HeadTrace,
    ) -> PlaybackReport {
        match self.cfg.renderer {
            Renderer::Gpu => {
                crate::pipeline::run_tiled(self, server, tiled, trace, GpuBackend::new(&self.cfg))
            }
            Renderer::Pte => crate::pipeline::run_tiled(
                self,
                server,
                tiled,
                trace,
                PteBackend::new(&self.cfg, self.pte_frame),
            ),
        }
    }

    /// Replays `trace` against `server`'s video under injected faults:
    /// the staged pipeline over a [`FaultedTransport`].
    ///
    /// Per segment the client walks a graceful-degradation ladder: FOV
    /// video → full-quality original → lower-bitrate rung → frame
    /// freeze. Each rung is fetched under the setup's [`RetryPolicy`]:
    /// a request times out on server outages, dropped requests, dead
    /// links and transfers slower than the deadline, and is re-attempted
    /// after an exponentially growing, deterministically jittered
    /// backoff wait. Every retry, timeout, backoff and degradation is
    /// tagged into the ledger under [`Activity::Resilience`] and counted
    /// into the `evr_fault_*` / degradation metrics.
    ///
    /// A clean `setup` — and any setup on the network-free offline
    /// path — delegates to [`PlaybackSession::run`], so the output is
    /// bit-identical to an un-faulted session.
    ///
    /// [`RetryPolicy`]: evr_faults::RetryPolicy
    /// [`Activity::Resilience`]: evr_energy::Activity::Resilience
    pub fn run_resilient(
        &self,
        server: &SasServer,
        trace: &HeadTrace,
        setup: &FaultSetup,
    ) -> PlaybackReport {
        self.run_resilient_traced(server, trace, setup, TraceCtx::anonymous())
    }

    /// Like [`PlaybackSession::run_resilient`], with a caller-supplied
    /// [`TraceCtx`] stamped on every timeline interval (see
    /// [`PlaybackSession::run_traced`]).
    pub fn run_resilient_traced(
        &self,
        server: &SasServer,
        trace: &HeadTrace,
        setup: &FaultSetup,
        ctx: TraceCtx,
    ) -> PlaybackReport {
        if setup.is_clean() || !self.cfg.path.uses_network() {
            return self.run_traced(server, trace, ctx);
        }
        if let Some(tiles) = self.tiles.clone() {
            return self.run_tiled_pipeline(server, &tiles, trace, FaultedTransport::new(setup));
        }
        self.run_pipeline(server, trace, FaultedTransport::new(setup), ctx)
    }

    /// Dispatches the tiled multi-rate pipeline for the configured
    /// renderer.
    fn run_tiled_pipeline<T: Transport>(
        &self,
        server: &SasServer,
        tiles: &TiledRateCatalog,
        trace: &HeadTrace,
        transport: T,
    ) -> PlaybackReport {
        match self.cfg.renderer {
            Renderer::Gpu => crate::pipeline::run_tiled_multirate(
                self,
                server,
                tiles,
                trace,
                transport,
                GpuBackend::new(&self.cfg),
            ),
            Renderer::Pte => crate::pipeline::run_tiled_multirate(
                self,
                server,
                tiles,
                trace,
                transport,
                PteBackend::new(&self.cfg, self.pte_frame),
            ),
        }
    }

    /// Dispatches the staged pipeline for the configured renderer.
    fn run_pipeline<T: Transport>(
        &self,
        server: &SasServer,
        trace: &HeadTrace,
        transport: T,
        ctx: TraceCtx,
    ) -> PlaybackReport {
        match self.cfg.renderer {
            Renderer::Gpu => SegmentPipeline::new(
                self,
                server,
                trace,
                transport,
                GpuBackend::new(&self.cfg),
                ctx,
            )
            .run(),
            Renderer::Pte => SegmentPipeline::new(
                self,
                server,
                trace,
                transport,
                PteBackend::new(&self.cfg, self.pte_frame),
                ctx,
            )
            .run(),
        }
    }
}

pub(crate) fn frame_wire_bytes(frame: &EncodedFrame, scale: f64) -> u64 {
    (frame.payload_bytes() as f64 * scale) as u64 + (frame.bytes - frame.payload_bytes())
}

/// Total target-scale wire bytes of a segment (helper shared with tests
/// and experiment drivers).
pub fn segment_wire_bytes(segment: &EncodedSegment, scale: f64) -> u64 {
    segment.frames.iter().map(|f| frame_wire_bytes(f, scale)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use evr_energy::{Activity, Component};
    use evr_sas::{ingest_video, SasConfig};
    use evr_trace::behavior::{generate_user_trace, params_for};
    use evr_video::library::{scene_for, VideoId};

    fn setup(video: VideoId, secs: f64) -> (SasServer, HeadTrace) {
        let scene = scene_for(video);
        let server = SasServer::new(ingest_video(&scene, &SasConfig::tiny_for_tests(), secs));
        let trace = generate_user_trace(&scene, &params_for(video), 3, secs, 30.0);
        (server, trace)
    }

    fn run(
        path: ContentPath,
        renderer: Renderer,
        server: &SasServer,
        trace: &HeadTrace,
    ) -> PlaybackReport {
        let cfg = SessionConfig::new(path, renderer, SasConfig::tiny_for_tests());
        PlaybackSession::new(cfg).run(server, trace)
    }

    #[test]
    fn baseline_renders_every_frame_on_gpu() {
        let (server, trace) = setup(VideoId::Rhino, 1.0);
        let r = run(ContentPath::OnlineBaseline, Renderer::Gpu, &server, &trace);
        assert_eq!(r.frames_total, 30);
        assert_eq!(r.fallback_frames, 30);
        assert_eq!(r.fov_hits + r.fov_misses, 0);
        assert!(r.ledger.get(Component::Compute, Activity::ProjectiveTransform) > 0.0);
    }

    #[test]
    fn sas_hits_avoid_pt_entirely() {
        let (server, trace) = setup(VideoId::Rhino, 1.0);
        let r = run(ContentPath::OnlineSas, Renderer::Gpu, &server, &trace);
        assert!(r.fov_hits > 0, "expected some hits");
        // PT energy strictly below baseline.
        let base = run(ContentPath::OnlineBaseline, Renderer::Gpu, &server, &trace);
        assert!(
            r.ledger.activity_total(Activity::ProjectiveTransform)
                < base.ledger.activity_total(Activity::ProjectiveTransform)
        );
    }

    #[test]
    fn pte_renderer_uses_less_pt_energy_than_gpu() {
        let (server, trace) = setup(VideoId::Rs, 1.0);
        let gpu = run(ContentPath::OnlineBaseline, Renderer::Gpu, &server, &trace);
        let pte = run(ContentPath::OnlineBaseline, Renderer::Pte, &server, &trace);
        let pt = |r: &PlaybackReport| r.ledger.activity_total(Activity::ProjectiveTransform);
        assert!(pt(&pte) < pt(&gpu) / 3.0, "pte {} gpu {}", pt(&pte), pt(&gpu));
        // And less total device energy.
        assert!(pte.ledger.total() < gpu.ledger.total());
    }

    #[test]
    fn offline_has_no_network_energy() {
        let (server, trace) = setup(VideoId::Timelapse, 1.0);
        let r = run(ContentPath::Offline, Renderer::Pte, &server, &trace);
        assert_eq!(r.ledger.component_total(Component::Network), 0.0);
        assert!(r.ledger.component_total(Component::Storage) > 0.0);
        assert_eq!(r.bytes_received, 0);
    }

    #[test]
    fn sas_reduces_received_bytes_for_tracking_user() {
        // A user who stares at the herd never misses; SAS then streams
        // only the (smaller) FOV videos — the Fig. 13 bandwidth effect.
        let scene = scene_for(VideoId::Rhino);
        let server = SasServer::new(ingest_video(&scene, &SasConfig::tiny_for_tests(), 2.0));
        let herd = scene.objects()[0].position(0.0);
        let s = evr_math::SphericalCoord::from_vector(herd).unwrap();
        let pose = evr_math::EulerAngles::new(s.lon, s.lat, evr_math::Radians(0.0));
        let samples: Vec<_> =
            (0..61).map(|i| evr_trace::PoseSample { t: i as f64 / 30.0, pose }).collect();
        let trace = HeadTrace::from_samples(samples);

        let sas = run(ContentPath::OnlineSas, Renderer::Pte, &server, &trace);
        let base = run(ContentPath::OnlineBaseline, Renderer::Pte, &server, &trace);
        // Cluster centroids drift segment to segment (detector noise,
        // k-means variation); a staring user still hits almost always.
        assert!(
            sas.fov_miss_fraction() < 0.4,
            "staring user misses {:.0}% of frames",
            100.0 * sas.fov_miss_fraction()
        );
        assert!(
            sas.bytes_received < base.bytes_received,
            "sas {} baseline {}",
            sas.bytes_received,
            base.bytes_received
        );
    }

    #[test]
    fn misses_cause_rebuffering_and_fallback() {
        // Force misses by streaming with zero margin and a twitchy user.
        let scene = scene_for(VideoId::Rs);
        let mut sas_cfg = SasConfig::tiny_for_tests();
        sas_cfg.fov_margin = evr_math::Degrees(0.5);
        let server = SasServer::new(ingest_video(&scene, &sas_cfg, 2.0));
        let trace = generate_user_trace(&scene, &params_for(VideoId::Rs), 9, 2.0, 30.0);
        let cfg = SessionConfig::new(ContentPath::OnlineSas, Renderer::Gpu, sas_cfg);
        let r = PlaybackSession::new(cfg).run(&server, &trace);
        assert!(r.fov_misses > 0);
        assert_eq!(r.rebuffer_events > 0, r.fov_misses > 0);
        assert!(r.rebuffer_time_s > 0.0);
        assert!(r.fps_drop_fraction() < 0.2);
        assert!(r.fallback_frames > 0);
    }

    #[test]
    fn observed_run_mirrors_report_counters() {
        let (server, trace) = setup(VideoId::Rhino, 1.0);
        let obs = evr_obs::Observer::enabled();
        let cfg =
            SessionConfig::new(ContentPath::OnlineSas, Renderer::Pte, SasConfig::tiny_for_tests());
        let session = PlaybackSession::with_observer(cfg, obs.clone());
        let r = session.run(&server, &trace);

        use evr_obs::names;
        assert_eq!(obs.counter(names::FRAMES).get(), r.frames_total);
        assert_eq!(obs.counter(names::FOV_HITS).get(), r.fov_hits);
        assert_eq!(obs.counter(names::FOV_MISSES).get(), r.fov_misses);
        assert_eq!(obs.counter(names::FALLBACK_FRAMES).get(), r.fallback_frames);
        assert_eq!(obs.counter(names::REBUFFER_EVENTS).get(), r.rebuffer_events);
        assert_eq!(obs.counter(names::FETCH_BYTES).get(), r.bytes_received);
        assert!((obs.gauge(names::REBUFFER_SECONDS).get() - r.rebuffer_time_s).abs() < 1e-12);
        // Frame latency histogram saw every frame.
        let hist = obs.histogram(names::FRAME_SECONDS, &evr_obs::LATENCY_BOUNDS_S);
        assert_eq!(hist.snapshot().count, r.frames_total);
        // Per-stage pipeline timings cover every segment.
        let segments = obs.counter(names::SEGMENTS).get();
        for stage in ["plan", "fetch", "render", "account"] {
            let h = obs
                .histogram(&names::pipeline_stage_seconds(stage), &evr_obs::LATENCY_BOUNDS_S)
                .snapshot();
            assert_eq!(h.count, segments, "stage {stage}");
        }
        // PTE renderer: every fallback frame went through the engine mirror.
        assert_eq!(obs.counter(names::PT_PTE_FRAMES).get(), r.fallback_frames);
        assert_eq!(obs.counter(names::PT_GPU_FRAMES).get(), 0);
        if r.fallback_frames > 0 {
            assert!(obs.counter(names::PTE_ACTIVE_CYCLES).get() > 0);
        }
        // Energy gauges mirror the ledger per component.
        for c in Component::ALL {
            let gauge = obs.gauge(&names::energy_gauge(&c.to_string()));
            assert!(
                (gauge.get() - r.ledger.component_total(c)).abs() < 1e-9,
                "{c}: gauge {} vs ledger {}",
                gauge.get(),
                r.ledger.component_total(c)
            );
        }
        // Spans cover every frame, hit/miss marks every check.
        let events = obs.events();
        let frame_begins = events
            .iter()
            .filter(|e| e.name == names::SPAN_FRAME && e.kind == evr_obs::EventKind::SpanBegin)
            .count() as u64;
        assert_eq!(frame_begins, r.frames_total);
        let hits = events.iter().filter(|e| e.name == names::MARK_FOV_HIT).count() as u64;
        let misses = events.iter().filter(|e| e.name == names::MARK_FOV_MISS).count() as u64;
        assert_eq!((hits, misses), (r.fov_hits, r.fov_misses));
    }

    #[test]
    fn unobserved_run_matches_observed_run() {
        let (server, trace) = setup(VideoId::Rs, 1.0);
        let cfg =
            SessionConfig::new(ContentPath::OnlineSas, Renderer::Gpu, SasConfig::tiny_for_tests());
        let silent = PlaybackSession::new(cfg).run(&server, &trace);
        let observed =
            PlaybackSession::with_observer(cfg, evr_obs::Observer::enabled()).run(&server, &trace);
        assert_eq!(silent, observed);
    }

    #[test]
    fn report_duration_matches_frames() {
        let (server, trace) = setup(VideoId::Paris, 1.0);
        let r = run(ContentPath::Live, Renderer::Pte, &server, &trace);
        assert!((r.duration_s - r.frames_total as f64 / 30.0).abs() < 1e-9);
        assert!(r.ledger.total_power() > 1.0, "device draws watts");
    }

    #[test]
    fn empty_report_fractions_are_zero_not_nan() {
        let r = PlaybackReport::empty();
        assert_eq!(r.miss_rate(), 0.0);
        assert_eq!(r.fov_miss_fraction(), 0.0);
        assert_eq!(r.fps_drop_fraction(), 0.0);
        assert_eq!(r.stall_fraction(), 0.0);
        assert_eq!(r.degraded_fraction(), 0.0);
        assert_eq!(r.frozen_fraction(), 0.0);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let (server, trace) = setup(VideoId::Rhino, 1.0);
        let r = run(ContentPath::OnlineSas, Renderer::Pte, &server, &trace);
        // Identity on the right: r ⊕ 0 = r.
        let mut right = r.clone();
        right.merge(&PlaybackReport::empty());
        assert_eq!(right, r);
        // Identity on the left: 0 ⊕ r = r.
        let mut left = PlaybackReport::empty();
        left.merge(&r);
        assert_eq!(left, r);
    }

    #[test]
    fn asymmetric_merge_sums_counters_and_time_weights_fractions() {
        let (server, trace) = setup(VideoId::Rhino, 1.0);
        let a = run(ContentPath::OnlineSas, Renderer::Pte, &server, &trace);
        let b = run(ContentPath::OnlineBaseline, Renderer::Gpu, &server, &trace);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.frames_total, a.frames_total + b.frames_total);
        assert_eq!(merged.fov_hits, a.fov_hits + b.fov_hits);
        assert_eq!(merged.fallback_frames, a.fallback_frames + b.fallback_frames);
        assert_eq!(merged.bytes_received, a.bytes_received + b.bytes_received);
        assert!((merged.duration_s - (a.duration_s + b.duration_s)).abs() < 1e-12);
        assert!(
            (merged.ledger.total() - (a.ledger.total() + b.ledger.total())).abs() < 1e-9,
            "ledger sums"
        );
        assert!((merged.ledger.duration() - merged.duration_s).abs() < 1e-12);
        // The merged fraction is frame-weighted, not a mean of means.
        let expect = (a.fallback_frames + b.fallback_frames) as f64
            / (a.frames_total + b.frames_total) as f64;
        assert!((merged.fov_miss_fraction() - expect).abs() < 1e-12);
        // Merging an empty report into an empty one stays empty and
        // NaN-free.
        let mut zero = PlaybackReport::empty();
        zero.merge(&PlaybackReport::empty());
        assert_eq!(zero, PlaybackReport::empty());
        assert_eq!(zero.stall_fraction(), 0.0);
    }
}

#[cfg(test)]
mod resilience_tests {
    use super::*;
    use evr_energy::{Activity, Component};
    use evr_faults::{FaultEvent, FaultPlan, GilbertElliott, LinkProcess, RetryPolicy};
    use evr_obs::names;
    use evr_sas::{ingest_video, SasConfig};
    use evr_trace::behavior::{generate_user_trace, params_for};
    use evr_video::library::{scene_for, VideoId};

    fn setup(video: VideoId, secs: f64) -> (SasServer, HeadTrace) {
        let scene = scene_for(video);
        let server = SasServer::new(ingest_video(&scene, &SasConfig::tiny_for_tests(), secs));
        let trace = generate_user_trace(&scene, &params_for(video), 3, secs, 30.0);
        (server, trace)
    }

    fn session(path: ContentPath) -> PlaybackSession {
        PlaybackSession::new(SessionConfig::new(path, Renderer::Pte, SasConfig::tiny_for_tests()))
    }

    #[test]
    fn clean_setup_is_bit_identical_to_the_plain_run() {
        let (server, trace) = setup(VideoId::Rhino, 1.0);
        for path in [ContentPath::OnlineSas, ContentPath::OnlineBaseline, ContentPath::Offline] {
            let s = session(path);
            let clean = s.run(&server, &trace);
            let resilient = s.run_resilient(&server, &trace, &evr_faults::FaultSetup::none());
            assert_eq!(clean, resilient, "{path:?}");
            assert_eq!(resilient.faults, FaultSummary::default());
        }
    }

    #[test]
    fn permanent_outage_freezes_every_segment() {
        let (server, trace) = setup(VideoId::Rs, 1.0);
        let setup = evr_faults::FaultSetup::none().with_plan(
            FaultPlan::none().with(FaultEvent::ServerOutage { start_s: 0.0, duration_s: 1e6 }),
        );
        let s = session(ContentPath::OnlineSas);
        let r = s.run_resilient(&server, &trace, &setup);
        assert_eq!(r.faults.frozen_frames, r.frames_total);
        assert_eq!(r.bytes_received, 0);
        assert!(r.faults.timeouts > 0 && r.faults.retries > 0);
        assert!(r.faults.stall_time_s > 0.0 && r.faults.backoff_time_s > 0.0);
        assert!(r.ledger.activity_total(Activity::Resilience) > 0.0);
        assert_eq!(r.frozen_fraction(), 1.0);
    }

    #[test]
    fn request_drop_is_recovered_by_one_retry() {
        let (server, trace) = setup(VideoId::Rhino, 1.0);
        let setup = evr_faults::FaultSetup::none()
            .with_plan(FaultPlan::none().with(FaultEvent::RequestDrop { segment: 0 }));
        let r = session(ContentPath::OnlineSas).run_resilient(&server, &trace, &setup);
        assert_eq!(r.faults.timeouts, 1);
        assert_eq!(r.faults.retries, 1);
        assert_eq!(r.faults.frozen_frames, 0);
        assert_eq!(r.faults.degraded_frames, 0);
        // The drop costs one timeout plus one backoff wait of stall.
        assert!(r.faults.stall_time_s >= 0.25, "stall {}", r.faults.stall_time_s);
    }

    #[test]
    fn corrupt_fov_segment_degrades_to_the_original() {
        let (server, trace) = setup(VideoId::Rhino, 1.0);
        let setup = evr_faults::FaultSetup::none()
            .with_plan(FaultPlan::none().with(FaultEvent::SegmentCorruption { segment: 0 }));
        let clean = session(ContentPath::OnlineSas).run(&server, &trace);
        let r = session(ContentPath::OnlineSas).run_resilient(&server, &trace, &setup);
        assert_eq!(r.faults.corrupt_segments, 1);
        // The corrupt transfer is paid for on top of the replacement.
        assert!(r.bytes_received > clean.bytes_received);
        assert!(r.ledger.activity_total(Activity::Resilience) > 0.0);
    }

    #[test]
    fn late_segment_stalls_without_degrading() {
        let (server, trace) = setup(VideoId::Rhino, 1.0);
        let setup = evr_faults::FaultSetup::none().with_plan(
            FaultPlan::none().with(FaultEvent::LateSegment { segment: 1, delay_s: 0.4 }),
        );
        let r = session(ContentPath::OnlineSas).run_resilient(&server, &trace, &setup);
        assert_eq!(r.faults.timeouts, 0);
        assert_eq!(r.faults.frozen_frames + r.faults.degraded_frames, 0);
        assert!((r.faults.stall_time_s - 0.4).abs() < 1e-9, "stall {}", r.faults.stall_time_s);
    }

    #[test]
    fn dead_link_without_a_plan_also_freezes() {
        let (server, trace) = setup(VideoId::Rs, 1.0);
        let setup = evr_faults::FaultSetup::none().with_link(LinkProcess {
            profile: evr_faults::BandwidthProfile::constant(0.0),
            loss: GilbertElliott::clean(),
            rtt_s: 0.002,
        });
        let r = session(ContentPath::OnlineSas).run_resilient(&server, &trace, &setup);
        assert_eq!(r.faults.frozen_frames, r.frames_total);
        assert_eq!(r.bytes_received, 0);
    }

    #[test]
    fn same_seed_replays_identically_and_seeds_differ() {
        let (server, trace) = setup(VideoId::Rs, 1.0);
        let bursty = |seed| {
            let mut setup = evr_faults::FaultSetup::seeded(seed).with_link(LinkProcess {
                profile: evr_faults::BandwidthProfile::constant(300e6),
                loss: GilbertElliott::bursty(0.4, 2.0, 0.6),
                rtt_s: 0.002,
            });
            setup.retry = RetryPolicy { timeout_s: 10.0, ..RetryPolicy::default() };
            session(ContentPath::OnlineSas).run_resilient(&server, &trace, &setup)
        };
        let a = bursty(7);
        assert_eq!(a, bursty(7));
        // Different seeds visit different loss states → different bytes
        // on the wire (almost surely, for this bursty channel).
        let b = bursty(8);
        let wire = |r: &PlaybackReport| r.ledger.get(Component::Network, Activity::NetworkRx);
        assert_ne!(wire(&a), wire(&b));
    }

    #[test]
    fn observed_resilient_run_mirrors_fault_counters() {
        let (server, trace) = setup(VideoId::Rs, 1.0);
        let obs = evr_obs::Observer::enabled();
        let cfg =
            SessionConfig::new(ContentPath::OnlineSas, Renderer::Pte, SasConfig::tiny_for_tests());
        let s = PlaybackSession::with_observer(cfg, obs.clone());
        let setup = evr_faults::FaultSetup::none().with_plan(
            FaultPlan::none()
                .with(FaultEvent::ServerOutage { start_s: 0.0, duration_s: 0.6 })
                .with(FaultEvent::RequestDrop { segment: 3 }),
        );
        let r = s.run_resilient(&server, &trace, &setup);
        assert_eq!(obs.counter(names::FAULT_RETRIES).get(), r.faults.retries);
        assert_eq!(obs.counter(names::FAULT_TIMEOUTS).get(), r.faults.timeouts);
        assert_eq!(obs.counter(names::DEGRADED_FRAMES).get(), r.faults.degraded_frames);
        assert_eq!(obs.counter(names::FROZEN_FRAMES).get(), r.faults.frozen_frames);
        assert!((obs.gauge(names::BACKOFF_SECONDS).get() - r.faults.backoff_time_s).abs() < 1e-12);
        assert!(r.faults.timeouts > 0, "the outage must bite");
        let stalls =
            obs.histogram(names::FAULT_STALL_SECONDS, &crate::pipeline::STALL_BOUNDS_S).snapshot();
        assert!(stalls.count > 0);
        // The observed run is behaviourally identical to a silent one.
        let silent = PlaybackSession::new(cfg).run_resilient(&server, &trace, &setup);
        assert_eq!(silent, r);
    }
}

#[cfg(test)]
mod selection_tests {
    use super::*;
    use evr_sas::{ingest_video, SasConfig};
    use evr_trace::PoseSample;
    use evr_video::library::{scene_for, VideoId};

    /// A user sweeping steadily rightward at 30°/s: linear prediction
    /// should select the stream ahead of the sweep.
    fn sweeping_trace(secs: f64) -> HeadTrace {
        let samples = (0..=(secs * 30.0) as u64)
            .map(|i| {
                let t = i as f64 / 30.0;
                PoseSample {
                    t,
                    pose: evr_math::EulerAngles::from_degrees(t * 30.0 - 30.0, -8.0, 0.0),
                }
            })
            .collect();
        HeadTrace::from_samples(samples)
    }

    #[test]
    fn linear_prediction_does_not_hurt_a_sweeping_user() {
        let scene = scene_for(VideoId::Paris);
        let sas = SasConfig::tiny_for_tests();
        let server = SasServer::new(ingest_video(&scene, &sas, 2.0));
        let trace = sweeping_trace(2.0);

        let run = |selection: SelectionPolicy| {
            let mut cfg = SessionConfig::new(ContentPath::OnlineSas, Renderer::Pte, sas);
            cfg.selection = selection;
            PlaybackSession::new(cfg).run(&server, &trace)
        };
        let cur = run(SelectionPolicy::CurrentPose);
        let pred = run(SelectionPolicy::LinearPrediction { lookahead_s: 0.5 });
        assert!(
            pred.fov_miss_fraction() <= cur.fov_miss_fraction() + 1e-9,
            "pred {} vs cur {}",
            pred.fov_miss_fraction(),
            cur.fov_miss_fraction()
        );
    }

    #[test]
    fn prediction_with_zero_lookahead_equals_current_pose() {
        let scene = scene_for(VideoId::Rhino);
        let sas = SasConfig::tiny_for_tests();
        let server = SasServer::new(ingest_video(&scene, &sas, 1.0));
        let trace = sweeping_trace(1.0);
        let run = |selection: SelectionPolicy| {
            let mut cfg = SessionConfig::new(ContentPath::OnlineSas, Renderer::Pte, sas);
            cfg.selection = selection;
            PlaybackSession::new(cfg).run(&server, &trace)
        };
        assert_eq!(
            run(SelectionPolicy::CurrentPose),
            run(SelectionPolicy::LinearPrediction { lookahead_s: 0.0 })
        );
    }
}
