//! Multi-user experiment running and aggregation.
//!
//! The paper replays 59 users per video (§8.1); user sessions are
//! independent, so the runner replays them on a thread pool and averages
//! the resulting ledgers and statistics.

use std::path::{Path, PathBuf};

use evr_client::session::PlaybackReport;
use evr_energy::EnergyLedger;

use crate::fleet::FleetRunner;
use crate::system::{EvrSystem, UseCase, Variant};

/// How an experiment sweeps users.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentConfig {
    /// Number of study users to replay (paper: 59).
    pub users: u64,
    /// Threads for the user sweep.
    pub threads: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig { users: evr_trace::dataset::USER_COUNT as u64, threads: 8 }
    }
}

impl ExperimentConfig {
    /// A reduced configuration for unit tests.
    pub fn quick(users: u64) -> Self {
        ExperimentConfig { users, threads: 4 }
    }
}

/// Averaged results across users.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateReport {
    /// Mean energy ledger (per-user average).
    pub ledger: EnergyLedger,
    /// Mean per-check FOV-miss rate.
    pub miss_rate: f64,
    /// Mean fraction of frames served from the original stream (the
    /// paper's reported FOV-miss rate).
    pub fov_miss_fraction: f64,
    /// Mean FPS-drop fraction.
    pub fps_drop: f64,
    /// Mean bytes received per user.
    pub bytes_received: f64,
    /// Mean rebuffer time per user, seconds.
    pub rebuffer_time_s: f64,
    /// Mean fault-induced stall time per user, seconds (zero for clean
    /// runs).
    pub fault_stall_s: f64,
    /// Mean fraction of frames served degraded or frozen.
    pub degraded_fraction: f64,
    /// Mean fraction of frames frozen on the last good picture.
    pub frozen_fraction: f64,
    /// Mean request retries per user.
    pub retries: f64,
    /// Mean request timeouts per user.
    pub timeouts: f64,
    /// Mean segments shed by the serving front per user.
    pub shed_segments: f64,
    /// Mean segments refused by the front (outage / open breaker) per
    /// user.
    pub front_unavailable_segments: f64,
    /// Users aggregated.
    pub users: u64,
}

impl AggregateReport {
    fn from_reports(reports: Vec<PlaybackReport>) -> AggregateReport {
        assert!(!reports.is_empty(), "aggregate requires at least one report");
        let n = reports.len() as f64;
        let mut ledger = EnergyLedger::new();
        let mut duration = 0.0;
        let mut miss_rate = 0.0;
        let mut fov_miss_fraction = 0.0;
        let mut fps_drop = 0.0;
        let mut bytes = 0.0;
        let mut rebuffer = 0.0;
        let mut fault_stall = 0.0;
        let mut degraded = 0.0;
        let mut frozen = 0.0;
        let mut retries = 0.0;
        let mut timeouts = 0.0;
        let mut shed = 0.0;
        let mut front_unavailable = 0.0;
        for r in &reports {
            ledger.merge(&r.ledger);
            duration += r.duration_s;
            miss_rate += r.miss_rate();
            fov_miss_fraction += r.fov_miss_fraction();
            fps_drop += r.fps_drop_fraction();
            bytes += r.bytes_received as f64;
            rebuffer += r.rebuffer_time_s;
            fault_stall += r.faults.stall_time_s;
            degraded += r.degraded_fraction();
            frozen += r.frozen_fraction();
            retries += r.faults.retries as f64;
            timeouts += r.faults.timeouts as f64;
            shed += r.faults.shed_segments as f64;
            front_unavailable += r.faults.front_unavailable_segments as f64;
        }
        // Scale the merged ledger down to a per-user mean.
        let mut mean = EnergyLedger::new();
        for c in evr_energy::Component::ALL {
            for a in ACTIVITIES {
                let j = ledger.get(c, a) / n;
                if j > 0.0 {
                    mean.add(c, a, j);
                }
            }
        }
        mean.set_duration(duration / n);
        AggregateReport {
            ledger: mean,
            miss_rate: miss_rate / n,
            fov_miss_fraction: fov_miss_fraction / n,
            fps_drop: fps_drop / n,
            bytes_received: bytes / n,
            rebuffer_time_s: rebuffer / n,
            fault_stall_s: fault_stall / n,
            degraded_fraction: degraded / n,
            frozen_fraction: frozen / n,
            retries: retries / n,
            timeouts: timeouts / n,
            shed_segments: shed / n,
            front_unavailable_segments: front_unavailable / n,
            users: reports.len() as u64,
        }
    }
}

const ACTIVITIES: [evr_energy::Activity; 9] = [
    evr_energy::Activity::Decode,
    evr_energy::Activity::ProjectiveTransform,
    evr_energy::Activity::Base,
    evr_energy::Activity::DisplayScan,
    evr_energy::Activity::NetworkRx,
    evr_energy::Activity::StorageIo,
    evr_energy::Activity::HeadMotionPrediction,
    evr_energy::Activity::QualityAssessment,
    evr_energy::Activity::Resilience,
];

/// Runs `variant` for all users in `use_case`, in parallel, and averages.
pub fn run_variant(
    system: &EvrSystem,
    use_case: UseCase,
    variant: Variant,
    cfg: &ExperimentConfig,
) -> AggregateReport {
    let session = system.session_for(use_case, variant);
    let reports = fleet_for(system, cfg).run(cfg.users, |user| system.run_with(&session, user));
    AggregateReport::from_reports(reports)
}

/// Runs `variant` for all users with `setup`'s faults injected, in
/// parallel, and averages. Each user's fault stream is independently
/// seeded (see [`EvrSystem::run_user_resilient`]), so the sweep stays
/// deterministic under any thread count.
pub fn run_variant_resilient(
    system: &EvrSystem,
    use_case: UseCase,
    variant: Variant,
    cfg: &ExperimentConfig,
    setup: &evr_faults::FaultSetup,
) -> AggregateReport {
    let session = system.session_for(use_case, variant);
    let reports = fleet_for(system, cfg)
        .run(cfg.users, |user| system.run_with_resilient(&session, user, setup));
    AggregateReport::from_reports(reports)
}

/// The fleet runner for one experiment sweep, instrumented with the
/// system's observer so the `evr_fleet_*` metrics accumulate.
fn fleet_for(system: &EvrSystem, cfg: &ExperimentConfig) -> FleetRunner {
    FleetRunner::new(cfg.threads).with_observer(system.observer())
}

/// Per-stage exemplars kept in the run report's slowest-N table.
pub const REPORT_EXEMPLARS: usize = 5;

/// Writes the per-run observability artifact for an instrumented run:
/// `<label>.report.json` (machine-readable counters/gauges/histograms/
/// trace totals) and `<label>.summary.txt` (the human-readable table),
/// both under `dir` (created if missing). Returns the two paths.
///
/// When the observer carries an enabled timeline, the summary gains a
/// slowest-[`REPORT_EXEMPLARS`] exemplar table (per-stage worst
/// offenders with the user/segment/request they ran for) and the full
/// per-worker timeline is written as `<label>.trace_events.json` in
/// Chrome Trace Event Format (open in `chrome://tracing` or Perfetto).
///
/// The label is sanitised to `[A-Za-z0-9._-]` so variant names like
/// `S+H` produce portable file stems.
pub fn write_run_report(
    observer: &evr_obs::Observer,
    label: &str,
    dir: impl AsRef<Path>,
) -> std::io::Result<(PathBuf, PathBuf)> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let stem: String = label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') { c } else { '_' })
        .collect();
    let stem = if stem.is_empty() { "run".to_string() } else { stem };
    let report_path = dir.join(format!("{stem}.report.json"));
    let summary_path = dir.join(format!("{stem}.summary.txt"));
    std::fs::write(&report_path, observer.report_json(label))?;
    let mut summary = observer.summary();
    let timeline = observer.timeline();
    if timeline.is_enabled() {
        let table = timeline.exemplar_table(REPORT_EXEMPLARS);
        if !table.is_empty() {
            summary.push_str("\nslowest intervals per stage (timeline):\n");
            summary.push_str(&table);
        }
        timeline.write_chrome_trace(dir.join(format!("{stem}.trace_events.json")))?;
    }
    std::fs::write(&summary_path, summary)?;
    Ok((report_path, summary_path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use evr_sas::SasConfig;
    use evr_video::library::VideoId;

    #[test]
    fn parallel_run_is_deterministic() {
        let system = EvrSystem::build(VideoId::Rs, SasConfig::tiny_for_tests(), 1.0);
        let cfg = ExperimentConfig::quick(4);
        let a = run_variant(&system, UseCase::OnlineStreaming, Variant::SPlusH, &cfg);
        let b = run_variant(&system, UseCase::OnlineStreaming, Variant::SPlusH, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.users, 4);
    }

    #[test]
    fn aggregate_preserves_energy_scale() {
        let system = EvrSystem::build(VideoId::Rs, SasConfig::tiny_for_tests(), 1.0);
        let cfg = ExperimentConfig::quick(2);
        let agg = run_variant(&system, UseCase::OnlineStreaming, Variant::Baseline, &cfg);
        let single = system.run_user(Variant::Baseline, 0);
        // The mean ledger is the same order of magnitude as one user's.
        let ratio = agg.ledger.total() / single.ledger.total();
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
        // Average device power is in the watts range the paper measures.
        assert!((2.0..8.0).contains(&agg.ledger.total_power()), "{}", agg.ledger.total_power());
    }

    #[test]
    fn run_report_artifacts_are_written_and_well_formed() {
        let obs = evr_obs::Observer::enabled();
        let mut system = EvrSystem::build(VideoId::Rs, SasConfig::tiny_for_tests(), 1.0);
        system.instrument(&obs);
        let _ = run_variant(
            &system,
            UseCase::OnlineStreaming,
            Variant::SPlusH,
            &ExperimentConfig::quick(2),
        );
        let dir = std::env::temp_dir().join("evr-core-report-test");
        let (report, summary) = write_run_report(&obs, "S+H quick", &dir).expect("write artifacts");
        assert_eq!(report.file_name().unwrap(), "S_H_quick.report.json");
        let json = std::fs::read_to_string(&report).unwrap();
        assert!(json.starts_with('{') && json.ends_with("}\n"), "single JSON object");
        assert!(json.contains("\"evr_frames_total\""));
        let table = std::fs::read_to_string(&summary).unwrap();
        assert!(table.contains("evr_frames_total"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resilient_sweep_is_deterministic_and_clean_matches_plain() {
        let system = EvrSystem::build(VideoId::Rs, SasConfig::tiny_for_tests(), 1.0);
        let cfg = ExperimentConfig::quick(3);
        let clean = evr_faults::FaultSetup::none();
        let plain = run_variant(&system, UseCase::OnlineStreaming, Variant::SPlusH, &cfg);
        let resilient =
            run_variant_resilient(&system, UseCase::OnlineStreaming, Variant::SPlusH, &cfg, &clean);
        assert_eq!(plain, resilient);

        let faulty = evr_faults::FaultSetup::seeded(11)
            .with_link(evr_faults::LinkProcess::clean(0.0, 0.002));
        let a = run_variant_resilient(
            &system,
            UseCase::OnlineStreaming,
            Variant::SPlusH,
            &cfg,
            &faulty,
        );
        let b = run_variant_resilient(
            &system,
            UseCase::OnlineStreaming,
            Variant::SPlusH,
            &cfg,
            &faulty,
        );
        assert_eq!(a, b);
        assert!(a.frozen_fraction > 0.9, "dead link should freeze: {}", a.frozen_fraction);
        assert!(a.fault_stall_s > 0.0);
        assert!(a.timeouts > 0.0);
        assert!(
            a.ledger.get(evr_energy::Component::Network, evr_energy::Activity::Resilience) > 0.0
        );
    }

    #[test]
    #[should_panic(expected = "at least one user")]
    fn zero_users_panics() {
        let system = EvrSystem::build(VideoId::Rs, SasConfig::tiny_for_tests(), 1.0);
        let _ = run_variant(
            &system,
            UseCase::OnlineStreaming,
            Variant::H,
            &ExperimentConfig { users: 0, threads: 1 },
        );
    }
}
