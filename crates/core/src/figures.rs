//! One function per table/figure of the paper's evaluation.
//!
//! Each function returns the figure's data series as plain structs; the
//! `evr-bench` binaries format them. Everything is produced by running
//! the actual system (ingestion, trace replay, accelerator models) — no
//! figure is a table lookup.

use evr_energy::{Activity, Component};
use evr_math::fixed::FxFormat;
use evr_math::EulerAngles;
use evr_projection::fixed::pixel_error_vs_reference;
use evr_projection::transform::render_panorama;
use evr_projection::{FilterMode, FovSpec, Projection, Viewport};
use evr_pte::systolic::hmp_network;
use evr_pte::{GpuModel, Pte, PteConfig, SystolicArray};
use evr_sas::SasConfig;
use evr_trace::analysis::{coverage_curve, duration_cdf, tracking_episodes};
use evr_video::library::VideoId;

use crate::experiment::{run_variant, run_variant_resilient, ExperimentConfig};
use crate::system::{EvrSystem, UseCase, Variant};

/// How big to run the experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FigureScale {
    /// Users per video (paper: 59).
    pub users: u64,
    /// Seconds of content per video (scenes are 60 s).
    pub duration_s: f64,
    /// SAS configuration (controls analysis resolutions).
    pub sas: SasConfig,
    /// Worker threads.
    pub threads: usize,
}

impl FigureScale {
    /// Paper-scale: 59 users over the full 60 s scenes.
    pub fn paper() -> Self {
        FigureScale {
            users: 59,
            duration_s: 60.0,
            sas: SasConfig::default(),
            threads: default_threads(),
        }
    }

    /// Reduced scale for smoke tests and CI.
    pub fn quick() -> Self {
        FigureScale {
            users: 6,
            duration_s: 6.0,
            sas: SasConfig::default(),
            threads: default_threads(),
        }
    }

    fn experiment(&self) -> ExperimentConfig {
        ExperimentConfig { users: self.users, threads: self.threads }
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(8)
}

/// Shared state for a figure-generation run: caches ingested systems so
/// figures that touch the same (video, SAS-config) pair — e.g. Figs. 3,
/// 12, 13 and 16 — pay for ingestion once.
#[derive(Debug)]
pub struct FigureContext {
    scale: FigureScale,
    cache: parking_lot::Mutex<std::collections::HashMap<String, std::sync::Arc<EvrSystem>>>,
}

impl FigureContext {
    /// Creates a context at the given scale.
    pub fn new(scale: FigureScale) -> Self {
        FigureContext { scale, cache: parking_lot::Mutex::new(std::collections::HashMap::new()) }
    }

    /// The run's scale.
    pub fn scale(&self) -> &FigureScale {
        &self.scale
    }

    /// Returns the (possibly cached) ingested system for `video` under
    /// `sas`.
    pub fn system(&self, video: VideoId, sas: SasConfig) -> std::sync::Arc<EvrSystem> {
        let key = format!("{video:?}|{sas:?}|{}", self.scale.duration_s);
        if let Some(sys) = self.cache.lock().get(&key) {
            return sys.clone();
        }
        let built = std::sync::Arc::new(EvrSystem::build(video, sas, self.scale.duration_s));
        self.cache.lock().insert(key, built.clone());
        built
    }
}

// --- Figure 3: device power characterisation --------------------------------

/// One bar group of Fig. 3a/3b.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Row {
    /// The video.
    pub video: VideoId,
    /// Average watts per component, in [`Component::ALL`] order.
    pub component_watts: [f64; 5],
    /// Total device watts.
    pub total_watts: f64,
    /// PT's share of compute+memory energy (Fig. 3b), in `[0, 1]`.
    pub pt_share: f64,
}

/// Fig. 3: baseline-playback power breakdown over the characterisation
/// videos (Elephant, Paris, RS, NYC, Rhino).
pub fn fig03(ctx: &FigureContext) -> Vec<Fig3Row> {
    let scale = ctx.scale();
    VideoId::CHARACTERIZATION
        .iter()
        .map(|&video| {
            let system = ctx.system(video, scale.sas);
            let agg = run_variant(
                &system,
                UseCase::OnlineStreaming,
                Variant::Baseline,
                &scale.experiment(),
            );
            let component_watts = Component::ALL.map(|c| agg.ledger.component_power(c));
            Fig3Row {
                video,
                component_watts,
                total_watts: agg.ledger.total_power(),
                pt_share: agg.ledger.pt_share_of_processing(),
            }
        })
        .collect()
}

// --- Figures 5 & 6: viewing-behaviour characterisation -----------------------

/// One subplot of Fig. 5.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Curve {
    /// The video.
    pub video: VideoId,
    /// `coverage_pct[x-1]` = % of frames where ≥1 of the top-`x` objects
    /// is inside users' viewing area.
    pub coverage_pct: Vec<f64>,
}

/// Fig. 5: object coverage of user viewing areas, per evaluation video.
pub fn fig05(ctx: &FigureContext) -> Vec<Fig5Curve> {
    let scale = ctx.scale();
    VideoId::EVALUATION
        .iter()
        .map(|&video| {
            let system = EvrSystem::build_traces_only(video, scale.duration_s);
            let traces: Vec<_> = (0..scale.users).map(|u| system.user_trace(u)).collect();
            let curve = coverage_curve(&traces, system.scene(), FovSpec::hdk2());
            Fig5Curve { video, coverage_pct: curve }
        })
        .collect()
}

/// One curve of Fig. 6.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Curve {
    /// The video.
    pub video: VideoId,
    /// Duration thresholds, seconds.
    pub xs: Vec<f64>,
    /// % of total time in tracking episodes of at least `xs[i]` seconds.
    pub cumulative_pct: Vec<f64>,
}

/// Fig. 6: cumulative distribution of object-tracking durations.
pub fn fig06(ctx: &FigureContext) -> Vec<Fig6Curve> {
    let scale = ctx.scale();
    let xs = vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
    VideoId::EVALUATION
        .iter()
        .map(|&video| {
            let system = EvrSystem::build_traces_only(video, scale.duration_s);
            let mut totals = vec![0.0f64; xs.len()];
            let mut time = 0.0;
            for u in 0..scale.users {
                let trace = system.user_trace(u);
                let eps = tracking_episodes(&trace, system.scene(), evr_math::Radians(0.4));
                let cdf = duration_cdf(&eps, trace.duration(), &xs);
                for (t, c) in totals.iter_mut().zip(cdf) {
                    *t += c;
                }
                time += 1.0;
            }
            let cumulative_pct = totals.into_iter().map(|t| 100.0 * t / time).collect();
            Fig6Curve { video, xs: xs.clone(), cumulative_pct }
        })
        .collect()
}

// --- Figure 11: fixed-point format sweep -------------------------------------

/// One point of Fig. 11.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig11Point {
    /// Total datapath width, bits.
    pub total_bits: u32,
    /// Integer bits (incl. sign).
    pub int_bits: u32,
    /// x-axis: integer bits as a percentage of the total.
    pub int_pct: f64,
    /// Mean normalised pixel error vs the `f64` reference.
    pub error: f64,
}

/// Fig. 11: pixel error across fixed-point representations. The paper's
/// chosen design `[28, 10]` sits below the 10⁻³ acceptability threshold.
pub fn fig11() -> Vec<Fig11Point> {
    let src = render_panorama(Projection::Erp, 192, 96, |d| {
        evr_projection::Rgb::new(
            ((d.x * 5.0).sin() * 100.0 + 128.0) as u8,
            ((d.y * 4.0).cos() * 100.0 + 128.0) as u8,
            ((d.z * 6.0).sin() * 100.0 + 128.0) as u8,
        )
    });
    let poses = [
        EulerAngles::default(),
        EulerAngles::from_degrees(75.0, 20.0, 0.0),
        EulerAngles::from_degrees(-140.0, -35.0, 0.0),
    ];
    let mut out = Vec::new();
    for &total in &[24u32, 28, 32, 40, 48, 56] {
        for &int_pct in &[10.0f64, 20.0, 30.0, 36.0, 40.0, 50.0] {
            let int_bits = ((total as f64 * int_pct / 100.0).round() as u32).clamp(2, total - 2);
            let Ok(format) = FxFormat::new(total, int_bits) else { continue };
            let error = pixel_error_vs_reference(
                format,
                Projection::Erp,
                FilterMode::Bilinear,
                FovSpec::hdk2(),
                Viewport::new(32, 32),
                &src,
                &poses,
            );
            out.push(Fig11Point {
                total_bits: total,
                int_bits,
                int_pct: 100.0 * int_bits as f64 / total as f64,
                error,
            });
        }
    }
    out
}

// --- Figure 12: energy savings of S / H / S+H --------------------------------

/// One bar group of Fig. 12.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig12Row {
    /// The video.
    pub video: VideoId,
    /// Compute (SoC) energy savings of `[S, H, S+H]` vs baseline, `[0,1]`.
    pub compute_saving: [f64; 3],
    /// Device-level savings of `[S, H, S+H]` vs baseline.
    pub device_saving: [f64; 3],
}

/// Fig. 12: per-video energy savings of the EVR variants under online
/// streaming.
pub fn fig12(ctx: &FigureContext) -> Vec<Fig12Row> {
    let scale = ctx.scale();
    VideoId::EVALUATION
        .iter()
        .map(|&video| {
            let system = ctx.system(video, scale.sas);
            let cfg = scale.experiment();
            let base = run_variant(&system, UseCase::OnlineStreaming, Variant::Baseline, &cfg);
            let mut compute = [0.0; 3];
            let mut device = [0.0; 3];
            for (i, v) in Variant::EVR.iter().enumerate() {
                let agg = run_variant(&system, UseCase::OnlineStreaming, *v, &cfg);
                compute[i] = agg.ledger.compute_saving_vs(&base.ledger);
                device[i] = agg.ledger.device_saving_vs(&base.ledger);
            }
            Fig12Row { video, compute_saving: compute, device_saving: device }
        })
        .collect()
}

// --- Figure 13: user experience & bandwidth ----------------------------------

/// One bar group of Fig. 13.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig13Row {
    /// The video.
    pub video: VideoId,
    /// FPS drop vs baseline, percent.
    pub fps_drop_pct: f64,
    /// Bandwidth saving of S+H vs baseline, percent.
    pub bandwidth_saving_pct: f64,
    /// FOV-miss rate, percent (§8.2 text: 5.3%–12.0%, mean 7.7%).
    pub miss_rate_pct: f64,
}

/// Fig. 13: FPS drop and bandwidth savings of S+H.
pub fn fig13(ctx: &FigureContext) -> Vec<Fig13Row> {
    let scale = ctx.scale();
    VideoId::EVALUATION
        .iter()
        .map(|&video| {
            let system = ctx.system(video, scale.sas);
            let cfg = scale.experiment();
            let base = run_variant(&system, UseCase::OnlineStreaming, Variant::Baseline, &cfg);
            let sh = run_variant(&system, UseCase::OnlineStreaming, Variant::SPlusH, &cfg);
            Fig13Row {
                video,
                fps_drop_pct: 100.0 * sh.fps_drop,
                bandwidth_saving_pct: 100.0 * (1.0 - sh.bytes_received / base.bytes_received),
                miss_rate_pct: 100.0 * sh.fov_miss_fraction,
            }
        })
        .collect()
}

// --- Figure 14: storage / energy trade-off -----------------------------------

/// One point of Fig. 14.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig14Point {
    /// The video.
    pub video: VideoId,
    /// Object utilisation in `[0, 1]`.
    pub utilization: f64,
    /// FOV-store size relative to the original video.
    pub storage_overhead: f64,
    /// S+H device energy saving vs baseline, `[0, 1]`.
    pub energy_saving: f64,
}

/// Fig. 14: sweeping object utilisation (25/50/75/100%) trades FOV-store
/// size against device energy savings.
pub fn fig14(ctx: &FigureContext) -> Vec<Fig14Point> {
    let scale = ctx.scale();
    let mut out = Vec::new();
    for &video in &VideoId::EVALUATION {
        let full = ctx.system(video, scale.sas);
        let cfg = scale.experiment();
        let base = run_variant(&full, UseCase::OnlineStreaming, Variant::Baseline, &cfg);
        for &utilization in &[0.25, 0.5, 0.75, 1.0] {
            // Derive the reduced store from the fully ingested catalog;
            // the baseline is utilisation-independent.
            let system = full.with_utilization(utilization);
            let sh = run_variant(&system, UseCase::OnlineStreaming, Variant::SPlusH, &cfg);
            out.push(Fig14Point {
                video,
                utilization,
                storage_overhead: system.server().catalog().storage_overhead(),
                energy_saving: sh.ledger.device_saving_vs(&base.ledger),
            });
        }
    }
    out
}

// --- Figure 15: live streaming & offline playback ----------------------------

/// One bar group of Fig. 15.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig15Row {
    /// The video.
    pub video: VideoId,
    /// The use-case (live or offline).
    pub use_case: UseCase,
    /// H's compute (SoC) energy saving vs the same use-case's baseline.
    pub compute_saving: f64,
    /// H's device-level saving.
    pub device_saving: f64,
}

/// Fig. 15: H-only savings in the live-streaming and offline-playback
/// use-cases.
pub fn fig15(ctx: &FigureContext) -> Vec<Fig15Row> {
    let scale = ctx.scale();
    let mut out = Vec::new();
    for &use_case in &[UseCase::LiveStreaming, UseCase::OfflinePlayback] {
        for &video in &VideoId::EVALUATION {
            let system = ctx.system(video, scale.sas);
            let cfg = scale.experiment();
            let base = run_variant(&system, use_case, Variant::Baseline, &cfg);
            let h = run_variant(&system, use_case, Variant::H, &cfg);
            out.push(Fig15Row {
                video,
                use_case,
                compute_saving: h.ledger.compute_saving_vs(&base.ledger),
                device_saving: h.ledger.device_saving_vs(&base.ledger),
            });
        }
    }
    out
}

// --- Figure 16: SAS vs on-device head-motion prediction ----------------------

/// One bar group of Fig. 16.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig16Row {
    /// The video.
    pub video: VideoId,
    /// S+H device saving vs baseline.
    pub s_plus_h: f64,
    /// Perfect on-device HMP (with its inference energy) device saving.
    pub perfect_hmp: f64,
    /// Perfect HMP with zero overhead (upper bound).
    pub ideal_hmp: f64,
}

/// CPU-side input preparation (panorama downsampling / feature staging)
/// for each HMP inference, watts — charged on top of the systolic-array
/// energy in the Fig. 16 comparison.
pub const HMP_PREP_W: f64 = 0.13;

/// Fig. 16: EVR's server-side semantics vs a client-side DNN predictor.
pub fn fig16(ctx: &FigureContext) -> Vec<Fig16Row> {
    let scale = ctx.scale();
    let array = SystolicArray::mobile_24x24();
    let network = hmp_network();
    let hmp_power = array.average_power(&network, evr_sas::ingest::FPS);
    // Activation/weight DRAM traffic at the inference rate.
    let act_bytes: u64 = network.iter().map(|l| l.output_bytes()).sum();
    let dram_per_s = act_bytes as f64 * 2.0 * evr_sas::ingest::FPS;

    VideoId::EVALUATION
        .iter()
        .map(|&video| {
            let system = ctx.system(video, scale.sas);
            let cfg = scale.experiment();
            let base = run_variant(&system, UseCase::OnlineStreaming, Variant::Baseline, &cfg);
            let sh = run_variant(&system, UseCase::OnlineStreaming, Variant::SPlusH, &cfg);
            let ideal = run_variant(&system, UseCase::OnlineStreaming, Variant::IdealHmp, &cfg);

            // Perfect HMP = ideal playback + prediction overhead.
            let mut perfect = ideal.clone();
            let dt = perfect.ledger.duration();
            perfect.ledger.add(
                Component::Compute,
                Activity::HeadMotionPrediction,
                (hmp_power + HMP_PREP_W) * dt,
            );
            perfect.ledger.add(
                Component::Memory,
                Activity::HeadMotionPrediction,
                evr_energy::DeviceParams::default().dram_energy((dram_per_s * dt) as u64),
            );

            Fig16Row {
                video,
                s_plus_h: sh.ledger.device_saving_vs(&base.ledger),
                perfect_hmp: perfect.ledger.device_saving_vs(&base.ledger),
                ideal_hmp: ideal.ledger.device_saving_vs(&base.ledger),
            }
        })
        .collect()
}

// --- Figure 17: PTE generality (360° quality assessment) ---------------------

/// One bar of Fig. 17.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig17Row {
    /// Assessment output resolution.
    pub resolution: (u32, u32),
    /// Projection method of the content.
    pub projection: Projection,
    /// Energy reduction of the PTE-augmented assessor vs the GPU one, %.
    pub reduction_pct: f64,
}

/// Fixed GPU time charged per assessed frame at full active power
/// (kernel launch, context switch, pipeline fill — the poorly-amortised
/// overhead that makes the GPU inefficient on small frames), seconds.
const GPU_SETUP_S: f64 = 0.0073;
/// CPU energy of the metric computation (PSNR + SSIM) per pixel, joules —
/// identical on both systems, so it only dilutes the reduction.
const METRIC_J_PER_PX: f64 = 25.0e-9;
/// Energy to decode the assessed 4K source frame (identical on both
/// systems), joules.
const DECODE_J_PER_FRAME: f64 = 0.012;

/// Fig. 17: energy reduction of using the PTE for real-time 360° video
/// quality assessment, across output resolutions and projections (§8.6).
pub fn fig17() -> Vec<Fig17Row> {
    let gpu = GpuModel::default();
    let resolutions = [(960u32, 1080u32), (1080, 1200), (1280, 1440), (1440, 1600)];
    let mut out = Vec::new();
    for &(w, h) in &resolutions {
        for &projection in &Projection::ALL {
            let px = w as u64 * h as u64;
            let metric_j = px as f64 * METRIC_J_PER_PX;

            let gpu_pt = gpu.pt_frame(px).energy_j + gpu.active_power_w * GPU_SETUP_S;
            let e_gpu = gpu_pt + metric_j + DECODE_J_PER_FRAME;

            let pte = Pte::new(
                PteConfig::prototype()
                    .with_projection(projection)
                    .with_viewport(Viewport::new(w, h)),
            );
            let stats = pte.analyze_frame_strided(3840, 2160, EulerAngles::default(), 4);
            let e_pte = stats.energy_j() + metric_j + DECODE_J_PER_FRAME;

            out.push(Fig17Row {
                resolution: (w, h),
                projection,
                reduction_pct: 100.0 * (e_gpu - e_pte) / e_gpu,
            });
        }
    }
    out
}

// --- Tiled multi-rate variants (T / T+H) -------------------------------------

/// One row of the tiled-variant table (README variant table): one video
/// × one tiled variant, clean and under a mild deterministic fault plan.
#[derive(Debug, Clone, PartialEq)]
pub struct TiledVariantRow {
    /// The video.
    pub video: VideoId,
    /// `T` or `T+H`.
    pub variant: Variant,
    /// Clean bandwidth saving vs the plain baseline, `[0, 1]`.
    pub bandwidth_saving: f64,
    /// Clean device-energy saving vs the plain baseline.
    pub device_saving: f64,
    /// Bandwidth saving under the fault plan, vs the equally faulted
    /// baseline.
    pub faulted_bandwidth_saving: f64,
    /// Device-energy saving under the fault plan.
    pub faulted_device_saving: f64,
    /// Fraction of segments degraded under the fault plan (per-tile
    /// fault isolation keeps this well short of freezing).
    pub faulted_degraded_fraction: f64,
}

/// The mild deterministic fault plan behind the faulted columns of
/// [`tiled_variants_table`]: one dropped request and one corrupt
/// segment, no link or server chaos.
pub fn tiled_mild_faults() -> evr_faults::FaultSetup {
    evr_faults::FaultSetup::seeded(17).with_plan(
        evr_faults::FaultPlan::none()
            .with(evr_faults::FaultEvent::RequestDrop { segment: 1 })
            .with(evr_faults::FaultEvent::SegmentCorruption { segment: 2 }),
    )
}

/// The tiled-variant table: `T` and `T+H` vs the plain baseline on
/// bandwidth and device energy, clean and under [`tiled_mild_faults`].
///
/// Reproduces the paper's §2 observation from the *energy* side: tiling
/// cuts wire bytes (out-of-view tiles ride a downsampled coarse rung)
/// but barely moves device energy because projective transformation
/// still runs per frame — only the `+H` accelerator swap recovers it.
pub fn tiled_variants_table(ctx: &FigureContext) -> Vec<TiledVariantRow> {
    let scale = ctx.scale();
    let cfg = scale.experiment();
    let setup = tiled_mild_faults();
    let mut out = Vec::new();
    for &video in &VideoId::EVALUATION {
        let system = ctx.system(video, scale.sas);
        let base = run_variant(&system, UseCase::OnlineStreaming, Variant::Baseline, &cfg);
        let fbase = run_variant_resilient(
            &system,
            UseCase::OnlineStreaming,
            Variant::Baseline,
            &cfg,
            &setup,
        );
        for variant in Variant::TILED {
            let clean = run_variant(&system, UseCase::OnlineStreaming, variant, &cfg);
            let faulted =
                run_variant_resilient(&system, UseCase::OnlineStreaming, variant, &cfg, &setup);
            out.push(TiledVariantRow {
                video,
                variant,
                bandwidth_saving: 1.0 - clean.bytes_received / base.bytes_received,
                device_saving: clean.ledger.device_saving_vs(&base.ledger),
                faulted_bandwidth_saving: 1.0 - faulted.bytes_received / fbase.bytes_received,
                faulted_device_saving: faulted.ledger.device_saving_vs(&fbase.ledger),
                faulted_degraded_fraction: faulted.degraded_fraction,
            });
        }
    }
    out
}

// --- §7.2 prototype table -----------------------------------------------------

/// The PTE prototype's headline numbers (§7.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtoPteRow {
    /// PTUs instantiated.
    pub ptus: u32,
    /// Sustained FPS at the prototype output resolution.
    pub fps: f64,
    /// Power while rendering flat-out, watts.
    pub power_w: f64,
    /// DRAM read traffic per frame, bytes.
    pub dram_read_bytes: u64,
}

/// §7.2: prototype characterisation across PTU counts (2 PTUs is the
/// paper's build: ~50 FPS at 2560×1440, ~194 mW).
pub fn proto_pte() -> Vec<ProtoPteRow> {
    [1u32, 2, 4]
        .iter()
        .map(|&ptus| {
            let pte = Pte::new(PteConfig::prototype().with_ptus(ptus));
            let stats = pte.analyze_frame_strided(3840, 2160, EulerAngles::default(), 4);
            ProtoPteRow {
                ptus,
                fps: stats.fps(),
                power_w: stats.power_watts(),
                dram_read_bytes: stats.dram_read_bytes,
            }
        })
        .collect()
}

impl EvrSystem {
    /// Builds a system for trace-only analytics (Figs. 5/6): skips the
    /// expensive FOV-video pre-rendering by ingesting with zero object
    /// utilisation.
    pub fn build_traces_only(video: VideoId, duration_s: f64) -> EvrSystem {
        let mut sas = SasConfig::tiny_for_tests();
        sas.object_utilization = 0.0;
        // Trace analytics never touch pixels; shrink the rasters further.
        sas.analysis_src = (48, 24);
        sas.analysis_fov = (16, 16);
        EvrSystem::build(video, sas, duration_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_chooses_28_10() {
        let points = fig11();
        let chosen = points
            .iter()
            .find(|p| p.total_bits == 28 && p.int_bits == 10)
            .expect("the paper's design point is swept");
        assert!(chosen.error < 1e-3, "[28,10] error {}", chosen.error);
        // Narrow-integer designs blow past the threshold.
        let narrow = points
            .iter()
            .find(|p| p.total_bits == 28 && p.int_pct < 12.0)
            .expect("a narrow-integer point exists");
        assert!(narrow.error > 1e-3, "narrow error {}", narrow.error);
    }

    #[test]
    fn fig17_shapes() {
        let rows = fig17();
        assert_eq!(rows.len(), 12);
        for r in &rows {
            assert!(r.reduction_pct > 0.0, "{r:?}");
            assert!(r.reduction_pct < 70.0, "{r:?}");
        }
        // Reduction shrinks as resolution grows (GPU amortises), per the
        // paper's observation.
        let at = |res: (u32, u32)| {
            rows.iter().filter(|r| r.resolution == res).map(|r| r.reduction_pct).sum::<f64>() / 3.0
        };
        assert!(at((960, 1080)) > at((1440, 1600)));
    }

    #[test]
    fn proto_pte_matches_paper_headline() {
        let rows = proto_pte();
        let two = rows.iter().find(|r| r.ptus == 2).unwrap();
        assert!((45.0..60.0).contains(&two.fps), "fps {}", two.fps);
        assert!((0.15..0.25).contains(&two.power_w), "power {}", two.power_w);
    }

    #[test]
    fn quick_fig5_has_high_coverage() {
        let mut scale = FigureScale::quick();
        scale.users = 3;
        scale.duration_s = 5.0;
        let curves = fig05(&FigureContext::new(scale));
        assert_eq!(curves.len(), 5);
        for c in &curves {
            assert_eq!(c.coverage_pct.len(), c.video.object_count());
            assert!(*c.coverage_pct.last().unwrap() >= c.coverage_pct[0]);
        }
    }
}
