//! Deterministic parallel execution of per-user playback sessions.
//!
//! The paper's evaluation replays 59 users per video (§8.1) and the
//! ROADMAP's north star is a service "serving heavy traffic from
//! millions of users" — so sweeps must parallelise, but reproducibility
//! is non-negotiable: a sweep's numbers must not depend on how many
//! cores the machine happens to have. [`FleetRunner`] gives both, with
//! the same parity guarantee as `evr-projection`'s scanline pool: the
//! result is byte-identical to a serial loop for *any* worker count.
//!
//! Users are scheduled by the shared chunked self-scheduler in
//! [`evr_sched`] (the same one the SAS segment fan-out uses). The
//! determinism argument (spelled out in DESIGN.md §12):
//!
//! 1. user sessions are pure functions of `(user, config)` — they share
//!    only immutable state (`&EvrSystem`, `&PlaybackSession`);
//! 2. workers pull fixed-size contiguous user-index chunks from a
//!    shared atomic cursor — *which* worker runs which chunk is
//!    timing-dependent (that is what keeps lanes busy under uneven
//!    per-user cost), but chunk contents are fixed by index alone;
//! 3. every report is collected with its user id, sorted by user, and
//!    merged in ascending user order — so all order-sensitive f64
//!    accumulation happens on one thread in one fixed order.
//!
//! Only wall-clock and per-lane observability (the `evr_fleet_*`
//! metrics, the timeline's lane attribution) vary with the worker count
//! and scheduling; the reports never do.

use std::time::Instant;

use evr_client::session::PlaybackReport;
use evr_obs::{names, Observer};

/// Runs one independent playback session per user across a scoped
/// thread pool, returning reports in user order regardless of worker
/// count or scheduling.
///
/// ```
/// use evr_core::{EvrSystem, FleetRunner, UseCase, Variant};
/// use evr_sas::SasConfig;
/// use evr_video::library::VideoId;
///
/// let sys = EvrSystem::build(VideoId::Rhino, SasConfig::tiny_for_tests(), 1.0);
/// let session = sys.session_for(UseCase::OnlineStreaming, Variant::SPlusH);
/// let serial = FleetRunner::new(1).run(3, |u| sys.run_with(&session, u));
/// let fleet = FleetRunner::new(8).run(3, |u| sys.run_with(&session, u));
/// assert_eq!(serial, fleet); // byte-identical, any worker count
/// ```
#[derive(Debug, Clone)]
pub struct FleetRunner {
    workers: usize,
    observer: Observer,
}

impl FleetRunner {
    /// A runner with `workers` threads and no instrumentation. `0`
    /// means *auto* — one worker per available core — and every count,
    /// auto included, is clamped to `1..=64`
    /// ([`evr_sched::resolve_workers`], the same contract as the SAS
    /// ingest fan-out).
    pub fn new(workers: usize) -> Self {
        FleetRunner {
            workers: evr_sched::resolve_workers(workers, u64::MAX),
            observer: Observer::noop(),
        }
    }

    /// Attaches an observer: each sweep adds the user count to
    /// `evr_fleet_users_total` and its wall-clock to
    /// `evr_fleet_wall_seconds`. The run's *results* are unaffected.
    pub fn with_observer(mut self, observer: &Observer) -> Self {
        self.observer = observer.clone();
        self
    }

    /// The configured worker count (auto requests already resolved).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Replays users `0..users` through `run`, in parallel, returning
    /// the reports in user order.
    ///
    /// On an observed runner each worker lane also reports its
    /// completed users (`evr_fleet_worker_users_total_<w>`) and busy
    /// seconds (`evr_fleet_worker_busy_seconds_<w>`) — the gap between
    /// a lane's busy time and the fleet wall time is scheduling idle,
    /// the first thing to look at when scaling is flat. Lane
    /// *attribution* is timing-dependent under self-scheduling, so
    /// these metrics (and the timeline's lane rows) are observability,
    /// never results. With a timeline attached, every user session is
    /// additionally recorded as a `user` interval on its worker's lane.
    ///
    /// # Panics
    ///
    /// Panics if `users` is zero, or if a worker panics.
    pub fn run<F>(&self, users: u64, run: F) -> Vec<PlaybackReport>
    where
        F: Fn(u64) -> PlaybackReport + Sync,
    {
        assert!(users > 0, "fleet needs at least one user");
        let tl = self.observer.timeline();
        let timed = tl.is_enabled();
        let t0 = Instant::now();
        let (reports, lanes) = evr_sched::run_chunked_observed(users, self.workers, 0, |user| {
            if timed {
                let ts = tl.now_ns();
                let report = run(user);
                let ctx = evr_obs::TraceCtx::for_user(user as i64);
                tl.record(names::TIMELINE_USER, ctx, ts, tl.now_ns());
                report
            } else {
                run(user)
            }
        });
        self.observer.counter(names::FLEET_USERS).add(users);
        self.observer.gauge(names::FLEET_WALL_SECONDS).add(t0.elapsed().as_secs_f64());
        if self.observer.is_enabled() {
            for lane in &lanes {
                self.observer.counter(&names::fleet_worker_users(lane.worker)).add(lane.items);
                self.observer
                    .gauge(&names::fleet_worker_busy_seconds(lane.worker))
                    .add(lane.busy_s);
            }
        }
        reports
    }

    /// Like [`FleetRunner::run`], but folds the per-user reports into
    /// one fleet-wide [`PlaybackReport`] via
    /// [`PlaybackReport::merge`], in ascending user order (so the merged
    /// ledger is byte-identical for any worker count too).
    pub fn run_merged<F>(&self, users: u64, run: F) -> PlaybackReport
    where
        F: Fn(u64) -> PlaybackReport + Sync,
    {
        let mut merged = PlaybackReport::empty();
        for r in self.run(users, run) {
            merged.merge(&r);
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{EvrSystem, UseCase, Variant};
    use evr_sas::SasConfig;
    use evr_video::library::VideoId;

    fn tiny() -> EvrSystem {
        EvrSystem::build(VideoId::Rs, SasConfig::tiny_for_tests(), 1.0)
    }

    #[test]
    fn reports_are_in_user_order_for_any_worker_count() {
        let sys = tiny();
        let session = sys.session_for(UseCase::OnlineStreaming, Variant::SPlusH);
        let serial = FleetRunner::new(1).run(5, |u| sys.run_with(&session, u));
        for workers in [2, 3, 8, 64] {
            let fleet = FleetRunner::new(workers).run(5, |u| sys.run_with(&session, u));
            assert_eq!(serial, fleet, "{workers} workers");
        }
        // Order check against direct serial calls.
        for (u, r) in serial.iter().enumerate() {
            assert_eq!(*r, sys.run_with(&session, u as u64), "user {u}");
        }
    }

    #[test]
    fn merged_report_is_worker_count_invariant() {
        let sys = tiny();
        let session = sys.session_for(UseCase::OnlineStreaming, Variant::S);
        let serial = FleetRunner::new(1).run_merged(4, |u| sys.run_with(&session, u));
        let fleet = FleetRunner::new(8).run_merged(4, |u| sys.run_with(&session, u));
        assert_eq!(serial, fleet);
        assert_eq!(serial.frames_total, 4 * sys.run_with(&session, 0).frames_total);
    }

    #[test]
    fn chunked_schedule_matches_the_old_static_interleave_bytes() {
        // The scheduling policy must be invisible in the output: the
        // chunked runner's per-user and merged reports are pinned
        // byte-identical to a hand-rolled `w, w+n, w+2n, …` static
        // interleave (the pre-chunking policy).
        let sys = tiny();
        let session = sys.session_for(UseCase::OnlineStreaming, Variant::SPlusH);
        let users = 7u64;
        let workers = 3u64;
        let mut interleaved: Vec<(u64, PlaybackReport)> = Vec::new();
        for w in 0..workers {
            let mut u = w;
            while u < users {
                interleaved.push((u, sys.run_with(&session, u)));
                u += workers;
            }
        }
        interleaved.sort_by_key(|(u, _)| *u);
        let interleaved: Vec<PlaybackReport> = interleaved.into_iter().map(|(_, r)| r).collect();
        let chunked = FleetRunner::new(workers as usize).run(users, |u| sys.run_with(&session, u));
        assert_eq!(interleaved, chunked);
        let mut merged_interleave = PlaybackReport::empty();
        for r in &interleaved {
            merged_interleave.merge(r);
        }
        let merged_chunked =
            FleetRunner::new(workers as usize).run_merged(users, |u| sys.run_with(&session, u));
        assert_eq!(merged_interleave, merged_chunked);
    }

    #[test]
    fn fleet_metrics_accumulate() {
        let obs = Observer::enabled();
        let sys = tiny();
        let session = sys.session_for(UseCase::OnlineStreaming, Variant::H);
        let runner = FleetRunner::new(2).with_observer(&obs);
        let _ = runner.run(3, |u| sys.run_with(&session, u));
        let _ = runner.run(2, |u| sys.run_with(&session, u));
        assert_eq!(obs.counter(names::FLEET_USERS).get(), 5);
        assert!(obs.gauge(names::FLEET_WALL_SECONDS).get() > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one user")]
    fn zero_users_panics() {
        let _ = FleetRunner::new(2).run(0, |_| PlaybackReport::empty());
    }

    #[test]
    fn worker_count_is_clamped_and_zero_means_auto() {
        // `0` = auto: one per core, same 1..=64 clamp as the SAS
        // fan-out's `resolve_workers` (it used to clamp to 1 here while
        // sas treated 0 as one-per-core — the contracts are unified).
        let auto = FleetRunner::new(0).workers();
        assert!((1..=64).contains(&auto), "auto resolved to {auto}");
        assert_eq!(FleetRunner::new(1000).workers(), 64);
        assert_eq!(FleetRunner::new(1).workers(), 1);
    }
}
