//! Deterministic parallel execution of per-user playback sessions.
//!
//! The paper's evaluation replays 59 users per video (§8.1) and the
//! ROADMAP's north star is a service "serving heavy traffic from
//! millions of users" — so sweeps must parallelise, but reproducibility
//! is non-negotiable: a sweep's numbers must not depend on how many
//! cores the machine happens to have. [`FleetRunner`] gives both, with
//! the same parity guarantee as `evr-projection`'s scanline pool: the
//! result is byte-identical to a serial loop for *any* worker count.
//!
//! The determinism argument (spelled out in DESIGN.md §12):
//!
//! 1. user sessions are pure functions of `(user, config)` — they share
//!    only immutable state (`&EvrSystem`, `&PlaybackSession`);
//! 2. workers take users by a static interleave (worker `w` of `n` runs
//!    users `w, w+n, w+2n, …`) — no work-stealing, no queue ordering;
//! 3. every report is collected with its user id, sorted by user, and
//!    merged in ascending user order — so all order-sensitive f64
//!    accumulation happens on one thread in one fixed order.
//!
//! Only wall-clock (and the `evr_fleet_*` metrics that report it)
//! varies with the worker count.

use std::time::Instant;

use evr_client::session::PlaybackReport;
use evr_obs::{names, Observer};

/// Runs one independent playback session per user across a scoped
/// thread pool, returning reports in user order regardless of worker
/// count or scheduling.
///
/// ```
/// use evr_core::{EvrSystem, FleetRunner, UseCase, Variant};
/// use evr_sas::SasConfig;
/// use evr_video::library::VideoId;
///
/// let sys = EvrSystem::build(VideoId::Rhino, SasConfig::tiny_for_tests(), 1.0);
/// let session = sys.session_for(UseCase::OnlineStreaming, Variant::SPlusH);
/// let serial = FleetRunner::new(1).run(3, |u| sys.run_with(&session, u));
/// let fleet = FleetRunner::new(8).run(3, |u| sys.run_with(&session, u));
/// assert_eq!(serial, fleet); // byte-identical, any worker count
/// ```
#[derive(Debug, Clone)]
pub struct FleetRunner {
    workers: usize,
    observer: Observer,
}

impl FleetRunner {
    /// A runner with `workers` threads (clamped to 1..=64) and no
    /// instrumentation.
    pub fn new(workers: usize) -> Self {
        FleetRunner { workers: workers.clamp(1, 64), observer: Observer::noop() }
    }

    /// Attaches an observer: each sweep adds the user count to
    /// `evr_fleet_users_total` and its wall-clock to
    /// `evr_fleet_wall_seconds`. The run's *results* are unaffected.
    pub fn with_observer(mut self, observer: &Observer) -> Self {
        self.observer = observer.clone();
        self
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Replays users `0..users` through `run`, in parallel, returning
    /// the reports in user order.
    ///
    /// On an observed runner each worker lane also reports its
    /// completed users (`evr_fleet_worker_users_total_<w>`) and busy
    /// seconds (`evr_fleet_worker_busy_seconds_<w>`) — the gap between
    /// a lane's busy time and the fleet wall time is scheduling idle,
    /// the first thing to look at when scaling is flat. With a timeline
    /// attached, every user session is additionally recorded as a
    /// `user` interval on its worker's lane.
    ///
    /// # Panics
    ///
    /// Panics if `users` is zero, or if a worker panics.
    pub fn run<F>(&self, users: u64, run: F) -> Vec<PlaybackReport>
    where
        F: Fn(u64) -> PlaybackReport + Sync,
    {
        assert!(users > 0, "fleet needs at least one user");
        let threads = (self.workers as u64).min(users) as usize;
        let tl = self.observer.timeline();
        let timed = tl.is_enabled();
        let t0 = Instant::now();
        let (reports, lanes) = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for worker in 0..threads as u64 {
                let run = &run;
                handles.push(scope.spawn(move || {
                    evr_obs::timeline::with_worker(worker as u32, || {
                        let busy0 = Instant::now();
                        let mut out = Vec::new();
                        let mut user = worker;
                        while user < users {
                            if timed {
                                let ts = tl.now_ns();
                                out.push((user, run(user)));
                                let ctx = evr_obs::TraceCtx::for_user(user as i64);
                                tl.record(names::TIMELINE_USER, ctx, ts, tl.now_ns());
                            } else {
                                out.push((user, run(user)));
                            }
                            user += threads as u64;
                        }
                        (out, busy0.elapsed().as_secs_f64())
                    })
                }));
            }
            let mut lanes = Vec::with_capacity(threads);
            let mut all: Vec<(u64, PlaybackReport)> = Vec::with_capacity(users as usize);
            for h in handles {
                let (out, busy_s) = h.join().expect("fleet worker panicked");
                lanes.push((out.len() as u64, busy_s));
                all.extend(out);
            }
            all.sort_by_key(|(u, _)| *u);
            (all.into_iter().map(|(_, r)| r).collect::<Vec<_>>(), lanes)
        });
        self.observer.counter(names::FLEET_USERS).add(users);
        self.observer.gauge(names::FLEET_WALL_SECONDS).add(t0.elapsed().as_secs_f64());
        if self.observer.is_enabled() {
            for (worker, (lane_users, busy_s)) in lanes.iter().enumerate() {
                let worker = worker as u32;
                self.observer.counter(&names::fleet_worker_users(worker)).add(*lane_users);
                self.observer.gauge(&names::fleet_worker_busy_seconds(worker)).add(*busy_s);
            }
        }
        reports
    }

    /// Like [`FleetRunner::run`], but folds the per-user reports into
    /// one fleet-wide [`PlaybackReport`] via
    /// [`PlaybackReport::merge`], in ascending user order (so the merged
    /// ledger is byte-identical for any worker count too).
    pub fn run_merged<F>(&self, users: u64, run: F) -> PlaybackReport
    where
        F: Fn(u64) -> PlaybackReport + Sync,
    {
        let mut merged = PlaybackReport::empty();
        for r in self.run(users, run) {
            merged.merge(&r);
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{EvrSystem, UseCase, Variant};
    use evr_sas::SasConfig;
    use evr_video::library::VideoId;

    fn tiny() -> EvrSystem {
        EvrSystem::build(VideoId::Rs, SasConfig::tiny_for_tests(), 1.0)
    }

    #[test]
    fn reports_are_in_user_order_for_any_worker_count() {
        let sys = tiny();
        let session = sys.session_for(UseCase::OnlineStreaming, Variant::SPlusH);
        let serial = FleetRunner::new(1).run(5, |u| sys.run_with(&session, u));
        for workers in [2, 3, 8, 64] {
            let fleet = FleetRunner::new(workers).run(5, |u| sys.run_with(&session, u));
            assert_eq!(serial, fleet, "{workers} workers");
        }
        // Order check against direct serial calls.
        for (u, r) in serial.iter().enumerate() {
            assert_eq!(*r, sys.run_with(&session, u as u64), "user {u}");
        }
    }

    #[test]
    fn merged_report_is_worker_count_invariant() {
        let sys = tiny();
        let session = sys.session_for(UseCase::OnlineStreaming, Variant::S);
        let serial = FleetRunner::new(1).run_merged(4, |u| sys.run_with(&session, u));
        let fleet = FleetRunner::new(8).run_merged(4, |u| sys.run_with(&session, u));
        assert_eq!(serial, fleet);
        assert_eq!(serial.frames_total, 4 * sys.run_with(&session, 0).frames_total);
    }

    #[test]
    fn fleet_metrics_accumulate() {
        let obs = Observer::enabled();
        let sys = tiny();
        let session = sys.session_for(UseCase::OnlineStreaming, Variant::H);
        let runner = FleetRunner::new(2).with_observer(&obs);
        let _ = runner.run(3, |u| sys.run_with(&session, u));
        let _ = runner.run(2, |u| sys.run_with(&session, u));
        assert_eq!(obs.counter(names::FLEET_USERS).get(), 5);
        assert!(obs.gauge(names::FLEET_WALL_SECONDS).get() > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one user")]
    fn zero_users_panics() {
        let _ = FleetRunner::new(2).run(0, |_| PlaybackReport::empty());
    }

    #[test]
    fn worker_count_is_clamped() {
        assert_eq!(FleetRunner::new(0).workers(), 1);
        assert_eq!(FleetRunner::new(1000).workers(), 64);
    }
}
