//! EVR — the end-to-end energy-efficient VR video system.
//!
//! This crate composes the whole reproduction: the SAS cloud side
//! (`evr-sas`), the client device with GPU or PTE rendering
//! (`evr-client`, `evr-pte`), the synthetic content and user ensembles
//! (`evr-video`, `evr-trace`, `evr-semantics`) and the device energy
//! model (`evr-energy`) — and drives every experiment of the paper's
//! evaluation (§8).
//!
//! * [`system`] — [`Variant`] (paper §8.1: `S`, `H`, `S+H` vs the
//!   baseline, plus the tiled multi-rate `T` / `T+H` — DESIGN.md §15),
//!   [`UseCase`] (online / live / offline) and the [`EvrSystem`]
//!   wiring an ingested video to client sessions.
//! * [`experiment`] — multi-user experiment runner with parallel trace
//!   replay and ledger aggregation.
//! * [`fleet`] — the deterministic parallel [`FleetRunner`] behind every
//!   sweep: byte-identical results for any worker count.
//! * [`figures`] — one function per table/figure of the paper,
//!   regenerating its data series; the `evr-bench` binaries print them.
//!
//! # Example
//!
//! ```
//! use evr_core::{EvrSystem, Variant};
//! use evr_sas::SasConfig;
//! use evr_video::library::VideoId;
//!
//! let system = EvrSystem::build(VideoId::Rs, SasConfig::tiny_for_tests(), 1.0);
//! let report = system.run_user(Variant::SPlusH, 0);
//! assert!(report.frames_total > 0);
//! ```

pub mod experiment;
pub mod figures;
pub mod fleet;
pub mod report;
pub mod system;
pub mod tiled;

pub use experiment::{
    run_variant, run_variant_resilient, write_run_report, AggregateReport, ExperimentConfig,
};
pub use fleet::FleetRunner;
pub use system::{EvrSystem, UseCase, Variant};
