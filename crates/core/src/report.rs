//! Markdown report rendering: turns figure data into the
//! paper-vs-measured tables of `EXPERIMENTS.md`.
//!
//! Every renderer embeds the paper's reported values next to this build's
//! measurements, so the generated document *is* the reproduction record.

use std::fmt::Write as _;

use crate::figures::{
    Fig11Point, Fig12Row, Fig13Row, Fig14Point, Fig15Row, Fig16Row, Fig17Row, Fig3Row, Fig5Curve,
    Fig6Curve, ProtoPteRow,
};
use crate::system::UseCase;

fn pct(v: f64) -> String {
    format!("{:.1}%", 100.0 * v)
}

/// Renders the Fig. 3 table.
pub fn fig03_markdown(rows: &[Fig3Row]) -> String {
    let mut out = String::new();
    out.push_str("### Figure 3 — device power characterisation\n\n");
    out.push_str("Paper: ~5 W total during 360° playback; display/network/storage only ");
    out.push_str("~7%/9%/4% of energy; PT ≈ 40% of compute+memory energy (up to 53%, Rhino).\n\n");
    out.push_str("| video | display | network | storage | memory | compute | total | PT share |\n");
    out.push_str("|---|---|---|---|---|---|---|---|\n");
    for r in rows {
        let _ = writeln!(
            out,
            "| {} | {:.2} W | {:.2} W | {:.2} W | {:.2} W | {:.2} W | **{:.2} W** | {} |",
            r.video,
            r.component_watts[0],
            r.component_watts[1],
            r.component_watts[2],
            r.component_watts[3],
            r.component_watts[4],
            r.total_watts,
            pct(r.pt_share)
        );
    }
    let avg = rows.iter().map(|r| r.pt_share).sum::<f64>() / rows.len() as f64;
    let _ = writeln!(out, "\nMeasured mean PT share: **{}** (paper ≈ 40%).\n", pct(avg));
    out
}

/// Renders the Fig. 5 table.
pub fn fig05_markdown(curves: &[Fig5Curve]) -> String {
    let mut out = String::new();
    out.push_str("### Figure 5 — object coverage of user viewing areas\n\n");
    out.push_str("Paper: one object already appears in 60–80% of frames; with all objects ");
    out.push_str("coverage reaches 80–100%.\n\n");
    out.push_str("| video | x = 1 | x = 2 | x = 3 | all objects |\n|---|---|---|---|---|\n");
    for c in curves {
        let at = |i: usize| {
            c.coverage_pct.get(i).map(|v| format!("{v:.1}%")).unwrap_or_else(|| "—".into())
        };
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {:.1}% |",
            c.video,
            at(0),
            at(1),
            at(2),
            c.coverage_pct.last().copied().unwrap_or(0.0)
        );
    }
    out.push('\n');
    out
}

/// Renders the Fig. 6 table.
pub fn fig06_markdown(curves: &[Fig6Curve]) -> String {
    let mut out = String::new();
    out.push_str("### Figure 6 — cumulative distribution of tracking durations\n\n");
    out.push_str("Paper: users spend ≈ 47% of their time tracking one object for ≥ 5 s.\n\n");
    out.push_str("| video | ≥1 s | ≥2 s | ≥3 s | ≥4 s | ≥5 s |\n|---|---|---|---|---|---|\n");
    for c in curves {
        let _ = writeln!(
            out,
            "| {} | {:.1}% | {:.1}% | {:.1}% | {:.1}% | {:.1}% |",
            c.video,
            c.cumulative_pct[1],
            c.cumulative_pct[2],
            c.cumulative_pct[3],
            c.cumulative_pct[4],
            c.cumulative_pct[5]
        );
    }
    let avg = curves.iter().map(|c| c.cumulative_pct[5]).sum::<f64>() / curves.len() as f64;
    let _ = writeln!(out, "\nMeasured mean ≥5 s share: **{avg:.1}%** (paper ≈ 47%).\n");
    out
}

/// Renders the Fig. 11 table (selected rows).
pub fn fig11_markdown(points: &[Fig11Point]) -> String {
    let mut out = String::new();
    out.push_str("### Figure 11 — fixed-point representation sweep\n\n");
    out.push_str("Paper: errors below 10⁻³ are visually indistinguishable; `[28, 10]` is ");
    out.push_str(
        "chosen — narrower integer allocations overflow, narrower totals lose precision.\n\n",
    );
    out.push_str(
        "| total bits | int bits | int % | mean pixel error | verdict |\n|---|---|---|---|---|\n",
    );
    for p in points {
        // Keep the table readable: the chosen width plus the extremes.
        if p.total_bits != 28 && p.total_bits != 24 && p.total_bits != 48 {
            continue;
        }
        let verdict = if p.total_bits == 28 && p.int_bits == 10 {
            "**chosen [28,10]**"
        } else if p.error > 1e-3 {
            "exceeds threshold"
        } else {
            "acceptable (wastes energy if wider than needed)"
        };
        let _ = writeln!(
            out,
            "| {} | {} | {:.0}% | {:.2e} | {} |",
            p.total_bits, p.int_bits, p.int_pct, p.error, verdict
        );
    }
    out.push('\n');
    out
}

/// Renders the Fig. 12 table.
pub fn fig12_markdown(rows: &[Fig12Row]) -> String {
    let mut out = String::new();
    out.push_str("### Figure 12 — energy savings of S / H / S+H (online streaming)\n\n");
    out.push_str("Paper: compute savings average 22% (S), 38% (H), 41% (S+H, up to 58%); ");
    out.push_str("device-level S+H averages 29% (up to 42%).\n\n");
    out.push_str(
        "| video | S compute | H compute | S+H compute | S device | H device | S+H device |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|\n");
    let mut sums = [0.0f64; 6];
    for r in rows {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {} |",
            r.video,
            pct(r.compute_saving[0]),
            pct(r.compute_saving[1]),
            pct(r.compute_saving[2]),
            pct(r.device_saving[0]),
            pct(r.device_saving[1]),
            pct(r.device_saving[2])
        );
        for i in 0..3 {
            sums[i] += r.compute_saving[i];
            sums[3 + i] += r.device_saving[i];
        }
    }
    let n = rows.len() as f64;
    let _ = writeln!(
        out,
        "| **mean** | **{}** | **{}** | **{}** | **{}** | **{}** | **{}** |",
        pct(sums[0] / n),
        pct(sums[1] / n),
        pct(sums[2] / n),
        pct(sums[3] / n),
        pct(sums[4] / n),
        pct(sums[5] / n)
    );
    out.push('\n');
    out
}

/// Renders the Fig. 13 table.
pub fn fig13_markdown(rows: &[Fig13Row]) -> String {
    let mut out = String::new();
    out.push_str("### Figure 13 — FPS drop and bandwidth savings (S+H)\n\n");
    out.push_str("Paper: ≈1% FPS drop; bandwidth savings up to 34% (mean 28%); FOV-miss ");
    out.push_str("rates 5.3% (Timelapse) to 12.0% (RS), mean 7.7%.\n\n");
    out.push_str("| video | FPS drop | bandwidth saving | FOV-miss rate |\n|---|---|---|---|\n");
    for r in rows {
        let _ = writeln!(
            out,
            "| {} | {:.2}% | {:.1}% | {:.1}% |",
            r.video, r.fps_drop_pct, r.bandwidth_saving_pct, r.miss_rate_pct
        );
    }
    let n = rows.len() as f64;
    let _ = writeln!(
        out,
        "| **mean** | **{:.2}%** | **{:.1}%** | **{:.1}%** |",
        rows.iter().map(|r| r.fps_drop_pct).sum::<f64>() / n,
        rows.iter().map(|r| r.bandwidth_saving_pct).sum::<f64>() / n,
        rows.iter().map(|r| r.miss_rate_pct).sum::<f64>() / n
    );
    out.push('\n');
    out
}

/// Renders the Fig. 14 table.
pub fn fig14_markdown(points: &[Fig14Point]) -> String {
    let mut out = String::new();
    out.push_str("### Figure 14 — storage overhead vs energy saving\n\n");
    out.push_str("Paper: at 100% object utilisation the FOV store averages 4.2× the original ");
    out.push_str("(Paris lowest at 2.0×, Timelapse highest at 7.6×); at 25% utilisation the ");
    out.push_str("overhead falls to ≈1.1× while still saving ≈24% energy.\n\n");
    out.push_str("| video | 25% util | 50% | 75% | 100% | saving @25% | saving @100% |\n");
    out.push_str("|---|---|---|---|---|---|---|\n");
    for chunk in points.chunks(4) {
        let _ = writeln!(
            out,
            "| {} | {:.2}× | {:.2}× | {:.2}× | {:.2}× | {} | {} |",
            chunk[0].video,
            chunk[0].storage_overhead,
            chunk[1].storage_overhead,
            chunk[2].storage_overhead,
            chunk[3].storage_overhead,
            pct(chunk[0].energy_saving),
            pct(chunk[3].energy_saving)
        );
    }
    out.push('\n');
    out
}

/// Renders the Fig. 15 table.
pub fn fig15_markdown(rows: &[Fig15Row]) -> String {
    let mut out = String::new();
    out.push_str("### Figure 15 — live streaming & offline playback (H only)\n\n");
    out.push_str("Paper: live streaming saves 38% compute / 21% device; offline playback's ");
    out.push_str(
        "device saving is slightly higher (≈23%) because no network energy dilutes it.\n\n",
    );
    out.push_str("| use-case | video | compute saving | device saving |\n|---|---|---|---|\n");
    for r in rows {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} |",
            r.use_case,
            r.video,
            pct(r.compute_saving),
            pct(r.device_saving)
        );
    }
    for uc in [UseCase::LiveStreaming, UseCase::OfflinePlayback] {
        let sel: Vec<_> = rows.iter().filter(|r| r.use_case == uc).collect();
        if sel.is_empty() {
            continue;
        }
        let c = sel.iter().map(|r| r.compute_saving).sum::<f64>() / sel.len() as f64;
        let d = sel.iter().map(|r| r.device_saving).sum::<f64>() / sel.len() as f64;
        let _ = writeln!(out, "| **{uc} mean** | | **{}** | **{}** |", pct(c), pct(d));
    }
    out.push('\n');
    out
}

/// Renders the Fig. 16 table.
pub fn fig16_markdown(rows: &[Fig16Row]) -> String {
    let mut out = String::new();
    out.push_str("### Figure 16 — SAS vs on-device head-motion prediction\n\n");
    out.push_str("Paper: S+H (29%) beats a *perfect* on-device DNN predictor (26%) because ");
    out.push_str("the inference energy eats the gains; a hypothetical zero-overhead ");
    out.push_str("predictor would reach 39%.\n\n");
    out.push_str("| video | S+H | perfect HMP | perfect HMP, no overhead |\n|---|---|---|---|\n");
    for r in rows {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} |",
            r.video,
            pct(r.s_plus_h),
            pct(r.perfect_hmp),
            pct(r.ideal_hmp)
        );
    }
    let n = rows.len() as f64;
    let _ = writeln!(
        out,
        "| **mean** | **{}** | **{}** | **{}** |",
        pct(rows.iter().map(|r| r.s_plus_h).sum::<f64>() / n),
        pct(rows.iter().map(|r| r.perfect_hmp).sum::<f64>() / n),
        pct(rows.iter().map(|r| r.ideal_hmp).sum::<f64>() / n)
    );
    out.push('\n');
    out
}

/// Renders the Fig. 17 table.
pub fn fig17_markdown(rows: &[Fig17Row]) -> String {
    let mut out = String::new();
    out.push_str("### Figure 17 — PTE for 360° quality assessment\n\n");
    out.push_str("Paper: the PTE cuts assessment energy by up to 40%, with the reduction ");
    out.push_str("shrinking at higher resolutions as the GPU amortises its overheads.\n\n");
    out.push_str("| resolution | ERP | CMP | EAC |\n|---|---|---|---|\n");
    for chunk in rows.chunks(3) {
        let _ = writeln!(
            out,
            "| {}×{} | {:.1}% | {:.1}% | {:.1}% |",
            chunk[0].resolution.0,
            chunk[0].resolution.1,
            chunk[0].reduction_pct,
            chunk[1].reduction_pct,
            chunk[2].reduction_pct
        );
    }
    out.push('\n');
    out
}

/// Renders the chaos (fault-injection) degradation table: one row per
/// severity rung, from the aggregate reports of a resilient sweep.
///
/// This table is not in the paper — it documents how gracefully the
/// reproduced pipeline sheds quality as the link degrades, which is the
/// robustness story `chaos_run` exercises.
pub fn chaos_markdown(rows: &[(String, crate::experiment::AggregateReport)]) -> String {
    let mut out = String::new();
    out.push_str("### Chaos sweep — graceful degradation under link faults\n\n");
    out.push_str("Same users, same content; only the injected fault severity changes. ");
    out.push_str("Energy is the per-user mean device total; resilience J is the energy ");
    out.push_str("spent waiting out faults (retry/backoff/corruption re-decode).\n\n");
    out.push_str("| severity | device J | resilience J | stall s | degraded | frozen | ");
    out.push_str("retries | timeouts |\n|---|---|---|---|---|---|---|---|\n");
    for (label, agg) in rows {
        let resilience: f64 = evr_energy::Component::ALL
            .iter()
            .map(|c| agg.ledger.get(*c, evr_energy::Activity::Resilience))
            .sum();
        let _ = writeln!(
            out,
            "| {} | {:.2} | {:.2} | {:.3} | {} | {} | {:.1} | {:.1} |",
            label,
            agg.ledger.total(),
            resilience,
            agg.fault_stall_s,
            pct(agg.degraded_fraction),
            pct(agg.frozen_fraction),
            agg.retries,
            agg.timeouts
        );
    }
    out.push('\n');
    out
}

/// Renders the §7.2 prototype table.
pub fn proto_markdown(rows: &[ProtoPteRow]) -> String {
    let mut out = String::new();
    out.push_str("### §7.2 — PTE prototype characterisation\n\n");
    out.push_str("Paper: 2 PTUs at 100 MHz sustain 50 FPS at 2560×1440 and draw 194 mW ");
    out.push_str("post-layout — one order of magnitude below a mobile GPU.\n\n");
    out.push_str("| PTUs | FPS | power | DRAM read / frame |\n|---|---|---|---|\n");
    for r in rows {
        let _ = writeln!(
            out,
            "| {} | {:.1} | {:.0} mW | {} KB |",
            r.ptus,
            r.fps,
            1000.0 * r.power_w,
            r.dram_read_bytes / 1024
        );
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use evr_video::library::VideoId;

    #[test]
    fn fig12_table_contains_all_videos_and_means() {
        let rows = vec![Fig12Row {
            video: VideoId::Rhino,
            compute_saving: [0.35, 0.42, 0.40],
            device_saving: [0.27, 0.26, 0.30],
        }];
        let md = fig12_markdown(&rows);
        assert!(md.contains("| Rhino |"));
        assert!(md.contains("**mean**"));
        assert!(md.contains("35.0%"));
    }

    #[test]
    fn fig11_table_marks_the_chosen_design() {
        let points = vec![
            Fig11Point { total_bits: 28, int_bits: 10, int_pct: 35.7, error: 5e-4 },
            Fig11Point { total_bits: 28, int_bits: 3, int_pct: 10.7, error: 5e-2 },
        ];
        let md = fig11_markdown(&points);
        assert!(md.contains("**chosen [28,10]**"));
        assert!(md.contains("exceeds threshold"));
    }

    #[test]
    fn chaos_table_lists_each_severity_with_fault_columns() {
        let mut ledger = evr_energy::EnergyLedger::new();
        ledger.add(evr_energy::Component::Compute, evr_energy::Activity::Decode, 10.0);
        ledger.add(evr_energy::Component::Network, evr_energy::Activity::Resilience, 2.5);
        ledger.set_duration(30.0);
        let agg = crate::experiment::AggregateReport {
            ledger,
            miss_rate: 0.1,
            fov_miss_fraction: 0.08,
            fps_drop: 0.01,
            bytes_received: 1e6,
            rebuffer_time_s: 0.2,
            fault_stall_s: 1.25,
            degraded_fraction: 0.5,
            frozen_fraction: 0.25,
            retries: 3.0,
            timeouts: 2.0,
            shed_segments: 0.0,
            front_unavailable_segments: 0.0,
            users: 4,
        };
        let md = chaos_markdown(&[("severe".to_string(), agg)]);
        assert!(md.contains("| severe |"));
        assert!(md.contains("| severe | 12.50 | 2.50 | 1.250 | 50.0% | 25.0% | 3.0 | 2.0 |"));
    }

    #[test]
    fn proto_table_formats_power_in_mw() {
        let rows = vec![ProtoPteRow {
            ptus: 2,
            fps: 52.6,
            power_w: 0.185,
            dram_read_bytes: 4 * 1024 * 1024,
        }];
        let md = proto_markdown(&rows);
        assert!(md.contains("185 mW"));
        assert!(md.contains("| 2 | 52.6 |"));
    }
}
