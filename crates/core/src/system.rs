//! System variants, use-cases and the end-to-end wiring.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::{Arc, Mutex};

use evr_client::session::{ContentPath, PlaybackReport, PlaybackSession, Renderer, SessionConfig};
use evr_sas::{
    ingest_tiled_rates_with, ingest_video_with, FovPrerenderStore, IngestOptions, SasConfig,
    SasServer, TiledRateCatalog,
};
use evr_trace::behavior::{generate_user_trace, params_for};
use evr_trace::HeadTrace;
use evr_video::library::{scene_for, VideoId};
use evr_video::scene::Scene;

/// The EVR variants of the paper's §8.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Variant {
    /// Today's system: stream originals, PT on the GPU.
    Baseline,
    /// Semantic-aware streaming only (`S`): FOV videos, GPU fallback.
    S,
    /// Hardware-accelerated rendering only (`H`): originals, PTE.
    H,
    /// Both (`S+H`): FOV videos, PTE fallback.
    SPlusH,
    /// Tiled multi-rate streaming (`T`): the related-work tiling
    /// baseline promoted to a first-class variant — per-tile rate
    /// allocation against the link budget, PT on the GPU.
    T,
    /// Tiled multi-rate streaming with hardware-accelerated rendering
    /// (`T+H`): per-tile rate allocation, PTE fallback.
    TPlusH,
    /// §8.5 comparison: SAS with a perfect on-device DNN head-motion
    /// predictor (inference energy charged by the experiment driver).
    PerfectHmp,
    /// §8.5 upper bound: perfect prediction with zero overhead.
    IdealHmp,
}

impl Variant {
    /// The three EVR variants of Fig. 12, in plot order.
    pub const EVR: [Variant; 3] = [Variant::S, Variant::H, Variant::SPlusH];

    /// The tiled multi-rate variants, in plot order.
    pub const TILED: [Variant; 2] = [Variant::T, Variant::TPlusH];

    /// Whether this variant plays through the tiled multi-rate
    /// pipeline (and needs a [`evr_sas::TiledRateCatalog`] attached).
    pub fn is_tiled(self) -> bool {
        matches!(self, Variant::T | Variant::TPlusH)
    }

    fn session(self, use_case: UseCase, sas: SasConfig) -> SessionConfig {
        let (path, renderer, oracle) = match (use_case, self) {
            (UseCase::OnlineStreaming, Variant::Baseline) => {
                (ContentPath::OnlineBaseline, Renderer::Gpu, false)
            }
            (UseCase::OnlineStreaming, Variant::S) => {
                (ContentPath::OnlineSas, Renderer::Gpu, false)
            }
            (UseCase::OnlineStreaming, Variant::H) => {
                (ContentPath::OnlineBaseline, Renderer::Pte, false)
            }
            (UseCase::OnlineStreaming, Variant::SPlusH) => {
                (ContentPath::OnlineSas, Renderer::Pte, false)
            }
            // The tiled variants stream originals tile by tile (no SAS
            // pre-rendering); the multi-rate catalog attached by
            // `EvrSystem::session_for` routes playback through the
            // tiled pipeline.
            (UseCase::OnlineStreaming, Variant::T) => {
                (ContentPath::OnlineBaseline, Renderer::Gpu, false)
            }
            (UseCase::OnlineStreaming, Variant::TPlusH) => {
                (ContentPath::OnlineBaseline, Renderer::Pte, false)
            }
            (UseCase::OnlineStreaming, Variant::PerfectHmp | Variant::IdealHmp) => {
                (ContentPath::OnlineSas, Renderer::Pte, true)
            }
            (UseCase::LiveStreaming, v) => (
                ContentPath::Live,
                if v == Variant::H { Renderer::Pte } else { Renderer::Gpu },
                false,
            ),
            (UseCase::OfflinePlayback, v) => (
                ContentPath::Offline,
                if v == Variant::H { Renderer::Pte } else { Renderer::Gpu },
                false,
            ),
        };
        let mut cfg = SessionConfig::new(path, renderer, sas);
        cfg.oracle_hits = oracle;
        cfg
    }
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Variant::Baseline => "Baseline",
            Variant::S => "S",
            Variant::H => "H",
            Variant::SPlusH => "S+H",
            Variant::T => "T",
            Variant::TPlusH => "T+H",
            Variant::PerfectHmp => "Perfect HMP",
            Variant::IdealHmp => "Perfect HMP w/ No Overhead",
        };
        f.write_str(s)
    }
}

/// The three VR use-cases of the paper's evaluation (§8.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UseCase {
    /// Content streamed from a SAS-capable server: all variants apply.
    OnlineStreaming,
    /// Broadcast with real-time constraints: no server pre-processing,
    /// only `H` applies.
    LiveStreaming,
    /// Playback from local storage: only `H` applies.
    OfflinePlayback,
}

impl UseCase {
    /// Variants the paper evaluates for this use-case.
    pub fn applicable_variants(self) -> &'static [Variant] {
        match self {
            UseCase::OnlineStreaming => &[Variant::S, Variant::H, Variant::SPlusH],
            UseCase::LiveStreaming | UseCase::OfflinePlayback => &[Variant::H],
        }
    }
}

impl fmt::Display for UseCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UseCase::OnlineStreaming => "online-streaming",
            UseCase::LiveStreaming => "live-streaming",
            UseCase::OfflinePlayback => "offline-playback",
        };
        f.write_str(s)
    }
}

/// One video ingested and ready to serve any variant/use-case/user.
#[derive(Debug)]
pub struct EvrSystem {
    video: VideoId,
    scene: Scene,
    server: SasServer,
    sas: SasConfig,
    duration_s: f64,
    observer: evr_obs::Observer,
    /// Per-tile multi-rate catalog for the `T`/`T+H` variants, built
    /// lazily on the first tiled session (most sweeps never pay for it).
    tiles: Mutex<Option<Arc<TiledRateCatalog>>>,
}

impl EvrSystem {
    /// Ingests `video` (the expensive server-side step, done once) over
    /// `duration_s` seconds of content.
    ///
    /// Ingestion fans out across the machine's cores (byte-identical to
    /// a serial ingest) and publishes every cluster's FOV pre-render
    /// into the process-wide [`FovPrerenderStore`], which the server
    /// then serves out of — re-building the same content is a pure
    /// store hit, and concurrent fleet users share one resident copy.
    pub fn build(video: VideoId, sas: SasConfig, duration_s: f64) -> Self {
        let scene = scene_for(video);
        let duration_s = duration_s.min(scene.duration());
        let store = FovPrerenderStore::shared().clone();
        let options =
            IngestOptions { workers: 0, store: Some(store.clone()), ..Default::default() };
        let catalog = ingest_video_with(&scene, &sas, duration_s, &options)
            .unwrap_or_else(|e| panic!("ingest of {video:?} failed: {e}"));
        let server = SasServer::with_store(catalog, store);
        EvrSystem {
            video,
            scene,
            server,
            sas,
            duration_s,
            observer: evr_obs::Observer::noop(),
            tiles: Mutex::new(None),
        }
    }

    /// The per-tile multi-rate catalog backing the `T`/`T+H` variants,
    /// ingesting it on first use (deterministic for any worker count, so
    /// lazy construction cannot perturb fleet parity).
    pub fn tiled_rates(&self) -> Arc<TiledRateCatalog> {
        let mut guard = self.tiles.lock().unwrap();
        if let Some(tiles) = guard.as_ref() {
            return tiles.clone();
        }
        let tiles = Arc::new(ingest_tiled_rates_with(&self.scene, &self.sas, self.duration_s, 0));
        *guard = Some(tiles.clone());
        tiles
    }

    /// Threads `observer` through the whole pipeline: the SAS server's
    /// request counters and every session built by
    /// [`EvrSystem::session_for`] from now on (per-frame spans, FOV
    /// outcomes, PTE stats, energy gauges). A no-op observer detaches
    /// everything again.
    pub fn instrument(&mut self, observer: &evr_obs::Observer) {
        self.server.set_observer(observer);
        self.observer = observer.clone();
    }

    /// The system's observer (a no-op handle unless
    /// [`EvrSystem::instrument`] was called).
    pub fn observer(&self) -> &evr_obs::Observer {
        &self.observer
    }

    /// The video this system serves.
    pub fn video(&self) -> VideoId {
        self.video
    }

    /// The SAS server (catalog access for storage metrics).
    pub fn server(&self) -> &SasServer {
        &self.server
    }

    /// The SAS configuration.
    pub fn sas_config(&self) -> &SasConfig {
        &self.sas
    }

    /// The ingested content duration, seconds.
    pub fn duration(&self) -> f64 {
        self.duration_s
    }

    /// The scene (ground truth for trace generation and analytics).
    pub fn scene(&self) -> &Scene {
        &self.scene
    }

    /// Generates the head trace of one study user.
    pub fn user_trace(&self, user: u64) -> HeadTrace {
        let seed = user ^ ((self.video as u64) << 32);
        generate_user_trace(
            &self.scene,
            &params_for(self.video),
            seed,
            self.duration_s,
            evr_sas::ingest::FPS,
        )
    }

    /// Runs one user's playback under `variant` in the online-streaming
    /// use-case.
    pub fn run_user(&self, variant: Variant, user: u64) -> PlaybackReport {
        self.run_user_in(UseCase::OnlineStreaming, variant, user)
    }

    /// Runs one user's playback under `variant` in `use_case`.
    pub fn run_user_in(&self, use_case: UseCase, variant: Variant, user: u64) -> PlaybackReport {
        self.run_with(&self.session_for(use_case, variant), user)
    }

    /// Builds the (reusable) playback session for a use-case/variant.
    /// Construction pre-analyses the PTE memory pattern, so experiment
    /// sweeps should build once and [`EvrSystem::run_with`] per user.
    pub fn session_for(&self, use_case: UseCase, variant: Variant) -> PlaybackSession {
        let session = PlaybackSession::with_observer(
            variant.session(use_case, self.sas),
            self.observer.clone(),
        );
        if variant.is_tiled() {
            session.with_tiles(self.tiled_rates())
        } else {
            session
        }
    }

    /// Runs one user through a pre-built session. The user id travels
    /// as the session's [`evr_obs::TraceCtx`], so timed runs attribute
    /// every recorded interval to this user.
    pub fn run_with(&self, session: &PlaybackSession, user: u64) -> PlaybackReport {
        session.run_traced(
            &self.server,
            &self.user_trace(user),
            evr_obs::TraceCtx::for_user(user as i64),
        )
    }

    /// Runs one user's playback under `variant` with faults injected.
    /// The setup's seed is combined with the user id so every user sees
    /// an independent (but replayable) fault stream; a clean setup is
    /// bit-identical to [`EvrSystem::run_user`].
    pub fn run_user_resilient(
        &self,
        use_case: UseCase,
        variant: Variant,
        user: u64,
        setup: &evr_faults::FaultSetup,
    ) -> PlaybackReport {
        self.run_with_resilient(&self.session_for(use_case, variant), user, setup)
    }

    /// Runs one user through a pre-built session with faults injected
    /// (per-user fault seed derived as in
    /// [`EvrSystem::run_user_resilient`]).
    pub fn run_with_resilient(
        &self,
        session: &PlaybackSession,
        user: u64,
        setup: &evr_faults::FaultSetup,
    ) -> PlaybackReport {
        let mut per_user = setup.clone();
        per_user.seed ^= user.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        session.run_resilient_traced(
            &self.server,
            &self.user_trace(user),
            &per_user,
            evr_obs::TraceCtx::for_user(user as i64),
        )
    }

    /// Derives a system whose store keeps only `utilization` of the
    /// objects' FOV videos (the Fig. 14 sweep), without re-ingesting.
    ///
    /// # Panics
    ///
    /// Panics if `utilization` exceeds the ingested utilisation.
    pub fn with_utilization(&self, utilization: f64) -> EvrSystem {
        let catalog = self.server.catalog().with_utilization(utilization);
        let mut sas = self.sas;
        sas.object_utilization = utilization;
        // Same content fingerprint, fewer indexed streams: the derived
        // server keeps serving the surviving clusters out of the shared
        // pre-render store.
        let mut server = SasServer::with_store(catalog, FovPrerenderStore::shared().clone());
        server.set_observer(&self.observer);
        EvrSystem {
            video: self.video,
            scene: self.scene.clone(),
            server,
            sas,
            duration_s: self.duration_s,
            observer: self.observer.clone(),
            tiles: Mutex::new(self.tiles.lock().unwrap().clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evr_energy::{Activity, Component};

    fn tiny_system() -> EvrSystem {
        EvrSystem::build(VideoId::Rhino, SasConfig::tiny_for_tests(), 1.0)
    }

    #[test]
    fn variants_order_energy_sensibly() {
        let sys = tiny_system();
        let base = sys.run_user(Variant::Baseline, 1);
        let h = sys.run_user(Variant::H, 1);
        let sh = sys.run_user(Variant::SPlusH, 1);
        assert!(h.ledger.total() < base.ledger.total(), "H beats baseline");
        assert!(sh.ledger.total() < base.ledger.total(), "S+H beats baseline");
        // PT energy ordering: baseline (GPU every frame) is the worst.
        let pt = |r: &evr_client::session::PlaybackReport| {
            r.ledger.activity_total(Activity::ProjectiveTransform)
        };
        assert!(pt(&h) < pt(&base));
        assert!(pt(&sh) <= pt(&h));
    }

    #[test]
    fn oracle_variants_never_miss() {
        let sys = tiny_system();
        let r = sys.run_user(Variant::PerfectHmp, 2);
        assert_eq!(r.fov_misses, 0);
        assert!(r.fov_hits > 0);
        assert_eq!(r.fallback_frames, 0);
        assert_eq!(r.ledger.activity_total(Activity::ProjectiveTransform), 0.0);
    }

    #[test]
    fn live_and_offline_only_apply_h() {
        assert_eq!(UseCase::LiveStreaming.applicable_variants(), &[Variant::H]);
        assert_eq!(UseCase::OfflinePlayback.applicable_variants(), &[Variant::H]);
        assert_eq!(UseCase::OnlineStreaming.applicable_variants().len(), 3);
    }

    #[test]
    fn offline_h_has_no_network_energy() {
        let sys = tiny_system();
        let r = sys.run_user_in(UseCase::OfflinePlayback, Variant::H, 0);
        assert_eq!(r.ledger.component_total(Component::Network), 0.0);
    }

    #[test]
    fn live_baseline_vs_h_differ_only_in_renderer() {
        let sys = tiny_system();
        let base = sys.run_user_in(UseCase::LiveStreaming, Variant::Baseline, 4);
        let h = sys.run_user_in(UseCase::LiveStreaming, Variant::H, 4);
        // Same bytes (no SAS either way), less energy with the PTE.
        assert_eq!(base.bytes_received, h.bytes_received);
        assert!(h.ledger.total() < base.ledger.total());
    }

    #[test]
    fn user_traces_are_deterministic() {
        let sys = tiny_system();
        assert_eq!(sys.user_trace(7), sys.user_trace(7));
        assert_ne!(sys.user_trace(7), sys.user_trace(8));
    }

    #[test]
    fn instrumented_system_populates_pipeline_metrics() {
        use evr_obs::names;
        let obs = evr_obs::Observer::enabled();
        let mut sys = tiny_system();
        sys.instrument(&obs);
        let r = sys.run_user(Variant::SPlusH, 3);
        assert_eq!(obs.counter(names::FOV_HITS).get(), r.fov_hits);
        assert_eq!(obs.counter(names::FOV_MISSES).get(), r.fov_misses);
        assert!(obs.counter(names::SAS_FOV_REQUESTS).get() > 0, "server saw FOV requests");
        for c in Component::ALL {
            let got = obs.gauge(&evr_obs::names::energy_gauge(&c.to_string())).get();
            assert!((got - r.ledger.component_total(c)).abs() < 1e-9, "{c:?}");
        }
        // Derived systems inherit the instrumentation.
        let derived = sys.with_utilization(sys.sas_config().object_utilization);
        assert!(derived.observer().is_enabled());
        // Detaching restores silent sessions.
        sys.instrument(&evr_obs::Observer::noop());
        let before = obs.counter(names::FRAMES).get();
        let _ = sys.run_user(Variant::SPlusH, 3);
        assert_eq!(obs.counter(names::FRAMES).get(), before);
    }

    #[test]
    fn resilient_clean_run_matches_plain_run() {
        let sys = tiny_system();
        let clean = sys.run_user(Variant::SPlusH, 5);
        let resilient = sys.run_user_resilient(
            UseCase::OnlineStreaming,
            Variant::SPlusH,
            5,
            &evr_faults::FaultSetup::none(),
        );
        assert_eq!(clean, resilient);
    }

    #[test]
    fn resilient_outage_reaches_the_report() {
        let sys = tiny_system();
        let setup = evr_faults::FaultSetup::none().with_plan(
            evr_faults::FaultPlan::none()
                .with(evr_faults::FaultEvent::ServerOutage { start_s: 0.0, duration_s: 1e6 }),
        );
        let r = sys.run_user_resilient(UseCase::OnlineStreaming, Variant::SPlusH, 5, &setup);
        assert_eq!(r.faults.frozen_frames, r.frames_total);
        assert!(r.faults.timeouts > 0);
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(Variant::SPlusH.to_string(), "S+H");
        assert_eq!(UseCase::LiveStreaming.to_string(), "live-streaming");
    }
}
