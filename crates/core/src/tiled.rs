//! The tiled view-guided streaming comparison.
//!
//! The paper's §2 argues that bandwidth-oriented view-guided schemes
//! (tiling) "do not optimize energy consumptions because they still
//! require the PT operations on VR client devices". This module runs that
//! baseline for real — tile grid, two quality layers, per-segment tile
//! selection — and compares it against the plain baseline and against
//! EVR's `S+H` on both bandwidth and device energy.

use evr_client::session::{ContentPath, PlaybackSession, Renderer, SessionConfig};
use evr_sas::tiles::{ingest_tiled, TileGrid, TiledCatalog};

use crate::system::{EvrSystem, UseCase, Variant};

/// One row of the comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct TiledComparison {
    /// Users averaged.
    pub users: u64,
    /// Baseline mean device power, watts.
    pub baseline_w: f64,
    /// Tiled-streaming mean device power, watts.
    pub tiled_w: f64,
    /// EVR `S+H` mean device power, watts.
    pub evr_w: f64,
    /// Tiling's bandwidth saving vs baseline, `[0, 1]`.
    pub tiled_bandwidth_saving: f64,
    /// EVR's bandwidth saving vs baseline.
    pub evr_bandwidth_saving: f64,
    /// Tiling's device energy saving vs baseline.
    pub tiled_device_saving: f64,
    /// EVR's device energy saving vs baseline.
    pub evr_device_saving: f64,
}

/// Ingests the tiled layers for `system`'s video and runs the three-way
/// comparison over `users` users.
///
/// # Panics
///
/// Panics if `users == 0`.
pub fn compare_tiled(system: &EvrSystem, grid: TileGrid, users: u64) -> TiledComparison {
    assert!(users > 0, "comparison needs at least one user");
    let tiled = ingest_tiled(
        system.scene(),
        system.sas_config(),
        grid,
        system.sas_config().resolved_tiled_low_quantizer(),
        system.duration(),
    );
    compare_with_catalog(system, &tiled, users)
}

/// Like [`compare_tiled`] but with a pre-ingested tiled catalog.
pub fn compare_with_catalog(
    system: &EvrSystem,
    tiled: &TiledCatalog,
    users: u64,
) -> TiledComparison {
    let baseline_session = system.session_for(UseCase::OnlineStreaming, Variant::Baseline);
    let evr_session = system.session_for(UseCase::OnlineStreaming, Variant::SPlusH);
    let tiled_session = PlaybackSession::new(SessionConfig::new(
        ContentPath::OnlineBaseline,
        Renderer::Gpu,
        *system.sas_config(),
    ));

    let mut acc = [0.0f64; 5]; // base W, tiled W, evr W, ...
    let mut base_bytes = 0.0f64;
    let mut tiled_bytes = 0.0f64;
    let mut evr_bytes = 0.0f64;
    let mut base_j = 0.0f64;
    let mut tiled_j = 0.0f64;
    let mut evr_j = 0.0f64;
    for user in 0..users {
        let trace = system.user_trace(user);
        let base = baseline_session.run(system.server(), &trace);
        let tiledr = tiled_session.run_tiled(system.server(), tiled, &trace);
        let evr = evr_session.run(system.server(), &trace);
        acc[0] += base.ledger.total_power();
        acc[1] += tiledr.ledger.total_power();
        acc[2] += evr.ledger.total_power();
        base_bytes += base.bytes_received as f64;
        tiled_bytes += tiledr.bytes_received as f64;
        evr_bytes += evr.bytes_received as f64;
        base_j += base.ledger.total();
        tiled_j += tiledr.ledger.total();
        evr_j += evr.ledger.total();
    }
    let n = users as f64;
    TiledComparison {
        users,
        baseline_w: acc[0] / n,
        tiled_w: acc[1] / n,
        evr_w: acc[2] / n,
        tiled_bandwidth_saving: 1.0 - tiled_bytes / base_bytes,
        evr_bandwidth_saving: 1.0 - evr_bytes / base_bytes,
        tiled_device_saving: 1.0 - tiled_j / base_j,
        evr_device_saving: 1.0 - evr_j / base_j,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evr_sas::SasConfig;
    use evr_video::library::VideoId;

    #[test]
    fn tiling_saves_bandwidth_but_not_much_energy() {
        let mut sas = SasConfig::tiny_for_tests();
        sas.analysis_src = (128, 64); // 16×16 tiles, 8-aligned
        let system = EvrSystem::build(VideoId::Rhino, sas, 1.0);
        let c = compare_tiled(&system, TileGrid::default(), 3);

        // The paper's argument, reproduced: tiling reduces bandwidth...
        assert!(c.tiled_bandwidth_saving > 0.05, "{c:?}");
        // ...but barely moves device energy, because PT still runs on the
        // GPU for every frame...
        assert!(c.tiled_device_saving < 0.10, "{c:?}");
        // ...while EVR actually cuts device energy.
        assert!(c.evr_device_saving > 2.0 * c.tiled_device_saving.max(0.01), "{c:?}");
    }
}
