//! Battery-life projection.
//!
//! The paper motivates EVR with device battery life ("the energy
//! reduction increases the VR viewing time") and thermals (the ~5 W draw
//! exceeds the 3.5 W mobile TDP). This module converts the energy model's
//! power numbers into the quantities a product team quotes: hours of
//! playback and the viewing-time extension a saving buys.

use serde::{Deserialize, Serialize};

/// A device battery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    /// Usable capacity in watt-hours.
    pub capacity_wh: f64,
}

impl Default for Battery {
    /// A standalone-headset-class pack (Oculus Go shipped ≈ 9.7 Wh).
    fn default() -> Self {
        Battery { capacity_wh: 9.7 }
    }
}

impl Battery {
    /// Creates a battery.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not positive.
    pub fn new(capacity_wh: f64) -> Self {
        assert!(capacity_wh > 0.0, "capacity must be positive");
        Battery { capacity_wh }
    }

    /// Continuous playback hours at `power_w` watts.
    ///
    /// # Panics
    ///
    /// Panics if `power_w` is not positive.
    ///
    /// # Example
    ///
    /// ```
    /// use evr_energy::battery::Battery;
    /// let b = Battery::new(10.0);
    /// assert!((b.playback_hours(5.0) - 2.0).abs() < 1e-12);
    /// ```
    pub fn playback_hours(&self, power_w: f64) -> f64 {
        assert!(power_w > 0.0, "power must be positive");
        self.capacity_wh / power_w
    }

    /// The fractional viewing-time extension a device-energy saving buys:
    /// a saving of `s` stretches playback by `s / (1 − s)`.
    ///
    /// # Panics
    ///
    /// Panics unless `saving` is in `[0, 1)`.
    ///
    /// # Example
    ///
    /// ```
    /// use evr_energy::battery::Battery;
    /// // The paper's average S+H saving (29%) extends viewing ~41%.
    /// let ext = Battery::viewing_time_extension(0.29);
    /// assert!((ext - 0.4085).abs() < 1e-3);
    /// ```
    pub fn viewing_time_extension(saving: f64) -> f64 {
        assert!((0.0..1.0).contains(&saving), "saving must be in [0, 1)");
        saving / (1.0 - saving)
    }

    /// Whether `power_w` exceeds a thermal design point — the paper's §3
    /// observation that baseline VR playback (~5 W) blows through a
    /// typical mobile TDP of 3.5 W.
    pub fn exceeds_tdp(power_w: f64, tdp_w: f64) -> bool {
        power_w > tdp_w
    }
}

/// The mobile TDP the paper quotes (§1/§3), watts.
pub const MOBILE_TDP_W: f64 = 3.5;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn playback_hours_scale_inversely_with_power() {
        let b = Battery::default();
        assert!(b.playback_hours(5.0) < b.playback_hours(3.5));
        // ~2 hours at the paper's baseline draw.
        assert!((b.playback_hours(4.85) - 2.0).abs() < 0.1);
    }

    #[test]
    fn extension_grows_superlinearly() {
        let small = Battery::viewing_time_extension(0.1);
        let large = Battery::viewing_time_extension(0.42);
        assert!((small - 1.0 / 9.0).abs() < 1e-9);
        assert!((large - 0.7241).abs() < 1e-3);
        assert!(large > 4.0 * small);
    }

    #[test]
    fn tdp_comparison_matches_paper_motivation() {
        assert!(Battery::exceeds_tdp(5.0, MOBILE_TDP_W));
        // The paper's average S+H saving still leaves ~3.55 W (just above
        // TDP); its best case (42%) finally dips under.
        assert!(Battery::exceeds_tdp(5.0 * (1.0 - 0.29), MOBILE_TDP_W));
        assert!(!Battery::exceeds_tdp(5.0 * (1.0 - 0.42), MOBILE_TDP_W));
        assert!(!Battery::exceeds_tdp(3.4, MOBILE_TDP_W));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = Battery::new(0.0);
    }

    #[test]
    #[should_panic(expected = "saving")]
    fn full_saving_panics() {
        let _ = Battery::viewing_time_extension(1.0);
    }
}
