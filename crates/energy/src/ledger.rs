//! The energy ledger: `(component, activity)`-tagged joule accounting.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The five device components of the paper's §3 breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Component {
    /// The (AMOLED) panel.
    Display,
    /// WiFi radio.
    Network,
    /// eMMC storage.
    Storage,
    /// DRAM.
    Memory,
    /// The SoC (CPU, GPU, codec, accelerators).
    Compute,
}

impl Component {
    /// All components, in the paper's reporting order.
    pub const ALL: [Component; 5] = [
        Component::Display,
        Component::Network,
        Component::Storage,
        Component::Memory,
        Component::Compute,
    ];
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Component::Display => "display",
            Component::Network => "network",
            Component::Storage => "storage",
            Component::Memory => "memory",
            Component::Compute => "compute",
        };
        f.write_str(s)
    }
}

/// What the energy was spent doing — the second axis of the ledger,
/// needed because Fig. 3b attributes compute/memory energy to projective
/// transformation specifically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Activity {
    /// Video decoding.
    Decode,
    /// Projective transformation (GPU or PTE) — the "VR tax".
    ProjectiveTransform,
    /// OS, player, IMU handling, FOV checking: the always-on baseline.
    Base,
    /// Panel scan-out.
    DisplayScan,
    /// Radio receive (+ idle listening).
    NetworkRx,
    /// Storage reads/writes (segment caching).
    StorageIo,
    /// On-device head-motion prediction (Fig. 16 comparison only).
    HeadMotionPrediction,
    /// Quality-metric computation (§8.6 use-case only).
    QualityAssessment,
    /// Fault handling: retry/backoff waits (radio idle + base power
    /// during stalls) and corruption-detection decodes.
    Resilience,
    /// Reconstructing a delta-encoded segment against its reference on
    /// the device (the client side of the delta wire format).
    DeltaReconstruct,
}

impl fmt::Display for Activity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Activity::Decode => "decode",
            Activity::ProjectiveTransform => "projective-transform",
            Activity::Base => "base",
            Activity::DisplayScan => "display-scan",
            Activity::NetworkRx => "network-rx",
            Activity::StorageIo => "storage-io",
            Activity::HeadMotionPrediction => "head-motion-prediction",
            Activity::QualityAssessment => "quality-assessment",
            Activity::Resilience => "resilience",
            Activity::DeltaReconstruct => "delta-reconstruct",
        };
        f.write_str(s)
    }
}

/// Joules per `(component, activity)` pair over a playback session.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyLedger {
    entries: BTreeMap<(Component, Activity), f64>,
    duration_s: f64,
}

impl EnergyLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        EnergyLedger::default()
    }

    /// Adds this ledger's per-component totals into the
    /// `evr_energy_joules_<component>` gauges of `observer` (a no-op for
    /// a no-op observer). Sessions call this once at the end of a run, so
    /// repeated runs against one observer accumulate; keeping the mirror
    /// out of [`EnergyLedger::add`] keeps per-frame accounting free of
    /// observability cost.
    pub fn mirror_gauges(&self, observer: &evr_obs::Observer) {
        if !observer.is_enabled() {
            return;
        }
        for c in Component::ALL {
            observer
                .gauge(&evr_obs::names::energy_gauge(&c.to_string()))
                .add(self.component_total(c));
        }
    }

    /// Adds `joules` under `(component, activity)`.
    ///
    /// # Panics
    ///
    /// Panics if `joules` is negative or non-finite.
    #[inline]
    pub fn add(&mut self, component: Component, activity: Activity, joules: f64) {
        assert!(joules.is_finite() && joules >= 0.0, "joules must be non-negative: {joules}");
        *self.entries.entry((component, activity)).or_insert(0.0) += joules;
    }

    /// Records the session duration (for power reporting).
    pub fn set_duration(&mut self, seconds: f64) {
        assert!(seconds > 0.0, "duration must be positive");
        self.duration_s = seconds;
    }

    /// The recorded session duration, seconds (0 if never set).
    pub fn duration(&self) -> f64 {
        self.duration_s
    }

    /// Joules for one `(component, activity)` pair.
    pub fn get(&self, component: Component, activity: Activity) -> f64 {
        self.entries.get(&(component, activity)).copied().unwrap_or(0.0)
    }

    /// Total joules for a component.
    pub fn component_total(&self, component: Component) -> f64 {
        self.entries.iter().filter(|((c, _), _)| *c == component).map(|(_, j)| j).sum()
    }

    /// Total joules for an activity across components.
    pub fn activity_total(&self, activity: Activity) -> f64 {
        self.entries.iter().filter(|((_, a), _)| *a == activity).map(|(_, j)| j).sum()
    }

    /// Grand total, joules.
    pub fn total(&self) -> f64 {
        self.entries.values().sum()
    }

    /// Average power of a component over the recorded duration, watts.
    ///
    /// # Panics
    ///
    /// Panics if the duration was never set.
    pub fn component_power(&self, component: Component) -> f64 {
        assert!(self.duration_s > 0.0, "set_duration before querying power");
        self.component_total(component) / self.duration_s
    }

    /// Average total power, watts.
    pub fn total_power(&self) -> f64 {
        assert!(self.duration_s > 0.0, "set_duration before querying power");
        self.total() / self.duration_s
    }

    /// Compute + memory joules — the denominator of Fig. 3b.
    pub fn processing_total(&self) -> f64 {
        self.component_total(Component::Compute) + self.component_total(Component::Memory)
    }

    /// The share of compute+memory energy spent on projective
    /// transformation — Fig. 3b's headline ~40%.
    pub fn pt_share_of_processing(&self) -> f64 {
        let pt = self
            .entries
            .iter()
            .filter(|((c, a), _)| {
                matches!(c, Component::Compute | Component::Memory)
                    && *a == Activity::ProjectiveTransform
            })
            .map(|(_, j)| j)
            .sum::<f64>();
        let denom = self.processing_total();
        if denom == 0.0 {
            0.0
        } else {
            pt / denom
        }
    }

    /// Fractional energy saving of `self` relative to `baseline`, over
    /// the SoC (compute) energy only — the left axis of Figs. 12/15.
    pub fn compute_saving_vs(&self, baseline: &EnergyLedger) -> f64 {
        saving(
            baseline.component_total(Component::Compute),
            self.component_total(Component::Compute),
        )
    }

    /// Fractional device-level energy saving relative to `baseline` — the
    /// right axis of Figs. 12/15.
    pub fn device_saving_vs(&self, baseline: &EnergyLedger) -> f64 {
        saving(baseline.total(), self.total())
    }

    /// Merges another ledger into this one (summing entries; duration is
    /// kept from `self`).
    pub fn merge(&mut self, other: &EnergyLedger) {
        for (&(c, a), &j) in &other.entries {
            *self.entries.entry((c, a)).or_insert(0.0) += j;
        }
    }
}

fn saving(baseline: f64, ours: f64) -> f64 {
    if baseline <= 0.0 {
        0.0
    } else {
        (baseline - ours) / baseline
    }
}

impl fmt::Display for EnergyLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "energy ledger ({:.1} s):", self.duration_s)?;
        for c in Component::ALL {
            let j = self.component_total(c);
            if j > 0.0 {
                if self.duration_s > 0.0 {
                    writeln!(f, "  {c:8} {j:10.3} J ({:.3} W)", j / self.duration_s)?;
                } else {
                    writeln!(f, "  {c:8} {j:10.3} J")?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_ledger() -> EnergyLedger {
        let mut l = EnergyLedger::new();
        l.set_duration(10.0);
        l.add(Component::Compute, Activity::Decode, 10.0);
        l.add(Component::Compute, Activity::ProjectiveTransform, 13.0);
        l.add(Component::Compute, Activity::Base, 8.0);
        l.add(Component::Memory, Activity::Decode, 5.0);
        l.add(Component::Memory, Activity::ProjectiveTransform, 3.0);
        l.add(Component::Memory, Activity::Base, 2.5);
        l.add(Component::Display, Activity::DisplayScan, 3.5);
        l.add(Component::Network, Activity::NetworkRx, 4.5);
        l.add(Component::Storage, Activity::StorageIo, 2.0);
        l
    }

    #[test]
    fn totals_and_powers() {
        let l = sample_ledger();
        assert!((l.total() - 51.5).abs() < 1e-12);
        assert!((l.total_power() - 5.15).abs() < 1e-12);
        assert!((l.component_power(Component::Compute) - 3.1).abs() < 1e-12);
    }

    #[test]
    fn pt_share_matches_hand_calculation() {
        let l = sample_ledger();
        // (13 + 3) / (31 + 10.5)
        assert!((l.pt_share_of_processing() - 16.0 / 41.5).abs() < 1e-12);
    }

    #[test]
    fn savings_are_relative() {
        let base = sample_ledger();
        let mut opt = sample_ledger();
        // Remove all PT energy.
        opt = EnergyLedger {
            entries: opt
                .entries
                .iter()
                .filter(|((_, a), _)| *a != Activity::ProjectiveTransform)
                .map(|(&k, &v)| (k, v))
                .collect(),
            duration_s: opt.duration_s,
        };
        let cs = opt.compute_saving_vs(&base);
        assert!((cs - 13.0 / 31.0).abs() < 1e-12);
        let ds = opt.device_saving_vs(&base);
        assert!((ds - 16.0 / 51.5).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_entries() {
        let mut a = sample_ledger();
        let b = sample_ledger();
        a.merge(&b);
        assert!((a.total() - 103.0).abs() < 1e-12);
        assert_eq!(a.duration(), 10.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_energy_panics() {
        let mut l = EnergyLedger::new();
        l.add(Component::Compute, Activity::Base, -1.0);
    }

    #[test]
    #[should_panic(expected = "set_duration")]
    fn power_without_duration_panics() {
        let l = EnergyLedger::new();
        let _ = l.total_power();
    }

    #[test]
    fn display_format_lists_components() {
        let s = sample_ledger().to_string();
        assert!(s.contains("compute") && s.contains("display") && s.contains("W"));
    }

    #[test]
    fn observer_gauges_mirror_component_totals() {
        let obs = evr_obs::Observer::enabled();
        let mut l = EnergyLedger::new();
        l.add(Component::Compute, Activity::Decode, 1.25);
        l.add(Component::Compute, Activity::Base, 0.5);
        l.add(Component::Display, Activity::DisplayScan, 2.0);
        l.merge(&sample_ledger());
        l.mirror_gauges(&obs);
        for c in Component::ALL {
            let gauge = obs.gauge(&evr_obs::names::energy_gauge(&c.to_string()));
            assert!(
                (gauge.get() - l.component_total(c)).abs() < 1e-12,
                "{c}: gauge {} vs ledger {}",
                gauge.get(),
                l.component_total(c)
            );
        }
    }

    #[test]
    fn mirror_gauges_accumulates_across_runs() {
        let obs = evr_obs::Observer::enabled();
        let l = sample_ledger();
        l.mirror_gauges(&obs);
        l.mirror_gauges(&obs);
        let compute = obs.gauge(&evr_obs::names::energy_gauge("compute"));
        assert!((compute.get() - 2.0 * l.component_total(Component::Compute)).abs() < 1e-12);
    }

    #[test]
    fn mirror_gauges_on_noop_observer_registers_nothing() {
        let obs = evr_obs::Observer::noop();
        sample_ledger().mirror_gauges(&obs);
        assert!(obs.metrics().is_empty());
    }

    proptest! {
        #[test]
        fn prop_total_equals_sum_of_components(vals in proptest::collection::vec(0.0f64..100.0, 5)) {
            let mut l = EnergyLedger::new();
            for (c, v) in Component::ALL.iter().zip(&vals) {
                l.add(*c, Activity::Base, *v);
            }
            let sum: f64 = Component::ALL.iter().map(|c| l.component_total(*c)).sum();
            prop_assert!((l.total() - sum).abs() < 1e-9);
        }
    }
}
