//! The five-component VR-device energy model.
//!
//! The paper's §3 characterisation splits device power into **display,
//! network, storage, memory and compute**, measured on a Jetson TX2 rig:
//! ~5 W total while rendering VR video (vs a 3.5 W mobile TDP), with
//! display/network/storage contributing only ~7%/9%/4% and the rest going
//! to compute (SoC) and memory (DRAM); projective transformation alone is
//! ~40% of compute+memory energy (Fig. 3).
//!
//! This crate provides:
//!
//! * [`params`] — component power/energy constants calibrated to that
//!   breakdown (each constant documents the paper figure it is fitted
//!   to);
//! * [`ledger`] — an energy ledger that experiment drivers fill with
//!   `(component, activity)`-tagged joules and query for the breakdowns
//!   behind Figures 3, 12, 15 and 16.
//!
//! # Example
//!
//! ```
//! use evr_energy::{Activity, Component, EnergyLedger};
//!
//! let mut ledger = EnergyLedger::new();
//! ledger.add(Component::Compute, Activity::ProjectiveTransform, 1.5);
//! ledger.add(Component::Compute, Activity::Decode, 1.0);
//! ledger.add(Component::Display, Activity::DisplayScan, 0.5);
//! assert_eq!(ledger.component_total(Component::Compute), 2.5);
//! assert_eq!(ledger.total(), 3.0);
//! ```

pub mod battery;
pub mod ledger;
pub mod params;

pub use battery::Battery;
pub use ledger::{Activity, Component, EnergyLedger};
pub use params::DeviceParams;
