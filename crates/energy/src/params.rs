//! Device energy parameters, calibrated to the paper's §3 measurements.
//!
//! Every constant documents the paper quantity it is fitted against. The
//! reference operating point is the paper's baseline: streaming a 4K
//! (3840×2160) 360° video at 30 FPS to a 2560×1440 HMD panel, ~5 W device
//! power, component split per Fig. 3a, PT ≈ 40% of compute+memory energy
//! per Fig. 3b.

use serde::{Deserialize, Serialize};

/// Calibrated power/energy constants of the modelled VR device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceParams {
    /// AMOLED panel power, watts (Fig. 3a: display ≈ 7% of ~5 W).
    pub display_power_w: f64,
    /// WiFi idle/listen power, watts.
    pub radio_idle_w: f64,
    /// WiFi receive energy per byte, joules (with idle, network ≈ 9%).
    pub radio_rx_j_per_byte: f64,
    /// eMMC idle power, watts.
    pub storage_idle_w: f64,
    /// eMMC transfer energy per byte, joules (storage ≈ 4%, temporary
    /// segment caching).
    pub storage_j_per_byte: f64,
    /// DRAM dynamic energy per byte moved (LPDDR4 incl. controller).
    pub dram_j_per_byte: f64,
    /// DRAM static power (refresh + standby), watts.
    pub dram_static_w: f64,
    /// Hardware video decoder energy per decoded pixel, joules.
    pub decode_j_per_pixel: f64,
    /// Entropy-decode energy per bitstream byte, joules.
    pub decode_j_per_byte: f64,
    /// CPU baseline (player, OS, IMU handling), watts.
    pub cpu_base_w: f64,
    /// Added CPU power for SAS client control, watts, while SAS streaming
    /// is active: per-frame FOV checking against the metadata log (§5.4),
    /// stream selection and request handling at segment boundaries, and a
    /// second warm decoder context — the adaptive-streaming tax that
    /// keeps the paper's measured `S` savings well below the raw PT
    /// share.
    pub sas_client_w: f64,
    /// Panel scan-out resolution for display-path DRAM traffic, pixels.
    pub panel_pixels: u64,
    /// Panel refresh rate, Hz.
    pub panel_refresh_hz: f64,
}

impl Default for DeviceParams {
    fn default() -> Self {
        DeviceParams {
            display_power_w: 0.35,
            radio_idle_w: 0.25,
            radio_rx_j_per_byte: 55e-9,
            storage_idle_w: 0.12,
            storage_j_per_byte: 25e-9,
            dram_j_per_byte: 130e-12,
            dram_static_w: 0.45,
            decode_j_per_pixel: 0.85e-9,
            decode_j_per_byte: 65e-9,
            cpu_base_w: 1.0,
            sas_client_w: 0.22,
            panel_pixels: 2560 * 1440,
            panel_refresh_hz: 60.0,
        }
    }
}

impl DeviceParams {
    /// Display energy over `dt` seconds.
    #[inline]
    pub fn display_energy(&self, dt: f64) -> f64 {
        self.display_power_w * dt
    }

    /// Network energy for receiving `bytes` over `dt` seconds of radio-on
    /// time.
    #[inline]
    pub fn network_energy(&self, bytes: u64, dt: f64) -> f64 {
        self.radio_idle_w * dt + bytes as f64 * self.radio_rx_j_per_byte
    }

    /// Storage energy for `bytes` of I/O over `dt` seconds.
    #[inline]
    pub fn storage_energy(&self, bytes: u64, dt: f64) -> f64 {
        self.storage_idle_w * dt + bytes as f64 * self.storage_j_per_byte
    }

    /// Dynamic DRAM energy for `bytes` moved.
    #[inline]
    pub fn dram_energy(&self, bytes: u64) -> f64 {
        bytes as f64 * self.dram_j_per_byte
    }

    /// Static DRAM energy over `dt` seconds.
    #[inline]
    pub fn dram_static_energy(&self, dt: f64) -> f64 {
        self.dram_static_w * dt
    }

    /// SoC energy to decode one frame of `pixels` pixels from `bytes` of
    /// bitstream.
    #[inline]
    pub fn decode_energy(&self, pixels: u64, bytes: u64) -> f64 {
        pixels as f64 * self.decode_j_per_pixel + bytes as f64 * self.decode_j_per_byte
    }

    /// DRAM bytes a hardware decoder moves per decoded frame: reference
    /// read + reconstruction write at 4:2:0 (1.5 B/px each) plus the RGB
    /// output surface (3 B/px).
    #[inline]
    pub fn decode_dram_bytes(&self, pixels: u64) -> u64 {
        pixels * 6
    }

    /// DRAM bytes the display pipeline scans out over `dt` seconds
    /// (RGB panel surface at the refresh rate).
    #[inline]
    pub fn display_dram_bytes(&self, dt: f64) -> u64 {
        (self.panel_pixels as f64 * 3.0 * self.panel_refresh_hz * dt) as u64
    }

    /// CPU baseline energy over `dt` seconds.
    #[inline]
    pub fn base_energy(&self, dt: f64) -> f64 {
        self.cpu_base_w * dt
    }

    /// SAS client-control energy over `dt` seconds of SAS playback.
    #[inline]
    pub fn sas_client_energy(&self, dt: f64) -> f64 {
        self.sas_client_w * dt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The calibration check: replaying the paper's baseline operating
    /// point through the parameters must land near the Fig. 3a breakdown.
    #[test]
    fn baseline_operating_point_matches_figure_3a() {
        let p = DeviceParams::default();
        let dt = 1.0; // one second of playback
        let fps = 30.0;
        let src_pixels = 3840u64 * 2160;
        let bitrate_bytes = 3_200_000u64; // ≈ 25.6 Mbps 4K stream

        let display = p.display_energy(dt);
        let network = p.network_energy(bitrate_bytes, dt);
        let storage = p.storage_energy(bitrate_bytes, dt);

        let decode_c = p.decode_energy(src_pixels, bitrate_bytes / 30) * fps;
        let gpu_pt = 1.31; // evr-pte GpuModel::average_power at 1440p/30
        let base = p.base_energy(dt);
        let compute = decode_c + gpu_pt + base;

        let decode_m = p.dram_energy(p.decode_dram_bytes(src_pixels)) * fps;
        let display_m = p.dram_energy(p.display_dram_bytes(dt));
        let pt_m = p.dram_energy((2560 * 1440) as u64 * 7) * fps;
        let memory = decode_m + display_m + pt_m + p.dram_static_energy(dt);

        let total = display + network + storage + compute + memory;
        assert!((4.2..5.6).contains(&total), "total {total:.2} W");
        // Component shares of Fig. 3a: display ~7%, network ~9%, storage ~4%.
        assert!((0.04..0.10).contains(&(display / total)), "display {:.3}", display / total);
        assert!((0.06..0.12).contains(&(network / total)), "network {:.3}", network / total);
        assert!((0.02..0.06).contains(&(storage / total)), "storage {:.3}", storage / total);
        // Fig. 3b: PT ≈ 40% of compute+memory.
        let pt_share = (gpu_pt + pt_m) / (compute + memory);
        assert!((0.30..0.50).contains(&pt_share), "PT share {pt_share:.3}");
    }

    #[test]
    fn network_energy_scales_with_bytes() {
        let p = DeviceParams::default();
        let small = p.network_energy(1_000_000, 1.0);
        let large = p.network_energy(4_000_000, 1.0);
        assert!(large > small);
        assert!(large - small > 0.1);
    }

    #[test]
    fn decode_energy_scales_with_resolution_and_bitrate() {
        let p = DeviceParams::default();
        let fov = p.decode_energy(2_073_600, 50_000); // 1080p-class FOV video
        let full = p.decode_energy(8_294_400, 110_000); // 4K original
        assert!(full > 2.5 * fov, "full {full} fov {fov}");
        // Bitrate matters: the same pixels with a denser bitstream cost more.
        assert!(p.decode_energy(8_294_400, 300_000) > full);
    }

    #[test]
    fn dram_traffic_helpers_are_consistent() {
        let p = DeviceParams::default();
        assert_eq!(p.decode_dram_bytes(100), 600);
        let one_frame_scan = p.display_dram_bytes(1.0 / p.panel_refresh_hz);
        assert_eq!(one_frame_scan, p.panel_pixels * 3);
    }
}
