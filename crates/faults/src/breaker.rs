//! Per-shard circuit breaker for the serving front.
//!
//! The classic three-state machine — closed → open → half-open — but
//! driven entirely by *simulated* time and a seed, so a chaos run
//! replays the exact same trip/probe/recovery sequence under the same
//! seed. Wall clocks and thread interleavings never enter the state
//! transitions; see DESIGN.md §14 for the determinism argument.

use serde::{Deserialize, Serialize};

/// Tuning for one [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BreakerPolicy {
    /// Consecutive failures that trip a closed breaker open.
    pub failure_threshold: u32,
    /// How long an open breaker rejects before allowing a half-open
    /// probe, seconds of simulated time.
    pub cooldown_s: f64,
    /// Fraction in `[0, 1]` of extra, seed-deterministic cooldown added
    /// per trip (de-synchronises probe storms across shards/users).
    pub cooldown_jitter: f64,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy { failure_threshold: 3, cooldown_s: 1.0, cooldown_jitter: 0.25 }
    }
}

impl BreakerPolicy {
    /// Validates the policy's fields.
    ///
    /// # Panics
    ///
    /// Panics if the threshold is zero, the cooldown is non-finite or
    /// negative, or the jitter fraction leaves `[0, 1]`.
    pub fn validate(&self) {
        assert!(self.failure_threshold > 0, "failure_threshold must be positive");
        assert!(
            self.cooldown_s.is_finite() && self.cooldown_s >= 0.0,
            "cooldown_s must be finite and non-negative"
        );
        assert!((0.0..=1.0).contains(&self.cooldown_jitter), "cooldown_jitter must be in [0, 1]");
    }
}

/// Observable state of a breaker.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Healthy: requests flow, consecutive failures are counted.
    Closed,
    /// Tripped: requests are rejected until `until_s`.
    Open {
        /// Simulated time at which the breaker admits a probe.
        until_s: f64,
    },
    /// One probe has been admitted; its outcome closes or re-opens.
    HalfOpen,
}

/// Deterministic circuit breaker; one per shard (server side) or per
/// `(user, shard)` (client side).
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitBreaker {
    policy: BreakerPolicy,
    seed: u64,
    state: BreakerState,
    consecutive_failures: u32,
    /// Trips so far — the jitter counter, so every reopening draws a
    /// fresh (but replayable) cooldown.
    trips: u64,
}

impl CircuitBreaker {
    /// Builds a closed breaker.
    ///
    /// # Panics
    ///
    /// Panics if the policy fails validation.
    pub fn new(policy: BreakerPolicy, seed: u64) -> Self {
        policy.validate();
        CircuitBreaker {
            policy,
            seed,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            trips: 0,
        }
    }

    /// The current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Trips recorded so far.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Whether a request at simulated time `t` may proceed. An open
    /// breaker whose cooldown has elapsed transitions to half-open and
    /// admits exactly this caller as the probe.
    pub fn allow(&mut self, t: f64) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open { until_s } => {
                if t >= until_s {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a successful (served or shed — the shard answered)
    /// request: closes the breaker and clears the failure streak.
    pub fn on_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
    }

    /// Records a failed request at simulated time `t`. A half-open
    /// probe failure re-opens immediately; a closed breaker opens once
    /// the streak reaches the threshold.
    pub fn on_failure(&mut self, t: f64) {
        match self.state {
            BreakerState::HalfOpen => self.trip(t),
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.policy.failure_threshold {
                    self.trip(t);
                }
            }
            // Failures reported while open (e.g. from requests admitted
            // before the trip) don't extend the cooldown.
            BreakerState::Open { .. } => {}
        }
    }

    fn trip(&mut self, t: f64) {
        self.trips += 1;
        let cooldown = self.policy.cooldown_s * (1.0 + self.policy.cooldown_jitter * self.unit());
        self.state = BreakerState::Open { until_s: t + cooldown };
        self.consecutive_failures = 0;
    }

    /// Seed-deterministic uniform-ish draw in `[0, 1)` keyed on
    /// `(seed, trips)` — FNV-1a over the two words, same recipe as the
    /// store's content fingerprint.
    fn unit(&self) -> f64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for word in [self.seed, self.trips] {
            for byte in word.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        (h >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(
            BreakerPolicy { failure_threshold: 3, cooldown_s: 1.0, cooldown_jitter: 0.0 },
            7,
        )
    }

    #[test]
    fn trips_after_threshold_and_recovers_through_half_open() {
        let mut b = breaker();
        assert!(b.allow(0.0));
        b.on_failure(0.0);
        b.on_failure(0.1);
        assert_eq!(b.state(), BreakerState::Closed);
        b.on_failure(0.2);
        assert_eq!(b.state(), BreakerState::Open { until_s: 1.2 });
        assert!(!b.allow(0.5));
        // Cooldown elapsed: exactly one probe goes through.
        assert!(b.allow(1.3));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn failed_probe_reopens_immediately() {
        let mut b = breaker();
        for _ in 0..3 {
            b.on_failure(0.0);
        }
        assert!(b.allow(2.0));
        b.on_failure(2.0);
        assert_eq!(b.state(), BreakerState::Open { until_s: 3.0 });
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn success_clears_the_failure_streak() {
        let mut b = breaker();
        b.on_failure(0.0);
        b.on_failure(0.1);
        b.on_success();
        b.on_failure(0.2);
        b.on_failure(0.3);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn cooldown_jitter_replays_per_seed_and_stays_bounded() {
        let opens = |seed| {
            let mut b = CircuitBreaker::new(
                BreakerPolicy { failure_threshold: 1, cooldown_s: 1.0, cooldown_jitter: 0.5 },
                seed,
            );
            (0..8)
                .map(|i| {
                    b.on_failure(i as f64 * 10.0);
                    let BreakerState::Open { until_s } = b.state() else { panic!("not open") };
                    assert!(b.allow(until_s)); // re-arm via the probe
                    b.on_success();
                    // breaker closed again; next loop failure re-trips
                    until_s - i as f64 * 10.0
                })
                .collect::<Vec<_>>()
        };
        for w in opens(3) {
            assert!((1.0..=1.5).contains(&w), "cooldown {w} outside the jitter window");
        }
        assert_eq!(opens(3), opens(3));
        assert_ne!(opens(3), opens(4));
    }
}
