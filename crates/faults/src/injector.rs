//! The per-run fault injector: one stateful object combining the plan,
//! the link sampler and the backoff jitter stream.

use std::collections::HashSet;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::breaker::CircuitBreaker;
use crate::link::{LinkProcess, LinkSampler, LinkState};
use crate::plan::FaultPlan;
use crate::retry::RetryPolicy;
use crate::server::ServerFaultPlan;

/// Everything a resilient playback run needs to know about failure:
/// the scheduled fault plan, the (optional) time-varying link, the
/// retry policy and the master seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSetup {
    /// Scheduled discrete failures.
    pub plan: FaultPlan,
    /// Time-varying link; `None` keeps the session's static
    /// `NetworkModel` (the paper's clean 300 Mbps WiFi).
    pub link: Option<LinkProcess>,
    /// Server-side serving-front model; `None` keeps the always-up,
    /// infinitely-provisioned server the paper assumes.
    pub server: Option<ServerFaultPlan>,
    /// Timeout/retry/backoff policy.
    pub retry: RetryPolicy,
    /// Wire-byte fraction of the degraded (lower-rung) original stream
    /// relative to the full-quality original, in `(0, 1]`.
    pub low_rung_scale: f64,
    /// Master seed for the link chain and backoff jitter.
    pub seed: u64,
}

impl FaultSetup {
    /// The clean setup: empty plan, static link. A run under this setup
    /// is bit-identical to the non-resilient playback path.
    pub fn none() -> Self {
        FaultSetup {
            plan: FaultPlan::none(),
            link: None,
            server: None,
            retry: RetryPolicy::default(),
            low_rung_scale: 0.4,
            seed: 0,
        }
    }

    /// The clean setup under a different seed (still clean: the seed
    /// only matters once a plan or link process is attached).
    pub fn seeded(seed: u64) -> Self {
        FaultSetup { seed, ..FaultSetup::none() }
    }

    /// Attaches a fault plan (builder style).
    pub fn with_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Attaches a time-varying link (builder style).
    pub fn with_link(mut self, link: LinkProcess) -> Self {
        self.link = Some(link);
        self
    }

    /// Attaches a server-side serving-front model (builder style).
    pub fn with_server(mut self, server: ServerFaultPlan) -> Self {
        self.server = Some(server);
        self
    }

    /// Whether this setup can inject anything at all. Clean setups take
    /// the unmodified fast path in the playback session.
    pub fn is_clean(&self) -> bool {
        self.plan.is_empty() && self.link.is_none() && self.server.is_none()
    }

    /// Validates every sub-config.
    ///
    /// # Panics
    ///
    /// Panics if the retry policy, the low-rung scale or the server
    /// plan is out of range.
    pub fn validate(&self) {
        self.retry.validate();
        assert!(
            self.low_rung_scale > 0.0 && self.low_rung_scale <= 1.0,
            "low_rung_scale must be in (0, 1]"
        );
        if let Some(server) = &self.server {
            server.profile().validate();
        }
    }
}

/// What happened to one request on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestFate {
    /// The request reached the server and the response came back.
    Delivered,
    /// The request (or its response) was silently dropped.
    Dropped,
    /// The server is inside an outage window.
    Outage,
}

/// The serving front's answer to one FOV request, as seen by a client.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FrontGate {
    /// Admitted; `queue_delay_s` is the simulated excess wait beyond
    /// the healthy service time (zero on an unloaded, healthy shard).
    Serve {
        /// Simulated queueing delay the client stalls for, seconds.
        queue_delay_s: f64,
    },
    /// The front shed the request and answered with the low-rung
    /// original instead — one more ladder rung, not a failure.
    Shed {
        /// Simulated latency of the (cheap) shed response, seconds.
        latency_s: f64,
    },
    /// Shard outage or open circuit breaker: no FOV response at all.
    Unavailable {
        /// Simulated time burnt learning the shard is down, seconds
        /// (zero when the local breaker fails fast).
        latency_s: f64,
    },
}

/// Stateful per-run injector; create one per playback run via
/// [`FaultInjector::new`]. All randomness is a pure function of the
/// setup's seed.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    sampler: Option<LinkSampler>,
    server: Option<ServerFaultPlan>,
    server_breakers: Vec<CircuitBreaker>,
    retry: RetryPolicy,
    low_rung_scale: f64,
    backoff_rng: SmallRng,
    consumed_drops: HashSet<u32>,
    clean: bool,
}

impl FaultInjector {
    /// Builds the injector for one run.
    ///
    /// # Panics
    ///
    /// Panics if the setup fails validation.
    pub fn new(setup: &FaultSetup) -> Self {
        setup.validate();
        let server_breakers = setup
            .server
            .as_ref()
            .map(|s| {
                (0..s.profile().shards)
                    .map(|shard| {
                        CircuitBreaker::new(
                            s.profile().breaker,
                            setup.seed ^ u64::from(shard).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                        )
                    })
                    .collect()
            })
            .unwrap_or_default();
        FaultInjector {
            plan: setup.plan.clone(),
            sampler: setup.link.as_ref().map(|l| l.sampler(setup.seed)),
            server: setup.server.clone(),
            server_breakers,
            retry: setup.retry,
            low_rung_scale: setup.low_rung_scale,
            backoff_rng: SmallRng::seed_from_u64(setup.seed ^ 0x6261_636b_6f66_665f), // "backoff_"
            consumed_drops: HashSet::new(),
            clean: setup.is_clean(),
        }
    }

    /// Whether nothing will ever be injected (clean fast path).
    pub fn is_clean(&self) -> bool {
        self.clean
    }

    /// The retry policy.
    pub fn retry(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Wire-byte fraction of the degraded rung.
    pub fn low_rung_scale(&self) -> f64 {
        self.low_rung_scale
    }

    /// Samples the link for the segment starting at `t`; `None` means
    /// the session's static model applies.
    pub fn link_for(&mut self, t: f64) -> Option<LinkState> {
        self.sampler.as_mut().map(|s| s.sample(t))
    }

    /// Resolves the fate of a request for `segment` issued at time `t`.
    /// A scheduled [`crate::FaultEvent::RequestDrop`] fires once; the
    /// retry goes through (unless something else fails it).
    pub fn request_fate(&mut self, t: f64, segment: u32) -> RequestFate {
        if self.plan.server_down_at(t) {
            return RequestFate::Outage;
        }
        if self.plan.drops_request(segment) && self.consumed_drops.insert(segment) {
            return RequestFate::Dropped;
        }
        RequestFate::Delivered
    }

    /// Whether `segment`'s FOV video arrives corrupt.
    pub fn corrupts(&self, segment: u32) -> bool {
        self.plan.corrupts(segment)
    }

    /// Scheduled extra delivery delay for `segment`, seconds.
    pub fn late_delay(&self, segment: u32) -> f64 {
        self.plan.late_delay(segment)
    }

    /// The jittered backoff wait before re-attempt `attempt` (0-based).
    pub fn backoff_s(&mut self, attempt: u32) -> f64 {
        self.retry.backoff_s(attempt, &mut self.backoff_rng)
    }

    /// The attached server-side plan, if any.
    pub fn server_plan(&self) -> Option<&ServerFaultPlan> {
        self.server.as_ref()
    }

    /// Consults the serving-front model for segment `segment` of
    /// content `content` at simulated time `t`. Tracks a local
    /// per-shard circuit breaker (one per `(user, shard)`, seeded from
    /// the setup), so a run is a pure function of the setup — fleet
    /// workers never share gate state and reports stay byte-identical
    /// for any worker count.
    pub fn front_gate(&mut self, t: f64, content: u64, segment: u32) -> FrontGate {
        let Some(server) = &self.server else {
            return FrontGate::Serve { queue_delay_s: 0.0 };
        };
        let profile = *server.profile();
        let shard = profile.shard_of(content, segment);
        let breaker = &mut self.server_breakers[shard as usize];
        if !breaker.allow(t) {
            // Breaker open: fail fast, no wire round-trip.
            return FrontGate::Unavailable { latency_s: 0.0 };
        }
        if server.shard_down_at(shard, t) {
            breaker.on_failure(t);
            // The client burns a service time learning the shard is
            // down (connection attempt / error response).
            return FrontGate::Unavailable { latency_s: profile.service_time_s };
        }
        // Excess wait beyond the healthy service time — the healthy
        // part is already inside the session's RTT/wire model.
        let queue_delay_s = server.service_time_at(shard, t) - profile.service_time_s;
        if queue_delay_s > profile.shed_latency_s {
            // The front sheds rather than queue unboundedly; the shard
            // answered, so the breaker sees a success.
            breaker.on_success();
            return FrontGate::Shed { latency_s: profile.service_time_s };
        }
        breaker.on_success();
        FrontGate::Serve { queue_delay_s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultEvent;

    #[test]
    fn clean_setup_is_clean_and_delivers_everything() {
        let mut inj = FaultInjector::new(&FaultSetup::none());
        assert!(inj.is_clean());
        assert!(inj.link_for(0.0).is_none());
        for seg in 0..16 {
            assert_eq!(inj.request_fate(seg as f64, seg), RequestFate::Delivered);
            assert!(!inj.corrupts(seg));
        }
    }

    #[test]
    fn request_drop_fires_exactly_once() {
        let setup = FaultSetup::none()
            .with_plan(FaultPlan::none().with(FaultEvent::RequestDrop { segment: 3 }));
        let mut inj = FaultInjector::new(&setup);
        assert_eq!(inj.request_fate(1.0, 3), RequestFate::Dropped);
        assert_eq!(inj.request_fate(1.1, 3), RequestFate::Delivered);
        assert_eq!(inj.request_fate(0.0, 2), RequestFate::Delivered);
    }

    #[test]
    fn outage_beats_everything_while_it_lasts() {
        let setup = FaultSetup::none().with_plan(
            FaultPlan::none()
                .with(FaultEvent::ServerOutage { start_s: 2.0, duration_s: 1.0 })
                .with(FaultEvent::RequestDrop { segment: 5 }),
        );
        let mut inj = FaultInjector::new(&setup);
        assert_eq!(inj.request_fate(2.5, 5), RequestFate::Outage);
        // After the window, the one-shot drop still fires.
        assert_eq!(inj.request_fate(3.5, 5), RequestFate::Dropped);
        assert_eq!(inj.request_fate(3.6, 5), RequestFate::Delivered);
    }

    #[test]
    fn backoff_stream_replays_per_seed() {
        let draws = |seed| {
            let mut inj = FaultInjector::new(&FaultSetup::seeded(seed));
            (0..8).map(|a| inj.backoff_s(a)).collect::<Vec<_>>()
        };
        assert_eq!(draws(11), draws(11));
        assert_ne!(draws(11), draws(12));
    }

    #[test]
    #[should_panic(expected = "low_rung_scale")]
    fn zero_low_rung_scale_is_rejected() {
        let setup = FaultSetup { low_rung_scale: 0.0, ..FaultSetup::none() };
        let _ = FaultInjector::new(&setup);
    }

    #[test]
    fn server_plan_makes_the_setup_unclean() {
        let setup = FaultSetup::none().with_server(ServerFaultPlan::healthy());
        assert!(!setup.is_clean());
        // ...but a healthy front gate still serves everything with no
        // queueing delay.
        let mut inj = FaultInjector::new(&setup);
        for seg in 0..32 {
            assert_eq!(
                inj.front_gate(seg as f64, 0xfeed, seg),
                FrontGate::Serve { queue_delay_s: 0.0 }
            );
        }
    }

    #[test]
    fn no_server_plan_always_serves() {
        let mut inj = FaultInjector::new(&FaultSetup::none());
        assert_eq!(inj.front_gate(1.0, 1, 1), FrontGate::Serve { queue_delay_s: 0.0 });
    }

    #[test]
    fn outage_trips_the_local_breaker_then_fails_fast() {
        use crate::server::{FrontProfile, ServerFaultEvent};
        let profile = FrontProfile { shards: 1, ..FrontProfile::default() };
        let plan = ServerFaultPlan::new(profile, Vec::new()).with(ServerFaultEvent::ShardOutage {
            shard: 0,
            start_s: 0.0,
            duration_s: 10.0,
        });
        let mut inj = FaultInjector::new(&FaultSetup::seeded(5).with_server(plan));
        let threshold = profile.breaker.failure_threshold;
        // First `threshold` requests pay the round-trip; then the
        // breaker opens and the rest fail fast.
        for i in 0..threshold {
            assert_eq!(
                inj.front_gate(0.001 * f64::from(i), 0, i),
                FrontGate::Unavailable { latency_s: profile.service_time_s },
                "request {i} should reach the dead shard"
            );
        }
        assert_eq!(
            inj.front_gate(0.1, 0, 99),
            FrontGate::Unavailable { latency_s: 0.0 },
            "open breaker must fail fast"
        );
        // After the outage and cooldown, a probe closes it again.
        assert_eq!(inj.front_gate(20.0, 0, 100), FrontGate::Serve { queue_delay_s: 0.0 });
    }

    #[test]
    fn slow_shard_sheds_past_the_latency_budget() {
        use crate::server::{FrontProfile, ServerFaultEvent};
        let profile = FrontProfile { shards: 1, ..FrontProfile::default() };
        let plan = ServerFaultPlan::new(profile, Vec::new()).with(ServerFaultEvent::SlowShard {
            shard: 0,
            latency_scale: 100.0,
            start_s: 1.0,
            duration_s: 1.0,
        });
        let mut inj = FaultInjector::new(&FaultSetup::seeded(5).with_server(plan));
        assert_eq!(inj.front_gate(0.5, 0, 1), FrontGate::Serve { queue_delay_s: 0.0 });
        // 100× the 2 ms service time = 198 ms of queueing, past the
        // 20 ms budget: shed.
        assert_eq!(
            inj.front_gate(1.5, 0, 2),
            FrontGate::Shed { latency_s: profile.service_time_s }
        );
        assert_eq!(inj.front_gate(2.5, 0, 3), FrontGate::Serve { queue_delay_s: 0.0 });
    }
}
