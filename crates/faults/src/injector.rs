//! The per-run fault injector: one stateful object combining the plan,
//! the link sampler and the backoff jitter stream.

use std::collections::HashSet;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::link::{LinkProcess, LinkSampler, LinkState};
use crate::plan::FaultPlan;
use crate::retry::RetryPolicy;

/// Everything a resilient playback run needs to know about failure:
/// the scheduled fault plan, the (optional) time-varying link, the
/// retry policy and the master seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSetup {
    /// Scheduled discrete failures.
    pub plan: FaultPlan,
    /// Time-varying link; `None` keeps the session's static
    /// `NetworkModel` (the paper's clean 300 Mbps WiFi).
    pub link: Option<LinkProcess>,
    /// Timeout/retry/backoff policy.
    pub retry: RetryPolicy,
    /// Wire-byte fraction of the degraded (lower-rung) original stream
    /// relative to the full-quality original, in `(0, 1]`.
    pub low_rung_scale: f64,
    /// Master seed for the link chain and backoff jitter.
    pub seed: u64,
}

impl FaultSetup {
    /// The clean setup: empty plan, static link. A run under this setup
    /// is bit-identical to the non-resilient playback path.
    pub fn none() -> Self {
        FaultSetup {
            plan: FaultPlan::none(),
            link: None,
            retry: RetryPolicy::default(),
            low_rung_scale: 0.4,
            seed: 0,
        }
    }

    /// The clean setup under a different seed (still clean: the seed
    /// only matters once a plan or link process is attached).
    pub fn seeded(seed: u64) -> Self {
        FaultSetup { seed, ..FaultSetup::none() }
    }

    /// Attaches a fault plan (builder style).
    pub fn with_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Attaches a time-varying link (builder style).
    pub fn with_link(mut self, link: LinkProcess) -> Self {
        self.link = Some(link);
        self
    }

    /// Whether this setup can inject anything at all. Clean setups take
    /// the unmodified fast path in the playback session.
    pub fn is_clean(&self) -> bool {
        self.plan.is_empty() && self.link.is_none()
    }

    /// Validates every sub-config.
    ///
    /// # Panics
    ///
    /// Panics if the retry policy or the low-rung scale is out of range.
    pub fn validate(&self) {
        self.retry.validate();
        assert!(
            self.low_rung_scale > 0.0 && self.low_rung_scale <= 1.0,
            "low_rung_scale must be in (0, 1]"
        );
    }
}

/// What happened to one request on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestFate {
    /// The request reached the server and the response came back.
    Delivered,
    /// The request (or its response) was silently dropped.
    Dropped,
    /// The server is inside an outage window.
    Outage,
}

/// Stateful per-run injector; create one per playback run via
/// [`FaultInjector::new`]. All randomness is a pure function of the
/// setup's seed.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    sampler: Option<LinkSampler>,
    retry: RetryPolicy,
    low_rung_scale: f64,
    backoff_rng: SmallRng,
    consumed_drops: HashSet<u32>,
    clean: bool,
}

impl FaultInjector {
    /// Builds the injector for one run.
    ///
    /// # Panics
    ///
    /// Panics if the setup fails validation.
    pub fn new(setup: &FaultSetup) -> Self {
        setup.validate();
        FaultInjector {
            plan: setup.plan.clone(),
            sampler: setup.link.as_ref().map(|l| l.sampler(setup.seed)),
            retry: setup.retry,
            low_rung_scale: setup.low_rung_scale,
            backoff_rng: SmallRng::seed_from_u64(setup.seed ^ 0x6261_636b_6f66_665f), // "backoff_"
            consumed_drops: HashSet::new(),
            clean: setup.is_clean(),
        }
    }

    /// Whether nothing will ever be injected (clean fast path).
    pub fn is_clean(&self) -> bool {
        self.clean
    }

    /// The retry policy.
    pub fn retry(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Wire-byte fraction of the degraded rung.
    pub fn low_rung_scale(&self) -> f64 {
        self.low_rung_scale
    }

    /// Samples the link for the segment starting at `t`; `None` means
    /// the session's static model applies.
    pub fn link_for(&mut self, t: f64) -> Option<LinkState> {
        self.sampler.as_mut().map(|s| s.sample(t))
    }

    /// Resolves the fate of a request for `segment` issued at time `t`.
    /// A scheduled [`crate::FaultEvent::RequestDrop`] fires once; the
    /// retry goes through (unless something else fails it).
    pub fn request_fate(&mut self, t: f64, segment: u32) -> RequestFate {
        if self.plan.server_down_at(t) {
            return RequestFate::Outage;
        }
        if self.plan.drops_request(segment) && self.consumed_drops.insert(segment) {
            return RequestFate::Dropped;
        }
        RequestFate::Delivered
    }

    /// Whether `segment`'s FOV video arrives corrupt.
    pub fn corrupts(&self, segment: u32) -> bool {
        self.plan.corrupts(segment)
    }

    /// Scheduled extra delivery delay for `segment`, seconds.
    pub fn late_delay(&self, segment: u32) -> f64 {
        self.plan.late_delay(segment)
    }

    /// The jittered backoff wait before re-attempt `attempt` (0-based).
    pub fn backoff_s(&mut self, attempt: u32) -> f64 {
        self.retry.backoff_s(attempt, &mut self.backoff_rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultEvent;

    #[test]
    fn clean_setup_is_clean_and_delivers_everything() {
        let mut inj = FaultInjector::new(&FaultSetup::none());
        assert!(inj.is_clean());
        assert!(inj.link_for(0.0).is_none());
        for seg in 0..16 {
            assert_eq!(inj.request_fate(seg as f64, seg), RequestFate::Delivered);
            assert!(!inj.corrupts(seg));
        }
    }

    #[test]
    fn request_drop_fires_exactly_once() {
        let setup = FaultSetup::none()
            .with_plan(FaultPlan::none().with(FaultEvent::RequestDrop { segment: 3 }));
        let mut inj = FaultInjector::new(&setup);
        assert_eq!(inj.request_fate(1.0, 3), RequestFate::Dropped);
        assert_eq!(inj.request_fate(1.1, 3), RequestFate::Delivered);
        assert_eq!(inj.request_fate(0.0, 2), RequestFate::Delivered);
    }

    #[test]
    fn outage_beats_everything_while_it_lasts() {
        let setup = FaultSetup::none().with_plan(
            FaultPlan::none()
                .with(FaultEvent::ServerOutage { start_s: 2.0, duration_s: 1.0 })
                .with(FaultEvent::RequestDrop { segment: 5 }),
        );
        let mut inj = FaultInjector::new(&setup);
        assert_eq!(inj.request_fate(2.5, 5), RequestFate::Outage);
        // After the window, the one-shot drop still fires.
        assert_eq!(inj.request_fate(3.5, 5), RequestFate::Dropped);
        assert_eq!(inj.request_fate(3.6, 5), RequestFate::Delivered);
    }

    #[test]
    fn backoff_stream_replays_per_seed() {
        let draws = |seed| {
            let mut inj = FaultInjector::new(&FaultSetup::seeded(seed));
            (0..8).map(|a| inj.backoff_s(a)).collect::<Vec<_>>()
        };
        assert_eq!(draws(11), draws(11));
        assert_ne!(draws(11), draws(12));
    }

    #[test]
    #[should_panic(expected = "low_rung_scale")]
    fn zero_low_rung_scale_is_rejected() {
        let setup = FaultSetup { low_rung_scale: 0.0, ..FaultSetup::none() };
        let _ = FaultInjector::new(&setup);
    }
}
