//! Deterministic fault injection and resilience modelling for the EVR
//! playback pipeline.
//!
//! The paper's evaluation assumes a clean 300 Mbps WiFi link and an
//! always-up SAS server. This crate supplies the failure side of the
//! story so the energy model can be stressed under realistic conditions:
//!
//! * [`LinkProcess`] — a time-varying link built from a piecewise
//!   bandwidth profile ([`BandwidthProfile`]: step drops, ramps, outage
//!   windows) and a Gilbert–Elliott bursty-loss chain
//!   ([`GilbertElliott`]), sampled per segment into a [`LinkState`].
//! * [`FaultPlan`] — a schedule of discrete failures
//!   ([`FaultEvent`]: server outages, corrupt segments, late segments,
//!   dropped requests).
//! * [`RetryPolicy`] — timeout, bounded retry and exponential backoff
//!   with deterministic jitter.
//! * [`FaultInjector`] / [`FaultSetup`] — the per-run object the client
//!   consults; all randomness derives from one master seed, so the same
//!   seed replays the same faults, byte for byte.
//! * [`ServerFaultPlan`] / [`FrontProfile`] — the server-side story:
//!   a sharded serving front with bounded queues and scheduled shard
//!   outages, slow shards and store eviction storms
//!   ([`ServerFaultEvent`]), guarded per shard by a deterministic
//!   [`CircuitBreaker`].
//!
//! The cardinal invariant: a run under [`FaultSetup::none`] is
//! bit-identical to the clean playback path. The workspace's property
//! tests assert this, along with monotonicity of rebuffering, energy
//! and frozen frames in fault severity.

mod breaker;
mod injector;
mod link;
mod plan;
mod retry;
mod server;

pub use breaker::{BreakerPolicy, BreakerState, CircuitBreaker};
pub use injector::{FaultInjector, FaultSetup, FrontGate, RequestFate};
pub use link::{BandwidthProfile, GilbertElliott, LinkProcess, LinkSampler, LinkState};
pub use plan::{FaultEvent, FaultPlan};
pub use retry::RetryPolicy;
pub use server::{FrontProfile, ServerFaultEvent, ServerFaultPlan};
