//! The time-varying link: a seeded Gilbert–Elliott bursty-loss process
//! over a piecewise bandwidth profile.
//!
//! The paper evaluates under one clean operating point — a 300 Mbps
//! WiFi link (§8.2) — which the static `NetworkModel` in `evr-client`
//! reproduces. Production links are not like that: loss arrives in
//! bursts (the classic two-state Gilbert–Elliott channel) and capacity
//! moves in steps, ramps and outright outages as users roam between
//! access points. This module samples a [`LinkState`] per video segment
//! from a deterministic, seed-driven process so experiments under
//! failure replay bit-identically.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The link as one playback segment sees it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkState {
    /// Effective application-layer bandwidth, bits per second. Zero
    /// means the link is down (an outage window).
    pub bandwidth_bps: f64,
    /// Request round-trip time, seconds.
    pub rtt_s: f64,
    /// Packet loss probability in `[0, 1)` for this segment's window.
    pub loss_prob: f64,
}

impl LinkState {
    /// Whether the link can carry any traffic at all.
    pub fn is_up(&self) -> bool {
        self.bandwidth_bps > 0.0
    }
}

/// The two-state Gilbert–Elliott bursty-loss channel.
///
/// The chain sits in a Good or Bad state; each sampled step it
/// transitions with the configured probabilities, and the emitted loss
/// probability is the state's. Mean burst length (in steps) is
/// `1 / p_bad_to_good`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GilbertElliott {
    /// Probability of Good → Bad per step.
    pub p_good_to_bad: f64,
    /// Probability of Bad → Good per step (the reciprocal of the mean
    /// burst length).
    pub p_bad_to_good: f64,
    /// Loss probability emitted in the Good state.
    pub loss_good: f64,
    /// Loss probability emitted in the Bad state.
    pub loss_bad: f64,
}

impl GilbertElliott {
    /// A channel that never leaves the Good state and never loses — the
    /// paper's clean testbed link.
    pub fn clean() -> Self {
        GilbertElliott { p_good_to_bad: 0.0, p_bad_to_good: 1.0, loss_good: 0.0, loss_bad: 0.0 }
    }

    /// A bursty channel: enters a loss burst with probability `entry`
    /// per step, bursts last `burst_len` steps on average and lose
    /// `loss_bad` of their packets.
    ///
    /// # Panics
    ///
    /// Panics if `entry` is not in `[0, 1]`, `burst_len` is not
    /// positive, or `loss_bad` is not in `[0, 1)`.
    pub fn bursty(entry: f64, burst_len: f64, loss_bad: f64) -> Self {
        assert!((0.0..=1.0).contains(&entry), "burst entry probability must be in [0, 1]");
        assert!(burst_len > 0.0, "mean burst length must be positive");
        assert!((0.0..1.0).contains(&loss_bad), "burst loss must be in [0, 1)");
        GilbertElliott {
            p_good_to_bad: entry,
            p_bad_to_good: 1.0 / burst_len,
            loss_good: 0.0,
            loss_bad,
        }
    }

    fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.p_good_to_bad) && (0.0..=1.0).contains(&self.p_bad_to_good),
            "transition probabilities must be in [0, 1]"
        );
        assert!(
            (0.0..1.0).contains(&self.loss_good) && (0.0..1.0).contains(&self.loss_bad),
            "loss probabilities must be in [0, 1)"
        );
    }
}

/// A piecewise-constant bandwidth-over-time profile. Unlike the ABR
/// module's `BandwidthTrace`, a profile may drop to **zero** — that is
/// how link outage windows are expressed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandwidthProfile {
    /// `(start time s, bits/s)` breakpoints, time-ascending; the first
    /// entry's rate also applies before its time.
    points: Vec<(f64, f64)>,
}

impl BandwidthProfile {
    /// A constant-rate link.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is negative or non-finite.
    pub fn constant(bps: f64) -> Self {
        assert!(bps.is_finite() && bps >= 0.0, "bandwidth must be finite and non-negative");
        BandwidthProfile { points: vec![(0.0, bps)] }
    }

    /// Builds a profile from breakpoints.
    ///
    /// # Panics
    ///
    /// Panics if empty, unsorted, or any rate is negative/non-finite.
    pub fn from_points(points: Vec<(f64, f64)>) -> Self {
        assert!(!points.is_empty(), "profile needs at least one point");
        assert!(points.windows(2).all(|w| w[0].0 < w[1].0), "breakpoints must ascend");
        assert!(
            points.iter().all(|(_, bps)| bps.is_finite() && *bps >= 0.0),
            "rates must be finite and non-negative"
        );
        BandwidthProfile { points }
    }

    /// A link that steps from `from_bps` down to `to_bps` at `at_s`.
    pub fn step_drop(from_bps: f64, to_bps: f64, at_s: f64) -> Self {
        assert!(at_s > 0.0, "step time must be positive");
        BandwidthProfile::from_points(vec![(0.0, from_bps), (at_s, to_bps)])
    }

    /// A linear ramp from `from_bps` at time 0 to `to_bps` at `end_s`,
    /// discretised into `steps` constant pieces.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is zero or `end_s` is not positive.
    pub fn ramp(from_bps: f64, to_bps: f64, end_s: f64, steps: usize) -> Self {
        assert!(steps > 0, "ramp needs at least one step");
        assert!(end_s > 0.0, "ramp must span positive time");
        let points = (0..steps)
            .map(|i| {
                let f = i as f64 / steps as f64;
                (f * end_s, from_bps + f * (to_bps - from_bps))
            })
            .collect();
        BandwidthProfile::from_points(points)
    }

    /// Overlays an outage window: bandwidth is zero in
    /// `[start_s, start_s + duration_s)`, then restores to whatever the
    /// profile carried at the window's end.
    ///
    /// # Panics
    ///
    /// Panics if `duration_s` is not positive.
    pub fn with_outage(self, start_s: f64, duration_s: f64) -> Self {
        assert!(duration_s > 0.0, "outage duration must be positive");
        let end = start_s + duration_s;
        let restore = self.bps_at(end);
        let mut points: Vec<(f64, f64)> =
            self.points.into_iter().filter(|(t, _)| *t < start_s || *t >= end).collect();
        points.push((start_s, 0.0));
        if points.iter().all(|(t, _)| (*t - end).abs() > 1e-12) {
            points.push((end, restore));
        }
        points.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        BandwidthProfile { points }
    }

    /// The `(start time s, bits/s)` breakpoints, time-ascending.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// The rate at time `t`, bits/s (zero inside outage windows).
    pub fn bps_at(&self, t: f64) -> f64 {
        match self.points.iter().rev().find(|(pt, _)| *pt <= t) {
            Some((_, bps)) => *bps,
            None => self.points[0].1,
        }
    }
}

/// The full time-varying link specification: a bandwidth profile, a
/// Gilbert–Elliott loss channel and a base RTT, sampled per segment by
/// a seeded [`LinkSampler`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkProcess {
    /// Capacity over time.
    pub profile: BandwidthProfile,
    /// Bursty-loss channel.
    pub loss: GilbertElliott,
    /// Base request round-trip time, seconds.
    pub rtt_s: f64,
}

impl LinkProcess {
    /// A clean constant link (no loss bursts, no outages).
    pub fn clean(bps: f64, rtt_s: f64) -> Self {
        LinkProcess {
            profile: BandwidthProfile::constant(bps),
            loss: GilbertElliott::clean(),
            rtt_s,
        }
    }

    /// Creates the per-run sampler. The stream is a pure function of
    /// `seed`, so two runs with the same seed see the same link.
    ///
    /// # Panics
    ///
    /// Panics if the channel probabilities are out of range or the RTT
    /// is negative.
    pub fn sampler(&self, seed: u64) -> LinkSampler {
        self.loss.validate();
        assert!(self.rtt_s >= 0.0, "rtt must be non-negative");
        LinkSampler {
            process: self.clone(),
            rng: SmallRng::seed_from_u64(seed ^ 0x6c69_6e6b_5f67_655f), // "link_ge_"
            bad: false,
        }
    }
}

/// Stateful per-run sampler over a [`LinkProcess`]; one `sample` call
/// per segment advances the loss chain one step.
#[derive(Debug, Clone)]
pub struct LinkSampler {
    process: LinkProcess,
    rng: SmallRng,
    bad: bool,
}

impl LinkSampler {
    /// Samples the link state governing the segment starting at `t`.
    pub fn sample(&mut self, t: f64) -> LinkState {
        let ge = &self.process.loss;
        // Advance the two-state chain; both draws always happen so the
        // stream position is independent of the current state.
        let to_bad = self.rng.gen_bool(ge.p_good_to_bad.clamp(0.0, 1.0));
        let to_good = self.rng.gen_bool(ge.p_bad_to_good.clamp(0.0, 1.0));
        self.bad = if self.bad { !to_good } else { to_bad };
        LinkState {
            bandwidth_bps: self.process.profile.bps_at(t),
            rtt_s: self.process.rtt_s,
            loss_prob: if self.bad { ge.loss_bad } else { ge.loss_good },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_process_emits_the_constant_link() {
        let mut s = LinkProcess::clean(300e6, 0.002).sampler(7);
        for i in 0..32 {
            let state = s.sample(i as f64 * 0.25);
            assert_eq!(state.bandwidth_bps, 300e6);
            assert_eq!(state.loss_prob, 0.0);
            assert!(state.is_up());
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let p = LinkProcess {
            profile: BandwidthProfile::step_drop(100e6, 5e6, 3.0),
            loss: GilbertElliott::bursty(0.3, 2.5, 0.4),
            rtt_s: 0.01,
        };
        let run = |seed| {
            let mut s = p.sampler(seed);
            (0..64).map(|i| s.sample(i as f64 * 0.25)).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn bursty_channel_visits_both_states() {
        let p = LinkProcess {
            profile: BandwidthProfile::constant(50e6),
            loss: GilbertElliott::bursty(0.25, 3.0, 0.5),
            rtt_s: 0.005,
        };
        let mut s = p.sampler(1);
        let states: Vec<LinkState> = (0..256).map(|i| s.sample(i as f64)).collect();
        let lossy = states.iter().filter(|st| st.loss_prob > 0.0).count();
        assert!(lossy > 10, "burst state reached ({lossy})");
        assert!(lossy < 256, "good state reached");
    }

    #[test]
    fn outage_window_zeroes_bandwidth_then_restores() {
        let profile = BandwidthProfile::constant(80e6).with_outage(2.0, 1.5);
        assert_eq!(profile.bps_at(1.9), 80e6);
        assert_eq!(profile.bps_at(2.0), 0.0);
        assert_eq!(profile.bps_at(3.4), 0.0);
        assert_eq!(profile.bps_at(3.5), 80e6);
    }

    #[test]
    fn ramp_descends_between_endpoints() {
        let profile = BandwidthProfile::ramp(100e6, 20e6, 10.0, 8);
        assert_eq!(profile.bps_at(0.0), 100e6);
        let mid = profile.bps_at(5.0);
        assert!(mid < 100e6 && mid > 20e6, "{mid}");
        assert!(profile.bps_at(9.9) < profile.bps_at(0.1));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_bandwidth_is_rejected() {
        let _ = BandwidthProfile::constant(-1.0);
    }

    #[test]
    #[should_panic(expected = "burst loss")]
    fn full_burst_loss_is_rejected() {
        let _ = GilbertElliott::bursty(0.1, 2.0, 1.0);
    }
}
