//! The fault-plan DSL: a schedule of discrete failures injected into
//! the request path.
//!
//! A [`FaultPlan`] is a validated list of [`FaultEvent`]s. It is pure
//! data — the client's resilience state machine consults it through the
//! [`crate::FaultInjector`] — so plans serialise, diff and replay
//! exactly.

use serde::{Deserialize, Serialize};

/// One scheduled failure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// The SAS server is unreachable in `[start_s, start_s + duration_s)`.
    ServerOutage {
        /// Outage start, seconds into playback.
        start_s: f64,
        /// Outage length, seconds.
        duration_s: f64,
    },
    /// The FOV video of `segment` arrives corrupt: the client pays for
    /// the transfer and the detection decode, then must degrade.
    SegmentCorruption {
        /// Temporal segment index.
        segment: u32,
    },
    /// The response for `segment` arrives `delay_s` late, stalling
    /// playback by that long.
    LateSegment {
        /// Temporal segment index.
        segment: u32,
        /// Added delivery delay, seconds.
        delay_s: f64,
    },
    /// The first request for `segment` is silently dropped; the client
    /// only learns from its own timeout.
    RequestDrop {
        /// Temporal segment index.
        segment: u32,
    },
}

impl FaultEvent {
    fn validate(&self) {
        match *self {
            FaultEvent::ServerOutage { start_s, duration_s } => {
                assert!(
                    start_s.is_finite() && start_s >= 0.0,
                    "outage start must be finite and non-negative"
                );
                assert!(
                    duration_s.is_finite() && duration_s > 0.0,
                    "outage duration must be finite and positive"
                );
            }
            FaultEvent::LateSegment { delay_s, .. } => {
                assert!(
                    delay_s.is_finite() && delay_s > 0.0,
                    "late-segment delay must be finite and positive"
                );
            }
            FaultEvent::SegmentCorruption { .. } | FaultEvent::RequestDrop { .. } => {}
        }
    }
}

/// A validated schedule of failures.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan: nothing ever fails. Playback under this plan is
    /// bit-identical to the clean path (asserted by the workspace's
    /// parity tests).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Builds a plan from events.
    ///
    /// # Panics
    ///
    /// Panics if any event carries a non-finite, negative or zero
    /// time/duration where one is required.
    pub fn new(events: Vec<FaultEvent>) -> Self {
        for e in &events {
            e.validate();
        }
        FaultPlan { events }
    }

    /// Adds one event (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the event fails validation.
    pub fn with(mut self, event: FaultEvent) -> Self {
        event.validate();
        self.events.push(event);
        self
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scheduled events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the server is inside an outage window at time `t`.
    pub fn server_down_at(&self, t: f64) -> bool {
        self.events.iter().any(|e| match *e {
            FaultEvent::ServerOutage { start_s, duration_s } => {
                t >= start_s && t < start_s + duration_s
            }
            _ => false,
        })
    }

    /// Whether `segment`'s FOV video arrives corrupt.
    pub fn corrupts(&self, segment: u32) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, FaultEvent::SegmentCorruption { segment: s } if *s == segment))
    }

    /// Total scheduled delivery delay for `segment`, seconds.
    pub fn late_delay(&self, segment: u32) -> f64 {
        self.events
            .iter()
            .map(|e| match *e {
                FaultEvent::LateSegment { segment: s, delay_s } if s == segment => delay_s,
                _ => 0.0,
            })
            .sum()
    }

    /// Whether the first request for `segment` is dropped.
    pub fn drops_request(&self, segment: u32) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, FaultEvent::RequestDrop { segment: s } if *s == segment))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert!(!p.server_down_at(0.0));
        assert!(!p.corrupts(0));
        assert_eq!(p.late_delay(3), 0.0);
        assert!(!p.drops_request(1));
    }

    #[test]
    fn outage_window_is_half_open() {
        let p = FaultPlan::none().with(FaultEvent::ServerOutage { start_s: 1.0, duration_s: 2.0 });
        assert!(!p.server_down_at(0.99));
        assert!(p.server_down_at(1.0));
        assert!(p.server_down_at(2.99));
        assert!(!p.server_down_at(3.0));
    }

    #[test]
    fn per_segment_lookups_hit_only_their_segment() {
        let p = FaultPlan::new(vec![
            FaultEvent::SegmentCorruption { segment: 2 },
            FaultEvent::LateSegment { segment: 4, delay_s: 0.3 },
            FaultEvent::LateSegment { segment: 4, delay_s: 0.2 },
            FaultEvent::RequestDrop { segment: 1 },
        ]);
        assert!(p.corrupts(2) && !p.corrupts(3));
        assert!((p.late_delay(4) - 0.5).abs() < 1e-12);
        assert_eq!(p.late_delay(2), 0.0);
        assert!(p.drops_request(1) && !p.drops_request(2));
    }

    #[test]
    #[should_panic(expected = "duration must be finite and positive")]
    fn zero_length_outage_is_rejected() {
        let _ = FaultPlan::none().with(FaultEvent::ServerOutage { start_s: 0.0, duration_s: 0.0 });
    }

    #[test]
    #[should_panic(expected = "delay must be finite and positive")]
    fn nan_delay_is_rejected() {
        let _ = FaultPlan::none().with(FaultEvent::LateSegment { segment: 0, delay_s: f64::NAN });
    }
}
