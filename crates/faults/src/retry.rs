//! Bounded retry with deterministic exponential backoff + jitter.
//!
//! The jitter stream is drawn from a seeded RNG owned by the
//! [`crate::FaultInjector`], so a chaos run replays its exact backoff
//! waits under the same seed — the determinism contract every
//! experiment in this workspace relies on.

use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Client-side retry policy for one segment fetch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Re-attempts after the first failure, per degradation rung.
    pub max_retries: u32,
    /// How long the client waits on a request before declaring a
    /// timeout, seconds.
    pub timeout_s: f64,
    /// First backoff wait, seconds; attempt `n` waits
    /// `base * 2^n` (capped) before re-requesting.
    pub base_backoff_s: f64,
    /// Upper bound on a single backoff wait, seconds.
    pub max_backoff_s: f64,
    /// Jitter fraction in `[0, 1]`: each wait is scaled by a uniform
    /// factor in `[1 - jitter/2, 1 + jitter/2]`.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            timeout_s: 0.25,
            base_backoff_s: 0.05,
            max_backoff_s: 1.0,
            jitter: 0.5,
        }
    }
}

impl RetryPolicy {
    /// Validates the policy's fields.
    ///
    /// # Panics
    ///
    /// Panics if any duration is non-finite or negative, or the jitter
    /// fraction leaves `[0, 1]`.
    pub fn validate(&self) {
        assert!(
            self.timeout_s.is_finite() && self.timeout_s > 0.0,
            "timeout must be finite and positive"
        );
        assert!(
            self.base_backoff_s.is_finite() && self.base_backoff_s >= 0.0,
            "base backoff must be finite and non-negative"
        );
        assert!(
            self.max_backoff_s.is_finite() && self.max_backoff_s >= self.base_backoff_s,
            "max backoff must be finite and at least the base"
        );
        assert!((0.0..=1.0).contains(&self.jitter), "jitter must be in [0, 1]");
    }

    /// The backoff wait before re-attempt `attempt` (0-based), with the
    /// jitter factor drawn from `rng`.
    ///
    /// `max_backoff_s` bounds the wait *after* jitter: the upward half
    /// of the jitter window can no longer push a capped wait past the
    /// configured ceiling, so `backoff_s <= max_backoff_s` holds for
    /// every attempt number.
    pub fn backoff_s(&self, attempt: u32, rng: &mut SmallRng) -> f64 {
        let exp = self.base_backoff_s * 2f64.powi(attempt.min(20) as i32);
        let capped = exp.min(self.max_backoff_s);
        let factor = 1.0 - self.jitter / 2.0 + self.jitter * rng.gen::<f64>();
        (capped * factor).min(self.max_backoff_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn backoff_doubles_until_the_cap() {
        let p = RetryPolicy { jitter: 0.0, ..RetryPolicy::default() };
        let mut rng = SmallRng::seed_from_u64(0);
        assert!((p.backoff_s(0, &mut rng) - 0.05).abs() < 1e-12);
        assert!((p.backoff_s(1, &mut rng) - 0.10).abs() < 1e-12);
        assert!((p.backoff_s(2, &mut rng) - 0.20).abs() < 1e-12);
        // 0.05 * 2^10 = 51.2 s, capped at 1 s.
        assert!((p.backoff_s(10, &mut rng) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jitter_stays_within_the_half_window_and_replays() {
        let p = RetryPolicy { jitter: 0.5, ..RetryPolicy::default() };
        let draw = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..32).map(|a| p.backoff_s(a % 4, &mut rng)).collect::<Vec<_>>()
        };
        for (a, w) in draw(3).iter().enumerate() {
            let nominal = (0.05 * 2f64.powi((a % 4) as i32)).min(1.0);
            assert!(*w >= nominal * 0.75 - 1e-12 && *w <= nominal * 1.25 + 1e-12, "{a}: {w}");
        }
        assert_eq!(draw(3), draw(3));
        assert_ne!(draw(3), draw(4));
    }

    #[test]
    #[should_panic(expected = "jitter")]
    fn out_of_range_jitter_is_rejected() {
        RetryPolicy { jitter: 1.5, ..RetryPolicy::default() }.validate();
    }

    #[test]
    fn cap_holds_after_jitter_for_large_attempts() {
        // Full jitter: the factor window is [0.5, 1.5], so before the
        // fix an attempt deep into the exponential regime could wait up
        // to 1.5 * max_backoff_s. The cap now applies after jitter.
        let p = RetryPolicy { jitter: 1.0, max_backoff_s: 2.0, ..RetryPolicy::default() };
        let mut rng = SmallRng::seed_from_u64(99);
        for attempt in [5, 10, 20, 1_000, u32::MAX] {
            for _ in 0..64 {
                let w = p.backoff_s(attempt, &mut rng);
                assert!(w.is_finite() && w >= 0.0, "attempt {attempt}: {w}");
                assert!(w <= p.max_backoff_s, "attempt {attempt}: {w} exceeds the cap");
            }
        }
    }
}
