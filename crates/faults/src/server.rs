//! Server-side fault vocabulary and the serving-front load model.
//!
//! Pure data, validate-on-construct, like [`crate::plan::FaultPlan`].
//! A [`ServerFaultPlan`] pairs a [`FrontProfile`] (the front's shard
//! count, service time and admission thresholds) with scheduled
//! degradations — whole-shard outages, slow shards, store eviction
//! storms — all queried as pure functions of `(shard, t)` so both the
//! server-side front (`evr-sas`) and the client-side gate consult the
//! exact same model. See DESIGN.md §14.

use serde::{Deserialize, Serialize};

use crate::breaker::BreakerPolicy;

/// Static capacity/threshold profile of the serving front.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrontProfile {
    /// Number of shards the catalog/store key space is hashed over.
    pub shards: u32,
    /// Simulated service time of one FOV request at a healthy shard,
    /// seconds.
    pub service_time_s: f64,
    /// Bounded per-shard queue: depth at or beyond this sheds.
    pub queue_capacity: u32,
    /// Queueing delay beyond which the front sheds even if the queue
    /// has room, seconds.
    pub shed_latency_s: f64,
    /// Wire-byte fraction of a shed (low-rung original) response
    /// relative to the full-quality original, in `(0, 1]`.
    pub shed_byte_scale: f64,
    /// Extra service-time factor for every request during a
    /// [`ServerFaultEvent::StoreEvictionStorm`] (all reads become store
    /// misses that re-render).
    pub storm_miss_scale: f64,
    /// Per-shard circuit-breaker tuning.
    pub breaker: BreakerPolicy,
}

impl Default for FrontProfile {
    fn default() -> Self {
        FrontProfile {
            shards: 4,
            service_time_s: 0.002,
            queue_capacity: 16,
            shed_latency_s: 0.02,
            shed_byte_scale: 0.4,
            storm_miss_scale: 4.0,
            breaker: BreakerPolicy::default(),
        }
    }
}

impl FrontProfile {
    /// Validates the profile's fields.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero, any duration is non-finite or
    /// non-positive, or a scale leaves its documented range.
    pub fn validate(&self) {
        assert!(self.shards > 0, "shards must be positive");
        assert!(
            self.service_time_s.is_finite() && self.service_time_s > 0.0,
            "service_time_s must be finite and positive"
        );
        assert!(self.queue_capacity > 0, "queue_capacity must be positive");
        assert!(
            self.shed_latency_s.is_finite() && self.shed_latency_s >= 0.0,
            "shed_latency_s must be finite and non-negative"
        );
        assert!(
            self.shed_byte_scale > 0.0 && self.shed_byte_scale <= 1.0,
            "shed_byte_scale must be in (0, 1]"
        );
        assert!(
            self.storm_miss_scale.is_finite() && self.storm_miss_scale >= 1.0,
            "storm_miss_scale must be finite and at least 1"
        );
        self.breaker.validate();
    }

    /// Requests/s one healthy shard sustains (`1 / service_time_s`).
    pub fn shard_capacity_rps(&self) -> f64 {
        1.0 / self.service_time_s
    }

    /// The shard owning `(content, segment)` — FNV-1a over the two
    /// words, reduced modulo the shard count. This is the single
    /// routing hash; the front and the client gate must agree on it.
    pub fn shard_of(&self, content: u64, segment: u32) -> u32 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for word in [content, u64::from(segment)] {
            for byte in word.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        (h % u64::from(self.shards)) as u32
    }
}

/// One scheduled server-side degradation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ServerFaultEvent {
    /// A whole shard stops answering for a window.
    ShardOutage {
        /// Affected shard index.
        shard: u32,
        /// Window start, seconds.
        start_s: f64,
        /// Window length, seconds.
        duration_s: f64,
    },
    /// A shard keeps answering but every request takes
    /// `latency_scale`× the healthy service time for a window.
    SlowShard {
        /// Affected shard index.
        shard: u32,
        /// Service-time multiplier, at least 1.
        latency_scale: f64,
        /// Window start, seconds.
        start_s: f64,
        /// Window length, seconds.
        duration_s: f64,
    },
    /// The pre-render store thrashes: every read on every shard is a
    /// miss that re-renders, costing `storm_miss_scale`× the healthy
    /// service time for a window.
    StoreEvictionStorm {
        /// Window start, seconds.
        start_s: f64,
        /// Window length, seconds.
        duration_s: f64,
    },
}

impl ServerFaultEvent {
    fn validate(&self, shards: u32) {
        let check_window = |start_s: f64, duration_s: f64| {
            assert!(
                start_s.is_finite() && start_s >= 0.0,
                "event start must be finite and non-negative"
            );
            assert!(
                duration_s.is_finite() && duration_s > 0.0,
                "event duration must be finite and positive"
            );
        };
        match *self {
            ServerFaultEvent::ShardOutage { shard, start_s, duration_s } => {
                assert!(shard < shards, "shard {shard} out of range (shards = {shards})");
                check_window(start_s, duration_s);
            }
            ServerFaultEvent::SlowShard { shard, latency_scale, start_s, duration_s } => {
                assert!(shard < shards, "shard {shard} out of range (shards = {shards})");
                assert!(
                    latency_scale.is_finite() && latency_scale >= 1.0,
                    "latency_scale must be finite and at least 1"
                );
                check_window(start_s, duration_s);
            }
            ServerFaultEvent::StoreEvictionStorm { start_s, duration_s } => {
                check_window(start_s, duration_s);
            }
        }
    }
}

fn in_window(t: f64, start_s: f64, duration_s: f64) -> bool {
    t >= start_s && t < start_s + duration_s
}

/// The server-side fault plan: a front profile plus scheduled
/// degradations, all queryable as pure functions of `(shard, t)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerFaultPlan {
    profile: FrontProfile,
    events: Vec<ServerFaultEvent>,
}

impl ServerFaultPlan {
    /// Builds a plan; every event is validated against the profile.
    ///
    /// # Panics
    ///
    /// Panics if the profile or any event fails validation.
    pub fn new(profile: FrontProfile, events: Vec<ServerFaultEvent>) -> Self {
        profile.validate();
        for e in &events {
            e.validate(profile.shards);
        }
        ServerFaultPlan { profile, events }
    }

    /// A healthy front under the default profile (no scheduled faults).
    pub fn healthy() -> Self {
        ServerFaultPlan::new(FrontProfile::default(), Vec::new())
    }

    /// Adds one event (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the event fails validation.
    pub fn with(mut self, event: ServerFaultEvent) -> Self {
        event.validate(self.profile.shards);
        self.events.push(event);
        self
    }

    /// The front profile.
    pub fn profile(&self) -> &FrontProfile {
        &self.profile
    }

    /// The scheduled events.
    pub fn events(&self) -> &[ServerFaultEvent] {
        &self.events
    }

    /// Whether nothing is scheduled (the front still models queueing,
    /// but no shard ever fails or slows).
    pub fn is_quiet(&self) -> bool {
        self.events.is_empty()
    }

    /// Whether `shard` is inside an outage window at `t`.
    pub fn shard_down_at(&self, shard: u32, t: f64) -> bool {
        self.events.iter().any(|e| match *e {
            ServerFaultEvent::ShardOutage { shard: s, start_s, duration_s } => {
                s == shard && in_window(t, start_s, duration_s)
            }
            _ => false,
        })
    }

    /// Combined service-time multiplier for `shard` at `t`: the product
    /// of every active `SlowShard` scale and the storm miss scale.
    pub fn latency_scale(&self, shard: u32, t: f64) -> f64 {
        let mut scale = 1.0;
        for e in &self.events {
            match *e {
                ServerFaultEvent::SlowShard { shard: s, latency_scale, start_s, duration_s }
                    if s == shard && in_window(t, start_s, duration_s) =>
                {
                    scale *= latency_scale;
                }
                ServerFaultEvent::StoreEvictionStorm { start_s, duration_s }
                    if in_window(t, start_s, duration_s) =>
                {
                    scale *= self.profile.storm_miss_scale;
                }
                _ => {}
            }
        }
        scale
    }

    /// Whether an eviction storm is active at `t`.
    pub fn storm_at(&self, t: f64) -> bool {
        self.events.iter().any(|e| match *e {
            ServerFaultEvent::StoreEvictionStorm { start_s, duration_s } => {
                in_window(t, start_s, duration_s)
            }
            _ => false,
        })
    }

    /// Effective simulated service time of one request on `shard` at
    /// `t` (healthy service time scaled by every active degradation).
    pub fn service_time_at(&self, shard: u32, t: f64) -> f64 {
        self.profile.service_time_s * self.latency_scale(shard, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_hash_is_stable_and_in_range() {
        let p = FrontProfile { shards: 8, ..FrontProfile::default() };
        let mut seen = [0u32; 8];
        for seg in 0..256 {
            let s = p.shard_of(0xfeed, seg);
            assert!(s < 8);
            assert_eq!(s, p.shard_of(0xfeed, seg), "hash must be pure");
            seen[s as usize] += 1;
        }
        // FNV spreads 256 keys over 8 shards without collapsing onto a
        // few; exact counts are pinned by determinism anyway.
        assert!(seen.iter().all(|&c| c > 8), "degenerate spread: {seen:?}");
        // Different content, generally different shard for some segment.
        assert!((0..64).any(|seg| p.shard_of(1, seg) != p.shard_of(2, seg)));
    }

    #[test]
    fn windows_answer_as_half_open_intervals() {
        let plan = ServerFaultPlan::new(
            FrontProfile::default(),
            vec![
                ServerFaultEvent::ShardOutage { shard: 1, start_s: 2.0, duration_s: 1.0 },
                ServerFaultEvent::SlowShard {
                    shard: 0,
                    latency_scale: 3.0,
                    start_s: 1.0,
                    duration_s: 2.0,
                },
                ServerFaultEvent::StoreEvictionStorm { start_s: 2.5, duration_s: 0.5 },
            ],
        );
        assert!(!plan.shard_down_at(1, 1.9));
        assert!(plan.shard_down_at(1, 2.0));
        assert!(plan.shard_down_at(1, 2.9));
        assert!(!plan.shard_down_at(1, 3.0));
        assert!(!plan.shard_down_at(0, 2.5));

        assert!((plan.latency_scale(0, 1.5) - 3.0).abs() < 1e-12);
        assert!((plan.latency_scale(0, 2.6) - 12.0).abs() < 1e-12, "slow × storm compound");
        assert!((plan.latency_scale(1, 2.6) - 4.0).abs() < 1e-12, "storm hits every shard");
        assert!((plan.latency_scale(0, 0.5) - 1.0).abs() < 1e-12);

        assert!(plan.storm_at(2.7));
        assert!(!plan.storm_at(3.1));
        assert!(
            (plan.service_time_at(0, 1.5) - 0.006).abs() < 1e-12,
            "service time scales with the slow window"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_shard_is_rejected() {
        let _ = ServerFaultPlan::healthy().with(ServerFaultEvent::ShardOutage {
            shard: 4,
            start_s: 0.0,
            duration_s: 1.0,
        });
    }

    #[test]
    #[should_panic(expected = "latency_scale")]
    fn sub_unit_latency_scale_is_rejected() {
        let _ = ServerFaultPlan::healthy().with(ServerFaultEvent::SlowShard {
            shard: 0,
            latency_scale: 0.5,
            start_s: 0.0,
            duration_s: 1.0,
        });
    }
}
