//! Strongly-typed angles and Euler head poses.
//!
//! 360° video reasons about angles constantly — field-of-view extents, head
//! yaw/pitch/roll, longitude/latitude of sphere points — and mixing degrees
//! with radians is the classic source of silent bugs. Following C-NEWTYPE,
//! [`Degrees`] and [`Radians`] are distinct types with explicit conversions.

use serde::{Deserialize, Serialize};
use std::f64::consts::{PI, TAU};
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

use crate::mat::Mat3;

/// An angle in degrees.
///
/// # Example
///
/// ```
/// use evr_math::{Degrees, Radians};
/// let d = Degrees(180.0);
/// assert!((d.to_radians().0 - std::f64::consts::PI).abs() < 1e-12);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Degrees(pub f64);

/// An angle in radians.
///
/// # Example
///
/// ```
/// use evr_math::Radians;
/// let r = Radians(std::f64::consts::PI);
/// assert!((r.to_degrees().0 - 180.0).abs() < 1e-12);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Radians(pub f64);

impl Degrees {
    /// Converts this angle to [`Radians`].
    pub fn to_radians(self) -> Radians {
        Radians(self.0.to_radians())
    }

    /// Wraps the angle into `[-180, 180)`.
    ///
    /// ```
    /// use evr_math::Degrees;
    /// assert!((Degrees(270.0).wrapped().0 - (-90.0)).abs() < 1e-12);
    /// ```
    pub fn wrapped(self) -> Degrees {
        Degrees(wrap_half_open(self.0, 360.0))
    }

    /// Absolute value of the angle.
    pub fn abs(self) -> Degrees {
        Degrees(self.0.abs())
    }
}

impl Radians {
    /// A full turn, `2π`.
    pub const FULL_TURN: Radians = Radians(TAU);
    /// Half a turn, `π`.
    pub const HALF_TURN: Radians = Radians(PI);

    /// Converts this angle to [`Degrees`].
    pub fn to_degrees(self) -> Degrees {
        Degrees(self.0.to_degrees())
    }

    /// Wraps the angle into `[-π, π)`.
    ///
    /// ```
    /// use evr_math::Radians;
    /// use std::f64::consts::PI;
    /// assert!((Radians(1.5 * PI).wrapped().0 - (-0.5 * PI)).abs() < 1e-12);
    /// ```
    pub fn wrapped(self) -> Radians {
        Radians(wrap_half_open(self.0, TAU))
    }

    /// Absolute value of the angle.
    pub fn abs(self) -> Radians {
        Radians(self.0.abs())
    }

    /// Sine of the angle.
    pub fn sin(self) -> f64 {
        self.0.sin()
    }

    /// Cosine of the angle.
    pub fn cos(self) -> f64 {
        self.0.cos()
    }

    /// Tangent of the angle.
    pub fn tan(self) -> f64 {
        self.0.tan()
    }

    /// Smallest absolute angular difference to `other`, in `[0, π]`.
    ///
    /// This is the metric the FOV checker uses: the difference between a
    /// desired yaw of `179°` and a stream yaw of `-179°` is `2°`, not `358°`.
    ///
    /// ```
    /// use evr_math::{Degrees, Radians};
    /// let a = Degrees(179.0).to_radians();
    /// let b = Degrees(-179.0).to_radians();
    /// assert!((a.angular_distance(b).to_degrees().0 - 2.0).abs() < 1e-9);
    /// ```
    pub fn angular_distance(self, other: Radians) -> Radians {
        Radians((self - other).wrapped().0.abs())
    }
}

fn wrap_half_open(x: f64, period: f64) -> f64 {
    let half = period / 2.0;
    let y = (x + half).rem_euclid(period) - half;
    // rem_euclid can return exactly `half` due to rounding; fold it back.
    if y >= half {
        y - period
    } else {
        y
    }
}

macro_rules! angle_ops {
    ($t:ident) => {
        impl Add for $t {
            type Output = $t;
            fn add(self, rhs: $t) -> $t {
                $t(self.0 + rhs.0)
            }
        }
        impl Sub for $t {
            type Output = $t;
            fn sub(self, rhs: $t) -> $t {
                $t(self.0 - rhs.0)
            }
        }
        impl Neg for $t {
            type Output = $t;
            fn neg(self) -> $t {
                $t(-self.0)
            }
        }
        impl Mul<f64> for $t {
            type Output = $t;
            fn mul(self, rhs: f64) -> $t {
                $t(self.0 * rhs)
            }
        }
        impl Div<f64> for $t {
            type Output = $t;
            fn div(self, rhs: f64) -> $t {
                $t(self.0 / rhs)
            }
        }
        impl fmt::Display for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", self.0, stringify!($t))
            }
        }
    };
}

angle_ops!(Degrees);
angle_ops!(Radians);

impl From<Degrees> for Radians {
    fn from(d: Degrees) -> Radians {
        d.to_radians()
    }
}

impl From<Radians> for Degrees {
    fn from(r: Radians) -> Degrees {
        r.to_degrees()
    }
}

/// A head orientation expressed as intrinsic yaw / pitch / roll.
///
/// In the 360°-video rendering model only *rotational* motion matters
/// (paper §2); a pose is exactly one `EulerAngles`. Conventions:
///
/// * `yaw` rotates about the +y (up) axis; positive yaw looks right.
/// * `pitch` rotates about the +x (right) axis; positive pitch looks up.
/// * `roll` rotates about the +z (forward) axis.
///
/// The composed rotation is `R = Ry(yaw) · Rx(−pitch) · Rz(roll)` applied
/// to view-space vectors, matching the two sparse rotation matrices of the
/// PTE's perspective-update stage (paper §6.2).
///
/// # Example
///
/// ```
/// use evr_math::{Degrees, EulerAngles, Vec3};
/// let up_pose = EulerAngles::from_degrees(0.0, 90.0, 0.0);
/// let v = up_pose.to_matrix() * Vec3::FORWARD;
/// assert!((v - Vec3::UP).norm() < 1e-12);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EulerAngles {
    /// Rotation about the up axis (look left/right).
    pub yaw: Radians,
    /// Rotation about the right axis (look up/down).
    pub pitch: Radians,
    /// Rotation about the forward axis (head tilt).
    pub roll: Radians,
}

impl EulerAngles {
    /// Creates a pose from radian components.
    pub fn new(yaw: Radians, pitch: Radians, roll: Radians) -> Self {
        EulerAngles { yaw, pitch, roll }
    }

    /// Creates a pose from degree components.
    pub fn from_degrees(yaw: f64, pitch: f64, roll: f64) -> Self {
        EulerAngles {
            yaw: Degrees(yaw).to_radians(),
            pitch: Degrees(pitch).to_radians(),
            roll: Degrees(roll).to_radians(),
        }
    }

    /// The composed rotation matrix `Ry(yaw) · Rx(−pitch) · Rz(roll)`.
    ///
    /// The pitch axis rotation is negated so that *positive pitch looks up*,
    /// matching the positive-latitude-is-up convention of
    /// [`crate::SphericalCoord`].
    pub fn to_matrix(self) -> Mat3 {
        Mat3::rotation_y(self.yaw) * Mat3::rotation_x(-self.pitch) * Mat3::rotation_z(self.roll)
    }

    /// The view direction (rotated forward axis) of this pose.
    ///
    /// ```
    /// use evr_math::{EulerAngles, Vec3};
    /// let d = EulerAngles::from_degrees(90.0, 0.0, 0.0).view_direction();
    /// assert!((d - Vec3::new(1.0, 0.0, 0.0)).norm() < 1e-12);
    /// ```
    pub fn view_direction(self) -> crate::Vec3 {
        self.to_matrix() * crate::Vec3::FORWARD
    }

    /// Wraps yaw into `[-π, π)` and clamps pitch into `[-π/2, π/2]`.
    ///
    /// Head-mounted displays physically cannot pitch beyond straight up or
    /// straight down, and the behaviour model relies on this invariant.
    pub fn normalized(self) -> Self {
        EulerAngles {
            yaw: self.yaw.wrapped(),
            pitch: Radians(self.pitch.0.clamp(-PI / 2.0, PI / 2.0)),
            roll: self.roll.wrapped(),
        }
    }

    /// Great-circle angle between the view directions of two poses.
    pub fn view_angle_to(self, other: EulerAngles) -> Radians {
        let a = self.view_direction();
        let b = other.view_direction();
        Radians(a.dot(b).clamp(-1.0, 1.0).acos())
    }
}

impl fmt::Display for EulerAngles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(yaw {:.2}°, pitch {:.2}°, roll {:.2}°)",
            self.yaw.to_degrees().0,
            self.pitch.to_degrees().0,
            self.roll.to_degrees().0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Vec3;
    use proptest::prelude::*;

    #[test]
    fn degree_radian_roundtrip() {
        for x in [-720.0, -180.0, -1.0, 0.0, 0.5, 90.0, 359.0] {
            let d = Degrees(x);
            assert!((d.to_radians().to_degrees().0 - x).abs() < 1e-9);
        }
    }

    #[test]
    fn wrapping_degrees() {
        assert!((Degrees(360.0).wrapped().0).abs() < 1e-12);
        // 540° is half a turn past 360°, landing on the -180° boundary.
        assert!((Degrees(540.0).wrapped().0 - (-180.0)).abs() < 1e-12);
        assert_eq!(Degrees(-180.0).wrapped().0, -180.0);
        assert!((Degrees(181.0).wrapped().0 - (-179.0)).abs() < 1e-12);
    }

    #[test]
    fn wrapping_radians_boundaries() {
        assert!((Radians(TAU).wrapped().0).abs() < 1e-12);
        assert_eq!(Radians(-PI).wrapped().0, -PI);
        assert!(Radians(PI).wrapped().0 < PI);
    }

    #[test]
    fn angular_distance_across_seam() {
        let a = Degrees(179.0).to_radians();
        let b = Degrees(-179.0).to_radians();
        assert!((a.angular_distance(b).to_degrees().0 - 2.0).abs() < 1e-9);
        assert!((b.angular_distance(a).to_degrees().0 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn identity_pose_looks_forward() {
        let p = EulerAngles::default();
        assert!((p.view_direction() - Vec3::FORWARD).norm() < 1e-12);
    }

    #[test]
    fn yaw_rotates_right() {
        let p = EulerAngles::from_degrees(90.0, 0.0, 0.0);
        assert!((p.view_direction() - Vec3::new(1.0, 0.0, 0.0)).norm() < 1e-12);
    }

    #[test]
    fn pitch_rotates_up() {
        let p = EulerAngles::from_degrees(0.0, 90.0, 0.0);
        assert!((p.view_direction() - Vec3::UP).norm() < 1e-12);
    }

    #[test]
    fn roll_preserves_view_direction() {
        let p = EulerAngles::from_degrees(30.0, 10.0, 45.0);
        let q = EulerAngles::from_degrees(30.0, 10.0, 0.0);
        assert!(p.view_angle_to(q).0 < 1e-12);
    }

    #[test]
    fn normalized_clamps_pitch() {
        let p = EulerAngles::from_degrees(0.0, 135.0, 0.0).normalized();
        assert!((p.pitch.to_degrees().0 - 90.0).abs() < 1e-9);
    }

    #[test]
    fn display_formats_in_degrees() {
        let s = EulerAngles::from_degrees(10.0, -5.0, 0.0).to_string();
        assert!(s.contains("10.00°") && s.contains("-5.00°"));
    }

    proptest! {
        #[test]
        fn prop_wrap_is_idempotent(x in -1e6f64..1e6) {
            let once = Radians(x).wrapped();
            let twice = once.wrapped();
            prop_assert!((once.0 - twice.0).abs() < 1e-9);
            prop_assert!(once.0 >= -PI && once.0 < PI);
        }

        #[test]
        fn prop_angular_distance_symmetric_and_bounded(a in -10.0f64..10.0, b in -10.0f64..10.0) {
            let d1 = Radians(a).angular_distance(Radians(b));
            let d2 = Radians(b).angular_distance(Radians(a));
            prop_assert!((d1.0 - d2.0).abs() < 1e-9);
            prop_assert!(d1.0 >= 0.0 && d1.0 <= PI + 1e-9);
        }

        #[test]
        fn prop_view_direction_is_unit(yaw in -4.0f64..4.0, pitch in -1.5f64..1.5, roll in -3.0f64..3.0) {
            let p = EulerAngles::new(Radians(yaw), Radians(pitch), Radians(roll));
            prop_assert!((p.view_direction().norm() - 1.0).abs() < 1e-9);
        }
    }
}
