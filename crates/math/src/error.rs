//! Error types for the math substrate.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or operating on math-layer values.
///
/// # Example
///
/// ```
/// use evr_math::fixed::FxFormat;
///
/// // 4 integer bits cannot exceed a 3-bit total width.
/// let err = FxFormat::new(3, 4).unwrap_err();
/// assert!(err.to_string().contains("fixed-point"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MathError {
    /// A fixed-point format was requested with an invalid bit allocation.
    InvalidFixedFormat {
        /// Requested total bit width (including sign).
        total_bits: u32,
        /// Requested integer bit width (including sign).
        int_bits: u32,
    },
    /// An operation required a non-zero-length vector but received one with
    /// (near-)zero norm.
    ZeroVector,
}

impl fmt::Display for MathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MathError::InvalidFixedFormat { total_bits, int_bits } => write!(
                f,
                "invalid fixed-point format: total {total_bits} bits, integer {int_bits} bits \
                 (need 2 <= int <= total <= 63)"
            ),
            MathError::ZeroVector => write!(f, "operation requires a non-zero vector"),
        }
    }
}

impl Error for MathError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = MathError::InvalidFixedFormat { total_bits: 3, int_bits: 9 };
        let s = e.to_string();
        assert!(s.starts_with("invalid fixed-point"));
        assert!(s.contains('3') && s.contains('9'));
        assert_eq!(MathError::ZeroVector.to_string(), "operation requires a non-zero vector");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MathError>();
    }
}
