//! Runtime-parameterised signed fixed-point arithmetic with CORDIC
//! trigonometry.
//!
//! The PTE accelerator (paper §6) carries out almost the entire projective
//! transformation in fixed point: "most of the operations in the entire
//! algorithm can be carried out in fixed-point arithmetics with little loss
//! of user experience". The paper sweeps total bit-width and the integer /
//! fraction split (Figure 11) and settles on a 28-bit format with 10
//! integer bits, denoted `[28, 10]`.
//!
//! This module reproduces that datapath bit-faithfully:
//!
//! * [`FxFormat`] describes a `Q[total, int]` format (the integer width
//!   includes the sign bit).
//! * [`Fx`] is a raw fixed-point value; all arithmetic is performed through
//!   an [`FxCtx`], which knows the format, saturates every result the way
//!   hardware would, and counts saturation events for diagnostics.
//! * Trigonometry (`sin`/`cos`, `atan2`, `asin`) uses CORDIC iterations —
//!   the canonical hardware algorithm — and `sqrt` uses an exact integer
//!   square root, so results depend only on the format, never on `f64`
//!   rounding behaviour.
//!
//! # Example
//!
//! ```
//! use evr_math::fixed::FxCtx;
//!
//! let ctx = FxCtx::q28_10();
//! let a = ctx.from_f64(1.5);
//! let b = ctx.from_f64(-2.25);
//! let p = ctx.mul(a, b);
//! assert!((ctx.to_f64(p) - (-3.375)).abs() < 1e-4);
//!
//! let (s, c) = ctx.sin_cos(ctx.from_f64(0.5));
//! assert!((ctx.to_f64(s) - 0.5f64.sin()).abs() < 1e-4);
//! assert!((ctx.to_f64(c) - 0.5f64.cos()).abs() < 1e-4);
//! ```

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::MathError;

/// Number of CORDIC iterations used by the trigonometric kernels.
///
/// Each iteration adds roughly one bit of angular precision; 48 iterations
/// saturate every format this crate supports (≤ 63 bits).
const CORDIC_ITERS: usize = 48;

/// A `Q[total, int]` signed fixed-point format.
///
/// `total` is the full word width including the sign bit, `int` is the
/// number of integer bits *including* the sign bit, and `total - int` bits
/// hold the fraction. The paper's chosen format is `[28, 10]`.
///
/// # Example
///
/// ```
/// use evr_math::fixed::FxFormat;
/// let f = FxFormat::new(28, 10)?;
/// assert_eq!(f.frac_bits(), 18);
/// assert!(f.max_value() > 511.9);
/// # Ok::<(), evr_math::MathError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FxFormat {
    total_bits: u32,
    int_bits: u32,
}

impl FxFormat {
    /// Creates a format with `total` bits, `int` of which (including sign)
    /// are integer bits.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidFixedFormat`] unless
    /// `2 <= int <= total <= 63`.
    pub fn new(total_bits: u32, int_bits: u32) -> Result<Self, MathError> {
        if int_bits < 2 || int_bits > total_bits || total_bits > 63 {
            return Err(MathError::InvalidFixedFormat { total_bits, int_bits });
        }
        Ok(FxFormat { total_bits, int_bits })
    }

    /// The paper's `[28, 10]` format.
    pub fn q28_10() -> Self {
        FxFormat { total_bits: 28, int_bits: 10 }
    }

    /// Total word width in bits, including the sign.
    pub fn total_bits(self) -> u32 {
        self.total_bits
    }

    /// Integer width in bits, including the sign.
    pub fn int_bits(self) -> u32 {
        self.int_bits
    }

    /// Fraction width in bits.
    pub fn frac_bits(self) -> u32 {
        self.total_bits - self.int_bits
    }

    /// Largest representable raw value.
    pub fn max_raw(self) -> i64 {
        (1i64 << (self.total_bits - 1)) - 1
    }

    /// Smallest representable raw value.
    pub fn min_raw(self) -> i64 {
        -(1i64 << (self.total_bits - 1))
    }

    /// Largest representable real value.
    pub fn max_value(self) -> f64 {
        self.max_raw() as f64 / (1u64 << self.frac_bits()) as f64
    }

    /// Resolution (value of one least-significant bit).
    pub fn epsilon(self) -> f64 {
        1.0 / (1u64 << self.frac_bits()) as f64
    }
}

impl fmt::Display for FxFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q[{}, {}]", self.total_bits, self.int_bits)
    }
}

/// A raw fixed-point value. Interpretation requires the [`FxCtx`] that
/// produced it; mixing values across contexts is a logic error (debug
/// builds in [`FxCtx`] operations do not detect it — formats are erased
/// for speed, as in real hardware registers).
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Fx(pub i64);

/// Arithmetic context for one fixed-point format.
///
/// Every operation saturates its result to the format's range, mimicking a
/// hardware ALU with saturating overflow, and counts saturation events
/// (useful when sweeping formats: overflow, not rounding, is what destroys
/// narrow-integer configurations in Figure 11).
#[derive(Debug)]
pub struct FxCtx {
    format: FxFormat,
    saturations: AtomicU64,
    cordic_gain_recip: i64,
    atan_table: Vec<i64>,
}

impl FxCtx {
    /// Creates a context for `format`.
    pub fn new(format: FxFormat) -> Self {
        let frac = format.frac_bits();
        // K = Π 1/sqrt(1 + 2^-2i); precomputed in f64 and quantised once.
        let mut k = 1.0f64;
        for i in 0..CORDIC_ITERS {
            k *= 1.0 / (1.0 + 2f64.powi(-2 * i as i32)).sqrt();
        }
        let atan_table = (0..CORDIC_ITERS)
            .map(|i| {
                let a = 2f64.powi(-(i as i32)).atan();
                (a * (1u64 << frac) as f64).round() as i64
            })
            .collect();
        FxCtx {
            format,
            saturations: AtomicU64::new(0),
            cordic_gain_recip: (k * (1u64 << frac) as f64).round() as i64,
            atan_table,
        }
    }

    /// Convenience constructor for the paper's `[28, 10]` format.
    pub fn q28_10() -> Self {
        FxCtx::new(FxFormat::q28_10())
    }

    /// The context's format.
    pub fn format(&self) -> FxFormat {
        self.format
    }

    /// Number of saturating operations observed so far.
    pub fn saturation_count(&self) -> u64 {
        self.saturations.load(Ordering::Relaxed)
    }

    /// Resets the saturation counter.
    pub fn reset_saturation_count(&self) {
        self.saturations.store(0, Ordering::Relaxed);
    }

    fn saturate(&self, wide: i128) -> Fx {
        let max = self.format.max_raw() as i128;
        let min = self.format.min_raw() as i128;
        if wide > max {
            self.saturations.fetch_add(1, Ordering::Relaxed);
            Fx(max as i64)
        } else if wide < min {
            self.saturations.fetch_add(1, Ordering::Relaxed);
            Fx(min as i64)
        } else {
            Fx(wide as i64)
        }
    }

    /// Quantises an `f64` (round-to-nearest, saturating).
    pub fn from_f64(&self, v: f64) -> Fx {
        let scaled = v * (1u64 << self.format.frac_bits()) as f64;
        if scaled.is_nan() {
            return Fx(0);
        }
        self.saturate(scaled.round() as i128)
    }

    /// Converts a fixed-point value back to `f64`.
    pub fn to_f64(&self, v: Fx) -> f64 {
        v.0 as f64 / (1u64 << self.format.frac_bits()) as f64
    }

    /// Creates a value from an integer.
    pub fn from_int(&self, v: i64) -> Fx {
        self.saturate((v as i128) << self.format.frac_bits())
    }

    /// Zero.
    pub fn zero(&self) -> Fx {
        Fx(0)
    }

    /// One.
    pub fn one(&self) -> Fx {
        self.from_int(1)
    }

    /// Saturating addition.
    pub fn add(&self, a: Fx, b: Fx) -> Fx {
        self.saturate(a.0 as i128 + b.0 as i128)
    }

    /// Saturating subtraction.
    pub fn sub(&self, a: Fx, b: Fx) -> Fx {
        self.saturate(a.0 as i128 - b.0 as i128)
    }

    /// Negation.
    pub fn neg(&self, a: Fx) -> Fx {
        self.saturate(-(a.0 as i128))
    }

    /// Absolute value.
    pub fn abs(&self, a: Fx) -> Fx {
        if a.0 < 0 {
            self.neg(a)
        } else {
            a
        }
    }

    /// Saturating multiplication with round-to-nearest.
    pub fn mul(&self, a: Fx, b: Fx) -> Fx {
        let frac = self.format.frac_bits();
        let wide = a.0 as i128 * b.0 as i128;
        let half = 1i128 << (frac - 1);
        self.saturate((wide + half) >> frac)
    }

    /// Fused multiply-accumulate `acc + a·b`, the primitive of the PTU's
    /// four-way MAC unit.
    pub fn mac(&self, acc: Fx, a: Fx, b: Fx) -> Fx {
        self.add(acc, self.mul(a, b))
    }

    /// Saturating division with round-to-nearest.
    ///
    /// Division by zero saturates to the signed extreme, as a hardware
    /// divider with a divide-by-zero flag would.
    pub fn div(&self, a: Fx, b: Fx) -> Fx {
        if b.0 == 0 {
            self.saturations.fetch_add(1, Ordering::Relaxed);
            return if a.0 >= 0 { Fx(self.format.max_raw()) } else { Fx(self.format.min_raw()) };
        }
        let frac = self.format.frac_bits();
        let num = (a.0 as i128) << (frac + 1);
        let q = num / b.0 as i128;
        // Round-to-nearest: add ±1 before halving.
        let rounded = (q + if q >= 0 { 1 } else { -1 }) >> 1;
        self.saturate(rounded)
    }

    /// Square root of a non-negative value via exact integer square root.
    ///
    /// Negative inputs clamp to zero (hardware flags-and-clamps).
    pub fn sqrt(&self, a: Fx) -> Fx {
        if a.0 <= 0 {
            return Fx(0);
        }
        let frac = self.format.frac_bits();
        // value = raw / 2^f; sqrt(value) = sqrt(raw << f) / 2^f.
        let wide = (a.0 as u128) << frac;
        self.saturate(isqrt_u128(wide) as i128)
    }

    /// Simultaneous sine and cosine via CORDIC rotation mode.
    ///
    /// The input angle may be any representable value; it is range-reduced
    /// to `[-π, π]` first. Accuracy is limited by the format's fraction
    /// width (≈ 1–2 LSBs).
    pub fn sin_cos(&self, angle: Fx) -> (Fx, Fx) {
        let frac = self.format.frac_bits();
        let pi = (std::f64::consts::PI * (1u64 << frac) as f64).round() as i64;
        let two_pi = 2 * pi;

        // Range-reduce to (-π, π].
        let mut z = angle.0 % two_pi;
        if z > pi {
            z -= two_pi;
        } else if z < -pi {
            z += two_pi;
        }

        // CORDIC converges on [-π/2, π/2]; fold the outer quadrants.
        let mut flip = false;
        let half_pi = pi / 2;
        if z > half_pi {
            z = pi - z;
            flip = true; // cos sign flips
        } else if z < -half_pi {
            z = -pi - z;
            flip = true;
        }

        let (mut x, mut y) = (self.cordic_gain_recip as i128, 0i128);
        let mut zz = z as i128;
        for (i, &atan) in self.atan_table.iter().enumerate() {
            let dx = rounding_shr(y, i);
            let dy = rounding_shr(x, i);
            if zz >= 0 {
                x -= dx;
                y += dy;
                zz -= atan as i128;
            } else {
                x += dx;
                y -= dy;
                zz += atan as i128;
            }
        }
        let cos = if flip { self.saturate(-x) } else { self.saturate(x) };
        (self.saturate(y), cos)
    }

    /// Sine.
    pub fn sin(&self, angle: Fx) -> Fx {
        self.sin_cos(angle).0
    }

    /// Cosine.
    pub fn cos(&self, angle: Fx) -> Fx {
        self.sin_cos(angle).1
    }

    /// Four-quadrant arctangent `atan2(y, x)` via CORDIC vectoring mode.
    pub fn atan2(&self, y: Fx, x: Fx) -> Fx {
        let frac = self.format.frac_bits();
        let pi = (std::f64::consts::PI * (1u64 << frac) as f64).round() as i64;

        if x.0 == 0 && y.0 == 0 {
            return Fx(0);
        }

        // Pre-rotate into the right half-plane.
        let (mut xx, mut yy, mut z0): (i128, i128, i128) = if x.0 < 0 {
            if y.0 >= 0 {
                (y.0 as i128, -(x.0 as i128), (pi / 2) as i128)
            } else {
                (-(y.0 as i128), x.0 as i128, -((pi / 2) as i128))
            }
        } else {
            (x.0 as i128, y.0 as i128, 0)
        };

        for (i, &atan) in self.atan_table.iter().enumerate() {
            let dx = rounding_shr(yy, i);
            let dy = rounding_shr(xx, i);
            if yy >= 0 {
                xx += dx;
                yy -= dy;
                z0 += atan as i128;
            } else {
                xx -= dx;
                yy += dy;
                z0 -= atan as i128;
            }
        }
        self.saturate(z0)
    }

    /// Arcsine via the identity `asin(v) = atan2(v, sqrt(1 − v²))`.
    ///
    /// Inputs outside `[-1, 1]` clamp to ±π/2.
    pub fn asin(&self, v: Fx) -> Fx {
        let one = self.one();
        let v2 = self.mul(v, v);
        if v2.0 >= one.0 {
            let frac = self.format.frac_bits();
            let half_pi = (std::f64::consts::FRAC_PI_2 * (1u64 << frac) as f64).round() as i64;
            return Fx(if v.0 >= 0 { half_pi } else { -half_pi });
        }
        let c = self.sqrt(self.sub(one, v2));
        self.atan2(v, c)
    }

    /// Multiplies a fixed-point value in `[0, 1)` by an integer scale and
    /// splits the product into an integer pixel index and a fractional
    /// filter weight (also fixed-point, in `[0, 1)`).
    ///
    /// This models the PTE's address-generation path: the Q-format ALU keeps
    /// normalized coordinates while pixel addressing happens in a wider
    /// integer unit, so large frame dimensions never overflow the narrow
    /// datapath.
    pub fn scale_to_index(&self, norm: Fx, scale: u32) -> (i64, Fx) {
        let frac = self.format.frac_bits();
        let wide = norm.0 as i128 * scale as i128;
        let idx = wide >> frac;
        let rem = wide - (idx << frac);
        (idx as i64, Fx(rem as i64))
    }
}

impl Clone for FxCtx {
    fn clone(&self) -> Self {
        FxCtx {
            format: self.format,
            saturations: AtomicU64::new(self.saturations.load(Ordering::Relaxed)),
            cordic_gain_recip: self.cordic_gain_recip,
            atan_table: self.atan_table.clone(),
        }
    }
}

/// Arithmetic right shift with round-to-nearest, the micro-rotation
/// primitive of the CORDIC datapath. A plain arithmetic shift floors
/// towards −∞ and biases negative operands by up to one LSB per iteration;
/// rounding keeps the accumulated CORDIC error within a couple of LSBs.
fn rounding_shr(v: i128, shift: usize) -> i128 {
    if shift == 0 {
        v
    } else {
        (v + (1i128 << (shift - 1))) >> shift
    }
}

/// Exact integer square root (floor) for `u128`.
fn isqrt_u128(n: u128) -> u64 {
    if n == 0 {
        return 0;
    }
    let mut x = (n as f64).sqrt() as u128;
    // Newton correction to guarantee floor semantics despite f64 rounding.
    while x > 0 && x * x > n {
        x -= 1;
    }
    while (x + 1) * (x + 1) <= n {
        x += 1;
    }
    x as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn format_validation() {
        assert!(FxFormat::new(28, 10).is_ok());
        assert!(FxFormat::new(3, 4).is_err());
        assert!(FxFormat::new(64, 10).is_err());
        assert!(FxFormat::new(10, 1).is_err());
    }

    #[test]
    fn q28_10_properties() {
        let f = FxFormat::q28_10();
        assert_eq!(f.total_bits(), 28);
        assert_eq!(f.int_bits(), 10);
        assert_eq!(f.frac_bits(), 18);
        assert!((f.max_value() - 511.999996).abs() < 1e-3);
        assert!((f.epsilon() - 2f64.powi(-18)).abs() < 1e-12);
    }

    #[test]
    fn roundtrip_accuracy() {
        let ctx = FxCtx::q28_10();
        for v in [-100.5, -0.001, 0.0, 0.333333, 1.0, 511.0] {
            let q = ctx.from_f64(v);
            assert!((ctx.to_f64(q) - v).abs() <= ctx.format().epsilon() / 2.0 + 1e-12);
        }
    }

    #[test]
    fn saturation_on_overflow() {
        let ctx = FxCtx::q28_10();
        let big = ctx.from_f64(500.0);
        assert_eq!(ctx.saturation_count(), 0);
        let sum = ctx.add(big, big);
        assert_eq!(ctx.saturation_count(), 1);
        assert!((ctx.to_f64(sum) - ctx.format().max_value()).abs() < 1e-6);
    }

    #[test]
    fn mul_rounding() {
        let ctx = FxCtx::q28_10();
        let a = ctx.from_f64(3.5);
        let b = ctx.from_f64(-2.0);
        assert!((ctx.to_f64(ctx.mul(a, b)) + 7.0).abs() < 1e-5);
    }

    #[test]
    fn div_by_zero_saturates() {
        let ctx = FxCtx::q28_10();
        let one = ctx.one();
        assert_eq!(ctx.div(one, ctx.zero()).0, ctx.format().max_raw());
        assert_eq!(ctx.div(ctx.neg(one), ctx.zero()).0, ctx.format().min_raw());
        assert_eq!(ctx.saturation_count(), 2);
    }

    #[test]
    fn sqrt_exactness() {
        let ctx = FxCtx::q28_10();
        for v in [0.0, 0.25, 1.0, 2.0, 100.0, 510.0] {
            let r = ctx.to_f64(ctx.sqrt(ctx.from_f64(v)));
            assert!((r - v.sqrt()).abs() < 2e-3, "sqrt({v}) = {r}");
        }
        assert_eq!(ctx.sqrt(ctx.from_f64(-4.0)).0, 0);
    }

    #[test]
    fn cordic_sin_cos_accuracy() {
        let ctx = FxCtx::q28_10();
        for i in -12..=12 {
            let a = i as f64 * 0.5;
            let (s, c) = ctx.sin_cos(ctx.from_f64(a));
            assert!((ctx.to_f64(s) - a.sin()).abs() < 1e-4, "sin({a})");
            assert!((ctx.to_f64(c) - a.cos()).abs() < 1e-4, "cos({a})");
        }
    }

    #[test]
    fn cordic_atan2_accuracy() {
        let ctx = FxCtx::q28_10();
        let cases = [
            (1.0, 1.0),
            (1.0, -1.0),
            (-1.0, 1.0),
            (-1.0, -1.0),
            (0.5, 2.0),
            (-3.0, 0.2),
            (0.0, 1.0),
            (1.0, 0.0),
            (-1.0, 0.0),
        ];
        for (y, x) in cases {
            let r = ctx.to_f64(ctx.atan2(ctx.from_f64(y), ctx.from_f64(x)));
            assert!((r - y.atan2(x)).abs() < 2e-4, "atan2({y}, {x}) = {r} vs {}", y.atan2(x));
        }
    }

    #[test]
    fn asin_accuracy_and_clamping() {
        let ctx = FxCtx::q28_10();
        for v in [-0.99, -0.5, 0.0, 0.3, 0.87] {
            let r = ctx.to_f64(ctx.asin(ctx.from_f64(v)));
            assert!((r - v.asin()).abs() < 5e-4, "asin({v}) = {r}");
        }
        let over = ctx.to_f64(ctx.asin(ctx.from_f64(1.5)));
        assert!((over - std::f64::consts::FRAC_PI_2).abs() < 1e-4);
    }

    #[test]
    fn scale_to_index_splits_product() {
        let ctx = FxCtx::q28_10();
        let norm = ctx.from_f64(0.75);
        let (idx, rem) = ctx.scale_to_index(norm, 3840);
        assert_eq!(idx, 2880);
        assert!(ctx.to_f64(rem).abs() < 1e-3);

        let norm = ctx.from_f64(0.5001);
        let (idx, rem) = ctx.scale_to_index(norm, 1000);
        assert_eq!(idx, 500);
        assert!((ctx.to_f64(rem) - 0.1).abs() < 0.01);
    }

    #[test]
    fn narrow_integer_format_overflows_on_two_pi() {
        // With only 3 integer bits (max 4.0), 2π is not representable —
        // exactly the failure mode behind Figure 11's high-error designs.
        let ctx = FxCtx::new(FxFormat::new(28, 3).unwrap());
        let two_pi = ctx.from_f64(std::f64::consts::TAU);
        assert!(ctx.saturation_count() > 0);
        assert!((ctx.to_f64(two_pi) - ctx.format().max_value()).abs() < 1e-3);
    }

    #[test]
    fn wider_fraction_is_more_accurate() {
        let coarse = FxCtx::new(FxFormat::new(20, 10).unwrap());
        let fine = FxCtx::new(FxFormat::new(48, 10).unwrap());
        let v = 0.123456789;
        let e_coarse = (coarse.to_f64(coarse.from_f64(v)) - v).abs();
        let e_fine = (fine.to_f64(fine.from_f64(v)) - v).abs();
        assert!(e_fine < e_coarse);
    }

    #[test]
    fn isqrt_edge_cases() {
        assert_eq!(isqrt_u128(0), 0);
        assert_eq!(isqrt_u128(1), 1);
        assert_eq!(isqrt_u128(3), 1);
        assert_eq!(isqrt_u128(4), 2);
        assert_eq!(isqrt_u128(u64::MAX as u128), 4294967295);
    }

    #[test]
    fn ctx_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FxCtx>();
    }

    proptest! {
        #[test]
        fn prop_add_matches_f64(a in -200.0f64..200.0, b in -200.0f64..200.0) {
            let ctx = FxCtx::q28_10();
            let r = ctx.to_f64(ctx.add(ctx.from_f64(a), ctx.from_f64(b)));
            prop_assert!((r - (a + b)).abs() < 1e-4);
        }

        #[test]
        fn prop_mul_matches_f64(a in -20.0f64..20.0, b in -20.0f64..20.0) {
            let ctx = FxCtx::q28_10();
            let r = ctx.to_f64(ctx.mul(ctx.from_f64(a), ctx.from_f64(b)));
            prop_assert!((r - a * b).abs() < 1e-3);
        }

        #[test]
        fn prop_div_matches_f64(a in -100.0f64..100.0, b in 0.01f64..100.0) {
            // Quotients beyond the Q[28,10] range legitimately saturate.
            prop_assume!((a / b).abs() < 500.0);
            let ctx = FxCtx::q28_10();
            let r = ctx.to_f64(ctx.div(ctx.from_f64(a), ctx.from_f64(b)));
            // The quantisation of b dominates the error for small divisors:
            // |d(a/b)/db| · ε/2 plus rounding of the quotient itself.
            let tol = (a / b / b).abs() * ctx.format().epsilon() + 1e-2;
            prop_assert!((r - a / b).abs() < tol, "{a}/{b} = {r}");
        }

        #[test]
        fn prop_sin_cos_pythagorean(a in -6.0f64..6.0) {
            let ctx = FxCtx::q28_10();
            let (s, c) = ctx.sin_cos(ctx.from_f64(a));
            let (sv, cv) = (ctx.to_f64(s), ctx.to_f64(c));
            prop_assert!((sv * sv + cv * cv - 1.0).abs() < 1e-3);
        }

        #[test]
        fn prop_atan2_matches_f64(y in -10.0f64..10.0, x in -10.0f64..10.0) {
            prop_assume!(y.abs() > 1e-3 || x.abs() > 1e-3);
            let ctx = FxCtx::q28_10();
            let r = ctx.to_f64(ctx.atan2(ctx.from_f64(y), ctx.from_f64(x)));
            prop_assert!((r - y.atan2(x)).abs() < 1e-3);
        }

        #[test]
        fn prop_sqrt_matches_f64(v in 0.0f64..500.0) {
            let ctx = FxCtx::q28_10();
            let r = ctx.to_f64(ctx.sqrt(ctx.from_f64(v)));
            prop_assert!((r - v.sqrt()).abs() < 3e-3);
        }

        #[test]
        fn prop_values_stay_in_range(a in -600.0f64..600.0, b in -600.0f64..600.0) {
            let ctx = FxCtx::q28_10();
            let results = [
                ctx.add(ctx.from_f64(a), ctx.from_f64(b)),
                ctx.sub(ctx.from_f64(a), ctx.from_f64(b)),
                ctx.mul(ctx.from_f64(a), ctx.from_f64(b)),
            ];
            for r in results {
                prop_assert!(r.0 <= ctx.format().max_raw());
                prop_assert!(r.0 >= ctx.format().min_raw());
            }
        }
    }
}
