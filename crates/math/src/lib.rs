//! Math substrate for the EVR reproduction.
//!
//! This crate provides the geometric and numeric foundations shared by every
//! other crate in the workspace:
//!
//! * [`angle`] — strongly-typed angles ([`Degrees`], [`Radians`]) with
//!   wrapping semantics appropriate for spherical video.
//! * [`mod@vec`] — small fixed-size vectors ([`Vec2`], [`Vec3`]).
//! * [`mat`] — 3×3 rotation matrices ([`Mat3`]) mirroring the two sparse
//!   rotation matrices used by the PTE's *perspective update* stage.
//! * [`quat`] — unit quaternions for composing and interpolating head poses.
//! * [`sphere`] — spherical ↔ Cartesian conversions and great-circle
//!   geometry used by the FOV checker and the behaviour model.
//! * [`fixed`] — a runtime-parameterised signed fixed-point engine
//!   (`Q[total, int]`) with CORDIC trigonometry, used both for the paper's
//!   Figure 11 bit-width sweep and as the PTE's bit-exact datapath.
//!
//! # Example
//!
//! ```
//! use evr_math::{Degrees, EulerAngles, Vec3};
//!
//! // A head pose looking 90° to the right maps the forward axis onto +x.
//! let pose = EulerAngles::new(Degrees(90.0).to_radians(), Default::default(), Default::default());
//! let rotated = pose.to_matrix() * Vec3::FORWARD;
//! assert!((rotated - Vec3::new(1.0, 0.0, 0.0)).norm() < 1e-12);
//! ```

pub mod angle;
pub mod error;
pub mod fixed;
pub mod mat;
pub mod quat;
pub mod sphere;
pub mod vec;

pub use angle::{Degrees, EulerAngles, Radians};
pub use error::MathError;
pub use fixed::{Fx, FxCtx, FxFormat};
pub use mat::Mat3;
pub use quat::Quat;
pub use sphere::SphericalCoord;
pub use vec::{Vec2, Vec3};
