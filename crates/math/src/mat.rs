//! 3×3 rotation matrices.
//!
//! The PTE's *perspective update* stage (paper §6.2) multiplies each pixel's
//! coordinate vector with two sparse 3×3 rotation matrices. [`Mat3`] is the
//! software reference for that hardware datapath; the axis-rotation
//! constructors produce exactly the sparse matrices the four-way MAC unit
//! exploits.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Mul;

use crate::{Radians, Vec3};

/// A row-major 3×3 matrix.
///
/// # Example
///
/// ```
/// use evr_math::{Mat3, Radians, Vec3};
/// use std::f64::consts::FRAC_PI_2;
/// let r = Mat3::rotation_y(Radians(FRAC_PI_2));
/// let v = r * Vec3::FORWARD;
/// assert!((v - Vec3::RIGHT).norm() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mat3 {
    /// Rows of the matrix, each a `[f64; 3]`.
    rows: [[f64; 3]; 3],
}

impl Default for Mat3 {
    fn default() -> Self {
        Mat3::IDENTITY
    }
}

impl Mat3 {
    /// The identity matrix.
    pub const IDENTITY: Mat3 = Mat3 { rows: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]] };

    /// Creates a matrix from row-major rows.
    pub fn from_rows(rows: [[f64; 3]; 3]) -> Self {
        Mat3 { rows }
    }

    /// Returns the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row > 2` or `col > 2`.
    pub fn at(&self, row: usize, col: usize) -> f64 {
        self.rows[row][col]
    }

    /// Right-handed rotation about the `+x` (right) axis by `angle`
    /// (`+y` rotates towards `+z`). Note [`crate::EulerAngles`] negates the
    /// pitch before calling this so that positive pitch looks up.
    ///
    /// Sparse structure: 4 non-trivial entries, as exploited by the PTU's
    /// four-way MAC unit.
    pub fn rotation_x(angle: Radians) -> Mat3 {
        let (s, c) = (angle.sin(), angle.cos());
        Mat3::from_rows([[1.0, 0.0, 0.0], [0.0, c, -s], [0.0, s, c]])
    }

    /// Rotation about the `+y` (up) axis by `angle`; positive looks right.
    pub fn rotation_y(angle: Radians) -> Mat3 {
        let (s, c) = (angle.sin(), angle.cos());
        Mat3::from_rows([[c, 0.0, s], [0.0, 1.0, 0.0], [-s, 0.0, c]])
    }

    /// Rotation about the `+z` (forward) axis by `angle`.
    pub fn rotation_z(angle: Radians) -> Mat3 {
        let (s, c) = (angle.sin(), angle.cos());
        Mat3::from_rows([[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]])
    }

    /// The transpose. For rotation matrices this equals the inverse.
    pub fn transposed(&self) -> Mat3 {
        let m = &self.rows;
        Mat3::from_rows([
            [m[0][0], m[1][0], m[2][0]],
            [m[0][1], m[1][1], m[2][1]],
            [m[0][2], m[1][2], m[2][2]],
        ])
    }

    /// The determinant.
    pub fn det(&self) -> f64 {
        let m = &self.rows;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }

    /// Number of entries that are structurally trivial (0 or ±1) — the
    /// sparsity measure that motivates the PTU's four-way MAC design.
    ///
    /// ```
    /// use evr_math::{Mat3, Radians};
    /// // An axis rotation has 5 trivial entries; the MAC unit only needs
    /// // to compute the remaining 4 products.
    /// assert_eq!(Mat3::rotation_x(Radians(0.3)).trivial_entries(), 5);
    /// ```
    pub fn trivial_entries(&self) -> usize {
        self.rows.iter().flatten().filter(|&&v| v == 0.0 || v == 1.0 || v == -1.0).count()
    }
}

impl Mul for Mat3 {
    type Output = Mat3;
    fn mul(self, rhs: Mat3) -> Mat3 {
        let mut out = [[0.0; 3]; 3];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = (0..3).map(|k| self.rows[i][k] * rhs.rows[k][j]).sum();
            }
        }
        Mat3::from_rows(out)
    }
}

impl Mul<Vec3> for Mat3 {
    type Output = Vec3;
    fn mul(self, v: Vec3) -> Vec3 {
        Vec3::new(
            self.rows[0][0] * v.x + self.rows[0][1] * v.y + self.rows[0][2] * v.z,
            self.rows[1][0] * v.x + self.rows[1][1] * v.y + self.rows[1][2] * v.z,
            self.rows[2][0] * v.x + self.rows[2][1] * v.y + self.rows[2][2] * v.z,
        )
    }
}

impl fmt::Display for Mat3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in &self.rows {
            writeln!(f, "[{:10.6} {:10.6} {:10.6}]", row[0], row[1], row[2])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::f64::consts::FRAC_PI_2;

    #[test]
    fn identity_is_noop() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(Mat3::IDENTITY * v, v);
    }

    #[test]
    fn rotation_x_moves_up_to_forward() {
        let r = Mat3::rotation_x(Radians(FRAC_PI_2));
        assert!((r * Vec3::UP - Vec3::FORWARD).norm() < 1e-12);
    }

    #[test]
    fn rotation_y_moves_forward_to_right() {
        let r = Mat3::rotation_y(Radians(FRAC_PI_2));
        assert!((r * Vec3::FORWARD - Vec3::RIGHT).norm() < 1e-12);
    }

    #[test]
    fn rotation_z_moves_right_to_up() {
        let r = Mat3::rotation_z(Radians(FRAC_PI_2));
        assert!((r * Vec3::RIGHT - Vec3::UP).norm() < 1e-12);
    }

    #[test]
    fn transpose_inverts_rotation() {
        let r = Mat3::rotation_y(Radians(0.7)) * Mat3::rotation_x(Radians(-0.3));
        let v = Vec3::new(0.1, 0.2, 0.9);
        let back = r.transposed() * (r * v);
        assert!((back - v).norm() < 1e-12);
    }

    #[test]
    fn axis_rotations_are_sparse() {
        for r in [
            Mat3::rotation_x(Radians(0.4)),
            Mat3::rotation_y(Radians(0.4)),
            Mat3::rotation_z(Radians(0.4)),
        ] {
            assert_eq!(r.trivial_entries(), 5);
        }
    }

    proptest! {
        #[test]
        fn prop_rotations_preserve_norm(yaw in -4.0f64..4.0, pitch in -4.0f64..4.0,
                                         x in -5.0f64..5.0, y in -5.0f64..5.0, z in -5.0f64..5.0) {
            let r = Mat3::rotation_y(Radians(yaw)) * Mat3::rotation_x(Radians(pitch));
            let v = Vec3::new(x, y, z);
            prop_assert!(((r * v).norm() - v.norm()).abs() < 1e-9);
        }

        #[test]
        fn prop_rotation_determinant_is_one(a in -4.0f64..4.0, b in -4.0f64..4.0, c in -4.0f64..4.0) {
            let r = Mat3::rotation_y(Radians(a)) * Mat3::rotation_x(Radians(b)) * Mat3::rotation_z(Radians(c));
            prop_assert!((r.det() - 1.0).abs() < 1e-9);
        }
    }
}
