//! Unit quaternions for head-pose composition and interpolation.
//!
//! The IMU replay path ([`evr-trace`](https://docs.rs/evr-trace)) resamples
//! recorded head poses at the display refresh rate; slerping quaternions is
//! the standard way to do that without gimbal artifacts.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Mul;

use crate::{EulerAngles, Mat3, Radians, Vec3};

/// A unit quaternion `w + xi + yj + zk` representing a rotation.
///
/// # Example
///
/// ```
/// use evr_math::{EulerAngles, Quat, Vec3};
/// let q = Quat::from_euler(EulerAngles::from_degrees(90.0, 0.0, 0.0));
/// let v = q.rotate(Vec3::FORWARD);
/// assert!((v - Vec3::RIGHT).norm() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quat {
    /// Scalar part.
    pub w: f64,
    /// `i` component.
    pub x: f64,
    /// `j` component.
    pub y: f64,
    /// `k` component.
    pub z: f64,
}

impl Default for Quat {
    fn default() -> Self {
        Quat::IDENTITY
    }
}

impl Quat {
    /// The identity rotation.
    pub const IDENTITY: Quat = Quat { w: 1.0, x: 0.0, y: 0.0, z: 0.0 };

    /// Creates a quaternion from raw components (not normalized).
    pub fn new(w: f64, x: f64, y: f64, z: f64) -> Self {
        Quat { w, x, y, z }
    }

    /// Rotation of `angle` about the (unit) `axis`.
    pub fn from_axis_angle(axis: Vec3, angle: Radians) -> Self {
        let half = angle.0 / 2.0;
        let s = half.sin();
        Quat { w: half.cos(), x: axis.x * s, y: axis.y * s, z: axis.z * s }
    }

    /// Builds the quaternion equivalent of `Ry(yaw)·Rx(−pitch)·Rz(roll)`,
    /// matching [`EulerAngles::to_matrix`] (positive pitch looks up).
    pub fn from_euler(e: EulerAngles) -> Self {
        let qy = Quat::from_axis_angle(Vec3::UP, e.yaw);
        let qx = Quat::from_axis_angle(Vec3::RIGHT, -e.pitch);
        let qz = Quat::from_axis_angle(Vec3::FORWARD, e.roll);
        qy * qx * qz
    }

    /// Extracts yaw/pitch/roll matching the `Ry·Rx·Rz` convention.
    ///
    /// ```
    /// use evr_math::{EulerAngles, Quat};
    /// let e = EulerAngles::from_degrees(35.0, -20.0, 10.0);
    /// let back = Quat::from_euler(e).to_euler();
    /// assert!((back.yaw.0 - e.yaw.0).abs() < 1e-9);
    /// assert!((back.pitch.0 - e.pitch.0).abs() < 1e-9);
    /// assert!((back.roll.0 - e.roll.0).abs() < 1e-9);
    /// ```
    pub fn to_euler(self) -> EulerAngles {
        let m = self.to_matrix();
        // For R = Ry(yaw)·Rx(−pitch)·Rz(roll):
        //   m[1][2] =  sin(pitch)
        //   m[0][2] =  cos(pitch)·sin(yaw),  m[2][2] = cos(pitch)·cos(yaw)
        //   m[1][0] =  cos(pitch)·sin(roll), m[1][1] = cos(pitch)·cos(roll)
        let pitch = m.at(1, 2).clamp(-1.0, 1.0).asin();
        let (yaw, roll) = if pitch.cos().abs() > 1e-9 {
            (m.at(0, 2).atan2(m.at(2, 2)), m.at(1, 0).atan2(m.at(1, 1)))
        } else {
            // Gimbal lock: fold all horizontal rotation into yaw.
            ((-m.at(2, 0)).atan2(m.at(0, 0)), 0.0)
        };
        EulerAngles::new(Radians(yaw), Radians(pitch), Radians(roll))
    }

    /// The squared norm `w² + x² + y² + z²`.
    pub fn norm_squared(self) -> f64 {
        self.w * self.w + self.x * self.x + self.y * self.y + self.z * self.z
    }

    /// Returns the normalized (unit) quaternion.
    pub fn normalized(self) -> Quat {
        let n = self.norm_squared().sqrt();
        if n < 1e-12 {
            Quat::IDENTITY
        } else {
            Quat { w: self.w / n, x: self.x / n, y: self.y / n, z: self.z / n }
        }
    }

    /// The conjugate (inverse rotation for unit quaternions).
    pub fn conjugate(self) -> Quat {
        Quat { w: self.w, x: -self.x, y: -self.y, z: -self.z }
    }

    /// Rotates a vector by this quaternion.
    pub fn rotate(self, v: Vec3) -> Vec3 {
        // v' = q * (0, v) * q⁻¹ expanded to avoid constructing temporaries.
        let u = Vec3::new(self.x, self.y, self.z);
        let s = self.w;
        u * (2.0 * u.dot(v)) + v * (s * s - u.dot(u)) + u.cross(v) * (2.0 * s)
    }

    /// Converts to a rotation matrix.
    pub fn to_matrix(self) -> Mat3 {
        let q = self.normalized();
        let (w, x, y, z) = (q.w, q.x, q.y, q.z);
        Mat3::from_rows([
            [1.0 - 2.0 * (y * y + z * z), 2.0 * (x * y - w * z), 2.0 * (x * z + w * y)],
            [2.0 * (x * y + w * z), 1.0 - 2.0 * (x * x + z * z), 2.0 * (y * z - w * x)],
            [2.0 * (x * z - w * y), 2.0 * (y * z + w * x), 1.0 - 2.0 * (x * x + y * y)],
        ])
    }

    /// Spherical linear interpolation from `self` (t = 0) to `rhs` (t = 1).
    ///
    /// Takes the shorter arc; falls back to normalized lerp for nearly
    /// identical rotations.
    pub fn slerp(self, rhs: Quat, t: f64) -> Quat {
        let mut dot = self.w * rhs.w + self.x * rhs.x + self.y * rhs.y + self.z * rhs.z;
        let mut end = rhs;
        if dot < 0.0 {
            dot = -dot;
            end = Quat { w: -rhs.w, x: -rhs.x, y: -rhs.y, z: -rhs.z };
        }
        if dot > 0.9995 {
            return Quat {
                w: self.w + (end.w - self.w) * t,
                x: self.x + (end.x - self.x) * t,
                y: self.y + (end.y - self.y) * t,
                z: self.z + (end.z - self.z) * t,
            }
            .normalized();
        }
        let theta = dot.clamp(-1.0, 1.0).acos();
        let sin_theta = theta.sin();
        let a = ((1.0 - t) * theta).sin() / sin_theta;
        let b = (t * theta).sin() / sin_theta;
        Quat {
            w: self.w * a + end.w * b,
            x: self.x * a + end.x * b,
            y: self.y * a + end.y * b,
            z: self.z * a + end.z * b,
        }
    }

    /// Angle of the rotation taking `self` to `rhs`, in `[0, π]`.
    pub fn angle_to(self, rhs: Quat) -> Radians {
        let d = self.conjugate() * rhs;
        Radians(2.0 * d.normalized().w.abs().clamp(0.0, 1.0).acos())
    }
}

impl Mul for Quat {
    type Output = Quat;
    fn mul(self, r: Quat) -> Quat {
        Quat {
            w: self.w * r.w - self.x * r.x - self.y * r.y - self.z * r.z,
            x: self.w * r.x + self.x * r.w + self.y * r.z - self.z * r.y,
            y: self.w * r.y - self.x * r.z + self.y * r.w + self.z * r.x,
            z: self.w * r.z + self.x * r.y - self.y * r.x + self.z * r.w,
        }
    }
}

impl fmt::Display for Quat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} + {}i + {}j + {}k)", self.w, self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: Vec3, b: Vec3) -> bool {
        (a - b).norm() < 1e-9
    }

    #[test]
    fn quat_matches_matrix_rotation() {
        let e = EulerAngles::from_degrees(40.0, -25.0, 15.0);
        let q = Quat::from_euler(e);
        let m = e.to_matrix();
        let v = Vec3::new(0.3, -0.2, 0.9);
        assert!(close(q.rotate(v), m * v));
    }

    #[test]
    fn conjugate_undoes_rotation() {
        let q = Quat::from_euler(EulerAngles::from_degrees(70.0, 10.0, -5.0));
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert!(close(q.conjugate().rotate(q.rotate(v)), v));
    }

    #[test]
    fn euler_roundtrip() {
        let e = EulerAngles::from_degrees(123.0, -45.0, 30.0);
        let back = Quat::from_euler(e).to_euler();
        assert!((back.yaw.0 - e.yaw.0).abs() < 1e-9);
        assert!((back.pitch.0 - e.pitch.0).abs() < 1e-9);
        assert!((back.roll.0 - e.roll.0).abs() < 1e-9);
    }

    #[test]
    fn slerp_endpoints_and_midpoint() {
        let a = Quat::IDENTITY;
        let b = Quat::from_axis_angle(Vec3::UP, Radians(std::f64::consts::FRAC_PI_2));
        assert!(close(a.slerp(b, 0.0).rotate(Vec3::FORWARD), Vec3::FORWARD));
        assert!(close(a.slerp(b, 1.0).rotate(Vec3::FORWARD), Vec3::RIGHT));
        let mid = a.slerp(b, 0.5).rotate(Vec3::FORWARD);
        let expect = Vec3::new(1.0, 0.0, 1.0).normalized().unwrap();
        assert!(close(mid, expect));
    }

    #[test]
    fn slerp_takes_short_arc() {
        let a = Quat::from_axis_angle(Vec3::UP, Radians(3.0));
        let b = Quat::from_axis_angle(Vec3::UP, Radians(-3.0));
        // Short arc between 172° and -172° passes through 180°, not 0°.
        let mid = a.slerp(b, 0.5);
        let d = mid.rotate(Vec3::FORWARD);
        assert!(d.z < -0.99);
    }

    #[test]
    fn angle_to_self_is_zero() {
        let q = Quat::from_euler(EulerAngles::from_degrees(10.0, 20.0, 30.0));
        assert!(q.angle_to(q).0 < 1e-9);
    }

    proptest! {
        #[test]
        fn prop_rotation_preserves_norm(yaw in -3.0f64..3.0, pitch in -1.5f64..1.5, roll in -3.0f64..3.0,
                                         x in -5.0f64..5.0, y in -5.0f64..5.0, z in -5.0f64..5.0) {
            let q = Quat::from_euler(EulerAngles::new(Radians(yaw), Radians(pitch), Radians(roll)));
            let v = Vec3::new(x, y, z);
            prop_assert!((q.rotate(v).norm() - v.norm()).abs() < 1e-9);
        }

        #[test]
        fn prop_quat_matrix_agree(yaw in -3.0f64..3.0, pitch in -1.5f64..1.5, roll in -3.0f64..3.0) {
            let e = EulerAngles::new(Radians(yaw), Radians(pitch), Radians(roll));
            let q = Quat::from_euler(e);
            let m = e.to_matrix();
            let v = Vec3::new(0.2, 0.5, 0.8);
            prop_assert!((q.rotate(v) - m * v).norm() < 1e-9);
        }

        #[test]
        fn prop_slerp_unit(t in 0.0f64..1.0, a in -3.0f64..3.0, b in -3.0f64..3.0) {
            let qa = Quat::from_axis_angle(Vec3::UP, Radians(a));
            let qb = Quat::from_axis_angle(Vec3::RIGHT, Radians(b));
            prop_assert!((qa.slerp(qb, t).norm_squared() - 1.0).abs() < 1e-9);
        }
    }
}
