//! Spherical geometry: coordinates, great circles and solid angles.
//!
//! 360° content lives on the unit sphere; this module provides the
//! longitude/latitude parameterisation used by the equirectangular
//! projection and the great-circle math used by the FOV checker and the
//! user behaviour model.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::{Radians, Vec3};

/// A point on the unit sphere in longitude/latitude form.
///
/// * `lon` (longitude, θ): angle around the up axis in `[-π, π)`; 0 is the
///   forward direction, positive is to the right.
/// * `lat` (latitude, φ): elevation in `[-π/2, π/2]`; positive is up.
///
/// # Example
///
/// ```
/// use evr_math::{SphericalCoord, Vec3, Degrees};
/// let p = SphericalCoord::new(Degrees(90.0).to_radians(), Degrees(0.0).to_radians());
/// assert!((p.to_unit_vector() - Vec3::RIGHT).norm() < 1e-12);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SphericalCoord {
    /// Longitude θ, wrapped to `[-π, π)`.
    pub lon: Radians,
    /// Latitude φ, clamped to `[-π/2, π/2]`.
    pub lat: Radians,
}

impl SphericalCoord {
    /// Creates a coordinate, wrapping the longitude and clamping the latitude.
    pub fn new(lon: Radians, lat: Radians) -> Self {
        SphericalCoord {
            lon: lon.wrapped(),
            lat: Radians(lat.0.clamp(-std::f64::consts::FRAC_PI_2, std::f64::consts::FRAC_PI_2)),
        }
    }

    /// Converts to a unit direction vector.
    pub fn to_unit_vector(self) -> Vec3 {
        let (sl, cl) = (self.lon.0.sin(), self.lon.0.cos());
        let (sp, cp) = (self.lat.0.sin(), self.lat.0.cos());
        Vec3::new(cp * sl, sp, cp * cl)
    }

    /// Builds a coordinate from a direction vector (need not be unit length).
    ///
    /// # Errors
    ///
    /// Returns [`crate::MathError::ZeroVector`] for a (near-)zero vector.
    pub fn from_vector(v: Vec3) -> Result<Self, crate::MathError> {
        let u = v.normalized()?;
        Ok(SphericalCoord {
            lon: Radians(u.x.atan2(u.z)),
            lat: Radians(u.y.clamp(-1.0, 1.0).asin()),
        })
    }

    /// Great-circle (central) angle to another coordinate, in `[0, π]`.
    ///
    /// ```
    /// use evr_math::{SphericalCoord, Degrees, Radians};
    /// let a = SphericalCoord::new(Radians(0.0), Radians(0.0));
    /// let b = SphericalCoord::new(Degrees(90.0).to_radians(), Radians(0.0));
    /// assert!((a.great_circle_angle(b).to_degrees().0 - 90.0).abs() < 1e-9);
    /// ```
    pub fn great_circle_angle(self, other: SphericalCoord) -> Radians {
        let a = self.to_unit_vector();
        let b = other.to_unit_vector();
        Radians(a.dot(b).clamp(-1.0, 1.0).acos())
    }
}

impl fmt::Display for SphericalCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(lon {:.2}°, lat {:.2}°)", self.lon.to_degrees().0, self.lat.to_degrees().0)
    }
}

/// Solid angle (steradians) of a rectangular field of view of
/// `h_fov` × `v_fov` (paper §2: a 120°×90° FOV is one sixth of the sphere).
///
/// Computed exactly for a "spherical rectangle" defined by two angular
/// extents ≤ 180°: `Ω = 4·asin(sin(h/2)·sin(v/2))`. Extents beyond 180°
/// are clamped to 180° (the formula is only defined for spherical
/// rectangles; a 180°×180° view is already a hemisphere).
///
/// The paper estimates a 120°×90° FOV as one sixth of the sphere using the
/// planar approximation `(120/360)·(90/180)`; the exact spherical-rectangle
/// value is slightly larger (≈ 21%).
///
/// # Example
///
/// ```
/// use evr_math::{sphere::fov_solid_angle, Degrees};
/// let sr = fov_solid_angle(Degrees(120.0).to_radians(), Degrees(90.0).to_radians());
/// let fraction = sr / (4.0 * std::f64::consts::PI);
/// assert!((fraction - 0.21).abs() < 0.01);
/// ```
pub fn fov_solid_angle(h_fov: Radians, v_fov: Radians) -> f64 {
    let h = h_fov.0.clamp(0.0, std::f64::consts::PI);
    let v = v_fov.0.clamp(0.0, std::f64::consts::PI);
    4.0 * ((h / 2.0).sin() * (v / 2.0).sin()).asin()
}

/// Moves `from` towards `to` along the great circle by `step` radians,
/// without overshooting. Used by the behaviour model's smooth pursuit.
///
/// # Example
///
/// ```
/// use evr_math::{sphere::step_towards, Vec3, Radians};
/// let next = step_towards(Vec3::FORWARD, Vec3::RIGHT, Radians(std::f64::consts::FRAC_PI_4));
/// let expect = Vec3::new(1.0, 0.0, 1.0).normalized().unwrap();
/// assert!((next - expect).norm() < 1e-9);
/// ```
pub fn step_towards(from: Vec3, to: Vec3, step: Radians) -> Vec3 {
    let total = from.dot(to).clamp(-1.0, 1.0).acos();
    if total < 1e-12 || step.0 >= total {
        return to;
    }
    from.slerp(to, step.0 / total)
}

/// The fraction of the sphere covered by a spherical cap of angular
/// radius `r`: `(1 − cos r) / 2`.
pub fn cap_area_fraction(r: Radians) -> f64 {
    (1.0 - r.0.cos()) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Degrees;
    use proptest::prelude::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn cardinal_directions() {
        let f = SphericalCoord::new(Radians(0.0), Radians(0.0));
        assert!((f.to_unit_vector() - Vec3::FORWARD).norm() < 1e-12);
        let up = SphericalCoord::new(Radians(0.0), Radians(FRAC_PI_2));
        assert!((up.to_unit_vector() - Vec3::UP).norm() < 1e-12);
        let back = SphericalCoord::new(Radians(PI - 1e-12), Radians(0.0));
        assert!((back.to_unit_vector() + Vec3::FORWARD).norm() < 1e-6);
    }

    #[test]
    fn from_vector_roundtrip() {
        let c = SphericalCoord::new(Degrees(123.0).to_radians(), Degrees(-41.0).to_radians());
        let back = SphericalCoord::from_vector(c.to_unit_vector()).unwrap();
        assert!((back.lon.0 - c.lon.0).abs() < 1e-9);
        assert!((back.lat.0 - c.lat.0).abs() < 1e-9);
    }

    #[test]
    fn from_zero_vector_errors() {
        assert!(SphericalCoord::from_vector(Vec3::ZERO).is_err());
    }

    #[test]
    fn solid_angle_of_hemisphere() {
        // A 180°×180° FOV is exactly a hemisphere (2π steradians), and
        // wider requests clamp to it.
        let sr = fov_solid_angle(Radians(PI), Radians(PI));
        assert!((sr - 2.0 * PI).abs() < 1e-9);
        assert!((fov_solid_angle(Radians(2.0 * PI), Radians(PI)) - sr).abs() < 1e-12);
    }

    #[test]
    fn step_towards_does_not_overshoot() {
        let next = step_towards(Vec3::FORWARD, Vec3::RIGHT, Radians(10.0));
        assert!((next - Vec3::RIGHT).norm() < 1e-12);
    }

    #[test]
    fn cap_fractions() {
        assert!((cap_area_fraction(Radians(PI)) - 1.0).abs() < 1e-12);
        assert!((cap_area_fraction(Radians(FRAC_PI_2)) - 0.5).abs() < 1e-12);
        assert!(cap_area_fraction(Radians(0.0)).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_unit_vector_roundtrip(lon in -3.1f64..3.1, lat in -1.55f64..1.55) {
            let c = SphericalCoord::new(Radians(lon), Radians(lat));
            let back = SphericalCoord::from_vector(c.to_unit_vector()).unwrap();
            // acos near 1.0 amplifies f64 rounding to ~1e-8; allow 1e-6.
            prop_assert!(c.great_circle_angle(back).0 < 1e-6);
        }

        #[test]
        fn prop_great_circle_triangle_inequality(
            a_lon in -3.0f64..3.0, a_lat in -1.5f64..1.5,
            b_lon in -3.0f64..3.0, b_lat in -1.5f64..1.5,
            c_lon in -3.0f64..3.0, c_lat in -1.5f64..1.5,
        ) {
            let a = SphericalCoord::new(Radians(a_lon), Radians(a_lat));
            let b = SphericalCoord::new(Radians(b_lon), Radians(b_lat));
            let c = SphericalCoord::new(Radians(c_lon), Radians(c_lat));
            prop_assert!(a.great_circle_angle(c).0 <= a.great_circle_angle(b).0 + b.great_circle_angle(c).0 + 1e-6);
        }

        #[test]
        fn prop_step_towards_advances(step in 0.001f64..0.5) {
            let target = Vec3::RIGHT;
            let next = step_towards(Vec3::FORWARD, target, Radians(step));
            let before = Vec3::FORWARD.dot(target);
            let after = next.dot(target);
            prop_assert!(after > before);
            prop_assert!((next.norm() - 1.0).abs() < 1e-9);
        }
    }
}
