//! Small fixed-size vectors.
//!
//! [`Vec3`] is the workhorse of the projection pipeline: view rays, sphere
//! points and object directions are all unit `Vec3`s in a right-handed
//! view space where `+x` is right, `+y` is up and `+z` is forward.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Index, Mul, Neg, Sub, SubAssign};

use crate::MathError;

/// A 2-D vector, used for planar frame coordinates `(u, v)`.
///
/// # Example
///
/// ```
/// use evr_math::Vec2;
/// let p = Vec2::new(3.0, 4.0);
/// assert!((p.norm() - 5.0).abs() < 1e-12);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Vec2 {
    /// Horizontal component.
    pub x: f64,
    /// Vertical component.
    pub y: f64,
}

impl Vec2 {
    /// Creates a vector from components.
    pub fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Euclidean length.
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Dot product.
    pub fn dot(self, rhs: Vec2) -> f64 {
        self.x * rhs.x + self.y * rhs.y
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// A 3-D vector in right-handed view space (`+x` right, `+y` up, `+z` forward).
///
/// # Example
///
/// ```
/// use evr_math::Vec3;
/// let v = Vec3::new(1.0, 2.0, 2.0);
/// assert!((v.norm() - 3.0).abs() < 1e-12);
/// assert!((v.normalized().unwrap().norm() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Vec3 {
    /// Rightward component.
    pub x: f64,
    /// Upward component.
    pub y: f64,
    /// Forward component.
    pub z: f64,
}

impl Vec3 {
    /// The forward axis `(0, 0, 1)` — the direction an identity head pose views.
    pub const FORWARD: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 1.0 };
    /// The up axis `(0, 1, 0)`.
    pub const UP: Vec3 = Vec3 { x: 0.0, y: 1.0, z: 0.0 };
    /// The right axis `(1, 0, 0)`.
    pub const RIGHT: Vec3 = Vec3 { x: 1.0, y: 0.0, z: 0.0 };
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };

    /// Creates a vector from components.
    pub fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Euclidean length.
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean length (avoids the square root).
    pub fn norm_squared(self) -> f64 {
        self.dot(self)
    }

    /// Dot product.
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product (right-handed).
    ///
    /// ```
    /// use evr_math::Vec3;
    /// assert_eq!(Vec3::RIGHT.cross(Vec3::UP), Vec3::FORWARD);
    /// ```
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// Returns the unit vector pointing in the same direction.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::ZeroVector`] if the norm is smaller than `1e-12`.
    pub fn normalized(self) -> Result<Vec3, MathError> {
        let n = self.norm();
        if n < 1e-12 {
            Err(MathError::ZeroVector)
        } else {
            Ok(self / n)
        }
    }

    /// Angle between two vectors in radians, in `[0, π]`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::ZeroVector`] if either vector is (near-)zero.
    pub fn angle_to(self, rhs: Vec3) -> Result<f64, MathError> {
        let a = self.normalized()?;
        let b = rhs.normalized()?;
        Ok(a.dot(b).clamp(-1.0, 1.0).acos())
    }

    /// Component-wise linear interpolation: `self * (1 - t) + rhs * t`.
    pub fn lerp(self, rhs: Vec3, t: f64) -> Vec3 {
        self * (1.0 - t) + rhs * t
    }

    /// Spherical linear interpolation between two unit vectors.
    ///
    /// Falls back to normalized lerp when the vectors are nearly parallel.
    /// Used by the behaviour model to move gaze smoothly between targets.
    pub fn slerp(self, rhs: Vec3, t: f64) -> Vec3 {
        let dot = self.dot(rhs).clamp(-1.0, 1.0);
        let theta = dot.acos();
        if theta < 1e-6 {
            return self.lerp(rhs, t).normalized().unwrap_or(self);
        }
        let sin_theta = theta.sin();
        let a = ((1.0 - t) * theta).sin() / sin_theta;
        let b = (t * theta).sin() / sin_theta;
        self * a + rhs * b
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;

    /// Indexes components in `x, y, z` order.
    ///
    /// # Panics
    ///
    /// Panics if `idx > 2`.
    fn index(&self, idx: usize) -> &f64 {
        match idx {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {idx}"),
        }
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cross_products_follow_right_hand_rule() {
        assert_eq!(Vec3::RIGHT.cross(Vec3::UP), Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(Vec3::UP.cross(Vec3::FORWARD), Vec3::RIGHT);
        assert_eq!(Vec3::FORWARD.cross(Vec3::RIGHT), Vec3::UP);
    }

    #[test]
    fn normalize_zero_vector_errors() {
        assert_eq!(Vec3::ZERO.normalized(), Err(MathError::ZeroVector));
    }

    #[test]
    fn angle_between_axes_is_right_angle() {
        let a = Vec3::RIGHT.angle_to(Vec3::UP).unwrap();
        assert!((a - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn slerp_endpoints() {
        let a = Vec3::FORWARD;
        let b = Vec3::RIGHT;
        assert!((a.slerp(b, 0.0) - a).norm() < 1e-12);
        assert!((a.slerp(b, 1.0) - b).norm() < 1e-12);
    }

    #[test]
    fn slerp_midpoint_of_quarter_turn() {
        let m = Vec3::FORWARD.slerp(Vec3::RIGHT, 0.5);
        let expect = Vec3::new(1.0, 0.0, 1.0).normalized().unwrap();
        assert!((m - expect).norm() < 1e-12);
    }

    #[test]
    fn slerp_handles_nearly_parallel() {
        let a = Vec3::FORWARD;
        let b = Vec3::new(1e-9, 0.0, 1.0).normalized().unwrap();
        let m = a.slerp(b, 0.5);
        assert!((m.norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "index out of range")]
    fn index_out_of_range_panics() {
        let _ = Vec3::ZERO[3];
    }

    proptest! {
        #[test]
        fn prop_normalized_is_unit(x in -100.0f64..100.0, y in -100.0f64..100.0, z in -100.0f64..100.0) {
            let v = Vec3::new(x, y, z);
            if let Ok(u) = v.normalized() {
                prop_assert!((u.norm() - 1.0).abs() < 1e-9);
            }
        }

        #[test]
        fn prop_cross_is_orthogonal(ax in -10.0f64..10.0, ay in -10.0f64..10.0, az in -10.0f64..10.0,
                                     bx in -10.0f64..10.0, by in -10.0f64..10.0, bz in -10.0f64..10.0) {
            let a = Vec3::new(ax, ay, az);
            let b = Vec3::new(bx, by, bz);
            let c = a.cross(b);
            prop_assert!(c.dot(a).abs() < 1e-6);
            prop_assert!(c.dot(b).abs() < 1e-6);
        }

        #[test]
        fn prop_slerp_stays_unit(t in 0.0f64..1.0, yaw in -3.0f64..3.0) {
            let a = Vec3::FORWARD;
            let b = Vec3::new(yaw.sin(), 0.0, yaw.cos());
            let m = a.slerp(b, t);
            prop_assert!((m.norm() - 1.0).abs() < 1e-6);
        }
    }
}
