//! Exporters: JSONL event dump, Prometheus text exposition, and a
//! human-readable end-of-run summary table.
//!
//! Everything here is hand-rolled over `std::fmt::Write` so the crate
//! stays dependency-free. JSON strings are escaped per RFC 8259;
//! numbers use Rust's shortest-roundtrip `Display` for `f64`.

use std::fmt::Write as _;

use crate::metrics::MetricSnapshot;
use crate::tracer::Event;

/// Escapes `s` as the body of a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON-safe number (JSON has no NaN/inf).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// One JSON object per line for each trace event, oldest first.
pub(crate) fn events_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        let _ = writeln!(
            out,
            "{{\"ts_ns\":{},\"kind\":\"{}\",\"name\":\"{}\",\"frame\":{},\"segment\":{},\"value\":{}}}",
            e.ts_ns,
            e.kind.label(),
            json_escape(e.name),
            e.frame,
            e.segment,
            json_num(e.value),
        );
    }
    out
}

/// Prometheus-style text exposition of every registered metric.
///
/// Counters render as `name value`, gauges likewise, histograms as
/// cumulative `name_bucket{le="..."}` series plus `name_sum` and
/// `name_count`, each preceded by a `# TYPE` line.
pub(crate) fn prometheus(metrics: &[(String, MetricSnapshot)]) -> String {
    let mut out = String::new();
    for (name, snap) in metrics {
        match snap {
            MetricSnapshot::Counter(v) => {
                let _ = writeln!(out, "# TYPE {name} counter");
                let _ = writeln!(out, "{name} {v}");
            }
            MetricSnapshot::Gauge(v) => {
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(out, "{name} {v}");
            }
            MetricSnapshot::Histogram(h) => {
                let _ = writeln!(out, "# TYPE {name} histogram");
                let mut cumulative = 0u64;
                for (bound, count) in h.bounds.iter().zip(&h.buckets) {
                    cumulative += count;
                    let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
                }
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
                let _ = writeln!(out, "{name}_sum {}", h.sum);
                let _ = writeln!(out, "{name}_count {}", h.count);
            }
        }
    }
    out
}

/// Human-readable end-of-run summary table.
pub(crate) fn summary(
    metrics: &[(String, MetricSnapshot)],
    events_recorded: usize,
    events_dropped: u64,
) -> String {
    let name_width = metrics
        .iter()
        .map(|(n, _)| n.len())
        .chain(std::iter::once("metric".len()))
        .max()
        .unwrap_or(6);

    let mut out = String::new();
    let _ = writeln!(out, "{:<name_width$}  {:>14}  detail", "metric", "value");
    let _ = writeln!(out, "{}  {}  {}", "-".repeat(name_width), "-".repeat(14), "-".repeat(30));
    for (name, snap) in metrics {
        match snap {
            MetricSnapshot::Counter(v) => {
                let _ = writeln!(out, "{name:<name_width$}  {v:>14}  counter");
            }
            MetricSnapshot::Gauge(v) => {
                let _ = writeln!(out, "{name:<name_width$}  {:>14}  gauge", format!("{v:.6}"));
            }
            MetricSnapshot::Histogram(h) => {
                let _ = writeln!(
                    out,
                    "{name:<name_width$}  {:>14}  histogram mean={:.6} p50<={} p95<={}",
                    h.count,
                    h.mean(),
                    h.quantile(0.50),
                    h.quantile(0.95),
                );
            }
        }
    }
    let _ = writeln!(
        out,
        "trace: {events_recorded} events retained, {events_dropped} dropped (ring full)"
    );
    out
}

/// Machine-readable run report: one JSON object with metric snapshots
/// and trace totals, suitable for writing next to experiment outputs.
pub(crate) fn report_json(
    label: &str,
    metrics: &[(String, MetricSnapshot)],
    events_recorded: usize,
    events_dropped: u64,
) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"label\":\"{}\",", json_escape(label));

    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut histograms = Vec::new();
    for (name, snap) in metrics {
        match snap {
            MetricSnapshot::Counter(v) => {
                counters.push(format!("\"{}\":{}", json_escape(name), v));
            }
            MetricSnapshot::Gauge(v) => {
                gauges.push(format!("\"{}\":{}", json_escape(name), json_num(*v)));
            }
            MetricSnapshot::Histogram(h) => {
                let buckets: Vec<String> = h
                    .bounds
                    .iter()
                    .zip(&h.buckets)
                    .map(|(b, c)| format!("[{},{}]", json_num(*b), c))
                    .collect();
                // `mean` (sum/count) is exact where the bucket-derived
                // quantiles are quantized to bucket upper bounds.
                histograms.push(format!(
                    "\"{}\":{{\"count\":{},\"sum\":{},\"mean\":{},\"overflow\":{},\"buckets\":[{}]}}",
                    json_escape(name),
                    h.count,
                    json_num(h.sum),
                    json_num(h.mean()),
                    h.buckets.last().copied().unwrap_or(0),
                    buckets.join(","),
                ));
            }
        }
    }
    let _ = write!(out, "\"counters\":{{{}}},", counters.join(","));
    let _ = write!(out, "\"gauges\":{{{}}},", gauges.join(","));
    let _ = write!(out, "\"histograms\":{{{}}},", histograms.join(","));
    let _ = write!(
        out,
        "\"trace\":{{\"events_recorded\":{events_recorded},\"events_dropped\":{events_dropped}}}}}"
    );
    out.push('\n');
    out
}
