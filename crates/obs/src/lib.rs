//! # evr-obs — zero-dependency tracing + metrics for the EVR pipeline
//!
//! This crate is the observability layer threaded through the playback
//! pipeline: a lock-cheap metrics registry (counters, gauges,
//! fixed-bucket histograms), a structured span/event tracer with a
//! bounded ring buffer, and three exporters (JSONL event dump,
//! Prometheus-style text exposition, human-readable summary table).
//!
//! The entry point is [`Observer`], a cheaply clonable handle that is
//! either *enabled* (backed by a shared registry + tracer) or a *no-op*
//! (`Observer::noop()`, the default). Every recording method on a no-op
//! observer — and on any handle obtained from one — is a branch on an
//! `Option` that is `None`, so uninstrumented runs pay effectively
//! nothing. Instrumented code takes an `Observer` (or a handle
//! pre-resolved from one) and never needs to know which kind it holds.
//!
//! ```
//! use evr_obs::Observer;
//!
//! let obs = Observer::enabled();
//! let frames = obs.counter("evr_frames_total");
//! let latency = obs.histogram("evr_frame_seconds", &[1e-4, 1e-3, 1e-2]);
//! for frame in 0..3 {
//!     let _span = obs.span("frame", frame, 0);
//!     frames.inc();
//!     latency.observe(2e-4);
//! }
//! assert_eq!(frames.get(), 3);
//! assert!(obs.prometheus().contains("evr_frames_total 3"));
//! assert_eq!(obs.events().len(), 6); // begin + end per frame
//! ```

mod export;
mod metrics;
pub mod timeline;
mod tracer;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricSnapshot};
pub use timeline::{Timeline, TimelineEvent, TraceCtx, DEFAULT_TIMELINE_CAPACITY};
pub use tracer::{Event, EventKind};

use std::io;
use std::path::Path;
use std::sync::Arc;

/// Default number of trace events retained before the ring overwrites
/// the oldest.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// Default latency bucket bounds in seconds (1 µs .. 100 ms), for
/// frame-scale processing-time histograms.
pub const LATENCY_BOUNDS_S: [f64; 15] =
    [1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 5e-2, 1e-1];

/// Canonical metric and span names, so the crates instrumenting the
/// pipeline and the tests/exporters reading it agree on spelling.
pub mod names {
    // Playback session (evr-client).
    pub const FRAMES: &str = "evr_frames_total";
    pub const FOV_HITS: &str = "evr_fov_hits_total";
    pub const FOV_MISSES: &str = "evr_fov_misses_total";
    pub const FALLBACK_FRAMES: &str = "evr_fallback_frames_total";
    pub const REBUFFER_EVENTS: &str = "evr_rebuffer_events_total";
    pub const REBUFFER_SECONDS: &str = "evr_rebuffer_seconds_total";
    pub const SEGMENTS: &str = "evr_segments_total";
    pub const FETCH_BYTES: &str = "evr_segment_fetch_bytes_total";
    pub const FRAME_SECONDS: &str = "evr_frame_process_seconds";
    pub const PT_GPU_FRAMES: &str = "evr_pt_gpu_frames_total";
    pub const PT_PTE_FRAMES: &str = "evr_pt_pte_frames_total";

    // Fault injection / resilience (evr-client + evr-faults).
    pub const FAULT_RETRIES: &str = "evr_fault_retries_total";
    pub const FAULT_TIMEOUTS: &str = "evr_fault_timeouts_total";
    pub const DEGRADED_FRAMES: &str = "evr_degraded_frames_total";
    pub const FROZEN_FRAMES: &str = "evr_frozen_frames_total";
    pub const BACKOFF_SECONDS: &str = "evr_fault_backoff_seconds_total";
    pub const FAULT_STALL_SECONDS: &str = "evr_fault_stall_seconds";

    // ABR (evr-client).
    pub const ABR_SWITCHES: &str = "evr_abr_ladder_switches_total";
    pub const ABR_STALLS: &str = "evr_abr_stalls_total";

    // SAS server (evr-sas).
    pub const SAS_FOV_REQUESTS: &str = "evr_sas_fov_requests_total";
    pub const SAS_ORIGINAL_REQUESTS: &str = "evr_sas_original_requests_total";
    pub const SAS_NOT_FOUND: &str = "evr_sas_not_found_total";
    pub const SAS_FOV_BYTES: &str = "evr_sas_fov_bytes_total";
    pub const SAS_ORIGINAL_BYTES: &str = "evr_sas_original_bytes_total";
    pub const SAS_STORE_SEGMENTS: &str = "evr_sas_store_segments";

    // Shared FOV pre-render store (evr-sas). Hits/misses/evictions are
    // cumulative store counters mirrored as gauges (the store keeps the
    // source of truth so every holder of a clone reports one number).
    pub const SAS_PRERENDER_HITS: &str = "evr_sas_prerender_hits";
    pub const SAS_PRERENDER_MISSES: &str = "evr_sas_prerender_misses";
    pub const SAS_PRERENDER_EVICTIONS: &str = "evr_sas_prerender_evictions";
    pub const SAS_PRERENDER_RESIDENT_BYTES: &str = "evr_sas_prerender_resident_bytes";
    pub const SAS_PRERENDER_ENTRIES: &str = "evr_sas_prerender_entries";
    pub const SAS_PRERENDER_COALESCED: &str = "evr_sas_prerender_coalesced_total";
    pub const SAS_PRERENDER_RECONSTRUCTS: &str = "evr_sas_prerender_reconstructs_total";
    pub const SAS_PRERENDER_DELTA_ENTRIES: &str = "evr_sas_prerender_delta_entries";

    // Sharded serving front (evr-sas front.rs).
    pub const SAS_FRONT_REQUESTS: &str = "evr_sas_front_requests_total";
    pub const SAS_FRONT_SERVED: &str = "evr_sas_front_served_total";
    pub const SAS_FRONT_SHED: &str = "evr_sas_front_shed_total";
    pub const SAS_FRONT_UNAVAILABLE: &str = "evr_sas_front_unavailable_total";
    pub const SAS_FRONT_COALESCED: &str = "evr_sas_front_coalesced_total";
    pub const SAS_FRONT_BREAKER_TRIPS: &str = "evr_sas_front_breaker_trips_total";
    pub const SAS_FRONT_PEAK_QUEUE_DEPTH: &str = "evr_sas_front_peak_queue_depth";

    // Parallel segment ingest (evr-sas).
    pub const INGEST_SEGMENTS: &str = "evr_ingest_segments_total";
    pub const INGEST_DEGRADED_SEGMENTS: &str = "evr_ingest_degraded_segments_total";
    pub const INGEST_WORKERS: &str = "evr_ingest_workers";
    pub const INGEST_WALL_SECONDS: &str = "evr_ingest_wall_seconds";

    // PTE accelerator (evr-pte).
    pub const PTE_FRAMES: &str = "evr_pte_frames_total";
    pub const PTE_ACTIVE_CYCLES: &str = "evr_pte_active_cycles_total";
    pub const PTE_STALL_CYCLES: &str = "evr_pte_stall_cycles_total";
    pub const PTE_PMEM_HITS: &str = "evr_pte_pmem_hits_total";
    pub const PTE_PMEM_MISSES: &str = "evr_pte_pmem_misses_total";
    pub const PTE_DRAM_READ_BYTES: &str = "evr_pte_dram_read_bytes_total";
    pub const PTE_DRAM_WRITE_BYTES: &str = "evr_pte_dram_write_bytes_total";

    // PT fast path (evr-projection sampling-map LUT, via evr-pte).
    pub const PT_LUT_HITS: &str = "evr_pt_lut_hits_total";
    pub const PT_LUT_MISSES: &str = "evr_pt_lut_misses_total";
    pub const PT_RENDER_SECONDS: &str = "evr_pt_render_seconds";

    // Fleet runner (evr-core).
    pub const FLEET_USERS: &str = "evr_fleet_users_total";
    pub const FLEET_WALL_SECONDS: &str = "evr_fleet_wall_seconds";

    // Per-worker fleet lanes, named `evr_fleet_worker_users_total_<w>`
    // and `evr_fleet_worker_busy_seconds_<w>` via the helpers below.
    pub const FLEET_WORKER_USERS_PREFIX: &str = "evr_fleet_worker_users_total_";
    pub const FLEET_WORKER_BUSY_PREFIX: &str = "evr_fleet_worker_busy_seconds_";

    /// Counter name for one fleet worker's completed-user count.
    pub fn fleet_worker_users(worker: u32) -> String {
        format!("{FLEET_WORKER_USERS_PREFIX}{worker}")
    }

    /// Gauge name for one fleet worker's busy (non-idle) seconds.
    pub fn fleet_worker_busy_seconds(worker: u32) -> String {
        format!("{FLEET_WORKER_BUSY_PREFIX}{worker}")
    }

    // Observability self-monitoring: events lost to the bounded rings.
    // Mirrored into the registry at snapshot time so every exporter
    // reports whether the trace is complete.
    pub const OBS_SPANS_DROPPED: &str = "evr_obs_spans_dropped_total";
    pub const OBS_TIMELINE_DROPPED: &str = "evr_obs_timeline_events_dropped_total";

    // Timeline stage names (crate::timeline). The pipeline stages reuse
    // the same labels as their `evr_pipeline_stage_seconds_*` histograms.
    pub const TIMELINE_USER: &str = "user";
    pub const TIMELINE_SAS_FETCH: &str = "sas_fetch_fov";
    pub const TIMELINE_INGEST_SEGMENT: &str = "ingest_segment";
    pub const TIMELINE_FRONT_SERVE: &str = "front_serve";

    // Staged segment pipeline (evr-client): one wall-clock histogram per
    // stage, named `evr_pipeline_stage_seconds_<stage>` via
    // [`pipeline_stage_seconds`].
    pub const PIPELINE_STAGE_SECONDS_PREFIX: &str = "evr_pipeline_stage_seconds_";

    /// Histogram name for one pipeline stage label.
    pub fn pipeline_stage_seconds(stage: &str) -> String {
        let mut name = String::with_capacity(PIPELINE_STAGE_SECONDS_PREFIX.len() + stage.len());
        name.push_str(PIPELINE_STAGE_SECONDS_PREFIX);
        name.push_str(stage);
        name
    }

    // Energy ledger (evr-energy): one gauge per component, named
    // `evr_energy_joules_<component>` via [`energy_gauge`].
    pub const ENERGY_JOULES_PREFIX: &str = "evr_energy_joules_";

    /// Gauge name for one energy component label (lowercased).
    pub fn energy_gauge(component: &str) -> String {
        let mut name = String::with_capacity(ENERGY_JOULES_PREFIX.len() + component.len());
        name.push_str(ENERGY_JOULES_PREFIX);
        name.extend(component.chars().map(|c| c.to_ascii_lowercase()));
        name
    }

    // Span / mark names used by the playback session tracer.
    pub const SPAN_SEGMENT: &str = "segment";
    pub const SPAN_FRAME: &str = "frame";
    pub const SPAN_FOV_CHECK: &str = "fov_check";
    pub const SPAN_PT: &str = "perspective_transform";
    pub const MARK_FOV_HIT: &str = "fov_hit";
    pub const MARK_FOV_MISS: &str = "fov_miss";
    pub const MARK_REBUFFER: &str = "rebuffer";
    pub const MARK_DEGRADE: &str = "degrade";
    pub const MARK_FAULT_TIMEOUT: &str = "fault_timeout";
    pub const MARK_FRONT_SHED: &str = "front_shed";
    pub const MARK_FRONT_UNAVAILABLE: &str = "front_unavailable";
}

#[derive(Debug)]
struct Inner {
    registry: metrics::Registry,
    tracer: tracer::Tracer,
}

/// Handle to the observability layer: clonable, shareable across
/// threads, and a no-op by default.
///
/// See the crate docs for usage; construction goes through
/// [`Observer::enabled`], [`Observer::with_trace_capacity`], or
/// [`Observer::noop`].
#[derive(Debug, Clone, Default)]
pub struct Observer {
    inner: Option<Arc<Inner>>,
    /// The per-worker timeline profiler, no-op unless attached with
    /// [`Observer::with_timeline`]. Lives beside `inner` so the handle
    /// rides along wherever the observer is threaded.
    timeline: Timeline,
}

impl Observer {
    /// An observer that records nothing and costs (almost) nothing.
    pub fn noop() -> Self {
        Observer { inner: None, timeline: Timeline::noop() }
    }

    /// An enabled observer with the default trace capacity.
    pub fn enabled() -> Self {
        Self::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// An enabled observer retaining at most `capacity` trace events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_trace_capacity(capacity: usize) -> Self {
        Observer {
            inner: Some(Arc::new(Inner {
                registry: metrics::Registry::default(),
                tracer: tracer::Tracer::new(capacity),
            })),
            timeline: Timeline::noop(),
        }
    }

    /// This observer with `timeline` attached; subsequent clones share
    /// it. The timeline is opt-in (profiling runs, benches) so plain
    /// instrumented runs pay nothing for it.
    #[must_use]
    pub fn with_timeline(mut self, timeline: Timeline) -> Self {
        self.timeline = timeline;
        self
    }

    /// The attached per-worker timeline (no-op unless one was attached
    /// via [`Observer::with_timeline`]).
    #[inline]
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Resolves (registering on first use) the counter named `name`.
    /// Detached (no-op) when the observer is a no-op.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.inner.as_ref().map(|i| i.registry.counter(name)))
    }

    /// Resolves (registering on first use) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.inner.as_ref().map(|i| i.registry.gauge(name)))
    }

    /// Resolves (registering on first use) the histogram named `name`
    /// with ascending bucket `bounds`.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        Histogram(self.inner.as_ref().map(|i| i.registry.histogram(name, bounds)))
    }

    /// Opens a timed span; the guard records `SpanBegin` now and
    /// `SpanEnd` (with the duration in seconds as its value) on drop.
    /// Use -1 for `frame`/`segment` when the span is not scoped to one.
    #[inline]
    pub fn span(&self, name: &'static str, frame: i64, segment: i64) -> Span {
        let start_ns = match &self.inner {
            Some(inner) => {
                inner.tracer.record(EventKind::SpanBegin, name, frame, segment, 0.0);
                inner.tracer.now_ns()
            }
            None => 0,
        };
        Span { inner: self.inner.clone(), name, frame, segment, start_ns }
    }

    /// Records a point event carrying `value`.
    #[inline]
    pub fn mark(&self, name: &'static str, frame: i64, segment: i64, value: f64) {
        if let Some(inner) = &self.inner {
            inner.tracer.record(EventKind::Mark, name, frame, segment, value);
        }
    }

    /// Trace events in oldest-to-newest order (empty for a no-op).
    pub fn events(&self) -> Vec<Event> {
        self.inner.as_ref().map_or_else(Vec::new, |i| i.tracer.events())
    }

    /// Events overwritten because the trace ring was full.
    pub fn events_dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.tracer.dropped())
    }

    /// Maximum number of retained trace events (0 for a no-op).
    pub fn trace_capacity(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.tracer.capacity())
    }

    /// Name-sorted snapshot of every registered metric (empty for a
    /// no-op).
    ///
    /// Ring-buffer losses are mirrored into the registry here
    /// ([`names::OBS_SPANS_DROPPED`], and
    /// [`names::OBS_TIMELINE_DROPPED`] when a timeline is attached), so
    /// every exporter reports whether the trace window is complete
    /// instead of dropping events silently.
    pub fn metrics(&self) -> Vec<(String, MetricSnapshot)> {
        self.inner.as_ref().map_or_else(Vec::new, |i| {
            let raise_to = |name: &str, value: u64| {
                let c = i.registry.counter(name);
                let cur = c.get();
                if value > cur {
                    c.add(value - cur);
                }
            };
            raise_to(names::OBS_SPANS_DROPPED, i.tracer.dropped());
            if self.timeline.is_enabled() {
                raise_to(names::OBS_TIMELINE_DROPPED, self.timeline.dropped());
            }
            i.registry.snapshot()
        })
    }

    /// Trace events as JSON Lines, one object per event.
    pub fn jsonl(&self) -> String {
        export::events_jsonl(&self.events())
    }

    /// Prometheus-style text exposition of every registered metric.
    pub fn prometheus(&self) -> String {
        export::prometheus(&self.metrics())
    }

    /// Human-readable end-of-run summary table.
    pub fn summary(&self) -> String {
        export::summary(&self.metrics(), self.events().len(), self.events_dropped())
    }

    /// Machine-readable run report as a single JSON object.
    pub fn report_json(&self, label: &str) -> String {
        export::report_json(label, &self.metrics(), self.events().len(), self.events_dropped())
    }

    /// Writes [`Observer::jsonl`] to `path`.
    pub fn write_jsonl(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.jsonl())
    }

    /// Writes [`Observer::report_json`] to `path`.
    pub fn write_report(&self, path: impl AsRef<Path>, label: &str) -> io::Result<()> {
        std::fs::write(path, self.report_json(label))
    }
}

/// Guard for a timed pipeline stage; see [`Observer::span`].
#[derive(Debug)]
pub struct Span {
    inner: Option<Arc<Inner>>,
    name: &'static str,
    frame: i64,
    segment: i64,
    start_ns: u64,
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        if let Some(inner) = &self.inner {
            let elapsed_s = inner.tracer.now_ns().saturating_sub(self.start_ns) as f64 / 1e9;
            inner.tracer.record(EventKind::SpanEnd, self.name, self.frame, self.segment, elapsed_s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_observer_records_nothing() {
        let obs = Observer::noop();
        let c = obs.counter("c");
        c.add(10);
        obs.gauge("g").set(1.0);
        obs.histogram("h", &[1.0]).observe(0.5);
        obs.mark("m", 0, 0, 1.0);
        drop(obs.span("s", 0, 0));
        assert_eq!(c.get(), 0);
        assert!(obs.metrics().is_empty());
        assert!(obs.events().is_empty());
        assert!(!obs.is_enabled());
        assert!(obs.prometheus().is_empty());
    }

    #[test]
    fn default_is_noop() {
        assert!(!Observer::default().is_enabled());
    }

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let obs = Observer::enabled();
        let c = obs.counter("sat");
        c.add(u64::MAX - 1);
        c.add(5);
        assert_eq!(c.get(), u64::MAX);
        c.inc();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn gauge_set_and_add() {
        let obs = Observer::enabled();
        let g = obs.gauge("g");
        g.set(1.5);
        g.add(2.25);
        g.add(-0.75);
        assert_eq!(g.get(), 3.0);
    }

    #[test]
    fn histogram_bucket_boundaries_underflow_and_overflow() {
        let obs = Observer::enabled();
        let h = obs.histogram("h", &[1.0, 2.0, 4.0]);
        // Below every bound -> first bucket (Prometheus le semantics).
        h.observe(-7.0);
        h.observe(0.5);
        // Exactly on a bound -> that bound's bucket.
        h.observe(1.0);
        h.observe(2.0);
        // Interior.
        h.observe(3.0);
        // Above every bound -> overflow (+Inf) bucket.
        h.observe(4.0001);
        h.observe(1e12);
        let snap = h.snapshot();
        assert_eq!(snap.buckets, vec![3, 1, 1, 2]);
        assert_eq!(snap.count, 7);
        let expected_sum = -7.0 + 0.5 + 1.0 + 2.0 + 3.0 + 4.0001 + 1e12;
        assert!((snap.sum - expected_sum).abs() < 1e-6);
    }

    #[test]
    fn histogram_quantiles_report_bucket_bounds() {
        let obs = Observer::enabled();
        let h = obs.histogram("q", &[1.0, 2.0, 4.0]);
        for _ in 0..98 {
            h.observe(0.5); // bucket le=1
        }
        h.observe(3.0); // bucket le=4
        h.observe(100.0); // overflow
        let snap = h.snapshot();
        assert_eq!(snap.quantile(0.5), 1.0);
        assert_eq!(snap.quantile(0.99), 4.0);
        // Overflow quantile is clamped to the last finite bound.
        assert_eq!(snap.quantile(1.0), 4.0);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn registry_rejects_kind_collisions() {
        let obs = Observer::enabled();
        obs.counter("same_name");
        obs.gauge("same_name");
    }

    #[test]
    fn registry_dedups_by_name() {
        let obs = Observer::enabled();
        let a = obs.counter("shared");
        let b = obs.counter("shared");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        // One entry for "shared" plus the self-monitoring drop counter
        // mirrored in at snapshot time.
        let metrics = obs.metrics();
        assert_eq!(metrics.iter().filter(|(n, _)| n == "shared").count(), 1);
        assert_eq!(metrics.len(), 2);
    }

    #[test]
    fn snapshot_mirrors_ring_drops_as_counters() {
        let obs = Observer::with_trace_capacity(2);
        for i in 0..5 {
            obs.mark("m", i, -1, 0.0);
        }
        assert_eq!(obs.counter(names::OBS_SPANS_DROPPED).get(), 0, "not yet snapshotted");
        let _ = obs.metrics();
        assert_eq!(obs.counter(names::OBS_SPANS_DROPPED).get(), 3);
        // Repeated snapshots don't double-count.
        let _ = obs.metrics();
        assert_eq!(obs.counter(names::OBS_SPANS_DROPPED).get(), 3);
        // No timeline attached: its drop counter is not registered.
        assert!(obs.metrics().iter().all(|(n, _)| n != names::OBS_TIMELINE_DROPPED));

        let timed = Observer::enabled().with_timeline(Timeline::bounded(2));
        for _ in 0..7 {
            timed.timeline().record("s", TraceCtx::anonymous(), 0, 1);
        }
        let metrics = timed.metrics();
        assert!(metrics
            .iter()
            .any(|(n, s)| n == names::OBS_TIMELINE_DROPPED && *s == MetricSnapshot::Counter(5)));
        assert!(timed.prometheus().contains("evr_obs_timeline_events_dropped_total 5"));
    }

    #[test]
    fn timeline_is_noop_unless_attached_and_clones_share_it() {
        let obs = Observer::enabled();
        assert!(!obs.timeline().is_enabled());
        let obs = obs.with_timeline(Timeline::bounded(8));
        let clone = obs.clone();
        clone.timeline().record("s", TraceCtx::for_user(1), 0, 10);
        assert_eq!(obs.timeline().events().len(), 1);
    }

    #[test]
    fn ring_buffer_wraps_and_counts_drops() {
        let obs = Observer::with_trace_capacity(4);
        for i in 0..10 {
            obs.mark("m", i, -1, i as f64);
        }
        let events = obs.events();
        assert_eq!(events.len(), 4);
        // Oldest-to-newest order, holding the newest window (frames 6..9).
        let frames: Vec<i64> = events.iter().map(|e| e.frame).collect();
        assert_eq!(frames, vec![6, 7, 8, 9]);
        assert_eq!(obs.events_dropped(), 6);
        assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn spans_emit_paired_events_with_duration() {
        let obs = Observer::enabled();
        {
            let _outer = obs.span("outer", 3, 7);
            obs.mark("inside", 3, 7, 42.0);
        }
        let events = obs.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, EventKind::SpanBegin);
        assert_eq!(events[0].name, "outer");
        assert_eq!(events[1].kind, EventKind::Mark);
        assert_eq!(events[1].value, 42.0);
        assert_eq!(events[2].kind, EventKind::SpanEnd);
        assert_eq!((events[2].frame, events[2].segment), (3, 7));
        assert!(events[2].value >= 0.0);
    }

    #[test]
    fn jsonl_is_one_object_per_event() {
        let obs = Observer::enabled();
        obs.mark("a", 0, 1, 2.5);
        drop(obs.span("b", -1, -1));
        let jsonl = obs.jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "bad line: {line}");
        }
        assert!(lines[0].contains("\"kind\":\"mark\""));
        assert!(lines[0].contains("\"value\":2.5"));
        assert!(lines[1].contains("\"kind\":\"span_begin\""));
        assert!(lines[2].contains("\"kind\":\"span_end\""));
    }

    #[test]
    fn prometheus_exposition_shape() {
        let obs = Observer::enabled();
        obs.counter("c_total").add(3);
        obs.gauge("g").set(2.5);
        obs.histogram("h", &[1.0, 2.0]).observe(1.5);
        let text = obs.prometheus();
        assert!(text.contains("# TYPE c_total counter\nc_total 3\n"));
        assert!(text.contains("# TYPE g gauge\ng 2.5\n"));
        assert!(text.contains("# TYPE h histogram\n"));
        assert!(text.contains("h_bucket{le=\"1\"} 0\n"));
        assert!(text.contains("h_bucket{le=\"2\"} 1\n"));
        assert!(text.contains("h_bucket{le=\"+Inf\"} 1\n"));
        assert!(text.contains("h_sum 1.5\n"));
        assert!(text.contains("h_count 1\n"));
    }

    #[test]
    fn summary_lists_every_metric_and_trace_totals() {
        let obs = Observer::with_trace_capacity(2);
        obs.counter("frames").add(12);
        obs.gauge("joules").set(0.25);
        obs.histogram("lat", &[1.0]).observe(0.5);
        for i in 0..5 {
            obs.mark("m", i, -1, 0.0);
        }
        let s = obs.summary();
        assert!(s.contains("frames"));
        assert!(s.contains("joules"));
        assert!(s.contains("lat"));
        assert!(s.contains("2 events retained, 3 dropped"));
    }

    #[test]
    fn report_json_contains_all_sections() {
        let obs = Observer::enabled();
        obs.counter("c").inc();
        obs.gauge("g").set(1.0);
        obs.histogram("h", &[1.0]).observe(2.0);
        let report = obs.report_json("unit \"test\"");
        assert!(report.contains("\"label\":\"unit \\\"test\\\"\""));
        assert!(report.contains("\"counters\":{\"c\":1,\"evr_obs_spans_dropped_total\":0}"));
        assert!(report.contains("\"gauges\":{\"g\":1}"));
        assert!(report.contains("\"mean\":2"));
        assert!(report.contains("\"overflow\":1"));
        assert!(report.contains("\"trace\":{\"events_recorded\":0,\"events_dropped\":0}"));
        assert!(report.ends_with("}\n"));
    }

    #[test]
    fn clones_share_state() {
        let obs = Observer::enabled();
        let clone = obs.clone();
        clone.counter("shared").inc();
        assert_eq!(obs.counter("shared").get(), 1);
        clone.mark("m", 0, 0, 0.0);
        assert_eq!(obs.events().len(), 1);
    }

    #[test]
    fn energy_gauge_names_are_lowercased() {
        assert_eq!(names::energy_gauge("Compute"), "evr_energy_joules_compute");
        assert_eq!(names::energy_gauge("Display"), "evr_energy_joules_display");
    }
}
