//! The metrics registry: counters, gauges and fixed-bucket histograms.
//!
//! Hot-path updates are single atomic operations on pre-resolved handles;
//! the registry's mutex is only taken at registration and export time.
//! Counters saturate at `u64::MAX` instead of wrapping, so a runaway
//! source can never make a total appear small.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Adds `v` to an `AtomicU64` holding `f64` bits.
fn f64_fetch_add(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + v).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(observed) => cur = observed,
        }
    }
}

#[derive(Debug, Default)]
pub(crate) struct CounterCore {
    value: AtomicU64,
}

impl CounterCore {
    pub(crate) fn add(&self, n: u64) {
        let mut cur = self.value.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(n);
            match self.value.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(observed) => cur = observed,
            }
        }
    }

    pub(crate) fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
pub(crate) struct GaugeCore {
    bits: AtomicU64,
}

impl GaugeCore {
    pub(crate) fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    pub(crate) fn add(&self, v: f64) {
        f64_fetch_add(&self.bits, v);
    }

    pub(crate) fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
pub(crate) struct HistogramCore {
    /// Ascending bucket upper bounds; observations land in the first
    /// bucket whose bound is `>= v` (Prometheus `le` semantics), or in
    /// the implicit `+Inf` overflow bucket past the end.
    bounds: Vec<f64>,
    /// `bounds.len() + 1` non-cumulative bucket counts.
    buckets: Vec<AtomicU64>,
    sum_bits: AtomicU64,
    count: AtomicU64,
}

impl HistogramCore {
    fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        assert!(bounds.iter().all(|b| b.is_finite()), "histogram bounds must be finite");
        HistogramCore {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    pub(crate) fn observe(&self, v: f64) {
        let idx = self.bounds.partition_point(|b| *b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        f64_fetch_add(&self.sum_bits, v);
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of one histogram's state.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Ascending bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Non-cumulative bucket counts; the final entry is the `+Inf`
    /// overflow bucket.
    pub buckets: Vec<u64>,
    /// Sum of all observations.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Approximate quantile from the bucket histogram: the upper bound
    /// of the bucket containing the `q`-quantile observation (the last
    /// finite bound when it falls in the overflow bucket).
    ///
    /// **Quantization caveat:** because only bucket *upper bounds* are
    /// returned, every quantile is rounded up to its bucket's bound.
    /// With coarse buckets this systematically over-reports p50/p99 —
    /// observations of 1.1 ms under bounds `[1 ms, 10 ms]` report a
    /// p50 of 10 ms. Treat the result as "no worse than"; for an exact
    /// central tendency use [`HistogramSnapshot::mean`] (`sum/count`),
    /// which the exporters emit alongside the quantiles.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return self
                    .bounds
                    .get(i)
                    .copied()
                    .unwrap_or(*self.bounds.last().expect("non-empty"));
            }
        }
        *self.bounds.last().expect("non-empty")
    }
}

/// A point-in-time copy of one registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricSnapshot {
    /// A monotonic (saturating) event count.
    Counter(u64),
    /// A float value that can move both ways.
    Gauge(f64),
    /// A fixed-bucket distribution.
    Histogram(HistogramSnapshot),
}

#[derive(Debug)]
enum Metric {
    Counter(Arc<CounterCore>),
    Gauge(Arc<GaugeCore>),
    Histogram(Arc<HistogramCore>),
}

/// The metric store behind an enabled observer.
#[derive(Debug, Default)]
pub(crate) struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// Returns the counter registered under `name`, creating it on first
    /// use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub(crate) fn counter(&self, name: &str) -> Arc<CounterCore> {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(CounterCore::default())))
        {
            Metric::Counter(core) => Arc::clone(core),
            _ => panic!("metric {name:?} is already registered with a different kind"),
        }
    }

    /// Returns the gauge registered under `name`, creating it on first
    /// use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub(crate) fn gauge(&self, name: &str) -> Arc<GaugeCore> {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(GaugeCore::default())))
        {
            Metric::Gauge(core) => Arc::clone(core),
            _ => panic!("metric {name:?} is already registered with a different kind"),
        }
    }

    /// Returns the histogram registered under `name`, creating it with
    /// `bounds` on first use (later registrations reuse the original
    /// bounds).
    ///
    /// # Panics
    ///
    /// Panics if `name` is registered as a different kind, or on invalid
    /// `bounds` at first registration.
    pub(crate) fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<HistogramCore> {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(HistogramCore::new(bounds))))
        {
            Metric::Histogram(core) => Arc::clone(core),
            _ => panic!("metric {name:?} is already registered with a different kind"),
        }
    }

    /// Name-sorted snapshot of every registered metric.
    pub(crate) fn snapshot(&self) -> Vec<(String, MetricSnapshot)> {
        let metrics = self.metrics.lock().expect("metrics registry poisoned");
        metrics
            .iter()
            .map(|(name, metric)| {
                let snap = match metric {
                    Metric::Counter(c) => MetricSnapshot::Counter(c.get()),
                    Metric::Gauge(g) => MetricSnapshot::Gauge(g.get()),
                    Metric::Histogram(h) => MetricSnapshot::Histogram(h.snapshot()),
                };
                (name.clone(), snap)
            })
            .collect()
    }
}

/// A counter handle; all methods are no-ops when detached (obtained from
/// a no-op observer).
#[derive(Debug, Clone, Default)]
pub struct Counter(pub(crate) Option<Arc<CounterCore>>);

impl Counter {
    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`, saturating at `u64::MAX`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(core) = &self.0 {
            core.add(n);
        }
    }

    /// Current value (0 when detached).
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |core| core.get())
    }
}

/// A gauge handle; all methods are no-ops when detached.
#[derive(Debug, Clone, Default)]
pub struct Gauge(pub(crate) Option<Arc<GaugeCore>>);

impl Gauge {
    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(core) = &self.0 {
            core.set(v);
        }
    }

    /// Adds `v` (may be negative).
    #[inline]
    pub fn add(&self, v: f64) {
        if let Some(core) = &self.0 {
            core.add(v);
        }
    }

    /// Current value (0 when detached).
    #[inline]
    pub fn get(&self) -> f64 {
        self.0.as_ref().map_or(0.0, |core| core.get())
    }
}

/// A histogram handle; all methods are no-ops when detached.
#[derive(Debug, Clone, Default)]
pub struct Histogram(pub(crate) Option<Arc<HistogramCore>>);

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: f64) {
        if let Some(core) = &self.0 {
            core.observe(v);
        }
    }

    /// A copy of the current state (empty single-bucket snapshot when
    /// detached).
    pub fn snapshot(&self) -> HistogramSnapshot {
        match &self.0 {
            Some(core) => core.snapshot(),
            None => HistogramSnapshot {
                bounds: vec![f64::MAX],
                buckets: vec![0, 0],
                sum: 0.0,
                count: 0,
            },
        }
    }
}
