//! Per-worker timeline profiler: who ran what, when, and for whom.
//!
//! The aggregate histograms in [`crate::metrics`] answer "how long does
//! a stage take on average" but cannot explain *flat scaling*: a fleet
//! that speeds up 1.0x with 8 workers looks identical to a healthy one
//! in every histogram. The [`Timeline`] answers the question the
//! histograms cannot: it records `(worker, stage, t_start, t_end, ctx)`
//! interval events into a bounded ring and exports them in Chrome Trace
//! Event Format, so a run becomes a per-thread Gantt chart in
//! `chrome://tracing` or [Perfetto](https://ui.perfetto.dev) — gaps are
//! idle workers, long bars are stragglers, and interleaving (or its
//! absence) is visible at a glance.
//!
//! Each event carries a [`TraceCtx`] — the user, segment, and request id
//! the work was done for — threaded from `FleetRunner` through the
//! playback pipeline into `SasServer::fetch_fov`. That makes the
//! slowest-N exemplar table possible: not just "p99 of fetch is 4 ms"
//! but "the worst fetch was 4 ms, for user 17, segment 3, request 2041".
//!
//! Like the event tracer, the ring is bounded: a long run degrades to
//! the newest window plus a drop count, never unbounded memory. The
//! whole module follows the crate's no-op discipline — a
//! [`Timeline::noop`] handle makes every recording call a `None` branch.

use std::cell::Cell;
use std::fmt::Write as _;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default number of timeline events retained before the ring
/// overwrites the oldest.
pub const DEFAULT_TIMELINE_CAPACITY: usize = 262_144;

/// Request-scoped trace context: *whose* work an interval represents.
///
/// `Copy` and three words wide, so it is threaded by value through the
/// pipeline stages with no allocation. `-1` / `0` mean "not scoped":
/// a fleet-level span has no segment, an un-traced request no id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCtx {
    /// User index the work belongs to, or -1 when not user-scoped.
    pub user: i64,
    /// Segment index, or -1 when not segment-scoped.
    pub segment: i64,
    /// Server request id (from [`Timeline::next_request_id`]), or 0
    /// when no request is in flight.
    pub request: u64,
}

impl TraceCtx {
    /// A context scoped to nothing — the default for untraced entry
    /// points.
    pub const fn anonymous() -> Self {
        TraceCtx { user: -1, segment: -1, request: 0 }
    }

    /// A context scoped to one fleet user.
    pub const fn for_user(user: i64) -> Self {
        TraceCtx { user, segment: -1, request: 0 }
    }

    /// This context narrowed to one segment.
    pub const fn with_segment(self, segment: i64) -> Self {
        TraceCtx { segment, ..self }
    }
}

/// One recorded interval: `stage` ran on `worker` from `start_ns` to
/// `end_ns` (nanoseconds since the timeline was created) on behalf of
/// `ctx`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineEvent {
    /// Worker lane (thread) the interval ran on; 0 outside any pool.
    pub worker: u32,
    /// Stage name (static so recording never allocates).
    pub stage: &'static str,
    /// Interval start, nanoseconds since the timeline epoch.
    pub start_ns: u64,
    /// Interval end, nanoseconds since the timeline epoch.
    pub end_ns: u64,
    /// Whose work this was.
    pub ctx: TraceCtx,
}

impl TimelineEvent {
    /// Interval duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

thread_local! {
    /// Worker lane of the current thread; set by the fan-out pools
    /// (FleetRunner, SAS ingest) via [`with_worker`], 0 elsewhere.
    static CURRENT_WORKER: Cell<u32> = const { Cell::new(0) };
}

/// Worker lane recorded for events emitted from this thread.
#[inline]
pub fn current_worker() -> u32 {
    CURRENT_WORKER.get()
}

/// Runs `f` with this thread's worker lane set to `worker`, restoring
/// the previous lane afterwards. Worker pools wrap their per-thread
/// loops in this so every timeline event emitted inside lands on the
/// right Gantt row.
pub fn with_worker<R>(worker: u32, f: impl FnOnce() -> R) -> R {
    let prev = CURRENT_WORKER.replace(worker);
    struct Restore(u32);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT_WORKER.set(self.0);
        }
    }
    let _restore = Restore(prev);
    f()
}

#[derive(Debug)]
struct Ring {
    buf: Vec<TimelineEvent>,
    /// Index the next event is written to.
    next: usize,
    /// Number of live events (saturates at capacity).
    len: usize,
}

#[derive(Debug)]
struct TimelineInner {
    ring: Mutex<Ring>,
    capacity: usize,
    dropped: AtomicU64,
    epoch: Instant,
    next_request: AtomicU64,
}

/// Bounded per-worker interval recorder; see the module docs.
///
/// Cheaply clonable (an `Option<Arc>`), no-op by default. All
/// recording methods on a no-op handle are a `None` branch.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    inner: Option<Arc<TimelineInner>>,
}

impl Timeline {
    /// A timeline that records nothing and costs (almost) nothing.
    pub fn noop() -> Self {
        Timeline { inner: None }
    }

    /// An enabled timeline retaining at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "timeline capacity must be positive");
        Timeline {
            inner: Some(Arc::new(TimelineInner {
                // Grown on demand: a default-capacity ring would be a
                // multi-megabyte up-front allocation per observer.
                ring: Mutex::new(Ring { buf: Vec::new(), next: 0, len: 0 }),
                capacity,
                dropped: AtomicU64::new(0),
                epoch: Instant::now(),
                next_request: AtomicU64::new(0),
            })),
        }
    }

    /// An enabled timeline with the default capacity.
    pub fn enabled() -> Self {
        Self::bounded(DEFAULT_TIMELINE_CAPACITY)
    }

    /// Whether this handle records anything. Callers hoist this out of
    /// hot loops and skip the clock reads entirely when false.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Nanoseconds since the timeline was created (0 for a no-op).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.epoch.elapsed().as_nanos() as u64)
    }

    /// A fresh non-zero request id for request-scoped tracing (0 for a
    /// no-op, meaning "unassigned").
    #[inline]
    pub fn next_request_id(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.next_request.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// Records one interval on the current thread's worker lane.
    #[inline]
    pub fn record(&self, stage: &'static str, ctx: TraceCtx, start_ns: u64, end_ns: u64) {
        if let Some(inner) = &self.inner {
            inner.push(TimelineEvent { worker: current_worker(), stage, start_ns, end_ns, ctx });
        }
    }

    /// Records one interval on an explicit worker lane.
    #[inline]
    pub fn record_on(
        &self,
        worker: u32,
        stage: &'static str,
        ctx: TraceCtx,
        start_ns: u64,
        end_ns: u64,
    ) {
        if let Some(inner) = &self.inner {
            inner.push(TimelineEvent { worker, stage, start_ns, end_ns, ctx });
        }
    }

    /// Recorded events in oldest-to-newest order (empty for a no-op).
    pub fn events(&self) -> Vec<TimelineEvent> {
        self.inner.as_ref().map_or_else(Vec::new, |i| {
            let ring = i.ring.lock().expect("timeline ring poisoned");
            if ring.len < i.capacity {
                ring.buf.clone()
            } else {
                let mut out = Vec::with_capacity(ring.len);
                out.extend_from_slice(&ring.buf[ring.next..]);
                out.extend_from_slice(&ring.buf[..ring.next]);
                out
            }
        })
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.dropped.load(Ordering::Relaxed))
    }

    /// Maximum number of retained events (0 for a no-op).
    pub fn capacity(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.capacity)
    }

    /// The recorded timeline in Chrome Trace Event Format: a single
    /// JSON object whose `traceEvents` are complete (`"ph":"X"`)
    /// events, `ts`/`dur` in microseconds, one `tid` per worker lane.
    /// Load the file in `chrome://tracing` or <https://ui.perfetto.dev>
    /// to see the per-worker Gantt chart.
    pub fn chrome_trace_json(&self) -> String {
        chrome_trace_json(&self.events())
    }

    /// Writes [`Timeline::chrome_trace_json`] to `path`.
    pub fn write_chrome_trace(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.chrome_trace_json())
    }

    /// The slowest `n` events of every stage, as
    /// `(stage, worst-first events)` sorted by stage name.
    pub fn exemplars(&self, n: usize) -> Vec<(&'static str, Vec<TimelineEvent>)> {
        exemplars(&self.events(), n)
    }

    /// Human-readable slowest-N exemplar table: per stage, the worst
    /// offenders with the [`TraceCtx`] they ran for. Empty string when
    /// nothing was recorded.
    pub fn exemplar_table(&self, n: usize) -> String {
        exemplar_table(&self.exemplars(n))
    }
}

impl TimelineInner {
    fn push(&self, event: TimelineEvent) {
        let mut ring = self.ring.lock().expect("timeline ring poisoned");
        if ring.len < self.capacity {
            ring.buf.push(event);
            ring.len += 1;
            ring.next = ring.len % self.capacity;
        } else {
            let slot = ring.next;
            ring.buf[slot] = event;
            ring.next = (slot + 1) % self.capacity;
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Renders `events` in Chrome Trace Event Format (see
/// [`Timeline::chrome_trace_json`]). Events are sorted by start time so
/// the output is deterministic for a given event set.
pub fn chrome_trace_json(events: &[TimelineEvent]) -> String {
    let mut ordered: Vec<&TimelineEvent> = events.iter().collect();
    ordered.sort_by_key(|e| (e.start_ns, e.worker, e.end_ns));
    let mut out = String::with_capacity(128 + ordered.len() * 160);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, e) in ordered.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"evr\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
             \"pid\":0,\"tid\":{},\"args\":{{\"user\":{},\"segment\":{},\"request\":{}}}}}",
            e.stage,
            e.start_ns as f64 / 1e3,
            e.duration_ns() as f64 / 1e3,
            e.worker,
            e.ctx.user,
            e.ctx.segment,
            e.ctx.request,
        );
    }
    out.push_str("]}\n");
    out
}

/// The slowest `n` events per stage, worst first, stages sorted by
/// name. Standalone so bench tooling can run it over filtered slices.
pub fn exemplars(events: &[TimelineEvent], n: usize) -> Vec<(&'static str, Vec<TimelineEvent>)> {
    let mut by_stage: Vec<(&'static str, Vec<TimelineEvent>)> = Vec::new();
    for e in events {
        match by_stage.iter_mut().find(|(s, _)| *s == e.stage) {
            Some((_, v)) => v.push(*e),
            None => by_stage.push((e.stage, vec![*e])),
        }
    }
    by_stage.sort_by_key(|(s, _)| *s);
    for (_, v) in &mut by_stage {
        // Stable tie-break on start time so equal durations order
        // deterministically.
        v.sort_by_key(|e| (std::cmp::Reverse(e.duration_ns()), e.start_ns, e.worker));
        v.truncate(n);
    }
    by_stage
}

/// Renders [`exemplars`] output as a fixed-width text table.
pub fn exemplar_table(exemplars: &[(&'static str, Vec<TimelineEvent>)]) -> String {
    if exemplars.is_empty() {
        return String::new();
    }
    let stage_width = exemplars
        .iter()
        .map(|(s, _)| s.len())
        .chain(std::iter::once("stage".len()))
        .max()
        .unwrap_or(5);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<stage_width$}  {:>4}  {:>12}  {:>6}  {:>6}  {:>7}  {:>8}",
        "stage", "rank", "duration_ms", "worker", "user", "segment", "request"
    );
    let _ = writeln!(
        out,
        "{}  {}  {}  {}  {}  {}  {}",
        "-".repeat(stage_width),
        "-".repeat(4),
        "-".repeat(12),
        "-".repeat(6),
        "-".repeat(6),
        "-".repeat(7),
        "-".repeat(8),
    );
    for (stage, events) in exemplars {
        for (rank, e) in events.iter().enumerate() {
            let _ = writeln!(
                out,
                "{stage:<stage_width$}  {:>4}  {:>12.4}  {:>6}  {:>6}  {:>7}  {:>8}",
                rank + 1,
                e.duration_ns() as f64 / 1e6,
                e.worker,
                e.ctx.user,
                e.ctx.segment,
                e.ctx.request,
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(worker: u32, stage: &'static str, start: u64, end: u64, user: i64) -> TimelineEvent {
        TimelineEvent {
            worker,
            stage,
            start_ns: start,
            end_ns: end,
            ctx: TraceCtx::for_user(user).with_segment(user + 10),
        }
    }

    #[test]
    fn noop_timeline_records_nothing() {
        let tl = Timeline::noop();
        tl.record("stage", TraceCtx::anonymous(), 0, 10);
        assert!(!tl.is_enabled());
        assert!(tl.events().is_empty());
        assert_eq!(tl.dropped(), 0);
        assert_eq!(tl.capacity(), 0);
        assert_eq!(tl.now_ns(), 0);
        assert_eq!(tl.next_request_id(), 0);
        assert_eq!(tl.chrome_trace_json(), "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}\n");
        assert!(tl.exemplar_table(3).is_empty());
    }

    #[test]
    fn default_is_noop() {
        assert!(!Timeline::default().is_enabled());
    }

    #[test]
    fn records_intervals_with_ctx_and_worker() {
        let tl = Timeline::bounded(16);
        let t0 = tl.now_ns();
        let ctx = TraceCtx::for_user(7).with_segment(3);
        with_worker(2, || tl.record("render", ctx, t0, t0 + 500));
        let events = tl.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].worker, 2);
        assert_eq!(events[0].stage, "render");
        assert_eq!(events[0].ctx, TraceCtx { user: 7, segment: 3, request: 0 });
        assert_eq!(events[0].duration_ns(), 500);
    }

    #[test]
    fn worker_lane_restores_after_scope() {
        assert_eq!(current_worker(), 0);
        with_worker(5, || {
            assert_eq!(current_worker(), 5);
            with_worker(9, || assert_eq!(current_worker(), 9));
            assert_eq!(current_worker(), 5);
        });
        assert_eq!(current_worker(), 0);
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let tl = Timeline::bounded(4);
        for i in 0..10u64 {
            tl.record("s", TraceCtx::for_user(i as i64), i, i + 1);
        }
        let events = tl.events();
        assert_eq!(events.len(), 4);
        let users: Vec<i64> = events.iter().map(|e| e.ctx.user).collect();
        assert_eq!(users, vec![6, 7, 8, 9]);
        assert_eq!(tl.dropped(), 6);
    }

    #[test]
    fn request_ids_are_unique_and_nonzero() {
        let tl = Timeline::bounded(4);
        let a = tl.next_request_id();
        let b = tl.next_request_id();
        assert!(a > 0);
        assert_eq!(b, a + 1);
    }

    #[test]
    fn chrome_trace_is_well_formed_and_sorted() {
        let events = vec![ev(1, "fetch", 2_000, 5_000, 1), ev(0, "plan", 1_000, 1_500, 0)];
        let json = chrome_trace_json(&events);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}\n"));
        // Sorted by start time: plan (1µs) precedes fetch (2µs).
        let plan = json.find("\"name\":\"plan\"").unwrap();
        let fetch = json.find("\"name\":\"fetch\"").unwrap();
        assert!(plan < fetch);
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.000,\"dur\":0.500"));
        assert!(json.contains("\"tid\":1"));
        assert!(json.contains("\"args\":{\"user\":0,\"segment\":10,\"request\":0}"));
    }

    #[test]
    fn exemplars_rank_worst_first_per_stage() {
        let events = vec![
            ev(0, "render", 0, 100, 0),
            ev(1, "render", 0, 900, 1),
            ev(0, "render", 0, 400, 2),
            ev(1, "fetch", 0, 50, 3),
        ];
        let ex = exemplars(&events, 2);
        assert_eq!(ex.len(), 2);
        assert_eq!(ex[0].0, "fetch");
        assert_eq!(ex[1].0, "render");
        let render: Vec<u64> = ex[1].1.iter().map(|e| e.duration_ns()).collect();
        assert_eq!(render, vec![900, 400]);

        let table = exemplar_table(&ex);
        assert!(table.contains("stage"));
        assert!(table.contains("render"));
        assert!(table.contains("fetch"));
        // The worst render ran for user 1, segment 11.
        let worst = table.lines().find(|l| l.contains("0.0009")).unwrap();
        assert!(worst.contains('1') && worst.contains("11"), "{worst}");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = Timeline::bounded(0);
    }

    #[test]
    fn clones_share_state() {
        let tl = Timeline::bounded(8);
        let clone = tl.clone();
        clone.record("s", TraceCtx::anonymous(), 0, 1);
        assert_eq!(tl.events().len(), 1);
        assert_eq!(clone.next_request_id(), 1);
        assert_eq!(tl.next_request_id(), 2);
    }
}
