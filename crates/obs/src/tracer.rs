//! Structured span/event tracer with a bounded ring buffer.
//!
//! Events are small `Copy` records stamped with nanoseconds since the
//! observer was created (monotonic, from [`std::time::Instant`]). The
//! ring keeps the most recent `capacity` events and counts how many were
//! overwritten, so a long run degrades to "newest window + drop count"
//! instead of unbounded memory.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// What one trace record represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A pipeline stage started.
    SpanBegin,
    /// A pipeline stage finished; `value` carries the span duration in
    /// seconds.
    SpanEnd,
    /// A point event; `value` carries an event-specific payload.
    Mark,
}

impl EventKind {
    /// Stable lowercase label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::SpanBegin => "span_begin",
            EventKind::SpanEnd => "span_end",
            EventKind::Mark => "mark",
        }
    }
}

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Nanoseconds since the observer was created.
    pub ts_ns: u64,
    /// Record type.
    pub kind: EventKind,
    /// Stage or event name (static so recording never allocates).
    pub name: &'static str,
    /// Frame index, or -1 when not frame-scoped.
    pub frame: i64,
    /// Segment index, or -1 when not segment-scoped.
    pub segment: i64,
    /// Kind-specific payload (see [`EventKind`]).
    pub value: f64,
}

#[derive(Debug)]
struct Ring {
    buf: Vec<Event>,
    /// Index the next event is written to.
    next: usize,
    /// Number of live events (saturates at capacity).
    len: usize,
}

/// Bounded event recorder behind an enabled observer.
#[derive(Debug)]
pub(crate) struct Tracer {
    ring: Mutex<Ring>,
    capacity: usize,
    dropped: AtomicU64,
    epoch: Instant,
}

impl Tracer {
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "tracer capacity must be positive");
        Tracer {
            ring: Mutex::new(Ring { buf: Vec::with_capacity(capacity), next: 0, len: 0 }),
            capacity,
            dropped: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since the observer was created.
    pub(crate) fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    pub(crate) fn record(
        &self,
        kind: EventKind,
        name: &'static str,
        frame: i64,
        segment: i64,
        value: f64,
    ) {
        let event = Event { ts_ns: self.now_ns(), kind, name, frame, segment, value };
        let mut ring = self.ring.lock().expect("tracer ring poisoned");
        if ring.len < self.capacity {
            ring.buf.push(event);
            ring.len += 1;
            ring.next = ring.len % self.capacity;
        } else {
            let slot = ring.next;
            ring.buf[slot] = event;
            ring.next = (slot + 1) % self.capacity;
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Events in oldest-to-newest order.
    pub(crate) fn events(&self) -> Vec<Event> {
        let ring = self.ring.lock().expect("tracer ring poisoned");
        if ring.len < self.capacity {
            ring.buf.clone()
        } else {
            let mut out = Vec::with_capacity(ring.len);
            out.extend_from_slice(&ring.buf[ring.next..]);
            out.extend_from_slice(&ring.buf[..ring.next]);
            out
        }
    }

    /// How many events were overwritten because the ring was full.
    pub(crate) fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }
}
