//! Property test: the Prometheus exposition names every registered
//! metric exactly once, whatever mix of kinds and names is registered.

use proptest::prelude::*;

use evr_obs::Observer;

/// Builds a valid, unique metric name from sampled parts. Prometheus
/// names match `[a-zA-Z_:][a-zA-Z0-9_:]*`; a fixed prefix plus the
/// index guarantees validity and uniqueness.
fn metric_name(index: usize, salt: u64) -> String {
    format!("evr_prop_{index}_m{}", salt % 1000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exposition_names_each_metric_exactly_once(
        kinds in proptest::collection::vec(0u8..3, 1..12),
        salt in 0u64..u64::MAX,
        counter_val in 0u64..1_000_000,
        gauge_val in -1e6f64..1e6,
        obs_val in 0.0f64..10.0,
    ) {
        let obs = Observer::enabled();
        let mut names = Vec::new();
        for (i, kind) in kinds.iter().enumerate() {
            let name = metric_name(i, salt.wrapping_add(i as u64));
            match kind {
                0 => obs.counter(&name).add(counter_val),
                1 => obs.gauge(&name).set(gauge_val),
                _ => obs.histogram(&name, &[0.5, 1.0, 5.0]).observe(obs_val),
            }
            names.push((name, *kind));
        }

        let text = obs.prometheus();
        for (name, kind) in &names {
            // Exactly one # TYPE declaration per metric.
            let type_decls = text
                .lines()
                .filter(|l| l.starts_with("# TYPE ") && l.split_whitespace().nth(2) == Some(name))
                .count();
            prop_assert_eq!(type_decls, 1, "metric {} declared {} times", name, type_decls);

            // Exactly one top-level sample line for scalars; histograms
            // expose their samples under _bucket/_sum/_count instead.
            let bare_samples = text
                .lines()
                .filter(|l| !l.starts_with('#') && l.split_whitespace().next() == Some(name))
                .count();
            match kind {
                0 | 1 => prop_assert_eq!(bare_samples, 1),
                _ => {
                    prop_assert_eq!(bare_samples, 0);
                    let sum = format!("{name}_sum ");
                    let count = format!("{name}_count ");
                    let inf = format!("{name}_bucket{{le=\"+Inf\"}} ");
                    prop_assert_eq!(text.lines().filter(|l| l.starts_with(&sum)).count(), 1);
                    prop_assert_eq!(text.lines().filter(|l| l.starts_with(&count)).count(), 1);
                    prop_assert_eq!(text.lines().filter(|l| l.starts_with(&inf)).count(), 1);
                }
            }
        }

        // No phantom metrics: every # TYPE line corresponds to a
        // registered name (or the self-monitoring drop counter the
        // snapshot mirrors in).
        for line in text.lines().filter(|l| l.starts_with("# TYPE ")) {
            let declared = line.split_whitespace().nth(2).expect("TYPE line has a name");
            prop_assert!(
                declared == evr_obs::names::OBS_SPANS_DROPPED
                    || names.iter().any(|(n, _)| n == declared),
                "unregistered metric {} in exposition", declared
            );
        }
    }
}

proptest! {
    #[test]
    fn histogram_bucket_counts_are_cumulative_and_bounded(
        values in proptest::collection::vec(-10.0f64..1000.0, 0..64),
    ) {
        let obs = Observer::enabled();
        let h = obs.histogram("evr_prop_hist", &[0.0, 1.0, 10.0, 100.0]);
        for v in &values {
            h.observe(*v);
        }
        let text = obs.prometheus();
        let mut cumulative_counts = Vec::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("evr_prop_hist_bucket{le=") {
                let count: u64 = rest
                    .split("} ")
                    .nth(1)
                    .expect("bucket line has a count")
                    .parse()
                    .expect("bucket count parses");
                cumulative_counts.push(count);
            }
        }
        prop_assert_eq!(cumulative_counts.len(), 5); // 4 bounds + +Inf
        prop_assert!(cumulative_counts.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(*cumulative_counts.last().expect("has +Inf"), values.len() as u64);
    }
}
