//! Error types for the projection pipeline.

use std::error::Error;
use std::fmt;

/// Errors produced while configuring or running projective transformations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ProjectionError {
    /// A viewport or source image dimension was zero.
    EmptyDimension {
        /// Which dimension was empty (e.g. `"viewport width"`).
        what: &'static str,
    },
    /// A field of view was outside the physically meaningful range.
    InvalidFov {
        /// Offending extent in degrees.
        degrees: f64,
    },
}

impl fmt::Display for ProjectionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProjectionError::EmptyDimension { what } => {
                write!(f, "dimension must be non-zero: {what}")
            }
            ProjectionError::InvalidFov { degrees } => {
                write!(f, "field of view out of range (0, 180]: {degrees}°")
            }
        }
    }
}

impl Error for ProjectionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ProjectionError::EmptyDimension { what: "viewport width" };
        assert!(e.to_string().contains("viewport width"));
        let e = ProjectionError::InvalidFov { degrees: 190.0 };
        assert!(e.to_string().contains("190"));
    }
}
