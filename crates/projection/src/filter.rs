//! The *filtering* stage: reconstructing a pixel value at fractional frame
//! coordinates (paper §6.1/§6.2).
//!
//! Supports the two classic filtering functions the PTU implements:
//! nearest neighbour and bilinear interpolation. Sampling is "much like a
//! stencil operation": it touches at most a 2×2 block of adjacent pixels,
//! the property that lets the PTE replace the GPU's texture cache with
//! small line buffers.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::pixel::{PixelSource, Rgb};

/// Pixel-reconstruction filters supported by the PTU.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FilterMode {
    /// Nearest-neighbour: pick the closest texel. Cheapest; blockier.
    Nearest,
    /// Bilinear interpolation over the 2×2 neighbourhood. The default.
    #[default]
    Bilinear,
}

impl fmt::Display for FilterMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FilterMode::Nearest => f.write_str("nearest"),
            FilterMode::Bilinear => f.write_str("bilinear"),
        }
    }
}

/// How coordinates outside the frame are folded back in.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeMode {
    /// Clamp to the frame border (cube layouts — faces do not wrap into
    /// each other meaningfully at the 2×2 level).
    #[default]
    Clamp,
    /// Wrap horizontally, clamp vertically (equirectangular frames are
    /// periodic in longitude).
    WrapU,
}

impl EdgeMode {
    /// The edge behaviour appropriate for a projection's frame layout.
    pub fn for_projection(p: crate::Projection) -> EdgeMode {
        match p {
            crate::Projection::Erp => EdgeMode::WrapU,
            crate::Projection::Cmp | crate::Projection::Eac => EdgeMode::Clamp,
        }
    }

    /// Folds a (possibly out-of-range) texel coordinate back into the
    /// frame under this edge behaviour — the exact address resolution
    /// the samplers use. Public so traffic analyzers (the PTE's P-MEM
    /// model) can replay the datapath's addresses instead of guessing:
    /// clamping where the datapath wraps undercounts seam traffic.
    pub fn resolve(self, x: i64, y: i64, w: u32, h: u32) -> (u32, u32) {
        let yy = y.clamp(0, h as i64 - 1) as u32;
        let xx = match self {
            EdgeMode::Clamp => x.clamp(0, w as i64 - 1) as u32,
            EdgeMode::WrapU => x.rem_euclid(w as i64) as u32,
        };
        (xx, yy)
    }
}

/// Samples `src` at normalised coordinates `(u, v) ∈ [0, 1)²`.
///
/// `(u, v)` address the frame continuously: `u = 0` is the left edge,
/// `u = 1` the right edge, with texel centres at `(k + 0.5) / size`.
///
/// # Example
///
/// ```
/// use evr_projection::filter::{sample, EdgeMode};
/// use evr_projection::{FilterMode, ImageBuffer, Rgb};
///
/// let img = ImageBuffer::from_fn(2, 1, |x, _| if x == 0 { Rgb::BLACK } else { Rgb::WHITE });
/// // Halfway between the two texel centres, bilinear gives mid grey.
/// let mid = sample(&img, 0.5, 0.5, FilterMode::Bilinear, EdgeMode::Clamp);
/// assert!((mid.r as i32 - 127).abs() <= 1);
/// ```
pub fn sample(src: &impl PixelSource, u: f64, v: f64, filter: FilterMode, edge: EdgeMode) -> Rgb {
    let w = src.width();
    let h = src.height();
    // Continuous pixel coordinates with texel centres at integer + 0.5.
    let px = u * w as f64 - 0.5;
    let py = v * h as f64 - 0.5;
    match filter {
        FilterMode::Nearest => {
            let (x, y) = edge.resolve(px.round() as i64, py.round() as i64, w, h);
            src.pixel(x, y)
        }
        FilterMode::Bilinear => {
            let x0 = px.floor() as i64;
            let y0 = py.floor() as i64;
            let fx = px - x0 as f64;
            let fy = py - y0 as f64;
            let fetch = |dx: i64, dy: i64| {
                let (x, y) = edge.resolve(x0 + dx, y0 + dy, w, h);
                src.pixel(x, y)
            };
            let p00 = fetch(0, 0);
            let p10 = fetch(1, 0);
            let p01 = fetch(0, 1);
            let p11 = fetch(1, 1);
            let blend = |c00: u8, c10: u8, c01: u8, c11: u8| -> u8 {
                let top = c00 as f64 * (1.0 - fx) + c10 as f64 * fx;
                let bot = c01 as f64 * (1.0 - fx) + c11 as f64 * fx;
                (top * (1.0 - fy) + bot * fy).round().clamp(0.0, 255.0) as u8
            };
            Rgb::new(
                blend(p00.r, p10.r, p01.r, p11.r),
                blend(p00.g, p10.g, p01.g, p11.g),
                blend(p00.b, p10.b, p01.b, p11.b),
            )
        }
    }
}

/// The set of texel coordinates a sample at `(u, v)` touches — the access
/// footprint the PTE's line-buffer model replays to size P-MEM correctly.
pub fn sample_footprint(
    width: u32,
    height: u32,
    u: f64,
    v: f64,
    filter: FilterMode,
    edge: EdgeMode,
) -> Vec<(u32, u32)> {
    let px = u * width as f64 - 0.5;
    let py = v * height as f64 - 0.5;
    match filter {
        FilterMode::Nearest => {
            vec![edge.resolve(px.round() as i64, py.round() as i64, width, height)]
        }
        FilterMode::Bilinear => {
            let x0 = px.floor() as i64;
            let y0 = py.floor() as i64;
            let mut out = Vec::with_capacity(4);
            for dy in 0..2 {
                for dx in 0..2 {
                    let c = edge.resolve(x0 + dx, y0 + dy, width, height);
                    if !out.contains(&c) {
                        out.push(c);
                    }
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pixel::ImageBuffer;
    use proptest::prelude::*;

    fn gradient() -> ImageBuffer {
        ImageBuffer::from_fn(4, 4, |x, y| Rgb::new((x * 60) as u8, (y * 60) as u8, 0))
    }

    #[test]
    fn nearest_picks_texel_centers() {
        let img = gradient();
        // u = (1 + 0.5) / 4 addresses texel 1 exactly.
        let p = sample(&img, 1.5 / 4.0, 2.5 / 4.0, FilterMode::Nearest, EdgeMode::Clamp);
        assert_eq!(p, Rgb::new(60, 120, 0));
    }

    #[test]
    fn bilinear_at_texel_center_is_exact() {
        let img = gradient();
        let p = sample(&img, 2.5 / 4.0, 1.5 / 4.0, FilterMode::Bilinear, EdgeMode::Clamp);
        assert_eq!(p, Rgb::new(120, 60, 0));
    }

    #[test]
    fn bilinear_interpolates_between_texels() {
        let img = ImageBuffer::from_fn(2, 1, |x, _| {
            if x == 0 {
                Rgb::new(0, 0, 0)
            } else {
                Rgb::new(200, 100, 50)
            }
        });
        let p = sample(&img, 0.5, 0.5, FilterMode::Bilinear, EdgeMode::Clamp);
        assert_eq!(p, Rgb::new(100, 50, 25));
    }

    #[test]
    fn clamp_edge_does_not_wrap() {
        let img = ImageBuffer::from_fn(4, 1, |x, _| if x == 0 { Rgb::WHITE } else { Rgb::BLACK });
        // Sampling just left of the frame clamps to column 0.
        let p = sample(&img, 0.01, 0.5, FilterMode::Bilinear, EdgeMode::Clamp);
        assert_eq!(p, Rgb::WHITE);
    }

    #[test]
    fn wrap_u_blends_across_seam() {
        let img = ImageBuffer::from_fn(4, 1, |x, _| {
            if x == 0 {
                Rgb::new(200, 0, 0)
            } else if x == 3 {
                Rgb::new(0, 0, 200)
            } else {
                Rgb::BLACK
            }
        });
        // u = 0: halfway between texel 3 (via wrap) and texel 0.
        let p = sample(&img, 0.0, 0.5, FilterMode::Bilinear, EdgeMode::WrapU);
        assert_eq!(p, Rgb::new(100, 0, 100));
    }

    #[test]
    fn footprint_sizes() {
        let f = sample_footprint(8, 8, 0.37, 0.61, FilterMode::Nearest, EdgeMode::Clamp);
        assert_eq!(f.len(), 1);
        let f = sample_footprint(8, 8, 0.37, 0.61, FilterMode::Bilinear, EdgeMode::Clamp);
        assert_eq!(f.len(), 4);
        // At a corner with clamping, duplicates collapse.
        let f = sample_footprint(8, 8, 0.0, 0.0, FilterMode::Bilinear, EdgeMode::Clamp);
        assert_eq!(f.len(), 1);
    }

    proptest! {
        #[test]
        fn prop_sample_never_exceeds_source_range(u in 0.0f64..1.0, v in 0.0f64..1.0) {
            // A constant image must sample to exactly that constant.
            let img = ImageBuffer::from_fn(5, 3, |_, _| Rgb::new(99, 140, 7));
            for filter in [FilterMode::Nearest, FilterMode::Bilinear] {
                for edge in [EdgeMode::Clamp, EdgeMode::WrapU] {
                    prop_assert_eq!(sample(&img, u, v, filter, edge), Rgb::new(99, 140, 7));
                }
            }
        }

        #[test]
        fn prop_footprint_within_bounds(u in 0.0f64..1.0, v in 0.0f64..1.0) {
            for filter in [FilterMode::Nearest, FilterMode::Bilinear] {
                for (x, y) in sample_footprint(16, 9, u, v, filter, EdgeMode::WrapU) {
                    prop_assert!(x < 16 && y < 9);
                }
            }
        }
    }
}
