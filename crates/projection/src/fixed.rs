//! The fixed-point PT datapath — a bit-faithful software model of the
//! PTE's per-pixel pipeline (paper §6.2–§6.3).
//!
//! Unlike [`crate::transform::Transformer`] (the `f64` GPU reference),
//! every arithmetic operation here flows through an
//! [`evr_math::fixed::FxCtx`], so results depend only on the chosen
//! `Q[total, int]` format. Running the same frames through both pipelines
//! and measuring the mean pixel error reproduces the paper's Figure 11
//! bit-width sweep, which selects `[28, 10]`.
//!
//! Datapath structure (one pixel per clock in hardware):
//!
//! ```text
//! init (NDC ray) → normalize → rotate (4-way MAC) → mapping
//!      ERP: C2S(atan2, asin) ∘ LS_erp
//!      CMP: face-select ∘ div ∘ LS_cmp ∘ C2F
//!      EAC: face-select ∘ div ∘ atan ∘ LS_eac ∘ C2F
//! → address generation (wide integer) → filtering (nearest / bilinear)
//! ```

use evr_math::fixed::{Fx, FxCtx, FxFormat};
use evr_math::EulerAngles;

use crate::filter::{EdgeMode, FilterMode};
use crate::fov::{FovSpec, Viewport};
use crate::mapping::{CubeFace, Projection};
use crate::par;
use crate::pixel::{ImageBuffer, PixelSource, Rgb};
use crate::transform::Transformer;

/// A 3×3 rotation matrix with fixed-point entries, as loaded into the
/// PTU's perspective-update MAC unit.
#[derive(Debug, Clone, Copy)]
struct FxMat3 {
    m: [[Fx; 3]; 3],
}

impl FxMat3 {
    fn identity(ctx: &FxCtx) -> Self {
        let one = ctx.one();
        let zero = ctx.zero();
        FxMat3 { m: [[one, zero, zero], [zero, one, zero], [zero, zero, one]] }
    }

    fn mul(&self, ctx: &FxCtx, rhs: &FxMat3) -> FxMat3 {
        let mut out = FxMat3::identity(ctx);
        for i in 0..3 {
            for j in 0..3 {
                let mut acc = ctx.zero();
                for (k, rhs_row) in rhs.m.iter().enumerate() {
                    acc = ctx.mac(acc, self.m[i][k], rhs_row[j]);
                }
                out.m[i][j] = acc;
            }
        }
        out
    }

    fn apply(&self, ctx: &FxCtx, v: [Fx; 3]) -> [Fx; 3] {
        let mut out = [ctx.zero(); 3];
        for (i, row) in self.m.iter().enumerate() {
            let mut acc = ctx.zero();
            for (k, &c) in row.iter().enumerate() {
                acc = ctx.mac(acc, c, v[k]);
            }
            out[i] = acc;
        }
        out
    }
}

/// Per-frame state: the quantised rotation matrix and FOV tangents — the
/// values the host writes into the PTE's memory-mapped configuration
/// registers before each frame (paper §6.2, "Init. RM D2R").
#[derive(Debug, Clone)]
struct FrameConfig {
    rotation: FxMat3,
    tan_half_h: Fx,
    tan_half_v: Fx,
    ndc_step_x: Fx,
    ndc_step_y: Fx,
}

/// The fixed-point projective-transformation engine.
///
/// # Example
///
/// ```
/// use evr_projection::fixed::FixedTransformer;
/// use evr_projection::{Projection, FilterMode, FovSpec, Viewport, ImageBuffer, Rgb};
/// use evr_math::fixed::FxFormat;
/// use evr_math::EulerAngles;
///
/// let src = ImageBuffer::from_fn(64, 32, |x, _| Rgb::new((x * 4) as u8, 0, 0));
/// let t = FixedTransformer::new(
///     FxFormat::q28_10(),
///     Projection::Erp,
///     FilterMode::Bilinear,
///     FovSpec::from_degrees(110.0, 110.0),
///     Viewport::new(16, 16),
/// );
/// let out = t.render_fov(&src, EulerAngles::default());
/// assert_eq!(out.width(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct FixedTransformer {
    ctx: FxCtx,
    projection: Projection,
    filter: FilterMode,
    fov: FovSpec,
    viewport: Viewport,
    // Quantised mapping constants (config-register values).
    half: Fx,
    inv_tau: Fx,
    inv_pi: Fx,
    third: Fx,
    four_over_pi_halved: Fx,
}

impl FixedTransformer {
    /// Creates a fixed-point transformer in the given numeric format.
    pub fn new(
        format: FxFormat,
        projection: Projection,
        filter: FilterMode,
        fov: FovSpec,
        viewport: Viewport,
    ) -> Self {
        let ctx = FxCtx::new(format);
        let half = ctx.from_f64(0.5);
        let inv_tau = ctx.from_f64(1.0 / std::f64::consts::TAU);
        let inv_pi = ctx.from_f64(1.0 / std::f64::consts::PI);
        let third = ctx.from_f64(1.0 / 3.0);
        let four_over_pi_halved = ctx.from_f64(2.0 / std::f64::consts::PI);
        FixedTransformer {
            ctx,
            projection,
            filter,
            fov,
            viewport,
            half,
            inv_tau,
            inv_pi,
            third,
            four_over_pi_halved,
        }
    }

    /// The numeric format in use.
    pub fn format(&self) -> FxFormat {
        self.ctx.format()
    }

    /// The projection method input frames are stored in.
    pub fn projection(&self) -> Projection {
        self.projection
    }

    /// The reconstruction filter.
    pub fn filter(&self) -> FilterMode {
        self.filter
    }

    /// The output field of view.
    pub fn fov(&self) -> FovSpec {
        self.fov
    }

    /// The output viewport.
    pub fn viewport(&self) -> Viewport {
        self.viewport
    }

    /// Converts a fixed-point value produced by this transformer back to
    /// `f64` — how analyzers read a cached fixed coordinate stream.
    pub fn to_f64(&self, t: Fx) -> f64 {
        self.ctx.to_f64(t)
    }

    /// Saturation events observed so far (overflow diagnostics for the
    /// bit-width sweep).
    pub fn saturation_count(&self) -> u64 {
        self.ctx.saturation_count()
    }

    fn frame_config(&self, orientation: EulerAngles) -> FrameConfig {
        let ctx = &self.ctx;
        // D2R + rotation-matrix build, all in fixed point.
        let yaw = ctx.from_f64(orientation.yaw.0);
        let pitch = ctx.from_f64(-orientation.pitch.0);
        let roll = ctx.from_f64(orientation.roll.0);
        let (sy, cy) = ctx.sin_cos(yaw);
        let (sp, cp) = ctx.sin_cos(pitch);
        let (sr, cr) = ctx.sin_cos(roll);
        let zero = ctx.zero();
        let one = ctx.one();
        let ry = FxMat3 { m: [[cy, zero, sy], [zero, one, zero], [ctx.neg(sy), zero, cy]] };
        let rx = FxMat3 { m: [[one, zero, zero], [zero, cp, ctx.neg(sp)], [zero, sp, cp]] };
        let rz = FxMat3 { m: [[cr, ctx.neg(sr), zero], [sr, cr, zero], [zero, zero, one]] };
        let rotation = ry.mul(ctx, &rx).mul(ctx, &rz);
        FrameConfig {
            rotation,
            tan_half_h: ctx.from_f64((self.fov.h_radians().0 / 2.0).tan()),
            tan_half_v: ctx.from_f64((self.fov.v_radians().0 / 2.0).tan()),
            ndc_step_x: ctx.from_f64(2.0 / self.viewport.width as f64),
            ndc_step_y: ctx.from_f64(2.0 / self.viewport.height as f64),
        }
    }

    /// Maps output pixel `(i, j)` to normalised source coordinates, in
    /// fixed point. Exposed for stage-level validation against
    /// [`Transformer::map_pixel`].
    pub fn map_pixel(&self, i: u32, j: u32, orientation: EulerAngles) -> (f64, f64) {
        let cfg = self.frame_config(orientation);
        let (u, v) = self.map_pixel_fx(&cfg, i, j);
        (self.ctx.to_f64(u), self.ctx.to_f64(v))
    }

    fn map_pixel_fx(&self, cfg: &FrameConfig, i: u32, j: u32) -> (Fx, Fx) {
        let ctx = &self.ctx;
        // --- init: NDC ray construction (incremental adds in hardware) ---
        let fi = ctx.add(ctx.from_int(i as i64), self.half);
        let fj = ctx.add(ctx.from_int(j as i64), self.half);
        let ndc_x = ctx.sub(ctx.mul(cfg.ndc_step_x, fi), ctx.one());
        let ndc_y = ctx.sub(ctx.one(), ctx.mul(cfg.ndc_step_y, fj));
        let ray = [ctx.mul(ndc_x, cfg.tan_half_h), ctx.mul(ndc_y, cfg.tan_half_v), ctx.one()];
        // --- rotate (perspective update MACs) ---
        let p = cfg.rotation.apply(ctx, ray);
        // --- mapping ---
        match self.projection {
            Projection::Erp => {
                // C2S: lon = atan2(x, z); lat = asin(y / |p|).
                let lon = ctx.atan2(p[0], p[2]);
                let norm2 = ctx.mac(ctx.mac(ctx.mul(p[0], p[0]), p[1], p[1]), p[2], p[2]);
                let norm = ctx.sqrt(norm2);
                let lat = ctx.asin(ctx.div(p[1], norm));
                // LS_erp.
                let u = ctx.add(ctx.mul(lon, self.inv_tau), self.half);
                let v = ctx.sub(self.half, ctx.mul(lat, self.inv_pi));
                (self.clamp_unit(u), self.clamp_unit(v))
            }
            Projection::Cmp | Projection::Eac => {
                let (face, a, b) = self.cube_project_fx(p);
                let (sa, sb) = if self.projection == Projection::Cmp {
                    (self.ls_cmp_fx(a), self.ls_cmp_fx(b))
                } else {
                    (self.ls_eac_fx(a), self.ls_eac_fx(b))
                };
                self.c2f_fx(face, sa, sb)
            }
        }
    }

    fn cube_project_fx(&self, p: [Fx; 3]) -> (CubeFace, Fx, Fx) {
        let ctx = &self.ctx;
        let ax = ctx.abs(p[0]);
        let ay = ctx.abs(p[1]);
        let az = ctx.abs(p[2]);
        if ax >= ay && ax >= az {
            if p[0].0 > 0 {
                (CubeFace::PosX, ctx.neg(ctx.div(p[2], ax)), ctx.neg(ctx.div(p[1], ax)))
            } else {
                (CubeFace::NegX, ctx.div(p[2], ax), ctx.neg(ctx.div(p[1], ax)))
            }
        } else if ay >= ax && ay >= az {
            if p[1].0 > 0 {
                (CubeFace::PosY, ctx.div(p[0], ay), ctx.div(p[2], ay))
            } else {
                (CubeFace::NegY, ctx.div(p[0], ay), ctx.neg(ctx.div(p[2], ay)))
            }
        } else if p[2].0 > 0 {
            (CubeFace::PosZ, ctx.div(p[0], az), ctx.neg(ctx.div(p[1], az)))
        } else {
            (CubeFace::NegZ, ctx.neg(ctx.div(p[0], az)), ctx.neg(ctx.div(p[1], az)))
        }
    }

    fn ls_cmp_fx(&self, t: Fx) -> Fx {
        let ctx = &self.ctx;
        ctx.mul(ctx.add(t, ctx.one()), self.half)
    }

    fn ls_eac_fx(&self, t: Fx) -> Fx {
        let ctx = &self.ctx;
        // (4/π)·atan(t) scaled into [0, 1): ((2/π)·atan(t) · 2 + 1) / 2
        // = (2/π)·atan(t)·1 + 0.5 — fold the ×2/÷2 together.
        let ang = ctx.atan2(t, ctx.one());
        ctx.add(ctx.mul(ang, self.four_over_pi_halved), self.half)
    }

    fn c2f_fx(&self, face: CubeFace, su: Fx, sv: Fx) -> (Fx, Fx) {
        let ctx = &self.ctx;
        let (col, row) = face.layout_cell();
        let u = ctx.mul(ctx.add(ctx.from_int(col as i64), su), self.third);
        let v = ctx.mul(ctx.add(ctx.from_int(row as i64), sv), self.half);
        (self.clamp_unit(u), self.clamp_unit(v))
    }

    fn clamp_unit(&self, t: Fx) -> Fx {
        let one = self.ctx.one();
        if t.0 < 0 {
            self.ctx.zero()
        } else if t.0 >= one.0 {
            Fx(one.0 - 1)
        } else {
            t
        }
    }

    /// Runs the full fixed-point PT for one frame.
    ///
    /// Large viewports render scanline-parallel; like the reference
    /// pipeline, any thread count is bit-identical (the only shared
    /// mutable state is the saturation counter, whose total is a
    /// commutative sum).
    pub fn render_fov(
        &self,
        src: &(impl PixelSource + Sync),
        orientation: EulerAngles,
    ) -> ImageBuffer {
        self.render_fov_threads(
            src,
            orientation,
            par::auto_threads(self.viewport.pixels() as usize),
        )
    }

    /// [`FixedTransformer::render_fov`] with an explicit thread count.
    pub fn render_fov_threads(
        &self,
        src: &(impl PixelSource + Sync),
        orientation: EulerAngles,
        threads: usize,
    ) -> ImageBuffer {
        let cfg = self.frame_config(orientation);
        let edge = EdgeMode::for_projection(self.projection);
        let pixels = par::fill_grid(self.viewport.width, self.viewport.height, threads, |i, j| {
            let (u, v) = self.map_pixel_fx(&cfg, i, j);
            self.sample_fx(src, u, v, edge)
        });
        ImageBuffer::from_pixels(self.viewport.width, self.viewport.height, pixels)
    }

    /// Precomputes the fixed-point source coordinates of every output
    /// pixel at one orientation, row-major — the PTE's coordinate stream,
    /// reusable across frames and shared with the traffic analyzer via
    /// [`crate::lut::SamplingMapCache`].
    pub fn coordinate_map(&self, orientation: EulerAngles) -> Vec<(Fx, Fx)> {
        let cfg = self.frame_config(orientation);
        par::fill_grid(
            self.viewport.width,
            self.viewport.height,
            par::auto_threads(self.viewport.pixels() as usize),
            |i, j| self.map_pixel_fx(&cfg, i, j),
        )
    }

    /// Renders through a precomputed fixed-point coordinate map (the
    /// filtering half of the datapath).
    ///
    /// # Panics
    ///
    /// Panics if the map's length does not match the viewport.
    pub fn render_with_map(
        &self,
        src: &(impl PixelSource + Sync),
        map: &[(Fx, Fx)],
    ) -> ImageBuffer {
        assert_eq!(map.len() as u64, self.viewport.pixels(), "coordinate map size mismatch");
        let edge = EdgeMode::for_projection(self.projection);
        let w = self.viewport.width;
        let pixels =
            par::fill_grid(w, self.viewport.height, par::auto_threads(map.len()), |i, j| {
                let (u, v) = map[(j * w + i) as usize];
                self.sample_fx(src, u, v, edge)
            });
        ImageBuffer::from_pixels(w, self.viewport.height, pixels)
    }

    /// Fixed-point filtering: address generation in wide integers, blend
    /// weights in the Q format's fraction bits.
    fn sample_fx(&self, src: &impl PixelSource, u: Fx, v: Fx, edge: EdgeMode) -> Rgb {
        let frac = self.ctx.format().frac_bits();
        let w = src.width();
        let h = src.height();
        // Continuous pixel coordinate: u·w − 0.5, split into floor + frac.
        let split = |t: Fx, size: u32| -> (i64, i64) {
            let wide = t.0 as i128 * size as i128 - (1i128 << (frac - 1));
            let idx = wide >> frac;
            let rem = wide - (idx << frac);
            (idx as i64, rem as i64)
        };
        let (x0, fx) = split(u, w);
        let (y0, fy) = split(v, h);
        let resolve = |x: i64, y: i64| -> (u32, u32) {
            let yy = y.clamp(0, h as i64 - 1) as u32;
            let xx = match edge {
                EdgeMode::Clamp => x.clamp(0, w as i64 - 1) as u32,
                EdgeMode::WrapU => x.rem_euclid(w as i64) as u32,
            };
            (xx, yy)
        };
        match self.filter {
            FilterMode::Nearest => {
                let half = 1i64 << (frac - 1);
                let (x, y) = resolve(x0 + i64::from(fx >= half), y0 + i64::from(fy >= half));
                src.pixel(x, y)
            }
            FilterMode::Bilinear => {
                let (ax, ay) = resolve(x0, y0);
                let (bx, by) = resolve(x0 + 1, y0);
                let (cx, cy) = resolve(x0, y0 + 1);
                let (dx, dy) = resolve(x0 + 1, y0 + 1);
                let p00 = src.pixel(ax, ay);
                let p10 = src.pixel(bx, by);
                let p01 = src.pixel(cx, cy);
                let p11 = src.pixel(dx, dy);
                let one = 1i64 << frac;
                let half = 1i64 << (frac - 1);
                let blend1 = |a: u8, b: u8, f: i64| -> i64 {
                    (a as i64 * (one - f) + b as i64 * f + half) >> frac
                };
                let blend = |c00: u8, c10: u8, c01: u8, c11: u8| -> u8 {
                    let top = blend1(c00, c10, fx);
                    let bot = blend1(c01, c11, fx);
                    ((top * (one - fy) + bot * fy + half) >> frac).clamp(0, 255) as u8
                };
                Rgb::new(
                    blend(p00.r, p10.r, p01.r, p11.r),
                    blend(p00.g, p10.g, p01.g, p11.g),
                    blend(p00.b, p10.b, p01.b, p11.b),
                )
            }
        }
    }
}

/// Measures the mean normalised pixel error of the fixed-point datapath in
/// `format` against the `f64` reference, over the given poses — one data
/// point of the paper's Figure 11.
pub fn pixel_error_vs_reference(
    format: FxFormat,
    projection: Projection,
    filter: FilterMode,
    fov: FovSpec,
    viewport: Viewport,
    src: &ImageBuffer,
    poses: &[EulerAngles],
) -> f64 {
    let reference = Transformer::new(projection, filter, fov, viewport);
    let fixed = FixedTransformer::new(format, projection, filter, fov, viewport);
    let mut total = 0.0;
    for &pose in poses {
        let want = reference.render_fov(src, pose).image;
        let got = fixed.render_fov(src, pose);
        total += want.mean_abs_error(&got);
    }
    total / poses.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::render_panorama;
    use evr_math::Vec3;

    fn test_panorama(projection: Projection) -> ImageBuffer {
        render_panorama(projection, 96, 48, |d: Vec3| {
            Rgb::new(
                ((d.x * 3.0).sin() * 90.0 + 128.0) as u8,
                ((d.y * 2.0).cos() * 90.0 + 128.0) as u8,
                ((d.z * 4.0).sin() * 90.0 + 128.0) as u8,
            )
        })
    }

    fn poses() -> Vec<EulerAngles> {
        vec![
            EulerAngles::default(),
            EulerAngles::from_degrees(45.0, 10.0, 0.0),
            EulerAngles::from_degrees(-120.0, -30.0, 5.0),
            EulerAngles::from_degrees(170.0, 60.0, 0.0),
        ]
    }

    #[test]
    fn q28_10_error_is_visually_indistinguishable() {
        // The paper's acceptance threshold: mean pixel error below 1e-3.
        for projection in Projection::ALL {
            let src = test_panorama(projection);
            let err = pixel_error_vs_reference(
                FxFormat::q28_10(),
                projection,
                FilterMode::Bilinear,
                FovSpec::from_degrees(110.0, 110.0),
                Viewport::new(24, 24),
                &src,
                &poses(),
            );
            assert!(err < 1e-3, "{projection}: error {err}");
        }
    }

    #[test]
    fn narrow_integer_bits_blow_up() {
        // With 2 integer bits (sign + 1), π is unrepresentable: overflow
        // dominates and the error exceeds the acceptability threshold.
        let src = test_panorama(Projection::Erp);
        let err = pixel_error_vs_reference(
            FxFormat::new(28, 2).unwrap(),
            Projection::Erp,
            FilterMode::Bilinear,
            FovSpec::from_degrees(110.0, 110.0),
            Viewport::new(24, 24),
            &src,
            &poses(),
        );
        assert!(err > 1e-3, "error {err}");
    }

    #[test]
    fn error_decreases_with_fraction_width() {
        let src = test_panorama(Projection::Erp);
        let run = |total: u32| {
            pixel_error_vs_reference(
                FxFormat::new(total, 10).unwrap(),
                Projection::Erp,
                FilterMode::Bilinear,
                FovSpec::from_degrees(110.0, 110.0),
                Viewport::new(16, 16),
                &src,
                &poses()[..2],
            )
        };
        let coarse = run(18);
        let fine = run(40);
        assert!(fine <= coarse, "coarse {coarse} fine {fine}");
    }

    #[test]
    fn map_pixel_matches_reference_closely() {
        let fov = FovSpec::from_degrees(100.0, 100.0);
        let vp = Viewport::new(16, 16);
        for projection in Projection::ALL {
            let reference = Transformer::new(projection, FilterMode::Nearest, fov, vp);
            let fixed =
                FixedTransformer::new(FxFormat::q28_10(), projection, FilterMode::Nearest, fov, vp);
            let pose = EulerAngles::from_degrees(25.0, -15.0, 0.0);
            for (i, j) in [(0u32, 0u32), (8, 8), (15, 15), (3, 12)] {
                let (u1, v1) = reference.map_pixel(i, j, pose);
                let (u2, v2) = fixed.map_pixel(i, j, pose);
                // Coordinates may legitimately differ near face seams where
                // a 1-LSB perturbation switches cube faces; require either
                // close coordinates or both near a seam boundary.
                let close = (u1 - u2).abs() < 2e-3 && (v1 - v2).abs() < 2e-3;
                assert!(close, "{projection} pixel ({i},{j}): ({u1},{v1}) vs ({u2},{v2})");
            }
        }
    }

    #[test]
    fn thread_counts_and_map_path_are_bit_identical() {
        let src = test_panorama(Projection::Eac);
        let t = FixedTransformer::new(
            FxFormat::q28_10(),
            Projection::Eac,
            FilterMode::Bilinear,
            FovSpec::from_degrees(110.0, 110.0),
            Viewport::new(15, 9),
        );
        let pose = EulerAngles::from_degrees(-140.0, 25.0, -3.0);
        let seq = t.render_fov_threads(&src, pose, 1);
        for threads in [2, 3, 5, 8] {
            assert_eq!(t.render_fov_threads(&src, pose, threads), seq, "threads = {threads}");
        }
        let map = t.coordinate_map(pose);
        assert_eq!(t.render_with_map(&src, &map), seq);
    }

    #[test]
    fn saturation_counter_reports_overflow() {
        let t = FixedTransformer::new(
            FxFormat::new(24, 2).unwrap(),
            Projection::Erp,
            FilterMode::Nearest,
            FovSpec::from_degrees(110.0, 110.0),
            Viewport::new(4, 4),
        );
        let src = test_panorama(Projection::Erp);
        let _ = t.render_fov(&src, EulerAngles::from_degrees(150.0, 0.0, 0.0));
        assert!(t.saturation_count() > 0);
    }

    #[test]
    fn nearest_filter_matches_reference_pixels() {
        // With nearest filtering, almost all pixels should be *identical*
        // to the reference (coordinate differences below half a texel).
        let src = test_panorama(Projection::Erp);
        let fov = FovSpec::from_degrees(90.0, 90.0);
        let vp = Viewport::new(20, 20);
        let reference = Transformer::new(Projection::Erp, FilterMode::Nearest, fov, vp);
        let fixed = FixedTransformer::new(
            FxFormat::q28_10(),
            Projection::Erp,
            FilterMode::Nearest,
            fov,
            vp,
        );
        let pose = EulerAngles::from_degrees(10.0, 5.0, 0.0);
        let a = reference.render_fov(&src, pose).image;
        let b = fixed.render_fov(&src, pose);
        let identical = a.pixels().iter().zip(b.pixels()).filter(|(x, y)| x == y).count();
        assert!(identical as f64 / 400.0 > 0.95, "only {identical}/400 identical");
    }
}
