//! Field-of-view geometry: FOV extents, viewports and coverage tests.
//!
//! The FOV checker (paper §5.4) compares the desired viewing area implied
//! by the current head pose with the metadata attached to a pre-rendered
//! FOV frame, deciding *FOV-hit* (display directly) or *FOV-miss* (fall
//! back to on-device projective transformation).

use serde::{Deserialize, Serialize};
use std::fmt;

use evr_math::{Degrees, EulerAngles, Radians};

use crate::ProjectionError;

/// Horizontal × vertical field-of-view extents.
///
/// The paper's evaluation headset (Razer OSVR HDK2) has a 110°×110° FOV;
/// §2 uses 120°×90° as an illustration.
///
/// # Example
///
/// ```
/// use evr_projection::FovSpec;
/// let fov = FovSpec::from_degrees(110.0, 110.0);
/// assert!((fov.horizontal.0 - 110.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FovSpec {
    /// Horizontal extent.
    pub horizontal: Degrees,
    /// Vertical extent.
    pub vertical: Degrees,
}

impl FovSpec {
    /// Creates an FOV from degree extents.
    ///
    /// # Panics
    ///
    /// Panics if either extent is outside `(0, 180]`; use [`FovSpec::try_from_degrees`]
    /// for fallible construction.
    pub fn from_degrees(horizontal: f64, vertical: f64) -> Self {
        FovSpec::try_from_degrees(horizontal, vertical).expect("invalid field of view")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns [`ProjectionError::InvalidFov`] if either extent is outside
    /// `(0, 180]` degrees.
    pub fn try_from_degrees(horizontal: f64, vertical: f64) -> Result<Self, ProjectionError> {
        for d in [horizontal, vertical] {
            if !(d > 0.0 && d <= 180.0) {
                return Err(ProjectionError::InvalidFov { degrees: d });
            }
        }
        Ok(FovSpec { horizontal: Degrees(horizontal), vertical: Degrees(vertical) })
    }

    /// The HDK2 headset FOV used throughout the paper's evaluation.
    pub fn hdk2() -> Self {
        FovSpec::from_degrees(110.0, 110.0)
    }

    /// Horizontal extent in radians.
    pub fn h_radians(&self) -> Radians {
        self.horizontal.to_radians()
    }

    /// Vertical extent in radians.
    pub fn v_radians(&self) -> Radians {
        self.vertical.to_radians()
    }

    /// Returns an FOV expanded by `margin` degrees on each axis (clamped to
    /// 180°). SAS pre-renders FOV videos slightly larger than the device
    /// FOV so small head jitters still hit.
    pub fn expanded(&self, margin: Degrees) -> FovSpec {
        FovSpec {
            horizontal: Degrees((self.horizontal.0 + margin.0).min(180.0)),
            vertical: Degrees((self.vertical.0 + margin.0).min(180.0)),
        }
    }

    /// Fraction of the full sphere this FOV covers.
    pub fn sphere_fraction(&self) -> f64 {
        evr_math::sphere::fov_solid_angle(self.h_radians(), self.v_radians())
            / (4.0 * std::f64::consts::PI)
    }
}

impl fmt::Display for FovSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}°×{}°", self.horizontal.0, self.vertical.0)
    }
}

/// An output raster size in pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Viewport {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
}

impl Viewport {
    /// Creates a viewport.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero; use [`Viewport::try_new`] for
    /// fallible construction.
    pub fn new(width: u32, height: u32) -> Self {
        Viewport::try_new(width, height).expect("viewport dimensions must be non-zero")
    }

    /// Fallible constructor. A `0×N` viewport is never meaningful — it
    /// renders nothing and silently degenerates every per-pixel statistic
    /// downstream — so construction is the validation point.
    ///
    /// # Errors
    ///
    /// Returns [`ProjectionError::EmptyDimension`] if either dimension is
    /// zero.
    pub fn try_new(width: u32, height: u32) -> Result<Self, ProjectionError> {
        if width == 0 {
            return Err(ProjectionError::EmptyDimension { what: "viewport width" });
        }
        if height == 0 {
            return Err(ProjectionError::EmptyDimension { what: "viewport height" });
        }
        Ok(Viewport { width, height })
    }

    /// Total pixel count.
    pub fn pixels(&self) -> u64 {
        self.width as u64 * self.height as u64
    }
}

impl fmt::Display for Viewport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}×{}", self.width, self.height)
    }
}

/// Metadata attached to every pre-rendered FOV frame (paper §5.2: "we
/// augment the new FOV video with metadata that corresponds to the head
/// orientation for each frame").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FovFrameMeta {
    /// The head orientation the frame was pre-rendered for.
    pub orientation: EulerAngles,
    /// The FOV extents the frame covers (device FOV + streaming margin).
    pub fov: FovSpec,
}

impl FovFrameMeta {
    /// Creates frame metadata.
    pub fn new(orientation: EulerAngles, fov: FovSpec) -> Self {
        FovFrameMeta { orientation, fov }
    }

    /// FOV-hit test: does this pre-rendered frame cover the viewing area a
    /// device with `device_fov` needs at `desired` orientation?
    ///
    /// The desired view is covered when, per axis, the angular offset
    /// between the desired and pre-rendered orientations fits within half
    /// the FOV surplus: `|Δ| ≤ (stream_fov − device_fov) / 2`. Roll is
    /// ignored, matching §2 ("only rotational head motion is considered"
    /// and FOV frames are rendered upright).
    ///
    /// # Example
    ///
    /// ```
    /// use evr_projection::{FovFrameMeta, FovSpec};
    /// use evr_math::EulerAngles;
    ///
    /// let meta = FovFrameMeta::new(
    ///     EulerAngles::from_degrees(10.0, 0.0, 0.0),
    ///     FovSpec::from_degrees(120.0, 120.0),
    /// );
    /// let device = FovSpec::from_degrees(110.0, 110.0);
    /// // 4° of yaw error fits in the 5° per-side surplus...
    /// assert!(meta.covers(EulerAngles::from_degrees(14.0, 0.0, 0.0), device));
    /// // ...but 6° does not.
    /// assert!(!meta.covers(EulerAngles::from_degrees(16.0, 0.0, 0.0), device));
    /// ```
    pub fn covers(&self, desired: EulerAngles, device_fov: FovSpec) -> bool {
        self.covers_fraction(desired, device_fov, 1.0)
    }

    /// Like [`FovFrameMeta::covers`], but requiring only the central
    /// `required` fraction of the device FOV to be pre-rendered:
    /// per axis, `|Δ| ≤ (stream_fov − required·device_fov) / 2`.
    ///
    /// Human acuity falls off steeply away from the gaze centre, so a
    /// frame that covers the central half of the viewport (`required =
    /// 0.5`) is perceptually sufficient for the instant before the next
    /// segment re-centres the stream — the operating point that
    /// reproduces the paper's ~92% FOV-hit rates with real users (§8.2).
    ///
    /// # Panics
    ///
    /// Panics if `required` is outside `(0, 1]`.
    pub fn covers_fraction(
        &self,
        desired: EulerAngles,
        device_fov: FovSpec,
        required: f64,
    ) -> bool {
        assert!(required > 0.0 && required <= 1.0, "required fraction must be in (0, 1]");
        let slack_h =
            Radians((self.fov.h_radians().0 - required * device_fov.h_radians().0).max(0.0) / 2.0);
        let slack_v =
            Radians((self.fov.v_radians().0 - required * device_fov.v_radians().0).max(0.0) / 2.0);
        let d_yaw = self.orientation.yaw.angular_distance(desired.yaw);
        let d_pitch = self.orientation.pitch.angular_distance(desired.pitch);
        // Yaw slack widens with pitch: near the poles a yaw degree spans a
        // smaller great-circle angle, so compare on the great circle.
        let lat_scale = desired.pitch.cos().abs().max(1e-6);
        d_yaw.0 * lat_scale <= slack_h.0 + 1e-12 && d_pitch.0 <= slack_v.0 + 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fov_validation() {
        assert!(FovSpec::try_from_degrees(110.0, 110.0).is_ok());
        assert!(FovSpec::try_from_degrees(0.0, 90.0).is_err());
        assert!(FovSpec::try_from_degrees(90.0, 181.0).is_err());
        assert!(FovSpec::try_from_degrees(-10.0, 90.0).is_err());
    }

    #[test]
    #[should_panic(expected = "invalid field of view")]
    fn fov_panic_constructor() {
        let _ = FovSpec::from_degrees(200.0, 90.0);
    }

    #[test]
    fn viewport_validation() {
        assert_eq!(Viewport::try_new(16, 9), Ok(Viewport { width: 16, height: 9 }));
        assert_eq!(
            Viewport::try_new(0, 9),
            Err(ProjectionError::EmptyDimension { what: "viewport width" })
        );
        assert_eq!(
            Viewport::try_new(16, 0),
            Err(ProjectionError::EmptyDimension { what: "viewport height" })
        );
    }

    #[test]
    #[should_panic(expected = "viewport dimensions must be non-zero")]
    fn viewport_panic_constructor() {
        let _ = Viewport::new(0, 4);
    }

    #[test]
    fn expanded_clamps_at_180() {
        let f = FovSpec::from_degrees(170.0, 90.0).expanded(Degrees(20.0));
        assert_eq!(f.horizontal.0, 180.0);
        assert_eq!(f.vertical.0, 110.0);
    }

    #[test]
    fn sphere_fraction_monotonic() {
        let small = FovSpec::from_degrees(60.0, 60.0).sphere_fraction();
        let large = FovSpec::from_degrees(120.0, 120.0).sphere_fraction();
        assert!(small < large);
        assert!(large < 0.5);
    }

    #[test]
    fn exact_match_is_hit_with_zero_margin() {
        let pose = EulerAngles::from_degrees(33.0, -12.0, 0.0);
        let fov = FovSpec::hdk2();
        let meta = FovFrameMeta::new(pose, fov);
        assert!(meta.covers(pose, fov));
    }

    #[test]
    fn miss_beyond_margin() {
        let fov = FovSpec::from_degrees(110.0, 110.0);
        let stream = fov.expanded(Degrees(10.0));
        let meta = FovFrameMeta::new(EulerAngles::default(), stream);
        assert!(meta.covers(EulerAngles::from_degrees(4.9, 0.0, 0.0), fov));
        assert!(!meta.covers(EulerAngles::from_degrees(5.2, 0.0, 0.0), fov));
        assert!(!meta.covers(EulerAngles::from_degrees(0.0, 6.0, 0.0), fov));
    }

    #[test]
    fn yaw_wrap_hit() {
        let stream = FovSpec::from_degrees(110.0, 110.0).expanded(Degrees(10.0));
        let meta = FovFrameMeta::new(EulerAngles::from_degrees(178.0, 0.0, 0.0), stream);
        // Desired at -178°: only 4° away across the seam.
        assert!(meta.covers(
            EulerAngles::from_degrees(-178.0, 0.0, 0.0),
            FovSpec::from_degrees(110.0, 110.0)
        ));
    }

    #[test]
    fn roll_is_ignored() {
        let fov = FovSpec::hdk2();
        let meta = FovFrameMeta::new(EulerAngles::default(), fov.expanded(Degrees(5.0)));
        assert!(meta.covers(EulerAngles::from_degrees(0.0, 0.0, 45.0), fov));
    }

    proptest! {
        #[test]
        fn prop_zero_offset_always_hits(yaw in -180.0f64..180.0, pitch in -80.0f64..80.0, margin in 0.0f64..30.0) {
            let pose = EulerAngles::from_degrees(yaw, pitch, 0.0);
            let device = FovSpec::from_degrees(110.0, 110.0);
            let meta = FovFrameMeta::new(pose, device.expanded(Degrees(margin)));
            prop_assert!(meta.covers(pose, device));
        }

        #[test]
        fn prop_coverage_monotonic_in_margin(offset in 0.0f64..20.0, margin in 0.0f64..40.0) {
            let device = FovSpec::from_degrees(110.0, 110.0);
            let desired = EulerAngles::from_degrees(offset, 0.0, 0.0);
            let tight = FovFrameMeta::new(EulerAngles::default(), device.expanded(Degrees(margin)));
            let loose = FovFrameMeta::new(EulerAngles::default(), device.expanded(Degrees(margin + 5.0)));
            // Anything the tight stream covers, the looser stream covers too.
            if tight.covers(desired, device) {
                prop_assert!(loose.covers(desired, device));
            }
        }
    }
}
