//! The projective-transformation (PT) pipeline — the paper's "VR tax".
//!
//! Every 360° frame displayed on a head-mounted display goes through the
//! three PT stages of paper §6.1:
//!
//! 1. **Perspective update** ([`perspective`]) — for each output pixel
//!    `P(i, j)` of the field-of-view (FOV) frame, compute the point `P′` on
//!    the unit sphere it corresponds to under the current head orientation.
//! 2. **Mapping** ([`mapping`]) — project `P′` to the point `P″ = (u, v)`
//!    in the planar input frame, under one of three projection methods:
//!    equirectangular (ERP), cubemap (CMP) or equi-angular cubemap (EAC).
//!    The implementation mirrors the paper's modular hardware decomposition
//!    (Fig. 9): `C2S`, `C2F` and per-method linear scalings `LS`.
//! 3. **Filtering** ([`filter`]) — reconstruct the pixel value at `(u, v)`
//!    by nearest-neighbour or bilinear sampling.
//!
//! Two complete implementations are provided:
//!
//! * [`transform::Transformer`] — the `f64` reference (what a GPU shader
//!   computes), also used to *generate* content via the inverse mappings.
//! * [`fixed::FixedTransformer`] — the bit-faithful fixed-point datapath of
//!   the PTE accelerator, parameterised by any `Q[total, int]` format so
//!   the Figure 11 bit-width sweep can be reproduced.
//!
//! # Example
//!
//! ```
//! use evr_projection::{FovSpec, Projection, FilterMode, Viewport, transform::Transformer};
//! use evr_projection::pixel::{ImageBuffer, Rgb};
//! use evr_math::EulerAngles;
//!
//! // A tiny equirectangular source: left hemisphere red, right green.
//! let src = ImageBuffer::from_fn(64, 32, |x, _| {
//!     if x < 32 { Rgb::new(255, 0, 0) } else { Rgb::new(0, 255, 0) }
//! });
//! let t = Transformer::new(
//!     Projection::Erp,
//!     FilterMode::Nearest,
//!     FovSpec::from_degrees(90.0, 90.0),
//!     Viewport::new(16, 16),
//! );
//! let fov = t.render_fov(&src, EulerAngles::default());
//! assert_eq!(fov.image.width(), 16);
//! ```

pub mod error;
pub mod filter;
pub mod fixed;
pub mod fov;
pub mod lut;
pub mod mapping;
mod par;
pub mod perspective;
pub mod pixel;
pub mod transform;

pub use error::ProjectionError;
pub use filter::FilterMode;
pub use fixed::FixedTransformer;
pub use fov::{FovFrameMeta, FovSpec, Viewport};
pub use lut::{LutStats, SamplingMap, SamplingMapCache};
pub use mapping::Projection;
pub use pixel::{ImageBuffer, PixelSource, Rgb};
pub use transform::{FovFrame, Transformer};
