//! The sampling-map LUT: cached per-pixel source coordinates.
//!
//! The coordinate half of the PT (perspective update + mapping) depends
//! only on the static configuration (projection, filter, FOV, viewport,
//! numeric format) and the head orientation — not on pixel data. SAS
//! snaps orientations to a cluster grid, experiment drivers analyze
//! thousands of frames at a handful of poses, and `Pte::render_frame`
//! used to run the *same* mapping twice (once in fixed point to render,
//! once in `f64` to analyze). A [`SamplingMap`] materialises the
//! coordinate stream once; a [`SamplingMapCache`] keys it on the full
//! configuration plus a (optionally quantized) orientation and reuses
//! it across frames, across renderers, and between rendering and
//! analysis.
//!
//! Reuse never changes results: a cached map holds exactly the
//! coordinates the transformer would recompute, so rendering through
//! the cache is bit-identical to the direct path (pinned by
//! `tests/pt_fastpath.rs`). With a non-zero orientation quantum the
//! pose is snapped *before* both keying and map construction, so the
//! cache is still a pure function of its inputs — it just renders the
//! snapped pose.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, OnceLock};

use evr_math::fixed::{Fx, FxFormat};
use evr_math::{Degrees, EulerAngles, Radians};

use crate::filter::FilterMode;
use crate::fixed::FixedTransformer;
use crate::fov::{FovSpec, Viewport};
use crate::mapping::Projection;
use crate::transform::Transformer;

/// Default cache budget in stored coordinate pairs (not maps): 8M pairs
/// ≈ 128 MB worst case. A 2560×1440 render map is ~3.7M pairs; a
/// stride-4 analysis map of the same viewport is ~230k.
pub const DEFAULT_CAPACITY_COORDS: usize = 8 * 1024 * 1024;

/// One materialised coordinate stream: the `(u, v)` (or fixed-point)
/// source coordinates of every pixel of a viewport at one orientation,
/// in row-major order (optionally strided for analysis sampling).
#[derive(Debug, Clone, PartialEq)]
pub struct SamplingMap {
    viewport: Viewport,
    stride: u32,
    coords: MapCoords,
}

/// The two coordinate representations a map can hold.
#[derive(Debug, Clone, PartialEq)]
enum MapCoords {
    /// `f64` normalised `(u, v)` from the reference [`Transformer`].
    Reference(Vec<(f64, f64)>),
    /// Fixed-point coordinates from a [`FixedTransformer`] in `format`.
    Fixed { format: FxFormat, coords: Vec<(Fx, Fx)> },
}

impl SamplingMap {
    /// Materialises the reference (`f64`) coordinate stream of `t` at
    /// `orientation`, sampling every `stride`-th pixel per axis
    /// (`stride == 1` is the full render map).
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    pub fn build_reference(t: &Transformer, orientation: EulerAngles, stride: u32) -> Self {
        SamplingMap {
            viewport: t.viewport(),
            stride,
            coords: MapCoords::Reference(t.coordinate_map_strided(orientation, stride)),
        }
    }

    /// Materialises the fixed-point coordinate stream of `t` at
    /// `orientation` (always full, stride 1 — the PTE renders every
    /// pixel).
    pub fn build_fixed(t: &FixedTransformer, orientation: EulerAngles) -> Self {
        SamplingMap {
            viewport: t.viewport(),
            stride: 1,
            coords: MapCoords::Fixed { format: t.format(), coords: t.coordinate_map(orientation) },
        }
    }

    /// The viewport the map was built for.
    pub fn viewport(&self) -> Viewport {
        self.viewport
    }

    /// The sampling stride (1 = every pixel).
    pub fn stride(&self) -> u32 {
        self.stride
    }

    /// Number of stored coordinate pairs.
    pub fn len(&self) -> usize {
        match &self.coords {
            MapCoords::Reference(c) => c.len(),
            MapCoords::Fixed { coords, .. } => coords.len(),
        }
    }

    /// Whether the map holds no coordinates.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The reference coordinates, if this is an `f64` map.
    pub fn as_reference(&self) -> Option<&[(f64, f64)]> {
        match &self.coords {
            MapCoords::Reference(c) => Some(c),
            MapCoords::Fixed { .. } => None,
        }
    }

    /// The fixed-point coordinates and their format, if this is a
    /// fixed-point map.
    pub fn as_fixed(&self) -> Option<(FxFormat, &[(Fx, Fx)])> {
        match &self.coords {
            MapCoords::Reference(_) => None,
            MapCoords::Fixed { format, coords } => Some((*format, coords)),
        }
    }
}

/// Cache key: the full static configuration plus the orientation (bit
/// patterns of the possibly-snapped pose) and sampling stride.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SamplingKey {
    projection: Projection,
    filter: FilterMode,
    fov: (u64, u64),
    viewport: Viewport,
    pose: (u64, u64, u64),
    stride: u32,
    /// `None` for the `f64` reference stream.
    format: Option<FxFormat>,
}

impl SamplingKey {
    fn new(
        projection: Projection,
        filter: FilterMode,
        fov: FovSpec,
        viewport: Viewport,
        pose: EulerAngles,
        stride: u32,
        format: Option<FxFormat>,
    ) -> Self {
        SamplingKey {
            projection,
            filter,
            fov: (fov.horizontal.0.to_bits(), fov.vertical.0.to_bits()),
            viewport,
            pose: (pose.yaw.0.to_bits(), pose.pitch.0.to_bits(), pose.roll.0.to_bits()),
            stride,
            format,
        }
    }
}

/// Cumulative lookup statistics of a [`SamplingMapCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LutStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to build a map.
    pub misses: u64,
}

impl LutStats {
    /// Hit fraction in `[0, 1]` (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct CacheState {
    capacity_coords: usize,
    quantum_deg: f64,
    maps: HashMap<SamplingKey, Arc<SamplingMap>>,
    order: VecDeque<SamplingKey>,
    total_coords: usize,
    stats: LutStats,
}

impl CacheState {
    fn insert(&mut self, key: SamplingKey, map: Arc<SamplingMap>) -> Arc<SamplingMap> {
        // A concurrent builder may have raced us here; both maps are
        // identical by construction, so keep the resident one.
        if let Some(existing) = self.maps.get(&key) {
            return existing.clone();
        }
        self.total_coords += map.len();
        self.maps.insert(key, map.clone());
        self.order.push_back(key);
        // Evict oldest-first until within budget, always keeping the
        // newest map so a single oversized map still caches.
        while self.total_coords > self.capacity_coords && self.order.len() > 1 {
            if let Some(old) = self.order.pop_front() {
                if let Some(evicted) = self.maps.remove(&old) {
                    self.total_coords -= evicted.len();
                }
            }
        }
        map
    }
}

/// A bounded, shareable cache of [`SamplingMap`]s.
///
/// Cloning shares the underlying store (the handle is an `Arc`), so one
/// cache can serve every renderer and analyzer in a process —
/// [`SamplingMapCache::shared`] returns the process-wide instance the
/// PTE engine uses by default.
///
/// # Example
///
/// ```
/// use evr_projection::lut::SamplingMapCache;
/// use evr_projection::{Transformer, Projection, FilterMode, FovSpec, Viewport};
/// use evr_math::EulerAngles;
///
/// let cache = SamplingMapCache::new();
/// let t = Transformer::new(
///     Projection::Erp,
///     FilterMode::Bilinear,
///     FovSpec::from_degrees(110.0, 110.0),
///     Viewport::new(8, 8),
/// );
/// let pose = EulerAngles::from_degrees(30.0, 0.0, 0.0);
/// let (_, hit) = cache.reference_map(&t, pose, 1);
/// assert!(!hit);
/// let (_, hit) = cache.reference_map(&t, pose, 1);
/// assert!(hit);
/// ```
#[derive(Debug, Clone)]
pub struct SamplingMapCache {
    inner: Arc<Mutex<CacheState>>,
}

impl Default for SamplingMapCache {
    fn default() -> Self {
        Self::new()
    }
}

impl SamplingMapCache {
    /// A private cache with the default coordinate budget and exact
    /// (bit-pattern) orientation keying.
    pub fn new() -> Self {
        Self::with_config(DEFAULT_CAPACITY_COORDS, 0.0)
    }

    /// A private cache with an explicit coordinate budget and
    /// orientation quantum in degrees (`0.0` = exact keying; a positive
    /// quantum snaps poses to that grid before keying *and* building).
    ///
    /// # Panics
    ///
    /// Panics if `capacity_coords` is zero or `quantum_deg` is negative
    /// or non-finite.
    pub fn with_config(capacity_coords: usize, quantum_deg: f64) -> Self {
        assert!(capacity_coords > 0, "cache capacity must be non-zero");
        assert!(
            quantum_deg >= 0.0 && quantum_deg.is_finite(),
            "orientation quantum must be finite and non-negative"
        );
        SamplingMapCache {
            inner: Arc::new(Mutex::new(CacheState {
                capacity_coords,
                quantum_deg,
                maps: HashMap::new(),
                order: VecDeque::new(),
                total_coords: 0,
                stats: LutStats::default(),
            })),
        }
    }

    /// The process-wide shared cache (default configuration). Maps are
    /// pure functions of their key, so sharing across subsystems can
    /// only ever save work, never change output.
    pub fn shared() -> Self {
        static SHARED: OnceLock<SamplingMapCache> = OnceLock::new();
        SHARED.get_or_init(SamplingMapCache::new).clone()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheState> {
        // A poisoned lock only means another thread panicked mid-insert;
        // the state is still a valid cache.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The pose a lookup with this cache's quantum actually uses.
    pub fn snap(&self, pose: EulerAngles) -> EulerAngles {
        let q = self.lock().quantum_deg;
        snap_pose(pose, q)
    }

    /// Looks up (or builds and caches) the reference coordinate stream
    /// of `t` at `orientation` with the given stride. Returns the map
    /// and whether it was a cache hit.
    pub fn reference_map(
        &self,
        t: &Transformer,
        orientation: EulerAngles,
        stride: u32,
    ) -> (Arc<SamplingMap>, bool) {
        let (key, pose) = {
            let mut state = self.lock();
            let pose = snap_pose(orientation, state.quantum_deg);
            let key = SamplingKey::new(
                t.projection(),
                t.filter(),
                t.fov(),
                t.viewport(),
                pose,
                stride,
                None,
            );
            if let Some(map) = state.maps.get(&key).cloned() {
                state.stats.hits += 1;
                return (map, true);
            }
            state.stats.misses += 1;
            (key, pose)
        };
        // Build outside the lock so concurrent users of other keys
        // aren't serialised behind an expensive mapping pass.
        let map = Arc::new(SamplingMap::build_reference(t, pose, stride));
        (self.lock().insert(key, map), false)
    }

    /// Looks up (or builds and caches) the fixed-point coordinate
    /// stream of `t` at `orientation`. Returns the map and whether it
    /// was a cache hit.
    pub fn fixed_map(
        &self,
        t: &FixedTransformer,
        orientation: EulerAngles,
    ) -> (Arc<SamplingMap>, bool) {
        let (key, pose) = {
            let mut state = self.lock();
            let pose = snap_pose(orientation, state.quantum_deg);
            let key = SamplingKey::new(
                t.projection(),
                t.filter(),
                t.fov(),
                t.viewport(),
                pose,
                1,
                Some(t.format()),
            );
            if let Some(map) = state.maps.get(&key).cloned() {
                state.stats.hits += 1;
                return (map, true);
            }
            state.stats.misses += 1;
            (key, pose)
        };
        let map = Arc::new(SamplingMap::build_fixed(t, pose));
        (self.lock().insert(key, map), false)
    }

    /// Cumulative hit/miss statistics.
    pub fn stats(&self) -> LutStats {
        self.lock().stats
    }

    /// Number of resident maps.
    pub fn len(&self) -> usize {
        self.lock().maps.len()
    }

    /// Whether no maps are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total resident coordinate pairs.
    pub fn resident_coords(&self) -> usize {
        self.lock().total_coords
    }
}

fn snap_pose(pose: EulerAngles, quantum_deg: f64) -> EulerAngles {
    if quantum_deg <= 0.0 {
        return pose;
    }
    let snap =
        |r: Radians| Degrees((r.to_degrees().0 / quantum_deg).round() * quantum_deg).to_radians();
    EulerAngles::new(snap(pose.yaw), snap(pose.pitch), snap(pose.roll))
}

#[cfg(test)]
mod tests {
    use super::*;
    use evr_math::fixed::FxFormat;

    fn transformer(vp: u32) -> Transformer {
        Transformer::new(
            Projection::Erp,
            FilterMode::Bilinear,
            FovSpec::from_degrees(100.0, 100.0),
            Viewport::new(vp, vp),
        )
    }

    #[test]
    fn reference_map_matches_direct_computation() {
        let t = transformer(9);
        let pose = EulerAngles::from_degrees(42.0, -7.0, 3.0);
        let cache = SamplingMapCache::new();
        let (map, hit) = cache.reference_map(&t, pose, 1);
        assert!(!hit);
        assert_eq!(map.as_reference().unwrap(), t.coordinate_map(pose).as_slice());
        assert_eq!(map.viewport(), t.viewport());
        assert_eq!(map.stride(), 1);
    }

    #[test]
    fn strided_maps_are_keyed_separately() {
        let t = transformer(8);
        let pose = EulerAngles::default();
        let cache = SamplingMapCache::new();
        let (full, _) = cache.reference_map(&t, pose, 1);
        let (strided, hit) = cache.reference_map(&t, pose, 4);
        assert!(!hit, "stride must be part of the key");
        assert_eq!(full.len(), 64);
        assert_eq!(strided.len(), 4);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn fixed_and_reference_streams_do_not_collide() {
        let t = transformer(6);
        let f = FixedTransformer::new(
            FxFormat::q28_10(),
            t.projection(),
            t.filter(),
            t.fov(),
            t.viewport(),
        );
        let pose = EulerAngles::from_degrees(10.0, 5.0, 0.0);
        let cache = SamplingMapCache::new();
        let (_, hit) = cache.reference_map(&t, pose, 1);
        assert!(!hit);
        let (fixed, hit) = cache.fixed_map(&f, pose);
        assert!(!hit, "fixed stream must not alias the f64 stream");
        assert_eq!(fixed.as_fixed().unwrap().1, f.coordinate_map(pose).as_slice());
        let (_, hit) = cache.fixed_map(&f, pose);
        assert!(hit);
        assert_eq!(cache.stats(), LutStats { hits: 1, misses: 2 });
    }

    #[test]
    fn eviction_keeps_the_budget_and_the_newest_map() {
        // Budget of 100 pairs; each 6×6 map is 36 — the third insert
        // evicts the first.
        let cache = SamplingMapCache::with_config(100, 0.0);
        let t = transformer(6);
        for yaw in [0.0, 10.0, 20.0] {
            cache.reference_map(&t, EulerAngles::from_degrees(yaw, 0.0, 0.0), 1);
        }
        assert_eq!(cache.len(), 2);
        assert!(cache.resident_coords() <= 100);
        let (_, hit) = cache.reference_map(&t, EulerAngles::from_degrees(20.0, 0.0, 0.0), 1);
        assert!(hit, "newest map must survive eviction");
        let (_, hit) = cache.reference_map(&t, EulerAngles::default(), 1);
        assert!(!hit, "oldest map must have been evicted");
    }

    #[test]
    fn quantum_snaps_nearby_poses_onto_one_map() {
        let cache = SamplingMapCache::with_config(DEFAULT_CAPACITY_COORDS, 1.0);
        let t = transformer(5);
        let (_, hit) = cache.reference_map(&t, EulerAngles::from_degrees(30.2, 0.0, 0.0), 1);
        assert!(!hit);
        let (map, hit) = cache.reference_map(&t, EulerAngles::from_degrees(29.9, 0.0, 0.0), 1);
        assert!(hit, "both poses snap to 30°");
        // The map holds the snapped pose's coordinates exactly.
        let snapped = cache.snap(EulerAngles::from_degrees(30.2, 0.0, 0.0));
        assert_eq!(map.as_reference().unwrap(), t.coordinate_map(snapped).as_slice());
    }

    #[test]
    fn shared_cache_is_one_instance() {
        let a = SamplingMapCache::shared();
        let b = SamplingMapCache::shared();
        assert!(Arc::ptr_eq(&a.inner, &b.inner));
    }
}
