//! The *mapping* stage: sphere point → planar frame coordinates.
//!
//! Supports the three projection methods the PTE hardware is configurable
//! for (paper §6.2): equirectangular (ERP), cubemap (CMP) and equi-angular
//! cubemap (EAC). The module mirrors the paper's modular decomposition
//! (Fig. 9 / Equations 1–3):
//!
//! ```text
//! ERP : C2S ∘ LS_erp
//! EAC : C2S ∘ LS_eac ∘ C2F
//! CMP :       LS_cmp ∘ C2F
//! ```
//!
//! where `C2S` is the Cartesian-to-Spherical transformation, `C2F` the
//! Cube-to-Frame layout transformation, and `LS` a per-method linear (or
//! equi-angular) scaling.
//!
//! All mappings produce *normalised* frame coordinates `(u, v) ∈ [0, 1)²`;
//! scaling to pixel addresses happens in the filtering stage (and, in the
//! PTE, in the wide address-generation unit rather than the narrow Q-format
//! ALU). Inverse mappings (frame → sphere) are provided for content
//! generation and format transcoding.

use serde::{Deserialize, Serialize};
use std::fmt;

use evr_math::{SphericalCoord, Vec3};

/// The cube faces, in the 3×2 frame layout used by CMP and EAC:
/// top row `+X −X +Y`, bottom row `−Y +Z −Z`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CubeFace {
    /// Right (`+x` dominant).
    PosX,
    /// Left (`−x` dominant).
    NegX,
    /// Up (`+y` dominant).
    PosY,
    /// Down (`−y` dominant).
    NegY,
    /// Front (`+z` dominant).
    PosZ,
    /// Back (`−z` dominant).
    NegZ,
}

impl CubeFace {
    /// All six faces in layout order.
    pub const ALL: [CubeFace; 6] = [
        CubeFace::PosX,
        CubeFace::NegX,
        CubeFace::PosY,
        CubeFace::NegY,
        CubeFace::PosZ,
        CubeFace::NegZ,
    ];

    /// `(column, row)` of this face in the 3×2 frame layout.
    pub fn layout_cell(self) -> (u32, u32) {
        match self {
            CubeFace::PosX => (0, 0),
            CubeFace::NegX => (1, 0),
            CubeFace::PosY => (2, 0),
            CubeFace::NegY => (0, 1),
            CubeFace::PosZ => (1, 1),
            CubeFace::NegZ => (2, 1),
        }
    }

    /// The face whose layout cell is `(col, row)`.
    ///
    /// # Panics
    ///
    /// Panics if `col > 2` or `row > 1`.
    pub fn from_layout_cell(col: u32, row: u32) -> CubeFace {
        match (col, row) {
            (0, 0) => CubeFace::PosX,
            (1, 0) => CubeFace::NegX,
            (2, 0) => CubeFace::PosY,
            (0, 1) => CubeFace::NegY,
            (1, 1) => CubeFace::PosZ,
            (2, 1) => CubeFace::NegZ,
            _ => panic!("invalid cube layout cell ({col}, {row})"),
        }
    }
}

/// A projection method for storing spherical content in planar frames.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Projection {
    /// Equirectangular projection: longitude/latitude mapped linearly.
    #[default]
    Erp,
    /// Cubemap projection: gnomonic projection onto six cube faces.
    Cmp,
    /// Equi-angular cubemap: cubemap with per-face arctangent re-spacing
    /// for uniform angular sampling.
    Eac,
}

impl Projection {
    /// All supported projections.
    pub const ALL: [Projection; 3] = [Projection::Erp, Projection::Cmp, Projection::Eac];

    /// Maps a direction on the sphere to normalised frame coordinates
    /// `(u, v) ∈ [0, 1)²`.
    ///
    /// The direction need not be unit length (only its orientation is
    /// used), but must be non-zero.
    pub fn sphere_to_frame(self, dir: Vec3) -> (f64, f64) {
        match self {
            Projection::Erp => {
                let s = c2s(dir);
                ls_erp(s)
            }
            Projection::Cmp => {
                let (face, a, b) = cube_project(dir);
                c2f(face, ls_cmp(a), ls_cmp(b))
            }
            Projection::Eac => {
                let (face, a, b) = cube_project(dir);
                c2f(face, ls_eac(a), ls_eac(b))
            }
        }
    }

    /// Maps normalised frame coordinates `(u, v) ∈ [0, 1)²` back to a unit
    /// direction — the inverse used for content generation and transcoding.
    pub fn frame_to_sphere(self, u: f64, v: f64) -> Vec3 {
        match self {
            Projection::Erp => {
                let lon = (u - 0.5) * std::f64::consts::TAU;
                let lat = (0.5 - v) * std::f64::consts::PI;
                SphericalCoord::new(evr_math::Radians(lon), evr_math::Radians(lat)).to_unit_vector()
            }
            Projection::Cmp => {
                let (face, fu, fv) = f2c(u, v);
                cube_unproject(face, ls_cmp_inv(fu), ls_cmp_inv(fv))
            }
            Projection::Eac => {
                let (face, fu, fv) = f2c(u, v);
                cube_unproject(face, ls_eac_inv(fu), ls_eac_inv(fv))
            }
        }
    }

    /// The natural aspect ratio (width / height) of a full frame stored in
    /// this projection: 2:1 for ERP, 3:2 for the cube layouts.
    pub fn frame_aspect(self) -> f64 {
        match self {
            Projection::Erp => 2.0,
            Projection::Cmp | Projection::Eac => 1.5,
        }
    }
}

impl fmt::Display for Projection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Projection::Erp => "ERP",
            Projection::Cmp => "CMP",
            Projection::Eac => "EAC",
        };
        f.write_str(s)
    }
}

/// `C2S`: Cartesian direction → spherical coordinate (shared by ERP and
/// EAC in the paper's Fig. 9 decomposition).
pub fn c2s(dir: Vec3) -> SphericalCoord {
    SphericalCoord::from_vector(dir).expect("mapping requires a non-zero direction")
}

/// `LS_erp`: linear scaling of longitude/latitude into `[0, 1)²`.
pub fn ls_erp(s: SphericalCoord) -> (f64, f64) {
    let u = s.lon.0 / std::f64::consts::TAU + 0.5;
    let v = 0.5 - s.lat.0 / std::f64::consts::PI;
    (clamp_unit(u), clamp_unit(v))
}

/// Gnomonic projection onto the dominant cube face. Returns the face and
/// the face-local coordinates `(a, b) ∈ [−1, 1]²`.
pub fn cube_project(dir: Vec3) -> (CubeFace, f64, f64) {
    let (ax, ay, az) = (dir.x.abs(), dir.y.abs(), dir.z.abs());
    if ax >= ay && ax >= az {
        if dir.x > 0.0 {
            (CubeFace::PosX, -dir.z / ax, -dir.y / ax)
        } else {
            (CubeFace::NegX, dir.z / ax, -dir.y / ax)
        }
    } else if ay >= ax && ay >= az {
        if dir.y > 0.0 {
            (CubeFace::PosY, dir.x / ay, dir.z / ay)
        } else {
            (CubeFace::NegY, dir.x / ay, -dir.z / ay)
        }
    } else if dir.z > 0.0 {
        (CubeFace::PosZ, dir.x / az, -dir.y / az)
    } else {
        (CubeFace::NegZ, -dir.x / az, -dir.y / az)
    }
}

/// Inverse of [`cube_project`]: face + face-local coordinates → direction
/// (not normalised; callers needing a unit vector should normalise).
pub fn cube_unproject(face: CubeFace, a: f64, b: f64) -> Vec3 {
    let v = match face {
        CubeFace::PosX => Vec3::new(1.0, -b, -a),
        CubeFace::NegX => Vec3::new(-1.0, -b, a),
        CubeFace::PosY => Vec3::new(a, 1.0, b),
        CubeFace::NegY => Vec3::new(a, -1.0, -b),
        CubeFace::PosZ => Vec3::new(a, -b, 1.0),
        CubeFace::NegZ => Vec3::new(-a, -b, -1.0),
    };
    v.normalized().expect("cube direction cannot be zero")
}

/// `LS_cmp`: linear scaling of a face coordinate from `[−1, 1]` to `[0, 1)`.
pub fn ls_cmp(t: f64) -> f64 {
    clamp_unit((t + 1.0) / 2.0)
}

/// Inverse of [`ls_cmp`].
pub fn ls_cmp_inv(t: f64) -> f64 {
    t * 2.0 - 1.0
}

/// `LS_eac`: equi-angular scaling `t ↦ (4/π)·atan(t)` folded into `[0, 1)`.
///
/// Equalises the angular footprint of texels across a cube face (Google's
/// EAC), at the cost of an arctangent per coordinate.
pub fn ls_eac(t: f64) -> f64 {
    clamp_unit((std::f64::consts::FRAC_2_PI * t.atan() * 2.0 + 1.0) / 2.0)
}

/// Inverse of [`ls_eac`].
pub fn ls_eac_inv(t: f64) -> f64 {
    ((t * 2.0 - 1.0) * std::f64::consts::FRAC_PI_4).tan()
}

/// `C2F`: cube face + scaled face coordinates → frame coordinates in the
/// 3×2 layout.
pub fn c2f(face: CubeFace, su: f64, sv: f64) -> (f64, f64) {
    let (col, row) = face.layout_cell();
    ((col as f64 + su) / 3.0, (row as f64 + sv) / 2.0)
}

/// Inverse of [`c2f`]: frame coordinates → face + scaled face coordinates.
pub fn f2c(u: f64, v: f64) -> (CubeFace, f64, f64) {
    let u = clamp_unit(u);
    let v = clamp_unit(v);
    let col = ((u * 3.0) as u32).min(2);
    let row = ((v * 2.0) as u32).min(1);
    let face = CubeFace::from_layout_cell(col, row);
    (face, u * 3.0 - col as f64, v * 2.0 - row as f64)
}

fn clamp_unit(t: f64) -> f64 {
    // Frame coordinates live in the half-open [0, 1); the nudge below 1.0
    // keeps pixel addressing in range at the exact seam.
    t.clamp(0.0, 1.0 - 1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn erp_cardinal_points() {
        // Forward maps to frame centre.
        let (u, v) = Projection::Erp.sphere_to_frame(Vec3::FORWARD);
        assert!((u - 0.5).abs() < 1e-12 && (v - 0.5).abs() < 1e-12);
        // Straight up maps to the top edge.
        let (_, v) = Projection::Erp.sphere_to_frame(Vec3::UP);
        assert!(v < 1e-12);
        // Right maps to u = 0.75.
        let (u, _) = Projection::Erp.sphere_to_frame(Vec3::RIGHT);
        assert!((u - 0.75).abs() < 1e-12);
    }

    #[test]
    fn cube_faces_by_dominant_axis() {
        assert_eq!(cube_project(Vec3::RIGHT).0, CubeFace::PosX);
        assert_eq!(cube_project(-Vec3::RIGHT).0, CubeFace::NegX);
        assert_eq!(cube_project(Vec3::UP).0, CubeFace::PosY);
        assert_eq!(cube_project(-Vec3::UP).0, CubeFace::NegY);
        assert_eq!(cube_project(Vec3::FORWARD).0, CubeFace::PosZ);
        assert_eq!(cube_project(-Vec3::FORWARD).0, CubeFace::NegZ);
    }

    #[test]
    fn face_centers_roundtrip() {
        for face in CubeFace::ALL {
            let dir = cube_unproject(face, 0.0, 0.0);
            let (f2, a, b) = cube_project(dir);
            assert_eq!(face, f2);
            assert!(a.abs() < 1e-12 && b.abs() < 1e-12);
        }
    }

    #[test]
    fn layout_cells_are_bijective() {
        for face in CubeFace::ALL {
            let (c, r) = face.layout_cell();
            assert_eq!(CubeFace::from_layout_cell(c, r), face);
        }
    }

    #[test]
    #[should_panic(expected = "invalid cube layout cell")]
    fn bad_layout_cell_panics() {
        let _ = CubeFace::from_layout_cell(3, 0);
    }

    #[test]
    fn eac_scaling_fixed_points() {
        for (t, expect) in [(-1.0, 0.0), (0.0, 0.5), (1.0, 1.0)] {
            assert!((ls_eac(t) - expect).abs() < 1e-9, "ls_eac({t})");
        }
        // EAC stretches the face centre relative to CMP.
        assert!(ls_eac(0.5) > ls_cmp(0.5));
    }

    #[test]
    fn aspect_ratios() {
        assert_eq!(Projection::Erp.frame_aspect(), 2.0);
        assert_eq!(Projection::Cmp.frame_aspect(), 1.5);
        assert_eq!(Projection::Eac.frame_aspect(), 1.5);
    }

    #[test]
    fn display_names() {
        assert_eq!(Projection::Erp.to_string(), "ERP");
        assert_eq!(Projection::Cmp.to_string(), "CMP");
        assert_eq!(Projection::Eac.to_string(), "EAC");
    }

    fn roundtrip_error(p: Projection, dir: Vec3) -> f64 {
        let (u, v) = p.sphere_to_frame(dir);
        let back = p.frame_to_sphere(u, v);
        (back - dir.normalized().unwrap()).norm()
    }

    #[test]
    fn roundtrips_for_sample_directions() {
        let dirs = [
            Vec3::new(0.3, 0.4, 0.8),
            Vec3::new(-0.7, 0.1, 0.2),
            Vec3::new(0.1, -0.9, -0.3),
            Vec3::new(-0.5, -0.5, 0.5),
        ];
        for p in Projection::ALL {
            for d in dirs {
                assert!(roundtrip_error(p, d) < 1e-9, "{p} {d}");
            }
        }
    }

    proptest! {
        #[test]
        fn prop_sphere_frame_roundtrip(x in -1.0f64..1.0, y in -1.0f64..1.0, z in -1.0f64..1.0) {
            prop_assume!(x.abs() + y.abs() + z.abs() > 0.1);
            let dir = Vec3::new(x, y, z);
            for p in Projection::ALL {
                prop_assert!(roundtrip_error(p, dir) < 1e-6, "{p}");
            }
        }

        #[test]
        fn prop_frame_coords_in_unit_square(x in -1.0f64..1.0, y in -1.0f64..1.0, z in -1.0f64..1.0) {
            prop_assume!(x.abs() + y.abs() + z.abs() > 0.1);
            for p in Projection::ALL {
                let (u, v) = p.sphere_to_frame(Vec3::new(x, y, z));
                prop_assert!((0.0..1.0).contains(&u));
                prop_assert!((0.0..1.0).contains(&v));
            }
        }

        #[test]
        fn prop_frame_sphere_produces_unit(u in 0.0f64..1.0, v in 0.0f64..1.0) {
            for p in Projection::ALL {
                prop_assert!((p.frame_to_sphere(u, v).norm() - 1.0).abs() < 1e-9);
            }
        }

        #[test]
        fn prop_cube_face_coords_bounded(x in -1.0f64..1.0, y in -1.0f64..1.0, z in -1.0f64..1.0) {
            prop_assume!(x.abs() + y.abs() + z.abs() > 0.1);
            let (_, a, b) = cube_project(Vec3::new(x, y, z));
            prop_assert!(a.abs() <= 1.0 + 1e-12);
            prop_assert!(b.abs() <= 1.0 + 1e-12);
        }
    }
}
