//! Scanline-parallel grid evaluation for the PT hot paths.
//!
//! The PT is embarrassingly parallel: every output pixel is a pure
//! function of `(i, j)` and the frame configuration. [`fill_grid`]
//! exploits that by splitting the row-major output into contiguous
//! row bands and filling each band on its own scoped thread (the same
//! zero-dependency `std::thread::scope` pattern the SAS ingestion
//! pipeline uses for segments). Because each slot is written exactly
//! once with `f(x, y)` and `f` is pure, the result is bit-identical to
//! the sequential loop for any thread count — parallelism changes only
//! wall-clock time, never pixels.

/// Grids smaller than this are filled sequentially: thread spawn and
/// join overhead (~tens of µs) would dominate the work.
const MIN_PARALLEL_ITEMS: usize = 16 * 1024;

/// Threads to use for a grid of `items` slots: 1 below the parallel
/// threshold, otherwise the machine's available parallelism.
pub(crate) fn auto_threads(items: usize) -> usize {
    if items < MIN_PARALLEL_ITEMS {
        1
    } else {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
}

/// Evaluates `f(x, y)` for every cell of a `width`×`height` grid into a
/// row-major `Vec`, splitting the rows over at most `threads` scoped
/// threads. `threads <= 1` runs the plain sequential loop; any other
/// value produces bit-identical output (see module docs).
pub(crate) fn fill_grid<T, F>(width: u32, height: u32, threads: usize, f: F) -> Vec<T>
where
    T: Send + Default + Clone,
    F: Fn(u32, u32) -> T + Sync,
{
    let w = width as usize;
    let h = height as usize;
    let mut out = vec![T::default(); w * h];
    let threads = threads.clamp(1, h.max(1));
    if threads == 1 || out.is_empty() {
        for (idx, slot) in out.iter_mut().enumerate() {
            *slot = f((idx % w) as u32, (idx / w) as u32);
        }
        return out;
    }
    let band_rows = h.div_ceil(threads);
    std::thread::scope(|scope| {
        for (band, chunk) in out.chunks_mut(band_rows * w).enumerate() {
            let f = &f;
            scope.spawn(move || {
                let base = band * band_rows * w;
                for (idx, slot) in chunk.iter_mut().enumerate() {
                    let i = base + idx;
                    *slot = f((i % w) as u32, (i / w) as u32);
                }
            });
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_fill_matches_sequential_for_any_thread_count() {
        let f = |x: u32, y: u32| (x as u64) * 31 + (y as u64) * 17;
        let seq = fill_grid(13, 7, 1, f);
        for threads in [2, 3, 4, 7, 8, 64] {
            assert_eq!(fill_grid(13, 7, threads, f), seq, "threads = {threads}");
        }
    }

    #[test]
    fn degenerate_grids_are_handled() {
        let f = |x: u32, _| x;
        assert_eq!(fill_grid(1, 1, 8, f), vec![0]);
        assert_eq!(fill_grid(4, 1, 8, f), vec![0, 1, 2, 3]);
    }

    #[test]
    fn auto_threads_stays_sequential_for_small_grids() {
        assert_eq!(auto_threads(64), 1);
        assert!(auto_threads(1 << 20) >= 1);
    }
}
