//! The *perspective update* stage of the PT pipeline (paper §6.1).
//!
//! For every pixel `P(i, j)` of the output FOV frame this stage computes
//! the point `P′` on the unit sphere that the pixel observes under the
//! current head orientation: a pinhole ray construction followed by the
//! rotation `Ry(yaw)·Rx(−pitch)·Rz(roll)` — "an affine transformation that
//! multiplies the coordinate vector with two 3×3 rotation matrices preceded
//! by a few pre-processing steps".

use evr_math::{EulerAngles, Mat3, Vec3};

use crate::fov::{FovSpec, Viewport};

/// Precomputed per-frame state for the perspective-update stage.
///
/// Constructing one of these corresponds to the PTE's per-frame
/// configuration-register write: the tangent half-extents and the rotation
/// matrix are computed once per frame, then every pixel runs only MACs.
///
/// # Example
///
/// ```
/// use evr_projection::{perspective::PerspectiveUpdate, FovSpec, Viewport};
/// use evr_math::{EulerAngles, Vec3};
///
/// let p = PerspectiveUpdate::new(
///     FovSpec::from_degrees(90.0, 90.0),
///     Viewport::new(100, 100),
///     EulerAngles::default(),
/// );
/// // The centre pixel of an identity pose looks straight ahead.
/// let dir = p.pixel_direction(50, 50);
/// assert!((dir - Vec3::FORWARD).norm() < 0.03);
/// ```
#[derive(Debug, Clone)]
pub struct PerspectiveUpdate {
    viewport: Viewport,
    tan_half_h: f64,
    tan_half_v: f64,
    rotation: Mat3,
}

impl PerspectiveUpdate {
    /// Precomputes the frame state for one (FOV, viewport, orientation)
    /// triple.
    pub fn new(fov: FovSpec, viewport: Viewport, orientation: EulerAngles) -> Self {
        PerspectiveUpdate {
            viewport,
            tan_half_h: (fov.h_radians().0 / 2.0).tan(),
            tan_half_v: (fov.v_radians().0 / 2.0).tan(),
            rotation: orientation.to_matrix(),
        }
    }

    /// The unit sphere point `P′` observed by output pixel `(i, j)`.
    ///
    /// Pixels are sampled at their centres; `i` grows rightward, `j` grows
    /// downward (raster order).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `(i, j)` lies outside the viewport.
    pub fn pixel_direction(&self, i: u32, j: u32) -> Vec3 {
        debug_assert!(i < self.viewport.width && j < self.viewport.height);
        let ray = self.pixel_ray(i, j);
        self.rotation * ray.normalized().expect("pinhole ray cannot be zero")
    }

    /// The un-rotated, un-normalised pinhole ray for pixel `(i, j)` in view
    /// space (z forward). Exposed for the fixed-point datapath, which
    /// normalises in fixed point.
    pub fn pixel_ray(&self, i: u32, j: u32) -> Vec3 {
        let ndc_x = (2.0 * (i as f64 + 0.5) / self.viewport.width as f64) - 1.0;
        let ndc_y = 1.0 - (2.0 * (j as f64 + 0.5) / self.viewport.height as f64);
        Vec3::new(ndc_x * self.tan_half_h, ndc_y * self.tan_half_v, 1.0)
    }

    /// The rotation matrix applied after ray construction.
    pub fn rotation(&self) -> &Mat3 {
        &self.rotation
    }

    /// Tangent of half the horizontal FOV (a PTE config-register value).
    pub fn tan_half_h(&self) -> f64 {
        self.tan_half_h
    }

    /// Tangent of half the vertical FOV (a PTE config-register value).
    pub fn tan_half_v(&self) -> f64 {
        self.tan_half_v
    }

    /// The output viewport.
    pub fn viewport(&self) -> Viewport {
        self.viewport
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn setup(yaw: f64, pitch: f64) -> PerspectiveUpdate {
        PerspectiveUpdate::new(
            FovSpec::from_degrees(100.0, 100.0),
            Viewport::new(201, 201),
            EulerAngles::from_degrees(yaw, pitch, 0.0),
        )
    }

    #[test]
    fn center_pixel_looks_along_pose() {
        let p = setup(0.0, 0.0);
        assert!((p.pixel_direction(100, 100) - Vec3::FORWARD).norm() < 1e-9);

        let p = setup(90.0, 0.0);
        assert!((p.pixel_direction(100, 100) - Vec3::RIGHT).norm() < 1e-9);

        let p = setup(0.0, 90.0);
        assert!((p.pixel_direction(100, 100) - Vec3::UP).norm() < 1e-9);
    }

    #[test]
    fn horizontal_extremes_span_the_fov() {
        let p = setup(0.0, 0.0);
        let left = p.pixel_direction(0, 100);
        let right = p.pixel_direction(200, 100);
        let angle = left.angle_to(right).unwrap().to_degrees();
        // Edge pixels are half a pixel inside the FOV boundary.
        assert!(angle < 100.0 && angle > 97.0, "span = {angle}");
    }

    #[test]
    fn left_pixels_have_negative_x() {
        let p = setup(0.0, 0.0);
        assert!(p.pixel_direction(0, 100).x < 0.0);
        assert!(p.pixel_direction(200, 100).x > 0.0);
    }

    #[test]
    fn top_pixels_look_up() {
        let p = setup(0.0, 0.0);
        assert!(p.pixel_direction(100, 0).y > 0.0);
        assert!(p.pixel_direction(100, 200).y < 0.0);
    }

    #[test]
    fn roll_rotates_image_plane() {
        let no_roll = PerspectiveUpdate::new(
            FovSpec::from_degrees(90.0, 90.0),
            Viewport::new(101, 101),
            EulerAngles::from_degrees(0.0, 0.0, 0.0),
        );
        let rolled = PerspectiveUpdate::new(
            FovSpec::from_degrees(90.0, 90.0),
            Viewport::new(101, 101),
            EulerAngles::from_degrees(0.0, 0.0, 90.0),
        );
        // The pixel right of centre maps (after a 90° roll) to where the
        // pixel above centre used to look.
        let a = rolled.pixel_direction(75, 50);
        let b = no_roll.pixel_direction(50, 25);
        assert!((a - b).norm() < 0.02, "{a} vs {b}");
    }

    proptest! {
        #[test]
        fn prop_directions_are_unit(i in 0u32..64, j in 0u32..64, yaw in -180.0f64..180.0, pitch in -89.0f64..89.0) {
            let p = PerspectiveUpdate::new(
                FovSpec::from_degrees(110.0, 110.0),
                Viewport::new(64, 64),
                EulerAngles::from_degrees(yaw, pitch, 0.0),
            );
            prop_assert!((p.pixel_direction(i, j).norm() - 1.0).abs() < 1e-9);
        }

        #[test]
        fn prop_all_pixels_within_fov_cone(i in 0u32..64, j in 0u32..64) {
            let fov = FovSpec::from_degrees(110.0, 110.0);
            let p = PerspectiveUpdate::new(fov, Viewport::new(64, 64), EulerAngles::default());
            let dir = p.pixel_direction(i, j);
            // No pixel can look further from the view axis than the FOV diagonal.
            let max_half_diag = (p.tan_half_h().hypot(p.tan_half_v())).atan();
            prop_assert!(dir.angle_to(Vec3::FORWARD).unwrap() <= max_half_diag + 1e-9);
        }
    }
}
