//! Pixel types and image access traits.
//!
//! The PT pipeline is generic over where pixels come from — a decoded video
//! frame, a procedural scene, a line buffer inside the PTE model — via the
//! [`PixelSource`] trait. [`ImageBuffer`] is the plain owned implementation
//! used for outputs and tests.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A 24-bit RGB pixel, the format the PT datapath produces (paper §6.1:
/// "returns a 24-bit RGB pixel value").
///
/// # Example
///
/// ```
/// use evr_projection::Rgb;
/// let p = Rgb::new(10, 20, 30);
/// assert_eq!(p.luma(), ((54 * 10 + 183 * 20 + 19 * 30) >> 8) as u8);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rgb {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
}

impl Rgb {
    /// Black.
    pub const BLACK: Rgb = Rgb { r: 0, g: 0, b: 0 };
    /// White.
    pub const WHITE: Rgb = Rgb { r: 255, g: 255, b: 255 };

    /// Creates a pixel from channel values.
    pub fn new(r: u8, g: u8, b: u8) -> Self {
        Rgb { r, g, b }
    }

    /// Integer BT.601-style luma approximation in `[0, 255]`, used by the
    /// codec model and the quality metrics.
    pub fn luma(self) -> u8 {
        ((54 * self.r as u32 + 183 * self.g as u32 + 19 * self.b as u32) >> 8) as u8
    }

    /// Sum of absolute channel differences to another pixel (0..=765).
    pub fn abs_diff(self, other: Rgb) -> u32 {
        (self.r as i32 - other.r as i32).unsigned_abs()
            + (self.g as i32 - other.g as i32).unsigned_abs()
            + (self.b as i32 - other.b as i32).unsigned_abs()
    }
}

impl fmt::Display for Rgb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{:02x}{:02x}{:02x}", self.r, self.g, self.b)
    }
}

/// Read access to a rectangular grid of pixels.
///
/// Implementations must return the stored pixel for any `x < width()`,
/// `y < height()`; callers never pass out-of-range coordinates (samplers
/// clamp or wrap first).
pub trait PixelSource {
    /// Width in pixels (non-zero).
    fn width(&self) -> u32;
    /// Height in pixels (non-zero).
    fn height(&self) -> u32;
    /// The pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `x >= width()` or `y >= height()`.
    fn pixel(&self, x: u32, y: u32) -> Rgb;
}

impl<T: PixelSource + ?Sized> PixelSource for &T {
    fn width(&self) -> u32 {
        (**self).width()
    }
    fn height(&self) -> u32 {
        (**self).height()
    }
    fn pixel(&self, x: u32, y: u32) -> Rgb {
        (**self).pixel(x, y)
    }
}

/// An owned, row-major RGB image.
///
/// # Example
///
/// ```
/// use evr_projection::{ImageBuffer, Rgb};
/// let img = ImageBuffer::from_fn(4, 2, |x, y| Rgb::new(x as u8, y as u8, 0));
/// assert_eq!(img.get(3, 1), Rgb::new(3, 1, 0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImageBuffer {
    width: u32,
    height: u32,
    pixels: Vec<Rgb>,
}

impl ImageBuffer {
    /// Creates a black image of the given size.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be non-zero");
        ImageBuffer { width, height, pixels: vec![Rgb::BLACK; (width * height) as usize] }
    }

    /// Creates an image by evaluating `f(x, y)` for every pixel.
    pub fn from_fn(width: u32, height: u32, mut f: impl FnMut(u32, u32) -> Rgb) -> Self {
        let mut img = ImageBuffer::new(width, height);
        for y in 0..height {
            for x in 0..width {
                img.set(x, y, f(x, y));
            }
        }
        img
    }

    /// Builds an image from a pre-filled pixel vector.
    ///
    /// # Panics
    ///
    /// Panics if `pixels.len() != width * height` or a dimension is zero.
    pub fn from_pixels(width: u32, height: u32, pixels: Vec<Rgb>) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be non-zero");
        assert_eq!(pixels.len(), (width * height) as usize, "pixel count mismatch");
        ImageBuffer { width, height, pixels }
    }

    /// Width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn get(&self, x: u32, y: u32) -> Rgb {
        assert!(x < self.width && y < self.height, "pixel ({x}, {y}) out of range");
        self.pixels[(y * self.width + x) as usize]
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set(&mut self, x: u32, y: u32, p: Rgb) {
        assert!(x < self.width && y < self.height, "pixel ({x}, {y}) out of range");
        self.pixels[(y * self.width + x) as usize] = p;
    }

    /// Immutable view of all pixels, row-major.
    pub fn pixels(&self) -> &[Rgb] {
        &self.pixels
    }

    /// Mean absolute per-channel difference to another image, normalised to
    /// `[0, 1]`. This is the pixel-error metric of the paper's Figure 11.
    ///
    /// # Panics
    ///
    /// Panics if the images have different dimensions.
    pub fn mean_abs_error(&self, other: &ImageBuffer) -> f64 {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "image dimension mismatch"
        );
        let total: u64 =
            self.pixels.iter().zip(&other.pixels).map(|(a, b)| a.abs_diff(*b) as u64).sum();
        total as f64 / (self.pixels.len() as f64 * 3.0 * 255.0)
    }
}

/// Box-downsamples an image by 2× in each axis (averaging 2×2 blocks) —
/// the anti-aliasing step for supersampled FOV rendering.
///
/// # Panics
///
/// Panics if either dimension is odd or smaller than 2.
///
/// # Example
///
/// ```
/// use evr_projection::pixel::{downsample2x, ImageBuffer, Rgb};
/// let img = ImageBuffer::from_fn(4, 2, |x, _| if x < 2 { Rgb::BLACK } else { Rgb::WHITE });
/// let half = downsample2x(&img);
/// assert_eq!(half.width(), 2);
/// assert_eq!(half.get(0, 0), Rgb::BLACK);
/// assert_eq!(half.get(1, 0), Rgb::WHITE);
/// ```
pub fn downsample2x(img: &ImageBuffer) -> ImageBuffer {
    let w = img.width();
    let h = img.height();
    assert!(
        w >= 2 && h >= 2 && w.is_multiple_of(2) && h.is_multiple_of(2),
        "dimensions must be even and >= 2"
    );
    ImageBuffer::from_fn(w / 2, h / 2, |x, y| {
        let mut r = 0u32;
        let mut g = 0u32;
        let mut b = 0u32;
        for dy in 0..2 {
            for dx in 0..2 {
                let p = img.get(x * 2 + dx, y * 2 + dy);
                r += p.r as u32;
                g += p.g as u32;
                b += p.b as u32;
            }
        }
        Rgb::new((r / 4) as u8, (g / 4) as u8, (b / 4) as u8)
    })
}

impl PixelSource for ImageBuffer {
    fn width(&self) -> u32 {
        self.width
    }
    fn height(&self) -> u32 {
        self.height
    }
    fn pixel(&self, x: u32, y: u32) -> Rgb {
        self.get(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn luma_extremes() {
        assert_eq!(Rgb::BLACK.luma(), 0);
        assert_eq!(Rgb::WHITE.luma(), 255);
    }

    #[test]
    fn abs_diff_is_symmetric() {
        let a = Rgb::new(10, 200, 30);
        let b = Rgb::new(20, 100, 250);
        assert_eq!(a.abs_diff(b), b.abs_diff(a));
        assert_eq!(a.abs_diff(a), 0);
    }

    #[test]
    fn from_fn_layout() {
        let img = ImageBuffer::from_fn(3, 2, |x, y| Rgb::new(x as u8, y as u8, 9));
        assert_eq!(img.pixels()[0], Rgb::new(0, 0, 9));
        assert_eq!(img.pixels()[5], Rgb::new(2, 1, 9));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        let _ = ImageBuffer::new(0, 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        let img = ImageBuffer::new(2, 2);
        let _ = img.get(2, 0);
    }

    #[test]
    fn mean_abs_error_zero_for_identical() {
        let img = ImageBuffer::from_fn(8, 8, |x, y| Rgb::new((x * y) as u8, 0, 0));
        assert_eq!(img.mean_abs_error(&img), 0.0);
    }

    #[test]
    fn mean_abs_error_one_for_opposite() {
        let black = ImageBuffer::new(4, 4);
        let white = ImageBuffer::from_fn(4, 4, |_, _| Rgb::WHITE);
        assert!((black.mean_abs_error(&white) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reference_impl_forwards() {
        let img = ImageBuffer::from_fn(2, 2, |x, _| Rgb::new(x as u8, 0, 0));
        fn takes_source(s: impl PixelSource) -> Rgb {
            s.pixel(1, 0)
        }
        assert_eq!(takes_source(&img), Rgb::new(1, 0, 0));
    }

    proptest! {
        #[test]
        fn prop_luma_within_range(r in 0u8.., g in 0u8.., b in 0u8..) {
            let p = Rgb::new(r, g, b);
            // luma is a convex-ish combination; always within channel bounds.
            let lo = r.min(g).min(b);
            let hi = r.max(g).max(b);
            prop_assert!(p.luma() >= lo.saturating_sub(1));
            prop_assert!(p.luma() <= hi);
        }
    }
}
