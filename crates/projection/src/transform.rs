//! The complete `f64` reference PT pipeline, plus content-generation
//! helpers built on the inverse mappings.
//!
//! This is the computation a mobile GPU performs via texture mapping
//! (paper §2): perspective update → mapping → filtering for every output
//! pixel. The [`fixed`](crate::fixed) module mirrors it bit-faithfully in
//! fixed point for the PTE.

use serde::{Deserialize, Serialize};

use evr_math::EulerAngles;

use crate::filter::{sample, EdgeMode, FilterMode};
use crate::fov::{FovFrameMeta, FovSpec, Viewport};
use crate::mapping::Projection;
use crate::par;
use crate::perspective::PerspectiveUpdate;
use crate::pixel::{ImageBuffer, PixelSource};

/// A rendered FOV frame plus the metadata SAS attaches to it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FovFrame {
    /// The planar pixels ready for display.
    pub image: ImageBuffer,
    /// Orientation + FOV the frame was rendered for.
    pub meta: FovFrameMeta,
}

/// The reference projective-transformation engine.
///
/// One `Transformer` captures the static configuration (projection method,
/// filter, FOV, output viewport); per-frame state (head orientation) is an
/// argument to [`Transformer::render_fov`], matching the PTE's split
/// between configuration registers and per-frame updates.
///
/// # Example
///
/// ```
/// use evr_projection::{Transformer, Projection, FilterMode, FovSpec, Viewport};
/// use evr_projection::pixel::{ImageBuffer, Rgb};
/// use evr_math::EulerAngles;
///
/// let src = ImageBuffer::from_fn(128, 64, |x, y| Rgb::new(x as u8, y as u8, 0));
/// let t = Transformer::new(
///     Projection::Erp,
///     FilterMode::Bilinear,
///     FovSpec::from_degrees(110.0, 110.0),
///     Viewport::new(32, 32),
/// );
/// let frame = t.render_fov(&src, EulerAngles::from_degrees(45.0, 0.0, 0.0));
/// assert_eq!(frame.image.height(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Transformer {
    projection: Projection,
    filter: FilterMode,
    fov: FovSpec,
    viewport: Viewport,
}

impl Transformer {
    /// Creates a transformer for the given static configuration.
    pub fn new(
        projection: Projection,
        filter: FilterMode,
        fov: FovSpec,
        viewport: Viewport,
    ) -> Self {
        Transformer { projection, filter, fov, viewport }
    }

    /// The projection method input frames are stored in.
    pub fn projection(&self) -> Projection {
        self.projection
    }

    /// The reconstruction filter.
    pub fn filter(&self) -> FilterMode {
        self.filter
    }

    /// The output field of view.
    pub fn fov(&self) -> FovSpec {
        self.fov
    }

    /// The output viewport.
    pub fn viewport(&self) -> Viewport {
        self.viewport
    }

    /// Maps one output pixel `(i, j)` to normalised source coordinates
    /// `(u, v)` under `orientation` — the pure coordinate part of the PT,
    /// exposed for testing against the fixed-point datapath.
    pub fn map_pixel(&self, i: u32, j: u32, orientation: EulerAngles) -> (f64, f64) {
        let persp = PerspectiveUpdate::new(self.fov, self.viewport, orientation);
        self.projection.sphere_to_frame(persp.pixel_direction(i, j))
    }

    /// Runs the full PT: renders the FOV frame seen at `orientation` from
    /// the full panoramic `src` frame.
    ///
    /// Large viewports render scanline-parallel across the machine's
    /// cores; output is bit-identical to the single-threaded path (see
    /// [`Transformer::render_fov_threads`]).
    pub fn render_fov(
        &self,
        src: &(impl PixelSource + Sync),
        orientation: EulerAngles,
    ) -> FovFrame {
        self.render_fov_threads(
            src,
            orientation,
            par::auto_threads(self.viewport.pixels() as usize),
        )
    }

    /// [`Transformer::render_fov`] with an explicit thread count, fusing
    /// the coordinate and filtering passes into one loop over the output.
    /// Every pixel is a pure function of `(i, j)`, the configuration and
    /// the orientation, so any `threads` value produces bit-identical
    /// output — parallelism is a pure wall-clock optimisation.
    pub fn render_fov_threads(
        &self,
        src: &(impl PixelSource + Sync),
        orientation: EulerAngles,
        threads: usize,
    ) -> FovFrame {
        let persp = PerspectiveUpdate::new(self.fov, self.viewport, orientation);
        let edge = EdgeMode::for_projection(self.projection);
        let pixels = par::fill_grid(self.viewport.width, self.viewport.height, threads, |i, j| {
            let (u, v) = self.projection.sphere_to_frame(persp.pixel_direction(i, j));
            sample(src, u, v, self.filter, edge)
        });
        FovFrame {
            image: ImageBuffer::from_pixels(self.viewport.width, self.viewport.height, pixels),
            meta: FovFrameMeta::new(orientation, self.fov),
        }
    }

    /// Precomputes the per-pixel source coordinates for one orientation —
    /// the coordinate half of the PT, reusable across frames while the
    /// orientation is unchanged (SAS's FOV videos snap orientations to a
    /// grid, so consecutive frames usually share a map; the
    /// [`crate::lut::SamplingMapCache`] automates the reuse).
    pub fn coordinate_map(&self, orientation: EulerAngles) -> Vec<(f64, f64)> {
        let persp = PerspectiveUpdate::new(self.fov, self.viewport, orientation);
        par::fill_grid(
            self.viewport.width,
            self.viewport.height,
            par::auto_threads(self.viewport.pixels() as usize),
            |i, j| self.projection.sphere_to_frame(persp.pixel_direction(i, j)),
        )
    }

    /// Like [`Transformer::coordinate_map`] but sampling every
    /// `stride`-th pixel per axis, row-major — the coordinate stream the
    /// PTE's strided frame analysis consumes. `stride == 1` is the full
    /// map.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    pub fn coordinate_map_strided(&self, orientation: EulerAngles, stride: u32) -> Vec<(f64, f64)> {
        assert!(stride > 0, "stride must be non-zero");
        if stride == 1 {
            return self.coordinate_map(orientation);
        }
        let persp = PerspectiveUpdate::new(self.fov, self.viewport, orientation);
        let mut map = Vec::new();
        for j in (0..self.viewport.height).step_by(stride as usize) {
            for i in (0..self.viewport.width).step_by(stride as usize) {
                map.push(self.projection.sphere_to_frame(persp.pixel_direction(i, j)));
            }
        }
        map
    }

    /// Renders through a precomputed coordinate map (the filtering half
    /// of the PT).
    ///
    /// # Panics
    ///
    /// Panics if the map's length does not match the viewport.
    pub fn render_with_map(
        &self,
        src: &(impl PixelSource + Sync),
        map: &[(f64, f64)],
    ) -> ImageBuffer {
        assert_eq!(map.len() as u64, self.viewport.pixels(), "coordinate map size mismatch");
        let edge = EdgeMode::for_projection(self.projection);
        let w = self.viewport.width;
        let pixels =
            par::fill_grid(w, self.viewport.height, par::auto_threads(map.len()), |i, j| {
                let (u, v) = map[(j * w + i) as usize];
                sample(src, u, v, self.filter, edge)
            });
        ImageBuffer::from_pixels(w, self.viewport.height, pixels)
    }
}

/// Renders a full panoramic frame in `projection` by evaluating `shade`
/// for every stored direction — the content-generation path used by the
/// synthetic scene renderer and by format transcoding.
///
/// # Example
///
/// ```
/// use evr_projection::{transform::render_panorama, Projection, Rgb};
/// use evr_math::Vec3;
///
/// // A panorama that is white above the horizon and black below.
/// let pano = render_panorama(Projection::Erp, 64, 32, |dir: Vec3| {
///     if dir.y > 0.0 { Rgb::WHITE } else { Rgb::BLACK }
/// });
/// assert_eq!(pano.get(0, 0), Rgb::WHITE);
/// assert_eq!(pano.get(0, 31), Rgb::BLACK);
/// ```
pub fn render_panorama(
    projection: Projection,
    width: u32,
    height: u32,
    mut shade: impl FnMut(evr_math::Vec3) -> crate::pixel::Rgb,
) -> ImageBuffer {
    ImageBuffer::from_fn(width, height, |x, y| {
        let u = (x as f64 + 0.5) / width as f64;
        let v = (y as f64 + 0.5) / height as f64;
        shade(projection.frame_to_sphere(u, v))
    })
}

/// Transcodes a panoramic frame between projections (e.g. ERP → EAC),
/// sampling with the given filter.
pub fn transcode(
    src: &impl PixelSource,
    from: Projection,
    to: Projection,
    out_width: u32,
    out_height: u32,
    filter: FilterMode,
) -> ImageBuffer {
    let edge = EdgeMode::for_projection(from);
    ImageBuffer::from_fn(out_width, out_height, |x, y| {
        let u = (x as f64 + 0.5) / out_width as f64;
        let v = (y as f64 + 0.5) / out_height as f64;
        let dir = to.frame_to_sphere(u, v);
        let (su, sv) = from.sphere_to_frame(dir);
        sample(src, su, sv, filter, edge)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pixel::Rgb;
    use evr_math::Vec3;
    use proptest::prelude::*;

    /// A panorama with a distinct colour per octant of the sphere — enough
    /// structure to verify orientation handling end to end.
    fn octant_panorama(projection: Projection, w: u32, h: u32) -> ImageBuffer {
        render_panorama(projection, w, h, octant_shade)
    }

    fn octant_shade(dir: Vec3) -> Rgb {
        Rgb::new(
            if dir.x > 0.0 { 200 } else { 40 },
            if dir.y > 0.0 { 200 } else { 40 },
            if dir.z > 0.0 { 200 } else { 40 },
        )
    }

    fn center_pixel(t: &Transformer, src: &ImageBuffer, pose: EulerAngles) -> Rgb {
        let f = t.render_fov(src, pose);
        f.image.get(t.viewport().width / 2, t.viewport().height / 2)
    }

    #[test]
    fn looking_at_each_axis_sees_the_right_octant() {
        for projection in Projection::ALL {
            let src = octant_panorama(projection, 192, 96);
            let t = Transformer::new(
                projection,
                FilterMode::Nearest,
                FovSpec::from_degrees(90.0, 90.0),
                Viewport::new(17, 17),
            );
            // Forward: z > 0 ⇒ blue bright.
            let p = center_pixel(&t, &src, EulerAngles::default());
            assert_eq!(p.b, 200, "{projection} forward");
            // Right: x > 0 ⇒ red bright.
            let p = center_pixel(&t, &src, EulerAngles::from_degrees(90.0, 0.0, 0.0));
            assert_eq!(p.r, 200, "{projection} right");
            // Up: y > 0 ⇒ green bright.
            let p = center_pixel(&t, &src, EulerAngles::from_degrees(0.0, 89.0, 0.0));
            assert_eq!(p.g, 200, "{projection} up");
            // Behind: z < 0 ⇒ blue dark.
            let p = center_pixel(&t, &src, EulerAngles::from_degrees(180.0, 0.0, 0.0));
            assert_eq!(p.b, 40, "{projection} behind");
        }
    }

    #[test]
    fn map_pixel_matches_render_path() {
        let src = octant_panorama(Projection::Erp, 128, 64);
        let t = Transformer::new(
            Projection::Erp,
            FilterMode::Nearest,
            FovSpec::from_degrees(100.0, 100.0),
            Viewport::new(9, 9),
        );
        let pose = EulerAngles::from_degrees(30.0, -20.0, 5.0);
        let frame = t.render_fov(&src, pose);
        for (i, j) in [(0, 0), (4, 4), (8, 8), (2, 7)] {
            let (u, v) = t.map_pixel(i, j, pose);
            let expect = sample(&src, u, v, FilterMode::Nearest, EdgeMode::WrapU);
            assert_eq!(frame.image.get(i, j), expect);
        }
    }

    #[test]
    fn explicit_thread_counts_are_bit_identical() {
        let src = octant_panorama(Projection::Erp, 96, 48);
        let t = Transformer::new(
            Projection::Erp,
            FilterMode::Bilinear,
            FovSpec::from_degrees(100.0, 100.0),
            Viewport::new(11, 13),
        );
        let pose = EulerAngles::from_degrees(33.0, -8.0, 2.0);
        let seq = t.render_fov_threads(&src, pose, 1);
        for threads in [2, 3, 5, 8] {
            assert_eq!(t.render_fov_threads(&src, pose, threads), seq, "threads = {threads}");
        }
        // The map-based path is the same pipeline split in two.
        let map = t.coordinate_map(pose);
        assert_eq!(t.render_with_map(&src, &map), seq.image);
    }

    #[test]
    fn strided_map_subsamples_the_full_map() {
        let t = Transformer::new(
            Projection::Cmp,
            FilterMode::Nearest,
            FovSpec::from_degrees(90.0, 90.0),
            Viewport::new(8, 6),
        );
        let pose = EulerAngles::from_degrees(-50.0, 12.0, 0.0);
        let full = t.coordinate_map(pose);
        assert_eq!(t.coordinate_map_strided(pose, 1), full);
        let strided = t.coordinate_map_strided(pose, 2);
        assert_eq!(strided.len(), 4 * 3);
        for (k, &(u, v)) in strided.iter().enumerate() {
            let (i, j) = ((k % 4) * 2, (k / 4) * 2);
            assert_eq!((u, v), full[j * 8 + i]);
        }
    }

    #[test]
    fn fov_frame_metadata_records_pose() {
        let src = octant_panorama(Projection::Erp, 64, 32);
        let t = Transformer::new(
            Projection::Erp,
            FilterMode::Bilinear,
            FovSpec::from_degrees(110.0, 110.0),
            Viewport::new(8, 8),
        );
        let pose = EulerAngles::from_degrees(12.0, 3.0, 0.0);
        let f = t.render_fov(&src, pose);
        assert_eq!(f.meta.orientation, pose);
        assert_eq!(f.meta.fov, t.fov());
    }

    #[test]
    fn transcode_preserves_content() {
        let src = octant_panorama(Projection::Erp, 192, 96);
        let eac = transcode(&src, Projection::Erp, Projection::Eac, 192, 128, FilterMode::Nearest);
        // Sample a few directions through both representations.
        for dir in [Vec3::FORWARD, Vec3::RIGHT, -Vec3::UP] {
            let (u, v) = Projection::Eac.sphere_to_frame(dir * 0.9 + Vec3::new(0.05, 0.08, 0.0));
            let px = eac.get(((u * 192.0) as u32).min(191), ((v * 128.0) as u32).min(127));
            let want = octant_shade((dir * 0.9 + Vec3::new(0.05, 0.08, 0.0)).normalized().unwrap());
            assert_eq!(px, want);
        }
    }

    #[test]
    fn identity_roundtrip_reconstructs_view() {
        // Render a FOV frame, then verify each pixel matches shading the
        // ray directly: the pipeline introduces only filtering error.
        let src = render_panorama(Projection::Erp, 256, 128, |d| {
            let c = ((d.x * 4.0).sin() * 100.0 + 128.0) as u8;
            Rgb::new(c, c, c)
        });
        let t = Transformer::new(
            Projection::Erp,
            FilterMode::Bilinear,
            FovSpec::from_degrees(80.0, 80.0),
            Viewport::new(16, 16),
        );
        let pose = EulerAngles::from_degrees(20.0, 10.0, 0.0);
        let persp = PerspectiveUpdate::new(t.fov(), t.viewport(), pose);
        let frame = t.render_fov(&src, pose);
        let mut worst = 0u32;
        for j in 0..16 {
            for i in 0..16 {
                let dir = persp.pixel_direction(i, j);
                let c = ((dir.x * 4.0).sin() * 100.0 + 128.0) as u8;
                let got = frame.image.get(i, j);
                worst = worst.max(got.abs_diff(Rgb::new(c, c, c)));
            }
        }
        assert!(worst < 30, "worst channel-sum error {worst}");
    }

    proptest! {
        #[test]
        fn prop_render_is_deterministic(yaw in -180.0f64..180.0, pitch in -60.0f64..60.0) {
            let src = octant_panorama(Projection::Cmp, 48, 32);
            let t = Transformer::new(
                Projection::Cmp,
                FilterMode::Bilinear,
                FovSpec::from_degrees(110.0, 110.0),
                Viewport::new(6, 6),
            );
            let pose = EulerAngles::from_degrees(yaw, pitch, 0.0);
            prop_assert_eq!(t.render_fov(&src, pose).image, t.render_fov(&src, pose).image);
        }
    }
}
