//! PTE configuration — the model of the accelerator's memory-mapped
//! register file (paper §6.2: "the PTE provides a set of memory-mapped
//! registers for configuration purposes", giving it "just enough
//! configurability" across projection methods, FOV sizes and display
//! resolutions).

use serde::{Deserialize, Serialize};

use evr_math::fixed::FxFormat;
use evr_projection::{FilterMode, FovSpec, Projection, Viewport};

/// Static configuration of a PTE instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PteConfig {
    /// Number of projective-transformation units (prototype: 2).
    pub num_ptus: u32,
    /// Clock frequency in Hz (prototype: 100 MHz).
    pub clock_hz: f64,
    /// Input-pixel memory capacity in bytes (prototype: 512 KB).
    pub pmem_bytes: u32,
    /// Output staging memory capacity in bytes (prototype: 256 KB).
    pub smem_bytes: u32,
    /// DMA transfer width in bytes per cycle (AXI-128 at core clock).
    pub dma_bytes_per_cycle: u32,
    /// Projection method register.
    pub projection: Projection,
    /// Filtering function register.
    pub filter: FilterMode,
    /// Output field of view.
    pub fov: FovSpec,
    /// Output resolution.
    pub viewport: Viewport,
    /// Datapath fixed-point format (prototype: `[28, 10]`).
    pub format: FxFormat,
}

impl PteConfig {
    /// The paper's Zynq-7000 prototype configuration: 2 PTUs at 100 MHz,
    /// 512 KB P-MEM / 256 KB S-MEM, ERP + bilinear, HDK2 FOV, 2560×1440
    /// output, `[28, 10]` arithmetic.
    pub fn prototype() -> Self {
        PteConfig {
            num_ptus: 2,
            clock_hz: 100e6,
            pmem_bytes: 512 * 1024,
            smem_bytes: 256 * 1024,
            dma_bytes_per_cycle: 16,
            projection: Projection::Erp,
            filter: FilterMode::Bilinear,
            fov: FovSpec::hdk2(),
            viewport: Viewport::new(2560, 1440),
            format: FxFormat::q28_10(),
        }
    }

    /// Returns the configuration with a different projection register.
    pub fn with_projection(mut self, projection: Projection) -> Self {
        self.projection = projection;
        self
    }

    /// Returns the configuration with a different filter register.
    pub fn with_filter(mut self, filter: FilterMode) -> Self {
        self.filter = filter;
        self
    }

    /// Returns the configuration with a different output viewport.
    pub fn with_viewport(mut self, viewport: Viewport) -> Self {
        self.viewport = viewport;
        self
    }

    /// Returns the configuration with a different output field of view.
    pub fn with_fov(mut self, fov: FovSpec) -> Self {
        self.fov = fov;
        self
    }

    /// Returns the configuration with a different PTU count.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_ptus(mut self, n: u32) -> Self {
        assert!(n > 0, "PTE needs at least one PTU");
        self.num_ptus = n;
        self
    }

    /// Peak pixel throughput (pixels/second) ignoring memory stalls.
    pub fn peak_throughput(&self) -> f64 {
        self.num_ptus as f64 * self.clock_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_matches_paper() {
        let c = PteConfig::prototype();
        assert_eq!(c.num_ptus, 2);
        assert_eq!(c.clock_hz, 100e6);
        assert_eq!(c.pmem_bytes, 512 * 1024);
        assert_eq!(c.smem_bytes, 256 * 1024);
        assert_eq!(c.format.total_bits(), 28);
        assert_eq!(c.format.int_bits(), 10);
    }

    #[test]
    fn peak_throughput_supports_50fps_1440p() {
        let c = PteConfig::prototype();
        let frame_px = c.viewport.pixels() as f64;
        assert!(c.peak_throughput() / frame_px > 50.0);
    }

    #[test]
    fn builder_methods_compose() {
        let c = PteConfig::prototype()
            .with_projection(Projection::Eac)
            .with_filter(FilterMode::Nearest)
            .with_ptus(4);
        assert_eq!(c.projection, Projection::Eac);
        assert_eq!(c.filter, FilterMode::Nearest);
        assert_eq!(c.num_ptus, 4);
    }

    #[test]
    #[should_panic(expected = "at least one PTU")]
    fn zero_ptus_panics() {
        let _ = PteConfig::prototype().with_ptus(0);
    }
}
