//! Bottom-up PTE energy model.
//!
//! Energy is accounted per architectural event — fixed-point MACs, CORDIC
//! micro-rotations, simple ALU ops, SRAM bytes, DRAM bytes — plus a static
//! leakage term. Event energies are set to 28 nm-class values and the
//! leakage to the Zynq-7000 fabric share, calibrated so the prototype
//! configuration reproduces the paper's post-layout measurement:
//! **194 mW at 100 MHz with 2 PTUs sustaining ~50 FPS at 2560×1440**
//! (§7.2). The paper notes these numbers "should be seen as lower-bounds
//! as an ASIC flow would yield better energy-efficiency"; the same applies
//! here.

use serde::{Deserialize, Serialize};

use evr_projection::{FilterMode, Projection};

/// Per-event energies (joules) and leakage (watts).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PteEnergyParams {
    /// One 28-bit fixed-point multiply-accumulate.
    pub mac_j: f64,
    /// One CORDIC micro-rotation (3 adds + 2 shifts at narrow width).
    pub cordic_iter_j: f64,
    /// One simple ALU op (add / shift / compare / mux).
    pub simple_op_j: f64,
    /// One byte read or written in P-MEM / S-MEM.
    pub sram_byte_j: f64,
    /// One byte transferred to/from DRAM (LPDDR4-class, controller incl.).
    pub dram_byte_j: f64,
    /// Static (leakage + clock tree) power of the whole engine, watts.
    pub leakage_w: f64,
}

impl Default for PteEnergyParams {
    fn default() -> Self {
        PteEnergyParams {
            mac_j: 2.0e-12,
            cordic_iter_j: 1.2e-12,
            simple_op_j: 0.8e-12,
            sram_byte_j: 0.9e-12,
            dram_byte_j: 95.0e-12,
            leakage_w: 0.058,
        }
    }
}

/// Per-pixel datapath event counts for one (projection, filter)
/// configuration — the static operation schedule of the fully pipelined
/// PTU (paper Fig. 8/9: perspective update MACs, mapping CORDIC blocks,
/// filtering blends).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounts {
    /// Fixed-point MACs per pixel.
    pub macs: u64,
    /// CORDIC micro-rotations per pixel.
    pub cordic_iters: u64,
    /// Simple ALU ops per pixel.
    pub simple_ops: u64,
    /// SRAM bytes touched per pixel (texel reads + output write).
    pub sram_bytes: u64,
}

impl OpCounts {
    /// The PTU's per-pixel schedule for a projection/filter pair.
    ///
    /// CORDIC budgets assume the 48-iteration kernels of
    /// [`evr_math::fixed::FxCtx`]; divisions are modelled as 20 simple ops
    /// (non-restoring divider slices).
    pub fn for_pipeline(projection: Projection, filter: FilterMode) -> OpCounts {
        // Common front end: NDC init (4 simple + 2 MAC) and the 3×3
        // rotation (9 MACs; the four-way MAC unit exploits sparsity for
        // latency, not op count).
        let mut macs = 11u64;
        let mut cordic = 0u64;
        let mut simple = 4u64;
        match projection {
            Projection::Erp => {
                // atan2 + (norm: 3 MAC + sqrt≈24 simple + div≈20) + asin
                // (atan2 + inline sqrt/div) + 2 LS MACs.
                macs += 3 + 2;
                cordic += 48 + 48;
                simple += 24 + 20 + 24 + 20;
            }
            Projection::Cmp => {
                // Face select (6 compares) + 2 divides + LS (2 MAC) + C2F
                // (2 MAC + 2 add).
                macs += 4;
                simple += 6 + 40 + 2;
            }
            Projection::Eac => {
                // CMP plus one atan per coordinate.
                macs += 4;
                cordic += 96;
                simple += 6 + 40 + 2;
            }
        }
        let sram_bytes = match filter {
            // Texel reads + one output pixel write, 3 B each.
            FilterMode::Nearest => {
                simple += 6; // rounding + address muxes
                3 + 3
            }
            FilterMode::Bilinear => {
                simple += 2 * 9 + 6; // 6 per-channel blends + weight prep
                4 * 3 + 3
            }
        };
        OpCounts { macs, cordic_iters: cordic, simple_ops: simple, sram_bytes }
    }

    /// Dynamic compute energy for `pixels` pixels under `params`
    /// (excluding SRAM, which is reported separately).
    pub fn compute_energy(&self, pixels: u64, params: &PteEnergyParams) -> f64 {
        pixels as f64
            * (self.macs as f64 * params.mac_j
                + self.cordic_iters as f64 * params.cordic_iter_j
                + self.simple_ops as f64 * params.simple_op_j)
    }

    /// SRAM energy for `pixels` pixels.
    pub fn sram_energy(&self, pixels: u64, params: &PteEnergyParams) -> f64 {
        pixels as f64 * self.sram_bytes as f64 * params.sram_byte_j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erp_is_cordic_heavy_cmp_is_not() {
        let erp = OpCounts::for_pipeline(Projection::Erp, FilterMode::Bilinear);
        let cmp = OpCounts::for_pipeline(Projection::Cmp, FilterMode::Bilinear);
        assert!(erp.cordic_iters > 0);
        assert_eq!(cmp.cordic_iters, 0);
        let eac = OpCounts::for_pipeline(Projection::Eac, FilterMode::Bilinear);
        assert!(eac.cordic_iters > 0);
    }

    #[test]
    fn bilinear_touches_more_sram_than_nearest() {
        let b = OpCounts::for_pipeline(Projection::Erp, FilterMode::Bilinear);
        let n = OpCounts::for_pipeline(Projection::Erp, FilterMode::Nearest);
        assert!(b.sram_bytes > n.sram_bytes);
        assert!(b.simple_ops > n.simple_ops);
    }

    #[test]
    fn per_pixel_compute_energy_is_sub_nanojoule() {
        // Sanity for the calibration: compute energy per pixel must stay
        // in the hundreds of picojoules for the 194 mW figure to work out.
        let p = PteEnergyParams::default();
        let ops = OpCounts::for_pipeline(Projection::Erp, FilterMode::Bilinear);
        let per_px = ops.compute_energy(1, &p) + ops.sram_energy(1, &p);
        assert!(per_px > 50e-12 && per_px < 500e-12, "{per_px} J/px");
    }

    #[test]
    fn energy_scales_linearly_with_pixels() {
        let p = PteEnergyParams::default();
        let ops = OpCounts::for_pipeline(Projection::Cmp, FilterMode::Nearest);
        let one = ops.compute_energy(1, &p);
        let many = ops.compute_energy(1000, &p);
        assert!((many - 1000.0 * one).abs() < 1e-18);
    }
}
