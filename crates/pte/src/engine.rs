//! The PTE engine model: cycle accounting, memory traffic and energy for
//! whole frames, plus bit-exact rendering through the fixed-point
//! datapath.

use evr_math::EulerAngles;
use evr_projection::filter::EdgeMode;
use evr_projection::fixed::FixedTransformer;
use evr_projection::lut::SamplingMapCache;
use evr_projection::transform::Transformer;
use evr_projection::{FilterMode, ImageBuffer, PixelSource};

use crate::config::PteConfig;
use crate::energy::{OpCounts, PteEnergyParams};
use crate::mem::PmemCache;

/// Fraction of a block-fill latency exposed as pipeline stall; the rest
/// is hidden by the prefetching DMA (double-buffered block fills).
const EXPOSED_FILL_FRACTION: f64 = 0.2;

/// Per-frame statistics reported by the engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameStats {
    /// Output pixels produced.
    pub out_pixels: u64,
    /// Cycles spent issuing pixels (pipelined, `pixels / num_ptus`).
    pub active_cycles: u64,
    /// Cycles stalled on P-MEM line fills.
    pub stall_cycles: u64,
    /// DRAM bytes read (input line fills).
    pub dram_read_bytes: u64,
    /// DRAM bytes written (output frame).
    pub dram_write_bytes: u64,
    /// P-MEM line-buffer hits.
    pub pmem_hits: u64,
    /// P-MEM line-buffer misses.
    pub pmem_misses: u64,
    /// Dynamic datapath energy, joules.
    pub compute_energy_j: f64,
    /// SRAM access energy, joules.
    pub sram_energy_j: f64,
    /// DRAM access energy, joules.
    pub dram_energy_j: f64,
    /// Leakage energy over the frame time, joules.
    pub leakage_energy_j: f64,
    clock_hz: f64,
}

impl FrameStats {
    /// Total cycles for the frame.
    pub fn total_cycles(&self) -> u64 {
        self.active_cycles + self.stall_cycles
    }

    /// Frame latency in seconds.
    pub fn frame_time_s(&self) -> f64 {
        self.total_cycles() as f64 / self.clock_hz
    }

    /// Sustained frame rate if frames are produced back to back
    /// (0 for a degenerate zero-cycle frame rather than infinity).
    pub fn fps(&self) -> f64 {
        let t = self.frame_time_s();
        if t > 0.0 {
            1.0 / t
        } else {
            0.0
        }
    }

    /// Total energy for the frame, joules.
    pub fn energy_j(&self) -> f64 {
        self.compute_energy_j + self.sram_energy_j + self.dram_energy_j + self.leakage_energy_j
    }

    /// Average power while producing this frame, watts (0 for a
    /// degenerate zero-cycle frame).
    pub fn power_watts(&self) -> f64 {
        let t = self.frame_time_s();
        if t > 0.0 {
            self.energy_j() / t
        } else {
            0.0
        }
    }

    /// Energy at a fixed display rate: the engine renders the frame, then
    /// idles (leakage only) until the next frame slot. Returns the energy
    /// of one `1/fps`-second slot, or `None` when the engine cannot
    /// sustain `fps` (or `fps` is not a positive rate) — experiment
    /// drivers sweep display rates, and an unsustainable point is an
    /// answer, not a crash.
    pub fn energy_at_fps(&self, fps: f64, leakage_w: f64) -> Option<f64> {
        if !(fps > 0.0 && fps.is_finite()) {
            return None;
        }
        let slot = 1.0 / fps;
        let busy = self.frame_time_s();
        if busy > slot {
            return None;
        }
        Some(self.energy_j() + (slot - busy) * leakage_w)
    }
}

/// The PTE engine.
///
/// Two evaluation entry points:
///
/// * [`Pte::analyze_frame`] — runs only the coordinate stream against the
///   line-buffer model: cycles, traffic and energy, no pixels. Used by
///   the experiment drivers where thousands of frames are simulated.
/// * [`Pte::render_frame`] — additionally produces the output frame
///   through the bit-exact fixed-point datapath.
#[derive(Debug, Clone)]
pub struct Pte {
    config: PteConfig,
    energy: PteEnergyParams,
    metrics: PteMetrics,
    lut: SamplingMapCache,
}

/// Pre-resolved PTU cycle/stall/traffic counters for an observed engine.
#[derive(Debug, Clone, Default)]
struct PteMetrics {
    frames: evr_obs::Counter,
    active_cycles: evr_obs::Counter,
    stall_cycles: evr_obs::Counter,
    pmem_hits: evr_obs::Counter,
    pmem_misses: evr_obs::Counter,
    dram_read_bytes: evr_obs::Counter,
    dram_write_bytes: evr_obs::Counter,
    lut_hits: evr_obs::Counter,
    lut_misses: evr_obs::Counter,
    render_seconds: evr_obs::Histogram,
}

impl PteMetrics {
    fn resolve(observer: &evr_obs::Observer) -> Self {
        use evr_obs::names;
        PteMetrics {
            frames: observer.counter(names::PTE_FRAMES),
            active_cycles: observer.counter(names::PTE_ACTIVE_CYCLES),
            stall_cycles: observer.counter(names::PTE_STALL_CYCLES),
            pmem_hits: observer.counter(names::PTE_PMEM_HITS),
            pmem_misses: observer.counter(names::PTE_PMEM_MISSES),
            dram_read_bytes: observer.counter(names::PTE_DRAM_READ_BYTES),
            dram_write_bytes: observer.counter(names::PTE_DRAM_WRITE_BYTES),
            lut_hits: observer.counter(names::PT_LUT_HITS),
            lut_misses: observer.counter(names::PT_LUT_MISSES),
            render_seconds: observer
                .histogram(names::PT_RENDER_SECONDS, &evr_obs::LATENCY_BOUNDS_S),
        }
    }

    fn record_lut(&self, hit: bool) {
        if hit {
            self.lut_hits.inc();
        } else {
            self.lut_misses.inc();
        }
    }

    fn record(&self, stats: &FrameStats) {
        self.frames.inc();
        self.active_cycles.add(stats.active_cycles);
        self.stall_cycles.add(stats.stall_cycles);
        self.pmem_hits.add(stats.pmem_hits);
        self.pmem_misses.add(stats.pmem_misses);
        self.dram_read_bytes.add(stats.dram_read_bytes);
        self.dram_write_bytes.add(stats.dram_write_bytes);
    }
}

impl Pte {
    /// Creates an engine with default (paper-calibrated) energy parameters.
    ///
    /// Coordinate maps are served from the process-wide shared
    /// [`SamplingMapCache`], so engines with the same configuration reuse
    /// each other's mapping work.
    pub fn new(config: PteConfig) -> Self {
        Pte {
            config,
            energy: PteEnergyParams::default(),
            metrics: PteMetrics::default(),
            lut: SamplingMapCache::shared(),
        }
    }

    /// Creates an engine with explicit energy parameters.
    pub fn with_energy(config: PteConfig, energy: PteEnergyParams) -> Self {
        Pte { config, energy, metrics: PteMetrics::default(), lut: SamplingMapCache::shared() }
    }

    /// Replaces the sampling-map cache (default: the process-wide shared
    /// cache). Tests use a private cache so hit/miss counts are observed
    /// in isolation.
    pub fn with_lut_cache(mut self, lut: SamplingMapCache) -> Self {
        self.lut = lut;
        self
    }

    /// The sampling-map cache in use.
    pub fn lut_cache(&self) -> &SamplingMapCache {
        &self.lut
    }

    /// Routes per-frame PTU cycle, stall, P-MEM and DRAM statistics into
    /// `observer` (`evr_pte_*` names) on every frame analysis. A no-op
    /// observer detaches the counters again.
    pub fn set_observer(&mut self, observer: &evr_obs::Observer) {
        self.metrics = if observer.is_enabled() {
            PteMetrics::resolve(observer)
        } else {
            PteMetrics::default()
        };
    }

    /// The configuration.
    pub fn config(&self) -> &PteConfig {
        &self.config
    }

    /// The energy parameters.
    pub fn energy_params(&self) -> &PteEnergyParams {
        &self.energy
    }

    /// Analyzes one frame: drives the output scan's source-line access
    /// pattern through the P-MEM model and accounts cycles and energy.
    pub fn analyze_frame(
        &self,
        src_width: u32,
        src_height: u32,
        orientation: EulerAngles,
    ) -> FrameStats {
        self.analyze_frame_strided(src_width, src_height, orientation, 1)
    }

    /// Like [`Pte::analyze_frame`] but sampling every `stride`-th pixel in
    /// each axis and scaling the counts, trading line-index fidelity for
    /// speed in multi-thousand-frame experiments.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`.
    pub fn analyze_frame_strided(
        &self,
        src_width: u32,
        src_height: u32,
        orientation: EulerAngles,
        stride: u32,
    ) -> FrameStats {
        assert!(
            (1..=8).contains(&stride),
            "stride must be in 1..=8 (beyond 8 the sampling would skip whole P-MEM blocks)"
        );
        let cfg = &self.config;
        // The f64 reference supplies the coordinate stream; its addresses
        // differ from the fixed datapath by at most one texel, which is
        // immaterial for block-granular traffic. The stream itself comes
        // from the sampling-map cache: experiment drivers analyze
        // thousands of frames at a handful of (snapped) orientations, so
        // the mapping usually runs once per pose, not once per frame.
        let mapper = Transformer::new(cfg.projection, cfg.filter, cfg.fov, cfg.viewport);
        let (map, lut_hit) = self.lut.reference_map(&mapper, orientation, stride);
        self.metrics.record_lut(lut_hit);
        let coords = map.as_reference().expect("reference lookup yields a reference map");
        self.analyze_coords(src_width, src_height, stride, coords.iter().copied())
    }

    /// Replays one coordinate stream (already strided) against the P-MEM
    /// model and accounts cycles and energy — the shared analysis core
    /// behind [`Pte::analyze_frame_strided`] and [`Pte::render_frame`].
    fn analyze_coords(
        &self,
        src_width: u32,
        src_height: u32,
        stride: u32,
        coords: impl Iterator<Item = (f64, f64)>,
    ) -> FrameStats {
        let cfg = &self.config;
        let mut pmem = PmemCache::new(cfg.pmem_bytes, src_width, src_height);
        let edge = EdgeMode::for_projection(cfg.projection);
        let scale = (stride * stride) as u64;

        let mut sampled_misses = 0u64;
        let mut sampled_hits = 0u64;
        for (u, v) in coords {
            let x = ((u * src_width as f64) as u32).min(src_width - 1);
            let y = ((v * src_height as f64) as u32).min(src_height - 1);
            let mut touch = |xx: u32, yy: u32| {
                let hit = pmem.access(xx, yy);
                sampled_hits += hit as u64;
                sampled_misses += !hit as u64;
            };
            touch(x, y);
            if cfg.filter == FilterMode::Bilinear {
                // Out-of-range bilinear neighbours resolve through the
                // projection's edge mode, exactly like the datapath's
                // samplers: ERP wraps in longitude, so the right
                // neighbour of the last column is column 0. Clamping
                // here undercounted P-MEM traffic at yaw ≈ ±180°.
                let (x1, _) = edge.resolve(x as i64 + 1, y as i64, src_width, src_height);
                let (_, y1) = edge.resolve(x as i64, y as i64 + 1, src_width, src_height);
                touch(x1, y);
                touch(x, y1);
                touch(x1, y1);
            }
        }
        // Scale sampled counts back to full-frame estimates. Hits scale
        // with pixel count; misses are block-granular and do NOT scale
        // with stride (the same blocks get filled regardless of sampling
        // rate, as long as stride stays below the block size).
        let out_pixels = cfg.viewport.pixels();
        let pmem_misses = sampled_misses;
        let pmem_hits = sampled_hits * scale;
        let dram_read_bytes = pmem.stats().dram_bytes;
        let dram_write_bytes = out_pixels * 3;

        let active_cycles = out_pixels.div_ceil(cfg.num_ptus as u64);
        // Block fills mostly overlap compute via prefetch; the exposed
        // fraction serializes on the DMA port.
        let stall_cycles = pmem_misses
            * PmemCache::fill_stall_cycles(cfg.dma_bytes_per_cycle, EXPOSED_FILL_FRACTION);

        let ops = OpCounts::for_pipeline(cfg.projection, cfg.filter);
        let compute_energy_j = ops.compute_energy(out_pixels, &self.energy);
        let sram_energy_j = ops.sram_energy(out_pixels, &self.energy);
        let dram_energy_j = (dram_read_bytes + dram_write_bytes) as f64 * self.energy.dram_byte_j;
        let time_s = (active_cycles + stall_cycles) as f64 / cfg.clock_hz;
        let leakage_energy_j = self.energy.leakage_w * time_s;

        let stats = FrameStats {
            out_pixels,
            active_cycles,
            stall_cycles,
            dram_read_bytes,
            dram_write_bytes,
            pmem_hits,
            pmem_misses,
            compute_energy_j,
            sram_energy_j,
            dram_energy_j,
            leakage_energy_j,
            clock_hz: cfg.clock_hz,
        };
        self.metrics.record(&stats);
        stats
    }

    /// Renders one frame bit-exactly through the fixed-point datapath and
    /// returns it with the frame statistics.
    ///
    /// Rendering and traffic analysis consume one shared coordinate
    /// stream (the cached fixed-point sampling map), so the mapping runs
    /// once per pose instead of twice per frame. The analysis addresses
    /// therefore come from the fixed datapath rather than the `f64`
    /// reference — a difference of at most one texel, immaterial at
    /// block granularity.
    pub fn render_frame(
        &self,
        src: &(impl PixelSource + Sync),
        orientation: EulerAngles,
    ) -> (ImageBuffer, FrameStats) {
        let start = std::time::Instant::now();
        let cfg = &self.config;
        let fixed =
            FixedTransformer::new(cfg.format, cfg.projection, cfg.filter, cfg.fov, cfg.viewport);
        let (map, lut_hit) = self.lut.fixed_map(&fixed, orientation);
        self.metrics.record_lut(lut_hit);
        let (_, coords) = map.as_fixed().expect("fixed lookup yields a fixed map");
        let image = fixed.render_with_map(src, coords);
        let stats = self.analyze_coords(
            src.width(),
            src.height(),
            1,
            coords.iter().map(|&(u, v)| (fixed.to_f64(u), fixed.to_f64(v))),
        );
        self.metrics.render_seconds.observe(start.elapsed().as_secs_f64());
        (image, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::BLOCK_BYTES;
    use evr_projection::lut::LutStats;
    use evr_projection::{FovSpec, Projection, Rgb, Viewport};

    fn prototype() -> Pte {
        Pte::new(PteConfig::prototype())
    }

    #[test]
    fn observed_engine_accumulates_cycle_stats() {
        let obs = evr_obs::Observer::enabled();
        let mut pte = prototype();
        pte.set_observer(&obs);
        let a = pte.analyze_frame_strided(3840, 2160, EulerAngles::default(), 4);
        let b = pte.analyze_frame_strided(3840, 2160, EulerAngles::from_degrees(30.0, 5.0, 0.0), 4);
        use evr_obs::names;
        assert_eq!(obs.counter(names::PTE_FRAMES).get(), 2);
        assert_eq!(obs.counter(names::PTE_ACTIVE_CYCLES).get(), a.active_cycles + b.active_cycles);
        assert_eq!(obs.counter(names::PTE_STALL_CYCLES).get(), a.stall_cycles + b.stall_cycles);
        assert_eq!(obs.counter(names::PTE_PMEM_MISSES).get(), a.pmem_misses + b.pmem_misses);
        assert_eq!(
            obs.counter(names::PTE_DRAM_READ_BYTES).get(),
            a.dram_read_bytes + b.dram_read_bytes
        );
        // Detaching stops the accumulation.
        pte.set_observer(&evr_obs::Observer::noop());
        let _ = pte.analyze_frame_strided(3840, 2160, EulerAngles::default(), 4);
        assert_eq!(obs.counter(names::PTE_FRAMES).get(), 2);
    }

    #[test]
    fn prototype_sustains_50_fps_at_1440p() {
        let stats = prototype().analyze_frame_strided(3840, 2160, EulerAngles::default(), 4);
        assert!(stats.fps() > 45.0, "fps = {}", stats.fps());
        assert!(stats.fps() < 60.0, "fps = {}", stats.fps());
    }

    #[test]
    fn prototype_power_matches_post_layout_194mw() {
        let stats = prototype().analyze_frame_strided(3840, 2160, EulerAngles::default(), 4);
        let p = stats.power_watts();
        assert!((0.15..=0.25).contains(&p), "power {p} W should be near the paper's 194 mW");
    }

    #[test]
    fn stalls_are_a_small_fraction_of_cycles() {
        // Scan coherence means line fills hide behind thousands of hits.
        let stats = prototype().analyze_frame_strided(3840, 2160, EulerAngles::default(), 4);
        assert!(stats.stall_cycles * 10 < stats.active_cycles);
    }

    #[test]
    fn dram_reads_bounded_by_source_size() {
        let stats = prototype().analyze_frame_strided(3840, 2160, EulerAngles::default(), 4);
        // Can't read more than ~the touched span of the source per frame;
        // certainly not more than a whole 4K frame.
        assert!(stats.dram_read_bytes <= 3840 * 2160 * 3);
        assert!(stats.dram_read_bytes > 0);
    }

    #[test]
    fn more_ptus_increase_throughput() {
        let one = Pte::new(PteConfig::prototype().with_ptus(1)).analyze_frame_strided(
            3840,
            2160,
            EulerAngles::default(),
            4,
        );
        let four = Pte::new(PteConfig::prototype().with_ptus(4)).analyze_frame_strided(
            3840,
            2160,
            EulerAngles::default(),
            4,
        );
        assert!(four.fps() > 1.9 * one.fps());
    }

    #[test]
    fn render_frame_produces_pixels_and_stats() {
        let cfg = PteConfig::prototype().with_viewport(Viewport::new(16, 16));
        let pte = Pte::new(cfg);
        let src = ImageBuffer::from_fn(64, 32, |x, _| Rgb::new((x * 4) as u8, 0, 0));
        let (img, stats) = pte.render_frame(&src, EulerAngles::default());
        assert_eq!(img.width(), 16);
        assert_eq!(stats.out_pixels, 256);
        assert!(stats.energy_j() > 0.0);
    }

    #[test]
    fn energy_at_fps_adds_idle_leakage() {
        let stats = prototype().analyze_frame_strided(3840, 2160, EulerAngles::default(), 4);
        let e30 = stats
            .energy_at_fps(30.0, PteEnergyParams::default().leakage_w)
            .expect("prototype sustains 30 FPS");
        assert!(e30 > stats.energy_j());
        // Average power at 30 FPS is below the flat-out power.
        assert!(e30 * 30.0 < stats.power_watts());
    }

    #[test]
    fn unsustainable_fps_is_none_not_a_panic() {
        let stats = prototype().analyze_frame_strided(3840, 2160, EulerAngles::default(), 4);
        assert_eq!(stats.energy_at_fps(1e9, 0.1), None);
        assert_eq!(stats.energy_at_fps(0.0, 0.1), None);
        assert_eq!(stats.energy_at_fps(-30.0, 0.1), None);
        assert_eq!(stats.energy_at_fps(f64::NAN, 0.1), None);
    }

    #[test]
    fn erp_seam_counts_wrapped_block_traffic() {
        // A 1×1 viewport with a 1° FOV maps to exactly one bilinear
        // sample. At yaw 179.3°, u = 0.5 + 179.3/360 lands the sample in
        // the last source column, so its right neighbour wraps across
        // the ERP seam to column 0 — a second P-MEM block. The old
        // analyzer clamped the neighbour to the last column and saw only
        // one block fill.
        let cfg = PteConfig::prototype()
            .with_viewport(Viewport::new(1, 1))
            .with_fov(FovSpec::from_degrees(1.0, 1.0));
        let pte = Pte::new(cfg).with_lut_cache(SamplingMapCache::new());
        let stats = pte.analyze_frame(256, 128, EulerAngles::from_degrees(179.3, 0.0, 0.0));
        assert_eq!(stats.pmem_misses, 2, "seam sample must fill both edge blocks");
        assert_eq!(stats.dram_read_bytes, 2 * BLOCK_BYTES as u64);
        // Away from the seam the same setup touches a single block.
        let stats = pte.analyze_frame(256, 128, EulerAngles::from_degrees(10.0, 0.0, 0.0));
        assert_eq!(stats.pmem_misses, 1);
    }

    #[test]
    fn repeated_analysis_hits_the_lut_without_changing_stats() {
        let pte = prototype().with_lut_cache(SamplingMapCache::new());
        let a = pte.analyze_frame_strided(3840, 2160, EulerAngles::default(), 4);
        let b = pte.analyze_frame_strided(3840, 2160, EulerAngles::default(), 4);
        assert_eq!(a, b, "a cached map must reproduce the frame stats exactly");
        assert_eq!(pte.lut_cache().stats(), LutStats { hits: 1, misses: 1 });
    }

    #[test]
    fn observer_sees_lut_and_render_metrics() {
        let obs = evr_obs::Observer::enabled();
        let mut pte = Pte::new(PteConfig::prototype().with_viewport(Viewport::new(16, 16)))
            .with_lut_cache(SamplingMapCache::new());
        pte.set_observer(&obs);
        let src = ImageBuffer::from_fn(64, 32, |x, _| Rgb::new((x * 4) as u8, 0, 0));
        let _ = pte.render_frame(&src, EulerAngles::default());
        let _ = pte.render_frame(&src, EulerAngles::default());
        use evr_obs::names;
        assert_eq!(obs.counter(names::PT_LUT_MISSES).get(), 1);
        assert_eq!(obs.counter(names::PT_LUT_HITS).get(), 1);
        let h = obs.histogram(names::PT_RENDER_SECONDS, &evr_obs::LATENCY_BOUNDS_S).snapshot();
        assert_eq!(h.count, 2);
    }

    #[test]
    fn render_frame_stats_match_strided_analysis_shape() {
        // The single-pass render analysis replays fixed-point addresses;
        // it must stay within a texel of the f64 analysis, i.e. identical
        // block traffic for an interior pose.
        let cfg = PteConfig::prototype().with_viewport(Viewport::new(32, 32));
        let pte = Pte::new(cfg).with_lut_cache(SamplingMapCache::new());
        let src = ImageBuffer::from_fn(256, 128, |x, y| Rgb::new(x as u8, y as u8, 0));
        let (_, rendered) = pte.render_frame(&src, EulerAngles::default());
        let analyzed = pte.analyze_frame(256, 128, EulerAngles::default());
        assert_eq!(rendered.out_pixels, analyzed.out_pixels);
        assert_eq!(rendered.active_cycles, analyzed.active_cycles);
        assert_eq!(rendered.dram_write_bytes, analyzed.dram_write_bytes);
    }

    #[test]
    fn eac_costs_more_energy_than_cmp() {
        let run = |p: Projection| {
            Pte::new(PteConfig::prototype().with_projection(p))
                .analyze_frame_strided(3840, 2160, EulerAngles::default(), 4)
                .compute_energy_j
        };
        assert!(run(Projection::Eac) > run(Projection::Cmp));
    }
}
