//! The mobile-GPU baseline for projective transformation.
//!
//! Today's VR clients cast PT as texture mapping and run it on the GPU
//! (paper §2/§6.1), paying for generality: texture caches sized for
//! arbitrary access patterns, the full OpenGL ES software stack, and a
//! power-hungry shader array. This model captures the GPU at the level
//! the paper measures it — time and energy per PT frame — with parameters
//! representative of the Tegra X2-class part in the evaluation platform.

use serde::{Deserialize, Serialize};

/// Cost of one PT frame on the GPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuFrameCost {
    /// Kernel execution time, seconds.
    pub time_s: f64,
    /// Energy consumed by the kernel (GPU rails), joules.
    pub energy_j: f64,
    /// DRAM bytes moved (texture fetches + framebuffer).
    pub dram_bytes: u64,
}

/// Analytical mobile-GPU model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuModel {
    /// Power while PT kernels execute, watts (shader array + TMUs).
    pub active_power_w: f64,
    /// Power of keeping the GPU context alive between kernels, watts
    /// (clocked-up idle, driver threads) — paid whenever the rendering
    /// path uses the GPU at all during a playback session.
    pub session_power_w: f64,
    /// Sustained texture-mapping throughput, output pixels per second.
    pub throughput_px_s: f64,
    /// DRAM bytes per output pixel (texture cache misses + framebuffer
    /// write; generic caches move more data than the PTE's line buffers).
    pub dram_bytes_per_px: f64,
}

impl Default for GpuModel {
    fn default() -> Self {
        GpuModel {
            active_power_w: 1.9,
            session_power_w: 0.28,
            throughput_px_s: 2.35e8,
            dram_bytes_per_px: 7.0,
        }
    }
}

impl GpuModel {
    /// Cost of transforming one frame with `out_pixels` output pixels
    /// (session power not included; see [`GpuModel::session_energy`]).
    #[inline]
    pub fn pt_frame(&self, out_pixels: u64) -> GpuFrameCost {
        let time_s = out_pixels as f64 / self.throughput_px_s;
        GpuFrameCost {
            time_s,
            energy_j: time_s * self.active_power_w,
            dram_bytes: (out_pixels as f64 * self.dram_bytes_per_px) as u64,
        }
    }

    /// Session-overhead energy for keeping the GPU path alive for
    /// `duration_s` seconds.
    #[inline]
    pub fn session_energy(&self, duration_s: f64) -> f64 {
        self.session_power_w * duration_s
    }

    /// Average GPU power when transforming `fps` frames of `out_pixels`
    /// per second (kernel duty cycle + session overhead) — the quantity
    /// the paper's Figure 3b attributes to PT.
    pub fn average_power(&self, out_pixels: u64, fps: f64) -> f64 {
        let per_frame = self.pt_frame(out_pixels);
        per_frame.energy_j * fps + self.session_power_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PX_1440P: u64 = 2560 * 1440;

    #[test]
    fn gpu_pt_at_30fps_draws_over_a_watt() {
        let gpu = GpuModel::default();
        let p = gpu.average_power(PX_1440P, 30.0);
        assert!((1.0..1.8).contains(&p), "GPU PT power {p} W");
    }

    #[test]
    fn pte_is_an_order_of_magnitude_below_gpu_active_power() {
        // Paper §7.2: "one order of magnitude power reduction compared to
        // a typical mobile GPU."
        let gpu = GpuModel::default();
        assert!(gpu.active_power_w / 0.194 > 9.0);
    }

    #[test]
    fn frame_cost_scales_with_pixels() {
        let gpu = GpuModel::default();
        let small = gpu.pt_frame(PX_1440P / 4);
        let big = gpu.pt_frame(PX_1440P);
        assert!((big.energy_j / small.energy_j - 4.0).abs() < 1e-9);
        assert!(big.dram_bytes > small.dram_bytes);
    }

    #[test]
    fn gpu_sustains_realtime_1440p() {
        let gpu = GpuModel::default();
        let c = gpu.pt_frame(PX_1440P);
        assert!(c.time_s < 1.0 / 30.0, "frame time {}", c.time_s);
    }

    #[test]
    fn gpu_moves_more_dram_per_pixel_than_pte() {
        // The architectural claim behind HAR: generic texture caching
        // moves several× the traffic of stencil-aware line buffering.
        let gpu = GpuModel::default();
        assert!(gpu.dram_bytes_per_px > 4.0);
    }
}
