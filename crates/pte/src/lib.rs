//! The Projective Transformation Engine (PTE) — cycle-level and
//! energy-level model of the paper's hardware accelerator (§6.2, §7.2).
//!
//! The prototype the paper lays out on a Xilinx Zynq-7000:
//!
//! * **2 PTUs**, each fully pipelined to accept one pixel per cycle;
//! * **100 MHz** clock → 2×10⁸ pixels/s → ~50 FPS at a 2560×1440 output;
//! * **P-MEM 512 KB** (input-frame line buffer) and **S-MEM 256 KB**
//!   (output staging), DMA-filled — replacing the GPU's texture caches;
//! * fixed-point `[28, 10]` datapath;
//! * **194 mW** total power — "one order of magnitude power reduction
//!   compared to a typical mobile GPU".
//!
//! This crate models that design at the level the paper's evaluation
//! needs: per-frame cycle counts with memory-stall accounting
//! ([`engine`]), DRAM traffic from the line-buffer model ([`mem`]), and a
//! bottom-up energy model calibrated to the 194 mW post-layout figure
//! ([`energy`]). [`gpu`] provides the mobile-GPU baseline the paper
//! measures against, and [`systolic`] the SCALE-Sim-style DNN accelerator
//! model used by the §8.5 head-motion-prediction comparison.
//!
//! # Example
//!
//! ```
//! use evr_pte::{Pte, PteConfig};
//! use evr_projection::{FovSpec, Viewport};
//! use evr_math::EulerAngles;
//!
//! let pte = Pte::new(PteConfig::prototype());
//! let stats = pte.analyze_frame(3840, 2160, EulerAngles::default());
//! // The prototype sustains real-time 1440p: > 30 FPS.
//! assert!(stats.fps() > 30.0);
//! // And draws on the order of 200 mW.
//! assert!(stats.power_watts() > 0.1 && stats.power_watts() < 0.3);
//! ```

pub mod config;
pub mod energy;
pub mod engine;
pub mod gpu;
pub mod mem;
pub mod regs;
pub mod systolic;

pub use config::PteConfig;
pub use energy::PteEnergyParams;
pub use engine::{FrameStats, Pte};
pub use gpu::GpuModel;
pub use regs::PteDevice;
pub use systolic::{Layer, SystolicArray};
