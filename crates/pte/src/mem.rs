//! The P-MEM model: a software-managed cache of 2-D source-frame blocks.
//!
//! Paper §6.2: holding whole frames on-chip "would require tens of MBs";
//! instead the PT's stencil-like access pattern (adjacent output pixels
//! touch adjacent, overlapping input pixels) lets P-MEM hold only the
//! active working set, "similar to the line-buffer used in Image Signal
//! Processor designs". Because the ERP mapping curves across an output
//! scanline, the resident set is organised as small 2-D blocks rather
//! than full source lines: each block is DMA-filled once on first touch
//! and then serves the whole stencil neighbourhood from SRAM.
//!
//! Fills are streamed by a prefetching DMA; only a configurable fraction
//! of the fill latency is exposed as pipeline stall.

use std::collections::HashMap;

/// Block geometry: 32×8 pixels of 3-byte RGB.
pub const BLOCK_W: u32 = 32;
/// See [`BLOCK_W`].
pub const BLOCK_H: u32 = 8;
/// Bytes per block.
pub const BLOCK_BYTES: u32 = BLOCK_W * BLOCK_H * 3;

/// Statistics accumulated by the block cache over one frame.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PmemStats {
    /// Accesses that found their block resident.
    pub hits: u64,
    /// Accesses that triggered a block fill.
    pub misses: u64,
    /// Bytes DMA-transferred from DRAM.
    pub dram_bytes: u64,
}

/// An LRU cache of source-frame blocks backing the PTU's filtering stage.
///
/// # Example
///
/// ```
/// use evr_pte::mem::{PmemCache, BLOCK_BYTES};
///
/// let mut pmem = PmemCache::new(4 * BLOCK_BYTES, 3840, 2160);
/// assert!(!pmem.access(0, 0));   // cold miss
/// assert!(pmem.access(5, 3));    // same 32×8 block
/// assert!(!pmem.access(100, 0)); // a different block
/// assert_eq!(pmem.stats().misses, 2);
/// ```
#[derive(Debug, Clone)]
pub struct PmemCache {
    capacity_blocks: u32,
    blocks_x: u32,
    resident: HashMap<u32, u64>,
    tick: u64,
    stats: PmemStats,
}

impl PmemCache {
    /// Creates a cache of `capacity_bytes` over a `src_width`×`src_height`
    /// frame.
    ///
    /// # Panics
    ///
    /// Panics if the capacity holds fewer than 4 blocks (the bilinear
    /// stencil can straddle up to 4 blocks).
    pub fn new(capacity_bytes: u32, src_width: u32, src_height: u32) -> Self {
        assert!(src_width > 0 && src_height > 0, "source dimensions must be non-zero");
        let capacity_blocks = capacity_bytes / BLOCK_BYTES;
        assert!(capacity_blocks >= 4, "P-MEM must hold at least 4 blocks ({capacity_bytes} B)");
        PmemCache {
            capacity_blocks,
            blocks_x: src_width.div_ceil(BLOCK_W),
            resident: HashMap::with_capacity(capacity_blocks as usize + 1),
            tick: 0,
            stats: PmemStats::default(),
        }
    }

    /// Number of blocks the cache can hold.
    pub fn capacity_blocks(&self) -> u32 {
        self.capacity_blocks
    }

    /// Touches source pixel `(x, y)`; returns `true` on hit. A miss fills
    /// the enclosing block from DRAM and evicts LRU if full.
    pub fn access(&mut self, x: u32, y: u32) -> bool {
        self.tick += 1;
        let key = (y / BLOCK_H) * self.blocks_x + x / BLOCK_W;
        if let Some(last) = self.resident.get_mut(&key) {
            *last = self.tick;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        self.stats.dram_bytes += BLOCK_BYTES as u64;
        if self.resident.len() as u32 >= self.capacity_blocks {
            let lru = self
                .resident
                .iter()
                .min_by_key(|(_, &t)| t)
                .map(|(&k, _)| k)
                .expect("cache is non-empty when full");
            self.resident.remove(&lru);
        }
        self.resident.insert(key, self.tick);
        false
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> PmemStats {
        self.stats
    }

    /// Pipeline stall cycles for one block fill: the DMA streams
    /// `BLOCK_BYTES` at `dma_bytes_per_cycle`, and prefetching hides
    /// `1 − exposed_fraction` of it.
    pub fn fill_stall_cycles(dma_bytes_per_cycle: u32, exposed_fraction: f64) -> u64 {
        let raw = (BLOCK_BYTES as u64).div_ceil(dma_bytes_per_cycle as u64);
        (raw as f64 * exposed_fraction).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn raster_scan_misses_once_per_block() {
        let mut pmem = PmemCache::new(64 * BLOCK_BYTES, 256, 64);
        for y in 0..16u32 {
            for x in 0..256u32 {
                pmem.access(x, y);
            }
        }
        // 16 rows cover 2 block rows of 8 blocks each.
        assert_eq!(pmem.stats().misses, 16);
        assert_eq!(pmem.stats().dram_bytes, 16 * BLOCK_BYTES as u64);
    }

    #[test]
    fn lru_keeps_recently_touched_blocks() {
        let mut pmem = PmemCache::new(4 * BLOCK_BYTES, 1024, 1024);
        pmem.access(0, 0); // block A
        pmem.access(40, 0); // block B
        pmem.access(80, 0); // block C
        pmem.access(0, 0); // refresh A
        pmem.access(120, 0); // block D
        pmem.access(160, 0); // block E → evicts B (LRU)
        assert!(pmem.access(0, 0), "A must still be resident");
        assert!(!pmem.access(40, 0), "B must have been evicted");
    }

    #[test]
    fn prototype_pmem_holds_hundreds_of_blocks() {
        let pmem = PmemCache::new(512 * 1024, 3840, 2160);
        assert!(pmem.capacity_blocks() > 500);
    }

    #[test]
    fn stall_cycles_respect_prefetch_overlap() {
        let full = PmemCache::fill_stall_cycles(16, 1.0);
        let overlapped = PmemCache::fill_stall_cycles(16, 0.2);
        assert_eq!(full, 48);
        assert_eq!(overlapped, 10);
    }

    #[test]
    #[should_panic(expected = "at least 4 blocks")]
    fn too_small_capacity_panics() {
        let _ = PmemCache::new(BLOCK_BYTES, 64, 64);
    }

    proptest! {
        #[test]
        fn prop_dram_bytes_track_misses(coords in proptest::collection::vec((0u32..512, 0u32..512), 1..300)) {
            let mut pmem = PmemCache::new(8 * BLOCK_BYTES, 512, 512);
            for (x, y) in coords {
                pmem.access(x, y);
            }
            let s = pmem.stats();
            prop_assert_eq!(s.dram_bytes, s.misses * BLOCK_BYTES as u64);
        }
    }
}
