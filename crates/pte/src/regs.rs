//! The PTE's memory-mapped register interface and a driver-level device
//! model.
//!
//! Paper §6.2: "the PTE also provides a set of memory-mapped registers
//! for configuration purposes. The configurability allows the PTE \[to\]
//! adapt to different popular projection methods and VR device parameters
//! such as FOV size and display resolution." This module models that
//! interface the way a kernel driver would see it: a 32-bit register file
//! with an address map, a doorbell, status/error bits, and per-frame
//! orientation updates — backed by the [`crate::engine::Pte`] model.

use evr_math::{EulerAngles, Radians};
use evr_projection::{FilterMode, FovSpec, Projection, Viewport};

use crate::config::PteConfig;
use crate::engine::{FrameStats, Pte};

/// Register address map (byte offsets, 32-bit registers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum Reg {
    /// Control: bit 0 = doorbell (start frame), bit 1 = soft reset.
    Ctrl = 0x00,
    /// Status (RO): bit 0 = busy, bit 1 = frame done, bit 2 = config error.
    Status = 0x04,
    /// Projection method: 0 = ERP, 1 = CMP, 2 = EAC.
    Projection = 0x08,
    /// Filtering function: 0 = nearest, 1 = bilinear.
    Filter = 0x0C,
    /// Source frame width, pixels.
    SrcWidth = 0x10,
    /// Source frame height, pixels.
    SrcHeight = 0x14,
    /// Output width, pixels.
    OutWidth = 0x18,
    /// Output height, pixels.
    OutHeight = 0x1C,
    /// Horizontal FOV, degrees in unsigned 16.16 fixed point.
    FovH = 0x20,
    /// Vertical FOV, degrees in unsigned 16.16 fixed point.
    FovV = 0x24,
    /// Head yaw, radians in signed 16.16.
    Yaw = 0x28,
    /// Head pitch, radians in signed 16.16.
    Pitch = 0x2C,
    /// Head roll, radians in signed 16.16.
    Roll = 0x30,
    /// Source DMA base address.
    SrcAddr = 0x34,
    /// Destination DMA base address.
    DstAddr = 0x38,
    /// Frames completed since reset (RO).
    FrameCount = 0x3C,
}

/// `STATUS` bit: engine busy.
pub const STATUS_BUSY: u32 = 1 << 0;
/// `STATUS` bit: last frame completed.
pub const STATUS_FRAME_DONE: u32 = 1 << 1;
/// `STATUS` bit: the programmed configuration is invalid.
pub const STATUS_CFG_ERROR: u32 = 1 << 2;

/// `CTRL` bit: start one frame.
pub const CTRL_START: u32 = 1 << 0;
/// `CTRL` bit: soft reset.
pub const CTRL_RESET: u32 = 1 << 1;

const Q16: f64 = 65536.0;

/// The device model: a register file in front of the PTE engine.
///
/// # Example (a driver's programming sequence)
///
/// ```
/// use evr_pte::regs::{PteDevice, Reg, CTRL_START, STATUS_FRAME_DONE};
///
/// let mut dev = PteDevice::new();
/// dev.write(Reg::SrcWidth as u32, 3840);
/// dev.write(Reg::SrcHeight as u32, 2160);
/// dev.write(Reg::OutWidth as u32, 2560);
/// dev.write(Reg::OutHeight as u32, 1440);
/// dev.write(Reg::FovH as u32, 110 << 16);
/// dev.write(Reg::FovV as u32, 110 << 16);
/// dev.write(Reg::Ctrl as u32, CTRL_START);
/// assert!(dev.read(Reg::Status as u32) & STATUS_FRAME_DONE != 0);
/// assert_eq!(dev.read(Reg::FrameCount as u32), 1);
/// ```
#[derive(Debug, Clone)]
pub struct PteDevice {
    base: PteConfig,
    regs: [u32; 16],
    status: u32,
    frame_count: u32,
    last_stats: Option<FrameStats>,
}

impl Default for PteDevice {
    fn default() -> Self {
        PteDevice::new()
    }
}

impl PteDevice {
    /// Creates a device with the prototype's fixed parameters (PTU count,
    /// clock, memory sizes) and registers reset to the prototype defaults.
    pub fn new() -> Self {
        let mut dev = PteDevice {
            base: PteConfig::prototype(),
            regs: [0; 16],
            status: 0,
            frame_count: 0,
            last_stats: None,
        };
        dev.reset();
        dev
    }

    fn reset(&mut self) {
        let p = PteConfig::prototype();
        self.set_reg(Reg::Projection, 0);
        self.set_reg(Reg::Filter, 1);
        self.set_reg(Reg::SrcWidth, 3840);
        self.set_reg(Reg::SrcHeight, 2160);
        self.set_reg(Reg::OutWidth, p.viewport.width);
        self.set_reg(Reg::OutHeight, p.viewport.height);
        self.set_reg(Reg::FovH, (p.fov.horizontal.0 * Q16) as u32);
        self.set_reg(Reg::FovV, (p.fov.vertical.0 * Q16) as u32);
        self.set_reg(Reg::Yaw, 0);
        self.set_reg(Reg::Pitch, 0);
        self.set_reg(Reg::Roll, 0);
        self.status = 0;
        self.frame_count = 0;
        self.last_stats = None;
    }

    fn set_reg(&mut self, reg: Reg, value: u32) {
        self.regs[(reg as u32 / 4) as usize] = value;
    }

    fn reg(&self, reg: Reg) -> u32 {
        self.regs[(reg as u32 / 4) as usize]
    }

    /// Writes a 32-bit register at byte offset `addr`.
    ///
    /// Writes to read-only or unmapped offsets are ignored (as AXI-lite
    /// slaves typically do), except that any write to `CTRL` is acted on.
    pub fn write(&mut self, addr: u32, value: u32) {
        match addr {
            a if a == Reg::Ctrl as u32 => self.handle_ctrl(value),
            a if a == Reg::Status as u32 || a == Reg::FrameCount as u32 => {} // RO
            a if (a / 4) < 16 && a.is_multiple_of(4) => {
                self.regs[(a / 4) as usize] = value;
                // Touching configuration clears FRAME_DONE and CFG_ERROR.
                self.status &= !(STATUS_FRAME_DONE | STATUS_CFG_ERROR);
            }
            _ => {} // unmapped
        }
    }

    /// Reads a 32-bit register at byte offset `addr` (0 for unmapped).
    pub fn read(&self, addr: u32) -> u32 {
        match addr {
            a if a == Reg::Status as u32 => self.status,
            a if a == Reg::FrameCount as u32 => self.frame_count,
            a if (a / 4) < 16 && a.is_multiple_of(4) => self.regs[(a / 4) as usize],
            _ => 0,
        }
    }

    /// Cycle/energy statistics of the last completed frame, if any.
    pub fn last_frame_stats(&self) -> Option<&FrameStats> {
        self.last_stats.as_ref()
    }

    fn handle_ctrl(&mut self, value: u32) {
        if value & CTRL_RESET != 0 {
            self.reset();
            return;
        }
        if value & CTRL_START == 0 {
            return;
        }
        match self.decode_config() {
            Ok((cfg, pose, src_w, src_h)) => {
                // The model runs the frame synchronously; a real driver
                // would poll BUSY or take an interrupt.
                let stats = Pte::new(cfg).analyze_frame_strided(src_w, src_h, pose, 4);
                self.last_stats = Some(stats);
                self.frame_count = self.frame_count.wrapping_add(1);
                self.status = STATUS_FRAME_DONE;
            }
            Err(()) => {
                self.status = STATUS_CFG_ERROR;
            }
        }
    }

    fn decode_config(&self) -> Result<(PteConfig, EulerAngles, u32, u32), ()> {
        let projection = match self.reg(Reg::Projection) {
            0 => Projection::Erp,
            1 => Projection::Cmp,
            2 => Projection::Eac,
            _ => return Err(()),
        };
        let filter = match self.reg(Reg::Filter) {
            0 => FilterMode::Nearest,
            1 => FilterMode::Bilinear,
            _ => return Err(()),
        };
        let (src_w, src_h) = (self.reg(Reg::SrcWidth), self.reg(Reg::SrcHeight));
        if src_w == 0 || src_h == 0 {
            return Err(());
        }
        let viewport =
            Viewport::try_new(self.reg(Reg::OutWidth), self.reg(Reg::OutHeight)).map_err(|_| ())?;
        let fov_h = self.reg(Reg::FovH) as f64 / Q16;
        let fov_v = self.reg(Reg::FovV) as f64 / Q16;
        let fov = FovSpec::try_from_degrees(fov_h, fov_v).map_err(|_| ())?;
        let q16 = |v: u32| (v as i32) as f64 / Q16;
        let pose = EulerAngles::new(
            Radians(q16(self.reg(Reg::Yaw))),
            Radians(q16(self.reg(Reg::Pitch))),
            Radians(q16(self.reg(Reg::Roll))),
        );
        let cfg = self
            .base
            .with_projection(projection)
            .with_filter(filter)
            .with_fov(fov)
            .with_viewport(viewport);
        Ok((cfg, pose, src_w, src_h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn programmed() -> PteDevice {
        let mut dev = PteDevice::new();
        dev.write(Reg::SrcWidth as u32, 1920);
        dev.write(Reg::SrcHeight as u32, 1080);
        dev.write(Reg::OutWidth as u32, 640);
        dev.write(Reg::OutHeight as u32, 640);
        dev
    }

    #[test]
    fn doorbell_runs_a_frame_and_sets_done() {
        let mut dev = programmed();
        assert_eq!(dev.read(Reg::Status as u32), 0);
        dev.write(Reg::Ctrl as u32, CTRL_START);
        assert_ne!(dev.read(Reg::Status as u32) & STATUS_FRAME_DONE, 0);
        assert_eq!(dev.read(Reg::FrameCount as u32), 1);
        assert!(dev.last_frame_stats().unwrap().out_pixels == 640 * 640);
    }

    #[test]
    fn per_frame_orientation_updates() {
        let mut dev = programmed();
        for i in 0..5 {
            let yaw_q16 = ((i as f64 * 0.1) * 65536.0) as i32 as u32;
            dev.write(Reg::Yaw as u32, yaw_q16);
            dev.write(Reg::Ctrl as u32, CTRL_START);
        }
        assert_eq!(dev.read(Reg::FrameCount as u32), 5);
    }

    #[test]
    fn invalid_projection_sets_cfg_error() {
        let mut dev = programmed();
        dev.write(Reg::Projection as u32, 7);
        dev.write(Reg::Ctrl as u32, CTRL_START);
        let st = dev.read(Reg::Status as u32);
        assert_ne!(st & STATUS_CFG_ERROR, 0);
        assert_eq!(st & STATUS_FRAME_DONE, 0);
        assert_eq!(dev.read(Reg::FrameCount as u32), 0);
        // Fixing the register clears the error on the next doorbell.
        dev.write(Reg::Projection as u32, 2);
        dev.write(Reg::Ctrl as u32, CTRL_START);
        assert_ne!(dev.read(Reg::Status as u32) & STATUS_FRAME_DONE, 0);
    }

    #[test]
    fn invalid_fov_sets_cfg_error() {
        let mut dev = programmed();
        dev.write(Reg::FovH as u32, 200 << 16); // 200° is out of range
        dev.write(Reg::Ctrl as u32, CTRL_START);
        assert_ne!(dev.read(Reg::Status as u32) & STATUS_CFG_ERROR, 0);
    }

    #[test]
    fn zero_viewport_sets_cfg_error() {
        let mut dev = programmed();
        dev.write(Reg::OutWidth as u32, 0);
        dev.write(Reg::Ctrl as u32, CTRL_START);
        let st = dev.read(Reg::Status as u32);
        assert_ne!(st & STATUS_CFG_ERROR, 0);
        assert_eq!(st & STATUS_FRAME_DONE, 0);
    }

    #[test]
    fn read_only_registers_ignore_writes() {
        let mut dev = programmed();
        dev.write(Reg::Ctrl as u32, CTRL_START);
        dev.write(Reg::FrameCount as u32, 99);
        dev.write(Reg::Status as u32, 0xFFFF_FFFF);
        assert_eq!(dev.read(Reg::FrameCount as u32), 1);
        assert_eq!(dev.read(Reg::Status as u32), STATUS_FRAME_DONE);
    }

    #[test]
    fn reset_restores_defaults() {
        let mut dev = programmed();
        dev.write(Reg::Ctrl as u32, CTRL_START);
        dev.write(Reg::Ctrl as u32, CTRL_RESET);
        assert_eq!(dev.read(Reg::FrameCount as u32), 0);
        assert_eq!(dev.read(Reg::Status as u32), 0);
        assert_eq!(dev.read(Reg::SrcWidth as u32), 3840);
        assert_eq!(dev.read(Reg::OutWidth as u32), 2560);
    }

    #[test]
    fn unmapped_addresses_are_inert() {
        let mut dev = programmed();
        dev.write(0x1000, 42);
        dev.write(0x03, 42); // unaligned
        assert_eq!(dev.read(0x1000), 0);
        assert_eq!(dev.read(0x03), 0);
    }

    #[test]
    fn orientation_reaches_the_engine() {
        // Different orientations produce different memory-access patterns
        // (DRAM read counts differ), proving the registers are honoured.
        let mut dev = programmed();
        dev.write(Reg::Ctrl as u32, CTRL_START);
        let forward = dev.last_frame_stats().unwrap().dram_read_bytes;
        dev.write(Reg::Pitch as u32, ((1.2 * 65536.0) as i32) as u32);
        dev.write(Reg::Ctrl as u32, CTRL_START);
        let up = dev.last_frame_stats().unwrap().dram_read_bytes;
        assert_ne!(forward, up);
    }
}

#[cfg(test)]
mod fov_register_tests {
    use super::*;

    #[test]
    fn fov_registers_program_the_engine() {
        // A narrower FOV touches less of the source: DRAM reads shrink.
        let run = |fov_deg: u32| {
            let mut dev = PteDevice::new();
            dev.write(Reg::FovH as u32, fov_deg << 16);
            dev.write(Reg::FovV as u32, fov_deg << 16);
            dev.write(Reg::Ctrl as u32, CTRL_START);
            dev.last_frame_stats().unwrap().dram_read_bytes
        };
        assert!(run(60) < run(140), "narrow {} vs wide {}", run(60), run(140));
    }
}
